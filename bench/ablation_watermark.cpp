// Ablation — MTB buffer size / watermark (§IV-E, §V-B): how many
// partial-report pauses each method needs as the MTB shrinks, and what
// they cost in cycles. The paper's point: with the 4KB MTB, naive logging
// pauses constantly; RAP-Track usually sends one final report.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::apps::PreparedApp;
using raptrack::bench::kSeed;
using raptrack::u32;

void print_table() {
  std::printf("\n=== Ablation: partial reports vs MTB buffer size ===\n");
  std::printf("%-12s %8s | %10s %14s | %10s %14s\n", "app", "MTB[B]",
              "naive#rep", "naive pause[cy]", "rap#rep", "rap pause[cy]");
  for (const char* name : {"gps", "syringe", "fibcall", "prime"}) {
    const PreparedApp prepared =
        raptrack::apps::prepare_app(raptrack::apps::app_by_name(name));
    for (const u32 size : {1024u, 4096u, 16384u}) {
      raptrack::sim::MachineConfig config;
      config.mtb_buffer_bytes = size;
      const auto naive = raptrack::apps::run_naive(prepared, kSeed, config);
      const auto rap = raptrack::apps::run_rap(prepared, kSeed, config);
      std::printf("%-12s %8u | %10u %14llu | %10u %14llu\n", name, size,
                  naive.attestation.metrics.partial_reports,
                  static_cast<unsigned long long>(
                      naive.attestation.metrics.pause_cycles),
                  rap.attestation.metrics.partial_reports,
                  static_cast<unsigned long long>(
                      rap.attestation.metrics.pause_cycles));
    }
  }
}

void BM_Watermark(benchmark::State& state) {
  const auto& app = raptrack::apps::app_registry()[4];  // gps
  const PreparedApp prepared = raptrack::apps::prepare_app(app);
  raptrack::sim::MachineConfig config;
  config.mtb_buffer_bytes = static_cast<u32>(state.range(0));
  u32 partials = 0;
  for (auto _ : state) {
    const auto run = raptrack::apps::run_naive(prepared, kSeed, config);
    partials = run.attestation.metrics.partial_reports;
    benchmark::DoNotOptimize(partials);
  }
  state.counters["partial_reports"] = partials;
}
BENCHMARK(BM_Watermark)->Arg(1024)->Arg(4096)->Arg(16384)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
