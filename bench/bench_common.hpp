// Shared machinery for the figure benches: run every method over every app
// once (deterministic seed), cache the results, and print paper-style
// tables. Each fig*_ binary reproduces one figure of the paper's
// evaluation; see EXPERIMENTS.md for the paper-vs-measured record.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/runner.hpp"

namespace raptrack::bench {

inline constexpr u64 kSeed = 42;

struct AppResults {
  std::string name;
  cfa::RunMetrics baseline;
  cfa::RunMetrics naive;
  cfa::RunMetrics rap;
  cfa::RunMetrics traces;        ///< word-per-conditional encoding (default)
  cfa::RunMetrics traces_packed; ///< 1-bit-packed conditionals (most compact)
  u32 original_code_bytes = 0;
  u32 rap_code_bytes = 0;
  u32 traces_code_bytes = 0;
};

/// Run all four methods over one app with an effectively unbounded MTB (the
/// figure benches measure volumes, not buffer effects; the watermark
/// ablation measures those).
inline AppResults measure_app(const apps::App& app, u64 seed = kSeed) {
  const apps::PreparedApp prepared = apps::prepare_app(app);
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 22;

  AppResults results;
  results.name = app.name;
  results.baseline = apps::run_baseline(prepared, seed, big).attestation.metrics;
  results.naive = apps::run_naive(prepared, seed, big).attestation.metrics;
  results.rap = apps::run_rap(prepared, seed, big).attestation.metrics;
  results.traces = apps::run_traces(prepared, seed, big).attestation.metrics;
  cfa::SessionOptions packed;
  packed.traces_bit_packed = true;
  results.traces_packed =
      apps::run_traces(prepared, seed, big, packed).attestation.metrics;
  results.original_code_bytes = prepared.built.program.size();
  results.rap_code_bytes = prepared.rap.rewritten_bytes;
  results.traces_code_bytes = prepared.traces.rewritten_bytes;
  return results;
}

inline const std::vector<AppResults>& all_results() {
  static const std::vector<AppResults> results = [] {
    std::vector<AppResults> out;
    for (const auto& app : apps::app_registry()) {
      out.push_back(measure_app(app));
    }
    return out;
  }();
  return results;
}

inline double ratio(double a, double b) { return b == 0 ? 0.0 : a / b; }

inline double percent_over(double value, double base) {
  return base == 0 ? 0.0 : (value - base) / base * 100.0;
}

}  // namespace raptrack::bench
