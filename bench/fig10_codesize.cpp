// Figure 10 — program-memory (code size) comparison: original APP vs
// RAP-Track trampolines vs TRACES instrumentation. Shape to reproduce:
// both grow the binary modestly; RAP-Track is usually slightly larger
// (nop pads + loop trampolines).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::bench::all_results;
using raptrack::bench::percent_over;

void print_figure10() {
  std::printf("\n=== Figure 10: code size (bytes) per method ===\n");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "app", "original",
              "RAP-Track", "TRACES", "RAP+%", "TRACES+%");
  for (const auto& r : all_results()) {
    std::printf("%-12s %10u %10u %10u %9.1f%% %9.1f%%\n", r.name.c_str(),
                r.original_code_bytes, r.rap_code_bytes, r.traces_code_bytes,
                percent_over(r.rap_code_bytes, r.original_code_bytes),
                percent_over(r.traces_code_bytes, r.original_code_bytes));
  }
}

void BM_Fig10_CodeSize(benchmark::State& state) {
  const auto& r = all_results()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.rap_code_bytes);
  }
  state.SetLabel(r.name);
  state.counters["orig_B"] = r.original_code_bytes;
  state.counters["rap_B"] = r.rap_code_bytes;
  state.counters["traces_B"] = r.traces_code_bytes;
}
BENCHMARK(BM_Fig10_CodeSize)->DenseRange(0, 12)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
