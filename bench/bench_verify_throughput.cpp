// Verifier-service throughput bench: report chains verified per second, off
// the wire, for the serial Verifier and the parallel VerifierFarm at 1/2/4/8
// workers, written as machine-readable JSON so CI and EXPERIMENTS.md can
// track the pipeline.
//
//   bench_verify_throughput [--quick] [--out FILE] [--metrics-out FILE]
//
// Every job starts from the same place a real verifier frontend does — the
// encoded wire bytes of one device's report chain — and runs to a terminal
// verdict. Modes per (app, attestation method, damage mix):
//
//   serial_rebuild — fresh Verifier + expect_rap() per chain: the pre-farm
//                    cost model, where every verification re-derives the
//                    deployment (re-decode, re-hash, linear manifest scans).
//   serial_shared  — fresh Verifier sharing one prebuilt Deployment cache:
//                    the single-thread hot path the farm runs per worker.
//                    Measured memo=off and memo=on (sub-path memo only, the
//                    pre-frontier cost model), and on RAP workloads also as
//                    the {frontier on/off} x {cold/warm-restored} ablation:
//                    "on+frontier" adds the checkpoint-frontier memo that
//                    skips re-searching resolved RAP ambiguities, and the
//                    "+warm" variants start from a cache rebuilt via
//                    serialize_warm/restore_warm (the persistent warm-start
//                    path a restored verifier endpoint takes).
//   farm           — VerifierFarm::submit_wire at 1/2/4/8 *requested*
//                    workers: sharded scheduling, shared deployment+memo,
//                    batched multi-lane MACs. FarmOptions clamps requests to
//                    hardware_concurrency by default, so each row records
//                    both workers_requested and the effective worker count.
//
// Damage mixes cover the verdict taxonomy so the bench prices all three
// terminal paths: "clean" (Accept), "damaged" (dropped report →
// Inconclusive, partial reconstruction), "tampered" (MAC forgery → Reject,
// cheap early exit).
//
// Emits BENCH_verify_throughput.json with one row per (app, method, mix,
// mode, memo, workers):
//   { "app", "method", "mix", "mode", "memo", "workers",
//     "workers_requested", "chains", "reports", "wall_ns", "chains_per_s",
//     "reports_per_s", "memo_hit_rate", "segment_hit_rate", "efficiency" }
// plus top-level "host_cpus" (scaling efficiency is bounded by physical
// cores — on a 1-CPU host every multi-worker request clamps to one worker),
// "hmac_lanes" (SHA-256 lanes the batched MAC check dispatches to on this
// host) and "memo_enabled" (RAP_MEMO compile switch).
//
// Correctness tripwires, all fatal (ride the bench-smoke-verify ctest):
//   - every timed verification must reproduce the workload's probed verdict;
//   - per workload, the canonical verification digest must be byte-identical
//     memo-off vs memo-on-cold vs memo-on-warm vs frontier-on-cold vs
//     frontier-on-warm vs warm-restored-from-snapshot (memoization may only
//     change wall time and cache telemetry, never the verification outcome);
//   - the emitted JSON must re-validate against the row schema.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hex.hpp"
#include "crypto/sha256_mb.hpp"
#include "fault/campaign.hpp"
#include "obs/metrics.hpp"
#include "verify/farm.hpp"
#include "verify/memo.hpp"

namespace {

using namespace raptrack;
using verify::Deployment;
using verify::DeviceId;
using verify::Verdict;
using verify::VerifierFarm;

struct Workload {
  std::string app;
  std::string method;  // "rap" | "naive" | "traces"
  std::string mix;     // "clean" | "damaged" | "tampered"
  std::shared_ptr<const Deployment> deployment;
  verify::VerifyConfig config;
  cfa::Challenge chal;
  std::vector<u8> wire;          ///< encoded chain, as received
  size_t reports_per_chain = 0;  ///< surviving reports in `wire`
  Verdict expected = Verdict::Accept;
};

struct Row {
  std::string app;
  std::string method;
  std::string mix;
  std::string mode;  // "serial_rebuild" | "serial_shared" | "farm"
  std::string memo = "off";
  size_t workers = 1;            ///< effective (post-clamp) worker count
  size_t workers_requested = 1;  ///< what FarmOptions asked for
  size_t chains = 0;
  size_t reports = 0;
  u64 wall_ns = 0;
  double chains_per_s = 0.0;
  double reports_per_s = 0.0;
  double memo_hit_rate = 0.0;  ///< memo hits / lookups inside the timed row
  /// §14 sub-path tier alone (frontier excluded): segment splices / segment
  /// lookups inside the timed row. The guarded-segments floor in CI gates on
  /// this — before guarded recording it was ~0 on checkpoint-dense chains.
  double segment_hit_rate = 0.0;
  double efficiency = 1.0;     ///< farm: chains_per_s / (workers * w1 rate)
};

/// One verification of `w` against its shared deployment with memoization
/// (and optionally the checkpoint-frontier tier) toggled, returning the full
/// result. Used for the probe and for the digest byte-identity tripwire.
verify::VerificationResult verify_once(const Workload& w, bool memo,
                                       bool frontier = false) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect(w.deployment);
  verifier.set_expected_watermark(w.config.expected_watermark);
  verifier.set_memo(memo);
  verifier.set_frontier(memo && frontier);
  verifier.adopt_challenge(w.chal);
  const auto decoded = cfa::try_decode_report_chain(w.wire);
  if (!decoded.ok()) return {};
  return verifier.verify(w.chal, *decoded);
}

/// The reference verdict for a workload: one serial verification against its
/// shared deployment. Damage mixes are recorded against this (DropReport on
/// a multi-report chain lands Inconclusive, MacTamper lands Reject), and
/// every timed verification below must keep reproducing it.
Verdict probe(const Workload& w) { return verify_once(w, false).verdict; }

/// Memoization must be outcome-invisible: the canonical digest over the
/// verification result (verdict, findings, events, replay outcome — cache
/// telemetry excluded) has to be byte-identical with the memo off, with a
/// cold cache, and with a warm cache. Fatal on divergence, so the
/// bench-smoke-verify ctest doubles as a differential check.
void check_memo_digests(const Workload& w) {
  w.deployment->memo().clear();
  const std::string off = hex_digest(verify::verification_digest(
      verify_once(w, false)));
  const std::string cold = hex_digest(verify::verification_digest(
      verify_once(w, true)));
  const std::string warm = hex_digest(verify::verification_digest(
      verify_once(w, true)));
  // Frontier tier: cold, warm, and warm-restored-from-snapshot (the exact
  // bytes a recovered verifier endpoint would rehydrate from).
  w.deployment->memo().clear();
  const std::string frontier_cold = hex_digest(verify::verification_digest(
      verify_once(w, true, true)));
  const std::string frontier_warm = hex_digest(verify::verification_digest(
      verify_once(w, true, true)));
  const std::vector<u8> snapshot = w.deployment->memo().serialize_warm();
  w.deployment->memo().clear();
  w.deployment->memo().restore_warm(snapshot);
  const std::string restored = hex_digest(verify::verification_digest(
      verify_once(w, true, true)));
  w.deployment->memo().clear();
  if (off != cold || off != warm || off != frontier_cold ||
      off != frontier_warm || off != restored) {
    std::fprintf(stderr,
                 "error: %s/%s/%s memoized digest diverged\n  off  %s\n"
                 "  cold %s\n  warm %s\n  fcold %s\n  fwarm %s\n  rest %s\n",
                 w.app.c_str(), w.method.c_str(), w.mix.c_str(), off.c_str(),
                 cold.c_str(), warm.c_str(), frontier_cold.c_str(),
                 frontier_warm.c_str(), restored.c_str());
    std::exit(1);
  }
}

/// Build the (app x method x damage-mix) workload grid: attest each app once
/// under each method, then mutate the clean chain with the PR-1 fault
/// injectors for the damage mixes.
std::vector<Workload> build_workloads(bool quick) {
  std::vector<Workload> out;
  const std::vector<std::string> names =
      quick ? std::vector<std::string>{"gps"}
            : std::vector<std::string>{"gps", "temperature"};
  for (const std::string& name : names) {
    const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
    const cfa::Challenge chal = fault::campaign_challenge(1);

    struct MethodRun {
      const char* method;
      std::shared_ptr<const Deployment> deployment;
      verify::VerifyConfig config;
      std::vector<cfa::SignedReport> chain;
    };
    std::vector<MethodRun> runs;

    {
      // Same shape as the fault campaign: small MTB, chunked chain.
      cfa::SessionOptions options;
      options.watermark_bytes = 128;
      sim::MachineConfig config;
      config.mtb_buffer_bytes = 256;
      MethodRun run{"rap",
                    Deployment::rap(prepared.rap.program,
                                    prepared.rap.manifest,
                                    prepared.built.entry),
                    {},
                    apps::run_rap(prepared, 42, config, options, chal)
                        .attestation.reports};
      run.config.expected_watermark = options.watermark_bytes;
      runs.push_back(std::move(run));
    }
    {
      cfa::SessionOptions options;
      options.watermark_bytes = 1024;
      sim::MachineConfig config;
      config.mtb_buffer_bytes = 4096;  // the paper's 4KB MTB
      runs.push_back({"naive",
                      Deployment::naive(prepared.built.program,
                                        prepared.built.entry),
                      {},
                      apps::run_naive(prepared, 42, config, options, chal)
                          .attestation.reports});
    }
    runs.push_back({"traces",
                    Deployment::traces(prepared.traces.program,
                                       prepared.traces.manifest,
                                       prepared.built.entry),
                    {},
                    apps::run_traces(prepared, 42, {}, {}, chal)
                        .attestation.reports});

    for (MethodRun& run : runs) {
      const auto push = [&](const char* mix,
                            std::vector<cfa::SignedReport> chain) {
        Workload w;
        w.app = name;
        w.method = run.method;
        w.mix = mix;
        w.deployment = run.deployment;
        w.config = run.config;
        w.chal = chal;
        w.reports_per_chain = chain.size();
        w.wire = cfa::encode_report_chain(chain);
        w.expected = probe(w);
        check_memo_digests(w);
        out.push_back(std::move(w));
      };

      push("clean", run.chain);
      if (out.back().expected != Verdict::Accept) {
        std::fprintf(stderr, "error: %s/%s clean chain does not verify\n",
                     name.c_str(), run.method);
        std::exit(1);
      }

      std::vector<cfa::SignedReport> damaged = run.chain;
      fault::FaultPlan drop(7);
      drop.add(fault::InjectorKind::DropReport);
      fault::apply_transport_faults(drop, damaged);
      push("damaged", std::move(damaged));

      std::vector<cfa::SignedReport> tampered = run.chain;
      fault::FaultPlan mac(7);
      mac.add(fault::InjectorKind::MacTamper);
      fault::apply_transport_faults(mac, tampered);
      push("tampered", std::move(tampered));
      if (out.back().expected != Verdict::Reject) {
        std::fprintf(stderr, "error: %s/%s tampered chain not rejected\n",
                     name.c_str(), run.method);
        std::exit(1);
      }
    }
  }

  {
    // Checkpoint-dense acceptance workload ("leafamb"): N unrolled direct
    // calls to a leaf whose rare-alarm conditional fires only on the final
    // call. BX LR leaf returns are unmonitored, so the alarm packet is
    // attributable to ANY call instance — every instance is RAP-ambiguous.
    // Greedy attributes it to the current instance, burns a deterministic
    // spin loop in the alarm arm, and is refuted by the POP {pc} return
    // packet (wrong per-site return address -> strict-pass failure), so a
    // cold replay backtracks once per call. The frontier memo caches each
    // resolved decision; warm repeats replay linearly. This is the worst
    // case for the backtracking search and the workload the
    // checkpoint-frontier memo is built for. RAP/clean only: the grid
    // above already prices the other methods and verdict paths.
    constexpr int kCalls = 48;
    constexpr int kSpin = 120;
    std::string source = R"asm(
.equ RES,     0x20200000
.equ COUNTER, 0x20200040

_start:
    li r3, =COUNTER
    movi r5, #0
)asm";
    for (int i = 0; i < kCalls; ++i) source += "    bl check\n";
    source += R"asm(
    li r1, =RES
    str r5, [r1, #0]
    hlt

check:
    ldr r1, [r3, #0]
    addi r1, r1, #1
    str r1, [r3, #0]
    cmp r1, #)asm";
    source += std::to_string(kCalls);
    source += R"asm(
    beq alarm
    bx lr
alarm:
    addi r5, r5, #1
    movi r7, #0
spin:
    addi r7, r7, #1
    cmp r7, #)asm";
    source += std::to_string(kSpin);
    source += R"asm(
    blt spin
    push {lr}
    pop {pc}
__code_end:
)asm";
    apps::App app;
    app.name = "leafamb";
    app.description = "unrolled leaf calls with a rare-alarm ambiguity";
    app.source = source;
    app.setup = [](sim::Machine& machine, u64) {
      auto periph = std::make_shared<apps::Peripherals>();
      periph->attach(machine);
      return periph;
    };
    app.check = [](sim::Machine&, const apps::Peripherals&, u64) {
      return true;
    };
    const apps::PreparedApp prepared = apps::prepare_app(app);
    cfa::SessionOptions options;
    options.watermark_bytes = 128;
    sim::MachineConfig config;
    config.mtb_buffer_bytes = 256;
    Workload w;
    w.app = "leafamb";
    w.method = "rap";
    w.mix = "clean";
    w.deployment = Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                                   prepared.built.entry);
    w.config.expected_watermark = options.watermark_bytes;
    w.chal = fault::campaign_challenge(1);
    const auto chain =
        apps::run_rap(prepared, 42, config, options, w.chal)
            .attestation.reports;
    w.reports_per_chain = chain.size();
    w.wire = cfa::encode_report_chain(chain);
    w.expected = probe(w);
    check_memo_digests(w);
    if (w.expected != Verdict::Accept) {
      std::fprintf(stderr, "error: leafamb/rap clean chain does not verify\n");
      std::exit(1);
    }
    out.push_back(std::move(w));
  }
  return out;
}

/// Memo-lookup hit rate across a timed region, from the deployment cache's
/// counter deltas. Zero when the region issued no lookups (memo off, or a
/// RAP_MEMO=OFF build where the cache ignores traffic).
struct MemoDelta {
  verify::MemoStats before;
  explicit MemoDelta(const Workload& w) : before(w.deployment->memo().stats()) {}
  double hit_rate(const Workload& w) const {
    const verify::MemoStats after = w.deployment->memo().stats();
    const u64 hits = (after.hits - before.hits) +
                     (after.frontier_hits - before.frontier_hits);
    const u64 lookups = hits + (after.misses - before.misses) +
                        (after.frontier_misses - before.frontier_misses);
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  double segment_hit_rate(const Workload& w) const {
    const verify::MemoStats after = w.deployment->memo().stats();
    const u64 hits = after.hits - before.hits;
    const u64 lookups = hits + (after.misses - before.misses);
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// One serial measurement: `chains` verifications of `w`, each starting from
/// the wire bytes with a fresh Verifier (so every chain gets an outstanding
/// challenge, exactly like distinct devices reporting in). Memo-on rows
/// start from a cleared cache, so the reported hit rate is what the repeated
/// workload itself earned. `frontier` enables the checkpoint-frontier tier
/// on top of the sub-path memo; `warm_restart` primes the cache, snapshots
/// it with serialize_warm, clears, and restores before the timed region —
/// the first-session-after-recovery cost a persistent warm start pays.
Row measure_serial(const Workload& w, bool rebuild, bool memo, size_t chains,
                   int reps, bool frontier = false, bool warm_restart = false) {
  Row row;
  row.app = w.app;
  row.method = w.method;
  row.mix = w.mix;
  row.mode = rebuild ? "serial_rebuild" : "serial_shared";
  row.memo = !memo ? "off"
                   : std::string("on") + (frontier ? "+frontier" : "") +
                         (warm_restart ? "+warm" : "");
  row.chains = chains;
  row.reports = chains * w.reports_per_chain;
  row.wall_ns = ~0ull;
  if (memo) {
    w.deployment->memo().clear();
    if (warm_restart) {
      verify_once(w, true, frontier);
      verify_once(w, true, frontier);
      const std::vector<u8> snapshot = w.deployment->memo().serialize_warm();
      w.deployment->memo().clear();
      w.deployment->memo().restore_warm(snapshot);
    }
  }
  const MemoDelta delta(w);
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < chains; ++i) {
      verify::Verifier verifier(apps::demo_key());
      if (rebuild) {
        switch (w.deployment->mode()) {
          case verify::ReplayMode::Rap:
            verifier.expect_rap(w.deployment->program(),
                                *w.deployment->rap_manifest(),
                                w.deployment->entry());
            break;
          case verify::ReplayMode::Naive:
            verifier.expect_naive(w.deployment->program(),
                                  w.deployment->entry());
            break;
          case verify::ReplayMode::Traces:
            verifier.expect_traces(w.deployment->program(),
                                   *w.deployment->traces_manifest(),
                                   w.deployment->entry());
            break;
        }
      } else {
        verifier.expect(w.deployment);
      }
      verifier.set_expected_watermark(w.config.expected_watermark);
      verifier.set_memo(memo);
      verifier.set_frontier(memo && frontier);
      verifier.adopt_challenge(w.chal);
      const auto decoded = cfa::try_decode_report_chain(w.wire);
      const verify::VerificationResult result =
          decoded.ok() ? verifier.verify(w.chal, *decoded)
                       : verify::VerificationResult{};
      if (result.verdict != w.expected) {
        std::fprintf(stderr, "error: %s/%s serial verdict drifted\n",
                     w.app.c_str(), w.mix.c_str());
        std::exit(1);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    row.wall_ns = std::min(
        row.wall_ns,
        static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  }
  row.memo_hit_rate = delta.hit_rate(w);
  row.segment_hit_rate = delta.segment_hit_rate(w);
  if (row.wall_ns == 0) row.wall_ns = 1;
  row.chains_per_s = static_cast<double>(chains) * 1e9 /
                     static_cast<double>(row.wall_ns);
  row.reports_per_s = static_cast<double>(row.reports) * 1e9 /
                      static_cast<double>(row.wall_ns);
  return row;
}

/// One farm measurement: `chains` devices provisioned up front (sharing the
/// workload's Deployment and its memo cache), then every wire chain
/// submitted and drained. Timed region = submission + verification, the
/// steady-state service loop. `workers` is the *request*; the row records
/// the post-clamp count the farm actually spawned.
Row measure_farm(const Workload& w, size_t workers, size_t chains, int reps) {
  Row row;
  row.app = w.app;
  row.method = w.method;
  row.mix = w.mix;
  row.mode = "farm";
  // The farm runs the production VerifyConfig defaults: sub-path memo plus
  // the checkpoint-frontier tier.
  row.memo = "on+frontier";
  row.workers_requested = workers;
  row.chains = chains;
  row.reports = chains * w.reports_per_chain;
  row.wall_ns = ~0ull;
  const MemoDelta delta(w);
  for (int rep = 0; rep < reps; ++rep) {
    VerifierFarm farm(apps::demo_key(), {.workers = workers});
    row.workers = farm.worker_count();
    for (DeviceId device = 0; device < chains; ++device) {
      farm.provision(device, w.deployment, w.config);
      farm.adopt_challenge(device, w.chal);
    }
    std::vector<std::future<verify::VerificationResult>> futures;
    futures.reserve(chains);
    const auto t0 = std::chrono::steady_clock::now();
    for (DeviceId device = 0; device < chains; ++device) {
      futures.push_back(farm.submit_wire(device, w.chal, w.wire));
    }
    farm.drain();
    const auto t1 = std::chrono::steady_clock::now();
    for (auto& future : futures) {
      if (future.get().verdict != w.expected) {
        std::fprintf(stderr, "error: %s/%s farm verdict drifted\n",
                     w.app.c_str(), w.mix.c_str());
        std::exit(1);
      }
    }
    row.wall_ns = std::min(
        row.wall_ns,
        static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  }
  row.memo_hit_rate = delta.hit_rate(w);
  row.segment_hit_rate = delta.segment_hit_rate(w);
  if (row.wall_ns == 0) row.wall_ns = 1;
  row.chains_per_s = static_cast<double>(chains) * 1e9 /
                     static_cast<double>(row.wall_ns);
  row.reports_per_s = static_cast<double>(row.reports) * 1e9 /
                      static_cast<double>(row.wall_ns);
  return row;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string render_json(const std::vector<Row>& rows, unsigned host_cpus,
                        bool release, bool quick) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"verify_throughput\",\n";
  os << "  \"release\": " << (release ? "true" : "false") << ",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cpus\": " << host_cpus << ",\n";
  os << "  \"hmac_lanes\": " << crypto::sha256_mb_lanes() << ",\n";
  os << "  \"memo_enabled\": " << (verify::kMemoEnabled ? "true" : "false")
     << ",\n";
  os << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"app\": \"" << json_escape(r.app) << "\", \"method\": \""
       << json_escape(r.method) << "\", \"mix\": \"" << json_escape(r.mix)
       << "\", \"mode\": \"" << r.mode << "\", \"memo\": \"" << r.memo
       << "\", \"workers\": " << r.workers
       << ", \"workers_requested\": " << r.workers_requested
       << ", \"chains\": " << r.chains
       << ", \"reports\": " << r.reports << ", \"wall_ns\": " << r.wall_ns
       << ", \"chains_per_s\": " << r.chains_per_s
       << ", \"reports_per_s\": " << r.reports_per_s
       << ", \"memo_hit_rate\": " << r.memo_hit_rate
       << ", \"segment_hit_rate\": " << r.segment_hit_rate
       << ", \"efficiency\": " << r.efficiency << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check over the emitted text (same drift-tripwire style as
/// bench_throughput): every row carries all fifteen keys, modes and memo
/// states are from the known sets, wall_ns is nonzero, and the top level
/// carries the bench id, host_cpus, hmac_lanes and memo_enabled.
bool validate(const std::string& text, size_t expected_rows,
              std::string& error) {
  for (const char* key :
       {"\"bench\": \"verify_throughput\"", "\"host_cpus\": ",
        "\"hmac_lanes\": ", "\"memo_enabled\": ", "\"release\": ",
        "\"quick\": ", "\"rows\": ["}) {
    if (text.find(key) == std::string::npos) {
      error = std::string("missing top-level key: ") + key;
      return false;
    }
  }
  size_t rows = 0;
  size_t at = 0;
  while ((at = text.find("{\"app\": ", at)) != std::string::npos) {
    const size_t end = text.find('}', at);
    if (end == std::string::npos) {
      error = "unterminated row object";
      return false;
    }
    const std::string row = text.substr(at, end - at + 1);
    for (const char* key :
         {"\"app\": \"", "\"method\": \"", "\"mix\": \"", "\"mode\": \"",
          "\"memo\": \"", "\"workers\": ", "\"workers_requested\": ",
          "\"chains\": ", "\"reports\": ", "\"wall_ns\": ",
          "\"chains_per_s\": ", "\"reports_per_s\": ",
          "\"memo_hit_rate\": ", "\"segment_hit_rate\": ",
          "\"efficiency\": "}) {
      if (row.find(key) == std::string::npos) {
        error = "row " + std::to_string(rows) + " missing key " + key;
        return false;
      }
    }
    if (row.find("\"mode\": \"serial_rebuild\"") == std::string::npos &&
        row.find("\"mode\": \"serial_shared\"") == std::string::npos &&
        row.find("\"mode\": \"farm\"") == std::string::npos) {
      error = "row " + std::to_string(rows) + " has an unknown mode";
      return false;
    }
    if (row.find("\"memo\": \"on\"") == std::string::npos &&
        row.find("\"memo\": \"off\"") == std::string::npos &&
        row.find("\"memo\": \"on+frontier\"") == std::string::npos &&
        row.find("\"memo\": \"on+warm\"") == std::string::npos &&
        row.find("\"memo\": \"on+frontier+warm\"") == std::string::npos &&
        row.find("\"memo\": \"on+frontier+noguard\"") == std::string::npos) {
      error = "row " + std::to_string(rows) + " has an unknown memo state";
      return false;
    }
    const u64 wall = std::strtoull(
        row.c_str() + row.find("\"wall_ns\": ") + strlen("\"wall_ns\": "),
        nullptr, 10);
    if (wall == 0) {
      error = "row " + std::to_string(rows) + " has wall_ns == 0";
      return false;
    }
    ++rows;
    at = end;
  }
  if (rows != expected_rows) {
    error = "expected " + std::to_string(expected_rows) + " rows, found " +
            std::to_string(rows);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_verify_throughput.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE] [--metrics-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

#ifdef RAP_RELEASE_BUILD
  const bool release = true;
#else
  const bool release = false;
  std::fprintf(stderr,
               "warning: not a RAP_RELEASE build — wall-clock numbers are "
               "not representative (use: cmake --preset release)\n");
#endif

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const size_t chains = quick ? 16 : 256;
  const int reps = quick ? 1 : 5;
  const size_t worker_counts[] = {1, 2, 4, 8};

  std::vector<Row> all;
  for (const Workload& w : build_workloads(quick)) {
    Row rebuild = measure_serial(w, /*rebuild=*/true, /*memo=*/false, chains,
                                 reps);
    Row shared_off = measure_serial(w, /*rebuild=*/false, /*memo=*/false,
                                    chains, reps);
    Row shared_on = measure_serial(w, /*rebuild=*/false, /*memo=*/true,
                                   chains, reps);
    std::printf("%-12s %-7s %-9s serial rebuild %9.0f chains/s   shared "
                "%9.0f chains/s   memo %9.0f chains/s (%.2fx, hit %.2f)\n",
                w.app.c_str(), w.method.c_str(), w.mix.c_str(),
                rebuild.chains_per_s, shared_off.chains_per_s,
                shared_on.chains_per_s,
                shared_on.chains_per_s / shared_off.chains_per_s,
                shared_on.memo_hit_rate);
    const double shared_on_rate = shared_on.reports_per_s;
    all.push_back(std::move(rebuild));
    all.push_back(std::move(shared_off));
    all.push_back(std::move(shared_on));

    // Frontier ablation, RAP only (naive/traces replay has no RAP-ambiguous
    // checkpoints, so the frontier tier would be a no-op there):
    // {frontier on/off} x {cold/warm-restored}, all against the "on" row
    // above as the sub-path-memo-only baseline.
    if (w.method == "rap") {
      Row on_warm = measure_serial(w, /*rebuild=*/false, /*memo=*/true,
                                   chains, reps, /*frontier=*/false,
                                   /*warm_restart=*/true);
      Row frontier_cold = measure_serial(w, /*rebuild=*/false, /*memo=*/true,
                                         chains, reps, /*frontier=*/true);
      Row frontier_warm = measure_serial(w, /*rebuild=*/false, /*memo=*/true,
                                         chains, reps, /*frontier=*/true,
                                         /*warm_restart=*/true);
      std::printf("%-12s %-7s %-9s frontier cold %9.0f chains/s (%.2fx vs "
                  "memo, hit %.2f)   warm %9.0f chains/s (%.2fx, hit %.2f, "
                  "seg %.2f)\n",
                  w.app.c_str(), w.method.c_str(), w.mix.c_str(),
                  frontier_cold.chains_per_s,
                  frontier_cold.reports_per_s / shared_on_rate,
                  frontier_cold.memo_hit_rate, frontier_warm.chains_per_s,
                  frontier_warm.reports_per_s / shared_on_rate,
                  frontier_warm.memo_hit_rate,
                  frontier_warm.segment_hit_rate);
      all.push_back(std::move(on_warm));
      const double frontier_rate = frontier_cold.reports_per_s;
      all.push_back(std::move(frontier_cold));
      all.push_back(std::move(frontier_warm));

      // Guarded-segments ablation: the same chain against a deployment whose
      // memo runs the PR-7 abort-on-ambiguity rule (guarded_segments off).
      // Shows what the §14 segment tier contributes on top of the frontier
      // memo — on checkpoint-dense chains its hit rate collapses to ~0 here.
      Workload noguard = w;
      noguard.deployment = Deployment::rap(
          w.deployment->program(), *w.deployment->rap_manifest(),
          w.deployment->entry(),
          verify::MemoOptions{.guarded_segments = false});
      Row frontier_noguard = measure_serial(noguard, /*rebuild=*/false,
                                            /*memo=*/true, chains, reps,
                                            /*frontier=*/true);
      frontier_noguard.memo = "on+frontier+noguard";
      std::printf("%-12s %-7s %-9s noguard       %9.0f chains/s (%.2fx vs "
                  "guarded, seg %.2f)\n",
                  w.app.c_str(), w.method.c_str(), w.mix.c_str(),
                  frontier_noguard.chains_per_s,
                  frontier_noguard.reports_per_s / frontier_rate,
                  frontier_noguard.segment_hit_rate);
      all.push_back(std::move(frontier_noguard));
    }

    double w1_rate = 0.0;
    for (const size_t workers : worker_counts) {
      Row row = measure_farm(w, workers, chains, reps);
      if (workers == 1) w1_rate = row.chains_per_s;
      row.efficiency = w1_rate > 0.0 ? row.chains_per_s /
                                           (static_cast<double>(row.workers) *
                                            w1_rate)
                                     : 1.0;
      std::printf("%-12s %-7s %-9s farm w%zu (req %zu) %12.0f chains/s "
                  "%12.0f reports/s  eff %.2f  hit %.2f\n",
                  w.app.c_str(), w.method.c_str(), w.mix.c_str(), row.workers,
                  row.workers_requested, row.chains_per_s, row.reports_per_s,
                  row.efficiency, row.memo_hit_rate);
      all.push_back(std::move(row));
    }
  }
  std::printf("host cpus: %u, hmac lanes: %zu, memo: %s%s\n", host_cpus,
              crypto::sha256_mb_lanes(),
              verify::kMemoEnabled ? "enabled" : "disabled",
              host_cpus < 8 ? "  (farm worker requests above the core count "
                              "clamp to hardware_concurrency; see "
                              "workers_requested vs workers per row)"
                            : "");

  const std::string json = render_json(all, host_cpus, release, quick);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
  }

  // Self-validate what actually landed on disk.
  std::ifstream in(out_path);
  std::stringstream readback;
  readback << in.rdbuf();
  std::string error;
  if (!validate(readback.str(), all.size(), error)) {
    std::fprintf(stderr, "error: %s failed schema validation: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows, schema ok)\n", out_path.c_str(),
              all.size());

  // Farm/verify counters (queue depth, mailbox waits, verdict tallies,
  // memo hits/evictions) in JSON-lines, same registry the tests assert on.
  if (!metrics_path.empty()) {
    if (!raptrack::obs::kEnabled) {
      std::fprintf(stderr,
                   "warning: --metrics-out requested but this is a "
                   "RAP_OBS=OFF build; writing an empty metrics file\n");
    }
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    metrics << raptrack::obs::registry().scrape().json_lines();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
