// Ablation — MTBAR nop padding (§V-C): the paper adds nops in MTBAR
// trampolines "to allow the MTB sufficient time to activate". This sweep
// shows the code-size/runtime cost of the padding and, crucially, that
// under-padding (fewer nops than the hardware activation latency) silently
// loses packets and breaks lossless reconstruction.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "verify/verifier.hpp"

namespace {

using raptrack::u32;
using raptrack::u64;
using raptrack::bench::kSeed;
namespace apps = raptrack::apps;

struct NopResult {
  u32 code_bytes = 0;
  u64 cycles = 0;
  bool lossless = false;
};

NopResult measure(const char* app_name, u32 nop_pad, u32 hw_latency) {
  raptrack::rewrite::RewriteOptions options;
  options.nop_pad = nop_pad;
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name(app_name), options);

  raptrack::sim::MachineConfig config;
  config.mtb_activation_latency = hw_latency;
  config.mtb_buffer_bytes = 1 << 22;

  raptrack::verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const auto chal = verifier.fresh_challenge();
  const auto run = apps::run_rap(prepared, kSeed, config, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);

  // "Lossless" here means the Verifier reconstructed a complete, benign
  // parse; under-padding loses packets and fails reconstruction outright.
  return {prepared.rap.rewritten_bytes, run.attestation.metrics.exec_cycles,
          result.accepted()};
}

void print_table() {
  std::printf("\n=== Ablation: MTBAR nop padding vs MTB activation latency ===\n");
  std::printf("%-12s %8s %8s %10s %12s %10s\n", "app", "nops", "latency",
              "code[B]", "cycles", "lossless");
  for (const char* name : {"gps", "bubblesort"}) {
    for (const u32 pad : {0u, 1u, 2u, 4u}) {
      const NopResult r = measure(name, pad, /*hw_latency=*/2);
      std::printf("%-12s %8u %8u %10u %12llu %10s\n", name, pad, 2u,
                  r.code_bytes, static_cast<unsigned long long>(r.cycles),
                  r.lossless ? "yes" : "NO (packets lost)");
    }
  }
  std::printf("\nA pad smaller than the hardware latency loses packets — the "
              "verifier catches it.\n");
}

void BM_NopPad(benchmark::State& state) {
  const u32 pad = static_cast<u32>(state.range(0));
  NopResult r;
  for (auto _ : state) {
    r = measure("gps", pad, 2);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["code_bytes"] = r.code_bytes;
  state.counters["cycles"] = static_cast<double>(r.cycles);
  state.counters["lossless"] = r.lossless ? 1 : 0;
}
BENCHMARK(BM_NopPad)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
