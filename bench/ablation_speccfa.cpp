// Ablation — SpecCFA-style sub-path speculation (the paper's §V-B
// transmission-bottleneck discussion, citing [57]): transmitted evidence
// bytes per app with and without a mined sub-path dictionary. Profiling
// runs use a different input seed than the attested run, so the savings
// reflect genuine cross-run path regularity.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cfa/speculation.hpp"

namespace {

using raptrack::u64;
namespace apps = raptrack::apps;
namespace cfa = raptrack::cfa;

struct SpecRow {
  u64 plain = 0;
  u64 speculated = 0;
  size_t dict_entries = 0;
};

SpecRow measure(const char* app_name) {
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name(app_name));
  raptrack::sim::MachineConfig config;
  config.mtb_buffer_bytes = 1 << 22;

  // Profile on seed 1, attest on seed 2.
  const auto profile_run = apps::run_rap(prepared, 1, config);
  const auto payload = cfa::decode_rap_final(
      profile_run.attestation.reports.back().payload);
  const cfa::SpeculationDict dict = cfa::mine_subpaths(payload.packets);

  SpecRow row;
  row.dict_entries = dict.entries.size();
  row.plain = apps::run_rap(prepared, 2, config)
                  .attestation.metrics.transmitted_evidence_bytes;
  cfa::SessionOptions options;
  options.speculation = &dict;
  row.speculated = apps::run_rap(prepared, 2, config, options)
                       .attestation.metrics.transmitted_evidence_bytes;
  return row;
}

void print_table() {
  std::printf("\n=== Ablation: SpecCFA-style sub-path speculation ===\n");
  std::printf("%-12s %10s %12s %12s %10s\n", "app", "dict", "plain[B]",
              "spec[B]", "saving");
  for (const auto& app : apps::app_registry()) {
    const SpecRow row = measure(app.name.c_str());
    const double saving =
        row.plain == 0 ? 0.0
                       : 100.0 * (1.0 - static_cast<double>(row.speculated) /
                                            static_cast<double>(row.plain));
    std::printf("%-12s %10zu %12llu %12llu %9.1f%%\n", app.name.c_str(),
                row.dict_entries, static_cast<unsigned long long>(row.plain),
                static_cast<unsigned long long>(row.speculated), saving);
  }
  std::printf("\nSavings track cross-run path regularity: loop-heavy and "
              "recursive apps compress best; already-minimal logs do not.\n");
}

void BM_SpecCfa(benchmark::State& state) {
  const auto& app = apps::app_registry()[static_cast<size_t>(state.range(0))];
  SpecRow row{};
  for (auto _ : state) {
    row = measure(app.name.c_str());
    benchmark::DoNotOptimize(row.speculated);
  }
  state.SetLabel(app.name);
  state.counters["plain_B"] = static_cast<double>(row.plain);
  state.counters["spec_B"] = static_cast<double>(row.speculated);
}
BENCHMARK(BM_SpecCfa)->Arg(4)->Arg(8)->Arg(5)->Iterations(1);  // gps, fibcall, prime

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
