// Link-resilience bench: the ARQ session protocol swept over datagram loss
// 0/10/20/30/40% (with duplication and reordering at half the loss rate,
// per LinkModel::lossy), written as machine-readable JSON so CI and
// EXPERIMENTS.md can track goodput and retransmit overhead as the protocol
// evolves.
//
//   bench_link [--quick] [--out FILE] [--metrics-out FILE]
//
// Unlike the wall-clock benches this one is fully deterministic — time is
// the link's virtual tick counter and every random choice is seeded — so
// the numbers are exact protocol properties, not host measurements, and the
// same binary run twice emits byte-identical rows.
//
// Per loss level, N seeded sessions deliver the same attested report chain
// through a fresh DuplexLink into one shared VerifierFarm. Emitted row:
//   { "loss_permille", "sessions", "accepted", "gave_up", "accept_rate",
//     "goodput", "datagrams_per_report", "avg_repair_rounds", "avg_ticks" }
// where goodput = chain wire bytes / bytes offered to the prover->verifier
// direction (1.0 means zero overhead), and datagrams_per_report counts
// every Data transmission (first sends + retransmits + probes) per chain
// report. The binary re-reads and validates the emitted file and exits
// nonzero on any violation, so the bench-smoke-link ctest catches drift.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "net/endpoint.hpp"
#include "obs/metrics.hpp"
#include "verify/farm.hpp"

namespace {

using namespace raptrack;
using verify::Verdict;
using verify::VerifierFarm;

struct Row {
  u32 loss_permille = 0;
  u64 sessions = 0;
  u64 accepted = 0;
  u64 gave_up = 0;
  double accept_rate = 0.0;
  double goodput = 0.0;            ///< chain bytes / offered bytes, uplink
  double datagrams_per_report = 0.0;
  double avg_repair_rounds = 0.0;
  double avg_ticks = 0.0;
};

std::string render_json(const std::vector<Row>& rows, bool quick) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"link_resilience\",\n";
  os << "  \"deterministic\": true,\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"loss_permille\": " << r.loss_permille
       << ", \"sessions\": " << r.sessions << ", \"accepted\": " << r.accepted
       << ", \"gave_up\": " << r.gave_up
       << ", \"accept_rate\": " << r.accept_rate
       << ", \"goodput\": " << r.goodput
       << ", \"datagrams_per_report\": " << r.datagrams_per_report
       << ", \"avg_repair_rounds\": " << r.avg_repair_rounds
       << ", \"avg_ticks\": " << r.avg_ticks << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Schema tripwire over the emitted text, same style as the other benches:
/// every row carries all nine keys, rates and goodput are sane fractions,
/// and zero loss must deliver zero give-ups.
bool validate(const std::string& text, size_t expected_rows,
              std::string& error) {
  for (const char* key : {"\"bench\": \"link_resilience\"",
                          "\"deterministic\": true", "\"rows\": ["}) {
    if (text.find(key) == std::string::npos) {
      error = std::string("missing top-level key: ") + key;
      return false;
    }
  }
  size_t rows = 0;
  size_t at = 0;
  while ((at = text.find("{\"loss_permille\": ", at)) != std::string::npos) {
    const size_t end = text.find('}', at);
    if (end == std::string::npos) {
      error = "unterminated row object";
      return false;
    }
    const std::string row = text.substr(at, end - at + 1);
    for (const char* key :
         {"\"loss_permille\": ", "\"sessions\": ", "\"accepted\": ",
          "\"gave_up\": ", "\"accept_rate\": ", "\"goodput\": ",
          "\"datagrams_per_report\": ", "\"avg_repair_rounds\": ",
          "\"avg_ticks\": "}) {
      if (row.find(key) == std::string::npos) {
        error = "row " + std::to_string(rows) + " missing key " + key;
        return false;
      }
    }
    const auto number_after = [&](const char* key) {
      return std::strtod(row.c_str() + row.find(key) + std::strlen(key),
                         nullptr);
    };
    const double accept_rate = number_after("\"accept_rate\": ");
    if (accept_rate < 0.0 || accept_rate > 1.0) {
      error = "row " + std::to_string(rows) + " accept_rate out of [0,1]";
      return false;
    }
    const double goodput = number_after("\"goodput\": ");
    if (goodput <= 0.0 || goodput > 1.0) {
      error = "row " + std::to_string(rows) + " goodput out of (0,1]";
      return false;
    }
    if (number_after("\"loss_permille\": ") == 0.0 &&
        number_after("\"gave_up\": ") != 0.0) {
      error = "lossless row gave up sessions";
      return false;
    }
    ++rows;
    at = end;
  }
  if (rows != expected_rows) {
    error = "expected " + std::to_string(expected_rows) + " rows, found " +
            std::to_string(rows);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_link_resilience.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE] [--metrics-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  // One attested chain, reused by every session (the prover's evidence is
  // fixed; only the link differs).
  const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const fault::CampaignOptions options;  // small MTB: multi-report chain
  const fault::AttestedRun clean = fault::attest_once(prepared, options);
  if (!clean.functional_ok || clean.reports.size() < 3) {
    std::fprintf(stderr, "error: fixture attestation failed\n");
    return 1;
  }
  const auto deployment = verify::Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry);
  verify::VerifyConfig config;
  config.expected_watermark = options.watermark_bytes;
  const double chain_wire_bytes =
      static_cast<double>(cfa::encode_report_chain(clean.reports).size());

  VerifierFarm farm(apps::demo_key(), {.workers = 4, .clamp_workers = false});
  net::VerifierEndpoint endpoint(farm);

  const u64 seeds_per_level = quick ? 4 : 40;
  const std::vector<u32> levels = {0, 100, 200, 300, 400};
  std::vector<Row> rows;
  verify::DeviceId device = 1;
  std::printf("loss    sessions  accept  goodput  dgrams/report  repairs  "
              "ticks\n");
  for (const u32 loss : levels) {
    Row row;
    row.loss_permille = loss;
    const net::LinkModel model = net::LinkModel::lossy(loss);
    u64 total_datagrams = 0, total_bytes = 0, total_repairs = 0,
        total_ticks = 0;
    const u64 repairs_before = endpoint.stats().repair_rounds;
    for (u64 s = 0; s < seeds_per_level; ++s, ++device) {
      const u64 seed = 0xbe9c'0000 + u64{loss} * 100 + s;
      farm.provision(device, deployment, config);
      farm.adopt_challenge(device, clean.chal);
      net::DuplexLink link(model, model, seed);
      net::ProverEndpoint prover(device, 1, clean.reports, {}, seed);
      const net::SessionOutcome outcome = run_session(prover, endpoint, link);
      ++row.sessions;
      if (outcome.phase == net::ProverPhase::Done) {
        if (!outcome.verdict.has_value() ||
            outcome.verdict->verdict != Verdict::Accept) {
          std::fprintf(stderr,
                       "error: loss=%u seed=%llu terminated without Accept\n",
                       loss, static_cast<unsigned long long>(seed));
          return 1;
        }
        ++row.accepted;
      } else {
        ++row.gave_up;
      }
      total_datagrams += prover.stats().datagrams_sent;
      total_bytes += link.to_verifier_stats().bytes_sent;
      total_ticks += outcome.ticks;
    }
    total_repairs = endpoint.stats().repair_rounds - repairs_before;
    row.accept_rate =
        static_cast<double>(row.accepted) / static_cast<double>(row.sessions);
    row.goodput = chain_wire_bytes * static_cast<double>(row.sessions) /
                  static_cast<double>(total_bytes);
    row.datagrams_per_report =
        static_cast<double>(total_datagrams) /
        static_cast<double>(row.sessions * clean.reports.size());
    row.avg_repair_rounds = static_cast<double>(total_repairs) /
                            static_cast<double>(row.sessions);
    row.avg_ticks = static_cast<double>(total_ticks) /
                    static_cast<double>(row.sessions);
    std::printf("%3u%%  %9llu  %5.1f%%  %7.3f  %13.2f  %7.2f  %6.0f\n",
                loss / 10, static_cast<unsigned long long>(row.sessions),
                row.accept_rate * 100.0, row.goodput, row.datagrams_per_report,
                row.avg_repair_rounds, row.avg_ticks);
    rows.push_back(row);
  }

  const std::string json = render_json(rows, quick);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
  }

  // Self-validate what actually landed on disk.
  std::ifstream in(out_path);
  std::stringstream readback;
  readback << in.rdbuf();
  std::string error;
  if (!validate(readback.str(), rows.size(), error)) {
    std::fprintf(stderr, "error: %s failed schema validation: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows, schema ok)\n", out_path.c_str(),
              rows.size());

  // net.* / farm.* counters in JSON-lines, same registry the tests assert on.
  if (!metrics_path.empty()) {
    if (!raptrack::obs::kEnabled) {
      std::fprintf(stderr,
                   "warning: --metrics-out requested but this is a "
                   "RAP_OBS=OFF build; writing an empty metrics file\n");
    }
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    metrics << raptrack::obs::registry().scrape().json_lines();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
