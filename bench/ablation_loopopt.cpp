// Ablation — the §IV-D loop optimization and §IV-C deterministic-loop
// elision: CF_Log and runtime with each optimization toggled off, showing
// where the savings in Figures 8/9 come from (the paper calls out
// ultrasonic and syringe as the showcase apps).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::u64;
using raptrack::bench::kSeed;
namespace apps = raptrack::apps;

struct Variant {
  const char* label;
  bool loop_opt;
  bool det_elision;
};

constexpr Variant kVariants[] = {
    {"full", true, true},
    {"no-loopopt", false, true},
    {"no-detelide", true, false},
    {"neither", false, false},
};

struct Measured {
  u64 cflog = 0;
  u64 cycles = 0;
  u64 switches = 0;
};

Measured measure(const char* app_name, const Variant& variant) {
  raptrack::rewrite::RewriteOptions options;
  options.loop_optimization = variant.loop_opt;
  options.deterministic_loop_elision = variant.det_elision;
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name(app_name), options);
  raptrack::sim::MachineConfig config;
  config.mtb_buffer_bytes = 1 << 22;
  const auto run = apps::run_rap(prepared, kSeed, config);
  return {run.attestation.metrics.cflog_bytes,
          run.attestation.metrics.exec_cycles,
          run.attestation.metrics.world_switches};
}

void print_table() {
  std::printf("\n=== Ablation: loop optimization & deterministic elision ===\n");
  std::printf("%-12s %-12s %12s %12s %10s\n", "app", "variant", "cflog[B]",
              "cycles", "switches");
  for (const char* name :
       {"ultrasonic", "syringe", "crc32", "matmult", "gps"}) {
    for (const auto& variant : kVariants) {
      const Measured m = measure(name, variant);
      std::printf("%-12s %-12s %12llu %12llu %10llu\n", name, variant.label,
                  static_cast<unsigned long long>(m.cflog),
                  static_cast<unsigned long long>(m.cycles),
                  static_cast<unsigned long long>(m.switches));
    }
  }
}

void BM_LoopOpt(benchmark::State& state) {
  const Variant& variant = kVariants[static_cast<size_t>(state.range(0))];
  Measured m;
  for (auto _ : state) {
    m = measure("ultrasonic", variant);
    benchmark::DoNotOptimize(m.cflog);
  }
  state.SetLabel(variant.label);
  state.counters["cflog_B"] = static_cast<double>(m.cflog);
  state.counters["cycles"] = static_cast<double>(m.cycles);
}
BENCHMARK(BM_LoopOpt)->DenseRange(0, 3)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
