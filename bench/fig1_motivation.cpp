// Figure 1 — the paper's motivation: (a) naive MTB-based logging produces
// CF_Logs 1.9-217x larger than instrumentation-based CFA; (b)
// instrumentation-based CFA adds 1.1-14.1x runtime over the uninstrumented
// baseline while naive MTB adds none.
//
// (a) compares against the *most compact* instrumented encoding
// (bit-packed conditionals) — the paper's motivation contrasts the naive
// blowup with the best the instrumentation-based state of the art can do.
// Figure 9 separately compares RAP-Track against TRACES's default
// encoding.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::bench::all_results;
using raptrack::bench::ratio;

void print_figure1() {
  std::printf("\n=== Figure 1(a): CF_Log size, naive MTB vs instrumentation-based CFA ===\n");
  std::printf("%-12s %14s %14s %10s\n", "app", "naive[B]", "instr[B]",
              "naive/instr");
  double min_ratio = 1e18, max_ratio = 0;
  for (const auto& r : all_results()) {
    const double rr = ratio(static_cast<double>(r.naive.cflog_bytes),
                            static_cast<double>(r.traces_packed.cflog_bytes));
    min_ratio = std::min(min_ratio, rr);
    max_ratio = std::max(max_ratio, rr);
    std::printf("%-12s %14llu %14llu %9.1fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.naive.cflog_bytes),
                static_cast<unsigned long long>(r.traces_packed.cflog_bytes), rr);
  }
  std::printf("range: %.1fx to %.1fx larger (paper: 1.9x to 217x)\n",
              min_ratio, max_ratio);

  std::printf("\n=== Figure 1(b): runtime, instrumentation-based CFA vs baseline ===\n");
  std::printf("%-12s %14s %14s %14s %12s\n", "app", "baseline[cy]",
              "naiveMTB[cy]", "instr[cy]", "instr/base");
  double min_rt = 1e18, max_rt = 0;
  for (const auto& r : all_results()) {
    const double rr = ratio(static_cast<double>(r.traces.exec_cycles),
                            static_cast<double>(r.baseline.exec_cycles));
    min_rt = std::min(min_rt, rr);
    max_rt = std::max(max_rt, rr);
    std::printf("%-12s %14llu %14llu %14llu %11.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.baseline.exec_cycles),
                static_cast<unsigned long long>(r.naive.exec_cycles),
                static_cast<unsigned long long>(r.traces.exec_cycles), rr);
  }
  std::printf("range: %.2fx to %.2fx (paper: 1.1x to 14.1x); "
              "naive MTB == baseline by construction\n",
              min_rt, max_rt);
}

void BM_Fig1_LogRatio(benchmark::State& state) {
  const auto& r = all_results()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.naive.cflog_bytes);
  }
  state.SetLabel(r.name);
  state.counters["naive_bytes"] = static_cast<double>(r.naive.cflog_bytes);
  state.counters["instr_bytes"] =
      static_cast<double>(r.traces_packed.cflog_bytes);
  state.counters["ratio"] =
      ratio(static_cast<double>(r.naive.cflog_bytes),
            static_cast<double>(r.traces_packed.cflog_bytes));
}
BENCHMARK(BM_Fig1_LogRatio)->DenseRange(0, 12)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
