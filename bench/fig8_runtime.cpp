// Figure 8 — runtime comparison (CPU cycles) across baseline, naive MTB,
// RAP-Track, and TRACES. Shape to reproduce: naive == baseline; RAP-Track
// adds 2-62% over naive; TRACES adds 7-1309%.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::bench::all_results;
using raptrack::bench::percent_over;

void print_figure8() {
  std::printf("\n=== Figure 8: runtime (CPU cycles) per method ===\n");
  std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "app", "baseline",
              "naiveMTB", "RAP-Track", "TRACES", "RAP+%", "TRACES+%");
  double rap_min = 1e18, rap_max = -1e18, tr_min = 1e18, tr_max = -1e18;
  for (const auto& r : all_results()) {
    const double rap_pct = percent_over(static_cast<double>(r.rap.exec_cycles),
                                        static_cast<double>(r.naive.exec_cycles));
    const double tr_pct = percent_over(static_cast<double>(r.traces.exec_cycles),
                                       static_cast<double>(r.naive.exec_cycles));
    rap_min = std::min(rap_min, rap_pct);
    rap_max = std::max(rap_max, rap_pct);
    tr_min = std::min(tr_min, tr_pct);
    tr_max = std::max(tr_max, tr_pct);
    std::printf("%-12s %12llu %12llu %12llu %12llu %9.1f%% %9.1f%%\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.baseline.exec_cycles),
                static_cast<unsigned long long>(r.naive.exec_cycles),
                static_cast<unsigned long long>(r.rap.exec_cycles),
                static_cast<unsigned long long>(r.traces.exec_cycles), rap_pct,
                tr_pct);
  }
  std::printf("RAP-Track over naive MTB: %.1f%% to %.1f%% (paper: 2%% to 62%%)\n",
              rap_min, rap_max);
  std::printf("TRACES over naive MTB: %.1f%% to %.1f%% (paper: 7%% to 1309%%)\n",
              tr_min, tr_max);
  std::printf("\nWorld switches (context switches into the Secure World):\n");
  std::printf("%-12s %12s %12s\n", "app", "RAP-Track", "TRACES");
  for (const auto& r : all_results()) {
    std::printf("%-12s %12llu %12llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.rap.world_switches),
                static_cast<unsigned long long>(r.traces.world_switches));
  }
}

void BM_Fig8_Runtime(benchmark::State& state) {
  const auto& r = all_results()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.rap.exec_cycles);
  }
  state.SetLabel(r.name);
  state.counters["baseline_cy"] = static_cast<double>(r.baseline.exec_cycles);
  state.counters["naive_cy"] = static_cast<double>(r.naive.exec_cycles);
  state.counters["rap_cy"] = static_cast<double>(r.rap.exec_cycles);
  state.counters["traces_cy"] = static_cast<double>(r.traces.exec_cycles);
}
BENCHMARK(BM_Fig8_Runtime)->DenseRange(0, 12)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
