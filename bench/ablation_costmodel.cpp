// Ablation — cost-model sensitivity: the obvious critique of a simulated
// reproduction is "your TrustZone costs are made up". This sweep varies the
// Non-Secure <-> Secure world-switch cost from 0 (free, absurdly
// optimistic for instrumentation-based CFA) to 4x our calibrated default
// and shows the paper's runtime ordering (baseline = naive <= RAP-Track <
// TRACES) survives the whole range: even with free switches TRACES still
// executes its veneer branches, SVC traps, and logging services.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::Cycles;
using raptrack::bench::kSeed;
namespace apps = raptrack::apps;

struct Sweep {
  const char* label;
  double scale;  // multiplier on ns_to_secure / secure_to_ns
};

constexpr Sweep kSweeps[] = {
    {"free-switch", 0.0}, {"half", 0.5}, {"default", 1.0},
    {"double", 2.0},      {"4x", 4.0},
};

struct Row {
  Cycles baseline, rap, traces;
};

Row measure(const char* app_name, double scale) {
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name(app_name));
  raptrack::sim::MachineConfig config;
  config.mtb_buffer_bytes = 1 << 22;
  config.cost_model.ns_to_secure =
      static_cast<Cycles>(raptrack::tz::CostModel{}.ns_to_secure * scale);
  config.cost_model.secure_to_ns =
      static_cast<Cycles>(raptrack::tz::CostModel{}.secure_to_ns * scale);

  Row row;
  row.baseline =
      apps::run_baseline(prepared, kSeed, config).attestation.metrics.exec_cycles;
  row.rap = apps::run_rap(prepared, kSeed, config).attestation.metrics.exec_cycles;
  row.traces =
      apps::run_traces(prepared, kSeed, config).attestation.metrics.exec_cycles;
  return row;
}

void print_table() {
  std::printf("\n=== Ablation: world-switch cost sensitivity ===\n");
  std::printf("%-12s %-12s %12s %12s %12s %14s\n", "app", "switch-cost",
              "baseline", "RAP-Track", "TRACES", "TRACES/RAP");
  for (const char* name : {"gps", "temperature", "matmult"}) {
    for (const auto& sweep : kSweeps) {
      const Row row = measure(name, sweep.scale);
      std::printf("%-12s %-12s %12llu %12llu %12llu %13.2fx\n", name,
                  sweep.label, static_cast<unsigned long long>(row.baseline),
                  static_cast<unsigned long long>(row.rap),
                  static_cast<unsigned long long>(row.traces),
                  static_cast<double>(row.traces) / static_cast<double>(row.rap));
    }
  }
  std::printf("\nOrdering baseline <= RAP-Track < TRACES holds at every "
              "switch cost, including zero.\n");
}

void BM_CostModel(benchmark::State& state) {
  const Sweep& sweep = kSweeps[static_cast<size_t>(state.range(0))];
  Row row{};
  for (auto _ : state) {
    row = measure("gps", sweep.scale);
    benchmark::DoNotOptimize(row.traces);
  }
  state.SetLabel(sweep.label);
  state.counters["rap_cy"] = static_cast<double>(row.rap);
  state.counters["traces_cy"] = static_cast<double>(row.traces);
}
BENCHMARK(BM_CostModel)->DenseRange(0, 4)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
