// Host-simulator throughput bench: simulated MIPS per app x method for both
// execution paths (decode-per-step oracle vs predecoded fast path), written
// as machine-readable JSON so CI and EXPERIMENTS.md can track the speedup.
//
//   bench_throughput [--quick] [--out FILE] [--metrics-out FILE]
//
// Emits BENCH_sim_throughput.json with one row per (app, method, path),
// where path is "oracle" (decode-per-step), "slot" (predecoded, superblock
// fusion disabled — the ablation row), or "fast" (predecoded + superblock
// fusion + deferred MTB emission):
//   { "app", "method", "path", "instructions", "wall_ns", "mips", "speedup" }
// plus the geometric-mean "fast" speedup over all (app, method) pairs. The binary
// re-reads and validates the emitted file against that schema and exits
// nonzero on any violation, so the bench-smoke ctest catches format drift.
//
// Wall-clock here measures the *simulator*, not the modeled device — the
// modeled cycle counts are identical on both paths by construction (see
// tests/test_fastpath.cpp).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "obs/metrics.hpp"

namespace {

namespace apps = raptrack::apps;
using raptrack::u64;

enum class Path { kOracle, kSlot, kFast };

const char* path_name(Path p) {
  switch (p) {
    case Path::kOracle: return "oracle";
    case Path::kSlot: return "slot";
    case Path::kFast: return "fast";
  }
  return "?";
}

struct Row {
  std::string app;
  std::string method;
  std::string path;  // "oracle", "slot", or "fast"
  u64 instructions = 0;
  u64 wall_ns = 0;
  double mips = 0.0;
  double speedup = 1.0;  // oracle_wall / wall for the same (app, method)
};

using MethodFn = apps::MethodRun (*)(const apps::PreparedApp&, u64,
                                     const raptrack::sim::MachineConfig&);

apps::MethodRun naive_fn(const apps::PreparedApp& p, u64 seed,
                         const raptrack::sim::MachineConfig& c) {
  return apps::run_naive(p, seed, c);
}
apps::MethodRun rap_fn(const apps::PreparedApp& p, u64 seed,
                       const raptrack::sim::MachineConfig& c) {
  return apps::run_rap(p, seed, c);
}
apps::MethodRun traces_fn(const apps::PreparedApp& p, u64 seed,
                          const raptrack::sim::MachineConfig& c) {
  return apps::run_traces(p, seed, c);
}
apps::MethodRun baseline_fn(const apps::PreparedApp& p, u64 seed,
                            const raptrack::sim::MachineConfig& c) {
  return apps::run_baseline(p, seed, c);
}

/// Best-of-N wall time for one method run on one path.
Row measure(const std::string& app, const std::string& method, MethodFn fn,
            const apps::PreparedApp& prepared, Path path, int reps) {
  raptrack::sim::MachineConfig config;
  // Large enough that no registry app fills the buffer mid-run (the longest
  // logs ~14k packets = 112 KiB), so no watermark pauses perturb the timing;
  // small enough that per-rep Machine teardown does not dominate tiny apps.
  config.mtb_buffer_bytes = 1 << 18;
  config.fast_path = path != Path::kOracle;
  config.superblocks = path == Path::kFast;
  // The oracle tracer is test instrumentation (ground-truth branch history
  // for the differential harness); it is not part of the simulated device,
  // so the throughput bench measures the machine without it.
  config.enable_oracle = false;

  Row row;
  row.app = app;
  row.method = method;
  row.path = path_name(path);
  row.wall_ns = ~0ull;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const apps::MethodRun run = fn(prepared, 42, config);
    const auto t1 = std::chrono::steady_clock::now();
    row.instructions = run.attestation.metrics.instructions;
    row.wall_ns = std::min(
        row.wall_ns, static_cast<u64>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             t1 - t0)
                             .count()));
  }
  if (row.wall_ns == 0) row.wall_ns = 1;
  row.mips = static_cast<double>(row.instructions) * 1000.0 /
             static_cast<double>(row.wall_ns);
  return row;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string render_json(const std::vector<Row>& rows, double geomean,
                        bool release, bool quick) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"sim_throughput\",\n";
  os << "  \"release\": " << (release ? "true" : "false") << ",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"geomean_speedup\": " << geomean << ",\n";
  os << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"app\": \"" << json_escape(r.app) << "\", \"method\": \""
       << json_escape(r.method) << "\", \"path\": \"" << r.path
       << "\", \"instructions\": " << r.instructions
       << ", \"wall_ns\": " << r.wall_ns << ", \"mips\": " << r.mips
       << ", \"speedup\": " << r.speedup << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check over the emitted text: every row object must carry
/// all seven keys with a sane value, and the top level must carry the bench
/// id and geomean. (Not a JSON parser — a drift tripwire for the exact
/// format this binary writes.)
bool validate(const std::string& text, size_t expected_rows,
              std::string& error) {
  for (const char* key :
       {"\"bench\": \"sim_throughput\"", "\"geomean_speedup\": ",
        "\"release\": ", "\"quick\": ", "\"rows\": ["}) {
    if (text.find(key) == std::string::npos) {
      error = std::string("missing top-level key: ") + key;
      return false;
    }
  }
  size_t rows = 0;
  size_t at = 0;
  while ((at = text.find("{\"app\": ", at)) != std::string::npos) {
    const size_t end = text.find('}', at);
    if (end == std::string::npos) {
      error = "unterminated row object";
      return false;
    }
    const std::string row = text.substr(at, end - at + 1);
    for (const char* key : {"\"app\": \"", "\"method\": \"", "\"path\": \"",
                            "\"instructions\": ", "\"wall_ns\": ",
                            "\"mips\": ", "\"speedup\": "}) {
      if (row.find(key) == std::string::npos) {
        error = "row " + std::to_string(rows) + " missing key " + key;
        return false;
      }
    }
    if (row.find("\"path\": \"fast\"") == std::string::npos &&
        row.find("\"path\": \"slot\"") == std::string::npos &&
        row.find("\"path\": \"oracle\"") == std::string::npos) {
      error = "row " + std::to_string(rows) + " has an unknown path";
      return false;
    }
    const u64 wall = std::strtoull(
        row.c_str() + row.find("\"wall_ns\": ") + strlen("\"wall_ns\": "),
        nullptr, 10);
    if (wall == 0) {
      error = "row " + std::to_string(rows) + " has wall_ns == 0";
      return false;
    }
    ++rows;
    at = end;
  }
  if (rows != expected_rows) {
    error = "expected " + std::to_string(expected_rows) + " rows, found " +
            std::to_string(rows);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_sim_throughput.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE] [--metrics-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

#ifdef RAP_RELEASE_BUILD
  const bool release = true;
#else
  const bool release = false;
  std::fprintf(stderr,
               "warning: not a RAP_RELEASE build — wall-clock numbers are "
               "not representative (use: cmake --preset release)\n");
#endif

  const struct { const char* name; MethodFn fn; } methods[] = {
      {"baseline", baseline_fn},
      {"naive", naive_fn},
      {"rap", rap_fn},
      {"traces", traces_fn},
  };

  // Best-of-N wall time: N high enough to shake off scheduler noise on
  // small single-core runners (each rep is well under a millisecond).
  const int reps = quick ? 1 : 9;
  std::vector<Row> all;
  double log_sum = 0.0;
  size_t pairs = 0;
  for (const auto& app : apps::app_registry()) {
    if (quick && pairs >= 2 * std::size(methods)) break;  // 2 apps suffice
    const apps::PreparedApp prepared = apps::prepare_app(app);
    for (const auto& method : methods) {
      Row oracle = measure(app.name, method.name, method.fn, prepared,
                           Path::kOracle, reps);
      Row slot = measure(app.name, method.name, method.fn, prepared,
                         Path::kSlot, reps);
      Row fast = measure(app.name, method.name, method.fn, prepared,
                         Path::kFast, reps);
      slot.speedup = static_cast<double>(oracle.wall_ns) /
                     static_cast<double>(slot.wall_ns);
      fast.speedup = static_cast<double>(oracle.wall_ns) /
                     static_cast<double>(fast.wall_ns);
      // The headline geomean stays over the "fast" rows; "slot" is the
      // fusion-off ablation (EXPERIMENTS.md reports both).
      log_sum += std::log(fast.speedup);
      ++pairs;
      std::printf(
          "%-14s %-8s oracle %7.2f MIPS   slot %8.2f MIPS %5.2fx   "
          "fast %8.2f MIPS %5.2fx\n",
          app.name.c_str(), method.name, oracle.mips, slot.mips, slot.speedup,
          fast.mips, fast.speedup);
      all.push_back(std::move(oracle));
      all.push_back(std::move(slot));
      all.push_back(std::move(fast));
    }
  }
  const double geomean = std::exp(log_sum / static_cast<double>(pairs));
  std::printf("geomean speedup over %zu app x method pairs: %.2fx%s\n", pairs,
              geomean, release ? "" : "  (non-release build)");

  const std::string json = render_json(all, geomean, release, quick);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
  }

  // Self-validate what actually landed on disk.
  std::ifstream in(out_path);
  std::stringstream readback;
  readback << in.rdbuf();
  std::string error;
  if (!validate(readback.str(), all.size(), error)) {
    std::fprintf(stderr, "error: %s failed schema validation: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows, schema ok)\n", out_path.c_str(),
              all.size());

  // Scrape the observability registry alongside the timing rows, so a bench
  // run leaves the same counters CI dashboards consume (JSON-lines).
  if (!metrics_path.empty()) {
    if (!raptrack::obs::kEnabled) {
      std::fprintf(stderr,
                   "warning: --metrics-out requested but this is a "
                   "RAP_OBS=OFF build; writing an empty metrics file\n");
    }
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    metrics << raptrack::obs::registry().scrape().json_lines();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
