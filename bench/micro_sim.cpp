// Microbenchmarks of the infrastructure itself: simulator throughput,
// assembler, offline rewriting passes, crypto primitives, and verifier
// replay speed. These use google-benchmark's timing loop properly (the
// fig* benches report simulated-cycle counters instead).
#include <benchmark/benchmark.h>

#include "apps/runner.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace {

namespace apps = raptrack::apps;
using raptrack::u8;
using raptrack::u64;

void BM_SimulatorThroughput(benchmark::State& state) {
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name("bubblesort"));
  u64 instructions = 0;
  for (auto _ : state) {
    const auto run = apps::run_baseline(prepared, 42);
    instructions += run.attestation.metrics.instructions;
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_Assembler(benchmark::State& state) {
  const auto& app = apps::app_by_name("gps");
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::build_app(app));
  }
}
BENCHMARK(BM_Assembler);

void BM_RapRewrite(benchmark::State& state) {
  const auto built = apps::build_app(apps::app_by_name("gps"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raptrack::rewrite::rewrite_for_rap_track(
        built.program, built.entry, built.code_begin, built.code_end));
  }
}
BENCHMARK(BM_RapRewrite);

void BM_TracesRewrite(benchmark::State& state) {
  const auto built = apps::build_app(apps::app_by_name("gps"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raptrack::instr::rewrite_for_traces(
        built.program, built.entry, built.code_begin, built.code_end));
  }
}
BENCHMARK(BM_TracesRewrite);

void BM_Sha256(benchmark::State& state) {
  std::vector<u8> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(raptrack::crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  std::vector<u8> key(32, 0x11);
  std::vector<u8> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(raptrack::crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(1024)->Arg(65536);

void BM_EndToEndAttestation(benchmark::State& state) {
  const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::run_rap(prepared, 42));
  }
}
BENCHMARK(BM_EndToEndAttestation);

void BM_VerifierReplay(benchmark::State& state) {
  const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  raptrack::verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  std::vector<raptrack::cfa::Challenge> chals;
  std::vector<std::vector<raptrack::cfa::SignedReport>> report_sets;
  for (int i = 0; i < 64; ++i) {
    chals.push_back(verifier.fresh_challenge());
    report_sets.push_back(
        apps::run_rap(prepared, 42, {}, {}, chals.back()).attestation.reports);
  }
  size_t i = 0;
  for (auto _ : state) {
    if (i >= chals.size()) {
      state.SkipWithError("challenge pool exhausted");
      break;
    }
    benchmark::DoNotOptimize(verifier.verify(chals[i], report_sets[i]));
    ++i;
  }
}
BENCHMARK(BM_VerifierReplay)->Iterations(32);

}  // namespace

BENCHMARK_MAIN();
