// Figure 9 — CF_Log size comparison: naive MTB vs RAP-Track vs TRACES.
// Shape to reproduce: naive >> {RAP-Track ~ TRACES}; loop optimization
// shines on ultrasonic/syringe.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using raptrack::bench::all_results;
using raptrack::bench::ratio;

void print_figure9() {
  std::printf("\n=== Figure 9: CF_Log size (bytes) per method ===\n");
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "app", "naiveMTB",
              "RAP-Track", "TRACES", "naive/RAP", "RAP/TRACES");
  for (const auto& r : all_results()) {
    std::printf("%-12s %12llu %12llu %12llu %11.1fx %11.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.naive.cflog_bytes),
                static_cast<unsigned long long>(r.rap.cflog_bytes),
                static_cast<unsigned long long>(r.traces.cflog_bytes),
                ratio(static_cast<double>(r.naive.cflog_bytes),
                      static_cast<double>(r.rap.cflog_bytes)),
                ratio(static_cast<double>(r.rap.cflog_bytes),
                      static_cast<double>(r.traces.cflog_bytes)));
  }
  std::printf("\n4KB-MTB feasibility (paper §V-B): apps whose whole RAP-Track "
              "CF_Log fits one 4KB buffer:\n");
  int fits = 0;
  for (const auto& r : all_results()) {
    const bool ok = r.rap.cflog_bytes <= 4096;
    fits += ok;
    std::printf("  %-12s %s (%llu bytes)\n", r.name.c_str(),
                ok ? "fits" : "needs partial reports",
                static_cast<unsigned long long>(r.rap.cflog_bytes));
  }
  std::printf("%d/%zu apps need only the single final transmission\n", fits,
              all_results().size());
}

void BM_Fig9_CflogBytes(benchmark::State& state) {
  const auto& r = all_results()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.rap.cflog_bytes);
  }
  state.SetLabel(r.name);
  state.counters["naive_B"] = static_cast<double>(r.naive.cflog_bytes);
  state.counters["rap_B"] = static_cast<double>(r.rap.cflog_bytes);
  state.counters["traces_B"] = static_cast<double>(r.traces.cflog_bytes);
}
BENCHMARK(BM_Fig9_CflogBytes)->DenseRange(0, 12)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
