// Path reconstruction: attest the temperature-sensor app, then print the
// Verifier's losslessly reconstructed control-flow path side by side with
// the rewrite manifest — mapping MTBAR slot addresses back to the original
// branch sites a human auditor would care about.
//
//   $ ./path_reconstruction
#include <cstdio>

#include "apps/runner.hpp"
#include "verify/audit.hpp"
#include "common/hex.hpp"

using namespace raptrack;

namespace {

const char* kind_name(isa::BranchKind kind) {
  switch (kind) {
    case isa::BranchKind::Direct: return "b";
    case isa::BranchKind::DirectCall: return "bl";
    case isa::BranchKind::Conditional: return "bcc";
    case isa::BranchKind::IndirectCall: return "blx";
    case isa::BranchKind::IndirectJump: return "indirect";
    case isa::BranchKind::Return: return "return";
    default: return "?";
  }
}

}  // namespace

int main() {
  const auto prepared = apps::prepare_app(apps::app_by_name("temperature"));
  const auto& manifest = prepared.rap.manifest;

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, manifest, prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const auto run = apps::run_rap(prepared, /*seed=*/7, {}, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);

  std::printf("verification: %s; %zu transfers reconstructed (lossless: %s)\n\n",
              result.accepted() ? "ACCEPTED" : result.detail.c_str(),
              result.replay.events.size(),
              result.replay.events == run.oracle ? "yes" : "NO");

  std::printf("%-4s %-12s %-12s %-9s %s\n", "#", "source", "dest", "kind",
              "annotation");
  const size_t limit = std::min<size_t>(result.replay.events.size(), 40);
  for (size_t i = 0; i < limit; ++i) {
    const auto& event = result.replay.events[i];
    std::string note;
    if (const auto* slot = manifest.slot_containing(event.source)) {
      note = std::string("MTBAR slot for ") +
             rewrite::slot_kind_name(slot->kind) + " at " + hex32(slot->site);
    } else if (event.source >= manifest.mtbar_base) {
      note = "MTBAR";
    } else if (const auto* slot = manifest.slot_for_site(event.source)) {
      note = std::string("trampoline entry (") +
             rewrite::slot_kind_name(slot->kind) + ")";
    }
    std::printf("%-4zu %-12s %-12s %-9s %s\n", i, hex32(event.source).c_str(),
                hex32(event.destination).c_str(), kind_name(event.kind),
                note.c_str());
  }
  if (result.replay.events.size() > limit) {
    std::printf("... (%zu more)\n", result.replay.events.size() - limit);
  }

  std::printf("\nmanifest summary: %zu slots, %zu loop veneers, "
              "%zu statically deterministic loops\n\n",
              manifest.slots.size(), manifest.loop_veneers.size(),
              manifest.deterministic_loops.size());

  // Structured audit of the same evidence.
  const auto audit =
      verify::audit_verification(result, prepared.rap.program, &manifest);
  std::fputs(verify::format_audit(audit).c_str(), stdout);
  return result.accepted() ? 0 : 1;
}
