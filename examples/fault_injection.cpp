// Fault-injection demo: attest the GPS parser once, then attack the signed
// report chain with every transport-level injector and glitch the device
// with every pre-sign injector, printing the verdict the Verifier reaches
// for each. The point on display is the verdict taxonomy: tampering is
// REJECTED with a reason, honest link damage is INCONCLUSIVE with an audit
// trail (gaps, resync notes), and only the untouched chain is ACCEPTED.
//
//   $ ./fault_injection [seed]
#include <cstdio>
#include <cstdlib>

#include "fault/campaign.hpp"
#include "verify/audit.hpp"

using namespace raptrack;

int main(int argc, char** argv) {
  const u64 seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 2026;
  const auto prepared = apps::prepare_app(apps::app_by_name("gps"));

  const auto clean = fault::attest_once(prepared);
  std::printf("clean attestation: %zu signed reports\n", clean.reports.size());
  const auto baseline = fault::run_clean(prepared);
  std::printf("clean verdict:     %s\n\n",
              verify::verdict_name(baseline.verdict));

  std::printf("-- transport-level faults (post-sign, on the Prv->Vrf link) --\n");
  for (const auto kind : fault::transport_injectors()) {
    const auto outcome = fault::verify_mutated(prepared, clean, kind, seed);
    std::printf("%-22s -> %-12s", fault::injector_name(kind),
                outcome.wire_rejected ? "WIRE-REJECT"
                                      : verify::verdict_name(outcome.verdict));
    if (!outcome.records.empty()) {
      std::printf("  (%s)", outcome.records.front().detail.c_str());
    }
    std::printf("\n");
  }

  // Device-level faults re-run the prover with a glitch armed; use the
  // syringe pump app, whose §IV-D loop veneers give the SVC gateway faults
  // live loop-condition calls to attack.
  const auto syringe = apps::prepare_app(apps::app_by_name("syringe"));
  std::printf("\n-- device-level faults (pre-sign, glitching the prover) --\n");
  for (const auto kind : fault::device_injectors()) {
    const auto outcome = fault::run_device_fault(syringe, kind, seed);
    std::printf("%-22s -> %-12s", fault::injector_name(kind),
                verify::verdict_name(outcome.verdict));
    if (!outcome.records.empty()) {
      std::printf("  (%s)", outcome.records.front().detail.c_str());
    } else {
      std::printf("  (injector found nothing to corrupt)");
    }
    std::printf("\n");
  }

  // Show the audit trail for one damaged-but-honest chain: drop a middle
  // partial report, as a lossy link would.
  auto lossy = clean.reports;
  lossy.erase(lossy.begin() + 1);
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.adopt_challenge(clean.chal);
  const auto result = verifier.verify(clean.chal, lossy);
  const auto audit = verify::audit_verification(result, prepared.rap.program,
                                                &prepared.rap.manifest);
  std::printf("\n-- audit trail for a chain missing one partial report --\n%s\n",
              verify::format_audit(audit).c_str());

  return baseline.verdict == verify::Verdict::Accept ? 0 : 1;
}
