// Quickstart: the whole RAP-Track pipeline on a tiny program —
// assemble -> offline rewrite (MTBAR/MTBDR + trampolines) -> attest on the
// simulated Cortex-M33-class device (DWT-gated MTB tracing) -> verify and
// losslessly reconstruct the control-flow path.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"
#include "common/hex.hpp"

using namespace raptrack;

int main() {
  // 1. An application: computes sum of 1..n for a data-dependent n, via a
  //    helper called through a function pointer.
  const char* source = R"asm(
.equ TICKS,  0x40000040
.equ RESULT, 0x20200000

_start:
    li r0, =TICKS
    ldr r0, [r0]           ; data-dependent n
    andi r0, r0, #15
    li r3, =sum_to_n
    blx r3                 ; indirect call -> Fig 3 trampoline
    li r1, =RESULT
    str r0, [r1]
    hlt

sum_to_n:                  ; r0 = n -> r0 = 1 + 2 + ... + n
    push {r4, lr}
    mov r4, r0
    movi r0, #0
    mov r1, r4             ; variable loop -> §IV-D loop optimization
loop:
    add r0, r0, r1
    sub r1, r1, #1
    cmp r1, #0
    bgt loop
    pop {r4, pc}           ; monitored return -> Fig 4 trampoline
__code_end:
)asm";

  const Program original = assemble(source, apps::kAppBase);
  const Address entry = *original.symbol("_start");
  const Address code_end = *original.symbol("__code_end");
  std::printf("assembled %u bytes of application code\n", original.size());

  // 2. Offline phase: RAP-Track static rewriting.
  const auto rewritten = rewrite::rewrite_for_rap_track(
      original, entry, original.base(), code_end);
  std::printf("rewritten image: %u bytes, %u MTBAR slots, %u loop veneers\n",
              rewritten.program.size(), rewritten.slot_count,
              rewritten.veneer_count);
  std::printf("MTBDR = [%s, %s], MTBAR = [%s, %s]\n",
              hex32(rewritten.manifest.mtbdr_base).c_str(),
              hex32(rewritten.manifest.mtbdr_limit).c_str(),
              hex32(rewritten.manifest.mtbar_base).c_str(),
              hex32(rewritten.manifest.mtbar_limit).c_str());

  // 3. Verifier issues a fresh challenge.
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(rewritten.program, rewritten.manifest, entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  // 4. Prover side: run the attested application on the device.
  sim::Machine machine;
  auto periph = std::make_shared<apps::Peripherals>();
  periph->tick_step = 11;  // the "sensor" input: n = 11
  periph->attach(machine);

  cfa::RapProver prover(rewritten.program, rewritten.manifest, entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);
  std::printf("\nrun: %llu instructions, %llu cycles, CF_Log %llu bytes, "
              "%llu world switch(es)\n",
              (unsigned long long)run.metrics.instructions,
              (unsigned long long)run.metrics.exec_cycles,
              (unsigned long long)run.metrics.cflog_bytes,
              (unsigned long long)run.metrics.world_switches);
  std::printf("result in RAM: sum(1..11) = %u\n",
              machine.memory().raw_read32(0x2020'0000));

  // 5. Verifier: authenticate and reconstruct.
  const auto result = verifier.verify(chal, run.reports);
  std::printf("\nverification: %s\n",
              result.accepted() ? "ACCEPTED" : result.detail.c_str());
  std::printf("reconstructed %zu control-flow transfers losslessly\n",
              result.replay.events.size());
  const auto& oracle = machine.oracle().events();
  std::printf("matches ground-truth oracle: %s\n",
              result.replay.events == oracle ? "yes" : "NO");
  return result.accepted() && result.replay.events == oracle ? 0 : 1;
}
