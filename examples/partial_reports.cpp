// Partial reports (§IV-E): run the GPS parser with a deliberately tiny MTB
// watermark so CF_Log is streamed to the Verifier as a chain of signed
// partial reports, then verify the whole chain and reconstruct the path.
//
//   $ ./partial_reports
#include <cstdio>

#include "apps/runner.hpp"

using namespace raptrack;

int main() {
  const auto prepared = apps::prepare_app(apps::app_by_name("gps"));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  // A 256-byte MTB with a 128-byte watermark: 16 packets per chunk.
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 256;
  cfa::SessionOptions options;
  options.watermark_bytes = 128;

  const auto run = apps::run_rap(prepared, /*seed=*/2026, config, options, chal);

  std::printf("gps run: %llu cycles, CF_Log %llu bytes total\n",
              (unsigned long long)run.attestation.metrics.exec_cycles,
              (unsigned long long)run.attestation.metrics.cflog_bytes);
  std::printf("partial reports: %u (pause cost %llu cycles)\n",
              run.attestation.metrics.partial_reports,
              (unsigned long long)run.attestation.metrics.pause_cycles);
  for (const auto& report : run.attestation.reports) {
    std::printf("  report seq=%u %s payload=%zu bytes\n", report.sequence,
                report.final_report ? "[final]" : "[partial]",
                report.payload.size());
  }

  const auto result = verifier.verify(chal, run.attestation.reports);
  std::printf("\nchain verification: %s\n",
              result.accepted() ? "ACCEPTED" : result.detail.c_str());
  std::string lossless = "NO";
  if (result.replay.events == run.oracle) {
    lossless = "yes (exact)";
  } else {
    // The GPS parser has silently-rejoining leaf helpers, so the log can
    // admit several benign attributions (see README); confirm the true
    // path is among the accepted parses.
    verify::PathReplayer checker(prepared.rap.program, prepared.built.entry,
                                 verify::ReplayMode::Rap);
    checker.set_rap_manifest(&prepared.rap.manifest);
    if (checker.check_path(run.oracle, result.inputs).complete) {
      lossless = "yes (up to attribution equivalence)";
    }
  }
  std::printf("reconstructed %zu transfers; lossless vs oracle: %s\n",
              result.replay.events.size(), lossless.c_str());

  // Contrast: naive MTB logging at the paper's 4KB buffer size.
  sim::MachineConfig paper_mtb;
  paper_mtb.mtb_buffer_bytes = 4096;
  const auto naive = apps::run_naive(prepared, 2026, paper_mtb);
  const auto rap4k = apps::run_rap(prepared, 2026, paper_mtb);
  std::printf("\nwith the paper's 4KB MTB: naive needs %u partial reports, "
              "RAP-Track needs %u\n",
              naive.attestation.metrics.partial_reports,
              rap4k.attestation.metrics.partial_reports);
  return result.accepted() ? 0 : 1;
}
