// Attack detection: a stack-smashing ROP delivered through the syringe
// pump's input channel analog — the exploit succeeds on the device, and the
// Verifier's path reconstruction exposes the hijacked return (§IV-F).
//
//   $ ./attack_detection
#include <cstdio>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"
#include "common/hex.hpp"

using namespace raptrack;

namespace {

constexpr const char* kFirmware = R"asm(
.equ UART_RX,   0x40000000
.equ ADC,       0x40000010
.equ ACTUATOR,  0x40000050
.equ RES,       0x20200000

_start:
    bl receive_config
    li r1, =RES
    movi r0, #1            ; "configuration accepted"
    str r0, [r1]
    hlt

; The target the attacker wants: unconditionally fires the actuator.
dispense_full_dose:
    li r1, =ACTUATOR
    li r0, =0xd05e
    str r0, [r1]
    li r1, =RES
    movi r0, #2            ; "dose dispensed"
    str r0, [r1]
    hlt

; Vulnerable: copies `len` calibration words into an 8-byte stack buffer.
receive_config:
    push {r4, r5, r6, lr}
    sub sp, sp, #8
    li r4, =UART_RX
    ldr r5, [r4]           ; attacker-controlled length
    li r4, =ADC
    movi r6, #0
copy:
    cmp r6, r5
    bge out
    ldr r0, [r4]
    lsl r1, r6, #2
    add r1, r1, sp
    str r0, [r1]           ; no bounds check
    addi r6, r6, #1
    b copy
out:
    add sp, sp, #8
    pop {r4, r5, r6, pc}
__code_end:
)asm";

int attest_and_verify(const char* label, u8 length,
                      std::vector<u32> payload) {
  const Program original = assemble(kFirmware, apps::kAppBase);
  const Address entry = *original.symbol("_start");
  const auto rewritten = rewrite::rewrite_for_rap_track(
      original, entry, original.base(), *original.symbol("__code_end"));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(rewritten.program, rewritten.manifest, entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine;
  auto periph = std::make_shared<apps::Peripherals>();
  periph->uart_rx.push_back(length);
  periph->adc_values = std::move(payload);
  periph->attach(machine);

  cfa::RapProver prover(rewritten.program, rewritten.manifest, entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);

  std::printf("--- %s ---\n", label);
  std::printf("device outcome: RES = %u, actuator writes = %zu\n",
              machine.memory().raw_read32(0x2020'0000),
              periph->actuator_writes.size());

  const auto result = verifier.verify(chal, run.reports);
  std::printf("verifier: authentic=%d memory=%d reconstruction=%d policy=%d"
              " -> %s\n",
              result.authentic, result.memory_ok, result.reconstruction_ok,
              result.policy_ok,
              result.accepted() ? "ACCEPTED" : "REJECTED");
  for (const auto& finding : result.replay.findings) {
    std::printf("  finding at %s: %s\n", hex32(finding.site).c_str(),
                finding.description.c_str());
  }
  std::printf("\n");
  return result.accepted() ? 0 : 1;
}

}  // namespace

int main() {
  const Program original = assemble(kFirmware, apps::kAppBase);
  const Address gadget = *original.symbol("dispense_full_dose");

  // Benign configuration: two calibration words, fits the buffer.
  const int benign = attest_and_verify("benign configuration", 2, {7, 9});

  // Exploit: overflow six words; the sixth lands on the saved return
  // address and redirects the return into dispense_full_dose.
  const int attacked = attest_and_verify(
      "stack-smash exploit", 6, {7, 9, 0xaa, 0xbb, 0xcc, gadget});

  // Expect: benign accepted (0), attack rejected (1).
  const bool demo_ok = benign == 0 && attacked == 1;
  std::printf("demo %s: benign run accepted, exploited run convicted\n",
              demo_ok ? "OK" : "FAILED");
  return demo_ok ? 0 : 1;
}
