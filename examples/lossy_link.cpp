// Lossy-link delivery demo: attest the GPS parser once, then deliver the
// signed report chain to a verifier farm across a simulated link that
// drops a quarter of all datagrams and duplicates and reorders the rest.
// The ARQ session protocol (windowed sender, cumulative ACK, selective
// NACK gap repair, verdict probe) rides out the damage and converges to
// the same Accept — with the same verdict digest — as a perfect link.
//
// The second act kills the verifier mid-session and restores a fresh farm
// and endpoint from a checksummed snapshot; the prover never notices, and
// the recovered verifier finishes the session to the identical digest.
//
//   $ ./lossy_link [seed]
#include <cstdio>
#include <cstdlib>

#include "fault/campaign.hpp"
#include "net/endpoint.hpp"
#include "verify/farm.hpp"

using namespace raptrack;

namespace {

void print_digest(const char* label, const crypto::Digest& digest) {
  std::printf("%s", label);
  for (size_t i = 0; i < 8; ++i) std::printf("%02x", digest[i]);
  std::printf("...\n");
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 2026;
  const auto prepared = apps::prepare_app(apps::app_by_name("gps"));
  const fault::CampaignOptions options;  // small MTB: multi-report chain
  const auto clean = fault::attest_once(prepared, options);
  const auto deployment = verify::Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry);
  verify::VerifyConfig config;
  config.expected_watermark = options.watermark_bytes;
  std::printf("attested chain: %zu signed reports, seed %llu\n\n",
              clean.reports.size(), static_cast<unsigned long long>(seed));

  // -- act 1: a perfect link, for the reference digest ----------------------
  crypto::Digest reference{};
  {
    verify::VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    farm.provision(1, deployment, config);
    farm.adopt_challenge(1, clean.chal);
    net::VerifierEndpoint endpoint(farm);
    net::DuplexLink link(net::LinkModel{}, net::LinkModel{}, seed);
    net::ProverEndpoint prover(1, 1, clean.reports, {}, seed);
    const auto outcome = run_session(prover, endpoint, link);
    if (outcome.phase != net::ProverPhase::Done) {
      std::printf("lossless session did not finish?!\n");
      return 1;
    }
    reference = outcome.verdict->digest;
    std::printf("lossless link : %s in %llu ticks, %llu datagrams\n",
                verify::verdict_name(outcome.verdict->verdict),
                static_cast<unsigned long long>(outcome.ticks),
                static_cast<unsigned long long>(prover.stats().datagrams_sent));
    print_digest("                digest ", reference);
  }

  // -- act 2: 25% loss with duplication and reordering ----------------------
  const net::LinkModel lossy = net::LinkModel::lossy(250);
  {
    verify::VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    farm.provision(1, deployment, config);
    farm.adopt_challenge(1, clean.chal);
    net::VerifierEndpoint endpoint(farm);
    net::DuplexLink link(lossy, lossy, seed);
    net::ProverEndpoint prover(1, 1, clean.reports, {}, seed);
    const auto outcome = run_session(prover, endpoint, link);
    if (outcome.phase != net::ProverPhase::Done) {
      std::printf("lossy session gave up — rerun with another seed\n");
      return 1;
    }
    const auto& up = link.to_verifier_stats();
    std::printf("\n25%% loss link : %s in %llu ticks\n",
                verify::verdict_name(outcome.verdict->verdict),
                static_cast<unsigned long long>(outcome.ticks));
    std::printf("                link dropped %llu, duplicated %llu, "
                "reordered %llu of %llu uplink frames\n",
                static_cast<unsigned long long>(up.dropped),
                static_cast<unsigned long long>(up.duplicated),
                static_cast<unsigned long long>(up.reordered),
                static_cast<unsigned long long>(up.sent));
    std::printf("                prover retransmits: %llu on timeout, "
                "%llu on NACK; verifier repair rounds: %llu\n",
                static_cast<unsigned long long>(
                    prover.stats().retransmits_timeout),
                static_cast<unsigned long long>(prover.stats().retransmits_nack),
                static_cast<unsigned long long>(
                    endpoint.stats().repair_rounds));
    print_digest("                digest ", outcome.verdict->digest);
    std::printf("                digest %s the lossless reference\n",
                outcome.verdict->digest == reference ? "MATCHES" : "DIVERGES");
  }

  // -- act 3: verifier crash and snapshot recovery, same lossy link ---------
  {
    verify::VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    farm.provision(1, deployment, config);
    farm.adopt_challenge(1, clean.chal);
    auto endpoint = std::make_unique<net::VerifierEndpoint>(farm);
    net::DuplexLink link(lossy, lossy, seed);
    net::ProverEndpoint prover(1, 1, clean.reports, {}, seed);

    for (u64 tick = 0; tick < 40 && prover.phase() == net::ProverPhase::Sending;
         ++tick) {
      prover.on_tick(link);
      endpoint->on_tick(link);
      link.advance();
    }
    const std::vector<u8> snapshot = endpoint->snapshot();
    std::printf("\ncrash at tick : %llu — snapshot is %zu bytes "
                "(challenge state + reassembly buffers, CRC-sealed)\n",
                static_cast<unsigned long long>(link.now()), snapshot.size());

    endpoint.reset();  // the verifier process dies here
    verify::VerifierFarm recovered(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    recovered.provision(1, deployment, config);  // deployments re-provision
    net::VerifierEndpoint restored(recovered);
    if (!restored.restore(snapshot)) {
      std::printf("snapshot restore failed?!\n");
      return 1;
    }
    const auto outcome = run_session(prover, restored, link);
    if (outcome.phase != net::ProverPhase::Done) {
      std::printf("recovered session gave up — rerun with another seed\n");
      return 1;
    }
    std::printf("recovered run : %s at tick %llu\n",
                verify::verdict_name(outcome.verdict->verdict),
                static_cast<unsigned long long>(link.now()));
    print_digest("                digest ", outcome.verdict->digest);
    std::printf("                digest %s the lossless reference\n",
                outcome.verdict->digest == reference ? "MATCHES" : "DIVERGES");
    if (outcome.verdict->digest != reference) return 1;
  }
  return 0;
}
