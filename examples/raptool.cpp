// raptool — command-line front end for the RAP-Track toolchain. Drives the
// same library API as the tests/benches on files, so the offline phase can
// be scripted:
//
//   raptool assemble  app.s img.bin            # RT-ISA -> flash image
//   raptool disasm    img.bin                  # annotated listing
//   raptool rewrite   app.s img.bin mani.bin   # offline phase (image+manifest)
//   raptool run       app.s [tickstep]         # execute on the simulator
//   raptool attest    app.s [tickstep]         # full RAP-Track session + verify
//   raptool info      app.s                    # CFG/loop/branch statistics
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"
#include "cfg/loop_analysis.hpp"
#include "common/hex.hpp"
#include "rewrite/manifest_io.hpp"

using namespace raptrack;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

struct Loaded {
  Program program;
  Address entry;
  Address code_end;
};

Loaded load_source(const std::string& path) {
  Loaded loaded{assemble(read_file(path), apps::kAppBase), 0, 0};
  const auto entry = loaded.program.symbol("_start");
  const auto code_end = loaded.program.symbol("__code_end");
  if (!entry || !code_end) {
    throw Error("source must define _start and __code_end");
  }
  loaded.entry = *entry;
  loaded.code_end = *code_end;
  return loaded;
}

u32 parse_tickstep(int argc, char** argv, int index) {
  return index < argc ? static_cast<u32>(std::stoul(argv[index], nullptr, 0))
                      : 42u;
}

int cmd_assemble(const std::string& source, const std::string& out) {
  const Loaded loaded = load_source(source);
  write_file(out, loaded.program.bytes());
  std::printf("%s: %u bytes at %s, entry %s\n", out.c_str(),
              loaded.program.size(), hex32(loaded.program.base()).c_str(),
              hex32(loaded.entry).c_str());
  return 0;
}

int cmd_disasm(const std::string& image_path) {
  const std::string raw = read_file(image_path);
  Program program(apps::kAppBase,
                  std::vector<u8>(raw.begin(), raw.end()));
  std::fputs(disassemble(program).c_str(), stdout);
  return 0;
}

int cmd_rewrite(const std::string& source, const std::string& image_out,
                const std::string& manifest_out) {
  const Loaded loaded = load_source(source);
  const auto result = rewrite::rewrite_for_rap_track(
      loaded.program, loaded.entry, loaded.program.base(), loaded.code_end);
  write_file(image_out, result.program.bytes());
  write_file(manifest_out, rewrite::serialize_manifest(result.manifest));
  std::printf("image: %u -> %u bytes (%u slots, %u loop veneers)\n",
              result.original_bytes, result.rewritten_bytes, result.slot_count,
              result.veneer_count);
  std::printf("MTBDR [%s, %s]  MTBAR [%s, %s]\n",
              hex32(result.manifest.mtbdr_base).c_str(),
              hex32(result.manifest.mtbdr_limit).c_str(),
              hex32(result.manifest.mtbar_base).c_str(),
              hex32(result.manifest.mtbar_limit).c_str());
  return 0;
}

int cmd_run(const std::string& source, u32 tick_step) {
  const Loaded loaded = load_source(source);
  sim::Machine machine;
  auto periph = std::make_shared<apps::Peripherals>();
  periph->tick_step = tick_step;
  periph->attach(machine);
  machine.load_program(loaded.program);
  machine.reset_cpu(loaded.entry);
  const auto halt = machine.run();
  std::printf("halt: %s after %llu instructions, %llu cycles\n",
              halt == cpu::HaltReason::Halted ? "clean" : "abnormal",
              (unsigned long long)machine.cpu().instructions_retired(),
              (unsigned long long)machine.cpu().cycles());
  if (const auto& fault = machine.cpu().fault()) {
    std::printf("fault: %s at %s (%s)\n", mem::fault_name(fault->type),
                hex32(fault->address).c_str(), fault->detail.c_str());
  }
  for (int r = 0; r < 8; ++r) {
    std::printf("  r%d = 0x%08x\n", r,
                machine.cpu().state().reg(static_cast<isa::Reg>(r)));
  }
  return halt == cpu::HaltReason::Halted ? 0 : 1;
}

int cmd_attest(const std::string& source, u32 tick_step) {
  const Loaded loaded = load_source(source);
  const auto rewritten = rewrite::rewrite_for_rap_track(
      loaded.program, loaded.entry, loaded.program.base(), loaded.code_end);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(rewritten.program, rewritten.manifest, loaded.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine;
  auto periph = std::make_shared<apps::Peripherals>();
  periph->tick_step = tick_step;
  periph->attach(machine);
  cfa::RapProver prover(rewritten.program, rewritten.manifest, loaded.entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);

  std::printf("run: %llu cycles, CF_Log %llu bytes, %u partial report(s)\n",
              (unsigned long long)run.metrics.exec_cycles,
              (unsigned long long)run.metrics.cflog_bytes,
              run.metrics.partial_reports + 1);
  const auto result = verifier.verify(chal, run.reports);
  std::printf("verification: %s\n",
              result.accepted() ? "ACCEPTED" : result.detail.c_str());
  std::printf("reconstructed %zu control-flow transfers\n",
              result.replay.events.size());
  for (const auto& finding : result.replay.findings) {
    std::printf("finding: %s\n", finding.description.c_str());
  }
  return result.accepted() ? 0 : 1;
}

int cmd_info(const std::string& source) {
  const Loaded loaded = load_source(source);
  const cfg::Cfg graph(loaded.program, loaded.entry, loaded.program.base(),
                       loaded.code_end);
  const auto analysis = cfg::analyze_loops(graph);
  u32 reachable = 0;
  for (const auto& [begin, block] : graph.blocks()) reachable += block.reachable;
  std::printf("code: %u bytes, %zu basic blocks (%u reachable), %zu roots\n",
              loaded.code_end - loaded.program.base(), graph.blocks().size(),
              reachable, graph.roots().size());
  std::printf("loops: %zu natural, %zu simple\n", analysis.loops.size(),
              analysis.simple_loops.size());
  u32 taken = 0, not_taken = 0, deterministic = 0, loop_cond = 0;
  for (const auto& [site, role] : analysis.bcc_roles) {
    switch (role) {
      case cfg::BccRole::LogTaken: ++taken; break;
      case cfg::BccRole::LogNotTaken: ++not_taken; break;
      case cfg::BccRole::Deterministic: ++deterministic; break;
      case cfg::BccRole::LoopCondition: ++loop_cond; break;
    }
  }
  std::printf("conditional branches: %u log-taken, %u log-not-taken, "
              "%u deterministic, %u loop-condition\n",
              taken, not_taken, deterministic, loop_cond);
  return 0;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  raptool assemble <app.s> <image.bin>\n"
      "  raptool disasm   <image.bin>\n"
      "  raptool rewrite  <app.s> <image.bin> <manifest.bin>\n"
      "  raptool run      <app.s> [tickstep]\n"
      "  raptool attest   <app.s> [tickstep]\n"
      "  raptool info     <app.s>\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "assemble" && argc >= 4) return cmd_assemble(argv[2], argv[3]);
    if (command == "disasm") return cmd_disasm(argv[2]);
    if (command == "rewrite" && argc >= 5) {
      return cmd_rewrite(argv[2], argv[3], argv[4]);
    }
    if (command == "run") return cmd_run(argv[2], parse_tickstep(argc, argv, 3));
    if (command == "attest") {
      return cmd_attest(argv[2], parse_tickstep(argc, argv, 3));
    }
    if (command == "info") return cmd_info(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raptool: %s\n", e.what());
    return 1;
  }
  return usage();
}
