// Differential fuzzing over seeded synthetic programs: for dozens of
// randomly generated (but structurally valid) applications, the whole
// pipeline must hold up —
//   F1  the program assembles, terminates, and both rewrites preserve its
//       final architectural state bit-for-bit;
//   F2  RAP-Track evidence verifies and reconstructs (lossless up to the
//       documented silent-rejoin attribution equivalence);
//   F3  naive-MTB and TRACES reconstructions are exact;
//   F4  generation is deterministic per seed.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"
#include "apps/synthetic.hpp"
#include "lossless_helpers.hpp"

namespace raptrack {
namespace {

struct SynthCase {
  u64 program_seed;
  u64 input_seed;
};

std::string case_name(const ::testing::TestParamInfo<SynthCase>& info) {
  return "p" + std::to_string(info.param.program_seed) + "_i" +
         std::to_string(info.param.input_seed);
}

std::vector<SynthCase> synth_cases() {
  std::vector<SynthCase> cases;
  for (u64 program = 1; program <= 12; ++program) {
    for (u64 input : {1ull, 99ull}) {
      cases.push_back({program, input});
    }
  }
  return cases;
}

struct SynthProgram {
  Program original;
  Address entry = 0;
  Address code_end = 0;
  rewrite::RewriteResult rap;
  instr::TracesResult traces;
};

SynthProgram build(u64 program_seed) {
  SynthProgram built;
  const std::string source = apps::generate_synthetic_program(program_seed);
  built.original = assemble(source, apps::kAppBase);
  built.entry = *built.original.symbol("_start");
  built.code_end = *built.original.symbol("__code_end");
  built.rap = rewrite::rewrite_for_rap_track(built.original, built.entry,
                                             built.original.base(),
                                             built.code_end);
  built.traces = instr::rewrite_for_traces(built.original, built.entry,
                                           built.original.base(),
                                           built.code_end);
  return built;
}

/// Final architectural state: r0-r12 plus the published result words.
struct FinalState {
  std::array<Word, 13> regs{};
  std::array<u32, 7> results{};

  friend bool operator==(const FinalState&, const FinalState&) = default;
};

FinalState state_of(sim::Machine& machine) {
  FinalState state;
  for (u8 r = 0; r < 13; ++r) {
    state.regs[r] = machine.cpu().state().reg(static_cast<isa::Reg>(r));
  }
  for (u32 i = 0; i < 7; ++i) {
    state.results[i] = machine.memory().raw_read32(apps::kResultBase + 4 * i);
  }
  return state;
}

u32 tick_step_for(u64 input_seed) {
  return static_cast<u32>(SplitMix64(input_seed ^ 0x73796e).next());
}

class SynthTest : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthTest, RewritesPreserveSemantics) {
  const auto& [program_seed, input_seed] = GetParam();
  const SynthProgram built = build(program_seed);

  const auto run_with = [&](const Program& image) {
    sim::Machine machine;
    auto periph = std::make_shared<apps::Peripherals>();
    periph->tick_step = tick_step_for(input_seed);
    periph->attach(machine);
    machine.load_program(image);
    // TRACES images need the logging engine; harmless for the others to
    // register a no-op loop service.
    instr::TracesEngine engine(image, built.traces.manifest, machine.memory());
    engine.attach(machine.monitor());
    machine.monitor().register_service(
        tz::Service::kRapLogLoopCondition,
        [](cpu::CpuState&) -> Cycles { return 1; });
    machine.reset_cpu(built.entry);
    EXPECT_EQ(machine.run(5'000'000), cpu::HaltReason::Halted);
    return state_of(machine);
  };

  const FinalState original = run_with(built.original);
  EXPECT_EQ(run_with(built.rap.program), original) << "rap rewrite";
  EXPECT_EQ(run_with(built.traces.program), original) << "traces rewrite";
}

TEST_P(SynthTest, RapEvidenceVerifiesAndReconstructs) {
  const auto& [program_seed, input_seed] = GetParam();
  const SynthProgram built = build(program_seed);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(built.rap.program, built.rap.manifest, built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine(sim::MachineConfig{.mtb_buffer_bytes = 1 << 20});
  auto periph = std::make_shared<apps::Peripherals>();
  periph->tick_step = tick_step_for(input_seed);
  periph->attach(machine);
  cfa::RapProver prover(built.rap.program, built.rap.manifest, built.entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);
  ASSERT_EQ(run.metrics.halt, cpu::HaltReason::Halted);

  const auto result = verifier.verify(chal, run.reports);
  ASSERT_TRUE(result.accepted()) << result.detail;
  EXPECT_TRUE(raptrack::testing::rap_lossless_up_to_attribution(
      built.rap.program, built.rap.manifest, built.entry, result,
      machine.oracle().events()));
}

TEST_P(SynthTest, NaiveAndTracesReconstructExactly) {
  const auto& [program_seed, input_seed] = GetParam();
  const SynthProgram built = build(program_seed);

  {
    verify::Verifier verifier(apps::demo_key());
    verifier.expect_naive(built.original, built.entry);
    const cfa::Challenge chal = verifier.fresh_challenge();
    sim::Machine machine(sim::MachineConfig{.mtb_buffer_bytes = 1 << 22});
    auto periph = std::make_shared<apps::Peripherals>();
    periph->tick_step = tick_step_for(input_seed);
    periph->attach(machine);
    cfa::NaiveProver prover(built.original, built.entry, apps::demo_key());
    const auto run = prover.attest(machine, chal);
    const auto result = verifier.verify(chal, run.reports);
    ASSERT_TRUE(result.accepted()) << result.detail;
    EXPECT_EQ(result.replay.events, machine.oracle().events());
  }
  {
    verify::Verifier verifier(apps::demo_key());
    verifier.expect_traces(built.traces.program, built.traces.manifest,
                           built.entry);
    const cfa::Challenge chal = verifier.fresh_challenge();
    sim::Machine machine;
    auto periph = std::make_shared<apps::Peripherals>();
    periph->tick_step = tick_step_for(input_seed);
    periph->attach(machine);
    cfa::TracesProver prover(built.traces.program, built.traces.manifest,
                             built.entry, apps::demo_key());
    const auto run = prover.attest(machine, chal);
    const auto result = verifier.verify(chal, run.reports);
    ASSERT_TRUE(result.accepted()) << result.detail;
    EXPECT_EQ(result.replay.events, machine.oracle().events());
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SynthTest, ::testing::ValuesIn(synth_cases()),
                         case_name);

TEST(SyntheticGenerator, DeterministicPerSeed) {
  EXPECT_EQ(apps::generate_synthetic_program(7),
            apps::generate_synthetic_program(7));
  EXPECT_NE(apps::generate_synthetic_program(7),
            apps::generate_synthetic_program(8));
}

TEST(SyntheticGenerator, OptionsShapeTheProgram) {
  apps::SyntheticOptions no_calls;
  no_calls.allow_indirect_calls = false;
  no_calls.allow_recursion = false;
  const std::string source = apps::generate_synthetic_program(3, no_calls);
  EXPECT_EQ(source.find("blx"), std::string::npos);
  EXPECT_EQ(source.find("recurse"), std::string::npos);

  const std::string with_calls = apps::generate_synthetic_program(3);
  EXPECT_NE(with_calls.find("blx"), std::string::npos);
}

}  // namespace
}  // namespace raptrack
