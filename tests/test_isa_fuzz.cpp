// Fuzz-style properties for the ISA layer:
//   - decode/encode stability over random instruction words;
//   - differential check of executor ALU/flag semantics against independent
//     C++ golden computations over random operands.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "cpu/executor.hpp"
#include "isa/instruction.hpp"
#include "mem/bus.hpp"

namespace raptrack {
namespace {

using isa::Op;
using isa::Reg;

TEST(IsaFuzz, DecodeEncodeIsStable) {
  // For any word that decodes, re-encoding the decoded instruction and
  // decoding again must yield the same instruction (the encoding may
  // canonicalize don't-care bits, but the semantics must be a fixpoint).
  Xoshiro256 rng(0xdec0de);
  u32 decodable = 0;
  for (int i = 0; i < 200000; ++i) {
    const u32 word = static_cast<u32>(rng.next());
    const auto decoded = isa::decode(word);
    if (!decoded) continue;
    ++decodable;
    u32 reencoded = 0;
    try {
      reencoded = isa::encode(*decoded);
    } catch (const Error&) {
      // Some decoded fields (e.g. huge branch offsets from sign extension)
      // are valid decodes but at the encoder's range edge; skip those.
      continue;
    }
    const auto redecoded = isa::decode(reencoded);
    ASSERT_TRUE(redecoded.has_value()) << hex32(word);
    EXPECT_EQ(*redecoded, *decoded) << hex32(word);
  }
  EXPECT_GT(decodable, 1000u);  // the opcode space is dense enough to hit
}

TEST(IsaFuzz, ToStringNeverCrashesOnDecodableWords) {
  Xoshiro256 rng(0x737472);
  for (int i = 0; i < 50000; ++i) {
    const auto decoded = isa::decode(static_cast<u32>(rng.next()));
    if (decoded) {
      EXPECT_FALSE(isa::to_string(*decoded).empty());
    }
  }
}

// -- executor differential fuzz ----------------------------------------------

class AluFuzz : public ::testing::Test {
 protected:
  AluFuzz() : map_(mem::MemoryMap::make_default()), bus_(map_), cpu_(bus_) {}

  /// Execute a single register-register ALU op with the given operands and
  /// return (result, flags).
  std::pair<Word, isa::Flags> run_op(Op op, Word a, Word b, bool set_flags) {
    isa::Instruction in;
    in.op = op;
    in.rd = Reg::R2;
    in.rn = Reg::R0;
    in.rm = Reg::R1;
    in.set_flags = set_flags;
    Program p(mem::MapLayout::kNsFlashBase, std::vector<u8>(8, 0));
    p.set_word(p.base(), isa::encode(in));
    p.set_word(p.base() + 4, isa::encode(isa::Instruction{.op = Op::HLT}));
    map_.load(p.base(), p.bytes());
    cpu_.reset(p.base(), mem::MapLayout::kNsRamBase + 0x100);
    cpu_.state().set_reg(Reg::R0, a);
    cpu_.state().set_reg(Reg::R1, b);
    EXPECT_EQ(cpu_.run(10), cpu::HaltReason::Halted);
    return {cpu_.state().reg(Reg::R2), cpu_.state().flags};
  }

  mem::MemoryMap map_;
  mem::Bus bus_;
  cpu::Executor cpu_;
};

TEST_F(AluFuzz, AddSubMatchGoldenSemantics) {
  Xoshiro256 rng(0xa1b2);
  for (int i = 0; i < 3000; ++i) {
    const Word a = static_cast<Word>(rng.next());
    const Word b = static_cast<Word>(rng.next());

    {
      const auto [result, flags] = run_op(Op::ADD, a, b, true);
      EXPECT_EQ(result, a + b);
      EXPECT_EQ(flags.z, (a + b) == 0);
      EXPECT_EQ(flags.n, static_cast<i32>(a + b) < 0);
      EXPECT_EQ(flags.c, (static_cast<u64>(a) + b) > 0xffffffffull);
      const i64 signed_sum = static_cast<i64>(static_cast<i32>(a)) +
                             static_cast<i32>(b);
      EXPECT_EQ(flags.v, signed_sum != static_cast<i32>(a + b));
    }
    {
      const auto [result, flags] = run_op(Op::SUB, a, b, true);
      EXPECT_EQ(result, a - b);
      EXPECT_EQ(flags.c, a >= b);  // no borrow
      const i64 signed_diff = static_cast<i64>(static_cast<i32>(a)) -
                              static_cast<i32>(b);
      EXPECT_EQ(flags.v, signed_diff != static_cast<i32>(a - b));
    }
  }
}

TEST_F(AluFuzz, LogicalAndShiftsMatchGolden) {
  Xoshiro256 rng(0xc3d4);
  for (int i = 0; i < 3000; ++i) {
    const Word a = static_cast<Word>(rng.next());
    const Word b = static_cast<Word>(rng.next());
    EXPECT_EQ(run_op(Op::AND, a, b, false).first, a & b);
    EXPECT_EQ(run_op(Op::ORR, a, b, false).first, a | b);
    EXPECT_EQ(run_op(Op::EOR, a, b, false).first, a ^ b);
    EXPECT_EQ(run_op(Op::MUL, a, b, false).first, a * b);

    const Word amount = b & 0xff;
    EXPECT_EQ(run_op(Op::LSL, a, b, false).first,
              amount >= 32 ? 0u : (a << amount));
    EXPECT_EQ(run_op(Op::LSR, a, b, false).first,
              amount >= 32 ? 0u : (amount == 0 ? a : a >> amount));
    const i32 sa = static_cast<i32>(a);
    EXPECT_EQ(run_op(Op::ASR, a, b, false).first,
              static_cast<Word>(amount >= 32 ? sa >> 31 : sa >> amount));
  }
}

TEST_F(AluFuzz, DivisionMatchesArmSemantics) {
  Xoshiro256 rng(0xd1f1);
  for (int i = 0; i < 3000; ++i) {
    const Word a = static_cast<Word>(rng.next());
    const Word b = i % 17 == 0 ? 0 : static_cast<Word>(rng.next());  // hit /0
    EXPECT_EQ(run_op(Op::UDIV, a, b, false).first, b == 0 ? 0 : a / b);
    const i32 sn = static_cast<i32>(a), sd = static_cast<i32>(b);
    Word expected;
    if (sd == 0) {
      expected = 0;
    } else if (sn == INT32_MIN && sd == -1) {
      expected = static_cast<Word>(INT32_MIN);
    } else {
      expected = static_cast<Word>(sn / sd);
    }
    EXPECT_EQ(run_op(Op::SDIV, a, b, false).first, expected);
  }
}

TEST_F(AluFuzz, ConditionCodesAgreeWithComparisons) {
  // cmp a, b followed by each condition must mirror the C++ comparison.
  Xoshiro256 rng(0xcc01);
  for (int i = 0; i < 2000; ++i) {
    const Word a = static_cast<Word>(rng.next());
    const Word b = rng.chance(1, 4) ? a : static_cast<Word>(rng.next());
    const auto [_, flags] = run_op(Op::CMP, a, b, true);
    const i32 sa = static_cast<i32>(a), sb = static_cast<i32>(b);
    EXPECT_EQ(isa::evaluate(isa::Cond::EQ, flags), a == b);
    EXPECT_EQ(isa::evaluate(isa::Cond::NE, flags), a != b);
    EXPECT_EQ(isa::evaluate(isa::Cond::CS, flags), a >= b);   // unsigned
    EXPECT_EQ(isa::evaluate(isa::Cond::CC, flags), a < b);
    EXPECT_EQ(isa::evaluate(isa::Cond::HI, flags), a > b);
    EXPECT_EQ(isa::evaluate(isa::Cond::LS, flags), a <= b);
    EXPECT_EQ(isa::evaluate(isa::Cond::GE, flags), sa >= sb);  // signed
    EXPECT_EQ(isa::evaluate(isa::Cond::LT, flags), sa < sb);
    EXPECT_EQ(isa::evaluate(isa::Cond::GT, flags), sa > sb);
    EXPECT_EQ(isa::evaluate(isa::Cond::LE, flags), sa <= sb);
  }
}

}  // namespace
}  // namespace raptrack
