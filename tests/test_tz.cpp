// Unit tests: the Secure-World monitor (SVC gateway) and the top-level
// machine wiring — service dispatch, world switching, cost accounting, and
// the isolation properties the §IV-F security argument relies on.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::tz {
namespace {

TEST(SecureMonitor, DispatchesRegisteredService) {
  SecureMonitor monitor;
  int calls = 0;
  monitor.register_service(Service::kRapLogLoopCondition,
                           [&](cpu::CpuState&) -> Cycles {
                             ++calls;
                             return 7;
                           });
  cpu::CpuState state;
  const Cycles cost =
      monitor.handle(static_cast<u8>(Service::kRapLogLoopCondition), state);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(monitor.world_switches(), 1u);
  // Round trip = NS->S + service + S->NS.
  const CostModel costs;
  EXPECT_EQ(cost, costs.ns_to_secure + 7 + costs.secure_to_ns);
}

TEST(SecureMonitor, UnknownServiceFaults) {
  SecureMonitor monitor;
  cpu::CpuState state;
  EXPECT_THROW(monitor.handle(0x7f, state), mem::FaultException);
  EXPECT_EQ(monitor.world_switches(), 0u);
}

TEST(SecureMonitor, ServiceRunsWithSecurePrivileges) {
  SecureMonitor monitor;
  mem::WorldSide seen = mem::WorldSide::NonSecure;
  monitor.register_service(Service::kTracesLogBranch,
                           [&](cpu::CpuState& s) -> Cycles {
                             seen = s.world;
                             return 0;
                           });
  cpu::CpuState state;
  state.world = mem::WorldSide::NonSecure;
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  EXPECT_EQ(seen, mem::WorldSide::Secure);   // elevated during the service
  EXPECT_EQ(state.world, mem::WorldSide::NonSecure);  // restored after
}

TEST(SecureMonitor, CounterResets) {
  SecureMonitor monitor;
  monitor.register_service(Service::kTracesLogBranch,
                           [](cpu::CpuState&) -> Cycles { return 0; });
  cpu::CpuState state;
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  EXPECT_EQ(monitor.world_switches(), 2u);
  monitor.reset_counters();
  EXPECT_EQ(monitor.world_switches(), 0u);
}

TEST(CostModel, RoundTripComposition) {
  CostModel costs;
  EXPECT_EQ(costs.secure_log_round_trip(0), costs.ns_to_secure + costs.secure_to_ns);
  EXPECT_EQ(costs.secure_log_round_trip(100),
            costs.ns_to_secure + 100 + costs.secure_to_ns);
}

// -- machine wiring ----------------------------------------------------------

TEST(Machine, RunsAProgramEndToEnd) {
  sim::Machine machine;
  const Program p = assemble("_start:\n    movi r0, #5\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(*p.symbol("_start"));
  EXPECT_EQ(machine.run(), cpu::HaltReason::Halted);
  EXPECT_EQ(machine.cpu().state().reg(isa::Reg::R0), 5u);
}

TEST(Machine, SvcRoutesThroughTheMonitor) {
  sim::Machine machine;
  u8 seen = 0;
  machine.monitor().register_service(Service::kRapLogLoopCondition,
                                     [&](cpu::CpuState&) -> Cycles {
                                       seen = 1;
                                       return 50;
                                     });
  const Program p = assemble("_start:\n    svc #1\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Halted);
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(machine.monitor().world_switches(), 1u);
}

TEST(Machine, ConfigControlsMtbGeometry) {
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 128;
  config.mtb_activation_latency = 3;
  sim::Machine machine(config);
  EXPECT_EQ(machine.mtb().buffer_bytes(), 128u);
  EXPECT_EQ(machine.mtb().activation_latency(), 3u);
}

TEST(Machine, NonSecureCodeCannotReachTheMtbBuffer) {
  // The §IV-F argument: CF_Log lives in Secure SRAM. A Non-Secure program
  // trying to read or overwrite it faults.
  sim::Machine machine;
  const Program p = assemble(R"(
_start:
    li r1, =0x34000000   ; MTB SRAM base
    ldr r0, [r1]
    hlt
  )",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Fault);
  EXPECT_EQ(machine.cpu().fault()->type, mem::FaultType::SecurityFault);
}

TEST(Machine, OracleCanBeDisabled) {
  sim::MachineConfig config;
  config.enable_oracle = false;
  sim::Machine machine(config);
  const Program p = assemble("_start:\n    b done\ndone:\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  machine.run();
  EXPECT_TRUE(machine.oracle().events().empty());
}

}  // namespace
}  // namespace raptrack::tz
