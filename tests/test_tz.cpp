// Unit tests: the Secure-World monitor (SVC gateway) and the top-level
// machine wiring — service dispatch, world switching, cost accounting, and
// the isolation properties the §IV-F security argument relies on.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "mem/mpu.hpp"
#include "sim/machine.hpp"
#include "trace/mtb.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::tz {
namespace {

TEST(SecureMonitor, DispatchesRegisteredService) {
  SecureMonitor monitor;
  int calls = 0;
  monitor.register_service(Service::kRapLogLoopCondition,
                           [&](cpu::CpuState&) -> Cycles {
                             ++calls;
                             return 7;
                           });
  cpu::CpuState state;
  const Cycles cost =
      monitor.handle(static_cast<u8>(Service::kRapLogLoopCondition), state);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(monitor.world_switches(), 1u);
  // Round trip = NS->S + service + S->NS.
  const CostModel costs;
  EXPECT_EQ(cost, costs.ns_to_secure + 7 + costs.secure_to_ns);
}

TEST(SecureMonitor, UnknownServiceFaults) {
  SecureMonitor monitor;
  cpu::CpuState state;
  EXPECT_THROW(monitor.handle(0x7f, state), mem::FaultException);
  EXPECT_EQ(monitor.world_switches(), 0u);
}

TEST(SecureMonitor, ServiceRunsWithSecurePrivileges) {
  SecureMonitor monitor;
  mem::WorldSide seen = mem::WorldSide::NonSecure;
  monitor.register_service(Service::kTracesLogBranch,
                           [&](cpu::CpuState& s) -> Cycles {
                             seen = s.world;
                             return 0;
                           });
  cpu::CpuState state;
  state.world = mem::WorldSide::NonSecure;
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  EXPECT_EQ(seen, mem::WorldSide::Secure);   // elevated during the service
  EXPECT_EQ(state.world, mem::WorldSide::NonSecure);  // restored after
}

TEST(SecureMonitor, CounterResets) {
  SecureMonitor monitor;
  monitor.register_service(Service::kTracesLogBranch,
                           [](cpu::CpuState&) -> Cycles { return 0; });
  cpu::CpuState state;
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  monitor.handle(static_cast<u8>(Service::kTracesLogBranch), state);
  EXPECT_EQ(monitor.world_switches(), 2u);
  monitor.reset_counters();
  EXPECT_EQ(monitor.world_switches(), 0u);
}

TEST(CostModel, RoundTripComposition) {
  CostModel costs;
  EXPECT_EQ(costs.secure_log_round_trip(0), costs.ns_to_secure + costs.secure_to_ns);
  EXPECT_EQ(costs.secure_log_round_trip(100),
            costs.ns_to_secure + 100 + costs.secure_to_ns);
}

// -- machine wiring ----------------------------------------------------------

TEST(Machine, RunsAProgramEndToEnd) {
  sim::Machine machine;
  const Program p = assemble("_start:\n    movi r0, #5\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(*p.symbol("_start"));
  EXPECT_EQ(machine.run(), cpu::HaltReason::Halted);
  EXPECT_EQ(machine.cpu().state().reg(isa::Reg::R0), 5u);
}

TEST(Machine, SvcRoutesThroughTheMonitor) {
  sim::Machine machine;
  u8 seen = 0;
  machine.monitor().register_service(Service::kRapLogLoopCondition,
                                     [&](cpu::CpuState&) -> Cycles {
                                       seen = 1;
                                       return 50;
                                     });
  const Program p = assemble("_start:\n    svc #1\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Halted);
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(machine.monitor().world_switches(), 1u);
}

TEST(Machine, ConfigControlsMtbGeometry) {
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 128;
  config.mtb_activation_latency = 3;
  sim::Machine machine(config);
  EXPECT_EQ(machine.mtb().buffer_bytes(), 128u);
  EXPECT_EQ(machine.mtb().activation_latency(), 3u);
}

TEST(Machine, NonSecureCodeCannotReachTheMtbBuffer) {
  // The §IV-F argument: CF_Log lives in Secure SRAM. A Non-Secure program
  // trying to read or overwrite it faults.
  sim::Machine machine;
  const Program p = assemble(R"(
_start:
    li r1, =0x34000000   ; MTB SRAM base
    ldr r0, [r1]
    hlt
  )",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Fault);
  EXPECT_EQ(machine.cpu().fault()->type, mem::FaultType::SecurityFault);
}

// -- NS->S gateway edge cases ------------------------------------------------

TEST(SecureMonitor, GlitchedReentryRunsServiceTwiceOnOneSwitch) {
  SecureMonitor monitor;
  int calls = 0;
  monitor.register_service(Service::kRapLogLoopCondition,
                           [&](cpu::CpuState&) -> Cycles {
                             ++calls;
                             return 7;
                           });
  bool after_ran = false;
  SecureMonitor::GatewayFault fault;
  fault.dispatch = [](u8, cpu::CpuState&) -> u32 { return 2; };
  fault.after = [&](u8, cpu::CpuState&) { after_ran = true; };
  monitor.set_gateway_fault(std::move(fault));
  cpu::CpuState state;
  const Cycles cost =
      monitor.handle(static_cast<u8>(Service::kRapLogLoopCondition), state);
  EXPECT_EQ(calls, 2);  // glitched re-entry: body runs twice
  EXPECT_TRUE(after_ran);
  EXPECT_EQ(monitor.world_switches(), 1u);  // but only one gateway entry
  const CostModel costs;
  EXPECT_EQ(cost, costs.ns_to_secure + 2 * 7 + costs.secure_to_ns);
}

TEST(SecureMonitor, SwallowedDispatchStillChargesTheWorldSwitch) {
  SecureMonitor monitor;
  int calls = 0;
  monitor.register_service(Service::kRapLogLoopCondition,
                           [&](cpu::CpuState&) -> Cycles {
                             ++calls;
                             return 7;
                           });
  SecureMonitor::GatewayFault fault;
  fault.dispatch = [](u8, cpu::CpuState&) -> u32 { return 0; };
  monitor.set_gateway_fault(std::move(fault));
  cpu::CpuState state;
  const Cycles cost =
      monitor.handle(static_cast<u8>(Service::kRapLogLoopCondition), state);
  EXPECT_EQ(calls, 0);  // the call was swallowed...
  EXPECT_EQ(monitor.world_switches(), 1u);  // ...yet the gateway was entered
  const CostModel costs;
  EXPECT_EQ(cost, costs.secure_log_round_trip(0));
  // Clearing the fault restores normal dispatch on the same monitor.
  monitor.clear_gateway_fault();
  monitor.handle(static_cast<u8>(Service::kRapLogLoopCondition), state);
  EXPECT_EQ(calls, 1);
}

TEST(Machine, SecureServiceWritesBypassTheLockedNsMpu) {
  // §IV-A after lock_and_measure: the NS bank is locked, the region is
  // non-writable from the Non-Secure world — but a Secure service invoked
  // through the gateway still writes it (the NS-MPU only filters NS traffic).
  sim::Machine machine;
  const Address guarded = mem::MapLayout::kNsRamBase;
  auto& mpu = machine.bus().ns_mpu();
  mpu.configure(0, {.enabled = true,
                    .base = guarded,
                    .limit = guarded + 3,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = false});
  mpu.lock();
  EXPECT_THROW(mpu.configure(0, mem::MpuRegion{}), Error);  // locked: no undo
  EXPECT_THROW(mpu.clear(0), Error);
  machine.monitor().register_service(
      Service::kRapLogLoopCondition, [&](cpu::CpuState& s) -> Cycles {
        machine.bus().write(guarded, 0xdeadbeef, 4, s.world, s.pc());
        return 0;
      });
  const Program p = assemble("_start:\n    svc #1\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Halted);
  EXPECT_EQ(machine.bus().read(guarded, 4, mem::WorldSide::Secure, 0),
            0xdeadbeefu);
}

TEST(Machine, NsStoreIntoLockedMpuRegionFaults) {
  sim::Machine machine;
  const Address guarded = mem::MapLayout::kNsRamBase;
  auto& mpu = machine.bus().ns_mpu();
  mpu.configure(0, {.enabled = true,
                    .base = guarded,
                    .limit = guarded + 3,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = false});
  mpu.lock();
  const Program p = assemble(R"(
_start:
    li r1, =0x20200000   ; NS RAM base = the guarded word
    movi r0, #1
    str r0, [r1]
    hlt
  )",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  EXPECT_EQ(machine.run(), cpu::HaltReason::Fault);
  EXPECT_EQ(machine.cpu().fault()->type, mem::FaultType::MpuViolation);
}

TEST(MtbDrain, SeuBetweenDrainReadsIsVisibleToTheSecondRead) {
  // An SEU that lands in MTB SRAM *between* two drain reads must show up in
  // the second read: the drain path reads live SRAM, never a stale copy.
  // (The verifier catches the corruption downstream — see test_fault.)
  mem::MemoryMap map = mem::MemoryMap::make_default();
  trace::Mtb mtb(map, mem::MapLayout::kMtbSramBase, 64);
  mtb.set_enabled(true);
  mtb.set_tstart_enable(true);
  mtb.on_branch(0x100, 0x200, isa::BranchKind::Direct);
  mtb.on_branch(0x204, 0x300, isa::BranchKind::Direct);

  std::vector<u8> first;
  mtb.append_log_bytes(first);
  ASSERT_EQ(first.size(), 2 * trace::BranchPacket::kBytes);

  // Flip bit 5 of the second packet's destination word (byte offset 12).
  mtb.corrupt_stored_word(12, 1u << 5);
  std::vector<u8> second;
  mtb.append_log_bytes(second);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    if (i == 12) {
      EXPECT_EQ(second[i], first[i] ^ 0x20) << i;  // exactly the SEU bit
    } else {
      EXPECT_EQ(second[i], first[i]) << i;  // every other byte untouched
    }
  }
  // The decoded log sees the perturbed destination too.
  EXPECT_NE(mtb.read_log()[1].destination, 0x300u);
}

TEST(Machine, OracleCanBeDisabled) {
  sim::MachineConfig config;
  config.enable_oracle = false;
  sim::Machine machine(config);
  const Program p = assemble("_start:\n    b done\ndone:\n    hlt\n",
                             mem::MapLayout::kNsFlashBase);
  machine.load_program(p);
  machine.reset_cpu(p.base());
  machine.run();
  EXPECT_TRUE(machine.oracle().events().empty());
}

}  // namespace
}  // namespace raptrack::tz
