// Unit tests: SHA-256 against FIPS 180-4 examples, HMAC-SHA256 against
// RFC 4231 vectors, incremental hashing, and constant-time comparison.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace raptrack::crypto {
namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(hex_digest(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_digest(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= text.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(text).substr(0, split));
    h.update(std::string_view(text).substr(split));
    EXPECT_EQ(h.finalize(), Sha256::hash(text)) << "split " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edges.
  for (const size_t length : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string data(length, 'x');
    Sha256 incremental;
    for (const char c : data) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), Sha256::hash(data)) << length;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const std::vector<u8> key(20, 0x0b);
  EXPECT_EQ(hex_digest(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_digest(hmac_sha256(bytes_of("Jefe"),
                                   bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<u8> key(20, 0xaa);
  const std::vector<u8> data(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  const std::vector<u8> key(131, 0xaa);  // key longer than the block size
  EXPECT_EQ(hex_digest(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const auto a = hmac_sha256(bytes_of("key-a"), bytes_of("msg"));
  const auto b = hmac_sha256(bytes_of("key-b"), bytes_of("msg"));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Hmac, MessageSensitivity) {
  const auto a = hmac_sha256(bytes_of("key"), bytes_of("msg-1"));
  const auto b = hmac_sha256(bytes_of("key"), bytes_of("msg-2"));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(DigestEqual, ExactMatchOnly) {
  Digest a = Sha256::hash("x");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] ^= 1;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace raptrack::crypto
