// Unit tests: SHA-256 against FIPS 180-4 examples, HMAC-SHA256 against
// RFC 4231 vectors, incremental hashing, and constant-time comparison.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_mb.hpp"

namespace raptrack::crypto {
namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(hex_digest(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_digest(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= text.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(text).substr(0, split));
    h.update(std::string_view(text).substr(split));
    EXPECT_EQ(h.finalize(), Sha256::hash(text)) << "split " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edges.
  for (const size_t length : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string data(length, 'x');
    Sha256 incremental;
    for (const char c : data) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), Sha256::hash(data)) << length;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const std::vector<u8> key(20, 0x0b);
  EXPECT_EQ(hex_digest(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_digest(hmac_sha256(bytes_of("Jefe"),
                                   bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<u8> key(20, 0xaa);
  const std::vector<u8> data(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  const std::vector<u8> key(131, 0xaa);  // key longer than the block size
  EXPECT_EQ(hex_digest(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const auto a = hmac_sha256(bytes_of("key-a"), bytes_of("msg"));
  const auto b = hmac_sha256(bytes_of("key-b"), bytes_of("msg"));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Hmac, MessageSensitivity) {
  const auto a = hmac_sha256(bytes_of("key"), bytes_of("msg-1"));
  const auto b = hmac_sha256(bytes_of("key"), bytes_of("msg-2"));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Sha256, Fips896BitVector) {
  // FIPS 180-4 two-block example message (896 bits).
  EXPECT_EQ(hex_digest(Sha256::hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, KnownAnswerVectors) {
  EXPECT_EQ(hex_digest(Sha256::hash(
                "The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
  // NIST CAVP SHA256ShortMsg: 1-byte and 4-byte messages.
  const std::vector<u8> one_byte{0xd3};
  EXPECT_EQ(hex_digest(Sha256::hash(one_byte)),
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1");
  const std::vector<u8> four_bytes{0x74, 0xba, 0x25, 0x21};
  EXPECT_EQ(hex_digest(Sha256::hash(four_bytes)),
            "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e");
}

TEST(Hmac, Rfc4231Case4) {
  std::vector<u8> key(25);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(i + 1);
  const std::vector<u8> data(50, 0xcd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case5FullDigest) {
  // RFC 4231 truncates case 5 to 128 bits; this is the untruncated digest.
  const std::vector<u8> key(20, 0x0c);
  EXPECT_EQ(hex_digest(hmac_sha256(key, bytes_of("Test With Truncation"))),
            "a3b6167473100ee06e0c796c2955552bfa6f7c0a6a8aef8b93f860aab0cd20c5");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const std::vector<u8> key(131, 0xaa);
  EXPECT_EQ(hex_digest(hmac_sha256(
                key,
                bytes_of("This is a test using a larger than block-size key "
                         "and a larger than block-size data. The key needs "
                         "to be hashed before being used by the HMAC "
                         "algorithm."))),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Sha256, ScalarAndHardwarePathsAgree) {
  // The x86 SHA-extension kernel and the portable scalar compression must
  // be bit-exact. Hash a spread of sizes (sub-block, block-aligned, multi-
  // block, padding-edge) through both paths and through every vector above.
  std::vector<std::vector<u8>> inputs;
  for (const size_t length : {0u, 1u, 3u, 55u, 56u, 63u, 64u, 65u, 127u,
                              128u, 1000u, 4096u}) {
    std::vector<u8> data(length);
    for (size_t i = 0; i < length; ++i) {
      data[i] = static_cast<u8>(i * 131 + 7);
    }
    inputs.push_back(std::move(data));
  }
  for (const auto& input : inputs) {
    const Digest native = Sha256::hash(input);
    Sha256::force_scalar(true);
    const Digest scalar = Sha256::hash(input);
    Sha256::force_scalar(false);
    EXPECT_EQ(native, scalar) << "size " << input.size();
  }
  // FIPS vector through the forced-scalar path too.
  Sha256::force_scalar(true);
  EXPECT_EQ(hex_digest(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  Sha256::force_scalar(false);
}

// -- key schedule: the midstate path must be bit-exact with the direct path --

TEST(HmacKeyScheduleTest, MidstateMatchesDirectHmacAcrossKeyLengths) {
  // Short, block-sized, and longer-than-block keys all exercise the key
  // normalization that the schedule performs once up front.
  for (const size_t key_len : {1u, 20u, 63u, 64u, 65u, 131u}) {
    std::vector<u8> key(key_len);
    for (size_t i = 0; i < key_len; ++i) key[i] = static_cast<u8>(i * 7 + 3);
    const HmacKeySchedule schedule(key);
    for (const size_t msg_len : {0u, 1u, 55u, 64u, 200u}) {
      std::vector<u8> msg(msg_len);
      for (size_t i = 0; i < msg_len; ++i) msg[i] = static_cast<u8>(i);
      EXPECT_EQ(schedule.mac(msg), hmac_sha256(key, msg))
          << "key_len=" << key_len << " msg_len=" << msg_len;
      EXPECT_TRUE(schedule.check(msg, hmac_sha256(key, msg)));
    }
  }
}

TEST(HmacKeyScheduleTest, TwoSpanMacConcatenatesExactly) {
  const std::vector<u8> key = bytes_of("schedule-key");
  const HmacKeySchedule schedule(key);
  const std::vector<u8> header = bytes_of("header|");
  const std::vector<u8> payload = bytes_of("payload-bytes");
  std::vector<u8> joined = header;
  joined.insert(joined.end(), payload.begin(), payload.end());
  EXPECT_EQ(schedule.mac(header, payload), hmac_sha256(key, joined));
  // RFC 4231 case 1 through the schedule: midstates reproduce the vector.
  const std::vector<u8> rfc_key(20, 0x0b);
  EXPECT_EQ(hex_digest(HmacKeySchedule(rfc_key).mac(bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacBatch, BatchMatchesSerialVerification) {
  const std::vector<u8> key = bytes_of("batch-key");
  const HmacKeySchedule schedule(key);
  std::vector<std::vector<u8>> messages;
  std::vector<Digest> macs;
  for (size_t i = 0; i < 16; ++i) {
    std::vector<u8> msg(i * 13 + 1);
    for (size_t j = 0; j < msg.size(); ++j) {
      msg[j] = static_cast<u8>(i * 31 + j);
    }
    macs.push_back(hmac_sha256(key, msg));
    messages.push_back(std::move(msg));
  }
  const auto claims_over = [&](const std::vector<Digest>& mac_store) {
    std::vector<MacClaim> claims;
    for (size_t i = 0; i < messages.size(); ++i) {
      claims.push_back(MacClaim{messages[i], mac_store[i]});
    }
    return claims;
  };
  // All valid: batch agrees with per-claim serial checks.
  EXPECT_FALSE(hmac_verify_batch(schedule, claims_over(macs)).has_value());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_TRUE(schedule.check(messages[i], macs[i])) << i;
  }
  // Corrupt one MAC: batch pinpoints exactly the first bad index, matching
  // what a serial left-to-right scan would report.
  for (const size_t bad : {0u, 7u, 15u}) {
    std::vector<Digest> tampered = macs;
    tampered[bad][3] ^= 0x40;
    const auto hit = hmac_verify_batch(schedule, claims_over(tampered));
    ASSERT_TRUE(hit.has_value()) << bad;
    EXPECT_EQ(*hit, bad);
    EXPECT_FALSE(schedule.check(messages[bad], tampered[bad]));
  }
}

// -- multi-buffer (interleaved-lane) SHA-256 ---------------------------------

/// Run `body` under every lane width the host can express (scalar spill,
/// 4-lane SSE2, 8-lane AVX2 where present) plus the auto-dispatched width.
template <typename Body>
void for_each_lane_width(Body&& body) {
  for (const size_t lanes : {size_t{1}, size_t{4}, size_t{8}, size_t{0}}) {
    sha256_mb_force_lanes(lanes);
    body(sha256_mb_lanes());
  }
  sha256_mb_force_lanes(0);
}

TEST(Sha256MultiBuffer, FipsVectorsAcrossLaneWidths) {
  const std::vector<u8> abc = bytes_of("abc");
  const std::vector<u8> empty;
  const std::vector<u8> two_block = bytes_of(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  const std::vector<u8> four_block = bytes_of(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  // A deliberately ragged batch: the grouping by padded block count must
  // still land every digest in its original slot.
  const std::vector<MbMsg> batch = {
      {abc.data(), abc.size()},
      {empty.data(), empty.size()},
      {two_block.data(), two_block.size()},
      {four_block.data(), four_block.size()},
      {abc.data(), abc.size()},
  };
  for_each_lane_width([&](size_t lanes) {
    std::vector<Digest> out(batch.size());
    sha256_mb_hash(batch, out.data());
    EXPECT_EQ(hex_digest(out[0]),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        << "lanes=" << lanes;
    EXPECT_EQ(hex_digest(out[1]),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        << "lanes=" << lanes;
    EXPECT_EQ(hex_digest(out[2]),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        << "lanes=" << lanes;
    EXPECT_EQ(hex_digest(out[3]),
              "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1")
        << "lanes=" << lanes;
    EXPECT_EQ(out[4], out[0]) << "lanes=" << lanes;
  });
}

TEST(Sha256MultiBuffer, MatchesScalarOnFuzzedLengths) {
  // 37 messages spanning sub-block to multi-block sizes, including both
  // padding-tail shapes (rem < 56 and rem >= 56).
  std::vector<std::vector<u8>> inputs;
  for (size_t n = 0; n < 37; ++n) {
    std::vector<u8> data((n * 53 + n * n * 7) % 513);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<u8>(i * 167 + n * 29 + 3);
    }
    inputs.push_back(std::move(data));
  }
  std::vector<MbMsg> batch;
  for (const auto& input : inputs) batch.push_back({input.data(), input.size()});
  for_each_lane_width([&](size_t lanes) {
    std::vector<Digest> out(batch.size());
    sha256_mb_hash(batch, out.data());
    for (size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(out[i], Sha256::hash(inputs[i]))
          << "lanes=" << lanes << " msg=" << i;
    }
  });
}

TEST(Sha256MultiBuffer, MidstateResumeMatchesIncremental) {
  // Resume from a one-block midstate (the HMAC ipad/opad shape): the lanes
  // must account for the already-absorbed prefix in the padding length.
  std::array<u8, 64> prefix;
  for (size_t i = 0; i < prefix.size(); ++i) {
    prefix[i] = static_cast<u8>(i ^ 0x36);
  }
  Sha256 mid;
  mid.update(prefix);
  const auto& state = detail::Sha256Access::state(mid);
  std::vector<std::vector<u8>> tails;
  for (const size_t length : {0u, 1u, 31u, 55u, 56u, 64u, 200u}) {
    std::vector<u8> tail(length);
    for (size_t i = 0; i < length; ++i) tail[i] = static_cast<u8>(i * 11 + 5);
    tails.push_back(std::move(tail));
  }
  std::vector<MbMsg> batch;
  for (const auto& tail : tails) batch.push_back({tail.data(), tail.size()});
  for_each_lane_width([&](size_t lanes) {
    std::vector<Digest> out(batch.size());
    sha256_mb_hash_with_state(state, prefix.size(), batch, out.data());
    for (size_t i = 0; i < tails.size(); ++i) {
      Sha256 reference;
      reference.update(prefix);
      reference.update(tails[i]);
      EXPECT_EQ(out[i], reference.finalize())
          << "lanes=" << lanes << " tail=" << tails[i].size();
    }
  });
}

TEST(HmacBatch, MultiLaneAgreesWithSerialAndPinpointsFailures) {
  const std::vector<u8> key = bytes_of("lane-batch-key");
  const HmacKeySchedule schedule(key);
  std::vector<std::vector<u8>> messages;
  std::vector<Digest> macs;
  for (size_t n = 0; n < 19; ++n) {
    std::vector<u8> msg((n * 37 + 11) % 300);
    for (size_t i = 0; i < msg.size(); ++i) {
      msg[i] = static_cast<u8>(i + n * 13);
    }
    macs.push_back(schedule.mac(msg));
    messages.push_back(std::move(msg));
  }
  const auto claims_over = [&](const std::vector<Digest>& attached) {
    std::vector<MacClaim> claims;
    for (size_t i = 0; i < messages.size(); ++i) {
      claims.push_back({messages[i], attached[i]});
    }
    return claims;
  };
  for_each_lane_width([&](size_t lanes) {
    EXPECT_FALSE(hmac_verify_batch(schedule, claims_over(macs)).has_value())
        << "lanes=" << lanes;
    for (const size_t bad : {0u, 9u, 18u}) {
      std::vector<Digest> tampered = macs;
      tampered[bad][17] ^= 0x02;
      const auto hit = hmac_verify_batch(schedule, claims_over(tampered));
      ASSERT_TRUE(hit.has_value()) << "lanes=" << lanes;
      EXPECT_EQ(*hit, bad) << "lanes=" << lanes;
    }
  });
}

TEST(Sha256MultiBuffer, SingleMessageDispatchMatchesForcedScalar) {
  // The non-batched path (one message, or the one-lane spill) dispatches
  // block compression through detail::compress_blocks, which picks the
  // SHA-NI kernel when the host has it. Differential: hardware dispatch vs
  // forced scalar must be bit-exact on every padding shape, and both must
  // land the FIPS 180-4 two-block vector.
  std::vector<std::vector<u8>> inputs;
  for (const size_t length :
       {0u, 1u, 55u, 56u, 63u, 64u, 65u, 128u, 997u}) {
    std::vector<u8> data(length);
    for (size_t i = 0; i < length; ++i) data[i] = static_cast<u8>(i * 191 + 13);
    inputs.push_back(std::move(data));
  }
  for (const auto& input : inputs) {
    const MbMsg one[] = {{input.data(), input.size()}};
    Digest native;
    sha256_mb_hash(one, &native);
    Sha256::force_scalar(true);
    Digest scalar;
    sha256_mb_hash(one, &scalar);
    Sha256::force_scalar(false);
    EXPECT_EQ(native, scalar) << "size " << input.size();
    EXPECT_EQ(native, Sha256::hash(input)) << "size " << input.size();
  }
  const std::vector<u8> two_block = bytes_of(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  const MbMsg fips[] = {{two_block.data(), two_block.size()}};
  Sha256::force_scalar(true);
  Digest out;
  sha256_mb_hash(fips, &out);
  Sha256::force_scalar(false);
  EXPECT_EQ(hex_digest(out),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256MultiBuffer, ForceScalarCollapsesToOneLane) {
  Sha256::force_scalar(true);
  EXPECT_EQ(sha256_mb_lanes(), 1u);
  // Even through the scalar-only path the batched API stays correct.
  const std::vector<u8> abc = bytes_of("abc");
  const std::vector<MbMsg> batch = {{abc.data(), abc.size()},
                                    {abc.data(), abc.size()}};
  std::vector<Digest> out(batch.size());
  sha256_mb_hash(batch, out.data());
  Sha256::force_scalar(false);
  EXPECT_EQ(hex_digest(out[0]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(out[1], out[0]);
  EXPECT_GE(sha256_mb_lanes(), 1u);
}

TEST(DigestEqual, ExactMatchOnly) {
  Digest a = Sha256::hash("x");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] ^= 1;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace raptrack::crypto
