// Seeded fuzzed-program generator for the fast-path differential harness.
// Extends test_isa_fuzz's random-word approach from single instructions to
// whole programs: a seeded mix of ALU ops, in-range branches, loads/stores
// aimed at scratch RAM, stack ops, stray SVCs, and raw undecodable words —
// so a lock-stepped oracle/fast-path pair exercises every executor outcome
// (halt, fault of every type, instruction-budget runaway, self-modifying
// stores that must invalidate the predecode cache).
#pragma once

#include "asm/program.hpp"
#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include "mem/memory_map.hpp"

namespace raptrack::testing {

inline isa::Reg fuzz_reg(Xoshiro256& rng, bool allow_special) {
  // R0..R10 normally; occasionally SP/LR/PC for the nasty cases.
  if (allow_special && rng.chance(1, 16)) {
    const isa::Reg special[] = {isa::Reg::SP, isa::Reg::LR, isa::Reg::PC};
    return special[rng.next_below(3)];
  }
  return static_cast<isa::Reg>(rng.next_below(11));
}

/// One random instruction word for slot `index` of `num_words` total.
inline u32 fuzz_word(Xoshiro256& rng, u32 index, u32 num_words) {
  using isa::Op;
  isa::Instruction in;
  const u32 roll = static_cast<u32>(rng.next_below(100));
  if (roll < 40) {
    // Register/immediate ALU soup (flags randomly set).
    const Op alu[] = {Op::ADD,  Op::SUB,  Op::RSB,  Op::MUL,  Op::UDIV,
                      Op::SDIV, Op::AND,  Op::ORR,  Op::EOR,  Op::LSL,
                      Op::LSR,  Op::ASR,  Op::MOV,  Op::MVN,  Op::CMP,
                      Op::CMN,  Op::TST,  Op::ADDI, Op::SUBI, Op::ANDI,
                      Op::ORRI, Op::EORI, Op::LSLI, Op::LSRI, Op::ASRI,
                      Op::MOVI, Op::MOVT, Op::CMPI, Op::TSTI};
    in.op = alu[rng.next_below(std::size(alu))];
    in.rd = fuzz_reg(rng, true);
    in.rn = fuzz_reg(rng, true);
    in.rm = fuzz_reg(rng, true);
    in.set_flags = rng.chance(1, 2);
    in.imm = static_cast<i32>(rng.next_below(256));
  } else if (roll < 55) {
    // Branch somewhere inside the program (forward-biased so loops are
    // possible but termination usually comes from HLT or the budget).
    const i32 target = static_cast<i32>(rng.next_below(num_words));
    const i32 offset = (target - static_cast<i32>(index) - 1) * 4;
    if (rng.chance(1, 3)) {
      in = isa::make_cond_branch(static_cast<isa::Cond>(rng.next_below(14)),
                                 offset);
    } else {
      in = isa::make_branch(rng.chance(1, 3) ? Op::BL : Op::B, offset);
    }
  } else if (roll < 63) {
    // Register branch: mostly garbage targets (fault parity), sometimes LR.
    in = isa::make_reg_branch(rng.chance(1, 4) ? Op::BLX : Op::BX,
                              fuzz_reg(rng, true));
  } else if (roll < 78) {
    // Load/store with small offsets; the harness points R0..R3 at scratch
    // RAM, so many of these hit backed memory (including stores into the
    // program's own flash image via PC-relative bases — cache invalidation).
    const Op mem[] = {Op::LDR, Op::LDRB, Op::LDRH, Op::STR, Op::STRB,
                      Op::STRH, Op::LDRR, Op::STRR};
    in.op = mem[rng.next_below(std::size(mem))];
    in.rd = fuzz_reg(rng, false);
    in.rn = static_cast<isa::Reg>(rng.next_below(6));  // R0..R5 bases
    in.rm = static_cast<isa::Reg>(rng.next_below(6));
    in.shift = static_cast<u8>(rng.next_below(3));
    in.imm = static_cast<i32>(rng.next_below(64)) * 4;
  } else if (roll < 84) {
    in.op = rng.chance(1, 2) ? Op::PUSH : Op::POP;
    in.reg_list = static_cast<u16>(rng.next());
    if (rng.chance(3, 4)) in.reg_list &= 0x7fffu;  // usually no POP-to-PC
    if (in.reg_list == 0) in.reg_list = 0x0006;
  } else if (roll < 88) {
    in = isa::make_svc(static_cast<u8>(rng.next_below(4)));
  } else if (roll < 94) {
    in.op = rng.chance(1, 3) ? Op::HLT : Op::NOP;
  } else {
    // Raw random word: may decode to anything or be undefined — both paths
    // must agree either way.
    return static_cast<u32>(rng.next());
  }
  try {
    return isa::encode(in);
  } catch (const Error&) {
    return static_cast<u32>(rng.next());  // out-of-range field: raw word
  }
}

/// A seeded fuzzed program at the NS-flash base, `num_words` random words
/// followed by a HLT backstop.
inline Program fuzz_program(u64 seed, u32 num_words = 64) {
  Xoshiro256 rng(seed);
  Program program(mem::MapLayout::kNsFlashBase,
                  std::vector<u8>((num_words + 1) * 4, 0));
  for (u32 i = 0; i < num_words; ++i) {
    program.set_word(program.base() + i * 4, fuzz_word(rng, i, num_words));
  }
  program.set_word(program.base() + num_words * 4,
                   isa::encode(isa::Instruction{.op = isa::Op::HLT}));
  return program;
}

}  // namespace raptrack::testing
