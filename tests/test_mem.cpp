// Unit tests: memory map security attribution, MMIO dispatch, MPU
// permissions and locking, fault generation.
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/memory_map.hpp"
#include "mem/mpu.hpp"

namespace raptrack::mem {
namespace {

FaultType fault_of(const std::function<void()>& action) {
  try {
    action();
  } catch (const FaultException& e) {
    return e.fault().type;
  }
  return FaultType::None;
}

TEST(MemoryMap, DefaultRegionsCoverTheAn505Layout) {
  const MemoryMap map = MemoryMap::make_default();
  EXPECT_NE(map.find(MapLayout::kNsFlashBase), nullptr);
  EXPECT_NE(map.find(MapLayout::kNsRamBase), nullptr);
  EXPECT_NE(map.find(MapLayout::kSRamBase), nullptr);
  EXPECT_NE(map.find(MapLayout::kMtbSramBase), nullptr);
  EXPECT_EQ(map.find(0x0010'0000), nullptr);  // hole
}

TEST(MemoryMap, RawAccessRoundTrips) {
  MemoryMap map = MemoryMap::make_default();
  map.raw_write32(MapLayout::kNsRamBase + 16, 0xcafebabe);
  EXPECT_EQ(map.raw_read32(MapLayout::kNsRamBase + 16), 0xcafebabe);
  map.raw_write8(MapLayout::kNsRamBase, 0x5a);
  EXPECT_EQ(map.raw_read8(MapLayout::kNsRamBase), 0x5a);
}

TEST(MemoryMap, LittleEndianLayout) {
  MemoryMap map = MemoryMap::make_default();
  map.raw_write32(MapLayout::kNsRamBase, 0x04030201);
  EXPECT_EQ(map.raw_read8(MapLayout::kNsRamBase + 0), 0x01);
  EXPECT_EQ(map.raw_read8(MapLayout::kNsRamBase + 3), 0x04);
}

TEST(MemoryMap, SubWordCheckedAccess) {
  MemoryMap map = MemoryMap::make_default();
  map.write(MapLayout::kNsRamBase, 0xbeef, 2, WorldSide::NonSecure, 0);
  EXPECT_EQ(map.read(MapLayout::kNsRamBase, 2, WorldSide::NonSecure, 0), 0xbeefu);
  map.write(MapLayout::kNsRamBase + 2, 0x7f, 1, WorldSide::NonSecure, 0);
  EXPECT_EQ(map.read(MapLayout::kNsRamBase, 4, WorldSide::NonSecure, 0),
            0x007fbeefu);
}

TEST(MemoryMap, NonSecureCannotTouchSecureRegions) {
  MemoryMap map = MemoryMap::make_default();
  EXPECT_EQ(fault_of([&] {
              map.read(MapLayout::kSRamBase, 4, WorldSide::NonSecure, 0);
            }),
            FaultType::SecurityFault);
  EXPECT_EQ(fault_of([&] {
              map.write(MapLayout::kMtbSramBase, 1, 4, WorldSide::NonSecure, 0);
            }),
            FaultType::SecurityFault);
  // The Secure world can.
  map.write(MapLayout::kSRamBase, 7, 4, WorldSide::Secure, 0);
  EXPECT_EQ(map.read(MapLayout::kSRamBase, 4, WorldSide::Secure, 0), 7u);
}

TEST(MemoryMap, UnmappedAndUnalignedFaults) {
  MemoryMap map = MemoryMap::make_default();
  EXPECT_EQ(fault_of([&] { map.read(0x0, 4, WorldSide::Secure, 0); }),
            FaultType::BusError);
  EXPECT_EQ(fault_of([&] {
              map.read(MapLayout::kNsRamBase + 2, 4, WorldSide::NonSecure, 0);
            }),
            FaultType::Unaligned);
}

TEST(MemoryMap, ExecutePermissions) {
  MemoryMap map = MemoryMap::make_default();
  map.check_execute(MapLayout::kNsFlashBase, WorldSide::NonSecure);  // ok
  EXPECT_EQ(fault_of([&] {
              map.check_execute(MapLayout::kNsRamBase, WorldSide::NonSecure);
            }),
            FaultType::MpuViolation);
  EXPECT_EQ(fault_of([&] {
              map.check_execute(MapLayout::kSFlashBase, WorldSide::NonSecure);
            }),
            FaultType::SecurityFault);
}

TEST(MemoryMap, MmioHandlersAreInvoked) {
  MemoryMap map = MemoryMap::make_default();
  u32 last_write = 0;
  MmioHandler handler;
  handler.read = [](Address offset, u32) { return offset + 0x100; };
  handler.write = [&](Address, u32 value, u32) { last_write = value; };
  map.add_mmio("dev", 0x4000'0000, 0x100, Security::NonSecure, handler);
  EXPECT_EQ(map.read(0x4000'0010, 4, WorldSide::NonSecure, 0), 0x110u);
  map.write(0x4000'0020, 42, 4, WorldSide::NonSecure, 0);
  EXPECT_EQ(last_write, 42u);
}

TEST(MemoryMap, RejectsOverlappingRegions) {
  MemoryMap map = MemoryMap::make_default();
  Region overlap;
  overlap.name = "bad";
  overlap.base = MapLayout::kNsFlashBase + 0x100;
  overlap.size = 0x100;
  EXPECT_THROW(map.add_region(overlap), Error);
}

TEST(MemoryMap, LoadAndDump) {
  MemoryMap map = MemoryMap::make_default();
  const std::vector<u8> image = {1, 2, 3, 4, 5};
  map.load(MapLayout::kNsFlashBase, image);
  EXPECT_EQ(map.dump(MapLayout::kNsFlashBase, 5), image);
  EXPECT_THROW(map.load(0x0, image), Error);
}

TEST(Mpu, PermissionChecks) {
  Mpu mpu;
  mpu.configure(0, {.enabled = true,
                    .base = 0x1000,
                    .limit = 0x1fff,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = true});
  mpu.check(0x1800, AccessType::Read, 0);     // ok
  mpu.check(0x1800, AccessType::Execute, 0);  // ok
  mpu.check(0x3000, AccessType::Write, 0);    // outside: background allows
  EXPECT_EQ(fault_of([&] { mpu.check(0x1800, AccessType::Write, 0); }),
            FaultType::MpuViolation);
}

TEST(Mpu, LockPreventsReconfiguration) {
  Mpu mpu;
  mpu.configure(0, {.enabled = true, .base = 0, .limit = 0xfff});
  mpu.lock();
  EXPECT_TRUE(mpu.locked());
  EXPECT_THROW(mpu.configure(0, {.enabled = false}), Error);
  EXPECT_THROW(mpu.clear(0), Error);
  mpu.reset();  // Secure-World privilege
  EXPECT_FALSE(mpu.locked());
  mpu.configure(0, {.enabled = true, .base = 0, .limit = 0xfff});
}

TEST(Mpu, RejectsBadConfigs) {
  Mpu mpu;
  EXPECT_THROW(mpu.configure(8, {}), Error);
  EXPECT_THROW(mpu.configure(0, {.enabled = true, .base = 0x2000, .limit = 0x1000}),
               Error);
}

TEST(Bus, StacksMpuOnSecurityAttribution) {
  MemoryMap map = MemoryMap::make_default();
  Bus bus(map);
  // Lock flash against NS writes via the MPU (what the CFA engine does).
  bus.ns_mpu().configure(0, {.enabled = true,
                             .base = MapLayout::kNsFlashBase,
                             .limit = MapLayout::kNsFlashBase + 0xffff,
                             .allow_read = true,
                             .allow_write = false,
                             .allow_execute = true});
  EXPECT_EQ(fault_of([&] {
              bus.write(MapLayout::kNsFlashBase, 1, 4, WorldSide::NonSecure, 0);
            }),
            FaultType::MpuViolation);
  // The Secure world bypasses the NS-MPU.
  bus.write(MapLayout::kNsFlashBase, 1, 4, WorldSide::Secure, 0);
  EXPECT_EQ(bus.read(MapLayout::kNsFlashBase, 4, WorldSide::NonSecure, 0), 1u);
}

}  // namespace
}  // namespace raptrack::mem
