// Observability-layer tests: registry correctness (counter/gauge/histogram
// math, striped-shard aggregation, scrape-during-update under threads), span
// nesting/ordering with an injected clock, JSON-lines golden output, and the
// build-flavour differential — a canonical deterministic attestation whose
// wire bytes + verdict hash to the same hard-coded digest in RAP_OBS=ON and
// RAP_OBS=OFF builds, proving instrumentation never perturbs the protocol.
//
// Runs under the `observability` ctest label: the tsan preset includes it,
// so the striped-shard write path is TSan-checked alongside the farm tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "cfa/report.hpp"
#include "crypto/sha256.hpp"
#include "fault/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/verifier.hpp"

namespace raptrack {
namespace {

using obs::Registry;
using obs::Sample;
using obs::Snapshot;
using obs::SpanTracer;

std::string hex_digest(const crypto::Digest& digest) {
  std::string out;
  char buf[3];
  for (const u8 byte : digest) {
    std::snprintf(buf, sizeof buf, "%02x", byte);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry math (local instances: independent of the global registry that
// the instrumented modules feed).

TEST(ObsRegistry, CounterAccumulatesAcrossHandlesAndScrapes) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Counter a = reg.counter("test.hits");
  obs::Counter b = reg.counter("test.hits");  // same underlying metric
  a.inc();
  a.inc(41);
  b.inc(8);
  EXPECT_EQ(reg.scrape().value("test.hits"), 50u);
  a.inc();
  EXPECT_EQ(reg.scrape().value("test.hits"), 51u);
  EXPECT_EQ(reg.scrape().value("test.never_touched"), 0u);
}

TEST(ObsRegistry, GaugeFoldsWithMax) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Gauge gauge = reg.gauge("test.hwm");
  gauge.set_max(7);
  gauge.set_max(3);  // lower: must not regress the high-water mark
  EXPECT_EQ(reg.scrape().value("test.hwm"), 7u);
  gauge.set_max(19);
  EXPECT_EQ(reg.scrape().value("test.hwm"), 19u);
}

TEST(ObsRegistry, HistogramBucketMath) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Histogram h = reg.histogram("test.latency", {10, 100, 1000});
  for (const u64 v : {0ull, 10ull, 11ull, 100ull, 500ull, 5000ull}) {
    h.observe(v);
  }
  const Snapshot snap = reg.scrape();
  const Sample* s = snap.find("test.latency");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, Sample::Kind::Histogram);
  EXPECT_EQ(s->count, 6u);
  EXPECT_EQ(s->sum, 0u + 10 + 11 + 100 + 500 + 5000);
  ASSERT_EQ(s->bounds, (std::vector<u64>{10, 100, 1000}));
  // Bounds are inclusive upper limits; 5000 overflows into +Inf.
  EXPECT_EQ(s->counts, (std::vector<u64>{2, 2, 1, 1}));
}

TEST(ObsRegistry, RegistrationConflictsThrow) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  reg.counter("test.name");
  EXPECT_THROW(reg.gauge("test.name"), Error);
  EXPECT_THROW(reg.histogram("test.name", {1}), Error);
  reg.histogram("test.h", {1, 2});
  EXPECT_THROW(reg.histogram("test.h", {1, 3}), Error);  // different bounds
  EXPECT_NO_THROW(reg.histogram("test.h", {1, 2}));      // same bounds: ok
  EXPECT_THROW(reg.histogram("test.bad", {5, 5}), Error);  // not increasing
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsHandlesLive) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Counter c = reg.counter("test.c");
  obs::Gauge g = reg.gauge("test.g");
  obs::Histogram h = reg.histogram("test.h", {10});
  c.inc(5);
  g.set_max(5);
  h.observe(5);
  reg.reset();
  Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.value("test.c"), 0u);
  EXPECT_EQ(snap.value("test.g"), 0u);
  EXPECT_EQ(snap.find("test.h")->count, 0u);
  // Old handles keep writing to the (zeroed) metric.
  c.inc(2);
  g.set_max(3);
  h.observe(1);
  snap = reg.scrape();
  EXPECT_EQ(snap.value("test.c"), 2u);
  EXPECT_EQ(snap.value("test.g"), 3u);
  EXPECT_EQ(snap.find("test.h")->count, 1u);
}

// ---------------------------------------------------------------------------
// Shard aggregation and scrape-during-update under real threads. The tsan
// preset builds this test, so the relaxed-atomic write path is TSan-checked.

TEST(ObsRegistryThreads, ConcurrentIncrementsAggregateExactly) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Counter counter = reg.counter("test.concurrent");
  obs::Histogram hist = reg.histogram("test.concurrent_h", {64, 4096});
  constexpr size_t kThreads = 8;
  constexpr u64 kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::Counter mine = reg.counter("test.concurrent");  // own handle
      for (u64 i = 0; i < kPerThread; ++i) {
        mine.inc();
        if ((i & 1023) == 0) hist.observe(t);
      }
      (void)counter;
    });
  }
  for (auto& thread : threads) thread.join();
  const Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.value("test.concurrent"), kThreads * kPerThread);
  EXPECT_EQ(snap.find("test.concurrent_h")->count,
            kThreads * ((kPerThread + 1023) / 1024));
}

TEST(ObsRegistryThreads, ScrapeDuringUpdateIsSafeAndMonotonic) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  obs::Counter counter = reg.counter("test.racing");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  constexpr size_t kWriters = 4;
  constexpr u64 kPerWriter = 50'000;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      obs::Counter mine = reg.counter("test.racing");
      for (u64 i = 0; i < kPerWriter; ++i) mine.inc();
    });
  }
  u64 last = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const u64 now = reg.scrape().value("test.racing");
    EXPECT_GE(now, last) << "counter appeared to run backwards";
    last = now;
    if (now == kWriters * kPerWriter) stop = true;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(reg.scrape().value("test.racing"), kWriters * kPerWriter);
  (void)counter;
}

// ---------------------------------------------------------------------------
// JSON-lines golden output.

TEST(ObsSnapshot, JsonLinesGolden) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  Registry reg;
  reg.counter("zeta.count").inc(3);
  reg.gauge("alpha.level").set_max(9);
  obs::Histogram h = reg.histogram("mid.hist", {10, 20});
  h.observe(5);
  h.observe(15);
  h.observe(25);
  // Snapshot sorts by name, so the golden text is fully deterministic.
  EXPECT_EQ(reg.scrape().json_lines(),
            "{\"type\":\"gauge\",\"name\":\"alpha.level\",\"value\":9}\n"
            "{\"type\":\"histogram\",\"name\":\"mid.hist\",\"count\":3,"
            "\"sum\":45,\"bounds\":[10,20],\"counts\":[1,1,1]}\n"
            "{\"type\":\"counter\",\"name\":\"zeta.count\",\"value\":3}\n");
  const std::string dump = reg.scrape().dump();
  EXPECT_NE(dump.find("alpha.level"), std::string::npos);
  EXPECT_NE(dump.find("zeta.count   3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span tracer: nesting, ordering, golden JSON with an injected clock.

u64 g_fake_clock = 0;
u64 fake_clock() { return ++g_fake_clock; }

TEST(ObsTracer, SpanNestingAndGoldenJson) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  SpanTracer tracer;
  g_fake_clock = 0;
  tracer.set_clock(&fake_clock);
  const obs::SessionId session = tracer.begin_session("attest.test");
  {
    auto outer = tracer.span(session, "app_run");  // start=1
    {
      auto inner = tracer.span(session, "log_drain");  // start=2
      inner.attr("bytes", 96);
    }  // end=3
  }  // end=4
  {
    auto tail = tracer.span(session, "sign_final");  // start=5
  }  // end=6

  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 3u);
  // Commit order: inner drain first, then its parent, then the tail span.
  EXPECT_EQ(records[0].name, "log_drain");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[1].name, "app_run");
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[2].name, "sign_final");
  EXPECT_EQ(records[2].depth, 0u);
  EXPECT_EQ(records[2].seq, 2u);
  EXPECT_EQ(records[1].start, 1u);
  EXPECT_EQ(records[1].end, 4u);

  const std::string prefix =
      "{\"type\":\"span\",\"session\":" + std::to_string(session);
  EXPECT_EQ(tracer.json_lines(),
            prefix + ",\"kind\":\"attest.test\",\"name\":\"log_drain\","
                     "\"seq\":0,\"depth\":1,\"start\":2,\"end\":3,"
                     "\"attrs\":{\"bytes\":96}}\n" +
            prefix + ",\"kind\":\"attest.test\",\"name\":\"app_run\","
                     "\"seq\":1,\"depth\":0,\"start\":1,\"end\":4}\n" +
            prefix + ",\"kind\":\"attest.test\",\"name\":\"sign_final\","
                     "\"seq\":2,\"depth\":0,\"start\":5,\"end\":6}\n");

  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("session " + std::to_string(session) + " (attest.test)"),
            std::string::npos);
  EXPECT_NE(dump.find("    log_drain"), std::string::npos);  // depth-indented
  EXPECT_NE(dump.find("bytes=96"), std::string::npos);
}

TEST(ObsTracer, SessionsInterleaveIndependently) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  SpanTracer tracer;
  tracer.set_clock(&fake_clock);
  const obs::SessionId s1 = tracer.begin_session("verify_chain");
  const obs::SessionId s2 = tracer.begin_session("verify_chain");
  ASSERT_NE(s1, s2);
  auto a = tracer.span(s1, "mac_check");
  auto b = tracer.span(s2, "mac_check");
  {
    auto c = tracer.span(s2, "replay");  // nested in s2, independent of s1
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].session, s2);
  EXPECT_EQ(records[0].depth, 1u);  // under s2's still-open mac_check only
  EXPECT_EQ(records[0].seq, 0u);
}

TEST(ObsTracer, ResetDropsOpenScopesWithoutCrashing) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  SpanTracer tracer;
  tracer.set_clock(&fake_clock);
  const obs::SessionId session = tracer.begin_session("attest.test");
  {
    auto span = tracer.span(session, "stale");
    tracer.reset();  // scope outlives the reset: must commit nowhere
  }
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.json_lines(), "");
}

// ---------------------------------------------------------------------------
// Global wiring: one end-to-end attestation + verification must move the
// instrumented counters coherently.

TEST(ObsIntegration, AttestAndVerifyFeedTheGlobalRegistry)
{
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  obs::registry().reset();

  // syringe exercises the loop-condition SVC gateway, so the tz counters
  // move too (gps runs entirely without secure-world service calls).
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name("syringe"));
  const fault::CampaignOptions options;
  const fault::AttestedRun run = fault::attest_once(prepared, options);
  ASSERT_TRUE(run.functional_ok);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_expected_watermark(options.watermark_bytes);
  verifier.adopt_challenge(run.chal);
  const verify::VerificationResult result = verifier.verify(run.chal, run.reports);
  ASSERT_EQ(result.verdict, verify::Verdict::Accept);

  const Snapshot snap = obs::registry().scrape();
  EXPECT_EQ(snap.value("cfa.sessions.rap"), 1u);
  EXPECT_GT(snap.value("sim.instructions"), 0u);
  EXPECT_EQ(snap.value("sim.instructions"),
            snap.value("sim.fast_dispatches") +
                snap.value("sim.oracle_dispatches"));
  EXPECT_GT(snap.value("trace.cflog_entries"), 0u);
  EXPECT_EQ(snap.value("trace.cflog_bytes"),
            snap.value("trace.cflog_entries") * 8);
  EXPECT_GT(snap.value("trace.mtb_tstart_events"), 0u);
  // The §IV-E watermark fired once per partial report.
  EXPECT_EQ(snap.value("trace.watermark_events"),
            snap.value("cfa.partial_reports"));
  EXPECT_GT(snap.value("tz.svc_calls"), 0u);
  EXPECT_EQ(snap.value("tz.svc_calls"), snap.value("tz.world_switches"));
  EXPECT_EQ(snap.value("verify.chains"), 1u);
  EXPECT_EQ(snap.value("verify.verdict.accept"), 1u);
  EXPECT_EQ(snap.value("verify.verdict.reject"), 0u);
  EXPECT_GT(snap.value("verify.replay_index_hits"), 0u);
  // The prover's session timeline exists with the protocol phases in order.
  bool saw_h_mem = false, saw_run = false, saw_sign = false;
  for (const auto& record : obs::tracer().records()) {
    if (record.session_kind != "attest.rap") continue;
    if (record.name == "h_mem") saw_h_mem = true;
    if (record.name == "app_run") saw_run = true;
    if (record.name == "sign_final") saw_sign = true;
  }
  EXPECT_TRUE(saw_h_mem);
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_sign);
}

// ---------------------------------------------------------------------------
// Build-flavour differential: the canonical attestation below is fully
// deterministic, and this hash covers every byte the device would transmit
// (the encoded report chain = CF_Log evidence + MACs) plus the verifier's
// verdict and detail string. The constant is asserted identically in
// RAP_OBS=ON and RAP_OBS=OFF builds — if instrumentation ever perturbed
// execution, logging, or verdicts, exactly one flavour would fail.

TEST(ObsDifferential, CanonicalAttestationDigestMatchesBothBuildFlavours) {
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name("gps"));
  const fault::CampaignOptions options;
  const fault::AttestedRun run = fault::attest_once(prepared, options);
  ASSERT_TRUE(run.functional_ok);
  ASSERT_GT(run.reports.size(), 2u);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_expected_watermark(options.watermark_bytes);
  verifier.adopt_challenge(run.chal);
  const verify::VerificationResult result =
      verifier.verify(run.chal, run.reports);
  EXPECT_EQ(result.verdict, verify::Verdict::Accept);

  std::vector<u8> transcript = cfa::encode_report_chain(run.reports);
  transcript.push_back(static_cast<u8>(result.verdict));
  transcript.insert(transcript.end(), result.detail.begin(),
                    result.detail.end());
  EXPECT_EQ(
      hex_digest(crypto::Sha256::hash(transcript)),
      "20637438796ae9959b21ddaa713eb951bcc37f09fdf85374157d0420eb19909b")
      << "canonical transcript drifted (RAP_OBS="
      << (obs::kEnabled ? "ON" : "OFF") << " build)";
}

}  // namespace
}  // namespace raptrack
