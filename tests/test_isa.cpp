// Unit tests: instruction encode/decode round-trips, branch classification,
// condition evaluation, cycle model sanity.
#include <gtest/gtest.h>

#include "isa/cycle_model.hpp"
#include "isa/instruction.hpp"

namespace raptrack::isa {
namespace {

TEST(Condition, EvaluatesAgainstFlags) {
  Flags f;
  f.z = true;
  EXPECT_TRUE(evaluate(Cond::EQ, f));
  EXPECT_FALSE(evaluate(Cond::NE, f));
  f.z = false;
  f.n = true;
  f.v = false;
  EXPECT_TRUE(evaluate(Cond::LT, f));
  EXPECT_FALSE(evaluate(Cond::GE, f));
  f.n = false;
  EXPECT_TRUE(evaluate(Cond::GE, f));
  EXPECT_TRUE(evaluate(Cond::GT, f));
  f.c = true;
  EXPECT_TRUE(evaluate(Cond::HI, f));
  EXPECT_TRUE(evaluate(Cond::AL, f));
}

TEST(Condition, InvertPairs) {
  EXPECT_EQ(invert(Cond::EQ), Cond::NE);
  EXPECT_EQ(invert(Cond::LT), Cond::GE);
  EXPECT_EQ(invert(Cond::HI), Cond::LS);
  EXPECT_EQ(invert(Cond::AL), Cond::AL);
}

TEST(Condition, SuffixRoundTrip) {
  for (u8 c = 0; c <= static_cast<u8>(Cond::LE); ++c) {
    const Cond cond = static_cast<Cond>(c);
    EXPECT_EQ(cond_from_suffix(suffix(cond)), cond) << "cond " << int(c);
  }
  EXPECT_FALSE(cond_from_suffix("zz").has_value());
}

class EncodeRoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(EncodeRoundTrip, DecodesBack) {
  const Instruction original = GetParam();
  const u32 word = encode(original);
  const auto decoded = decode(word);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original) << to_string(original) << " vs "
                                << to_string(*decoded);
}

std::vector<Instruction> round_trip_cases() {
  std::vector<Instruction> cases;
  cases.push_back(make_nop());
  {
    Instruction in;
    in.op = Op::HLT;
    cases.push_back(in);
  }
  cases.push_back(make_svc(0x42));
  {
    Instruction in;
    in.op = Op::MOVI;
    in.rd = Reg::R7;
    in.imm = 0xbeef;
    cases.push_back(in);
    in.op = Op::MOVT;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::ADD;
    in.rd = Reg::R1;
    in.rn = Reg::R2;
    in.rm = Reg::R3;
    in.set_flags = true;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::SUBI;
    in.rd = Reg::R12;
    in.rn = Reg::SP;
    in.imm = -2048;
    cases.push_back(in);
    in.imm = 2047;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::CMPI;
    in.rn = Reg::R4;
    in.imm = -1;
    in.set_flags = true;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::LDR;
    in.rd = Reg::PC;
    in.rn = Reg::R2;
    in.imm = 16;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::LDRR;
    in.rd = Reg::R3;
    in.rn = Reg::R10;
    in.rm = Reg::R1;
    in.shift = 2;
    cases.push_back(in);
  }
  {
    Instruction in;
    in.op = Op::PUSH;
    in.reg_list = 0x40f0;  // r4-r7, lr
    cases.push_back(in);
    in.op = Op::POP;
    in.reg_list = 0x80f0;  // r4-r7, pc
    cases.push_back(in);
  }
  cases.push_back(make_branch(Op::B, -4096));
  cases.push_back(make_branch(Op::BL, 4096));
  cases.push_back(make_cond_branch(Cond::NE, -8));
  cases.push_back(make_cond_branch(Cond::GT, 1024));
  cases.push_back(make_reg_branch(Op::BX, Reg::LR));
  cases.push_back(make_reg_branch(Op::BLX, Reg::R5));
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EncodeRoundTrip,
                         ::testing::ValuesIn(round_trip_cases()));

TEST(Encode, RejectsOutOfRangeFields) {
  Instruction in;
  in.op = Op::MOVI;
  in.rd = Reg::R0;
  in.imm = 0x10000;
  EXPECT_THROW(encode(in), Error);

  in = make_branch(Op::B, 3);  // unaligned
  EXPECT_THROW(encode(in), Error);

  in = make_cond_branch(Cond::EQ, (1 << 21) * 4);  // exceeds imm20 words
  EXPECT_THROW(encode(in), Error);
}

TEST(Decode, RejectsInvalidOpcode) {
  EXPECT_FALSE(decode(0xff00'0000).has_value());
}

TEST(BranchKind, Classification) {
  EXPECT_EQ(branch_kind(make_branch(Op::B, 8)), BranchKind::Direct);
  EXPECT_EQ(branch_kind(make_branch(Op::BL, 8)), BranchKind::DirectCall);
  EXPECT_EQ(branch_kind(make_cond_branch(Cond::EQ, 8)), BranchKind::Conditional);
  EXPECT_EQ(branch_kind(make_reg_branch(Op::BLX, Reg::R3)),
            BranchKind::IndirectCall);
  EXPECT_EQ(branch_kind(make_reg_branch(Op::BX, Reg::R3)),
            BranchKind::IndirectJump);
  EXPECT_EQ(branch_kind(make_reg_branch(Op::BX, Reg::LR)), BranchKind::Return);

  Instruction pop;
  pop.op = Op::POP;
  pop.reg_list = 0x8010;  // r4, pc
  EXPECT_EQ(branch_kind(pop), BranchKind::Return);
  pop.reg_list = 0x0010;  // r4 only
  EXPECT_EQ(branch_kind(pop), BranchKind::None);

  Instruction ldr_pc;
  ldr_pc.op = Op::LDR;
  ldr_pc.rd = Reg::PC;
  EXPECT_EQ(branch_kind(ldr_pc), BranchKind::IndirectJump);
  ldr_pc.rd = Reg::R0;
  EXPECT_EQ(branch_kind(ldr_pc), BranchKind::None);

  Instruction hlt;
  hlt.op = Op::HLT;
  EXPECT_EQ(branch_kind(hlt), BranchKind::Halt);
  EXPECT_EQ(branch_kind(make_nop()), BranchKind::None);
}

TEST(BranchKind, NondeterminismMatchesPaperTaxonomy) {
  // §IV: indirect jumps/calls, returns, and conditional branches are
  // non-deterministic; direct branches and calls are not.
  EXPECT_TRUE(is_nondeterministic(BranchKind::Conditional));
  EXPECT_TRUE(is_nondeterministic(BranchKind::IndirectCall));
  EXPECT_TRUE(is_nondeterministic(BranchKind::IndirectJump));
  EXPECT_TRUE(is_nondeterministic(BranchKind::Return));
  EXPECT_FALSE(is_nondeterministic(BranchKind::Direct));
  EXPECT_FALSE(is_nondeterministic(BranchKind::DirectCall));
  EXPECT_FALSE(is_nondeterministic(BranchKind::None));
}

TEST(BranchTarget, OffsetsAreRelativeToNextInstruction) {
  const auto b = make_branch(Op::B, 8);
  EXPECT_EQ(branch_target(b, 0x1000), 0x100cu);
  const auto back = make_cond_branch(Cond::NE, -12);
  EXPECT_EQ(branch_target(back, 0x1000), 0xff8u);
  EXPECT_EQ(branch_offset(0x1000, 0x100c), 8);
  EXPECT_EQ(branch_offset(0x1000, 0xff8), -12);
}

TEST(CycleModel, RelativeCostsAreSane) {
  const CycleModel model;
  EXPECT_LT(model.cost(make_nop(), true), model.cost(make_branch(Op::B, 0), true));
  Instruction udiv;
  udiv.op = Op::UDIV;
  EXPECT_GT(model.cost(udiv, true), model.alu);

  const auto bcc = make_cond_branch(Cond::EQ, 8);
  EXPECT_GT(model.cost(bcc, true), model.cost(bcc, false));

  Instruction pop_pc;
  pop_pc.op = Op::POP;
  pop_pc.reg_list = 0x8030;
  Instruction pop_plain;
  pop_plain.op = Op::POP;
  pop_plain.reg_list = 0x0030;
  EXPECT_GT(model.cost(pop_pc, true), model.cost(pop_plain, true));
}

TEST(ToString, RendersReadably) {
  Instruction in;
  in.op = Op::ADDI;
  in.rd = Reg::R1;
  in.rn = Reg::R2;
  in.imm = 5;
  EXPECT_EQ(to_string(in), "addi r1, r2, #5");
  EXPECT_EQ(to_string(make_reg_branch(Op::BX, Reg::LR)), "bx lr");
  EXPECT_EQ(to_string(make_cond_branch(Cond::NE, -8)), "bne .-8");
}

}  // namespace
}  // namespace raptrack::isa
