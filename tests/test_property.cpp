// Property sweeps over the whole application suite × stimulus seeds:
//   P1  semantic preservation — every rewriting pass leaves app results
//       identical to the golden model;
//   P2  losslessness — Verifier reconstruction equals the ground-truth
//       oracle, branch for branch, for all three CFA methods;
//   P3  the paper's ordering invariants — RAP-Track runtime sits between
//       the baseline and TRACES; naive CF_Log dominates everything.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "lossless_helpers.hpp"
#include "rewrite/manifest_io.hpp"

namespace raptrack {
namespace {

using apps::MethodRun;
using apps::PreparedApp;

struct Case {
  std::string app;
  u64 seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.app + "_seed" + std::to_string(info.param.seed);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& app : apps::app_registry()) {
    for (const u64 seed : {11ull, 42ull, 1234ull}) {
      cases.push_back({app.name, seed});
    }
  }
  return cases;
}

class PropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  static const PreparedApp& prepared(const std::string& name) {
    static std::map<std::string, PreparedApp> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      it = cache.emplace(name, apps::prepare_app(apps::app_by_name(name))).first;
    }
    return it->second;
  }
};

TEST_P(PropertyTest, SemanticPreservationAcrossAllMethods) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);
  EXPECT_TRUE(apps::run_baseline(p, seed).functional_ok) << "baseline";
  EXPECT_TRUE(apps::run_rap(p, seed).functional_ok) << "rap";
  EXPECT_TRUE(apps::run_traces(p, seed).functional_ok) << "traces";
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;
  EXPECT_TRUE(apps::run_naive(p, seed, big).functional_ok) << "naive";
}

TEST_P(PropertyTest, RapReconstructionIsLossless) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(p.rap.program, p.rap.manifest, p.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const MethodRun run = apps::run_rap(p, seed, {}, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << app << ": " << result.detail;
  EXPECT_TRUE(raptrack::testing::rap_lossless_up_to_attribution(
      p.rap.program, p.rap.manifest, p.built.entry, result, run.oracle))
      << app;
}

TEST_P(PropertyTest, NaiveReconstructionIsLossless) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_naive(p.built.program, p.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;  // avoid wrap loss
  const MethodRun run = apps::run_naive(p, seed, big, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << app << ": " << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle) << app;
}

TEST_P(PropertyTest, TracesReconstructionIsLossless) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_traces(p.traces.program, p.traces.manifest, p.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const MethodRun run = apps::run_traces(p, seed, {}, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << app << ": " << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle) << app;
}

TEST_P(PropertyTest, RuntimeOrderingMatchesThePaper) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;

  const Cycles baseline = apps::run_baseline(p, seed).attestation.metrics.exec_cycles;
  const Cycles naive = apps::run_naive(p, seed, big).attestation.metrics.exec_cycles;
  const Cycles rap = apps::run_rap(p, seed, big).attestation.metrics.exec_cycles;
  const Cycles traces = apps::run_traces(p, seed, big).attestation.metrics.exec_cycles;

  // Naive MTB adds no instrumentation: identical to the baseline.
  EXPECT_EQ(naive, baseline) << app;
  // RAP-Track adds trampolines (>= baseline) but beats instrumentation.
  EXPECT_GE(rap, baseline) << app;
  EXPECT_LE(rap, traces) << app;
}

TEST_P(PropertyTest, CflogOrderingMatchesThePaper) {
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;

  const u64 naive = apps::run_naive(p, seed, big).attestation.metrics.cflog_bytes;
  const u64 rap = apps::run_rap(p, seed, big).attestation.metrics.cflog_bytes;

  // Figure 9: naive MTB logs dominate RAP-Track's (strictly, unless the app
  // logs nothing at all).
  EXPECT_GE(naive, rap) << app;
  EXPECT_GT(naive, 0u) << app;
}

TEST_P(PropertyTest, CodeSizeOrderingMatchesThePaper) {
  const auto& [app, seed] = GetParam();
  (void)seed;
  const PreparedApp& p = prepared(app);
  // Figure 10: both rewrites grow the binary; neither shrinks it.
  EXPECT_GE(p.rap.rewritten_bytes, p.rap.original_bytes);
  EXPECT_GE(p.traces.rewritten_bytes, p.traces.original_bytes);
}

TEST_P(PropertyTest, SerializedManifestDrivesVerification) {
  // The manifest survives its wire format with full verification fidelity:
  // a Verifier working from the deserialized copy accepts the same runs.
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);
  const rewrite::Manifest roundtrip = rewrite::deserialize_manifest(
      rewrite::serialize_manifest(p.rap.manifest));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(p.rap.program, roundtrip, p.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const MethodRun run = apps::run_rap(p, seed, {}, {}, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_TRUE(result.accepted()) << app << ": " << result.detail;
}

TEST_P(PropertyTest, SequentialSessionsStayIndependent) {
  // One Verifier, several attestation sessions: each needs its own fresh
  // challenge, and evidence from one session cannot satisfy another.
  const auto& [app, seed] = GetParam();
  const PreparedApp& p = prepared(app);
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(p.rap.program, p.rap.manifest, p.built.entry);

  const cfa::Challenge chal1 = verifier.fresh_challenge();
  const cfa::Challenge chal2 = verifier.fresh_challenge();
  ASSERT_NE(chal1, chal2);

  const MethodRun run1 = apps::run_rap(p, seed, {}, {}, chal1);
  const MethodRun run2 = apps::run_rap(p, seed + 1, {}, {}, chal2);

  // Cross-wiring evidence and challenges fails.
  EXPECT_FALSE(verifier.verify(chal2, run1.attestation.reports).accepted());
  // The right pairing still works (chal2 unconsumed by the failed check? —
  // a failed chal/report binding must not burn the challenge).
  EXPECT_TRUE(verifier.verify(chal1, run1.attestation.reports).accepted());
  EXPECT_TRUE(verifier.verify(chal2, run2.attestation.reports).accepted());
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllSeeds, PropertyTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace raptrack
