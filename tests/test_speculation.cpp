// Unit + end-to-end tests for the SpecCFA-style sub-path speculation
// extension: dictionary mining, codec round trips, transmission savings,
// and full-protocol verification with a provisioned dictionary.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "cfa/speculation.hpp"

namespace raptrack::cfa {
namespace {

trace::BranchPacket pkt(u32 src, u32 dst) { return {src, dst, false}; }

trace::PacketLog repeated_pattern(u32 repeats) {
  trace::PacketLog log;
  for (u32 i = 0; i < repeats; ++i) {
    log.push_back(pkt(0x100, 0x200));
    log.push_back(pkt(0x208, 0x300));
    log.push_back(pkt(0x308, 0x104));
    log.push_back(pkt(0x400 + 8 * i, 0x500));  // per-iteration noise
  }
  return log;
}

TEST(SpeculationMining, FindsRepeatedSubPaths) {
  const auto profile = repeated_pattern(8);
  MiningOptions options;
  options.min_length = 3;
  const SpeculationDict dict = mine_subpaths(profile, options);
  ASSERT_FALSE(dict.empty());
  // The repeated 3-packet body must be in the dictionary.
  bool found = false;
  for (const auto& entry : dict.entries) {
    if (entry.packets.size() >= 3 && entry.packets[0].source == 0x100) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpeculationMining, DeterministicAndBounded) {
  const auto profile = repeated_pattern(16);
  MiningOptions options;
  options.max_entries = 2;
  const SpeculationDict a = mine_subpaths(profile, options);
  const SpeculationDict b = mine_subpaths(profile, options);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_LE(a.entries.size(), 2u);

  // Too-short profiles yield an empty dictionary.
  EXPECT_TRUE(mine_subpaths(trace::PacketLog{pkt(1, 2)}, options).empty());
}

TEST(SpeculationCodec, RoundTripsExactly) {
  const auto log = repeated_pattern(6);
  const SpeculationDict dict = mine_subpaths(log);
  const auto encoded = encode_speculated(log, dict);
  const auto decoded = decode_speculated(encoded, dict);
  ASSERT_EQ(decoded.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(decoded[i].source, log[i].source) << i;
    EXPECT_EQ(decoded[i].destination, log[i].destination) << i;
  }
}

TEST(SpeculationCodec, CompressesRepetitiveLogs) {
  const auto log = repeated_pattern(32);
  const SpeculationDict dict = mine_subpaths(log);
  const auto encoded = encode_speculated(log, dict);
  const size_t raw_bytes = log.size() * trace::BranchPacket::kBytes;
  EXPECT_LT(encoded.size(), raw_bytes / 2) << "expected >2x compression";
}

TEST(SpeculationCodec, EmptyDictionaryDegradesToLiterals) {
  const auto log = repeated_pattern(2);
  const SpeculationDict empty;
  const auto encoded = encode_speculated(log, empty);
  EXPECT_EQ(encoded.size(), log.size() * 9);  // tag + 8 bytes per packet
  EXPECT_EQ(decode_speculated(encoded, empty).size(), log.size());
}

TEST(SpeculationCodec, RejectsMalformedStreams) {
  SpeculationDict dict;
  dict.entries.push_back({{pkt(1, 2)}});
  EXPECT_THROW(decode_speculated(std::vector<u8>{0x02}, dict), Error);  // tag
  EXPECT_THROW(decode_speculated(std::vector<u8>{0x00, 1, 2}, dict), Error);
  EXPECT_THROW(decode_speculated(std::vector<u8>{0x01}, dict), Error);
  EXPECT_THROW(decode_speculated(std::vector<u8>{0x01, 9}, dict), Error);
}

TEST(SpeculationDictIo, RoundTripsAndValidates) {
  const auto profile = repeated_pattern(8);
  const SpeculationDict dict = mine_subpaths(profile);
  const auto bytes = serialize_dict(dict);
  const SpeculationDict parsed = deserialize_dict(bytes);
  EXPECT_EQ(parsed.entries, dict.entries);

  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW(deserialize_dict(corrupt), Error);
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW(deserialize_dict(truncated), Error);
}

// -- end to end --------------------------------------------------------------

TEST(SpeculationProtocol, SpeculatedSessionVerifiesLosslessly) {
  const auto prepared = apps::prepare_app(apps::app_by_name("fibcall"));

  // Profile on one input, deploy the dictionary, attest on another input.
  const auto profile_run = apps::run_rap(prepared, /*seed=*/1);
  trace::PacketLog profile;
  for (const auto& report : profile_run.attestation.reports) {
    if (report.type == PayloadType::RapFinal) {
      profile = decode_rap_final(report.payload).packets;
    }
  }
  ASSERT_FALSE(profile.empty());
  const SpeculationDict dict = mine_subpaths(profile);
  ASSERT_FALSE(dict.empty());

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_speculation(&dict);
  const Challenge chal = verifier.fresh_challenge();

  SessionOptions options;
  options.speculation = &dict;
  const auto run = apps::run_rap(prepared, /*seed=*/2, {}, options, chal);
  ASSERT_FALSE(run.attestation.reports.empty());
  EXPECT_EQ(run.attestation.reports.back().type, PayloadType::RapSpecFinal);

  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle);
}

TEST(SpeculationProtocol, CutsTransmittedEvidence) {
  const auto prepared = apps::prepare_app(apps::app_by_name("fibcall"));
  const auto profile_run = apps::run_rap(prepared, 1);
  trace::PacketLog profile =
      decode_rap_final(profile_run.attestation.reports.back().payload).packets;
  const SpeculationDict dict = mine_subpaths(profile);

  SessionOptions options;
  options.speculation = &dict;
  const auto plain = apps::run_rap(prepared, 2);
  const auto speculated = apps::run_rap(prepared, 2, {}, options);

  EXPECT_LT(speculated.attestation.metrics.transmitted_evidence_bytes,
            plain.attestation.metrics.transmitted_evidence_bytes / 2)
      << "recursion-heavy logs should compress well";
  // The on-device CF_Log volume itself is unchanged — only transmission.
  EXPECT_EQ(speculated.attestation.metrics.cflog_bytes,
            plain.attestation.metrics.cflog_bytes);
}

TEST(SpeculationProtocol, MismatchedDictionaryIsRejected) {
  const auto prepared = apps::prepare_app(apps::app_by_name("fibcall"));
  const auto profile_run = apps::run_rap(prepared, 1);
  trace::PacketLog profile =
      decode_rap_final(profile_run.attestation.reports.back().payload).packets;
  const SpeculationDict dict = mine_subpaths(profile);

  // Verifier provisioned with a DIFFERENT (e.g. stale) dictionary.
  SpeculationDict stale = dict;
  ASSERT_FALSE(stale.entries.empty());
  stale.entries[0].packets[0].source ^= 0x1000;

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_speculation(&stale);
  const Challenge chal = verifier.fresh_challenge();

  SessionOptions options;
  options.speculation = &dict;
  const auto run = apps::run_rap(prepared, 2, {}, options, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  // Authentic (MAC fine) but the expanded evidence no longer parses.
  EXPECT_TRUE(result.authentic);
  EXPECT_FALSE(result.accepted());
}

TEST(SpeculationProtocol, NoDictionaryProvisionedIsRejected) {
  const auto prepared = apps::prepare_app(apps::app_by_name("fibcall"));
  const auto profile_run = apps::run_rap(prepared, 1);
  trace::PacketLog profile =
      decode_rap_final(profile_run.attestation.reports.back().payload).packets;
  const SpeculationDict dict = mine_subpaths(profile);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const Challenge chal = verifier.fresh_challenge();
  SessionOptions options;
  options.speculation = &dict;
  const auto run = apps::run_rap(prepared, 2, {}, options, chal);
  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.accepted());
}

}  // namespace
}  // namespace raptrack::cfa
