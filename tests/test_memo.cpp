// Differential suite for the verified sub-path memo cache (verify/memo.*).
//
// The contract under test: memoization may change wall-clock time and the
// memo_hits/memo_misses telemetry, and NOTHING else. Every test here pins a
// memoized verification against an unmemoized one (set_memo(false)) via
// verification_digest() — a canonical SHA-256 over verdict, flags, detail,
// gaps, notes, events, findings, counters and decoded evidence — so any
// divergence, however subtle, is a byte-level failure:
//   * ~200 fuzzed transport-fault plans across two apps (the fault-campaign
//     injector set), cold and warm;
//   * every registry app, cold cache then warm cache (warm must actually
//     hit);
//   * eviction under a tiny byte budget (pressure must not corrupt results);
//   * concurrent farm workers warming one shared cache (run under the
//     `concurrency` label; the tsan preset builds this with TSan).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/hex.hpp"
#include "fault/campaign.hpp"
#include "verify/farm.hpp"
#include "verify/memo.hpp"
#include "verify/verifier.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;
using fault::AttestedRun;
using fault::FaultPlan;
using fault::InjectorKind;
using verify::Deployment;
using verify::MemoCache;
using verify::MemoOptions;
using verify::MemoSegment;
using verify::VerificationResult;
using verify::verification_digest;

std::string digest_hex(const VerificationResult& result) {
  return hex_digest(verification_digest(result));
}

// Verify `chain` against `deployment` with the memo cache on or off. A
// fresh Verifier (fresh session store) per call; the memo cache itself
// lives on the shared Deployment, so warmth carries across calls.
// `frontier` toggles the second (RAP-ambiguity decision) cache tier on top.
VerificationResult run_verify(std::shared_ptr<const Deployment> deployment,
                              u32 watermark, const cfa::Challenge& chal,
                              const std::vector<cfa::SignedReport>& chain,
                              bool memo, bool frontier = true) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect(std::move(deployment));
  verifier.set_expected_watermark(watermark);
  verifier.set_memo(memo);
  verifier.set_frontier(frontier);
  verifier.adopt_challenge(chal);
  return verifier.verify(chal, chain);
}

// -- MemoCache unit behavior --------------------------------------------------

MemoCache::Handle make_segment(Address entry_pc, u64 padding = 0) {
  auto seg = std::make_shared<MemoSegment>();
  seg->entry_pc = entry_pc;
  seg->exit_pc = entry_pc + 4;
  seg->steps = 1;
  seg->packets.resize(padding);  // inflate bytes() for budget tests
  return seg;
}

TEST(MemoCacheUnit, InsertLookupRefreshAndClear) {
  MemoCache cache({.shards = 4, .slots_per_shard = 64});
  MemoCache::Handle out[MemoCache::kLookupWidth];
  EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);

  cache.insert(42, make_segment(0x100));
  if constexpr (verify::kMemoEnabled) {
    ASSERT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 1u);
    EXPECT_EQ(out[0]->entry_pc, 0x100u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Same key, same entry guards: refreshes in place, no duplicate.
    cache.insert(42, make_segment(0x100));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    cache.note_hit();
    cache.note_miss();
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_GT(cache.stats().bytes, 0u);

    cache.clear();
    EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
  } else {
    EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);
  }
}

TEST(MemoCacheUnit, ForceDisableDropsTraffic) {
  MemoCache cache;
  MemoCache::Handle out[MemoCache::kLookupWidth];
  MemoCache::force_disable(true);
  cache.insert(7, make_segment(0x200));
  EXPECT_EQ(cache.lookup(7, out, MemoCache::kLookupWidth), 0u);
  MemoCache::force_disable(false);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MemoCacheUnit, ByteBudgetEnforcedByEviction) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const MemoOptions options{
      .shards = 1, .slots_per_shard = 256, .budget_bytes = 16 * 1024};
  MemoCache cache(options);
  // Distinct keys, each segment ~1.5 KiB: far past the budget in total.
  for (u64 key = 0; key < 64; ++key) {
    cache.insert(key * 0x10001, make_segment(0x100 + 4 * key, /*padding=*/128));
    EXPECT_LE(cache.stats().bytes, options.budget_bytes)
        << "budget exceeded after insert " << key;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 64u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 64u);
  // An entry bigger than one shard's whole budget is refused outright.
  cache.insert(999, make_segment(0x900, /*padding=*/4096));
  EXPECT_GT(cache.stats().rejects, 0u);
}

// -- frontier tier unit behavior ----------------------------------------------

verify::FrontierEntry make_frontier(Address pc, u64 fingerprint) {
  verify::FrontierEntry entry;
  entry.pc = pc;
  entry.policy_hash = 0x1234;
  entry.stack_hash = 0x5678;
  entry.evidence_fp = fingerprint;
  entry.packet_rem = 10;
  return entry;
}

TEST(MemoFrontierUnit, InsertLookupAndKnowledgeMerge) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2, .frontier_slots_per_shard = 64});
  verify::FrontierEntry known;
  EXPECT_FALSE(cache.frontier_lookup(make_frontier(0x100, 1), &known));

  // A promoted failure and a resolved decision for the same frontier state
  // merge into one entry carrying both kinds of knowledge.
  verify::FrontierEntry failure = make_frontier(0x100, 1);
  failure.failed_mask = 1;  // decision `false` known futile
  cache.frontier_insert(failure);
  verify::FrontierEntry decision = make_frontier(0x100, 1);
  decision.has_decision = true;
  decision.decision = true;
  decision.steps_to_complete = 77;
  cache.frontier_insert(decision);

  ASSERT_TRUE(cache.frontier_lookup(make_frontier(0x100, 1), &known));
  EXPECT_EQ(known.failed_mask, 1u);
  EXPECT_TRUE(known.has_decision);
  EXPECT_TRUE(known.decision);
  EXPECT_EQ(known.steps_to_complete, 77u);
  EXPECT_EQ(cache.stats().frontier_entries, 1u);

  // A different evidence fingerprint is a different frontier state: the
  // guards must miss even though the pc collides.
  EXPECT_FALSE(cache.frontier_lookup(make_frontier(0x100, 2), &known));
  EXPECT_GT(cache.stats().frontier_misses, 0u);
}

TEST(MemoFrontierUnit, FrontierEntriesChargeTheByteBudget) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  // Budget sized for a handful of frontier entries (192 bytes charged each):
  // inserting far more must evict instead of growing without bound
  // (satellite: promoted failure knowledge rides the same budget).
  const MemoOptions options{
      .shards = 1, .frontier_slots_per_shard = 256, .budget_bytes = 2048};
  MemoCache cache(options);
  for (u64 i = 0; i < 64; ++i) {
    verify::FrontierEntry entry = make_frontier(0x100 + 4 * i, i);
    entry.failed_mask = 1;
    cache.frontier_insert(entry);
    EXPECT_LE(cache.stats().bytes, options.budget_bytes)
        << "budget exceeded after frontier insert " << i;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.frontier_inserts, 64u);
  EXPECT_LT(stats.frontier_entries, 64u)
      << "tiny budget never evicted a frontier entry";
}

TEST(MemoPrefetch, NoteSessionThenPrefetchWarmsTaggedEntries) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2});
  cache.insert(42, make_segment(0x100));
  verify::FrontierEntry entry = make_frontier(0x200, 9);
  entry.has_decision = true;
  cache.frontier_insert(entry);

  const u64 seg_keys[] = {42};
  const u64 frontier_keys[] = {entry.key_hash()};
  cache.note_session(7, seg_keys, frontier_keys);
  EXPECT_EQ(cache.prefetch(7), 2u) << "both tagged entries should re-touch";
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
  EXPECT_EQ(cache.stats().prefetch_warmed, 2u);
  // Unknown device: nothing tagged, nothing warmed, no hit counted.
  EXPECT_EQ(cache.prefetch(99), 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
}

// -- fuzzed-chain differential (the ~200-plan fault campaign) -----------------

struct Case {
  size_t app = 0;
  cfa::Challenge chal{};
  std::vector<cfa::SignedReport> chain;
  std::string label;
};

struct Corpus {
  std::vector<std::shared_ptr<const Deployment>> deployments;
  u32 watermark = 0;
  std::vector<Case> cases;
};

// Same corpus shape as the farm differential: per app, the clean chain plus
// every transport injector at several seeds.
const Corpus& corpus() {
  static const Corpus corpus = [] {
    Corpus out;
    const fault::CampaignOptions options;
    out.watermark = options.watermark_bytes;
    constexpr u64 kSeedsPerKind = 8;
    for (const char* name : {"gps", "temperature"}) {
      const PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
      const AttestedRun clean = fault::attest_once(prepared, options);
      EXPECT_TRUE(clean.functional_ok) << name;
      const size_t app = out.deployments.size();
      out.deployments.push_back(Deployment::rap(
          prepared.rap.program, prepared.rap.manifest, prepared.built.entry));
      out.cases.push_back(
          {app, clean.chal, clean.reports, std::string(name) + "/clean"});
      for (const InjectorKind kind : fault::transport_injectors()) {
        for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
          FaultPlan plan(seed);
          plan.add(kind);
          std::vector<cfa::SignedReport> chain = clean.reports;
          if (kind == InjectorKind::WireBitFlip) {
            auto survived = fault::apply_wire_fault(plan, chain);
            if (!survived.has_value()) continue;
            chain = std::move(*survived);
          } else {
            fault::apply_transport_faults(plan, chain);
          }
          out.cases.push_back({app, clean.chal, std::move(chain),
                               std::string(name) + "/" +
                                   fault::injector_name(kind) + "/" +
                                   std::to_string(seed)});
        }
      }
    }
    return out;
  }();
  return corpus;
}

TEST(MemoDifferential, FuzzedFaultPlansMatchUnmemoizedDigests) {
  const Corpus& fuzz = corpus();
  ASSERT_GE(fuzz.cases.size(), 200u)
      << "fault-plan corpus shrank below the differential coverage floor";

  // Fresh deployments for the memoized side so this test controls its own
  // cache warmth (the corpus deployments are shared with other tests).
  size_t accepts = 0;
  for (const Case& c : fuzz.cases) {
    const VerificationResult plain = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, false);
    // Twice memoized: cold-ish (whatever earlier cases warmed) and warm.
    const VerificationResult memo1 = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, true);
    const VerificationResult memo2 = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, true);
    EXPECT_EQ(digest_hex(memo1), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(memo2), digest_hex(plain)) << c.label << " (warm)";
    if (plain.accepted()) ++accepts;
  }
  EXPECT_GT(accepts, 0u);
  if constexpr (verify::kMemoEnabled) {
    u64 hits = 0;
    for (const auto& deployment : fuzz.deployments) {
      hits += deployment->memo().stats().hits;
    }
    EXPECT_GT(hits, 0u) << "the differential never exercised the hit path";
  }
}

// -- registry-wide app differential -------------------------------------------

TEST(MemoDifferential, EveryRegistryAppWarmCacheMatchesAndHits) {
  const fault::CampaignOptions options;
  // RAP replay aborts recording at every ambiguous-branch checkpoint, and
  // the futility backoff then anchors sparsely; short windows plus backoff
  // disabled keep enough abort-free stretches recordable that the warm-hit
  // assertion stays meaningful on the RAP path (digest equality holds for
  // any window/backoff setting — only traffic volume changes).
  const MemoOptions short_window{.window_packets = 4, .anchor_backoff_cap = 0};
  for (const auto& app : apps::app_registry()) {
    const PreparedApp prepared = apps::prepare_app(app);
    const AttestedRun clean = fault::attest_once(prepared, options);
    ASSERT_TRUE(clean.functional_ok) << app.name;
    const auto deployment =
        Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                        prepared.built.entry, short_window);

    const VerificationResult plain = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, false);
    ASSERT_TRUE(plain.accepted()) << app.name << ": " << plain.detail;
    const VerificationResult cold = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, true);
    const VerificationResult warm = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, true);
    EXPECT_EQ(digest_hex(cold), digest_hex(plain)) << app.name << " cold";
    EXPECT_EQ(digest_hex(warm), digest_hex(plain)) << app.name << " warm";
    if constexpr (verify::kMemoEnabled) {
      EXPECT_GT(warm.replay.memo_hits, 0u)
          << app.name << ": repeated replay never hit the cache";
    }
  }
}

// -- eviction under pressure --------------------------------------------------

TEST(MemoEviction, TinyBudgetEvictsWithoutChangingDigests) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  // A cache far too small for the run: short windows make many segments and
  // a ~2 KiB budget forces continuous eviction while verifying.
  const MemoOptions tiny{.shards = 1,
                         .slots_per_shard = 8,
                         .budget_bytes = 2048,
                         .window_packets = 4};
  const auto pressured =
      Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry, tiny);
  const auto roomy = Deployment::rap(prepared.rap.program,
                                     prepared.rap.manifest,
                                     prepared.built.entry);

  const VerificationResult plain = run_verify(
      roomy, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  for (int round = 0; round < 4; ++round) {
    const VerificationResult squeezed =
        run_verify(pressured, options.watermark_bytes, clean.chal,
                   clean.reports, true);
    EXPECT_EQ(digest_hex(squeezed), digest_hex(plain)) << "round " << round;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = pressured->memo().stats();
    EXPECT_LE(stats.bytes, tiny.budget_bytes);
    EXPECT_GT(stats.inserts, 0u);
    EXPECT_GT(stats.evictions, 0u)
        << "pressure test never actually evicted (budget too roomy?)";
  }
}

// -- concurrent farm workers sharing one cache --------------------------------

TEST(MemoConcurrency, FarmWorkersWarmOneCacheAndMatchSerial) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  // Short windows + no backoff for the same reason as the registry
  // differential above: they guarantee cache traffic on this
  // checkpoint-dense RAP chain, which is what makes the shared-cache
  // hit/insert assertions below meaningful.
  const auto deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      MemoOptions{.window_packets = 4, .anchor_backoff_cap = 0});

  const VerificationResult plain = run_verify(
      deployment, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  const std::string expected = digest_hex(plain);

  verify::VerifierFarm farm(apps::demo_key(),
                            {.workers = 4, .clamp_workers = false});
  verify::VerifyConfig config;
  config.expected_watermark = options.watermark_bytes;
  constexpr size_t kDevices = 48;
  std::vector<std::future<VerificationResult>> results;
  for (size_t device = 0; device < kDevices; ++device) {
    farm.provision(device, deployment, config);
    farm.adopt_challenge(device, clean.chal);
    results.push_back(farm.submit(device, clean.chal, clean.reports));
  }
  farm.drain();
  for (size_t device = 0; device < kDevices; ++device) {
    const VerificationResult result = results[device].get();
    EXPECT_TRUE(result.accepted()) << "device " << device;
    EXPECT_EQ(digest_hex(result), expected) << "device " << device;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = deployment->memo().stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.inserts, 0u);
  }
}

// -- frontier differential ----------------------------------------------------

// The frontier tier must be outcome-invisible exactly like the sub-path
// tier: over the whole fault-plan corpus, digests with {memo+frontier},
// {memo only} and {no memo} are byte-identical. The corpus deployments are
// fresh here so this test controls its own warmth.
TEST(MemoFrontierDifferential, FuzzedFaultPlansMatchAcrossFrontierToggle) {
  const Corpus& fuzz = corpus();
  ASSERT_GE(fuzz.cases.size(), 200u)
      << "fault-plan corpus shrank below the differential coverage floor";
  std::vector<std::shared_ptr<const Deployment>> fresh;
  for (const auto& deployment : fuzz.deployments) {
    fresh.push_back(Deployment::rap(deployment->program(),
                                    *deployment->rap_manifest(),
                                    deployment->entry()));
  }
  for (const Case& c : fuzz.cases) {
    const VerificationResult plain = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, false);
    const VerificationResult no_frontier = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, false);
    const VerificationResult frontier_cold = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, true);
    const VerificationResult frontier_warm = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, true);
    EXPECT_EQ(digest_hex(no_frontier), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(frontier_cold), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(frontier_warm), digest_hex(plain))
        << c.label << " (warm)";
  }
}

// On a checkpoint-dense repeated RAP chain the frontier must actually fire:
// the second verification should take known-good decisions without saving
// checkpoints, and still land on the memo-off digest.
TEST(MemoFrontierDifferential, DenseRepeatedChainHitsFrontierAndMatches) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const auto deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      MemoOptions{.window_packets = 4, .anchor_backoff_cap = 0});

  const VerificationResult plain = run_verify(
      deployment, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  for (int round = 0; round < 3; ++round) {
    const VerificationResult result =
        run_verify(deployment, options.watermark_bytes, clean.chal,
                   clean.reports, true, true);
    EXPECT_EQ(digest_hex(result), digest_hex(plain)) << "round " << round;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = deployment->memo().stats();
    EXPECT_GT(stats.frontier_inserts, 0u)
        << "dense RAP chain never journaled a frontier decision";
    EXPECT_GT(stats.frontier_hits, 0u)
        << "repeated identical chain never hit the frontier memo";
  }
}

// -- warm snapshot / restore --------------------------------------------------

// The acceptance criterion for persistent warm start: snapshot a warmed
// cache, "kill" it (build a fresh deployment of the same image), restore,
// and the first post-restore session must (a) produce the byte-identical
// digest and (b) reach at least 80% of the steady-state hit rate.
TEST(MemoWarmRestart, SnapshotRestoreKeepsDigestsAndHitRate) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto warm_deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      dense);

  const VerificationResult plain =
      run_verify(warm_deployment, options.watermark_bytes, clean.chal,
                 clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;

  // Warm up, then measure the steady-state hit deltas of one session.
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  const verify::MemoStats before = warm_deployment->memo().stats();
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  const verify::MemoStats after = warm_deployment->memo().stats();
  const u64 steady_hits = (after.hits - before.hits) +
                          (after.frontier_hits - before.frontier_hits);
  ASSERT_GT(steady_hits, 0u) << "steady state never hits: test is vacuous";

  const std::vector<u8> blob = warm_deployment->memo().serialize_warm();
  ASSERT_FALSE(blob.empty());

  // "Restart": a brand-new deployment of the same image, restored from the
  // snapshot, must serve the first session nearly as well as steady state.
  const auto restored = Deployment::rap(prepared.rap.program,
                                        prepared.rap.manifest,
                                        prepared.built.entry, dense);
  ASSERT_TRUE(restored->memo().restore_warm(blob));
  const VerificationResult first =
      run_verify(restored, options.watermark_bytes, clean.chal, clean.reports,
                 true);
  EXPECT_EQ(digest_hex(first), digest_hex(plain)) << "post-restore digest";
  const verify::MemoStats fresh = restored->memo().stats();
  const u64 restored_hits = fresh.hits + fresh.frontier_hits;
  EXPECT_GE(static_cast<double>(restored_hits),
            0.8 * static_cast<double>(steady_hits))
      << "warm-restored start fell below 80% of the steady-state hit rate ("
      << restored_hits << " vs " << steady_hits << ")";
}

// A corrupt or truncated MEM1 blob must be refused atomically: the cache
// stays cold (never half-loaded) and verification stays byte-correct.
TEST(MemoWarmRestart, CorruptSnapshotDegradesToColdNeverWrongVerdict) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto source = Deployment::rap(prepared.rap.program,
                                      prepared.rap.manifest,
                                      prepared.built.entry, dense);
  const VerificationResult plain = run_verify(
      source, options.watermark_bytes, clean.chal, clean.reports, false);
  run_verify(source, options.watermark_bytes, clean.chal, clean.reports, true);
  const std::vector<u8> good = source->memo().serialize_warm();
  ASSERT_GT(good.size(), 16u);

  const auto expect_cold_refusal = [&](std::vector<u8> bad,
                                       const std::string& label) {
    const auto victim = Deployment::rap(prepared.rap.program,
                                        prepared.rap.manifest,
                                        prepared.built.entry, dense);
    EXPECT_FALSE(victim->memo().restore_warm(bad)) << label;
    EXPECT_EQ(victim->memo().stats().entries, 0u) << label << ": half-loaded";
    EXPECT_EQ(victim->memo().stats().frontier_entries, 0u)
        << label << ": half-loaded frontier";
    const VerificationResult result = run_verify(
        victim, options.watermark_bytes, clean.chal, clean.reports, true);
    EXPECT_EQ(digest_hex(result), digest_hex(plain)) << label;
  };

  std::vector<u8> flipped = good;
  flipped[good.size() / 2] ^= 0x40;
  expect_cold_refusal(std::move(flipped), "bit flip mid-blob");
  expect_cold_refusal({good.begin(), good.end() - 5}, "truncated");
  expect_cold_refusal({good.begin(), good.begin() + 3}, "shorter than magic");
  std::vector<u8> wrong_magic = good;
  wrong_magic[0] = 'X';
  expect_cold_refusal(std::move(wrong_magic), "wrong magic");

  // The intact blob still restores after all the refusals.
  const auto victim = Deployment::rap(prepared.rap.program,
                                      prepared.rap.manifest,
                                      prepared.built.entry, dense);
  EXPECT_TRUE(victim->memo().restore_warm(good));
  EXPECT_GT(victim->memo().stats().entries, 0u);
}

// SST1 with a warm section: session state and cache warmth round-trip
// together; a legacy (memo-less) blob still loads; a corrupt warm section
// degrades to cold without failing the session restore.
TEST(MemoWarmRestart, SessionStoreCarriesWarmSection) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2});
  cache.insert(42, make_segment(0x100));
  verify::FrontierEntry entry = make_frontier(0x300, 5);
  entry.has_decision = true;
  cache.frontier_insert(entry);

  verify::SessionStore store;
  cfa::Challenge chal{};
  chal[0] = 0xaa;
  store.issue(3, chal);
  const std::vector<u8> blob = store.serialize(&cache);

  verify::SessionStore recovered;
  MemoCache recovered_cache({.shards = 2});
  ASSERT_TRUE(recovered.deserialize(blob, &recovered_cache));
  EXPECT_EQ(recovered.state(3, chal),
            verify::SessionStore::ChallengeState::Outstanding);
  EXPECT_EQ(recovered_cache.stats().entries, 1u);
  EXPECT_EQ(recovered_cache.stats().frontier_entries, 1u);

  // Legacy blob (no warm section) into a memo-aware restore: cold cache.
  verify::SessionStore legacy;
  MemoCache cold_cache;
  ASSERT_TRUE(legacy.deserialize(store.serialize(), &cold_cache));
  EXPECT_EQ(cold_cache.stats().entries, 0u);

  // Corrupt warm section: session state restores, cache stays cold.
  std::vector<u8> corrupt = blob;
  corrupt.back() ^= 0x01;  // inside the MEM1 section (its crc trailer)
  verify::SessionStore damaged;
  MemoCache damaged_cache({.shards = 2});
  ASSERT_TRUE(damaged.deserialize(corrupt, &damaged_cache));
  EXPECT_EQ(damaged.state(3, chal),
            verify::SessionStore::ChallengeState::Outstanding);
  EXPECT_EQ(damaged_cache.stats().entries, 0u);
}

}  // namespace
}  // namespace raptrack
