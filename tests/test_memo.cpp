// Differential suite for the verified sub-path memo cache (verify/memo.*).
//
// The contract under test: memoization may change wall-clock time and the
// memo_hits/memo_misses telemetry, and NOTHING else. Every test here pins a
// memoized verification against an unmemoized one (set_memo(false)) via
// verification_digest() — a canonical SHA-256 over verdict, flags, detail,
// gaps, notes, events, findings, counters and decoded evidence — so any
// divergence, however subtle, is a byte-level failure:
//   * ~200 fuzzed transport-fault plans across two apps (the fault-campaign
//     injector set), cold and warm;
//   * every registry app, cold cache then warm cache (warm must actually
//     hit);
//   * eviction under a tiny byte budget (pressure must not corrupt results);
//   * concurrent farm workers warming one shared cache (run under the
//     `concurrency` label; the tsan preset builds this with TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "apps/runner.hpp"
#include "common/crc32.hpp"
#include "common/hex.hpp"
#include "fault/campaign.hpp"
#include "gen_corpus.hpp"
#include "obs/metrics.hpp"
#include "verify/farm.hpp"
#include "verify/memo.hpp"
#include "verify/verifier.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;
using fault::AttestedRun;
using fault::FaultPlan;
using fault::InjectorKind;
using verify::Deployment;
using verify::MemoCache;
using verify::MemoOptions;
using verify::MemoSegment;
using verify::VerificationResult;
using verify::verification_digest;

std::string digest_hex(const VerificationResult& result) {
  return hex_digest(verification_digest(result));
}

// Verify `chain` against `deployment` with the memo cache on or off. A
// fresh Verifier (fresh session store) per call; the memo cache itself
// lives on the shared Deployment, so warmth carries across calls.
// `frontier` toggles the second (RAP-ambiguity decision) cache tier on top.
VerificationResult run_verify(std::shared_ptr<const Deployment> deployment,
                              u32 watermark, const cfa::Challenge& chal,
                              const std::vector<cfa::SignedReport>& chain,
                              bool memo, bool frontier = true) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect(std::move(deployment));
  verifier.set_expected_watermark(watermark);
  verifier.set_memo(memo);
  verifier.set_frontier(frontier);
  verifier.adopt_challenge(chal);
  return verifier.verify(chal, chain);
}

// -- MemoCache unit behavior --------------------------------------------------

MemoCache::Handle make_segment(Address entry_pc, u64 padding = 0) {
  auto seg = std::make_shared<MemoSegment>();
  seg->entry_pc = entry_pc;
  seg->exit_pc = entry_pc + 4;
  seg->steps = 1;
  seg->packets.resize(padding);  // inflate bytes() for budget tests
  return seg;
}

verify::FrontierEntry make_frontier(Address pc, u64 fingerprint) {
  verify::FrontierEntry entry;
  entry.pc = pc;
  entry.policy_hash = 0x1234;
  entry.stack_hash = 0x5678;
  entry.evidence_fp = fingerprint;
  entry.packet_rem = 10;
  return entry;
}

TEST(MemoCacheUnit, InsertLookupRefreshAndClear) {
  MemoCache cache({.shards = 4, .slots_per_shard = 64});
  MemoCache::Handle out[MemoCache::kLookupWidth];
  EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);

  cache.insert(42, make_segment(0x100));
  if constexpr (verify::kMemoEnabled) {
    ASSERT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 1u);
    EXPECT_EQ(out[0]->entry_pc, 0x100u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Same key, same entry guards: refreshes in place, no duplicate.
    cache.insert(42, make_segment(0x100));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    cache.note_hit();
    cache.note_miss();
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_GT(cache.stats().bytes, 0u);

    cache.clear();
    EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
  } else {
    EXPECT_EQ(cache.lookup(42, out, MemoCache::kLookupWidth), 0u);
  }
}

TEST(MemoCacheUnit, ForceDisableDropsTraffic) {
  MemoCache cache;
  MemoCache::Handle out[MemoCache::kLookupWidth];
  MemoCache::force_disable(true);
  cache.insert(7, make_segment(0x200));
  EXPECT_EQ(cache.lookup(7, out, MemoCache::kLookupWidth), 0u);
  MemoCache::force_disable(false);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MemoCacheUnit, ByteBudgetEnforcedByEviction) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const MemoOptions options{
      .shards = 1, .slots_per_shard = 256, .budget_bytes = 16 * 1024};
  MemoCache cache(options);
  // Distinct keys, each segment ~1.5 KiB: far past the budget in total.
  for (u64 key = 0; key < 64; ++key) {
    cache.insert(key * 0x10001, make_segment(0x100 + 4 * key, /*padding=*/128));
    EXPECT_LE(cache.stats().bytes, options.budget_bytes)
        << "budget exceeded after insert " << key;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 64u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 64u);
  // An entry bigger than one shard's whole budget is refused outright.
  cache.insert(999, make_segment(0x900, /*padding=*/4096));
  EXPECT_GT(cache.stats().rejects, 0u);
}

// The budget must hold at every instant, not just between calls: the
// `verify.memo.bytes_hwm` gauge records the maximum resident footprint any
// insert ever observed, across BOTH tiers, so an accounting bug that
// transiently overshoots (the pre-fix frontier sweep could) is caught even
// after eviction pulls the steady state back under.
TEST(MemoCacheUnit, ByteHighWaterMarkStaysUnderBudgetAcrossTiers) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  // The hwm gauge is global and monotonic; zero it so this test measures
  // only its own cache.
  obs::registry().reset();
  const MemoOptions options{.shards = 1,
                            .slots_per_shard = 64,
                            .frontier_slots_per_shard = 256,
                            .budget_bytes = 8 * 1024};
  // The charge model must cover the real slot footprint — an undercount
  // here is exactly the bug that let the frontier tier outgrow its budget.
  static_assert(MemoCache::kFrontierEntryBytes >= sizeof(verify::FrontierEntry));
  MemoCache cache(options);
  for (u64 i = 0; i < 64; ++i) {
    cache.insert(i * 0x2001, make_segment(0x100 + 4 * i, /*padding=*/64));
    verify::FrontierEntry entry = make_frontier(0x100 + 4 * i, i);
    entry.failed_mask = 1;
    cache.frontier_insert(entry);
    EXPECT_LE(cache.stats().bytes, options.budget_bytes)
        << "budget exceeded after mixed insert " << i;
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u) << "mixed pressure never evicted";
  EXPECT_GT(stats.frontier_inserts, 0u);
  const obs::Snapshot snap = obs::registry().scrape();
  EXPECT_GT(snap.value("verify.memo.bytes_hwm"), 0u);
  EXPECT_LE(snap.value("verify.memo.bytes_hwm"), options.budget_bytes)
      << "some insert transiently overshot the byte budget";
}

// -- frontier tier unit behavior ----------------------------------------------

TEST(MemoFrontierUnit, InsertLookupAndKnowledgeMerge) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2, .frontier_slots_per_shard = 64});
  verify::FrontierEntry known;
  EXPECT_FALSE(cache.frontier_lookup(make_frontier(0x100, 1), &known));

  // A promoted failure and a resolved decision for the same frontier state
  // merge into one entry carrying both kinds of knowledge.
  verify::FrontierEntry failure = make_frontier(0x100, 1);
  failure.failed_mask = 1;  // decision `false` known futile
  cache.frontier_insert(failure);
  verify::FrontierEntry decision = make_frontier(0x100, 1);
  decision.has_decision = true;
  decision.decision = true;
  decision.steps_to_complete = 77;
  cache.frontier_insert(decision);

  ASSERT_TRUE(cache.frontier_lookup(make_frontier(0x100, 1), &known));
  EXPECT_EQ(known.failed_mask, 1u);
  EXPECT_TRUE(known.has_decision);
  EXPECT_TRUE(known.decision);
  EXPECT_EQ(known.steps_to_complete, 77u);
  EXPECT_EQ(cache.stats().frontier_entries, 1u);

  // A different evidence fingerprint is a different frontier state: the
  // guards must miss even though the pc collides.
  EXPECT_FALSE(cache.frontier_lookup(make_frontier(0x100, 2), &known));
  EXPECT_GT(cache.stats().frontier_misses, 0u);
}

TEST(MemoFrontierUnit, FrontierEntriesChargeTheByteBudget) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  // Budget sized for a handful of frontier entries (kFrontierEntryBytes —
  // the full slot footprint — charged each): inserting far more must evict
  // instead of growing without bound (satellite: promoted failure knowledge
  // rides the same budget).
  const MemoOptions options{
      .shards = 1, .frontier_slots_per_shard = 256, .budget_bytes = 2048};
  MemoCache cache(options);
  for (u64 i = 0; i < 64; ++i) {
    verify::FrontierEntry entry = make_frontier(0x100 + 4 * i, i);
    entry.failed_mask = 1;
    cache.frontier_insert(entry);
    EXPECT_LE(cache.stats().bytes, options.budget_bytes)
        << "budget exceeded after frontier insert " << i;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.frontier_inserts, 64u);
  EXPECT_LT(stats.frontier_entries, 64u)
      << "tiny budget never evicted a frontier entry";
}

TEST(MemoPrefetch, NoteSessionThenPrefetchWarmsTaggedEntries) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2});
  cache.insert(42, make_segment(0x100));
  verify::FrontierEntry entry = make_frontier(0x200, 9);
  entry.has_decision = true;
  cache.frontier_insert(entry);

  const u64 seg_keys[] = {42};
  const u64 frontier_keys[] = {entry.key_hash()};
  cache.note_session(7, seg_keys, frontier_keys);
  EXPECT_EQ(cache.prefetch(7), 2u) << "both tagged entries should re-touch";
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
  EXPECT_EQ(cache.stats().prefetch_warmed, 2u);
  // Unknown device: nothing tagged, nothing warmed, no hit counted.
  EXPECT_EQ(cache.prefetch(99), 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
}

// -- fuzzed-chain differential (the ~200-plan fault campaign) -----------------

struct Case {
  size_t app = 0;
  cfa::Challenge chal{};
  std::vector<cfa::SignedReport> chain;
  std::string label;
};

struct Corpus {
  std::vector<std::shared_ptr<const Deployment>> deployments;
  u32 watermark = 0;
  std::vector<Case> cases;
};

// Same corpus shape as the farm differential: per app, the clean chain plus
// every transport injector at several seeds.
const Corpus& corpus() {
  static const Corpus corpus = [] {
    Corpus out;
    const fault::CampaignOptions options;
    out.watermark = options.watermark_bytes;
    constexpr u64 kSeedsPerKind = 8;
    for (const char* name : {"gps", "temperature"}) {
      const PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
      const AttestedRun clean = fault::attest_once(prepared, options);
      EXPECT_TRUE(clean.functional_ok) << name;
      const size_t app = out.deployments.size();
      out.deployments.push_back(Deployment::rap(
          prepared.rap.program, prepared.rap.manifest, prepared.built.entry));
      out.cases.push_back(
          {app, clean.chal, clean.reports, std::string(name) + "/clean"});
      for (const InjectorKind kind : fault::transport_injectors()) {
        for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
          FaultPlan plan(seed);
          plan.add(kind);
          std::vector<cfa::SignedReport> chain = clean.reports;
          if (kind == InjectorKind::WireBitFlip) {
            auto survived = fault::apply_wire_fault(plan, chain);
            if (!survived.has_value()) continue;
            chain = std::move(*survived);
          } else {
            fault::apply_transport_faults(plan, chain);
          }
          out.cases.push_back({app, clean.chal, std::move(chain),
                               std::string(name) + "/" +
                                   fault::injector_name(kind) + "/" +
                                   std::to_string(seed)});
        }
      }
    }
    return out;
  }();
  return corpus;
}

TEST(MemoDifferential, FuzzedFaultPlansMatchUnmemoizedDigests) {
  const Corpus& fuzz = corpus();
  ASSERT_GE(fuzz.cases.size(), 200u)
      << "fault-plan corpus shrank below the differential coverage floor";

  // Fresh deployments for the memoized side so this test controls its own
  // cache warmth (the corpus deployments are shared with other tests).
  size_t accepts = 0;
  for (const Case& c : fuzz.cases) {
    const VerificationResult plain = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, false);
    // Twice memoized: cold-ish (whatever earlier cases warmed) and warm.
    const VerificationResult memo1 = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, true);
    const VerificationResult memo2 = run_verify(
        fuzz.deployments[c.app], fuzz.watermark, c.chal, c.chain, true);
    EXPECT_EQ(digest_hex(memo1), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(memo2), digest_hex(plain)) << c.label << " (warm)";
    if (plain.accepted()) ++accepts;
  }
  EXPECT_GT(accepts, 0u);
  if constexpr (verify::kMemoEnabled) {
    u64 hits = 0;
    for (const auto& deployment : fuzz.deployments) {
      hits += deployment->memo().stats().hits;
    }
    EXPECT_GT(hits, 0u) << "the differential never exercised the hit path";
  }
}

// -- registry-wide app differential -------------------------------------------

TEST(MemoDifferential, EveryRegistryAppWarmCacheMatchesAndHits) {
  const fault::CampaignOptions options;
  // RAP replay aborts recording at every ambiguous-branch checkpoint, and
  // the futility backoff then anchors sparsely; short windows plus backoff
  // disabled keep enough abort-free stretches recordable that the warm-hit
  // assertion stays meaningful on the RAP path (digest equality holds for
  // any window/backoff setting — only traffic volume changes).
  const MemoOptions short_window{.window_packets = 4, .anchor_backoff_cap = 0};
  for (const auto& app : apps::app_registry()) {
    const PreparedApp prepared = apps::prepare_app(app);
    const AttestedRun clean = fault::attest_once(prepared, options);
    ASSERT_TRUE(clean.functional_ok) << app.name;
    const auto deployment =
        Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                        prepared.built.entry, short_window);

    const VerificationResult plain = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, false);
    ASSERT_TRUE(plain.accepted()) << app.name << ": " << plain.detail;
    const VerificationResult cold = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, true);
    const VerificationResult warm = run_verify(
        deployment, options.watermark_bytes, clean.chal, clean.reports, true);
    EXPECT_EQ(digest_hex(cold), digest_hex(plain)) << app.name << " cold";
    EXPECT_EQ(digest_hex(warm), digest_hex(plain)) << app.name << " warm";
    if constexpr (verify::kMemoEnabled) {
      EXPECT_GT(warm.replay.memo_hits, 0u)
          << app.name << ": repeated replay never hit the cache";
    }
  }
}

// -- eviction under pressure --------------------------------------------------

TEST(MemoEviction, TinyBudgetEvictsWithoutChangingDigests) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  // A cache far too small for the run: short windows make many segments and
  // a ~2 KiB budget forces continuous eviction while verifying.
  const MemoOptions tiny{.shards = 1,
                         .slots_per_shard = 8,
                         .budget_bytes = 2048,
                         .window_packets = 4};
  const auto pressured =
      Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry, tiny);
  const auto roomy = Deployment::rap(prepared.rap.program,
                                     prepared.rap.manifest,
                                     prepared.built.entry);

  const VerificationResult plain = run_verify(
      roomy, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  for (int round = 0; round < 4; ++round) {
    const VerificationResult squeezed =
        run_verify(pressured, options.watermark_bytes, clean.chal,
                   clean.reports, true);
    EXPECT_EQ(digest_hex(squeezed), digest_hex(plain)) << "round " << round;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = pressured->memo().stats();
    EXPECT_LE(stats.bytes, tiny.budget_bytes);
    EXPECT_GT(stats.inserts, 0u);
    EXPECT_GT(stats.evictions, 0u)
        << "pressure test never actually evicted (budget too roomy?)";
  }
}

// -- concurrent farm workers sharing one cache --------------------------------

TEST(MemoConcurrency, FarmWorkersWarmOneCacheAndMatchSerial) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  // Short windows + no backoff for the same reason as the registry
  // differential above: they guarantee cache traffic on this
  // checkpoint-dense RAP chain, which is what makes the shared-cache
  // hit/insert assertions below meaningful.
  const auto deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      MemoOptions{.window_packets = 4, .anchor_backoff_cap = 0});

  const VerificationResult plain = run_verify(
      deployment, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  const std::string expected = digest_hex(plain);

  verify::VerifierFarm farm(apps::demo_key(),
                            {.workers = 4, .clamp_workers = false});
  verify::VerifyConfig config;
  config.expected_watermark = options.watermark_bytes;
  constexpr size_t kDevices = 48;
  std::vector<std::future<VerificationResult>> results;
  for (size_t device = 0; device < kDevices; ++device) {
    farm.provision(device, deployment, config);
    farm.adopt_challenge(device, clean.chal);
    results.push_back(farm.submit(device, clean.chal, clean.reports));
  }
  farm.drain();
  for (size_t device = 0; device < kDevices; ++device) {
    const VerificationResult result = results[device].get();
    EXPECT_TRUE(result.accepted()) << "device " << device;
    EXPECT_EQ(digest_hex(result), expected) << "device " << device;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = deployment->memo().stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.inserts, 0u);
  }
}

// -- frontier differential ----------------------------------------------------

// The frontier tier must be outcome-invisible exactly like the sub-path
// tier: over the whole fault-plan corpus, digests with {memo+frontier},
// {memo only} and {no memo} are byte-identical. The corpus deployments are
// fresh here so this test controls its own warmth.
TEST(MemoFrontierDifferential, FuzzedFaultPlansMatchAcrossFrontierToggle) {
  const Corpus& fuzz = corpus();
  ASSERT_GE(fuzz.cases.size(), 200u)
      << "fault-plan corpus shrank below the differential coverage floor";
  std::vector<std::shared_ptr<const Deployment>> fresh;
  for (const auto& deployment : fuzz.deployments) {
    fresh.push_back(Deployment::rap(deployment->program(),
                                    *deployment->rap_manifest(),
                                    deployment->entry()));
  }
  for (const Case& c : fuzz.cases) {
    const VerificationResult plain = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, false);
    const VerificationResult no_frontier = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, false);
    const VerificationResult frontier_cold = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, true);
    const VerificationResult frontier_warm = run_verify(
        fresh[c.app], fuzz.watermark, c.chal, c.chain, true, true);
    EXPECT_EQ(digest_hex(no_frontier), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(frontier_cold), digest_hex(plain)) << c.label;
    EXPECT_EQ(digest_hex(frontier_warm), digest_hex(plain))
        << c.label << " (warm)";
  }
}

// On a checkpoint-dense repeated RAP chain the frontier must actually fire:
// the second verification should take known-good decisions without saving
// checkpoints, and still land on the memo-off digest.
TEST(MemoFrontierDifferential, DenseRepeatedChainHitsFrontierAndMatches) {
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const auto deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      MemoOptions{.window_packets = 4, .anchor_backoff_cap = 0});

  const VerificationResult plain = run_verify(
      deployment, options.watermark_bytes, clean.chal, clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  for (int round = 0; round < 3; ++round) {
    const VerificationResult result =
        run_verify(deployment, options.watermark_bytes, clean.chal,
                   clean.reports, true, true);
    EXPECT_EQ(digest_hex(result), digest_hex(plain)) << "round " << round;
  }
  if constexpr (verify::kMemoEnabled) {
    const auto stats = deployment->memo().stats();
    EXPECT_GT(stats.frontier_inserts, 0u)
        << "dense RAP chain never journaled a frontier decision";
    EXPECT_GT(stats.frontier_hits, 0u)
        << "repeated identical chain never hit the frontier memo";
  }
}

// -- generative checkpoint-dense corpus (gen_corpus.hpp) ----------------------

// The generative grid runs the full prover pipeline with the bench's
// checkpoint-dense transport shape: a small MTB and a 128-byte watermark
// chop every run into many short reports, maximizing RAP-ambiguity density
// on the verifier side.
constexpr u32 kGenWatermark = 128;

struct GenChain {
  /// Stable-address App: PreparedApp keeps a pointer into it (run_* calls
  /// app->setup), so it must outlive every run and survive GenChain moves.
  std::shared_ptr<apps::App> app;
  PreparedApp prepared;
  cfa::Challenge chal{};
  std::vector<cfa::SignedReport> chain;
  bool ok = false;
};

GenChain attest_gen(const gen::GenParams& p) {
  GenChain out;
  out.app = std::make_shared<apps::App>(gen::corpus_app(p));
  out.prepared = apps::prepare_app(*out.app);
  out.chal = fault::campaign_challenge(p.seed * 977 + 1);
  const apps::MethodRun run = apps::run_rap(
      out.prepared, p.seed, sim::MachineConfig{.mtb_buffer_bytes = 256},
      cfa::SessionOptions{.watermark_bytes = kGenWatermark}, out.chal);
  out.chain = run.attestation.reports;
  out.ok = run.functional_ok && !out.chain.empty();
  return out;
}

std::shared_ptr<const Deployment> gen_deployment(const GenChain& c,
                                                 const MemoOptions& options) {
  return Deployment::rap(c.prepared.rap.program, c.prepared.rap.manifest,
                         c.prepared.built.entry, options);
}

// The tentpole differential: across the whole parameter grid (>= 200
// synthesized programs), verification_digest() is byte-identical with
// {memo off}, {memo on, frontier off}, {memo + frontier, three warming
// rounds} and {warm restart: snapshot -> fresh deployment -> restore}.
// Guarded segment recording is on throughout — any unsound splice, stale
// guard, or snapshot corruption shows up as a digest divergence on some
// grid point. Programs are independent (each owns its deployments), so the
// grid fans out across threads; under the `concurrency` label the tsan
// preset drives this as a multi-threaded differential.
TEST(MemoGenCorpus, GridDigestsInvariantAcrossMemoModes) {
  const std::vector<gen::GenParams> grid = gen::corpus_grid();
  ASSERT_GE(grid.size(), 200u)
      << "generative grid shrank below the acceptance floor";

  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  std::atomic<u64> segment_hits{0};
  std::atomic<u64> frontier_hits{0};
  const auto run_one = [&](const gen::GenParams& p) -> std::string {
    const std::string name = gen::corpus_name(p);
    const GenChain c = attest_gen(p);
    if (!c.ok) return name + ": prover run failed";
    const auto d = gen_deployment(c, dense);
    const VerificationResult plain =
        run_verify(d, kGenWatermark, c.chal, c.chain, false);
    if (!plain.accepted()) {
      return name + ": plain verify rejected: " + plain.detail;
    }
    const std::string want = digest_hex(plain);
    const auto check = [&](const VerificationResult& r,
                           const char* mode) -> std::string {
      if (digest_hex(r) != want) {
        return name + ": digest diverged under " + mode;
      }
      return {};
    };
    std::string err = check(
        run_verify(d, kGenWatermark, c.chal, c.chain, true, false),
        "memo on / frontier off");
    for (int round = 0; round < 3 && err.empty(); ++round) {
      err = check(run_verify(d, kGenWatermark, c.chal, c.chain, true, true),
                  "memo + frontier");
    }
    if (!err.empty()) return err;
    const auto fresh = gen_deployment(c, dense);
    if constexpr (verify::kMemoEnabled) {
      const std::vector<u8> blob = d->memo().serialize_warm();
      if (blob.empty() || !fresh->memo().restore_warm(blob)) {
        return name + ": warm snapshot did not restore";
      }
    }
    err = check(run_verify(fresh, kGenWatermark, c.chal, c.chain, true, true),
                "warm restart");
    if (!err.empty()) return err;
    segment_hits += d->memo().stats().hits + fresh->memo().stats().hits;
    frontier_hits +=
        d->memo().stats().frontier_hits + fresh->memo().stats().frontier_hits;
    return {};
  };

  const size_t workers = std::min<size_t>(
      std::max(std::thread::hardware_concurrency(), 2u), 8);
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::vector<std::future<std::vector<std::string>>> slices;
  for (size_t w = 0; w < workers; ++w) {
    slices.push_back(std::async(std::launch::async, [&] {
      std::vector<std::string> errors;
      for (size_t i = next.fetch_add(1); i < grid.size();
           i = next.fetch_add(1)) {
        std::string err = run_one(grid[i]);
        if (err.empty()) {
          ++completed;
        } else {
          errors.push_back(std::move(err));
        }
      }
      return errors;
    }));
  }
  std::vector<std::string> errors;
  for (auto& slice : slices) {
    for (std::string& err : slice.get()) errors.push_back(std::move(err));
  }
  for (const std::string& err : errors) ADD_FAILURE() << err;
  EXPECT_EQ(completed.load(), grid.size());
  if constexpr (verify::kMemoEnabled) {
    // The corpus regime the bench floor encodes: guarded recording keeps
    // the §14 segment tier alive on checkpoint-dense chains (it was ~0
    // before), and the frontier tier fires throughout.
    EXPECT_GT(segment_hits.load(), 0u)
        << "guarded segments never spliced anywhere in the grid";
    EXPECT_GT(frontier_hits.load(), 0u);
  }
}

// Ablation for the tentpole switch: on a checkpoint-dense repeated chain,
// a guarded-segments deployment must out-hit an identically-configured
// deployment with the PR-7 abort-on-ambiguity rule, while both stay on the
// memo-off digest.
TEST(MemoGenCorpus, GuardedSegmentsLiftHitsOnCheckpointDenseChains) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const gen::GenParams p{
      .depth = 2, .alarm_every = 4, .loop_shape = 0, .seed = 1};
  const GenChain c = attest_gen(p);
  ASSERT_TRUE(c.ok);
  const MemoOptions guarded{.window_packets = 4, .anchor_backoff_cap = 0};
  const MemoOptions unguarded{.window_packets = 4,
                              .anchor_backoff_cap = 0,
                              .guarded_segments = false};
  const auto d_on = gen_deployment(c, guarded);
  const auto d_off = gen_deployment(c, unguarded);
  const VerificationResult plain =
      run_verify(d_on, kGenWatermark, c.chal, c.chain, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  const std::string want = digest_hex(plain);
  for (int round = 0; round < 4; ++round) {
    const VerificationResult on =
        run_verify(d_on, kGenWatermark, c.chal, c.chain, true, true);
    const VerificationResult off =
        run_verify(d_off, kGenWatermark, c.chal, c.chain, true, true);
    EXPECT_EQ(digest_hex(on), want) << "guarded round " << round;
    EXPECT_EQ(digest_hex(off), want) << "unguarded round " << round;
  }
  EXPECT_GT(d_on->memo().stats().hits, d_off->memo().stats().hits)
      << "guarded recording did not lift segment hits over the abort rule";
}

// -- whole-chain fingerprint amortization -------------------------------------

// One verification hashes the four evidence streams at most once (the first
// engine that consults the frontier computes; strict/lenient/detached
// retries reuse), and a repeat of the identical chain is seeded from the
// cache's fingerprint table and computes zero times.
TEST(MemoFingerprint, ChainFingerprintComputedOnceThenReusedAcrossSessions) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  const gen::GenParams p{
      .depth = 2, .alarm_every = 4, .loop_shape = 0, .seed = 3};
  const GenChain c = attest_gen(p);
  ASSERT_TRUE(c.ok);
  const auto d = gen_deployment(
      c, MemoOptions{.window_packets = 4, .anchor_backoff_cap = 0});
  const VerificationResult plain =
      run_verify(d, kGenWatermark, c.chal, c.chain, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;

  const obs::Snapshot s0 = obs::registry().scrape();
  const VerificationResult first =
      run_verify(d, kGenWatermark, c.chal, c.chain, true, true);
  const obs::Snapshot s1 = obs::registry().scrape();
  const VerificationResult second =
      run_verify(d, kGenWatermark, c.chal, c.chain, true, true);
  const obs::Snapshot s2 = obs::registry().scrape();
  EXPECT_EQ(digest_hex(first), digest_hex(plain));
  EXPECT_EQ(digest_hex(second), digest_hex(plain));

  const auto delta = [](const obs::Snapshot& after, const obs::Snapshot& before,
                        const char* name) {
    return after.value(name) - before.value(name);
  };
  // First session: the streams are hashed exactly once, shared across every
  // engine of that replay.
  EXPECT_EQ(delta(s1, s0, "verify.memo.fingerprint.computed"), 1u);
  // Second session of the identical chain: seeded from the fingerprint
  // table, so nothing recomputes and at least one engine reuses.
  EXPECT_EQ(delta(s2, s1, "verify.memo.fingerprint.computed"), 0u);
  EXPECT_GE(delta(s2, s1, "verify.memo.fingerprint.reused"), 1u);
}

// -- warm snapshot / restore --------------------------------------------------

// The acceptance criterion for persistent warm start: snapshot a warmed
// cache, "kill" it (build a fresh deployment of the same image), restore,
// and the first post-restore session must (a) produce the byte-identical
// digest and (b) reach at least 80% of the steady-state hit rate.
TEST(MemoWarmRestart, SnapshotRestoreKeepsDigestsAndHitRate) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto warm_deployment = Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      dense);

  const VerificationResult plain =
      run_verify(warm_deployment, options.watermark_bytes, clean.chal,
                 clean.reports, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;

  // Warm up, then measure the steady-state hit deltas of one session.
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  const verify::MemoStats before = warm_deployment->memo().stats();
  run_verify(warm_deployment, options.watermark_bytes, clean.chal,
             clean.reports, true);
  const verify::MemoStats after = warm_deployment->memo().stats();
  const u64 steady_hits = (after.hits - before.hits) +
                          (after.frontier_hits - before.frontier_hits);
  ASSERT_GT(steady_hits, 0u) << "steady state never hits: test is vacuous";

  const std::vector<u8> blob = warm_deployment->memo().serialize_warm();
  ASSERT_FALSE(blob.empty());

  // "Restart": a brand-new deployment of the same image, restored from the
  // snapshot, must serve the first session nearly as well as steady state.
  const auto restored = Deployment::rap(prepared.rap.program,
                                        prepared.rap.manifest,
                                        prepared.built.entry, dense);
  ASSERT_TRUE(restored->memo().restore_warm(blob));
  const VerificationResult first =
      run_verify(restored, options.watermark_bytes, clean.chal, clean.reports,
                 true);
  EXPECT_EQ(digest_hex(first), digest_hex(plain)) << "post-restore digest";
  const verify::MemoStats fresh = restored->memo().stats();
  const u64 restored_hits = fresh.hits + fresh.frontier_hits;
  EXPECT_GE(static_cast<double>(restored_hits),
            0.8 * static_cast<double>(steady_hits))
      << "warm-restored start fell below 80% of the steady-state hit rate ("
      << restored_hits << " vs " << steady_hits << ")";
}

// A corrupt or truncated MEM1 blob must be refused atomically: the cache
// stays cold (never half-loaded) and verification stays byte-correct.
TEST(MemoWarmRestart, CorruptSnapshotDegradesToColdNeverWrongVerdict) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const fault::CampaignOptions options;
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto source = Deployment::rap(prepared.rap.program,
                                      prepared.rap.manifest,
                                      prepared.built.entry, dense);
  const VerificationResult plain = run_verify(
      source, options.watermark_bytes, clean.chal, clean.reports, false);
  run_verify(source, options.watermark_bytes, clean.chal, clean.reports, true);
  const std::vector<u8> good = source->memo().serialize_warm();
  ASSERT_GT(good.size(), 16u);

  const auto expect_cold_refusal = [&](std::vector<u8> bad,
                                       const std::string& label) {
    const auto victim = Deployment::rap(prepared.rap.program,
                                        prepared.rap.manifest,
                                        prepared.built.entry, dense);
    EXPECT_FALSE(victim->memo().restore_warm(bad)) << label;
    EXPECT_EQ(victim->memo().stats().entries, 0u) << label << ": half-loaded";
    EXPECT_EQ(victim->memo().stats().frontier_entries, 0u)
        << label << ": half-loaded frontier";
    const VerificationResult result = run_verify(
        victim, options.watermark_bytes, clean.chal, clean.reports, true);
    EXPECT_EQ(digest_hex(result), digest_hex(plain)) << label;
  };

  std::vector<u8> flipped = good;
  flipped[good.size() / 2] ^= 0x40;
  expect_cold_refusal(std::move(flipped), "bit flip mid-blob");
  expect_cold_refusal({good.begin(), good.end() - 5}, "truncated");
  expect_cold_refusal({good.begin(), good.begin() + 3}, "shorter than magic");
  std::vector<u8> wrong_magic = good;
  wrong_magic[0] = 'X';
  expect_cold_refusal(std::move(wrong_magic), "wrong magic");

  // The intact blob still restores after all the refusals.
  const auto victim = Deployment::rap(prepared.rap.program,
                                      prepared.rap.manifest,
                                      prepared.built.entry, dense);
  EXPECT_TRUE(victim->memo().restore_warm(good));
  EXPECT_GT(victim->memo().stats().entries, 0u);
}

// SST1 with a warm section: session state and cache warmth round-trip
// together; a legacy (memo-less) blob still loads; a corrupt warm section
// degrades to cold without failing the session restore.
TEST(MemoWarmRestart, SessionStoreCarriesWarmSection) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 2});
  cache.insert(42, make_segment(0x100));
  verify::FrontierEntry entry = make_frontier(0x300, 5);
  entry.has_decision = true;
  cache.frontier_insert(entry);

  verify::SessionStore store;
  cfa::Challenge chal{};
  chal[0] = 0xaa;
  store.issue(3, chal);
  const std::vector<u8> blob = store.serialize(&cache);

  verify::SessionStore recovered;
  MemoCache recovered_cache({.shards = 2});
  ASSERT_TRUE(recovered.deserialize(blob, &recovered_cache));
  EXPECT_EQ(recovered.state(3, chal),
            verify::SessionStore::ChallengeState::Outstanding);
  EXPECT_EQ(recovered_cache.stats().entries, 1u);
  EXPECT_EQ(recovered_cache.stats().frontier_entries, 1u);

  // Legacy blob (no warm section) into a memo-aware restore: cold cache.
  verify::SessionStore legacy;
  MemoCache cold_cache;
  ASSERT_TRUE(legacy.deserialize(store.serialize(), &cold_cache));
  EXPECT_EQ(cold_cache.stats().entries, 0u);

  // Corrupt warm section: session state restores, cache stays cold.
  std::vector<u8> corrupt = blob;
  corrupt.back() ^= 0x01;  // inside the MEM1 section (its crc trailer)
  verify::SessionStore damaged;
  MemoCache damaged_cache({.shards = 2});
  ASSERT_TRUE(damaged.deserialize(corrupt, &damaged_cache));
  EXPECT_EQ(damaged.state(3, chal),
            verify::SessionStore::ChallengeState::Outstanding);
  EXPECT_EQ(damaged_cache.stats().entries, 0u);
}

// -- MEM1 v2: guarded segments across snapshot/restore ------------------------

// Guarded segments survive the MEM1 round-trip intact: a restored verifier
// serves the same checkpoint-dense chain from spliced segments (not just
// frontier decisions) and lands on the byte-identical digest.
TEST(MemoWarmRestart, GuardedSegmentsRoundTripThroughSnapshot) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const gen::GenParams p{
      .depth = 2, .alarm_every = 4, .loop_shape = 0, .seed = 5};
  const GenChain c = attest_gen(p);
  ASSERT_TRUE(c.ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto warm = gen_deployment(c, dense);
  const VerificationResult plain =
      run_verify(warm, kGenWatermark, c.chal, c.chain, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;
  for (int round = 0; round < 3; ++round) {
    run_verify(warm, kGenWatermark, c.chal, c.chain, true, true);
  }
  ASSERT_GT(warm->memo().stats().hits, 0u)
      << "warm-up never spliced a (guarded) segment: test is vacuous";

  const std::vector<u8> blob = warm->memo().serialize_warm();
  ASSERT_FALSE(blob.empty());
  const auto restored = gen_deployment(c, dense);
  ASSERT_TRUE(restored->memo().restore_warm(blob));
  const VerificationResult first =
      run_verify(restored, kGenWatermark, c.chal, c.chain, true, true);
  EXPECT_EQ(digest_hex(first), digest_hex(plain)) << "post-restore digest";
  // The segment tier specifically must fire: restored guards re-validated
  // against the restored frontier entries and spliced.
  EXPECT_GT(restored->memo().stats().hits, 0u)
      << "restored guarded segments never spliced";
}

// Restored guards must never splice against evidence they were not recorded
// for: warm the cache on the clean chain, restore it, then verify a faulted
// variant of the same app. The guards' frontier states miss, replay falls
// back to the normal search, and the digest equals the faulted chain's own
// memo-off digest.
TEST(MemoWarmRestart, RestoredGuardsNeverSpliceAgainstForeignEvidence) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const Corpus& fuzz = corpus();
  const Case* faulted = nullptr;
  for (const Case& c : fuzz.cases) {
    if (c.app == 0 && c.label.find("clean") == std::string::npos) {
      faulted = &c;
      break;
    }
  }
  ASSERT_NE(faulted, nullptr);
  const Case& clean = fuzz.cases[0];
  ASSERT_EQ(clean.app, 0u);

  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto warm =
      Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry, dense);
  for (int round = 0; round < 3; ++round) {
    run_verify(warm, fuzz.watermark, clean.chal, clean.chain, true, true);
  }
  const std::vector<u8> blob = warm->memo().serialize_warm();
  ASSERT_FALSE(blob.empty());

  const auto cold =
      Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry, dense);
  const VerificationResult want = run_verify(
      cold, fuzz.watermark, faulted->chal, faulted->chain, false);
  const auto restored =
      Deployment::rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry, dense);
  ASSERT_TRUE(restored->memo().restore_warm(blob));
  const VerificationResult got = run_verify(
      restored, fuzz.watermark, faulted->chal, faulted->chain, true, true);
  EXPECT_EQ(digest_hex(got), digest_hex(want)) << faulted->label;
}

// Surgical MEM1 corruption inside the (CRC-resealed) guard section: a
// forged guard count and a version-1 downgrade must both be refused
// atomically. This drives the staged parser's bounds checks directly —
// the whole-blob CRC is valid, so only the structural checks can save us.
TEST(MemoWarmRestart, ForgedGuardSectionRefusedEvenWithValidCrc) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  MemoCache cache({.shards = 1});
  auto seg = std::make_shared<MemoSegment>();
  seg->entry_pc = 0x100;
  seg->exit_pc = 0x104;
  seg->steps = 1;
  verify::SegmentGuard guard;
  guard.pc = 0x102;
  guard.decision = true;
  guard.failed_mask = 2;
  guard.steps_delta = 3;
  seg->guards.push_back(guard);  // empty suffix: minimum wire footprint
  cache.insert(7, seg);
  const std::vector<u8> blob = cache.serialize_warm();
  ASSERT_FALSE(blob.empty());

  const auto reseal = [](std::vector<u8>& b) {
    const u32 crc =
        crc32(std::span<const u8>(b.data(), b.size() - 4));
    for (int i = 0; i < 4; ++i) {
      b[b.size() - 4 + i] = static_cast<u8>(crc >> (8 * i));
    }
  };
  {
    // Control: resealing the untouched blob reproduces it byte-for-byte,
    // so the refusals below are structural, not CRC artifacts.
    std::vector<u8> same = blob;
    reseal(same);
    ASSERT_EQ(same, blob);
    MemoCache ok({.shards = 1});
    ASSERT_TRUE(ok.restore_warm(same));
    EXPECT_EQ(ok.stats().entries, 1u);
  }
  {
    // One segment, one empty-suffix guard, no frontier/device sections:
    // walking back from the end, crc(4) + devices(4) + frontier(4) +
    // guard wire bytes + the guard count itself locates the count field.
    const size_t at = blob.size() - (4 + 4 + 4 + 110 + 4);
    std::vector<u8> forged = blob;
    ASSERT_EQ(forged[at], 1u) << "guard-count offset math is stale";
    ASSERT_EQ(forged[at + 1], 0u);
    forged[at] = forged[at + 1] = forged[at + 2] = forged[at + 3] = 0xff;
    reseal(forged);
    MemoCache victim({.shards = 1});
    EXPECT_FALSE(victim.restore_warm(forged)) << "forged guard count";
    EXPECT_EQ(victim.stats().entries, 0u) << "half-applied restore";
  }
  {
    // MEM1 v1 predates guards; a downgraded header is refused wholesale
    // rather than misparsed (guards would read as the frontier section).
    std::vector<u8> v1 = blob;
    v1[4] = 1;
    v1[5] = v1[6] = v1[7] = 0;
    reseal(v1);
    MemoCache victim({.shards = 1});
    EXPECT_FALSE(victim.restore_warm(v1)) << "version downgrade";
    EXPECT_EQ(victim.stats().entries, 0u);
  }
}

// The >=80% steady-state warm-hit criterion, on the checkpoint-dense
// generative shape (the regime guarded segments exist for) rather than the
// registry app the original test uses.
TEST(MemoWarmRestart, CheckpointDenseSnapshotKeepsHitRate) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  const gen::GenParams p{
      .depth = 2, .alarm_every = 4, .loop_shape = 1, .seed = 2};
  const GenChain c = attest_gen(p);
  ASSERT_TRUE(c.ok);
  const MemoOptions dense{.window_packets = 4, .anchor_backoff_cap = 0};
  const auto warm = gen_deployment(c, dense);
  const VerificationResult plain =
      run_verify(warm, kGenWatermark, c.chal, c.chain, false);
  ASSERT_TRUE(plain.accepted()) << plain.detail;

  run_verify(warm, kGenWatermark, c.chal, c.chain, true, true);
  run_verify(warm, kGenWatermark, c.chal, c.chain, true, true);
  const verify::MemoStats before = warm->memo().stats();
  run_verify(warm, kGenWatermark, c.chal, c.chain, true, true);
  const verify::MemoStats after = warm->memo().stats();
  const u64 steady_hits = (after.hits - before.hits) +
                          (after.frontier_hits - before.frontier_hits);
  ASSERT_GT(steady_hits, 0u) << "steady state never hits: test is vacuous";

  const std::vector<u8> blob = warm->memo().serialize_warm();
  ASSERT_FALSE(blob.empty());
  const auto restored = gen_deployment(c, dense);
  ASSERT_TRUE(restored->memo().restore_warm(blob));
  const VerificationResult first =
      run_verify(restored, kGenWatermark, c.chal, c.chain, true, true);
  EXPECT_EQ(digest_hex(first), digest_hex(plain)) << "post-restore digest";
  const verify::MemoStats fresh = restored->memo().stats();
  const u64 restored_hits = fresh.hits + fresh.frontier_hits;
  EXPECT_GE(static_cast<double>(restored_hits),
            0.8 * static_cast<double>(steady_hits))
      << "checkpoint-dense warm start fell below 80% of steady state ("
      << restored_hits << " vs " << steady_hits << ")";
}

}  // namespace
}  // namespace raptrack
