// Unit tests: the executor — arithmetic/flag semantics, memory ops, stack
// discipline, every branch kind, SVC dispatch, fault delivery, cycles.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cpu/executor.hpp"
#include "mem/bus.hpp"
#include "trace/trace_fabric.hpp"

namespace raptrack::cpu {
namespace {

using isa::Reg;

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : map_(mem::MemoryMap::make_default()), bus_(map_), cpu_(bus_) {}

  /// Assemble, load at NS flash, run to halt, return the executor.
  HaltReason run(std::string_view src, u64 max_instructions = 100000) {
    const Program p = assemble(src, mem::MapLayout::kNsFlashBase);
    map_.load(p.base(), p.bytes());
    cpu_.reset(p.base(), mem::MapLayout::kNsRamBase + 0x1000);
    return cpu_.run(max_instructions);
  }

  Word reg(Reg r) const { return cpu_.state().reg(r); }

  mem::MemoryMap map_;
  mem::Bus bus_;
  Executor cpu_;
};

TEST_F(CpuTest, MoviMovtBuild32BitConstants) {
  EXPECT_EQ(run("movi r1, #0x1234\nmovt r1, #0xabcd\nhlt\n"), HaltReason::Halted);
  EXPECT_EQ(reg(Reg::R1), 0xabcd1234u);
}

TEST_F(CpuTest, ArithmeticAndFlags) {
  run(R"(
    movi r1, #7
    movi r2, #5
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    udiv r6, r1, r2
    subs r7, r2, r2
    hlt
  )");
  EXPECT_EQ(reg(Reg::R3), 12u);
  EXPECT_EQ(reg(Reg::R4), 2u);
  EXPECT_EQ(reg(Reg::R5), 35u);
  EXPECT_EQ(reg(Reg::R6), 1u);
  EXPECT_EQ(reg(Reg::R7), 0u);
  EXPECT_TRUE(cpu_.state().flags.z);
}

TEST_F(CpuTest, DivideByZeroYieldsZeroLikeArm) {
  run("movi r1, #9\nmovi r2, #0\nudiv r3, r1, r2\nsdiv r4, r1, r2\nhlt\n");
  EXPECT_EQ(reg(Reg::R3), 0u);
  EXPECT_EQ(reg(Reg::R4), 0u);
}

TEST_F(CpuTest, SignedComparisonsBranchCorrectly) {
  run(R"(
    movi r1, #5
    rsb r1, r1, #0      ; r1 = -5
    movi r2, #3
    cmp r1, r2
    blt took_lt
    movi r3, #0
    b after
took_lt:
    movi r3, #1
after:
    cmp r2, r1
    bgt took_gt
    movi r4, #0
    b end
took_gt:
    movi r4, #1
end:
    hlt
  )");
  EXPECT_EQ(reg(Reg::R3), 1u);
  EXPECT_EQ(reg(Reg::R4), 1u);
}

TEST_F(CpuTest, UnsignedConditionsUseCarry) {
  run(R"(
    movi r1, #1
    mvn r2, r1          ; r2 = 0xfffffffe (large unsigned)
    cmp r2, r1
    bhi big
    movi r3, #0
    b done
big:
    movi r3, #1
done:
    hlt
  )");
  EXPECT_EQ(reg(Reg::R3), 1u);
}

TEST_F(CpuTest, ShiftSemantics) {
  run(R"(
    movi r1, #1
    lsl r2, r1, #31
    asr r3, r2, #31     ; arithmetic: sign fills
    lsr r4, r2, #31     ; logical: zero fills
    hlt
  )");
  EXPECT_EQ(reg(Reg::R2), 0x80000000u);
  EXPECT_EQ(reg(Reg::R3), 0xffffffffu);
  EXPECT_EQ(reg(Reg::R4), 1u);
}

TEST_F(CpuTest, LoadStoreWidths) {
  run(R"(
    li r1, =0x20200000
    li r2, =0x11223344
    str r2, [r1]
    ldrb r3, [r1]
    ldrh r4, [r1, #2]
    strb r3, [r1, #8]
    ldr r5, [r1, #8]
    hlt
  )");
  EXPECT_EQ(reg(Reg::R3), 0x44u);
  EXPECT_EQ(reg(Reg::R4), 0x1122u);
  EXPECT_EQ(reg(Reg::R5), 0x44u);
}

TEST_F(CpuTest, PushPopPreserveRegisters) {
  run(R"(
    movi r4, #11
    movi r5, #22
    push {r4, r5}
    movi r4, #0
    movi r5, #0
    pop {r4, r5}
    hlt
  )");
  EXPECT_EQ(reg(Reg::R4), 11u);
  EXPECT_EQ(reg(Reg::R5), 22u);
}

TEST_F(CpuTest, CallAndLeafReturn) {
  run(R"(
    movi r1, #1
    bl func
    movi r2, #3
    hlt
func:
    movi r1, #2
    bx lr
  )");
  EXPECT_EQ(reg(Reg::R1), 2u);
  EXPECT_EQ(reg(Reg::R2), 3u);
}

TEST_F(CpuTest, NestedCallsWithStackReturns) {
  run(R"(
    bl outer
    hlt
outer:
    push {r4, lr}
    movi r4, #5
    bl inner
    add r0, r0, r4
    pop {r4, pc}
inner:
    movi r0, #10
    bx lr
  )");
  EXPECT_EQ(reg(Reg::R0), 15u);
}

TEST_F(CpuTest, IndirectCallAndJumpTable) {
  run(R"(
    li r3, =target
    blx r3
    movi r2, #9
    li r4, =table
    movi r5, #1
    ldr pc, [r4, r5, lsl #2]
dead:
    movi r2, #0
    hlt
t0:
    hlt
t1:
    movi r6, #77
    hlt
target:
    movi r1, #42
    bx lr
table:
    .word t0
    .word t1
  )");
  EXPECT_EQ(reg(Reg::R1), 42u);
  EXPECT_EQ(reg(Reg::R2), 9u);
  EXPECT_EQ(reg(Reg::R6), 77u);
}

TEST_F(CpuTest, ReadingPcAsOperandYieldsNextInstruction) {
  run("mov r1, pc\nhlt\n");
  EXPECT_EQ(reg(Reg::R1), mem::MapLayout::kNsFlashBase + 4);
}

TEST_F(CpuTest, BranchEventsReachSinks) {
  trace::OracleTracer oracle;  // declared in trace_fabric.hpp
  cpu_.add_sink(&oracle);
  run(R"(
    b skip
skip:
    bl fn
    hlt
fn:
    bx lr
  )");
  ASSERT_EQ(oracle.events().size(), 3u);
  EXPECT_EQ(oracle.events()[0].kind, isa::BranchKind::Direct);
  EXPECT_EQ(oracle.events()[1].kind, isa::BranchKind::DirectCall);
  EXPECT_EQ(oracle.events()[2].kind, isa::BranchKind::Return);
  EXPECT_EQ(oracle.events()[2].destination, oracle.events()[1].source + 4);
}

TEST_F(CpuTest, SvcDispatchesToHandlerAndChargesCycles) {
  u8 seen_code = 0;
  cpu_.set_svc_handler([&](u8 code, CpuState& state) -> Cycles {
    seen_code = code;
    state.set_reg(Reg::R0, 123);
    return 1000;
  });
  const Cycles before = cpu_.cycles();
  run("svc #7\nhlt\n");
  EXPECT_EQ(seen_code, 7);
  EXPECT_EQ(reg(Reg::R0), 123u);
  EXPECT_GT(cpu_.cycles(), before + 1000);
}

TEST_F(CpuTest, SvcWithoutHandlerFaults) {
  EXPECT_EQ(run("svc #1\nhlt\n"), HaltReason::Fault);
  EXPECT_EQ(cpu_.fault()->type, mem::FaultType::UndefinedInstr);
}

TEST_F(CpuTest, FaultsAreDelivered) {
  EXPECT_EQ(run("li r1, =0x30000000\nldr r0, [r1]\nhlt\n"), HaltReason::Fault);
  EXPECT_EQ(cpu_.fault()->type, mem::FaultType::SecurityFault);

  EXPECT_EQ(run("li r1, =0x00000000\nldr r0, [r1]\nhlt\n"), HaltReason::Fault);
  EXPECT_EQ(cpu_.fault()->type, mem::FaultType::BusError);
}

TEST_F(CpuTest, UnalignedBranchTargetFaults) {
  EXPECT_EQ(run("li r1, =0x00200002\nbx r1\nhlt\n"), HaltReason::Fault);
  EXPECT_EQ(cpu_.fault()->type, mem::FaultType::Unaligned);
}

TEST_F(CpuTest, InstructionBudgetStopsRunaways) {
  EXPECT_EQ(run("loop: b loop\n", 100), HaltReason::InstrBudget);
  EXPECT_EQ(cpu_.instructions_retired(), 100u);
}

TEST_F(CpuTest, BreakpointHalts) {
  EXPECT_EQ(run("bkpt\nhlt\n"), HaltReason::Breakpoint);
}

TEST_F(CpuTest, CyclesAccumulateMonotonically) {
  run("movi r1, #100\nloop: sub r1, r1, #1\ncmp r1, #0\nbne loop\nhlt\n");
  // ~100 iterations x (1 + 1 + taken branch) plus prologue.
  EXPECT_GT(cpu_.cycles(), 400u);
  EXPECT_LT(cpu_.cycles(), 1000u);
  EXPECT_EQ(cpu_.instructions_retired(), 2 + 100 * 3u);
}

}  // namespace
}  // namespace raptrack::cpu
