// Unit tests: the evaluation workloads — functional correctness against
// golden models, stimulus determinism, and the branch-mix structure each
// app was designed to exercise.
#include <gtest/gtest.h>

#include "apps/peripherals.hpp"
#include "apps/runner.hpp"

namespace raptrack::apps {
namespace {

TEST(Registry, HasThePaperWorkloads) {
  const auto& apps = app_registry();
  EXPECT_EQ(apps.size(), 13u);
  for (const char* name : {"ultrasonic", "geiger", "syringe", "temperature",
                           "gps", "prime", "crc32", "bubblesort", "fibcall",
                           "matmult", "binsearch", "fir", "insertsort"}) {
    EXPECT_NO_THROW(app_by_name(name)) << name;
  }
  EXPECT_THROW(app_by_name("nonexistent"), Error);
}

TEST(Registry, AppsAssembleWithSymbols) {
  for (const auto& app : app_registry()) {
    const BuiltApp built = build_app(app);
    EXPECT_EQ(built.code_begin, kAppBase) << app.name;
    EXPECT_GT(built.code_end, built.code_begin) << app.name;
    EXPECT_GE(built.entry, built.code_begin) << app.name;
    EXPECT_LT(built.entry, built.code_end) << app.name;
    EXPECT_GT(built.program.size(), 0u) << app.name;
  }
}

class AppFunctional : public ::testing::TestWithParam<std::string> {};

TEST_P(AppFunctional, BaselineMatchesGoldenModel) {
  const auto prepared = prepare_app(app_by_name(GetParam()));
  for (const u64 seed : {1ull, 7ull, 99ull, 31337ull}) {
    const auto run = run_baseline(prepared, seed);
    EXPECT_EQ(run.attestation.metrics.halt, cpu::HaltReason::Halted)
        << GetParam() << " seed " << seed;
    EXPECT_TRUE(run.functional_ok) << GetParam() << " seed " << seed;
  }
}

TEST_P(AppFunctional, RunsAreDeterministicPerSeed) {
  const auto prepared = prepare_app(app_by_name(GetParam()));
  const auto a = run_baseline(prepared, 5);
  const auto b = run_baseline(prepared, 5);
  EXPECT_EQ(a.attestation.metrics.exec_cycles, b.attestation.metrics.exec_cycles);
  EXPECT_EQ(a.oracle.size(), b.oracle.size());
  EXPECT_EQ(a.oracle, b.oracle);
}

TEST_P(AppFunctional, DifferentSeedsProduceDifferentPaths) {
  if (GetParam() == "matmult") {
    GTEST_SKIP() << "matmult's path is fixed by design; only data changes";
  }
  // Data-dependent control flow: at least one pair of seeds must diverge
  // (fibcall's path depends on only 3 bits of the seed, so sweep a few).
  const auto prepared = prepare_app(app_by_name(GetParam()));
  const auto reference = run_baseline(prepared, 1);
  bool diverged = false;
  for (u64 seed = 2; seed <= 6 && !diverged; ++seed) {
    diverged = run_baseline(prepared, seed).oracle != reference.oracle;
  }
  EXPECT_TRUE(diverged) << GetParam();
}

std::vector<std::string> app_names() {
  std::vector<std::string> names;
  for (const auto& app : app_registry()) names.push_back(app.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppFunctional,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

TEST(AppStructure, GpsUsesAJumpTable) {
  const auto prepared = prepare_app(app_by_name("gps"));
  bool has_indirect_jump = false;
  for (const auto& slot : prepared.rap.manifest.slots) {
    has_indirect_jump |= slot.kind == rewrite::SlotKind::IndirectJump;
  }
  EXPECT_TRUE(has_indirect_jump);
}

TEST(AppStructure, SyringeDispatchesIndirectCalls) {
  const auto prepared = prepare_app(app_by_name("syringe"));
  bool has_indirect_call = false;
  for (const auto& slot : prepared.rap.manifest.slots) {
    has_indirect_call |= slot.kind == rewrite::SlotKind::IndirectCall;
  }
  EXPECT_TRUE(has_indirect_call);
  // Dose-dependent stepper loops use the §IV-D loop optimization.
  EXPECT_FALSE(prepared.rap.manifest.loop_veneers.empty());
}

TEST(AppStructure, FibcallIsReturnHeavy) {
  const auto prepared = prepare_app(app_by_name("fibcall"));
  bool has_return = false;
  for (const auto& slot : prepared.rap.manifest.slots) {
    has_return |= slot.kind == rewrite::SlotKind::ReturnPop;
  }
  EXPECT_TRUE(has_return);
  const auto run = run_rap(prepared, 3);
  // Hundreds of recursive returns land in CF_Log.
  EXPECT_GT(run.attestation.metrics.cflog_bytes, 1000u);
}

TEST(AppStructure, UltrasonicAndMatmultHaveDeterministicLoops) {
  for (const char* name : {"ultrasonic", "matmult", "crc32"}) {
    const auto prepared = prepare_app(app_by_name(name));
    EXPECT_FALSE(prepared.rap.manifest.deterministic_loops.empty()) << name;
  }
}

TEST(Peripherals, UartDrainsToSentinel) {
  Peripherals periph;
  periph.uart_rx = {0x41, 0x42};
  EXPECT_EQ(periph.read(PeriphRegs::kUartCount), 2u);
  EXPECT_EQ(periph.read(PeriphRegs::kUartRx), 0x41u);
  EXPECT_EQ(periph.read(PeriphRegs::kUartRx), 0x42u);
  EXPECT_EQ(periph.read(PeriphRegs::kUartRx), 0xffffffffu);
}

TEST(Peripherals, SampleStreamsHoldLastValue) {
  Peripherals periph;
  periph.adc_values = {10, 20};
  EXPECT_EQ(periph.read(PeriphRegs::kAdc), 10u);
  EXPECT_EQ(periph.read(PeriphRegs::kAdc), 20u);
  EXPECT_EQ(periph.read(PeriphRegs::kAdc), 20u);  // holds
}

TEST(Peripherals, WritesAreCaptured) {
  Peripherals periph;
  periph.write(PeriphRegs::kActuator, 7);
  periph.write(PeriphRegs::kTrigger, 9);
  ASSERT_EQ(periph.actuator_writes.size(), 1u);
  EXPECT_EQ(periph.actuator_writes[0], 7u);
  ASSERT_EQ(periph.trigger_writes.size(), 1u);
}

TEST(Peripherals, StimulusGeneratorsAreDeterministic) {
  EXPECT_EQ(make_nmea_stream(5, 10), make_nmea_stream(5, 10));
  EXPECT_NE(make_nmea_stream(5, 10), make_nmea_stream(6, 10));
  EXPECT_EQ(make_pump_commands(5, 10), make_pump_commands(5, 10));
  EXPECT_EQ(make_adc_samples(5, 10), make_adc_samples(5, 10));
  EXPECT_EQ(make_echo_samples(5, 10), make_echo_samples(5, 10));
  EXPECT_EQ(make_geiger_counts(5, 10), make_geiger_counts(5, 10));
}

TEST(Peripherals, NmeaStreamHasValidStructure) {
  const auto stream = make_nmea_stream(1, 5, /*corrupt_one_in=*/0);
  int dollars = 0, stars = 0;
  for (const u8 c : stream) {
    dollars += c == '$';
    stars += c == '*';
  }
  EXPECT_EQ(dollars, 5);
  EXPECT_EQ(stars, 5);
}

}  // namespace
}  // namespace raptrack::apps
