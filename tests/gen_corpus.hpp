// Generative corpus of checkpoint-dense programs for the memo stack's
// differential tests. Every program is a parameterized variant of the
// `leafamb` shape — the worst case for the backtracking search: a leaf
// whose rare-alarm conditional is RAP-ambiguous because the non-alarm
// return (BX LR) is unmonitored, so the alarm packet in the slot could
// belong to ANY dynamic instance in the current unmonitored call run.
//
// The grid varies three structural axes plus a seed:
//   * nesting depth   — calls reach the leaf through 0..2 wrapper
//     functions (PUSH {lr} / POP {pc} frames). Each wrapper return is
//     monitored, so depth also controls the *width* of each ambiguity
//     window (packet-free call runs between logged returns);
//   * alarm density   — the leaf counter resets on alarm, so the alarm
//     conditional fires every `alarm_every`-th call, repeatedly;
//   * loop shape      — what the alarm arm burns steps on: a counted
//     spin (statically-deterministic simple loop), a nested two-level
//     loop, or straight-line code. Different shapes change how quickly
//     a greedy misattribution is refuted;
//   * seed            — perturbs call counts and spin bounds, so equal
//     grid points still produce distinct programs.
//
// The header is intentionally self-contained and cheap: `corpus_source`
// for harnesses that assemble locally (test_replayer_search), and
// `corpus_app` for the full prover pipeline (test_memo).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/peripherals.hpp"
#include "sim/machine.hpp"

namespace raptrack::gen {

struct GenParams {
  int depth = 1;        ///< 1..3: 1 = _start calls the leaf directly
  int alarm_every = 4;  ///< leaf counter period between alarm firings
  int loop_shape = 0;   ///< 0 = counted spin, 1 = nested loop, 2 = straight
  u64 seed = 0;         ///< perturbs call counts and loop bounds
};

/// Stable label for test/diagnostic output.
inline std::string corpus_name(const GenParams& p) {
  return "gen_d" + std::to_string(p.depth) + "_a" +
         std::to_string(p.alarm_every) + "_s" + std::to_string(p.loop_shape) +
         "_r" + std::to_string(p.seed);
}

/// Per-level call counts: {calls in _start, calls in f1, calls in f2}.
/// Totals stay in the 16..48 leaf-call range so the whole grid remains
/// fast enough for the sanitizer legs.
struct CorpusCalls {
  int top = 0;
  int mid = 0;
  int inner = 0;
};

inline CorpusCalls corpus_calls(const GenParams& p) {
  const int v = static_cast<int>(p.seed);
  switch (p.depth) {
    case 1:
      return {16 + (v % 4) * 8, 0, 0};
    case 2:
      return {3, 6 + v % 3, 0};
    default:
      return {2, 3, 5 + v % 3};
  }
}

/// RT-ISA source for one grid point. Structure (depth 3 shown):
///   _start -> f1 (xN) -> f2 (xM) -> check (xK)
/// Wrappers save LR on the stack (the rewriter forbids explicit LR
/// writes) and return via monitored POP {pc}; the leaf's non-alarm path
/// returns via unmonitored BX LR, which is what makes the alarm
/// conditional ambiguous across the calls of one wrapper invocation.
inline std::string corpus_source(const GenParams& p) {
  const CorpusCalls calls = corpus_calls(p);
  const int spin = 24 + (static_cast<int>(p.seed) % 4) * 12;
  std::string s = R"asm(
.equ RES,     0x20200000
.equ COUNTER, 0x20200040

_start:
    li r3, =COUNTER
    movi r0, #0
    str r0, [r3, #0]
    movi r5, #0
)asm";
  const char* top_callee = p.depth > 1 ? "f1" : "check";
  for (int i = 0; i < calls.top; ++i) {
    s += "    bl ";
    s += top_callee;
    s += "\n";
  }
  s += R"asm(    li r1, =RES
    str r5, [r1, #0]
    hlt
)asm";
  if (p.depth > 1) {
    s += "\nf1:\n    push {lr}\n";
    const char* mid_callee = p.depth > 2 ? "f2" : "check";
    for (int i = 0; i < calls.mid; ++i) {
      s += "    bl ";
      s += mid_callee;
      s += "\n";
    }
    s += "    pop {pc}\n";
  }
  if (p.depth > 2) {
    s += "\nf2:\n    push {lr}\n";
    for (int i = 0; i < calls.inner; ++i) s += "    bl check\n";
    s += "    pop {pc}\n";
  }
  s += R"asm(
check:
    ldr r1, [r3, #0]
    addi r1, r1, #1
    str r1, [r3, #0]
    cmp r1, #)asm";
  s += std::to_string(p.alarm_every);
  s += R"asm(
    beq alarm
    bx lr
alarm:
    addi r5, r5, #1
    movi r1, #0
    str r1, [r3, #0]
)asm";
  switch (p.loop_shape) {
    case 0:
      s += "    movi r7, #0\nspin:\n    addi r7, r7, #1\n    cmp r7, #";
      s += std::to_string(spin);
      s += "\n    blt spin\n";
      break;
    case 1:
      s +=
          "    movi r6, #0\nouter:\n    movi r7, #0\ninner:\n"
          "    addi r7, r7, #1\n    cmp r7, #10\n    blt inner\n"
          "    addi r6, r6, #1\n    cmp r6, #3\n    blt outer\n";
      break;
    default:
      s +=
          "    addi r7, r5, #3\n    addi r7, r7, #5\n"
          "    addi r7, r7, #7\n    addi r7, r7, #9\n";
      break;
  }
  s += R"asm(    push {lr}
    pop {pc}
__code_end:
)asm";
  return s;
}

/// Full App wrapper for the prover pipeline (apps::prepare_app + run_*).
/// No peripheral stimulus: the path is a function of the grid point alone,
/// so every differential harness replays byte-identical evidence.
inline apps::App corpus_app(const GenParams& p) {
  apps::App app;
  app.name = corpus_name(p);
  app.description = "generated checkpoint-dense leaf-ambiguity program";
  app.source = corpus_source(p);
  app.setup = [](sim::Machine& machine, u64) {
    auto periph = std::make_shared<apps::Peripherals>();
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine&, const apps::Peripherals&, u64) { return true; };
  return app;
}

/// The full parameter grid: 3 depths x 3 alarm densities x 3 loop shapes
/// x 8 seeds = 216 programs (the acceptance floor is 200).
inline std::vector<GenParams> corpus_grid() {
  std::vector<GenParams> grid;
  for (const int depth : {1, 2, 3}) {
    for (const int alarm : {4, 8, 16}) {
      for (const int shape : {0, 1, 2}) {
        for (u64 seed = 0; seed < 8; ++seed) {
          grid.push_back({depth, alarm, shape, seed});
        }
      }
    }
  }
  return grid;
}

}  // namespace raptrack::gen
