// Attack-detection tests (§IV-F security analysis): a real stack-smashing
// ROP delivered through the app's input channel, a JOP-style dispatch
// hijack, and the benign-control runs that must stay clean. In every case
// the attack succeeds on the device but the CF_Log evidence exposes it to
// the Verifier.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"

namespace raptrack {
namespace {

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

/// Models Adv's arbitrary runtime control over the Non-Secure world: runs a
/// callback before a chosen instruction executes (e.g. to corrupt a
/// register or RAM). Deliberately NOT the DWT — those comparators belong to
/// the trusted RoT configuration.
class AttackerHook final : public cpu::TraceSink {
 public:
  AttackerHook(Address trigger_pc, std::function<void()> action)
      : trigger_(trigger_pc), action_(std::move(action)) {}

  void on_instruction(Address pc) override {
    if (pc == trigger_ && !fired_) {
      fired_ = true;
      action_();
    }
  }

 private:
  Address trigger_;
  std::function<void()> action_;
  bool fired_ = false;
};

// A vulnerable service: reads a length byte from the UART and copies that
// many sensor words (ADC channel) into an 8-byte stack buffer — a classic
// unbounded copy. Index 5 of the copy lands on the saved return address.
constexpr const char* kVulnerableApp = R"asm(
.equ UART_RX,   0x40000000
.equ ADC,       0x40000010
.equ ACTUATOR,  0x40000050
.equ RES_OK,    0x20200000

_start:
    bl handle_message
    li r1, =RES_OK
    movi r0, #1
    str r0, [r1]
    hlt

; gadget the attacker wants to reach (fires the actuator).
privileged_gadget:
    li r1, =ACTUATOR
    li r0, =0xdead
    str r0, [r1]
    li r1, =RES_OK
    movi r0, #2
    str r0, [r1]
    hlt

handle_message:
    push {r4, r5, r6, lr}
    sub sp, sp, #8         ; 8-byte stack buffer at [sp]
    li r4, =UART_RX
    ldr r5, [r4]           ; attacker-controlled length
    li r4, =ADC
    movi r6, #0
copy_loop:
    cmp r6, r5
    bge copy_done
    ldr r0, [r4]           ; next sensor word
    ; *** missing bounds check: writes beyond the 8-byte buffer ***
    lsl r1, r6, #2
    add r1, r1, sp
    str r0, [r1]
    addi r6, r6, #1
    b copy_loop
copy_done:
    add sp, sp, #8
    pop {r4, r5, r6, pc}
__code_end:
)asm";

std::shared_ptr<apps::Peripherals> stimulus(sim::Machine& machine, u8 length,
                                            std::vector<u32> words) {
  auto periph = std::make_shared<apps::Peripherals>();
  periph->uart_rx.push_back(length);
  periph->adc_values = std::move(words);
  periph->attach(machine);
  return periph;
}

TEST(Attack, BenignRunOfVulnerableAppIsAccepted) {
  const Built b = build(kVulnerableApp);
  const auto rewritten = rewrite::rewrite_for_rap_track(
      b.program, b.entry, b.program.base(), b.code_end);

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(rewritten.program, rewritten.manifest, b.entry);

  const cfa::Challenge chal = verifier.fresh_challenge();
  sim::Machine machine;
  const auto periph = stimulus(machine, 2, {0x11, 0x22});  // fits the buffer
  cfa::RapProver prover(rewritten.program, rewritten.manifest, b.entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);
  EXPECT_EQ(machine.memory().raw_read32(0x2020'0000), 1u);  // normal path
  const auto result = verifier.verify(chal, run.reports);
  EXPECT_TRUE(result.accepted()) << result.detail;
  EXPECT_TRUE(result.replay.findings.empty());
}

// End-to-end ROP through the input channel: the overflow payload itself
// carries the gadget address; no simulator magic involved. The MTB records
// the hijacked return and the Verifier reports the ROP with the exact
// gadget address.
TEST(Attack, RopStackSmashViaInputChannelIsDetected) {
  const Built b = build(kVulnerableApp);
  const auto rewritten = rewrite::rewrite_for_rap_track(
      b.program, b.entry, b.program.base(), b.code_end);
  const Address gadget = *b.program.symbol("privileged_gadget");

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(rewritten.program, rewritten.manifest, b.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine;
  // Indices 0-1 fill the buffer, 2-4 clobber saved r4/r5/r6, 5 overwrites
  // the saved return address.
  const auto periph =
      stimulus(machine, 6, {0x11, 0x22, 0x33, 0x44, 0x55, gadget});
  cfa::RapProver prover(rewritten.program, rewritten.manifest, b.entry,
                        apps::demo_key());
  const auto run = prover.attest(machine, chal);

  // The exploit worked on the device: the privileged gadget ran.
  EXPECT_EQ(machine.memory().raw_read32(0x2020'0000), 2u);
  ASSERT_FALSE(periph->actuator_writes.empty());
  EXPECT_EQ(periph->actuator_writes[0], 0xdeadu);

  // …and the evidence convicts it.
  const auto result = verifier.verify(chal, run.reports);
  EXPECT_TRUE(result.authentic);
  EXPECT_TRUE(result.memory_ok);
  EXPECT_TRUE(result.reconstruction_ok) << result.detail;
  EXPECT_FALSE(result.policy_ok);
  EXPECT_FALSE(result.accepted());
  ASSERT_FALSE(result.replay.findings.empty());
  const auto& finding = result.replay.findings[0];
  EXPECT_NE(finding.description.find("ROP"), std::string::npos);
  EXPECT_EQ(finding.observed, gadget);
  // The reconstructed path shows execution entering the gadget.
  bool path_hits_gadget = false;
  for (const auto& event : result.replay.events) {
    path_hits_gadget |= event.destination == gadget;
  }
  EXPECT_TRUE(path_hits_gadget);
}

// JOP-style dispatch hijack on the syringe pump: Adv corrupts the dispatch
// register before the indirect call (data-only attack, code unchanged); the
// Verifier's call-target policy flags the illegitimate target.
TEST(Attack, JopDispatchHijackIsDetected) {
  const auto prepared = apps::prepare_app(apps::app_by_name("syringe"));

  // Legitimate dispatch targets, harvested from the command table.
  verify::ReplayPolicy policy;
  const Program& original = prepared.built.program;
  const Address table = *original.symbol("cmd_table");
  for (Address a = table; a + 4 <= original.end(); a += 4) {
    policy.valid_call_targets.insert(original.word_at(a));
  }

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_policy(policy);

  // Benign run: accepted under the policy.
  {
    const cfa::Challenge chal = verifier.fresh_challenge();
    const auto run = apps::run_rap(prepared, 77, {}, {}, chal);
    const auto result = verifier.verify(chal, run.attestation.reports);
    EXPECT_TRUE(result.accepted()) << result.detail;
  }

  // Malicious run.
  {
    const cfa::Challenge chal = verifier.fresh_challenge();
    sim::Machine machine;
    const auto periph = prepared.built.app->setup(machine, 77);
    const Address hijack_target = *original.symbol("done");
    ASSERT_EQ(policy.valid_call_targets.count(hijack_target), 0u);

    const auto* call_slot = [&]() -> const rewrite::SlotRecord* {
      for (const auto& slot : prepared.rap.manifest.slots) {
        if (slot.kind == rewrite::SlotKind::IndirectCall) return &slot;
      }
      return nullptr;
    }();
    ASSERT_NE(call_slot, nullptr);
    AttackerHook hook(call_slot->site, [&] {
      machine.cpu().state().set_reg(isa::Reg::R3, hijack_target);
    });
    machine.cpu().add_sink(&hook);

    cfa::RapProver prover(prepared.rap.program, prepared.rap.manifest,
                          prepared.built.entry, apps::demo_key());
    const auto run = prover.attest(machine, chal);
    const auto result = verifier.verify(chal, run.reports);
    EXPECT_TRUE(result.reconstruction_ok) << result.detail;
    EXPECT_FALSE(result.policy_ok);
    EXPECT_FALSE(result.accepted());
    bool jop_found = false;
    for (const auto& finding : result.replay.findings) {
      jop_found |= finding.description.find("JOP") != std::string::npos;
    }
    EXPECT_TRUE(jop_found);
  }
}

// The same input-channel ROP is equally visible under naive MTB logging —
// losslessness is method-independent.
TEST(Attack, RopIsAlsoVisibleUnderNaiveMtb) {
  const Built b = build(kVulnerableApp);
  const Address gadget = *b.program.symbol("privileged_gadget");

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_naive(b.program, b.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine;
  const auto periph =
      stimulus(machine, 6, {0x11, 0x22, 0x33, 0x44, 0x55, gadget});
  cfa::NaiveProver prover(b.program, b.entry, apps::demo_key());
  const auto run = prover.attest(machine, chal);

  const auto result = verifier.verify(chal, run.reports);
  EXPECT_TRUE(result.reconstruction_ok) << result.detail;
  EXPECT_FALSE(result.policy_ok);
  bool rop_found = false;
  for (const auto& finding : result.replay.findings) {
    rop_found |= finding.description.find("ROP") != std::string::npos;
  }
  EXPECT_TRUE(rop_found);
}

}  // namespace
}  // namespace raptrack
