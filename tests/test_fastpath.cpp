// Differential correctness harness for the predecoded fast-path interpreter:
//   - lock-steps step_fast() against the step() oracle over 500 seeded
//     fuzzed programs (registers, flags, cycles, sink event streams, faults),
//     printing the first mismatching pc on divergence;
//   - re-runs every registry app under all four methods with the fast path
//     on vs off and demands identical metrics, reports, and oracle traces;
//   - regression-checks the undefined-word parity (poisoned word
//     mid-program) and write-invalidation of predecoded lines;
//   - replays the seeded device-fault campaign fast vs slow and demands
//     verdict-for-verdict parity (cache invalidation vs SEU/glitch
//     injectors).
#include <gtest/gtest.h>

#include <memory>

#include "apps/runner.hpp"
#include "common/hex.hpp"
#include "cpu/executor.hpp"
#include "fault/campaign.hpp"
#include "fuzz_programs.hpp"
#include "isa/decoded_image.hpp"
#include "mem/bus.hpp"
#include "obs/metrics.hpp"

namespace raptrack {
namespace {

using cpu::HaltReason;
using isa::Op;
using isa::Reg;

// -- shared fixtures ---------------------------------------------------------

struct Event {
  bool is_branch = false;
  Address pc = 0;           ///< instruction pc, or branch source
  Address destination = 0;  ///< branches only
  isa::BranchKind kind = isa::BranchKind::None;

  friend bool operator==(const Event&, const Event&) = default;
};

class RecordingSink final : public cpu::TraceSink {
 public:
  void on_instruction(Address pc) override {
    events.push_back({false, pc, 0, isa::BranchKind::None});
  }
  void on_branch(Address source, Address destination,
                 isa::BranchKind kind) override {
    events.push_back({true, source, destination, kind});
  }
  std::vector<Event> events;
};

/// A bare simulated core (no Machine): map + bus + executor + one recording
/// sink, with optional predecode over the loaded program.
struct Core {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus{map};
  cpu::Executor cpu{bus};
  RecordingSink sink;
  std::unique_ptr<isa::DecodedImage> image;

  explicit Core(const Program& program, u64 reg_seed, bool fast) {
    cpu.add_sink(&sink);
    map.load(program.base(), program.bytes());
    if (fast) {
      image = std::make_unique<isa::DecodedImage>(program.base(),
                                                  program.bytes());
      bus.watch_writes(program.base(), program.size(),
                       [img = image.get()](Address addr, u32 bytes) {
                         img->invalidate(addr, bytes);
                       });
      cpu.attach_decoded_image(image.get());
    }
    cpu.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);
    // Seeded register file: base registers point into scratch RAM so the
    // fuzzed loads/stores frequently hit backed memory.
    Xoshiro256 rng(reg_seed ^ 0x9e3779b97f4a7c15ull);
    for (unsigned i = 0; i < 6; ++i) {
      cpu.state().set_reg(static_cast<Reg>(i),
                          apps::kScratchBase + static_cast<u32>(rng.next_below(256)) * 4);
    }
    for (unsigned i = 6; i < 11; ++i) {
      cpu.state().set_reg(static_cast<Reg>(i), static_cast<Word>(rng.next()));
    }
  }
};

std::string fault_text(const std::optional<mem::Fault>& fault) {
  if (!fault) return "(none)";
  return std::string(mem::fault_name(fault->type)) + " @" + hex32(fault->pc) +
         " addr=" + hex32(fault->address) + " — " + fault->detail;
}

/// Full-state comparison; returns a description of the first difference.
::testing::AssertionResult states_equal(const cpu::Executor& oracle,
                                        const cpu::Executor& fast) {
  for (unsigned i = 0; i < isa::kNumRegs; ++i) {
    const Reg r = static_cast<Reg>(i);
    if (oracle.state().reg(r) != fast.state().reg(r)) {
      return ::testing::AssertionFailure()
             << "r" << i << ": oracle=" << hex32(oracle.state().reg(r))
             << " fast=" << hex32(fast.state().reg(r));
    }
  }
  if (!(oracle.state().flags == fast.state().flags)) {
    return ::testing::AssertionFailure() << "NZCV flags differ";
  }
  if (oracle.cycles() != fast.cycles()) {
    return ::testing::AssertionFailure() << "cycles: oracle=" << oracle.cycles()
                                         << " fast=" << fast.cycles();
  }
  if (oracle.instructions_retired() != fast.instructions_retired()) {
    return ::testing::AssertionFailure()
           << "instructions: oracle=" << oracle.instructions_retired()
           << " fast=" << fast.instructions_retired();
  }
  const auto& of = oracle.fault();
  const auto& ff = fast.fault();
  if (of.has_value() != ff.has_value() ||
      (of && (of->type != ff->type || of->address != ff->address ||
              of->pc != ff->pc || of->detail != ff->detail))) {
    return ::testing::AssertionFailure() << "fault: oracle=" << fault_text(of)
                                         << " fast=" << fault_text(ff);
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult events_equal(const std::vector<Event>& oracle,
                                        const std::vector<Event>& fast) {
  const size_t n = std::min(oracle.size(), fast.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(oracle[i] == fast[i])) {
      return ::testing::AssertionFailure()
             << "first mismatching event #" << i << " at pc "
             << hex32(oracle[i].pc) << " (oracle) vs " << hex32(fast[i].pc)
             << " (fast)";
    }
  }
  if (oracle.size() != fast.size()) {
    const Address pc = oracle.size() > fast.size() ? oracle[n].pc : fast[n].pc;
    return ::testing::AssertionFailure()
           << "event stream lengths differ (oracle " << oracle.size()
           << " vs fast " << fast.size() << "), first extra event at pc "
           << hex32(pc);
  }
  return ::testing::AssertionSuccess();
}

// -- fuzzed-program differential ---------------------------------------------

constexpr u64 kFuzzBudget = 2000;

TEST(FastPathDiff, LockStepAgainstOracleOn500FuzzedPrograms) {
  for (u64 seed = 1; seed <= 500; ++seed) {
    const Program program = testing::fuzz_program(seed);
    Core oracle(program, seed, /*fast=*/false);
    Core fast(program, seed, /*fast=*/true);

    for (u64 steps = 0; steps < kFuzzBudget; ++steps) {
      const Address at = oracle.cpu.state().pc();
      const auto oracle_reason = oracle.cpu.step();
      const auto fast_reason = fast.cpu.step_fast();
      ASSERT_EQ(oracle_reason.has_value(), fast_reason.has_value())
          << "seed " << seed << ": halt divergence, first mismatching pc "
          << hex32(at);
      ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu))
          << "seed " << seed << ": first mismatching pc " << hex32(at);
      if (oracle_reason) {
        ASSERT_EQ(*oracle_reason, *fast_reason) << "seed " << seed;
        break;
      }
    }
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events))
        << "seed " << seed;
  }
}

TEST(FastPathDiff, BatchRunFastMatchesOracleRun) {
  // Same 500 programs through the real hoisted-dispatch loop (run_fast with
  // a single sink) rather than the step-by-step wrapper.
  for (u64 seed = 1; seed <= 500; ++seed) {
    const Program program = testing::fuzz_program(seed);
    Core oracle(program, seed, /*fast=*/false);
    Core fast(program, seed, /*fast=*/true);

    const HaltReason oracle_reason = oracle.cpu.run(kFuzzBudget);
    const HaltReason fast_reason = fast.cpu.run_fast(kFuzzBudget);
    ASSERT_EQ(oracle_reason, fast_reason) << "seed " << seed;
    ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu)) << "seed " << seed;
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events))
        << "seed " << seed;
  }
}

TEST(FastPathDiff, NoSinkAndMultiSinkDispatchVariantsAgree) {
  // The per-configuration dispatch has three shapes; exercise 0 and 2 sinks
  // (the single-sink shape is covered by the batch test above).
  for (u64 seed = 501; seed <= 540; ++seed) {
    const Program program = testing::fuzz_program(seed);

    // Multi-sink: two recorders must both see the identical stream.
    Core oracle(program, seed, false);
    Core fast(program, seed, true);
    RecordingSink oracle_second, fast_second;
    oracle.cpu.add_sink(&oracle_second);
    fast.cpu.add_sink(&fast_second);
    ASSERT_EQ(oracle.cpu.run(kFuzzBudget), fast.cpu.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu)) << "seed " << seed;
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
    ASSERT_TRUE(events_equal(oracle_second.events, fast_second.events));

    // No-sink: state-only comparison.
    mem::MemoryMap map_a = mem::MemoryMap::make_default();
    mem::Bus bus_a{map_a};
    cpu::Executor cpu_a{bus_a};
    map_a.load(program.base(), program.bytes());
    cpu_a.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);

    mem::MemoryMap map_b = mem::MemoryMap::make_default();
    mem::Bus bus_b{map_b};
    cpu::Executor cpu_b{bus_b};
    map_b.load(program.base(), program.bytes());
    isa::DecodedImage image(program.base(), program.bytes());
    bus_b.watch_writes(program.base(), program.size(),
                       [&image](Address addr, u32 bytes) {
                         image.invalidate(addr, bytes);
                       });
    cpu_b.attach_decoded_image(&image);
    cpu_b.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);

    ASSERT_EQ(cpu_a.run(kFuzzBudget), cpu_b.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(cpu_a, cpu_b)) << "seed " << seed;
  }
}

// -- undefined-word parity (the cost-asymmetry fix) --------------------------

Program poisoned_program() {
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(6 * 4, 0));
  Address at = program.base();
  program.set_word(at, isa::encode({.op = Op::MOVI, .rd = Reg::R0, .imm = 7}));
  program.set_word(at + 4, isa::encode({.op = Op::ADDI, .rd = Reg::R0,
                                        .rn = Reg::R0, .imm = 3}));
  program.set_word(at + 8, 0xffff'ffffu);  // poisoned: does not decode
  program.set_word(at + 12, isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(at + 16, isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(at + 20, isa::encode(isa::Instruction{.op = Op::HLT}));
  return program;
}

TEST(FastPathUndefined, PoisonedWordMidProgramFaultsIdentically) {
  const Program program = poisoned_program();
  ASSERT_FALSE(isa::decode(0xffff'ffffu).has_value());

  Core oracle(program, 1, false);
  Core fast(program, 1, true);
  EXPECT_EQ(oracle.cpu.run(100), HaltReason::Fault);
  EXPECT_EQ(fast.cpu.run_fast(100), HaltReason::Fault);

  ASSERT_TRUE(oracle.cpu.fault().has_value());
  ASSERT_TRUE(fast.cpu.fault().has_value());
  EXPECT_EQ(fast.cpu.fault()->type, mem::FaultType::UndefinedInstr);
  EXPECT_EQ(fast.cpu.fault()->pc, program.base() + 8);
  EXPECT_EQ(oracle.cpu.fault()->detail, fast.cpu.fault()->detail);
  EXPECT_TRUE(states_equal(oracle.cpu, fast.cpu));
  // The poisoned word retires nothing on either path (fault precedes the
  // sink walk and the retired-instruction count).
  EXPECT_EQ(fast.cpu.instructions_retired(), 2u);
  EXPECT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
}

TEST(FastPathUndefined, PredecodeMarksPoisonedSlotInvalid) {
  const Program program = poisoned_program();
  isa::DecodedImage image(program.base(), program.bytes());
  EXPECT_EQ(image.slot(program.base()).kind, isa::SlotKind::Valid);
  EXPECT_EQ(image.slot(program.base() + 8).kind, isa::SlotKind::Undefined);
  EXPECT_EQ(image.slot(program.base() + 8).raw, 0xffff'ffffu);
}

// -- write invalidation ------------------------------------------------------

TEST(FastPathInvalidation, StoreIntoPredecodedRegionDropsTheLine) {
  // Program overwrites its own word #3 (a B .+0 self-loop) with a HLT via a
  // store, then falls through into it. Without invalidation the fast path
  // would execute the stale self-loop from the cache.
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(6 * 4, 0));
  const Address base = program.base();
  const u32 hlt = isa::encode(isa::Instruction{.op = Op::HLT});
  program.set_word(base, isa::encode({.op = Op::MOVI, .rd = Reg::R0,
                                      .imm = static_cast<i32>(hlt & 0xffff)}));
  program.set_word(base + 4,
                   isa::encode({.op = Op::MOVT, .rd = Reg::R0,
                                .imm = static_cast<i32>(hlt >> 16)}));
  // Reading PC as an operand yields pc+4, so r1 = base+12; the store then
  // targets [r1 + 4] = base+16, the self-loop's slot.
  program.set_word(base + 8, isa::encode({.op = Op::MOV, .rd = Reg::R1,
                                          .rm = Reg::PC}));
  program.set_word(base + 12, isa::encode({.op = Op::STR, .rd = Reg::R0,
                                           .rn = Reg::R1, .imm = 4}));
  program.set_word(base + 16, isa::encode(isa::make_branch(Op::B, -4)));
  program.set_word(base + 20, hlt);

  Core oracle(program, 1, false);
  Core fast(program, 1, true);
  EXPECT_EQ(oracle.cpu.run(100), HaltReason::Halted);
  EXPECT_EQ(fast.cpu.run_fast(100), HaltReason::Halted);
  EXPECT_TRUE(states_equal(oracle.cpu, fast.cpu));
  EXPECT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
  EXPECT_GT(fast.image->invalidations(), 0u);
}

TEST(FastPathInvalidation, RawInjectorWriteAlsoDropsTheLine) {
  // The MTB SEU injector writes through MemoryMap::raw_write32, bypassing
  // the bus — the watch must still fire.
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(3 * 4, 0));
  program.set_word(program.base(), isa::encode(isa::make_branch(Op::B, -4)));
  program.set_word(program.base() + 4,
                   isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(program.base() + 8,
                   isa::encode(isa::Instruction{.op = Op::HLT}));

  Core fast(program, 1, true);
  EXPECT_EQ(fast.cpu.run_fast(10), HaltReason::InstrBudget);

  // "SEU" rewrites the self-loop into a fall-through NOP.
  fast.map.raw_write32(program.base(),
                       isa::encode(isa::Instruction{.op = Op::NOP}));
  EXPECT_GT(fast.image->invalidations(), 0u);

  Core fresh(program, 1, true);
  fresh.map.raw_write32(program.base(),
                        isa::encode(isa::Instruction{.op = Op::NOP}));
  EXPECT_EQ(fresh.cpu.run_fast(10), HaltReason::Halted);
}

TEST(FastPathInvalidation, CachedSlotsAreActuallyExecutedFromTheImage) {
  // Negative control for every parity test above: attach an image that
  // deliberately disagrees with memory (HLT cached over a self-loop in
  // flash, no write watch). If step_fast() were quietly falling back to
  // fetch+decode, this run would spin to the budget; executing the cached
  // HLT proves the hot path really reads the image.
  Program looping(mem::MapLayout::kNsFlashBase, std::vector<u8>(2 * 4, 0));
  looping.set_word(looping.base(), isa::encode(isa::make_branch(Op::B, -4)));
  looping.set_word(looping.base() + 4,
                   isa::encode(isa::Instruction{.op = Op::HLT}));

  Program halting = looping;
  halting.set_word(halting.base(), isa::encode(isa::Instruction{.op = Op::HLT}));

  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus{map};
  cpu::Executor cpu{bus};
  map.load(looping.base(), looping.bytes());
  isa::DecodedImage image(halting.base(), halting.bytes());
  cpu.attach_decoded_image(&image);
  cpu.reset(looping.base(), mem::MapLayout::kNsRamBase + 0x8000);
  EXPECT_EQ(cpu.run_fast(100), HaltReason::Halted);
  EXPECT_EQ(cpu.instructions_retired(), 1u);
}

// -- registry apps: end-to-end parity across all four methods ----------------

template <typename RunFn>
void expect_method_parity(const char* method, const apps::PreparedApp& prepared,
                          RunFn&& run_method) {
  sim::MachineConfig slow_config;
  slow_config.fast_path = false;
  sim::MachineConfig fast_config;
  fast_config.fast_path = true;

  const apps::MethodRun slow = run_method(prepared, slow_config);
  const apps::MethodRun fast = run_method(prepared, fast_config);

  EXPECT_EQ(slow.functional_ok, fast.functional_ok) << method;
  EXPECT_EQ(slow.oracle, fast.oracle) << method << ": oracle traces diverge";
  EXPECT_EQ(slow.attestation.reports, fast.attestation.reports)
      << method << ": signed report chains diverge";

  const cfa::RunMetrics& a = slow.attestation.metrics;
  const cfa::RunMetrics& b = fast.attestation.metrics;
  EXPECT_EQ(a.exec_cycles, b.exec_cycles) << method;
  EXPECT_EQ(a.attest_setup_cycles, b.attest_setup_cycles) << method;
  EXPECT_EQ(a.pause_cycles, b.pause_cycles) << method;
  EXPECT_EQ(a.final_report_cycles, b.final_report_cycles) << method;
  EXPECT_EQ(a.cflog_bytes, b.cflog_bytes) << method;
  EXPECT_EQ(a.partial_reports, b.partial_reports) << method;
  EXPECT_EQ(a.world_switches, b.world_switches) << method;
  EXPECT_EQ(a.instructions, b.instructions) << method;
  EXPECT_EQ(a.transmitted_evidence_bytes, b.transmitted_evidence_bytes)
      << method;
  EXPECT_EQ(a.halt, b.halt) << method;
  EXPECT_EQ(a.fault.has_value(), b.fault.has_value()) << method;
}

TEST(FastPathApps, AllRegistryAppsAllMethodsMatchOracle) {
  for (const auto& app : apps::app_registry()) {
    SCOPED_TRACE(app.name);
    const apps::PreparedApp prepared = apps::prepare_app(app);
    const u64 seed = 42;
    expect_method_parity("baseline", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_baseline(p, seed, c);
                         });
    expect_method_parity("naive", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_naive(p, seed, c);
                         });
    expect_method_parity("rap", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_rap(p, seed, c);
                         });
    expect_method_parity("traces", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_traces(p, seed, c);
                         });
  }
}

// -- fault campaign: verdict-for-verdict fast/slow parity --------------------

TEST(FastPathCampaign, DeviceFaultVerdictsMatchSlowPathOn200SeededPlans) {
  // 4 device injector kinds x 25 seeds x 2 apps = 200 seeded plans, each
  // attested twice (fast path on and off). Proves cache invalidation
  // interacts correctly with the SEU/glitch injectors: identical verdicts,
  // identical injection records.
  constexpr u64 kSeedsPerKind = 25;
  u64 plans = 0;
  for (const char* name : {"gps", "syringe"}) {
    const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
    for (const fault::InjectorKind kind : fault::device_injectors()) {
      for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
        fault::CampaignOptions fast_opts;
        fast_opts.fast_path = true;
        fault::CampaignOptions slow_opts;
        slow_opts.fast_path = false;

        const auto fast =
            fault::run_device_fault(prepared, kind, seed, fast_opts);
        const auto slow =
            fault::run_device_fault(prepared, kind, seed, slow_opts);
        ++plans;

        ASSERT_EQ(fast.verdict, slow.verdict)
            << name << "/" << fault::injector_name(kind) << " seed " << seed
            << ": fast=" << verify::verdict_name(fast.verdict) << " ("
            << fast.result.detail << ") slow="
            << verify::verdict_name(slow.verdict) << " ("
            << slow.result.detail << ")";
        ASSERT_EQ(fast.fault_effective, slow.fault_effective)
            << name << "/" << fault::injector_name(kind) << " seed " << seed;
        ASSERT_EQ(fast.records.size(), slow.records.size());
        for (size_t i = 0; i < fast.records.size(); ++i) {
          EXPECT_EQ(fast.records[i].detail, slow.records[i].detail);
        }
      }
    }
  }
  EXPECT_EQ(plans, 200u);
  RecordProperty("parity_plans", static_cast<int>(plans));
}

// -- observability: dispatch counters must reconcile with path parity --------

TEST(FastPathMetrics, DispatchCountersReconcileAcrossPaths) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name("gps"));

  const auto run_and_delta = [&](bool fast) {
    sim::MachineConfig config;
    config.fast_path = fast;
    const obs::Snapshot before = obs::registry().scrape();
    const apps::MethodRun run = apps::run_rap(prepared, 42, config);
    EXPECT_TRUE(run.functional_ok);
    const obs::Snapshot after = obs::registry().scrape();
    struct Delta {
      u64 instructions, fast_dispatches, oracle_dispatches;
    } d{};
    d.instructions =
        after.value("sim.instructions") - before.value("sim.instructions");
    d.fast_dispatches = after.value("sim.fast_dispatches") -
                        before.value("sim.fast_dispatches");
    d.oracle_dispatches = after.value("sim.oracle_dispatches") -
                          before.value("sim.oracle_dispatches");
    EXPECT_EQ(d.instructions, run.attestation.metrics.instructions)
        << "counter delta must equal the run's own retire count";
    EXPECT_EQ(d.instructions, d.fast_dispatches + d.oracle_dispatches)
        << "every retired instruction is exactly one dispatch";
    return d;
  };

  const auto slow = run_and_delta(/*fast=*/false);
  const auto fast = run_and_delta(/*fast=*/true);
  // Both paths retire the same instruction stream (the parity theorem the
  // rest of this file proves); the counters must say so too.
  EXPECT_EQ(slow.instructions, fast.instructions);
  // The oracle path never touches the predecoded image...
  EXPECT_EQ(slow.fast_dispatches, 0u);
  EXPECT_EQ(slow.oracle_dispatches, slow.instructions);
  // ...and the fast path retires the overwhelming majority from it (only
  // invalidated or never-predecoded slots fall back to the oracle).
  EXPECT_GT(fast.fast_dispatches, fast.oracle_dispatches);
}

}  // namespace
}  // namespace raptrack
