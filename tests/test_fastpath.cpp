// Differential correctness harness for the predecoded fast-path interpreter:
//   - lock-steps step_fast() against the step() oracle over 500 seeded
//     fuzzed programs (registers, flags, cycles, sink event streams, faults),
//     printing the first mismatching pc on divergence;
//   - re-runs every registry app under all four methods with the fast path
//     on vs off and demands identical metrics, reports, and oracle traces;
//   - regression-checks the undefined-word parity (poisoned word
//     mid-program) and write-invalidation of predecoded lines;
//   - replays the seeded device-fault campaign fast vs slow and demands
//     verdict-for-verdict parity (cache invalidation vs SEU/glitch
//     injectors).
#include <gtest/gtest.h>

#include <memory>

#include "apps/runner.hpp"
#include "common/hex.hpp"
#include "cpu/executor.hpp"
#include "fault/campaign.hpp"
#include "fuzz_programs.hpp"
#include "isa/decoded_image.hpp"
#include "mem/bus.hpp"
#include "obs/metrics.hpp"
#include "trace/dwt.hpp"
#include "trace/mtb.hpp"
#include "trace/trace_fabric.hpp"

namespace raptrack {
namespace {

using cpu::HaltReason;
using isa::Op;
using isa::Reg;

// -- shared fixtures ---------------------------------------------------------

struct Event {
  bool is_branch = false;
  Address pc = 0;           ///< instruction pc, or branch source
  Address destination = 0;  ///< branches only
  isa::BranchKind kind = isa::BranchKind::None;

  friend bool operator==(const Event&, const Event&) = default;
};

class RecordingSink final : public cpu::TraceSink {
 public:
  void on_instruction(Address pc) override {
    events.push_back({false, pc, 0, isa::BranchKind::None});
  }
  void on_branch(Address source, Address destination,
                 isa::BranchKind kind) override {
    events.push_back({true, source, destination, kind});
  }
  std::vector<Event> events;
};

/// Seeded register file: base registers point into scratch RAM so the
/// fuzzed loads/stores frequently hit backed memory.
void seed_registers(cpu::Executor& cpu, u64 reg_seed) {
  Xoshiro256 rng(reg_seed ^ 0x9e3779b97f4a7c15ull);
  for (unsigned i = 0; i < 6; ++i) {
    cpu.state().set_reg(static_cast<Reg>(i),
                        apps::kScratchBase + static_cast<u32>(rng.next_below(256)) * 4);
  }
  for (unsigned i = 6; i < 11; ++i) {
    cpu.state().set_reg(static_cast<Reg>(i), static_cast<Word>(rng.next()));
  }
}

/// A bare simulated core (no Machine): map + bus + executor + one recording
/// sink, with optional predecode over the loaded program.
struct Core {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus{map};
  cpu::Executor cpu{bus};
  RecordingSink sink;
  std::unique_ptr<isa::DecodedImage> image;

  explicit Core(const Program& program, u64 reg_seed, bool fast) {
    cpu.add_sink(&sink);
    map.load(program.base(), program.bytes());
    if (fast) {
      image = std::make_unique<isa::DecodedImage>(program.base(),
                                                  program.bytes());
      bus.watch_writes(program.base(), program.size(),
                       [img = image.get()](Address addr, u32 bytes) {
                         img->invalidate(addr, bytes);
                       });
      cpu.attach_decoded_image(image.get());
    }
    cpu.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);
    seed_registers(cpu, reg_seed);
  }
};

std::string fault_text(const std::optional<mem::Fault>& fault) {
  if (!fault) return "(none)";
  return std::string(mem::fault_name(fault->type)) + " @" + hex32(fault->pc) +
         " addr=" + hex32(fault->address) + " — " + fault->detail;
}

/// Full-state comparison; returns a description of the first difference.
::testing::AssertionResult states_equal(const cpu::Executor& oracle,
                                        const cpu::Executor& fast) {
  for (unsigned i = 0; i < isa::kNumRegs; ++i) {
    const Reg r = static_cast<Reg>(i);
    if (oracle.state().reg(r) != fast.state().reg(r)) {
      return ::testing::AssertionFailure()
             << "r" << i << ": oracle=" << hex32(oracle.state().reg(r))
             << " fast=" << hex32(fast.state().reg(r));
    }
  }
  if (!(oracle.state().flags == fast.state().flags)) {
    return ::testing::AssertionFailure() << "NZCV flags differ";
  }
  if (oracle.cycles() != fast.cycles()) {
    return ::testing::AssertionFailure() << "cycles: oracle=" << oracle.cycles()
                                         << " fast=" << fast.cycles();
  }
  if (oracle.instructions_retired() != fast.instructions_retired()) {
    return ::testing::AssertionFailure()
           << "instructions: oracle=" << oracle.instructions_retired()
           << " fast=" << fast.instructions_retired();
  }
  const auto& of = oracle.fault();
  const auto& ff = fast.fault();
  if (of.has_value() != ff.has_value() ||
      (of && (of->type != ff->type || of->address != ff->address ||
              of->pc != ff->pc || of->detail != ff->detail))) {
    return ::testing::AssertionFailure() << "fault: oracle=" << fault_text(of)
                                         << " fast=" << fault_text(ff);
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult events_equal(const std::vector<Event>& oracle,
                                        const std::vector<Event>& fast) {
  const size_t n = std::min(oracle.size(), fast.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(oracle[i] == fast[i])) {
      return ::testing::AssertionFailure()
             << "first mismatching event #" << i << " at pc "
             << hex32(oracle[i].pc) << " (oracle) vs " << hex32(fast[i].pc)
             << " (fast)";
    }
  }
  if (oracle.size() != fast.size()) {
    const Address pc = oracle.size() > fast.size() ? oracle[n].pc : fast[n].pc;
    return ::testing::AssertionFailure()
           << "event stream lengths differ (oracle " << oracle.size()
           << " vs fast " << fast.size() << "), first extra event at pc "
           << hex32(pc);
  }
  return ::testing::AssertionSuccess();
}

// -- fuzzed-program differential ---------------------------------------------

constexpr u64 kFuzzBudget = 2000;

TEST(FastPathDiff, LockStepAgainstOracleOn500FuzzedPrograms) {
  for (u64 seed = 1; seed <= 500; ++seed) {
    const Program program = testing::fuzz_program(seed);
    Core oracle(program, seed, /*fast=*/false);
    Core fast(program, seed, /*fast=*/true);

    for (u64 steps = 0; steps < kFuzzBudget; ++steps) {
      const Address at = oracle.cpu.state().pc();
      const auto oracle_reason = oracle.cpu.step();
      const auto fast_reason = fast.cpu.step_fast();
      ASSERT_EQ(oracle_reason.has_value(), fast_reason.has_value())
          << "seed " << seed << ": halt divergence, first mismatching pc "
          << hex32(at);
      ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu))
          << "seed " << seed << ": first mismatching pc " << hex32(at);
      if (oracle_reason) {
        ASSERT_EQ(*oracle_reason, *fast_reason) << "seed " << seed;
        break;
      }
    }
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events))
        << "seed " << seed;
  }
}

TEST(FastPathDiff, BatchRunFastMatchesOracleRun) {
  // Same 500 programs through the real hoisted-dispatch loop (run_fast with
  // a single sink) rather than the step-by-step wrapper.
  for (u64 seed = 1; seed <= 500; ++seed) {
    const Program program = testing::fuzz_program(seed);
    Core oracle(program, seed, /*fast=*/false);
    Core fast(program, seed, /*fast=*/true);

    const HaltReason oracle_reason = oracle.cpu.run(kFuzzBudget);
    const HaltReason fast_reason = fast.cpu.run_fast(kFuzzBudget);
    ASSERT_EQ(oracle_reason, fast_reason) << "seed " << seed;
    ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu)) << "seed " << seed;
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events))
        << "seed " << seed;
  }
}

TEST(FastPathDiff, NoSinkAndMultiSinkDispatchVariantsAgree) {
  // The per-configuration dispatch has three shapes; exercise 0 and 2 sinks
  // (the single-sink shape is covered by the batch test above).
  for (u64 seed = 501; seed <= 540; ++seed) {
    const Program program = testing::fuzz_program(seed);

    // Multi-sink: two recorders must both see the identical stream.
    Core oracle(program, seed, false);
    Core fast(program, seed, true);
    RecordingSink oracle_second, fast_second;
    oracle.cpu.add_sink(&oracle_second);
    fast.cpu.add_sink(&fast_second);
    ASSERT_EQ(oracle.cpu.run(kFuzzBudget), fast.cpu.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu)) << "seed " << seed;
    ASSERT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
    ASSERT_TRUE(events_equal(oracle_second.events, fast_second.events));

    // No-sink: state-only comparison.
    mem::MemoryMap map_a = mem::MemoryMap::make_default();
    mem::Bus bus_a{map_a};
    cpu::Executor cpu_a{bus_a};
    map_a.load(program.base(), program.bytes());
    cpu_a.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);

    mem::MemoryMap map_b = mem::MemoryMap::make_default();
    mem::Bus bus_b{map_b};
    cpu::Executor cpu_b{bus_b};
    map_b.load(program.base(), program.bytes());
    isa::DecodedImage image(program.base(), program.bytes());
    bus_b.watch_writes(program.base(), program.size(),
                       [&image](Address addr, u32 bytes) {
                         image.invalidate(addr, bytes);
                       });
    cpu_b.attach_decoded_image(&image);
    cpu_b.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);

    ASSERT_EQ(cpu_a.run(kFuzzBudget), cpu_b.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(cpu_a, cpu_b)) << "seed " << seed;
  }
}

// -- undefined-word parity (the cost-asymmetry fix) --------------------------

Program poisoned_program() {
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(6 * 4, 0));
  Address at = program.base();
  program.set_word(at, isa::encode({.op = Op::MOVI, .rd = Reg::R0, .imm = 7}));
  program.set_word(at + 4, isa::encode({.op = Op::ADDI, .rd = Reg::R0,
                                        .rn = Reg::R0, .imm = 3}));
  program.set_word(at + 8, 0xffff'ffffu);  // poisoned: does not decode
  program.set_word(at + 12, isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(at + 16, isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(at + 20, isa::encode(isa::Instruction{.op = Op::HLT}));
  return program;
}

TEST(FastPathUndefined, PoisonedWordMidProgramFaultsIdentically) {
  const Program program = poisoned_program();
  ASSERT_FALSE(isa::decode(0xffff'ffffu).has_value());

  Core oracle(program, 1, false);
  Core fast(program, 1, true);
  EXPECT_EQ(oracle.cpu.run(100), HaltReason::Fault);
  EXPECT_EQ(fast.cpu.run_fast(100), HaltReason::Fault);

  ASSERT_TRUE(oracle.cpu.fault().has_value());
  ASSERT_TRUE(fast.cpu.fault().has_value());
  EXPECT_EQ(fast.cpu.fault()->type, mem::FaultType::UndefinedInstr);
  EXPECT_EQ(fast.cpu.fault()->pc, program.base() + 8);
  EXPECT_EQ(oracle.cpu.fault()->detail, fast.cpu.fault()->detail);
  EXPECT_TRUE(states_equal(oracle.cpu, fast.cpu));
  // The poisoned word retires nothing on either path (fault precedes the
  // sink walk and the retired-instruction count).
  EXPECT_EQ(fast.cpu.instructions_retired(), 2u);
  EXPECT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
}

TEST(FastPathUndefined, PredecodeMarksPoisonedSlotInvalid) {
  const Program program = poisoned_program();
  isa::DecodedImage image(program.base(), program.bytes());
  EXPECT_EQ(image.slot(program.base()).kind, isa::SlotKind::Valid);
  EXPECT_EQ(image.slot(program.base() + 8).kind, isa::SlotKind::Undefined);
  EXPECT_EQ(image.slot(program.base() + 8).raw, 0xffff'ffffu);
}

// -- write invalidation ------------------------------------------------------

TEST(FastPathInvalidation, StoreIntoPredecodedRegionDropsTheLine) {
  // Program overwrites its own word #3 (a B .+0 self-loop) with a HLT via a
  // store, then falls through into it. Without invalidation the fast path
  // would execute the stale self-loop from the cache.
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(6 * 4, 0));
  const Address base = program.base();
  const u32 hlt = isa::encode(isa::Instruction{.op = Op::HLT});
  program.set_word(base, isa::encode({.op = Op::MOVI, .rd = Reg::R0,
                                      .imm = static_cast<i32>(hlt & 0xffff)}));
  program.set_word(base + 4,
                   isa::encode({.op = Op::MOVT, .rd = Reg::R0,
                                .imm = static_cast<i32>(hlt >> 16)}));
  // Reading PC as an operand yields pc+4, so r1 = base+12; the store then
  // targets [r1 + 4] = base+16, the self-loop's slot.
  program.set_word(base + 8, isa::encode({.op = Op::MOV, .rd = Reg::R1,
                                          .rm = Reg::PC}));
  program.set_word(base + 12, isa::encode({.op = Op::STR, .rd = Reg::R0,
                                           .rn = Reg::R1, .imm = 4}));
  program.set_word(base + 16, isa::encode(isa::make_branch(Op::B, -4)));
  program.set_word(base + 20, hlt);

  Core oracle(program, 1, false);
  Core fast(program, 1, true);
  EXPECT_EQ(oracle.cpu.run(100), HaltReason::Halted);
  EXPECT_EQ(fast.cpu.run_fast(100), HaltReason::Halted);
  EXPECT_TRUE(states_equal(oracle.cpu, fast.cpu));
  EXPECT_TRUE(events_equal(oracle.sink.events, fast.sink.events));
  EXPECT_GT(fast.image->invalidations(), 0u);
}

TEST(FastPathInvalidation, RawInjectorWriteAlsoDropsTheLine) {
  // The MTB SEU injector writes through MemoryMap::raw_write32, bypassing
  // the bus — the watch must still fire.
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(3 * 4, 0));
  program.set_word(program.base(), isa::encode(isa::make_branch(Op::B, -4)));
  program.set_word(program.base() + 4,
                   isa::encode(isa::Instruction{.op = Op::HLT}));
  program.set_word(program.base() + 8,
                   isa::encode(isa::Instruction{.op = Op::HLT}));

  Core fast(program, 1, true);
  EXPECT_EQ(fast.cpu.run_fast(10), HaltReason::InstrBudget);

  // "SEU" rewrites the self-loop into a fall-through NOP.
  fast.map.raw_write32(program.base(),
                       isa::encode(isa::Instruction{.op = Op::NOP}));
  EXPECT_GT(fast.image->invalidations(), 0u);

  Core fresh(program, 1, true);
  fresh.map.raw_write32(program.base(),
                        isa::encode(isa::Instruction{.op = Op::NOP}));
  EXPECT_EQ(fresh.cpu.run_fast(10), HaltReason::Halted);
}

TEST(FastPathInvalidation, CachedSlotsAreActuallyExecutedFromTheImage) {
  // Negative control for every parity test above: attach an image that
  // deliberately disagrees with memory (HLT cached over a self-loop in
  // flash, no write watch). If step_fast() were quietly falling back to
  // fetch+decode, this run would spin to the budget; executing the cached
  // HLT proves the hot path really reads the image.
  Program looping(mem::MapLayout::kNsFlashBase, std::vector<u8>(2 * 4, 0));
  looping.set_word(looping.base(), isa::encode(isa::make_branch(Op::B, -4)));
  looping.set_word(looping.base() + 4,
                   isa::encode(isa::Instruction{.op = Op::HLT}));

  Program halting = looping;
  halting.set_word(halting.base(), isa::encode(isa::Instruction{.op = Op::HLT}));

  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus{map};
  cpu::Executor cpu{bus};
  map.load(looping.base(), looping.bytes());
  isa::DecodedImage image(halting.base(), halting.bytes());
  cpu.attach_decoded_image(&image);
  cpu.reset(looping.base(), mem::MapLayout::kNsRamBase + 0x8000);
  EXPECT_EQ(cpu.run_fast(100), HaltReason::Halted);
  EXPECT_EQ(cpu.instructions_retired(), 1u);
}

// -- superblock fusion -------------------------------------------------------
//
// The sink-carrying fixtures above use RecordingSink (a generic TraceSink),
// which the dispatcher must observe per instruction — fuse_window() answers
// false and fusion never engages there. These tests run sinkless or through
// a real TraceFabric, the two configurations where superblocks are live.

/// Recompute the expected fused-run metadata from the image's *current* slot
/// states with the same backward pass predecode uses, and demand the live
/// array matches. After invalidate() this proves truncation is exactly
/// equivalent to a full rebuild (lengths and suffix cycle sums).
void expect_fuse_metadata_consistent(const isa::DecodedImage& image) {
  const size_t n = image.slot_count();
  std::vector<isa::FuseRun> expect(n);
  for (size_t i = n; i-- > 0;) {
    const isa::DecodedSlot& slot = image.slot(image.base() + 4 * i);
    if (slot.kind != isa::SlotKind::Valid ||
        !isa::fusible_in_superblock(slot.instr)) {
      continue;
    }
    const isa::FuseRun next = (i + 1 < n) ? expect[i + 1] : isa::FuseRun{};
    expect[i].len = next.len + 1;
    expect[i].cycles = next.cycles + slot.cost_taken;
  }
  for (size_t i = 0; i < n; ++i) {
    const isa::FuseRun& got = image.fuse_run(image.base() + 4 * i);
    ASSERT_EQ(got.len, expect[i].len) << "fuse len, slot " << i;
    ASSERT_EQ(got.cycles, expect[i].cycles) << "fuse cycles, slot " << i;
  }
}

/// Sinkless core pair (fusion engages via SinksNone) for one fuzzed program.
struct SinklessPair {
  mem::MemoryMap oracle_map = mem::MemoryMap::make_default();
  mem::Bus oracle_bus{oracle_map};
  cpu::Executor oracle{oracle_bus};
  mem::MemoryMap fast_map = mem::MemoryMap::make_default();
  mem::Bus fast_bus{fast_map};
  cpu::Executor fast{fast_bus};
  std::unique_ptr<isa::DecodedImage> image;

  SinklessPair(const Program& program, u64 reg_seed) {
    oracle_map.load(program.base(), program.bytes());
    oracle.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);
    seed_registers(oracle, reg_seed);

    fast_map.load(program.base(), program.bytes());
    image = std::make_unique<isa::DecodedImage>(program.base(),
                                                program.bytes());
    fast_bus.watch_writes(program.base(), program.size(),
                          [img = image.get()](Address addr, u32 bytes) {
                            img->invalidate(addr, bytes);
                          });
    fast.attach_decoded_image(image.get());
    fast.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);
    seed_registers(fast, reg_seed);
  }
};

TEST(Superblock, SinklessFuzzedProgramsMatchOracleAndActuallyFuse) {
  u64 total_fused = 0;
  for (u64 seed = 1; seed <= 300; ++seed) {
    const Program program = testing::fuzz_program(seed);
    SinklessPair pair(program, seed);
    ASSERT_EQ(pair.oracle.run(kFuzzBudget), pair.fast.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(pair.oracle, pair.fast)) << "seed " << seed;
    expect_fuse_metadata_consistent(*pair.image);
    total_fused += pair.fast.fused_dispatches();
  }
  // Engagement check: across the corpus a meaningful number of retirements
  // must have gone through fused windows, or this test proves nothing. The
  // fuzz mix is deliberately branch/fault-heavy, so runs of >= 2 fusible
  // ALU ops are a minority of retirements (~3.5k of them across 300 seeds).
  EXPECT_GT(total_fused, 1'000u);
}

/// Fuzzed self-patching program: a 3-instruction fused header materialises a
/// patch word, a per-slot STR plants it at a random slot inside the long
/// fused ALU run that follows, and execution then enters the truncated run
/// and must fall back per-slot at the patched word — which is randomly a
/// HLT (halts), NOP (falls through into the rest of the run), B .-4 (spins
/// to the budget), or an undecodable word (UndefinedInstr fault).
Program self_patching_program(u64 seed, u32 words) {
  Xoshiro256 rng(seed ^ 0xa02bdbf7bb3c0a75ull);
  Program program(mem::MapLayout::kNsFlashBase, std::vector<u8>(words * 4, 0));
  const Address base = program.base();

  const u32 patches[] = {
      isa::encode(isa::Instruction{.op = Op::HLT}),
      isa::encode(isa::Instruction{.op = Op::NOP}),
      isa::encode(isa::make_branch(Op::B, -4)),
      0xffff'ffffu,  // does not decode
  };
  const u32 patch = patches[rng.next_below(std::size(patches))];
  const u32 target = 5 + static_cast<u32>(rng.next_below(words - 7));

  program.set_word(base, isa::encode({.op = Op::MOVI, .rd = Reg::R0,
                                      .imm = static_cast<i32>(patch & 0xffff)}));
  program.set_word(base + 4, isa::encode({.op = Op::MOVT, .rd = Reg::R0,
                                          .imm = static_cast<i32>(patch >> 16)}));
  // r1 = pc + 4 = base + 12; STR [r1, 4*target - 12] patches slot `target`.
  program.set_word(base + 8, isa::encode({.op = Op::MOV, .rd = Reg::R1,
                                          .rm = Reg::PC}));
  program.set_word(base + 12,
                   isa::encode({.op = Op::STR, .rd = Reg::R0, .rn = Reg::R1,
                                .imm = static_cast<i32>(4 * target - 12)}));
  // Slots 4 .. words-2: one maximal fused ALU run crossing `target`.
  const Op alu[] = {Op::ADDI, Op::SUBI, Op::ANDI, Op::ORRI, Op::EORI,
                    Op::MOVI, Op::MOV,  Op::ADD,  Op::SUB,  Op::EOR};
  for (u32 i = 4; i + 1 < words; ++i) {
    isa::Instruction in;
    in.op = alu[rng.next_below(std::size(alu))];
    in.rd = static_cast<Reg>(2 + rng.next_below(8));  // R2..R9
    in.rn = static_cast<Reg>(2 + rng.next_below(8));
    in.rm = static_cast<Reg>(2 + rng.next_below(8));
    in.set_flags = rng.chance(1, 2);
    in.imm = static_cast<i32>(rng.next_below(256));
    program.set_word(base + 4 * i, isa::encode(in));
  }
  program.set_word(base + 4 * (words - 1),
                   isa::encode(isa::Instruction{.op = Op::HLT}));
  return program;
}

TEST(Superblock, FuzzedSelfModifyingWriteInsideFusedRunFallsBackLosslessly) {
  for (u64 seed = 1; seed <= 200; ++seed) {
    const Program program = self_patching_program(seed, /*words=*/40);
    SinklessPair pair(program, seed);
    ASSERT_EQ(pair.oracle.run(500), pair.fast.run_fast(500))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(pair.oracle, pair.fast)) << "seed " << seed;
    // Every seed must (a) have fused at least the header run, (b) have
    // invalidated the patched slot, and (c) leave truncated metadata that
    // matches a from-scratch rebuild.
    EXPECT_GT(pair.fast.fused_dispatches(), 0u) << "seed " << seed;
    EXPECT_GT(pair.image->invalidations(), 0u) << "seed " << seed;
    expect_fuse_metadata_consistent(*pair.image);
  }
}

TEST(Superblock, RandomInvalidationsKeepFuseMetadataRebuildExact) {
  for (u64 seed = 1; seed <= 100; ++seed) {
    const Program program = testing::fuzz_program(seed);
    isa::DecodedImage image(program.base(), program.bytes());
    Xoshiro256 rng(seed * 0x2545f4914f6cdd1dull + 1);
    for (int round = 0; round < 8; ++round) {
      const Address at = program.base() - 8 +
                         static_cast<Address>(rng.next_below(program.size() + 16));
      image.invalidate(at, 1 + static_cast<u32>(rng.next_below(16)));
      expect_fuse_metadata_consistent(image);
    }
  }
}

TEST(Superblock, DisabledSuperblocksPublishNoFuseMetadata) {
  const Program program = testing::fuzz_program(7);
  isa::DecodedImage fused(program.base(), program.bytes());
  isa::DecodedImage plain(program.base(), program.bytes(), {},
                          /*superblocks=*/false);
  EXPECT_NE(fused.fuse_begin(), nullptr);
  EXPECT_EQ(plain.fuse_begin(), nullptr);
  // And invalidate() on the plain image must not touch fuse state.
  plain.invalidate(program.base() + 8, 4);
  EXPECT_EQ(plain.fuse_begin(), nullptr);
}

/// Core wired to a real TraceFabric (MTB in always-on mode over a small
/// wrap-prone buffer + DWT), the configuration where the fast path defers
/// MTB packet emission and fuses through DWT-inert windows.
struct FabricCore {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus{map};
  cpu::Executor cpu{bus};
  trace::Mtb mtb{map, mem::MapLayout::kMtbSramBase, 64};
  trace::Dwt dwt{mtb};
  trace::TraceFabric fabric{dwt, mtb};
  std::unique_ptr<isa::DecodedImage> image;

  FabricCore(const Program& program, u64 reg_seed, bool fast) {
    mtb.set_enabled(true);
    mtb.set_tstart_enable(true);
    cpu.add_sink(&fabric);
    map.load(program.base(), program.bytes());
    if (fast) {
      image = std::make_unique<isa::DecodedImage>(program.base(),
                                                  program.bytes());
      bus.watch_writes(program.base(), program.size(),
                       [img = image.get()](Address addr, u32 bytes) {
                         img->invalidate(addr, bytes);
                       });
      cpu.attach_decoded_image(image.get());
    }
    cpu.reset(program.base(), mem::MapLayout::kNsRamBase + 0x8000);
    seed_registers(cpu, reg_seed);
  }
};

TEST(Superblock, DeferredMtbEmissionIsByteIdenticalToEager) {
  // The eager reference is the oracle run (per-step sink dispatch writes
  // each packet straight to SRAM); the fast run batches emission in the
  // deferral ring and flushes at window/drain boundaries. The paper's
  // attestation evidence is the raw MTB SRAM content, so the comparison is
  // at the byte level, wrap and A-bits included.
  u64 total_fused = 0;
  u64 total_packets = 0;
  for (u64 seed = 1; seed <= 150; ++seed) {
    const Program program = testing::fuzz_program(seed);
    FabricCore oracle(program, seed, /*fast=*/false);
    FabricCore fast(program, seed, /*fast=*/true);

    ASSERT_EQ(oracle.cpu.run(kFuzzBudget), fast.cpu.run_fast(kFuzzBudget))
        << "seed " << seed;
    ASSERT_TRUE(states_equal(oracle.cpu, fast.cpu)) << "seed " << seed;

    ASSERT_EQ(oracle.mtb.position(), fast.mtb.position()) << "seed " << seed;
    ASSERT_EQ(oracle.mtb.wrapped(), fast.mtb.wrapped()) << "seed " << seed;
    ASSERT_EQ(oracle.mtb.total_bytes_written(), fast.mtb.total_bytes_written())
        << "seed " << seed;
    for (u32 offset = 0; offset < 64; offset += 4) {
      ASSERT_EQ(
          oracle.map.raw_read32(mem::MapLayout::kMtbSramBase + offset),
          fast.map.raw_read32(mem::MapLayout::kMtbSramBase + offset))
          << "seed " << seed << ": MTB SRAM word at +" << offset;
    }
    total_fused += fast.cpu.fused_dispatches();
    total_packets += oracle.mtb.packets_recorded();
  }
  EXPECT_GT(total_fused, 1'000u);    // fusion engaged through the fabric
  EXPECT_GT(total_packets, 1'000u);  // and the corpus actually branched
}

// -- registry apps: end-to-end parity across all four methods ----------------

template <typename RunFn>
void expect_method_parity(const char* method, const apps::PreparedApp& prepared,
                          RunFn&& run_method) {
  sim::MachineConfig slow_config;
  slow_config.fast_path = false;
  sim::MachineConfig fast_config;
  fast_config.fast_path = true;

  const apps::MethodRun slow = run_method(prepared, slow_config);
  const apps::MethodRun fast = run_method(prepared, fast_config);

  EXPECT_EQ(slow.functional_ok, fast.functional_ok) << method;
  EXPECT_EQ(slow.oracle, fast.oracle) << method << ": oracle traces diverge";
  EXPECT_EQ(slow.attestation.reports, fast.attestation.reports)
      << method << ": signed report chains diverge";

  const cfa::RunMetrics& a = slow.attestation.metrics;
  const cfa::RunMetrics& b = fast.attestation.metrics;
  EXPECT_EQ(a.exec_cycles, b.exec_cycles) << method;
  EXPECT_EQ(a.attest_setup_cycles, b.attest_setup_cycles) << method;
  EXPECT_EQ(a.pause_cycles, b.pause_cycles) << method;
  EXPECT_EQ(a.final_report_cycles, b.final_report_cycles) << method;
  EXPECT_EQ(a.cflog_bytes, b.cflog_bytes) << method;
  EXPECT_EQ(a.partial_reports, b.partial_reports) << method;
  EXPECT_EQ(a.world_switches, b.world_switches) << method;
  EXPECT_EQ(a.instructions, b.instructions) << method;
  EXPECT_EQ(a.transmitted_evidence_bytes, b.transmitted_evidence_bytes)
      << method;
  EXPECT_EQ(a.halt, b.halt) << method;
  EXPECT_EQ(a.fault.has_value(), b.fault.has_value()) << method;
}

TEST(FastPathApps, AllRegistryAppsAllMethodsMatchOracle) {
  for (const auto& app : apps::app_registry()) {
    SCOPED_TRACE(app.name);
    const apps::PreparedApp prepared = apps::prepare_app(app);
    const u64 seed = 42;
    expect_method_parity("baseline", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_baseline(p, seed, c);
                         });
    expect_method_parity("naive", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_naive(p, seed, c);
                         });
    expect_method_parity("rap", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_rap(p, seed, c);
                         });
    expect_method_parity("traces", prepared,
                         [&](const apps::PreparedApp& p, const sim::MachineConfig& c) {
                           return apps::run_traces(p, seed, c);
                         });
  }
}

// -- fault campaign: verdict-for-verdict fast/slow parity --------------------

TEST(FastPathCampaign, DeviceFaultVerdictsMatchSlowPathOn200SeededPlans) {
  // 4 device injector kinds x 25 seeds x 2 apps = 200 seeded plans, each
  // attested twice (fast path on and off). Proves cache invalidation
  // interacts correctly with the SEU/glitch injectors: identical verdicts,
  // identical injection records.
  constexpr u64 kSeedsPerKind = 25;
  u64 plans = 0;
  for (const char* name : {"gps", "syringe"}) {
    const apps::PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
    for (const fault::InjectorKind kind : fault::device_injectors()) {
      for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
        fault::CampaignOptions fast_opts;
        fast_opts.fast_path = true;
        fault::CampaignOptions slow_opts;
        slow_opts.fast_path = false;

        const auto fast =
            fault::run_device_fault(prepared, kind, seed, fast_opts);
        const auto slow =
            fault::run_device_fault(prepared, kind, seed, slow_opts);
        ++plans;

        ASSERT_EQ(fast.verdict, slow.verdict)
            << name << "/" << fault::injector_name(kind) << " seed " << seed
            << ": fast=" << verify::verdict_name(fast.verdict) << " ("
            << fast.result.detail << ") slow="
            << verify::verdict_name(slow.verdict) << " ("
            << slow.result.detail << ")";
        ASSERT_EQ(fast.fault_effective, slow.fault_effective)
            << name << "/" << fault::injector_name(kind) << " seed " << seed;
        ASSERT_EQ(fast.records.size(), slow.records.size());
        for (size_t i = 0; i < fast.records.size(); ++i) {
          EXPECT_EQ(fast.records[i].detail, slow.records[i].detail);
        }
      }
    }
  }
  EXPECT_EQ(plans, 200u);
  RecordProperty("parity_plans", static_cast<int>(plans));
}

// -- observability: dispatch counters must reconcile with path parity --------

TEST(FastPathMetrics, DispatchCountersReconcileAcrossPaths) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  const apps::PreparedApp prepared =
      apps::prepare_app(apps::app_by_name("gps"));

  const auto run_and_delta = [&](bool fast) {
    sim::MachineConfig config;
    config.fast_path = fast;
    const obs::Snapshot before = obs::registry().scrape();
    const apps::MethodRun run = apps::run_rap(prepared, 42, config);
    EXPECT_TRUE(run.functional_ok);
    const obs::Snapshot after = obs::registry().scrape();
    struct Delta {
      u64 instructions, fast_dispatches, oracle_dispatches;
    } d{};
    d.instructions =
        after.value("sim.instructions") - before.value("sim.instructions");
    d.fast_dispatches = after.value("sim.fast_dispatches") -
                        before.value("sim.fast_dispatches");
    d.oracle_dispatches = after.value("sim.oracle_dispatches") -
                          before.value("sim.oracle_dispatches");
    EXPECT_EQ(d.instructions, run.attestation.metrics.instructions)
        << "counter delta must equal the run's own retire count";
    EXPECT_EQ(d.instructions, d.fast_dispatches + d.oracle_dispatches)
        << "every retired instruction is exactly one dispatch";
    return d;
  };

  const auto slow = run_and_delta(/*fast=*/false);
  const auto fast = run_and_delta(/*fast=*/true);
  // Both paths retire the same instruction stream (the parity theorem the
  // rest of this file proves); the counters must say so too.
  EXPECT_EQ(slow.instructions, fast.instructions);
  // The oracle path never touches the predecoded image...
  EXPECT_EQ(slow.fast_dispatches, 0u);
  EXPECT_EQ(slow.oracle_dispatches, slow.instructions);
  // ...and the fast path retires the overwhelming majority from it (only
  // invalidated or never-predecoded slots fall back to the oracle).
  EXPECT_GT(fast.fast_dispatches, fast.oracle_dispatches);
}

}  // namespace
}  // namespace raptrack
