// Focused tests for the Verifier's parse search: the silent-rejoin
// attribution ambiguity, the benign-first two-pass semantics, the
// direction-selection analysis in the rewriter that keeps recursion
// parseable, and the checker mode (scripted replay).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cfa/provers.hpp"
#include "gen_corpus.hpp"
#include "rewrite/rap_rewriter.hpp"
#include "sim/machine.hpp"
#include "verify/replayer.hpp"

namespace raptrack::verify {
namespace {

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

struct RapRun {
  rewrite::RewriteResult rewritten;
  ReplayInputs inputs;
  std::vector<trace::OracleEvent> oracle;
};

RapRun run_rap(const Built& b, u32 r2_seed = 0) {
  RapRun out;
  out.rewritten = rewrite::rewrite_for_rap_track(b.program, b.entry,
                                                 b.program.base(), b.code_end);
  sim::Machine machine(sim::MachineConfig{.mtb_buffer_bytes = 1 << 20});
  machine.load_program(out.rewritten.program);
  machine.dwt().configure_rap_track(
      out.rewritten.manifest.mtbar_base, out.rewritten.manifest.mtbar_limit,
      out.rewritten.manifest.mtbdr_base, out.rewritten.manifest.mtbdr_limit);
  machine.mtb().set_enabled(true);
  std::vector<u32>& loops = out.inputs.loop_values;
  machine.monitor().register_service(
      tz::Service::kRapLogLoopCondition, [&](cpu::CpuState& state) -> Cycles {
        const auto* veneer =
            out.rewritten.manifest.veneer_at_svc(state.pc() - 4);
        loops.push_back(state.reg(veneer->loop.iterator));
        return 1;
      });
  machine.reset_cpu(b.entry);
  machine.cpu().state().set_reg(isa::Reg::R2, static_cast<Word>(r2_seed));
  EXPECT_EQ(machine.run(1'000'000), cpu::HaltReason::Halted);
  out.inputs.packets = machine.mtb().read_log();
  out.oracle = machine.oracle().events();
  return out;
}

// The canonical silent-rejoin program: a leaf helper with an if/else whose
// arms both end in BX LR, called twice back to back. The CF_Log cannot
// attribute the single taken-packet to a specific call.
constexpr const char* kSilentRejoin = R"(
_start:
    li r4, =0x20201000
    movi r0, #5          ; first call: branch NOT taken (0 stored)
    bl classify
    str r0, [r4, #0]
    movi r0, #20         ; second call: branch taken (1 stored)
    bl classify
    str r0, [r4, #4]
    hlt
classify:                ; r0 -> 1 if r0 > 9 else 0
    cmp r0, #9
    bgt big
    movi r0, #0
    bx lr
big:
    movi r0, #1
    bx lr
__code_end:
)";

TEST(ReplaySearch, SilentRejoinProducesAConsistentBenignParse) {
  const Built b = build(kSilentRejoin);
  const RapRun run = run_rap(b);
  // Exactly one packet from the bgt slot (the second call took it).
  ASSERT_EQ(run.inputs.packets.size(), 1u);

  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_TRUE(result.findings.empty());
  // The parse may attribute the packet to either call (the log genuinely
  // does not distinguish), but it must contain the same edge set…
  EXPECT_EQ(result.events.size(), run.oracle.size());
  // …and the true path must also be an accepted parse.
  const ReplayResult checked = replayer.check_path(run.oracle, run.inputs);
  EXPECT_TRUE(checked.complete) << checked.failure;
  EXPECT_EQ(checked.events, run.oracle);
}

TEST(ReplaySearch, CheckerModeRejectsAWrongScript) {
  const Built b = build(kSilentRejoin);
  const RapRun run = run_rap(b);

  // Corrupt the script: claim the program halted after the first call.
  auto wrong = run.oracle;
  wrong.resize(wrong.size() / 2);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult checked = replayer.check_path(wrong, run.inputs);
  EXPECT_FALSE(checked.complete);
}

// Recursion parseability: the rewriter's silent-rejoin analysis must flip
// the base-case conditional of a recursive function to not-taken logging
// (the taken path immediately crosses the logged POP return).
TEST(ReplaySearch, RecursionBaseCaseUsesDecidableDirection) {
  const Built b = build(R"(
_start:
    movi r0, #9
    bl tri
    hlt
tri:                      ; triangular(r0), recursive
    push {r4, lr}
    cmp r0, #1
    ble tri_base
    mov r4, r0
    sub r0, r4, #1
    bl tri
    add r0, r0, r4
    pop {r4, pc}
tri_base:
    pop {r4, pc}
__code_end:
  )");
  const auto rewritten = rewrite::rewrite_for_rap_track(
      b.program, b.entry, b.program.base(), b.code_end);
  const Address ble_site = *b.program.symbol("tri") + 8;
  const auto* slot = rewritten.manifest.slot_for_site(ble_site);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->kind, rewrite::SlotKind::CondNotTaken);

  // The reconstruction is exact (no ambiguity left to search through).
  const RapRun run = run_rap(b);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_EQ(result.events, run.oracle);
}

// Two-pass semantics: a benign run whose greedy parse would raise a
// spurious ROP finding must still verify clean (the strict pass finds the
// benign parse); a genuinely malicious log must still be convicted.
TEST(ReplaySearch, BenignFirstSearchAvoidsSpuriousFindings) {
  // Recursive shape where a wrong greedy attribution leads to a shadow-stack
  // mismatch downstream.
  const Built b = build(R"(
_start:
    movi r0, #6
    bl fib
    hlt
fib:
    push {r4, r5, lr}
    cmp r0, #2
    blt base
    mov r4, r0
    sub r0, r4, #1
    bl fib
    mov r5, r0
    sub r0, r4, #2
    bl fib
    add r0, r5, r0
    pop {r4, r5, pc}
base:
    pop {r4, r5, pc}
__code_end:
  )");
  const RapRun run = run_rap(b);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.events, run.oracle);
}

TEST(ReplaySearch, MaliciousEvidenceStillConvicted) {
  const Built b = build(R"(
_start:
    bl fn
    hlt
gadget:
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  RapRun run = run_rap(b);
  ASSERT_EQ(run.inputs.packets.size(), 1u);
  run.inputs.packets[0].destination = *b.program.symbol("gadget");

  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  // No benign parse exists (the packet's destination is the gadget), so the
  // lenient pass reports the ROP.
  EXPECT_TRUE(result.complete) << result.failure;
  ASSERT_FALSE(result.findings.empty());
  EXPECT_NE(result.findings[0].description.find("ROP"), std::string::npos);
}

TEST(ReplaySearch, DeepRecursionParsesQuickly) {
  // fib(14): ~1200 calls. Without direction selection + memoized search
  // this blew past 100k backtracks; now it must parse near-instantly.
  const Built b = build(R"(
_start:
    movi r0, #14
    bl fib
    hlt
fib:
    push {r4, r5, lr}
    cmp r0, #2
    blt base
    mov r4, r0
    sub r0, r4, #1
    bl fib
    mov r5, r0
    sub r0, r4, #2
    bl fib
    add r0, r5, r0
    pop {r4, r5, pc}
base:
    pop {r4, r5, pc}
__code_end:
  )");
  const RapRun run = run_rap(b);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_EQ(result.events, run.oracle);
  // The walk should be essentially linear in the path length.
  EXPECT_LT(result.steps, run.oracle.size() * 40 + 1000);
}

TEST(ReplaySearch, AmbiguousLoopReentryStillParses) {
  // An outer construct that re-enters an if/else region through unlogged
  // edges from both directions: neither direction is decidable, so the
  // backtracking search must cover it.
  const Built b = build(R"(
_start:
    li r4, =0x20201000
    movi r5, #0
    movi r6, #0
again:
    and r0, r6, r7       ; r7 unknown to the verifier -> undecidable flags
    bl classify
    add r5, r5, r0
    addi r6, r6, #1
    cmp r6, #6
    blt again
    str r5, [r4]
    hlt
classify:
    cmp r0, #0
    bne nonzero
    movi r0, #3
    bx lr
nonzero:
    movi r0, #4
    bx lr
__code_end:
  )");
  const RapRun run = run_rap(b);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.events.size(), run.oracle.size());
  const ReplayResult checked = replayer.check_path(run.oracle, run.inputs);
  EXPECT_TRUE(checked.complete) << checked.failure;
}

// Losslessness over the generative checkpoint-dense corpus (gen_corpus.hpp):
// one representative per (nesting depth x alarm-loop shape). Every synthesized
// program must parse completely with no findings, reconstruct the oracle's
// edge multiset, and accept the true path in checker mode — the same
// contract the hand-written shapes above pin, now over the grid the memo
// differential fuzzes.
TEST(ReplaySearch, GeneratedCorpusSamplesStayLossless) {
  for (const int depth : {1, 2, 3}) {
    for (const int shape : {0, 1, 2}) {
      const gen::GenParams p{.depth = depth,
                             .alarm_every = 4,
                             .loop_shape = shape,
                             .seed = static_cast<u64>(depth + shape)};
      const std::string name = gen::corpus_name(p);
      const Built b = build(gen::corpus_source(p));
      const RapRun run = run_rap(b);
      PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
      replayer.set_rap_manifest(&run.rewritten.manifest);
      const ReplayResult result = replayer.replay(run.inputs);
      EXPECT_TRUE(result.complete) << name << ": " << result.failure;
      EXPECT_TRUE(result.findings.empty()) << name;
      EXPECT_EQ(result.events.size(), run.oracle.size()) << name;
      const ReplayResult checked = replayer.check_path(run.oracle, run.inputs);
      EXPECT_TRUE(checked.complete) << name << ": " << checked.failure;
      EXPECT_EQ(checked.events, run.oracle) << name;
    }
  }
}

}  // namespace
}  // namespace raptrack::verify
