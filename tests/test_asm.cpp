// Unit tests: the two-pass assembler — labels, directives, operand forms,
// pseudo-ops, error reporting — and the disassembler round trip.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/instruction.hpp"

namespace raptrack {
namespace {

using isa::Cond;
using isa::Op;
using isa::Reg;

Program asm_at(std::string_view src, Address base = 0x0020'0000) {
  return assemble(src, base);
}

TEST(Assembler, BasicInstructions) {
  const Program p = asm_at(R"(
    nop
    movi r1, #0x1234
    add r2, r1, r1
    hlt
  )");
  ASSERT_EQ(p.size(), 16u);
  EXPECT_EQ(p.instruction_at(p.base())->op, Op::NOP);
  const auto movi = p.instruction_at(p.base() + 4);
  EXPECT_EQ(movi->op, Op::MOVI);
  EXPECT_EQ(movi->rd, Reg::R1);
  EXPECT_EQ(movi->imm, 0x1234);
  EXPECT_EQ(p.instruction_at(p.base() + 8)->op, Op::ADD);
  EXPECT_EQ(p.instruction_at(p.base() + 12)->op, Op::HLT);
}

TEST(Assembler, ImmediateFormAutoselection) {
  const Program p = asm_at(R"(
    add r1, r2, #5
    sub r1, r2, #-5
    cmp r3, #10
    and r4, r4, #0xff
    lsl r5, r5, #2
    mov r6, #100
  )");
  EXPECT_EQ(p.instruction_at(p.base() + 0)->op, Op::ADDI);
  EXPECT_EQ(p.instruction_at(p.base() + 4)->op, Op::SUBI);
  EXPECT_EQ(p.instruction_at(p.base() + 4)->imm, -5);
  EXPECT_EQ(p.instruction_at(p.base() + 8)->op, Op::CMPI);
  EXPECT_EQ(p.instruction_at(p.base() + 12)->op, Op::ANDI);
  EXPECT_EQ(p.instruction_at(p.base() + 16)->op, Op::LSLI);
  EXPECT_EQ(p.instruction_at(p.base() + 20)->op, Op::MOVI);
}

TEST(Assembler, FlagSettingSuffix) {
  const Program p = asm_at("adds r1, r2, r3\nsubs r1, r1, #1\n");
  EXPECT_TRUE(p.instruction_at(p.base())->set_flags);
  EXPECT_TRUE(p.instruction_at(p.base() + 4)->set_flags);
}

TEST(Assembler, ConditionalBranchSuffixes) {
  const Program p = asm_at(R"(
top:
    beq top
    bne top
    bls top
    bge top
    b top
    bl top
  )");
  EXPECT_EQ(p.instruction_at(p.base() + 0)->cond, Cond::EQ);
  EXPECT_EQ(p.instruction_at(p.base() + 4)->cond, Cond::NE);
  EXPECT_EQ(p.instruction_at(p.base() + 8)->cond, Cond::LS);
  EXPECT_EQ(p.instruction_at(p.base() + 12)->cond, Cond::GE);
  EXPECT_EQ(p.instruction_at(p.base() + 16)->op, Op::B);
  EXPECT_EQ(p.instruction_at(p.base() + 20)->op, Op::BL);
}

TEST(Assembler, BranchTargetsResolveForwardAndBackward) {
  const Program p = asm_at(R"(
start:
    b forward
    nop
forward:
    b start
  )");
  const auto fwd = p.instruction_at(p.base());
  EXPECT_EQ(isa::branch_target(*fwd, p.base()), p.base() + 8);
  const auto back = p.instruction_at(p.base() + 8);
  EXPECT_EQ(isa::branch_target(*back, p.base() + 8), p.base());
}

TEST(Assembler, MemoryAddressingForms) {
  const Program p = asm_at(R"(
    ldr r0, [r1]
    ldr r0, [r1, #8]
    ldr r0, [r1, #-8]
    str r0, [r1, r2, lsl #2]
    ldr pc, [r3, r4, lsl #2]
    ldrb r0, [r1, #1]
    strh r0, [r1, #2]
  )");
  EXPECT_EQ(p.instruction_at(p.base() + 0)->imm, 0);
  EXPECT_EQ(p.instruction_at(p.base() + 4)->imm, 8);
  EXPECT_EQ(p.instruction_at(p.base() + 8)->imm, -8);
  const auto strr = p.instruction_at(p.base() + 12);
  EXPECT_EQ(strr->op, Op::STRR);
  EXPECT_EQ(strr->shift, 2);
  const auto ldrr_pc = p.instruction_at(p.base() + 16);
  EXPECT_EQ(ldrr_pc->op, Op::LDRR);
  EXPECT_EQ(ldrr_pc->rd, Reg::PC);
  EXPECT_EQ(p.instruction_at(p.base() + 20)->op, Op::LDRB);
  EXPECT_EQ(p.instruction_at(p.base() + 24)->op, Op::STRH);
}

TEST(Assembler, RegisterLists) {
  const Program p = asm_at("push {r4-r7, lr}\npop {r4-r7, pc}\n");
  EXPECT_EQ(p.instruction_at(p.base())->reg_list, 0x40f0);
  EXPECT_EQ(p.instruction_at(p.base() + 4)->reg_list, 0x80f0);
}

TEST(Assembler, LiPseudoExpandsToMoviMovt) {
  const Program p = asm_at(R"(
.equ TARGET, 0x20201234
    li r5, =TARGET
    hlt
  )");
  const auto movi = p.instruction_at(p.base());
  const auto movt = p.instruction_at(p.base() + 4);
  EXPECT_EQ(movi->op, Op::MOVI);
  EXPECT_EQ(movi->imm, 0x1234);
  EXPECT_EQ(movt->op, Op::MOVT);
  EXPECT_EQ(movt->imm, 0x2020);
}

TEST(Assembler, DirectivesAndSymbols) {
  const Program p = asm_at(R"(
    b entry
entry:
    hlt
.align 16
table:
    .word entry, 0xcafef00d
    .word table
msg:
    .asciz "hi"
buf:
    .space 8
end:
  )");
  const Address table = *p.symbol("table");
  EXPECT_EQ(table % 16, 0u);
  EXPECT_EQ(p.word_at(table), *p.symbol("entry"));
  EXPECT_EQ(p.word_at(table + 4), 0xcafef00d);
  EXPECT_EQ(p.word_at(table + 8), table);
  const Address msg = *p.symbol("msg");
  EXPECT_EQ(p.bytes()[msg - p.base()], 'h');
  EXPECT_EQ(p.bytes()[msg - p.base() + 2], '\0');
  EXPECT_EQ(*p.symbol("end") - *p.symbol("buf"), 8u);
}

TEST(Assembler, CharLiteralsAndExpressions) {
  const Program p = asm_at(R"(
.equ BASE, 0x100
    cmp r0, #'A'
    movi r1, #BASE+4
    movi r2, #BASE-0x10
  )");
  EXPECT_EQ(p.instruction_at(p.base())->imm, 'A');
  EXPECT_EQ(p.instruction_at(p.base() + 4)->imm, 0x104);
  EXPECT_EQ(p.instruction_at(p.base() + 8)->imm, 0xf0);
}

TEST(Assembler, CommentsAreIgnored) {
  const Program p = asm_at(R"(
    nop        ; semicolon comment
    nop        @ at comment
    nop        // slash comment
  )");
  EXPECT_EQ(p.size(), 12u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    asm_at("nop\nbogus r1, r2\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("asm:2"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW(asm_at("b nowhere\n"), Error);           // undefined symbol
  EXPECT_THROW(asm_at("dup:\ndup:\n"), Error);          // duplicate label
  EXPECT_THROW(asm_at("movi r1, #0x10000\n"), Error);   // imm16 overflow
  EXPECT_THROW(asm_at("push {pc}\n"), Error);           // cannot push pc
  EXPECT_THROW(asm_at("pop {lr}\n"), Error);            // cannot pop lr
  EXPECT_THROW(asm_at("add r1, r2\n"), Error);          // operand count
  EXPECT_THROW(asm_at(".align 3\n"), Error);            // non-power-of-two
  EXPECT_THROW(assemble("nop", 0x2002), Error);         // unaligned base
}

TEST(Disassembler, ListsEveryWord) {
  const Program p = asm_at("movi r1, #7\nadd r2, r1, r1\nhlt\n.word 0xffffffff\n");
  const std::string listing = disassemble(p);
  EXPECT_NE(listing.find("movi r1, #0x7"), std::string::npos);
  EXPECT_NE(listing.find("add r2, r1, r1"), std::string::npos);
  EXPECT_NE(listing.find("hlt"), std::string::npos);
  EXPECT_NE(listing.find(".word"), std::string::npos);
}

TEST(Program, WordAccessAndAppend) {
  Program p = asm_at("nop\n");
  EXPECT_THROW(p.word_at(p.base() + 2), Error);   // unaligned
  EXPECT_THROW(p.word_at(p.base() + 4), Error);   // out of range
  const u32 words[] = {1, 2};
  const Address appended = p.append_words(words);
  EXPECT_EQ(appended, p.base() + 4);
  EXPECT_EQ(p.word_at(appended + 4), 2u);
}

}  // namespace
}  // namespace raptrack
