// Unit tests: bit utilities, checked narrowing, RNG determinism, hex format.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptrack {
namespace {

TEST(Bits, ExtractAndInsertRoundTrip) {
  const u32 word = 0xdeadbeef;
  EXPECT_EQ(bits(word, 31, 24), 0xdeu);
  EXPECT_EQ(bits(word, 23, 16), 0xadu);
  EXPECT_EQ(bits(word, 7, 0), 0xefu);
  EXPECT_EQ(bits(word, 31, 0), word);

  u32 value = 0;
  value = set_bits(value, 31, 24, 0x12);
  value = set_bits(value, 23, 16, 0x34);
  value = set_bits(value, 15, 0, 0x5678);
  EXPECT_EQ(value, 0x12345678u);
}

TEST(Bits, SetBitsMasksOverflowingField) {
  EXPECT_EQ(set_bits(0, 3, 0, 0xff), 0xfu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xfff, 12), -1);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7ff, 12), 2047);
  EXPECT_EQ(sign_extend(0x0, 12), 0);
  EXPECT_EQ(sign_extend(0xffffff, 24), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 4), 20u);
}

TEST(CheckedNarrow, AcceptsFittingValues) {
  EXPECT_EQ(checked_narrow<u8>(255), 255);
  EXPECT_EQ(checked_narrow<i8>(-128), -128);
}

TEST(CheckedNarrow, ThrowsOnOverflow) {
  EXPECT_THROW(checked_narrow<u8>(256), std::out_of_range);
  EXPECT_THROW(checked_narrow<u8>(-1), std::out_of_range);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Hex, Format32) {
  EXPECT_EQ(hex32(0x00200000), "0x0020_0000");
  EXPECT_EQ(hex32(0xffffffff), "0xffff_ffff");
}

TEST(Hex, Digest) {
  const u8 bytes[] = {0xde, 0xad, 0x00};
  EXPECT_EQ(hex_digest(bytes), "dead00");
}

}  // namespace
}  // namespace raptrack
