// Fault-injection campaign (the ISSUE's acceptance gate): seeded injectors
// spanning every transport- and device-level kind, ≥1000 faulted runs total,
// with the invariants
//   * an injector that changed the evidence NEVER yields Accept;
//   * an injector that fired nothing leaves the clean Accept intact;
//   * no mutation crashes the verifier (the whole campaign runs under
//     ASan+UBSan in the sanitize preset);
//   * clean runs still Accept with a lossless reconstruction.
#include <gtest/gtest.h>

#include <map>

#include "fault/campaign.hpp"
#include "lossless_helpers.hpp"
#include "net/endpoint.hpp"
#include "obs/metrics.hpp"
#include "verify/farm.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;
using fault::AttestedRun;
using fault::CampaignOptions;
using fault::CampaignOutcome;
using fault::InjectorKind;
using verify::Verdict;

std::string describe(const CampaignOutcome& outcome, InjectorKind kind,
                     u64 seed) {
  std::string text = std::string(fault::injector_name(kind)) + " seed " +
                     std::to_string(seed) + " -> " +
                     verify::verdict_name(outcome.verdict) + " (" +
                     outcome.result.detail + ")";
  for (const auto& record : outcome.records) {
    text += "\n  injected: " + record.detail;
  }
  return text;
}

TEST(FaultCampaign, CleanRunsAcceptWithLosslessReconstruction) {
  for (const char* name : {"gps", "temperature"}) {
    const PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
    const AttestedRun clean = fault::attest_once(prepared);
    ASSERT_TRUE(clean.functional_ok) << name;
    ASSERT_GT(clean.reports.size(), 2u) << name << ": want a multi-report chain";

    const CampaignOutcome outcome = fault::run_clean(prepared);
    EXPECT_EQ(outcome.verdict, Verdict::Accept)
        << name << ": " << outcome.result.detail;
    EXPECT_FALSE(outcome.fault_effective);
    EXPECT_TRUE(outcome.result.chain_ok);
    EXPECT_TRUE(outcome.result.gaps.empty());
    EXPECT_TRUE(raptrack::testing::rap_lossless_up_to_attribution(
        prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
        outcome.result, clean.oracle))
        << name;
  }
}

TEST(FaultCampaign, TransportInjectorsNeverYieldAccept) {
  constexpr u64 kSeedsPerKind = 40;
  u64 faulted_runs = 0;
  std::map<InjectorKind, u64> effective_by_kind;

  for (const char* name : {"gps", "temperature"}) {
    const PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
    const AttestedRun clean = fault::attest_once(prepared);
    ASSERT_GT(clean.reports.size(), 2u) << name;

    for (const InjectorKind kind : fault::transport_injectors()) {
      for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
        const CampaignOutcome outcome =
            fault::verify_mutated(prepared, clean, kind, seed);
        ++faulted_runs;
        if (outcome.wire_rejected) {
          // The flip never survived deserialization: safe by construction.
          ++effective_by_kind[kind];
          continue;
        }
        if (outcome.fault_effective) {
          ++effective_by_kind[kind];
          EXPECT_NE(outcome.verdict, Verdict::Accept)
              << name << ": " << describe(outcome, kind, seed);
          // Tamper verdicts must explain themselves for the audit trail.
          EXPECT_FALSE(outcome.result.detail.empty())
              << describe(outcome, kind, seed);
        } else {
          EXPECT_EQ(outcome.verdict, Verdict::Accept)
              << name << ": untouched chain must still verify — "
              << describe(outcome, kind, seed);
        }
      }
    }
  }

  // Every transport injector kind must have actually fired in the campaign.
  for (const InjectorKind kind : fault::transport_injectors()) {
    EXPECT_GT(effective_by_kind[kind], 0u) << fault::injector_name(kind);
  }
  EXPECT_GE(faulted_runs, 1000u);
  RecordProperty("faulted_runs", static_cast<int>(faulted_runs));
}

TEST(FaultCampaign, DeviceInjectorsNeverYieldAccept) {
  constexpr u64 kSeedsPerKind = 30;
  // syringe: has §IV-D loop veneers, so the SVC gateway faults have live
  // loop-condition calls to attack.
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("syringe"));
  std::map<InjectorKind, u64> effective_by_kind;

  for (const InjectorKind kind : fault::device_injectors()) {
    for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
      const CampaignOutcome outcome =
          fault::run_device_fault(prepared, kind, seed);
      if (outcome.fault_effective) {
        ++effective_by_kind[kind];
        EXPECT_NE(outcome.verdict, Verdict::Accept)
            << describe(outcome, kind, seed);
      } else {
        // The injector found nothing to corrupt (e.g. the targeted SVC call
        // never happened) — evidence is genuine and must still Accept.
        EXPECT_EQ(outcome.verdict, Verdict::Accept)
            << describe(outcome, kind, seed);
      }
    }
  }

  // An SEU in a live buffer and a glitched watermark always bite on this
  // workload; the SVC gateway faults depend on the seeded target landing
  // within the run's loop-condition calls, so only require that they fired
  // somewhere in the sweep.
  EXPECT_EQ(effective_by_kind[InjectorKind::MtbSramBitFlip], kSeedsPerKind);
  EXPECT_EQ(effective_by_kind[InjectorKind::MtbWatermarkGlitch],
            kSeedsPerKind);
  if (!prepared.rap.manifest.loop_veneers.empty()) {
    EXPECT_GT(effective_by_kind[InjectorKind::SvcDropLoopValue], 0u);
    EXPECT_GT(effective_by_kind[InjectorKind::SvcDoubleLoopValue], 0u);
  }
}

TEST(FaultCampaign, CampaignIsDeterministic) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared);

  const auto a = fault::verify_mutated(prepared, clean,
                                       InjectorKind::PayloadBitFlip, 7);
  const auto b = fault::verify_mutated(prepared, clean,
                                       InjectorKind::PayloadBitFlip, 7);
  EXPECT_EQ(a.verdict, b.verdict);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].detail, b.records[i].detail);
  }

  const auto c = fault::run_device_fault(prepared,
                                         InjectorKind::MtbSramBitFlip, 11);
  const auto d = fault::run_device_fault(prepared,
                                         InjectorKind::MtbSramBitFlip, 11);
  EXPECT_EQ(c.verdict, d.verdict);
  ASSERT_EQ(c.records.size(), d.records.size());
  for (size_t i = 0; i < c.records.size(); ++i) {
    EXPECT_EQ(c.records[i].detail, d.records[i].detail);
  }
}

TEST(FaultCampaign, ChainDamageProducesAuditableInconclusive) {
  // A lossy-but-honest link (drops, duplicates, reorders) is not proof of
  // attack: the verdict must be Inconclusive with gaps/notes for the audit
  // trail, never a silent Accept and never a crash.
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared);
  ASSERT_GT(clean.reports.size(), 3u);

  // Drop a middle report: a gap the resync pass must map.
  auto chain = clean.reports;
  chain.erase(chain.begin() + 1);
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.adopt_challenge(clean.chal);
  const auto result = verifier.verify(clean.chal, chain);
  EXPECT_EQ(result.verdict, Verdict::Inconclusive) << result.detail;
  ASSERT_EQ(result.gaps.size(), 1u);
  EXPECT_EQ(result.gaps[0].first_missing, 1u);
  EXPECT_EQ(result.gaps[0].missing_count, 1u);
  EXPECT_TRUE(result.authentic);

  // An exact duplicate retransmission resyncs with a note.
  auto dup = clean.reports;
  dup.insert(dup.begin() + 2, dup[1]);
  verify::Verifier verifier2(apps::demo_key());
  verifier2.expect_rap(prepared.rap.program, prepared.rap.manifest,
                       prepared.built.entry);
  verifier2.adopt_challenge(clean.chal);
  const auto dup_result = verifier2.verify(clean.chal, dup);
  EXPECT_NE(dup_result.verdict, Verdict::Accept);
  EXPECT_FALSE(dup_result.chain_notes.empty());

  // Equivocation — two *different* authentic reports claiming the same
  // sequence number — is terminal: Reject, not Inconclusive.
  auto equiv = clean.reports;
  equiv[1].payload.push_back(0x5a);
  equiv[1].sign(apps::demo_key());
  equiv.insert(equiv.begin() + 1, clean.reports[1]);
  verify::Verifier verifier3(apps::demo_key());
  verifier3.expect_rap(prepared.rap.program, prepared.rap.manifest,
                       prepared.built.entry);
  verifier3.adopt_challenge(clean.chal);
  const auto equiv_result = verifier3.verify(clean.chal, equiv);
  EXPECT_EQ(equiv_result.verdict, Verdict::Reject) << equiv_result.detail;
}

// -- observability: injected-vs-detected tallies must reconcile --------------

TEST(FaultMetricsInvariants, CampaignCountersReconcileWithVerdictTallies) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const AttestedRun clean = fault::attest_once(prepared);
  ASSERT_GT(clean.reports.size(), 2u);

  const obs::Snapshot before = obs::registry().scrape();
  u64 runs = 0, effective = 0, wire_rejected = 0;
  std::map<Verdict, u64> verdicts;
  const auto tally = [&](const CampaignOutcome& outcome) {
    ++runs;
    if (outcome.fault_effective) ++effective;
    if (outcome.wire_rejected) ++wire_rejected;
    ++verdicts[outcome.verdict];
  };

  tally(fault::run_clean(prepared));
  for (u64 seed = 1; seed <= 12; ++seed) {
    tally(fault::verify_mutated(prepared, clean, InjectorKind::WireBitFlip,
                                seed));
  }
  const obs::Snapshot after = obs::registry().scrape();
  const auto delta = [&](const char* name) {
    return after.value(name) - before.value(name);
  };
  EXPECT_EQ(delta("fault.runs"), runs);
  EXPECT_EQ(delta("fault.effective"), effective);
  EXPECT_EQ(delta("fault.wire_rejected"), wire_rejected);
  EXPECT_EQ(delta("fault.verdict.accept"), verdicts[Verdict::Accept]);
  EXPECT_EQ(delta("fault.verdict.reject"), verdicts[Verdict::Reject]);
  EXPECT_EQ(delta("fault.verdict.inconclusive"),
            verdicts[Verdict::Inconclusive]);
  // The verdict classes partition the campaign: no run escapes the tally.
  EXPECT_EQ(delta("fault.verdict.accept") + delta("fault.verdict.reject") +
                delta("fault.verdict.inconclusive"),
            delta("fault.runs"));
}

// Link-level plans: the campaign's mutating injectors applied at the
// datagram layer instead of the chain level. An adversarial prover that
// substitutes a mutated report for a genuine one (every mutating kind, at
// several seeds) must never reach Accept — the verifier endpoint drops the
// forgery at the MAC door, the gap never fills, and the session dies by
// bounded give-up instead of terminal verdict.
TEST(FaultLinkPlans, MutatedReportsOverTheLinkNeverYieldAccept) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  const CampaignOptions options;
  const AttestedRun clean = fault::attest_once(prepared, options);
  ASSERT_TRUE(clean.functional_ok);
  ASSERT_GT(clean.reports.size(), 2u);
  const auto deployment = verify::Deployment::rap(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry);
  verify::VerifyConfig config;
  config.expected_watermark = options.watermark_bytes;

  verify::VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  net::VerifierEndpoint endpoint(farm);

  u64 runs = 0, effective = 0;
  verify::DeviceId device = 9000;
  for (const InjectorKind kind : fault::mutating_transport_injectors()) {
    for (u64 seed = 1; seed <= 4; ++seed, ++device, ++runs) {
      fault::FaultPlan plan(seed);
      plan.add(kind);
      std::vector<cfa::SignedReport> chain = clean.reports;
      // Mutate one interior report; the rest of the chain stays genuine.
      std::vector<cfa::SignedReport> victim = {chain[1]};
      fault::apply_transport_faults(plan, victim);
      if (victim.empty() || victim.front() == chain[1]) {
        continue;  // this (kind, seed) fired nothing at the link level
      }
      chain[1] = victim.front();
      ++effective;

      farm.provision(device, deployment, config);
      farm.adopt_challenge(device, clean.chal);
      net::DuplexLink link(net::LinkModel{}, net::LinkModel{}, seed);
      // Short retry budget: the unfillable gap should give up fast.
      net::ProverOptions prover_options;
      prover_options.max_retries = 3;
      net::ProverEndpoint prover(device, 1, chain, prover_options, seed);
      const net::SessionOutcome outcome =
          run_session(prover, endpoint, link);

      const std::string label = std::string(fault::injector_name(kind)) +
                                " seed " + std::to_string(seed);
      EXPECT_NE(outcome.phase, net::ProverPhase::Done) << label;
      if (outcome.verdict.has_value()) {
        EXPECT_NE(outcome.verdict->verdict, Verdict::Accept) << label;
      }
      EXPECT_GT(endpoint.stats().mac_drops + endpoint.stats().decode_drops, 0u)
          << label;
      const auto info = endpoint.session_info(device, 1);
      ASSERT_TRUE(info.has_value()) << label;
      EXPECT_FALSE(info->terminal) << label;
    }
  }
  // The sweep must actually exercise forged deliveries.
  EXPECT_GE(effective, fault::mutating_transport_injectors().size());
  EXPECT_GE(runs, 4 * fault::mutating_transport_injectors().size());
}

}  // namespace
}  // namespace raptrack
