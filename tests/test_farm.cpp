// Differential harness for the parallel verifier farm: over a corpus of
// fuzzed report chains (clean, transport-damaged, replayed, forged — the
// PR-1 fault-campaign injectors), the farm must produce *byte-identical*
// VerificationResults to a serial Verifier sharing the same deployment
// cache and config — under 1 worker and under 8, for both decoded and
// zero-copy wire submissions. Plus the scheduling invariants: same-device
// FIFO order (a replayed chain must lose to its original deterministically)
// and bounded-queue progress under backpressure.
//
// Runs under the `concurrency` ctest label; the tsan preset builds it with
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include "fault/campaign.hpp"
#include "obs/metrics.hpp"
#include "verify/farm.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;
using fault::AttestedRun;
using fault::FaultPlan;
using fault::InjectorKind;
using verify::Deployment;
using verify::DeviceId;
using verify::FarmOptions;
using verify::Verdict;
using verify::VerificationResult;
using verify::VerifierFarm;
using verify::VerifyConfig;

// One fuzzed verification case: a challenge and the (possibly mutated)
// chain responding to it, against a given app's deployment.
struct Case {
  size_t app = 0;  ///< index into the fixture's deployments
  cfa::Challenge chal{};
  std::vector<cfa::SignedReport> chain;
  std::string label;
};

struct Corpus {
  std::vector<std::shared_ptr<const Deployment>> deployments;
  VerifyConfig config;
  std::vector<Case> cases;
};

// Build the fuzz corpus once: for each app, the clean attested chain plus
// every transport injector at several seeds (including chains whose MACs,
// sequence numbers, challenges, H_MEMs, payloads and framing are damaged).
const Corpus& corpus() {
  static const Corpus corpus = [] {
    Corpus out;
    const fault::CampaignOptions options;  // small MTB: multi-report chains
    out.config.expected_watermark = options.watermark_bytes;

    constexpr u64 kSeedsPerKind = 8;
    for (const char* name : {"gps", "temperature"}) {
      const PreparedApp prepared = apps::prepare_app(apps::app_by_name(name));
      const AttestedRun clean = fault::attest_once(prepared, options);
      EXPECT_TRUE(clean.functional_ok) << name;
      EXPECT_GT(clean.reports.size(), 2u) << name;

      const size_t app = out.deployments.size();
      out.deployments.push_back(Deployment::rap(
          prepared.rap.program, prepared.rap.manifest, prepared.built.entry));

      out.cases.push_back({app, clean.chal, clean.reports,
                           std::string(name) + "/clean"});
      for (const InjectorKind kind : fault::transport_injectors()) {
        for (u64 seed = 1; seed <= kSeedsPerKind; ++seed) {
          FaultPlan plan(seed);
          plan.add(kind);
          std::vector<cfa::SignedReport> chain = clean.reports;
          if (kind == InjectorKind::WireBitFlip) {
            auto survived = fault::apply_wire_fault(plan, chain);
            if (!survived.has_value()) continue;  // framing died in transit
            chain = std::move(*survived);
          } else {
            fault::apply_transport_faults(plan, chain);
          }
          out.cases.push_back({app, clean.chal, std::move(chain),
                               std::string(name) + "/" +
                                   fault::injector_name(kind) + "/" +
                                   std::to_string(seed)});
        }
      }
    }
    return out;
  }();
  return corpus;
}

// Serial ground truth for one case: a fresh single-threaded Verifier sharing
// the same deployment cache and config the farm uses.
VerificationResult serial_verdict(const Case& c) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect(corpus().deployments[c.app]);
  verifier.set_expected_watermark(corpus().config.expected_watermark);
  verifier.adopt_challenge(c.chal);
  return verifier.verify(c.chal, c.chain);
}

void expect_identical(const VerificationResult& farm,
                      const VerificationResult& serial,
                      const std::string& label) {
  EXPECT_EQ(farm.verdict, serial.verdict) << label;
  EXPECT_EQ(farm.detail, serial.detail) << label;
  EXPECT_EQ(farm.authentic, serial.authentic) << label;
  EXPECT_EQ(farm.fresh, serial.fresh) << label;
  EXPECT_EQ(farm.chain_ok, serial.chain_ok) << label;
  EXPECT_EQ(farm.memory_ok, serial.memory_ok) << label;
  EXPECT_EQ(farm.reconstruction_ok, serial.reconstruction_ok) << label;
  EXPECT_EQ(farm.policy_ok, serial.policy_ok) << label;
  EXPECT_EQ(farm.partial_reconstruction, serial.partial_reconstruction)
      << label;
  EXPECT_EQ(farm.gaps, serial.gaps) << label;
  EXPECT_EQ(farm.chain_notes, serial.chain_notes) << label;
  EXPECT_EQ(farm.replay.complete, serial.replay.complete) << label;
  EXPECT_EQ(farm.replay.failure, serial.replay.failure) << label;
  ASSERT_EQ(farm.replay.events.size(), serial.replay.events.size()) << label;
  for (size_t i = 0; i < farm.replay.events.size(); ++i) {
    EXPECT_TRUE(farm.replay.events[i] == serial.replay.events[i])
        << label << " event " << i;
  }
  ASSERT_EQ(farm.replay.findings.size(), serial.replay.findings.size())
      << label;
  for (size_t i = 0; i < farm.replay.findings.size(); ++i) {
    EXPECT_EQ(farm.replay.findings[i].description,
              serial.replay.findings[i].description)
        << label << " finding " << i;
  }
  EXPECT_TRUE(farm.inputs.packets == serial.inputs.packets) << label;
  EXPECT_EQ(farm.inputs.loop_values, serial.inputs.loop_values) << label;
}

class FarmDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(FarmDifferential, MatchesSerialOnFuzzedChains) {
  const Corpus& fuzz = corpus();
  ASSERT_GE(fuzz.cases.size(), 200u)
      << "corpus shrank below the differential coverage floor";

  VerifierFarm farm(apps::demo_key(), {.workers = GetParam(), .clamp_workers = false});
  // One device per (case, submission path): challenge histories must not
  // interfere, exactly as distinct provers' sessions don't.
  std::vector<std::future<VerificationResult>> decoded;
  std::vector<std::future<VerificationResult>> wire;
  for (size_t i = 0; i < fuzz.cases.size(); ++i) {
    const Case& c = fuzz.cases[i];
    const DeviceId dev_decoded = 2 * i;
    const DeviceId dev_wire = 2 * i + 1;
    for (const DeviceId device : {dev_decoded, dev_wire}) {
      farm.provision(device, fuzz.deployments[c.app], fuzz.config);
      farm.adopt_challenge(device, c.chal);
    }
    decoded.push_back(farm.submit(dev_decoded, c.chal, c.chain));
    wire.push_back(
        farm.submit_wire(dev_wire, c.chal, cfa::encode_report_chain(c.chain)));
  }
  farm.drain();

  size_t accepts = 0, rejects = 0, inconclusives = 0;
  for (size_t i = 0; i < fuzz.cases.size(); ++i) {
    const Case& c = fuzz.cases[i];
    const VerificationResult serial = serial_verdict(c);
    switch (serial.verdict) {
      case Verdict::Accept: ++accepts; break;
      case Verdict::Reject: ++rejects; break;
      case Verdict::Inconclusive: ++inconclusives; break;
    }
    expect_identical(decoded[i].get(), serial, c.label + " [decoded]");
    expect_identical(wire[i].get(), serial, c.label + " [wire]");
  }
  // The corpus must actually exercise the whole verdict taxonomy.
  EXPECT_GT(accepts, 0u);
  EXPECT_GT(rejects, 0u);
  EXPECT_GT(inconclusives, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workers, FarmDifferential, ::testing::Values(1, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(FarmScheduling, SameDeviceChainsSerializeInSubmissionOrder) {
  const Corpus& fuzz = corpus();
  const Case& clean = fuzz.cases.front();
  ASSERT_EQ(clean.label, "gps/clean");

  VerifierFarm farm(apps::demo_key(), {.workers = 8, .clamp_workers = false});
  // For every device: the original chain, then the same chain replayed.
  // Same-device FIFO guarantees the original always wins the challenge and
  // the replay always rejects — any ordering race would flip verdicts.
  constexpr size_t kDevices = 64;
  std::vector<std::future<VerificationResult>> first, second;
  for (DeviceId device = 0; device < kDevices; ++device) {
    farm.provision(device, fuzz.deployments[clean.app], fuzz.config);
    farm.adopt_challenge(device, clean.chal);
    first.push_back(farm.submit(device, clean.chal, clean.chain));
    second.push_back(farm.submit(device, clean.chal, clean.chain));
  }
  for (size_t i = 0; i < kDevices; ++i) {
    EXPECT_EQ(first[i].get().verdict, Verdict::Accept) << i;
    const VerificationResult replayed = second[i].get();
    EXPECT_EQ(replayed.verdict, Verdict::Reject) << i;
    EXPECT_EQ(replayed.detail, "challenge not outstanding (replay?)") << i;
  }
}

TEST(FarmScheduling, BackpressureBoundsTheQueueWithoutDeadlock) {
  const Corpus& fuzz = corpus();
  const Case& clean = fuzz.cases.front();

  // Tiny admission window: submit blocks until workers free capacity, and
  // every job must still complete.
  VerifierFarm farm(apps::demo_key(),
                    {.workers = 2, .clamp_workers = false, .queue_capacity = 2});
  constexpr size_t kJobs = 32;
  std::vector<std::future<VerificationResult>> results;
  for (size_t i = 0; i < kJobs; ++i) {
    const DeviceId device = i;
    farm.provision(device, fuzz.deployments[clean.app], fuzz.config);
    farm.adopt_challenge(device, clean.chal);
    results.push_back(farm.submit(device, clean.chal, clean.chain));
  }
  for (auto& result : results) {
    EXPECT_EQ(result.get().verdict, Verdict::Accept);
  }
}

TEST(FarmScheduling, UnknownDeviceRejectsWithoutCrashing) {
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  const VerificationResult result =
      farm.submit(/*device=*/99, cfa::Challenge{}, {}).get();
  EXPECT_EQ(result.verdict, Verdict::Reject);
  EXPECT_EQ(result.detail, "unknown device");
}

TEST(FarmScheduling, WireFramingErrorsRejectWithParserDetail) {
  const Corpus& fuzz = corpus();
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  farm.provision(0, fuzz.deployments[0], fuzz.config);
  const VerificationResult result =
      farm.submit_wire(0, cfa::Challenge{}, {'X', 'X', 'X', 'X'}).get();
  EXPECT_EQ(result.verdict, Verdict::Reject);
  EXPECT_EQ(result.detail, "chain framing: bad magic");
}

// -- observability: farm counters must reconcile with the FIFO scenario ------

TEST(FarmMetricsInvariants, CountersReconcileWithFifoScenario) {
  if (!obs::kEnabled) GTEST_SKIP() << "RAP_OBS=OFF build";
  const Corpus& fuzz = corpus();
  const Case& clean = fuzz.cases.front();
  ASSERT_EQ(clean.label, "gps/clean");

  const obs::Snapshot before = obs::registry().scrape();
  {
    VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false, .queue_capacity = 4});
    constexpr size_t kJobs = 16;
    std::vector<std::future<VerificationResult>> results;
    for (size_t i = 0; i < kJobs; ++i) {
      const DeviceId device = i;
      farm.provision(device, fuzz.deployments[clean.app], fuzz.config);
      farm.adopt_challenge(device, clean.chal);
      results.push_back(farm.submit(device, clean.chal, clean.chain));
    }
    // One wire chain with a tampered MAC (caught by the batched HMAC check)
    // and one with broken framing (caught by the zero-copy parser).
    const DeviceId tampered_dev = 100;
    farm.provision(tampered_dev, fuzz.deployments[clean.app], fuzz.config);
    farm.adopt_challenge(tampered_dev, clean.chal);
    std::vector<cfa::SignedReport> tampered = clean.chain;
    tampered.front().mac[0] ^= 0x01;
    auto bad_mac = farm.submit_wire(tampered_dev, clean.chal,
                                    cfa::encode_report_chain(tampered));
    const DeviceId garbled_dev = 101;  // provisioned, so admission parses it
    farm.provision(garbled_dev, fuzz.deployments[clean.app], fuzz.config);
    auto bad_frame = farm.submit_wire(garbled_dev, cfa::Challenge{},
                                      {'X', 'X', 'X', 'X'});
    for (auto& result : results) {
      EXPECT_EQ(result.get().verdict, Verdict::Accept);
    }
    EXPECT_EQ(bad_mac.get().verdict, Verdict::Reject);
    EXPECT_EQ(bad_frame.get().verdict, Verdict::Reject);
  }
  const obs::Snapshot after = obs::registry().scrape();
  const auto delta = [&](const char* name) {
    return after.value(name) - before.value(name);
  };
  EXPECT_EQ(delta("farm.jobs_submitted"), 18u);
  EXPECT_EQ(delta("farm.jobs_completed"), 18u);
  EXPECT_EQ(delta("farm.wire_parse_rejects"), 1u);
  EXPECT_EQ(delta("farm.hmac_batch_rejects"), 1u);
  // Every dequeued job records exactly one mailbox-wait observation. (The
  // histogram may be unregistered in the `before` snapshot if this test runs
  // first, so treat a missing sample as zero.)
  const auto wait_count = [](const obs::Snapshot& snap) {
    const obs::Sample* sample = snap.find("farm.mailbox_wait_us");
    return sample != nullptr ? sample->count : 0u;
  };
  EXPECT_EQ(wait_count(after) - wait_count(before), 18u);
  // The high-water mark is a lifetime max: it only ratchets up, and this
  // scenario pushes at least one job through the bounded queue.
  EXPECT_GE(after.value("farm.queue_depth_hwm"), 1u);
  EXPECT_GE(after.value("farm.queue_depth_hwm"),
            before.value("farm.queue_depth_hwm"));
}

// Fault-injected regression for worker panic containment: an exception
// escaping the verification path must yield Inconclusive for that job —
// with the worker thread surviving to serve its mailbox — not a dead
// worker and a hung future. The farm's fault hook stands in for a bug in
// verify_report_chain (the hook runs inside the worker's execute path).
TEST(FarmRobustness, WorkerPanicIsContainedAndTheWorkerSurvives) {
  const Corpus& fuzz = corpus();
  const Case& clean = fuzz.cases.front();
  ASSERT_EQ(clean.label, "gps/clean");

  constexpr DeviceId kFaulty = 7;
  std::atomic<int> detonations{0};
  FarmOptions options;
  options.workers = 2;
  options.clamp_workers = false;
  options.fault_hook = [&](DeviceId device) {
    if (device == kFaulty && detonations.fetch_add(1) == 0) {
      throw std::runtime_error("injected worker fault");
    }
  };
  VerifierFarm farm(apps::demo_key(), options);

  for (const DeviceId device : {kFaulty, DeviceId{8}}) {
    farm.provision(device, fuzz.deployments[clean.app], fuzz.config);
    farm.adopt_challenge(device, clean.chal);
  }
  // First submission on the faulty device detonates inside the worker.
  const VerificationResult contained =
      farm.submit(kFaulty, clean.chal, clean.chain).get();
  EXPECT_EQ(contained.verdict, Verdict::Inconclusive);
  EXPECT_EQ(contained.detail.rfind("verifier exception contained", 0), 0u)
      << contained.detail;
  EXPECT_EQ(detonations.load(), 1);

  // The panic consumed nothing: the challenge is still outstanding, and the
  // same worker pool (no respawn machinery exists) verifies the retry and
  // an unrelated device's chain to Accept.
  EXPECT_EQ(farm.submit(kFaulty, clean.chal, clean.chain).get().verdict,
            Verdict::Accept);
  EXPECT_EQ(farm.submit(8, clean.chal, clean.chain).get().verdict,
            Verdict::Accept);
}

}  // namespace
}  // namespace raptrack
