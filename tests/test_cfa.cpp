// Unit tests: report format/MAC binding, payload codecs, wire-format
// mutation fuzzing, and prover-side session mechanics (H_MEM, metrics,
// world-switch accounting).
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "cfa/report.hpp"
#include "common/rng.hpp"
#include "mem/memory_map.hpp"
#include "trace/mtb.hpp"

namespace raptrack::cfa {
namespace {

crypto::Key test_key() { return crypto::Key(32, 0x42); }

SignedReport sample_report() {
  SignedReport report;
  report.chal.fill(0x11);
  report.h_mem.fill(0x22);
  report.sequence = 3;
  report.final_report = true;
  report.type = PayloadType::RapFinal;
  report.payload = {1, 2, 3, 4};
  report.sign(test_key());
  return report;
}

TEST(SignedReport, SignVerifyRoundTrip) {
  const SignedReport report = sample_report();
  EXPECT_TRUE(report.verify(test_key()));
  EXPECT_FALSE(report.verify(crypto::Key(32, 0x43)));
}

TEST(SignedReport, MacBindsEveryField) {
  const SignedReport original = sample_report();
  {
    SignedReport r = original;
    r.chal[0] ^= 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.h_mem[5] ^= 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.sequence += 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.final_report = false;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.type = PayloadType::NaivePackets;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.payload.push_back(0);
    EXPECT_FALSE(r.verify(test_key()));
  }
}

TEST(PayloadCodec, PacketsRoundTrip) {
  trace::PacketLog packets;
  packets.push_back({0x00200010, 0x00200100, true});
  packets.push_back({0x00200020, 0x00200200, false});
  const auto encoded = encode_packets(packets);
  EXPECT_EQ(encoded.size(), 4u + 2 * 8u);
  EXPECT_EQ(decode_packets(encoded), packets);
}

// The prover signs payloads encoded straight off the MTB buffer; the fused
// encoders must be byte-identical to serializing read_log(), wrapped or not.
TEST(PayloadCodec, MtbFusedEncodersMatchPacketLogEncoding) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  trace::Mtb mtb(map, mem::MapLayout::kMtbSramBase, 4 * 8);  // 4 packets
  mtb.set_enabled(true);
  mtb.set_tstart_enable(true);
  for (u32 i = 0; i < 3; ++i) {
    mtb.on_branch(0x00200010 + 16 * i, 0x00200100 + 16 * i,
                  isa::BranchKind::Direct);
    EXPECT_EQ(encode_packets(mtb), encode_packets(mtb.read_log()));
  }
  for (u32 i = 0; i < 3; ++i) {  // wrap the 4-packet buffer
    mtb.on_branch(0x00200050 + 16 * i, 0x00200300 + 16 * i,
                  isa::BranchKind::Direct);
  }
  EXPECT_EQ(encode_packets(mtb), encode_packets(mtb.read_log()));
  const std::vector<u32> loops = {7, 0, 0xffffffff};
  EXPECT_EQ(encode_rap_final(mtb, loops),
            encode_rap_final(RapFinalPayload{mtb.read_log(), loops}));
}

TEST(PayloadCodec, RapFinalRoundTrip) {
  RapFinalPayload payload;
  payload.packets.push_back({0x00200010, 0x00200100, true});
  payload.loop_values = {7, 0, 0xffffffff};
  const auto encoded = encode_rap_final(payload);
  const auto decoded = decode_rap_final(encoded);
  EXPECT_EQ(decoded.packets, payload.packets);
  EXPECT_EQ(decoded.loop_values, payload.loop_values);
}

TEST(PayloadCodec, TracesChunkRoundTrip) {
  TracesChunkPayload payload;
  for (int i = 0; i < 37; ++i) payload.direction_bits.push_back(i % 3 == 0);
  payload.indirect_targets = {0x00200100, 0x00200100, 0x00200200};
  payload.loop_values = {5};
  const auto decoded = decode_traces_chunk(encode_traces_chunk(payload));
  EXPECT_EQ(decoded.direction_bits, payload.direction_bits);
  EXPECT_EQ(decoded.indirect_targets, payload.indirect_targets);
  EXPECT_EQ(decoded.loop_values, payload.loop_values);
}

TEST(PayloadCodec, RejectsTruncatedPayloads) {
  trace::PacketLog packets;
  packets.push_back({0x10, 0x20, false});
  auto encoded = encode_packets(packets);
  encoded.pop_back();
  EXPECT_THROW(decode_packets(encoded), Error);
  encoded.push_back(0);
  encoded.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_packets(encoded), Error);
}

TEST(WireFormat, ReportRoundTrips) {
  const SignedReport report = sample_report();
  const auto wire = encode_report(report);
  const auto decoded = try_decode_report(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(*decoded, report);
  EXPECT_TRUE(decoded->verify(test_key()));
}

TEST(WireFormat, ChainRoundTrips) {
  std::vector<SignedReport> chain = {sample_report(), sample_report()};
  chain[1].sequence = 4;
  chain[1].payload = {9, 9, 9};
  chain[1].sign(test_key());
  const auto wire = encode_report_chain(chain);
  const auto decoded = try_decode_report_chain(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(*decoded, chain);
}

// Exhaustive single-byte mutation: every byte position of a valid serialized
// report, every one of its 8 bit flips, must end in clean rejection — either
// the decoder errors out or the decoded report fails MAC verification. No
// mutation may crash, read out of bounds, or verify.
TEST(WireFormat, EveryByteMutationIsRejected) {
  const SignedReport report = sample_report();
  const auto wire = encode_report(report);
  for (size_t at = 0; at < wire.size(); ++at) {
    for (u32 bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[at] ^= static_cast<u8>(1u << bit);
      const auto decoded = try_decode_report(mutated);
      if (!decoded.ok()) continue;  // framing rejected it: fine
      EXPECT_FALSE(decoded->verify(test_key()))
          << "byte " << at << " bit " << bit
          << " survived decode AND verified";
    }
  }
}

// Seeded multi-bit mutations (random burst damage) plus random truncation:
// same invariant, driven by the project RNG so failures reproduce.
TEST(WireFormat, SeededMultiBitMutationsAreRejected) {
  const SignedReport report = sample_report();
  const auto wire = encode_report(report);
  Xoshiro256 rng(0xfa417);
  for (int round = 0; round < 500; ++round) {
    auto mutated = wire;
    const u64 flips = 1 + rng.next_below(8);
    for (u64 i = 0; i < flips; ++i) {
      const u64 bit = rng.next_below(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
    if (rng.chance(1, 4)) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    const auto decoded = try_decode_report(mutated);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(decoded->verify(test_key())) << "round " << round;
  }
}

TEST(WireFormat, GarbageAndTruncationNeverThrow) {
  Xoshiro256 rng(0xdead);
  for (int round = 0; round < 200; ++round) {
    std::vector<u8> garbage(rng.next_below(256));
    for (auto& byte : garbage) byte = static_cast<u8>(rng.next());
    EXPECT_NO_THROW({
      const auto r = try_decode_report(garbage);
      const auto c = try_decode_report_chain(garbage);
      const auto p = try_decode_packets(garbage);
      const auto f = try_decode_rap_final(garbage);
      const auto t = try_decode_traces_chunk(garbage);
      (void)r; (void)c; (void)p; (void)f; (void)t;
    });
  }
}

// A hostile length prefix must not trigger an attacker-sized allocation:
// counts are validated against the bytes actually present before reserve.
TEST(WireFormat, HostileCountsDoNotAllocate) {
  // Packet payload claiming 2^29 packets with 4 bytes behind the count.
  std::vector<u8> bomb = {0x00, 0x00, 0x00, 0x20, 1, 2, 3, 4};
  const auto packets = try_decode_packets(bomb);
  EXPECT_FALSE(packets.ok());

  // Chain header claiming 2^30 reports with no bodies.
  std::vector<u8> chain_bomb = {'R', 'P', 'C', '1', 0x00, 0x00, 0x00, 0x40};
  const auto chain = try_decode_report_chain(chain_bomb);
  EXPECT_FALSE(chain.ok());

  // Report whose payload_len points far past the end of the buffer.
  auto wire = encode_report(sample_report());
  wire[4 + 16 + 32 + 4 + 1 + 1 + 3] = 0x7f;  // top byte of payload_len
  const auto report = try_decode_report(wire);
  EXPECT_FALSE(report.ok());
}

TEST(WireFormat, ThrowingDecodersMatchTypedResults) {
  // Internal callers still get an Error exception where the typed decoder
  // reports failure — the two layers must agree.
  std::vector<u8> bad = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(try_decode_packets(bad).ok());
  EXPECT_THROW(decode_packets(bad), Error);
  EXPECT_FALSE(try_decode_rap_final(bad).ok());
  EXPECT_THROW(decode_rap_final(bad), Error);
  EXPECT_FALSE(try_decode_traces_chunk(bad).ok());
  EXPECT_THROW(decode_traces_chunk(bad), Error);
}

TEST(Provers, HmemCoversTheDeployedImage) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("crc32"));
  const auto run = apps::run_rap(prepared, 1);
  const auto expected = crypto::Sha256::hash(prepared.rap.program.bytes());
  for (const auto& report : run.attestation.reports) {
    EXPECT_TRUE(crypto::digest_equal(report.h_mem, expected));
  }
}

TEST(Provers, FinalReportIsLastAndUnique) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("gps"));
  const auto run = apps::run_rap(prepared, 3);
  ASSERT_FALSE(run.attestation.reports.empty());
  for (size_t i = 0; i < run.attestation.reports.size(); ++i) {
    EXPECT_EQ(run.attestation.reports[i].sequence, i);
    EXPECT_EQ(run.attestation.reports[i].final_report,
              i + 1 == run.attestation.reports.size());
  }
}

TEST(Provers, BaselineHasNoAttestationArtifacts) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("temperature"));
  const auto run = apps::run_baseline(prepared, 9);
  EXPECT_TRUE(run.attestation.reports.empty());
  EXPECT_EQ(run.attestation.metrics.cflog_bytes, 0u);
  EXPECT_EQ(run.attestation.metrics.world_switches, 0u);
  EXPECT_GT(run.attestation.metrics.exec_cycles, 0u);
}

TEST(Provers, MetricsArePopulated) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("syringe"));
  const auto run = apps::run_rap(prepared, 5);
  const RunMetrics& m = run.attestation.metrics;
  EXPECT_GT(m.exec_cycles, 0u);
  EXPECT_GT(m.attest_setup_cycles, 0u);
  EXPECT_GT(m.final_report_cycles, 0u);
  EXPECT_GT(m.cflog_bytes, 0u);
  EXPECT_EQ(m.code_bytes, prepared.rap.program.size());
  EXPECT_EQ(m.halt, cpu::HaltReason::Halted);
  EXPECT_FALSE(m.fault.has_value());
}

TEST(Provers, NaiveLogsEveryTakenBranch) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("prime"));
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;
  const auto run = apps::run_naive(prepared, 7, big);
  EXPECT_EQ(run.attestation.metrics.cflog_bytes,
            run.oracle.size() * trace::BranchPacket::kBytes);
}

}  // namespace
}  // namespace raptrack::cfa
