// Unit tests: report format/MAC binding, payload codecs, and prover-side
// session mechanics (H_MEM, metrics, world-switch accounting).
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "cfa/report.hpp"

namespace raptrack::cfa {
namespace {

crypto::Key test_key() { return crypto::Key(32, 0x42); }

SignedReport sample_report() {
  SignedReport report;
  report.chal.fill(0x11);
  report.h_mem.fill(0x22);
  report.sequence = 3;
  report.final_report = true;
  report.type = PayloadType::RapFinal;
  report.payload = {1, 2, 3, 4};
  report.sign(test_key());
  return report;
}

TEST(SignedReport, SignVerifyRoundTrip) {
  const SignedReport report = sample_report();
  EXPECT_TRUE(report.verify(test_key()));
  EXPECT_FALSE(report.verify(crypto::Key(32, 0x43)));
}

TEST(SignedReport, MacBindsEveryField) {
  const SignedReport original = sample_report();
  {
    SignedReport r = original;
    r.chal[0] ^= 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.h_mem[5] ^= 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.sequence += 1;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.final_report = false;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.type = PayloadType::NaivePackets;
    EXPECT_FALSE(r.verify(test_key()));
  }
  {
    SignedReport r = original;
    r.payload.push_back(0);
    EXPECT_FALSE(r.verify(test_key()));
  }
}

TEST(PayloadCodec, PacketsRoundTrip) {
  trace::PacketLog packets;
  packets.push_back({0x00200010, 0x00200100, true});
  packets.push_back({0x00200020, 0x00200200, false});
  const auto encoded = encode_packets(packets);
  EXPECT_EQ(encoded.size(), 4u + 2 * 8u);
  EXPECT_EQ(decode_packets(encoded), packets);
}

TEST(PayloadCodec, RapFinalRoundTrip) {
  RapFinalPayload payload;
  payload.packets.push_back({0x00200010, 0x00200100, true});
  payload.loop_values = {7, 0, 0xffffffff};
  const auto encoded = encode_rap_final(payload);
  const auto decoded = decode_rap_final(encoded);
  EXPECT_EQ(decoded.packets, payload.packets);
  EXPECT_EQ(decoded.loop_values, payload.loop_values);
}

TEST(PayloadCodec, TracesChunkRoundTrip) {
  TracesChunkPayload payload;
  for (int i = 0; i < 37; ++i) payload.direction_bits.push_back(i % 3 == 0);
  payload.indirect_targets = {0x00200100, 0x00200100, 0x00200200};
  payload.loop_values = {5};
  const auto decoded = decode_traces_chunk(encode_traces_chunk(payload));
  EXPECT_EQ(decoded.direction_bits, payload.direction_bits);
  EXPECT_EQ(decoded.indirect_targets, payload.indirect_targets);
  EXPECT_EQ(decoded.loop_values, payload.loop_values);
}

TEST(PayloadCodec, RejectsTruncatedPayloads) {
  trace::PacketLog packets;
  packets.push_back({0x10, 0x20, false});
  auto encoded = encode_packets(packets);
  encoded.pop_back();
  EXPECT_THROW(decode_packets(encoded), Error);
  encoded.push_back(0);
  encoded.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_packets(encoded), Error);
}

TEST(Provers, HmemCoversTheDeployedImage) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("crc32"));
  const auto run = apps::run_rap(prepared, 1);
  const auto expected = crypto::Sha256::hash(prepared.rap.program.bytes());
  for (const auto& report : run.attestation.reports) {
    EXPECT_TRUE(crypto::digest_equal(report.h_mem, expected));
  }
}

TEST(Provers, FinalReportIsLastAndUnique) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("gps"));
  const auto run = apps::run_rap(prepared, 3);
  ASSERT_FALSE(run.attestation.reports.empty());
  for (size_t i = 0; i < run.attestation.reports.size(); ++i) {
    EXPECT_EQ(run.attestation.reports[i].sequence, i);
    EXPECT_EQ(run.attestation.reports[i].final_report,
              i + 1 == run.attestation.reports.size());
  }
}

TEST(Provers, BaselineHasNoAttestationArtifacts) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("temperature"));
  const auto run = apps::run_baseline(prepared, 9);
  EXPECT_TRUE(run.attestation.reports.empty());
  EXPECT_EQ(run.attestation.metrics.cflog_bytes, 0u);
  EXPECT_EQ(run.attestation.metrics.world_switches, 0u);
  EXPECT_GT(run.attestation.metrics.exec_cycles, 0u);
}

TEST(Provers, MetricsArePopulated) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("syringe"));
  const auto run = apps::run_rap(prepared, 5);
  const RunMetrics& m = run.attestation.metrics;
  EXPECT_GT(m.exec_cycles, 0u);
  EXPECT_GT(m.attest_setup_cycles, 0u);
  EXPECT_GT(m.final_report_cycles, 0u);
  EXPECT_GT(m.cflog_bytes, 0u);
  EXPECT_EQ(m.code_bytes, prepared.rap.program.size());
  EXPECT_EQ(m.halt, cpu::HaltReason::Halted);
  EXPECT_FALSE(m.fault.has_value());
}

TEST(Provers, NaiveLogsEveryTakenBranch) {
  const auto& prepared = apps::prepare_app(apps::app_by_name("prime"));
  sim::MachineConfig big;
  big.mtb_buffer_bytes = 1 << 20;
  const auto run = apps::run_naive(prepared, 7, big);
  EXPECT_EQ(run.attestation.metrics.cflog_bytes,
            run.oracle.size() * trace::BranchPacket::kBytes);
}

}  // namespace
}  // namespace raptrack::cfa
