// Unit tests: the path replayer — constant-propagating valuation, shadow
// call stack, slot/veneer disambiguation, evidence-exhaustion handling —
// on hand-built micro programs.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cfa/provers.hpp"
#include "rewrite/rap_rewriter.hpp"
#include "sim/machine.hpp"
#include "verify/replayer.hpp"

namespace raptrack::verify {
namespace {

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

/// Rewrite for RAP, run on a machine, and return {result, packets, loops,
/// oracle}.
struct RapRun {
  rewrite::RewriteResult rewritten;
  ReplayInputs inputs;
  std::vector<trace::OracleEvent> oracle;
};

RapRun run_rap(const Built& b, u64 r2_seed = 0) {
  RapRun out;
  out.rewritten = rewrite::rewrite_for_rap_track(b.program, b.entry,
                                                 b.program.base(), b.code_end);
  sim::Machine machine;
  machine.load_program(out.rewritten.program);
  machine.dwt().configure_rap_track(
      out.rewritten.manifest.mtbar_base, out.rewritten.manifest.mtbar_limit,
      out.rewritten.manifest.mtbdr_base, out.rewritten.manifest.mtbdr_limit);
  machine.mtb().set_enabled(true);
  std::vector<u32>& loops = out.inputs.loop_values;
  machine.monitor().register_service(
      tz::Service::kRapLogLoopCondition, [&](cpu::CpuState& state) -> Cycles {
        const auto* veneer =
            out.rewritten.manifest.veneer_at_svc(state.pc() - 4);
        loops.push_back(state.reg(veneer->loop.iterator));
        return 1;
      });
  machine.reset_cpu(b.entry);
  machine.cpu().state().set_reg(isa::Reg::R2, static_cast<Word>(r2_seed));
  EXPECT_EQ(machine.run(100000), cpu::HaltReason::Halted);
  out.inputs.packets = machine.mtb().read_log();
  out.oracle = machine.oracle().events();
  return out;
}

ReplayResult replay_rap(const Built& b, const RapRun& run) {
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  return replayer.replay(run.inputs);
}

TEST(Replayer, DeterministicLoopResolvedByValuation) {
  const Built b = build(R"(
_start:
    movi r0, #0
    movi r1, #0
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  const RapRun run = run_rap(b);
  EXPECT_TRUE(run.inputs.packets.empty());  // nothing logged at all
  const ReplayResult result = replay_rap(b, run);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_EQ(result.events, run.oracle);  // 4 taken back edges reconstructed
}

TEST(Replayer, LoopConditionValueSeedsTheValuation) {
  const Built b = build(R"(
_start:
    movi r0, #0
    mov r1, r2
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  for (const u64 init : {0ull, 3ull, 4ull}) {
    const RapRun run = run_rap(b, init);
    ASSERT_EQ(run.inputs.loop_values.size(), 1u);
    EXPECT_EQ(run.inputs.loop_values[0], init);
    const ReplayResult result = replay_rap(b, run);
    EXPECT_TRUE(result.complete) << result.failure;
    EXPECT_EQ(result.events, run.oracle) << "init " << init;
  }
}

TEST(Replayer, CondTakenDisambiguatedBySlotAddress) {
  const Built b = build(R"(
_start:
    movi r4, #0
    movi r5, #0
loop:
    and r0, r4, r7      ; r7 == 0 -> r0 == 0 -> beq taken every iteration
    cmp r0, #0
    beq yes
    addi r5, r5, #16
yes:
    addi r4, r4, #1
    cmp r4, #3
    blt loop
    hlt
__code_end:
  )");
  const RapRun run = run_rap(b);
  const ReplayResult result = replay_rap(b, run);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_EQ(result.events, run.oracle);
}

TEST(Replayer, ShadowStackResolvesLeafReturns) {
  const Built b = build(R"(
_start:
    bl outer
    hlt
outer:
    push {r4, lr}
    bl leaf
    bl leaf
    pop {r4, pc}
leaf:
    movi r0, #1
    bx lr
__code_end:
  )");
  const RapRun run = run_rap(b);
  const ReplayResult result = replay_rap(b, run);
  EXPECT_TRUE(result.complete) << result.failure;
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.events, run.oracle);
}

TEST(Replayer, FailsOnMissingEvidence) {
  const Built b = build(R"(
_start:
    bl fn
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  RapRun run = run_rap(b);
  ASSERT_FALSE(run.inputs.packets.empty());
  run.inputs.packets.pop_back();  // drop the return packet
  const ReplayResult result = replay_rap(b, run);
  EXPECT_FALSE(result.complete);
  EXPECT_NE(result.failure.find("exhausted"), std::string::npos);
}

TEST(Replayer, FailsOnInjectedEvidence) {
  const Built b = build(R"(
_start:
    bl fn
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  RapRun run = run_rap(b);
  run.inputs.packets.push_back({0x00200000, 0x00200004, false});
  const ReplayResult result = replay_rap(b, run);
  EXPECT_FALSE(result.complete);
}

TEST(Replayer, FailsOnCorruptedDestination) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    beq skip
    movi r1, #1
skip:
    hlt
__code_end:
  )");
  RapRun run = run_rap(b);
  ASSERT_EQ(run.inputs.packets.size(), 1u);
  run.inputs.packets[0].destination += 8;  // claim a different static target
  const ReplayResult result = replay_rap(b, run);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.failure.empty());
}

TEST(Replayer, ReportsRopWhenReturnDiffersFromShadowStack) {
  // Hand-craft evidence showing a return to the wrong address, as a
  // stack-smashing attacker would produce (the MTB logs it faithfully).
  const Built b = build(R"(
_start:
    bl fn
    hlt
gadget:
    movi r1, #0x666
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  RapRun run = run_rap(b);
  ASSERT_EQ(run.inputs.packets.size(), 1u);
  run.inputs.packets[0].destination = *b.program.symbol("gadget");
  const ReplayResult result = replay_rap(b, run);
  EXPECT_TRUE(result.complete) << result.failure;  // evidence is consistent…
  ASSERT_EQ(result.findings.size(), 1u);           // …and incriminating
  EXPECT_NE(result.findings[0].description.find("ROP"), std::string::npos);
  EXPECT_EQ(result.findings[0].observed, *b.program.symbol("gadget"));
}

TEST(Replayer, PolicyFlagsIllegitimateCallTargets) {
  const Built b = build(R"(
_start:
    li r3, =callee
    blx r3
    hlt
callee:
    bx lr
__code_end:
  )");
  RapRun run = run_rap(b);
  PathReplayer replayer(run.rewritten.program, b.entry, ReplayMode::Rap);
  replayer.set_rap_manifest(&run.rewritten.manifest);
  ReplayPolicy policy;
  policy.valid_call_targets = {0x00300000};  // callee not in the set
  replayer.set_policy(policy);
  const ReplayResult result = replayer.replay(run.inputs);
  EXPECT_TRUE(result.complete);
  ASSERT_FALSE(result.findings.empty());
  EXPECT_NE(result.findings[0].description.find("JOP"), std::string::npos);
}

TEST(Replayer, StepBudgetGuardsAgainstMalformedEvidence) {
  const Built b = build(R"(
_start:
    b loop
loop:
    b loop
__code_end:
  )");
  PathReplayer replayer(b.program, b.entry, ReplayMode::Naive);
  ReplayInputs inputs;
  // Naive mode with an endless packet stream of the self-loop.
  for (int i = 0; i < 1000; ++i) {
    inputs.packets.push_back({*b.program.symbol("loop"),
                              *b.program.symbol("loop"), false});
  }
  inputs.packets.insert(inputs.packets.begin(),
                        {b.entry, *b.program.symbol("loop"), false});
  const ReplayResult result = replayer.replay(inputs, /*max_steps=*/100);
  EXPECT_FALSE(result.complete);
}

TEST(Replayer, ModeRequiresManifest) {
  const Built b = build("_start:\n    hlt\n__code_end:\n");
  PathReplayer replayer(b.program, b.entry, ReplayMode::Rap);
  const ReplayResult result = replayer.replay({});
  EXPECT_FALSE(result.complete);
  EXPECT_NE(result.failure.find("manifest"), std::string::npos);
}

}  // namespace
}  // namespace raptrack::verify
