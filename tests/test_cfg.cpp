// Unit tests: CFG construction (blocks, edges, reachability, dispatch-table
// root discovery), dominators, natural loops, and the §IV-D simple-loop
// classification that drives trampoline selection.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cfg/cfg.hpp"
#include "cfg/loop_analysis.hpp"

namespace raptrack::cfg {
namespace {

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

TEST(Cfg, LinearCodeIsOneBlockPerLeaderlessRun) {
  const Built b = build(R"(
_start:
    movi r1, #1
    movi r2, #2
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  EXPECT_EQ(cfg.blocks().size(), 1u);
  EXPECT_TRUE(cfg.blocks().begin()->second.reachable);
  EXPECT_EQ(cfg.blocks().begin()->second.terminator, isa::BranchKind::Halt);
}

TEST(Cfg, ConditionalSplitsBlocksWithBothEdges) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    beq taken
    movi r1, #1
taken:
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const BasicBlock& head = cfg.block_containing(b.entry);
  ASSERT_EQ(head.successors.size(), 2u);
  const Address taken = *b.program.symbol("taken");
  EXPECT_TRUE(head.successors[0] == taken || head.successors[1] == taken);
  EXPECT_EQ(cfg.block_at(taken).predecessors.size(), 2u);
}

TEST(Cfg, JumpTableRootsAreDiscoveredFromData) {
  const Built b = build(R"(
_start:
    li r2, =table
    ldr pc, [r2, r0, lsl #2]
h0:
    hlt
h1:
    movi r1, #1
    hlt
__code_end:
table:
    .word h0
    .word h1
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  // h0/h1 are unreachable through static edges but discovered as roots.
  EXPECT_TRUE(cfg.block_at(*b.program.symbol("h0")).reachable);
  EXPECT_TRUE(cfg.block_at(*b.program.symbol("h1")).reachable);
}

TEST(Cfg, DominatorsOnADiamond) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    beq right
left:
    movi r1, #1
    b join
right:
    movi r1, #2
join:
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const Address head = cfg.block_containing(b.entry).begin;
  const Address join = cfg.block_containing(*b.program.symbol("join")).begin;
  const Address left = cfg.block_containing(*b.program.symbol("left")).begin;
  EXPECT_TRUE(cfg.dominates(head, join));
  EXPECT_TRUE(cfg.dominates(head, left));
  EXPECT_FALSE(cfg.dominates(left, join));
  EXPECT_EQ(cfg.idom(join), head);
}

TEST(Loops, BackwardLoopIsDetected) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const auto loops = find_natural_loops(cfg);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, *b.program.symbol("loop"));
  EXPECT_EQ(loops[0].header, loops[0].latch);  // single-block loop
}

TEST(LoopAnalysis, ConstantInitLoopIsDeterministic) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  ASSERT_EQ(analysis.bcc_roles.size(), 1u);
  const auto [site, role] = *analysis.bcc_roles.begin();
  EXPECT_EQ(role, BccRole::Deterministic);
  const SimpleLoop& loop = analysis.simple_loops.at(site);
  EXPECT_EQ(loop.iterator, isa::Reg::R1);
  EXPECT_EQ(loop.step, 1);
  EXPECT_EQ(loop.bound, 10);
  ASSERT_TRUE(loop.constant_init.has_value());
  EXPECT_EQ(*loop.constant_init, 0);
  EXPECT_FALSE(loop.forward_exit);
}

TEST(LoopAnalysis, VariableInitLoopGetsLoopConditionRole) {
  const Built b = build(R"(
_start:
    mov r1, r0          ; iterator init is data-dependent
loop:
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  const auto [site, role] = *analysis.bcc_roles.begin();
  EXPECT_EQ(role, BccRole::LoopCondition);
  EXPECT_FALSE(analysis.simple_loops.at(site).constant_init.has_value());
}

TEST(LoopAnalysis, ForwardExitLoopShape) {
  const Built b = build(R"(
_start:
    mov r1, r0
loop:
    cmp r1, #0
    beq exit
    sub r1, r1, #1
    b loop
exit:
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  const auto [site, role] = *analysis.bcc_roles.begin();
  EXPECT_EQ(role, BccRole::LoopCondition);  // simple, variable init
  EXPECT_TRUE(analysis.simple_loops.at(site).forward_exit);
  EXPECT_EQ(analysis.simple_loops.at(site).step, -1);
}

TEST(LoopAnalysis, LoopWithInnerConditionalIsNotSimple) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    cmp r2, #5
    beq skip            ; data-dependent branch inside the loop
    addi r3, r3, #1
skip:
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  const Address latch_site = *b.program.symbol("skip") + 8;  // the blt
  EXPECT_EQ(analysis.bcc_roles.at(latch_site), BccRole::LogTaken);
  EXPECT_TRUE(analysis.simple_loops.empty());
}

TEST(LoopAnalysis, LoopWithCallIsNotSimple) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    bl helper
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
helper:
    bx lr
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  EXPECT_TRUE(analysis.simple_loops.empty());
}

TEST(LoopAnalysis, MemoryBasedIteratorIsNotSimple) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    ldr r1, [r2]        ; iterator reloaded from memory
    addi r1, r1, #1
    cmp r1, #10
    blt loop
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  EXPECT_TRUE(analysis.simple_loops.empty());
}

TEST(LoopAnalysis, NonLoopForwardBranchLogsTaken) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    beq skip
    movi r1, #1
skip:
    hlt
__code_end:
  )");
  const Cfg cfg(b.program, b.entry, b.program.base(), b.code_end);
  const LoopAnalysis analysis = analyze_loops(cfg);
  EXPECT_EQ(analysis.bcc_roles.begin()->second, BccRole::LogTaken);
}

TEST(Cfg, RejectsBadRanges) {
  const Built b = build("_start:\n    hlt\n__code_end:\n");
  EXPECT_THROW(Cfg(b.program, 0x123, b.program.base(), b.code_end), Error);
  EXPECT_THROW(Cfg(b.program, b.entry, b.code_end, b.program.base()), Error);
}

}  // namespace
}  // namespace raptrack::cfg
