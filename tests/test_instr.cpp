// Unit tests: the TRACES-style instrumentation pass and its Secure-World
// logging engine (veneer shapes, per-branch context switches, log
// compression accounting, capacity flushes).
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "asm/assembler.hpp"
#include "instr/traces_engine.hpp"
#include "instr/traces_rewriter.hpp"

namespace raptrack::instr {
namespace {

using isa::Op;

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

struct RunResult {
  cpu::HaltReason halt;
  Word r0;
  u64 world_switches;
  TracesLog log;
  u64 log_bytes;
  u32 flushes;
};

RunResult run_instrumented(const Built& b, const TracesResult& rewritten,
                           u32 capacity = 0) {
  sim::Machine machine;
  machine.load_program(rewritten.program);
  TracesEngine engine(rewritten.program, rewritten.manifest, machine.memory(),
                      capacity);
  engine.attach(machine.monitor());
  machine.reset_cpu(b.entry);
  const auto halt = machine.run(100000);
  return {halt,
          machine.cpu().state().reg(isa::Reg::R0),
          machine.monitor().world_switches(),
          engine.log(),
          engine.total_log_bytes(),
          engine.partial_flushes()};
}

TEST(TracesRewriter, ConditionalVeneerLogsDirectionBits) {
  const Built b = build(R"(
_start:
    movi r0, #0
    cmp r1, #0
    bne one
    addi r0, r0, #1
one:
    cmp r1, #1
    beq two
    addi r0, r0, #2
two:
    hlt
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  ASSERT_EQ(rewritten.manifest.veneers.size(), 2u);
  for (const auto& veneer : rewritten.manifest.veneers) {
    EXPECT_EQ(veneer.kind, VeneerKind::Conditional);
    // Veneer: SVC; Bcc; B resume.
    EXPECT_EQ(rewritten.program.instruction_at(veneer.svc_addr)->op, Op::SVC);
    EXPECT_EQ(rewritten.program.instruction_at(veneer.veneer_base + 4)->op,
              Op::BCC);
    EXPECT_EQ(rewritten.program.instruction_at(veneer.veneer_base + 8)->op,
              Op::B);
  }
  const RunResult run = run_instrumented(b, rewritten);
  EXPECT_EQ(run.halt, cpu::HaltReason::Halted);
  EXPECT_EQ(run.r0, 3u);  // both fall-throughs taken (r1 == 0)
  ASSERT_EQ(run.log.direction_bits.size(), 2u);
  EXPECT_FALSE(run.log.direction_bits[0]);  // bne not taken
  EXPECT_FALSE(run.log.direction_bits[1]);  // beq not taken
  EXPECT_EQ(run.world_switches, 2u);        // one context switch per branch
}

TEST(TracesRewriter, IndirectCallVeneerLogsTarget) {
  const Built b = build(R"(
_start:
    li r3, =callee
    blx r3
    hlt
callee:
    movi r0, #9
    bx lr
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  ASSERT_EQ(rewritten.manifest.veneers.size(), 1u);
  EXPECT_EQ(rewritten.manifest.veneers[0].kind, VeneerKind::IndirectCall);
  // Site replaced with BL (preserving LR semantics).
  EXPECT_EQ(rewritten.program.instruction_at(rewritten.manifest.veneers[0].site)->op,
            Op::BL);
  const RunResult run = run_instrumented(b, rewritten);
  EXPECT_EQ(run.r0, 9u);
  ASSERT_EQ(run.log.indirect_targets.size(), 1u);
  EXPECT_EQ(run.log.indirect_targets[0], *b.program.symbol("callee"));
}

TEST(TracesRewriter, ReturnPopVeneerLogsReturnAddress) {
  const Built b = build(R"(
_start:
    bl fn
    hlt
fn:
    push {r4, lr}
    movi r0, #5
    pop {r4, pc}
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  const RunResult run = run_instrumented(b, rewritten);
  EXPECT_EQ(run.r0, 5u);
  ASSERT_EQ(run.log.indirect_targets.size(), 1u);
  EXPECT_EQ(run.log.indirect_targets[0], b.entry + 4);  // return site
}

TEST(TracesRewriter, LoopConditionOptimizationShared) {
  const Built b = build(R"(
_start:
    movi r0, #0
    mov r1, r2
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  ASSERT_EQ(rewritten.manifest.veneers.size(), 1u);
  EXPECT_EQ(rewritten.manifest.veneers[0].kind, VeneerKind::LoopCondition);
  const RunResult run = run_instrumented(b, rewritten);
  ASSERT_EQ(run.log.loop_conditions.size(), 1u);
  EXPECT_EQ(run.log.loop_conditions[0], 0u);  // r2 == 0 at loop entry
  EXPECT_EQ(run.world_switches, 1u);          // once per loop, not per iteration
}

TEST(TracesRewriter, DeterministicLoopsAreElided) {
  const Built b = build(R"(
_start:
    movi r0, #0
    movi r1, #0
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  EXPECT_TRUE(rewritten.manifest.veneers.empty());
  const RunResult run = run_instrumented(b, rewritten);
  EXPECT_EQ(run.world_switches, 0u);
  EXPECT_EQ(run.r0, 10u);
}

TEST(TracesEngine, RleCompressesRepeatedTargets) {
  // A loop calling the same function pointer repeatedly: repeated identical
  // return targets / call targets collapse under RLE.
  const Built b = build(R"(
_start:
    movi r4, #0
    li r3, =callee
again:
    blx r3
    addi r4, r4, #1
    cmp r4, #10
    blt again
    hlt
callee:
    bx lr
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  const RunResult run = run_instrumented(b, rewritten);
  ASSERT_EQ(run.log.indirect_targets.size(), 10u);
  // 10 identical targets: 4 bytes + one 2-byte run counter; plus the 10
  // conditional outcomes at one word each (default encoding).
  const u64 addr_bytes = 4 + 2;
  const u64 cond_bytes = 10 * 4;
  EXPECT_EQ(run.log_bytes, addr_bytes + cond_bytes);
}

TEST(TracesEngine, BitPackedEncodingShrinksConditionals) {
  const Built b = build(R"(
_start:
    movi r4, #0
    li r3, =callee
again:
    blx r3
    addi r4, r4, #1
    cmp r4, #16
    blt again
    hlt
callee:
    bx lr
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  sim::Machine machine;
  machine.load_program(rewritten.program);
  TracesEngine engine(rewritten.program, rewritten.manifest, machine.memory(),
                      0, /*bit_packed=*/true);
  engine.attach(machine.monitor());
  machine.reset_cpu(b.entry);
  ASSERT_EQ(machine.run(100000), cpu::HaltReason::Halted);
  // 16 identical call targets: 4 + 2 bytes; 16 direction bits: one word.
  EXPECT_EQ(engine.total_log_bytes(), 4u + 2u + 4u);
}

TEST(TracesEngine, CapacityTriggersPartialFlushes) {
  const Built b = build(R"(
_start:
    movi r4, #0
    li r3, =callee
again:
    blx r3
    addi r4, r4, #1
    cmp r4, #16
    blt again
    hlt
callee:
    bx lr
__code_end:
  )");
  const TracesResult rewritten =
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end);
  const RunResult run = run_instrumented(b, rewritten, /*capacity=*/8);
  EXPECT_GT(run.flushes, 0u);
}

TEST(TracesRewriter, RejectsSvcInApplication) {
  const Built b = build("_start:\n    svc #1\n    hlt\n__code_end:\n");
  EXPECT_THROW(
      rewrite_for_traces(b.program, b.entry, b.program.base(), b.code_end),
      Error);
}

TEST(TracesRewriter, CodeGrowthIsBounded) {
  const apps::PreparedApp p = apps::prepare_app(apps::app_by_name("gps"));
  // Veneers are at most 3 words each.
  EXPECT_LE(p.traces.rewritten_bytes,
            p.traces.original_bytes + 12 * p.traces.veneer_count + 16);
}

}  // namespace
}  // namespace raptrack::instr
