// Unit tests: the evidence audit — original-address mapping of trampoline
// detours, per-kind counts, function activity, findings propagation.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "verify/audit.hpp"

namespace raptrack::verify {
namespace {

struct Audited {
  VerificationResult result;
  AuditReport report;
  apps::PreparedApp prepared;
};

Audited audit_app(const std::string& name, u64 seed) {
  Audited out;
  out.prepared = apps::prepare_app(apps::app_by_name(name));
  Verifier verifier(apps::demo_key());
  verifier.expect_rap(out.prepared.rap.program, out.prepared.rap.manifest,
                      out.prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const auto run = apps::run_rap(out.prepared, seed, {}, {}, chal);
  out.result = verifier.verify(chal, run.attestation.reports);
  out.report = audit_verification(out.result, out.prepared.rap.program,
                                  &out.prepared.rap.manifest);
  return out;
}

TEST(Audit, AcceptedRunProducesCleanReport) {
  const Audited a = audit_app("temperature", 7);
  ASSERT_TRUE(a.result.accepted());
  EXPECT_TRUE(a.report.accepted);
  EXPECT_NE(a.report.verdict.find("ACCEPTED"), std::string::npos);
  EXPECT_TRUE(a.report.findings.empty());
  EXPECT_GT(a.report.total_transfers, 0u);
  EXPECT_GT(a.report.transfers_by_kind.at("conditional"), 0u);
  EXPECT_GT(a.report.evidence_packets, 0u);
}

TEST(Audit, DetourEdgesAreMappedToOriginalAddresses) {
  const Audited a = audit_app("temperature", 7);
  const auto& manifest = a.prepared.rap.manifest;
  for (const auto& edge : a.report.hottest_edges) {
    // No audit edge may point into or out of the MTBAR implementation area.
    EXPECT_LT(edge.source, manifest.mtbar_base);
    EXPECT_LT(edge.destination, manifest.mtbar_base);
  }
}

TEST(Audit, FunctionActivityIsBalanced) {
  const Audited a = audit_app("temperature", 7);
  bool found_calibrate = false;
  for (const auto& fn : a.report.functions) {
    if (fn.label == "calibrate") {
      found_calibrate = true;
      EXPECT_GT(fn.calls, 0u);
      EXPECT_EQ(fn.calls, fn.returns);  // benign run: balanced
    }
  }
  EXPECT_TRUE(found_calibrate);
}

TEST(Audit, IndirectCallsKeepTheirLogicalKind) {
  // The syringe dispatch goes BLX -> (BL slot; BX rm); the audit must count
  // it as an indirect call at the original site.
  const Audited a = audit_app("syringe", 7);
  ASSERT_TRUE(a.result.accepted());
  EXPECT_GT(a.report.transfers_by_kind.count("indirect-call"), 0u);
}

TEST(Audit, FindingsSurfaceInReportAndFormat) {
  // Tamper with evidence so a ROP finding appears (no benign parse).
  const auto prepared = apps::prepare_app(apps::app_by_name("fibcall"));
  Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  auto run = apps::run_rap(prepared, 7, {}, {}, chal);
  // Flipping a return destination inside the payload invalidates the MAC,
  // so instead drive the replayer directly through the Verifier with a
  // legitimately signed but malicious device: simulate by re-signing.
  auto payload = cfa::decode_rap_final(run.attestation.reports.back().payload);
  ASSERT_FALSE(payload.packets.empty());
  payload.packets.back().destination = prepared.built.entry;  // bogus return
  run.attestation.reports.back().payload = cfa::encode_rap_final(payload);
  run.attestation.reports.back().sign(apps::demo_key());

  const auto result = verifier.verify(chal, run.attestation.reports);
  const auto report = audit_verification(result, prepared.rap.program,
                                         &prepared.rap.manifest);
  EXPECT_FALSE(report.accepted);
  const std::string text = format_audit(report);
  EXPECT_NE(text.find("REJECTED"), std::string::npos);
}

TEST(Audit, FormatIsHumanReadable) {
  const Audited a = audit_app("gps", 3);
  const std::string text = format_audit(a.report);
  EXPECT_NE(text.find("=== CFA audit report ==="), std::string::npos);
  EXPECT_NE(text.find("verdict:"), std::string::npos);
  EXPECT_NE(text.find("hottest edges:"), std::string::npos);
  EXPECT_NE(text.find("parse_sentence"), std::string::npos);  // symbol names
}

TEST(Audit, TopEdgesRespectsLimit) {
  const Audited full = audit_app("gps", 3);
  const auto limited = audit_verification(full.result, full.prepared.rap.program,
                                          &full.prepared.rap.manifest, 3);
  EXPECT_LE(limited.hottest_edges.size(), 3u);
  // And they are sorted by descending frequency.
  for (size_t i = 1; i < limited.hottest_edges.size(); ++i) {
    EXPECT_GE(limited.hottest_edges[i - 1].count, limited.hottest_edges[i].count);
  }
}

}  // namespace
}  // namespace raptrack::verify
