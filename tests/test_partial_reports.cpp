// Partial-report tests (§IV-E): the MTB_FLOW watermark splits CF_Log into
// signed chunks; the Verifier stitches the chain back together and the
// reconstruction stays lossless. Also covers the paper's §V-B point that a
// 4KB MTB forces frequent pauses under naive logging but rarely under
// RAP-Track.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "lossless_helpers.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;

TEST(PartialReports, RapChainVerifiesAcrossWatermarkFlushes) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  // Tiny watermark: 16 packets per partial report.
  cfa::SessionOptions options;
  options.watermark_bytes = 128;
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 256;
  const auto run = apps::run_rap(prepared, 42, config, options, chal);

  EXPECT_GT(run.attestation.metrics.partial_reports, 2u);
  EXPECT_EQ(run.attestation.reports.size(),
            run.attestation.metrics.partial_reports + 1u);
  EXPECT_GT(run.attestation.metrics.pause_cycles, 0u);

  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << result.detail;
  EXPECT_TRUE(raptrack::testing::rap_lossless_up_to_attribution(
      prepared.rap.program, prepared.rap.manifest, prepared.built.entry,
      result, run.oracle));  // lossless across chunks
}

TEST(PartialReports, NaiveChainVerifiesAcrossWatermarkFlushes) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("prime"));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_naive(prepared.built.program, prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  cfa::SessionOptions options;
  options.watermark_bytes = 1024;
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 4096;  // the paper's 4KB MTB
  const auto run = apps::run_naive(prepared, 42, config, options, chal);
  EXPECT_GT(run.attestation.metrics.partial_reports, 0u);

  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle);
}

TEST(PartialReports, DroppedChunkBreaksTheChain) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  cfa::SessionOptions options;
  options.watermark_bytes = 128;
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 256;
  auto run = apps::run_rap(prepared, 42, config, options, chal);
  ASSERT_GT(run.attestation.reports.size(), 2u);
  run.attestation.reports.erase(run.attestation.reports.begin() + 1);

  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.accepted());
  EXPECT_FALSE(result.chain_ok);
}

TEST(PartialReports, ReorderedChunksAreRejected) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  cfa::SessionOptions options;
  options.watermark_bytes = 128;
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 256;
  auto run = apps::run_rap(prepared, 42, config, options, chal);
  ASSERT_GT(run.attestation.reports.size(), 2u);
  std::swap(run.attestation.reports[0], run.attestation.reports[1]);

  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.accepted());
  EXPECT_FALSE(result.chain_ok);
}

TEST(PartialReports, MtbWrapWithoutWatermarkLosesEvidence) {
  // Misconfiguration case: no watermark and a small MTB. The buffer wraps,
  // the oldest packets are gone, and reconstruction must fail — silent
  // loss is not acceptable in lossless CFA.
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("fibcall"));

  sim::Machine machine(sim::MachineConfig{.mtb_buffer_bytes = 256});
  const auto periph = prepared.built.app->setup(machine, 7);
  machine.load_program(prepared.rap.program);
  machine.dwt().configure_rap_track(
      prepared.rap.manifest.mtbar_base, prepared.rap.manifest.mtbar_limit,
      prepared.rap.manifest.mtbdr_base, prepared.rap.manifest.mtbdr_limit);
  machine.mtb().set_enabled(true);  // no watermark set
  machine.monitor().register_service(
      tz::Service::kRapLogLoopCondition,
      [](cpu::CpuState&) -> Cycles { return 1; });
  machine.reset_cpu(prepared.built.entry);
  ASSERT_EQ(machine.run(10'000'000), cpu::HaltReason::Halted);
  ASSERT_TRUE(machine.mtb().wrapped());

  verify::PathReplayer replayer(prepared.rap.program, prepared.built.entry,
                                verify::ReplayMode::Rap);
  replayer.set_rap_manifest(&prepared.rap.manifest);
  verify::ReplayInputs inputs;
  inputs.packets = machine.mtb().read_log();
  const auto result = replayer.replay(inputs);
  EXPECT_FALSE(result.complete);
}

TEST(PartialReports, TracesChunkedChainVerifies) {
  // The instrumentation baseline also streams its log: capacity flushes
  // become signed partial reports and the Verifier stitches the chunks.
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_traces(prepared.traces.program, prepared.traces.manifest,
                         prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  cfa::SessionOptions options;
  options.traces_capacity_bytes = 512;
  const auto run = apps::run_traces(prepared, 42, {}, options, chal);
  EXPECT_GT(run.attestation.metrics.partial_reports, 2u);
  EXPECT_EQ(run.attestation.reports.size(),
            run.attestation.metrics.partial_reports + 1u);
  EXPECT_GT(run.attestation.metrics.pause_cycles, 0u);

  const auto result = verifier.verify(chal, run.attestation.reports);
  ASSERT_TRUE(result.accepted()) << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle);
}

TEST(PartialReports, TracesDroppedChunkBreaksTheChain) {
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_traces(prepared.traces.program, prepared.traces.manifest,
                         prepared.built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  cfa::SessionOptions options;
  options.traces_capacity_bytes = 512;
  auto run = apps::run_traces(prepared, 42, {}, options, chal);
  ASSERT_GT(run.attestation.reports.size(), 2u);
  run.attestation.reports.erase(run.attestation.reports.begin());
  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.accepted());
  EXPECT_FALSE(result.chain_ok);
}

TEST(PartialReports, The4KbMtbPointFromSectionVB) {
  // §V-B: with the 4KB MTB, naive logging needs partial-report pauses on
  // branchy apps while RAP-Track usually fits in a single report.
  const PreparedApp prepared = apps::prepare_app(apps::app_by_name("gps"));
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 4096;

  const auto naive = apps::run_naive(prepared, 42, config);
  const auto rap = apps::run_rap(prepared, 42, config);
  EXPECT_GT(naive.attestation.metrics.partial_reports,
            rap.attestation.metrics.partial_reports);
  EXPECT_GE(naive.attestation.metrics.pause_cycles,
            rap.attestation.metrics.pause_cycles);
}

}  // namespace
}  // namespace raptrack
