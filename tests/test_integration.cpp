// End-to-end integration: the full CFA protocol (challenge -> attest ->
// verify) for RAP-Track, naive MTB, and TRACES over a real application,
// including losslessness (reconstruction == ground-truth oracle) and the
// report-chain security checks.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "lossless_helpers.hpp"

namespace raptrack {
namespace {

using apps::MethodRun;
using apps::PreparedApp;

constexpr u64 kSeed = 1234;

class IntegrationTest : public ::testing::Test {
 protected:
  static const PreparedApp& gps() {
    static const PreparedApp prepared =
        apps::prepare_app(apps::app_by_name("gps"));
    return prepared;
  }
};

TEST_F(IntegrationTest, RapTrackFullProtocolAccepts) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  const MethodRun run = apps::run_rap(gps(), kSeed, {}, {}, chal);
  EXPECT_TRUE(run.functional_ok);

  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_TRUE(result.authentic);
  EXPECT_TRUE(result.fresh);
  EXPECT_TRUE(result.chain_ok);
  EXPECT_TRUE(result.memory_ok);
  EXPECT_TRUE(result.reconstruction_ok) << result.detail;
  EXPECT_TRUE(result.policy_ok) << result.detail;
  EXPECT_TRUE(result.accepted());

  // Losslessness: the reconstructed branch history matches the ground truth
  // (up to silent-rejoin attribution; see lossless_helpers.hpp).
  ASSERT_EQ(result.replay.events.size(), run.oracle.size());
  EXPECT_TRUE(raptrack::testing::rap_lossless_up_to_attribution(
      gps().rap.program, gps().rap.manifest, gps().built.entry, result,
      run.oracle));
}

TEST_F(IntegrationTest, NaiveMtbFullProtocolAccepts) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_naive(gps().built.program, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  // A big-enough MTB avoids wrap loss in naive mode for this test.
  sim::MachineConfig config;
  config.mtb_buffer_bytes = 8192;
  const MethodRun run = apps::run_naive(gps(), kSeed, config, {}, chal);
  EXPECT_TRUE(run.functional_ok);

  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_TRUE(result.accepted()) << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle);
}

TEST_F(IntegrationTest, TracesFullProtocolAccepts) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_traces(gps().traces.program, gps().traces.manifest,
                         gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  const MethodRun run = apps::run_traces(gps(), kSeed, {}, {}, chal);
  EXPECT_TRUE(run.functional_ok);

  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_TRUE(result.accepted()) << result.detail;
  EXPECT_EQ(result.replay.events, run.oracle);
}

TEST_F(IntegrationTest, ReplayedChallengeIsRejected) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  const MethodRun run = apps::run_rap(gps(), kSeed, {}, {}, chal);

  EXPECT_TRUE(verifier.verify(chal, run.attestation.reports).accepted());
  // Second presentation of the same evidence: replay.
  const auto replayed = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(replayed.accepted());
  EXPECT_FALSE(replayed.fresh);
}

TEST_F(IntegrationTest, UnknownChallengeIsRejected) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  cfa::Challenge forged{};
  forged[0] = 0xaa;
  const MethodRun run = apps::run_rap(gps(), kSeed, {}, {}, forged);
  EXPECT_FALSE(verifier.verify(forged, run.attestation.reports).fresh);
}

TEST_F(IntegrationTest, TamperedMacIsRejected) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  MethodRun run = apps::run_rap(gps(), kSeed, {}, {}, chal);
  run.attestation.reports.back().mac[0] ^= 1;
  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.authentic);
  EXPECT_FALSE(result.accepted());
}

TEST_F(IntegrationTest, TamperedPayloadIsRejected) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();
  MethodRun run = apps::run_rap(gps(), kSeed, {}, {}, chal);
  ASSERT_GT(run.attestation.reports.back().payload.size(), 8u);
  run.attestation.reports.back().payload[6] ^= 0xff;  // flip a logged address
  const auto result = verifier.verify(chal, run.attestation.reports);
  EXPECT_FALSE(result.accepted());
  EXPECT_FALSE(result.authentic);  // MAC no longer matches
}

TEST_F(IntegrationTest, WrongKeyProverIsRejected) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  // A prover with a different key (compromised clone without the RoT key).
  sim::Machine machine;
  const auto periph = gps().built.app->setup(machine, kSeed);
  crypto::Key wrong_key(32, 0x77);
  cfa::RapProver prover(gps().rap.program, gps().rap.manifest,
                        gps().built.entry, wrong_key);
  const auto attestation = prover.attest(machine, chal);
  EXPECT_FALSE(verifier.verify(chal, attestation.reports).authentic);
}

TEST_F(IntegrationTest, ModifiedBinaryFailsHmem) {
  // Verifier expects the pristine image; the device runs a patched one.
  Program patched = gps().rap.program;
  patched.set_instruction(gps().built.entry, isa::make_nop());

  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(gps().rap.program, gps().rap.manifest, gps().built.entry);
  const cfa::Challenge chal = verifier.fresh_challenge();

  sim::Machine machine;
  const auto periph = gps().built.app->setup(machine, kSeed);
  cfa::RapProver prover(patched, gps().rap.manifest, gps().built.entry,
                        apps::demo_key());
  const auto attestation = prover.attest(machine, chal);
  const auto result = verifier.verify(chal, attestation.reports);
  EXPECT_TRUE(result.authentic);   // RoT signed honestly…
  EXPECT_FALSE(result.memory_ok);  // …but the binary is not the expected one
  EXPECT_FALSE(result.accepted());
}

TEST_F(IntegrationTest, MpuLockPreventsNonSecureCodePatch) {
  // After the CFA engine locks the NS-MPU, a Non-Secure write to APP's
  // binary faults (§IV-A / §IV-F).
  sim::Machine machine;
  const auto periph = gps().built.app->setup(machine, kSeed);
  machine.load_program(gps().rap.program);
  auto& mpu = machine.bus().ns_mpu();
  mpu.configure(0, {.enabled = true,
                    .base = gps().rap.program.base(),
                    .limit = gps().rap.program.end() - 1,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = true});
  mpu.lock();
  EXPECT_THROW(machine.bus().write(gps().rap.program.base(), 0,
                                   4, mem::WorldSide::NonSecure, 0),
               mem::FaultException);
  EXPECT_THROW(mpu.configure(0, {}), Error);  // cannot be undone
}

TEST_F(IntegrationTest, RapWorldSwitchesAreFarFewerThanTraces) {
  const MethodRun rap = apps::run_rap(gps(), kSeed);
  const MethodRun traces = apps::run_traces(gps(), kSeed);
  // The headline claim: parallel tracking obviates per-branch context
  // switches. RAP only switches for loop-condition logging.
  EXPECT_LT(rap.attestation.metrics.world_switches * 10,
            traces.attestation.metrics.world_switches);
}

}  // namespace
}  // namespace raptrack
