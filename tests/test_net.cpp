// Lossy-link delivery suite: datagram codec hostility, link determinism,
// the ARQ session protocol end to end (clean link, 25% loss with
// reordering and duplication, NACK gap repair), the farm-side quarantine
// breaker and flood accounting, and verifier crash recovery via
// snapshot/restore.
//
// Every lossy scenario is seeded; failing assertions print the seed, and
// re-running with it reproduces the exact datagram schedule (no wall clock
// or unseeded randomness anywhere in src/net).
//
// Runs under the `concurrency` and `soak` ctest labels; the tsan preset
// builds it with ThreadSanitizer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/campaign.hpp"
#include "net/endpoint.hpp"
#include "net/link.hpp"
#include "net/wire.hpp"
#include "verify/farm.hpp"

namespace raptrack {
namespace {

using apps::PreparedApp;
using fault::AttestedRun;
using net::Datagram;
using net::DatagramKind;
using net::DuplexLink;
using net::LinkModel;
using net::LossyLink;
using net::ProverEndpoint;
using net::ProverPhase;
using net::SeqRange;
using net::SessionOutcome;
using net::VerdictMessage;
using net::VerifierEndpoint;
using verify::Deployment;
using verify::DeviceId;
using verify::FarmOptions;
using verify::Verdict;
using verify::VerifierFarm;
using verify::VerifyConfig;

// One clean attested run shared by every session test (the prover side of
// the protocol is the same signed chain each time; only the link differs).
struct Fixture {
  PreparedApp prepared;
  AttestedRun clean;
  std::shared_ptr<const Deployment> deployment;
  VerifyConfig config;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture out{apps::prepare_app(apps::app_by_name("gps")), {}, nullptr, {}};
    const fault::CampaignOptions options;  // small MTB: multi-report chains
    out.clean = fault::attest_once(out.prepared, options);
    EXPECT_TRUE(out.clean.functional_ok);
    EXPECT_GT(out.clean.reports.size(), 2u);
    out.deployment = Deployment::rap(out.prepared.rap.program,
                                     out.prepared.rap.manifest,
                                     out.prepared.built.entry);
    out.config.expected_watermark = options.watermark_bytes;
    return out;
  }();
  return fx;
}

void provision(VerifierFarm& farm, DeviceId device) {
  farm.provision(device, fixture().deployment, fixture().config);
  farm.adopt_challenge(device, fixture().clean.chal);
}

// Drive one full session of the fixture chain over `link`.
SessionOutcome run_fixture_session(VerifierFarm& farm,
                                   VerifierEndpoint& endpoint, DeviceId device,
                                   u64 session_id, DuplexLink& link, u64 seed,
                                   net::ProverOptions prover_options = {}) {
  provision(farm, device);
  ProverEndpoint prover(device, session_id, fixture().clean.reports,
                        prover_options, seed);
  return run_session(prover, endpoint, link);
}

/// The lossless ground-truth digest every lossy run must reproduce.
const crypto::Digest& lossless_digest() {
  static const crypto::Digest digest = [] {
    VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    VerifierEndpoint endpoint(farm);
    DuplexLink link(LinkModel{}, LinkModel{}, /*seed=*/1);
    const SessionOutcome outcome =
        run_fixture_session(farm, endpoint, /*device=*/1, /*session=*/1, link,
                            /*seed=*/1);
    EXPECT_EQ(outcome.phase, ProverPhase::Done);
    EXPECT_TRUE(outcome.verdict.has_value());
    EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept);
    return outcome.verdict->digest;
  }();
  return digest;
}

// -- wire format -------------------------------------------------------------

TEST(NetWire, DatagramRoundTripsAllKinds) {
  for (const DatagramKind kind :
       {DatagramKind::Data, DatagramKind::Ack, DatagramKind::Verdict}) {
    Datagram dgram;
    dgram.kind = kind;
    dgram.device = 0x1122334455667788ull;
    dgram.session = 42;
    dgram.seq = 7;
    dgram.payload = {0xde, 0xad, 0xbe, 0xef};
    const auto frame = net::encode_datagram(dgram);
    const auto decoded = net::try_decode_datagram(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error;
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->device, dgram.device);
    EXPECT_EQ(decoded->session, dgram.session);
    EXPECT_EQ(decoded->seq, dgram.seq);
    EXPECT_EQ(decoded->payload, dgram.payload);
  }
}

TEST(NetWire, EveryBitFlipIsCaughtByTheCrc) {
  Datagram dgram;
  dgram.kind = DatagramKind::Data;
  dgram.device = 9;
  dgram.session = 9;
  dgram.seq = 3;
  dgram.payload = {1, 2, 3, 4, 5};
  const auto frame = net::encode_datagram(dgram);
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto damaged = frame;
    damaged[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    EXPECT_FALSE(net::try_decode_datagram(damaged).ok()) << "bit " << bit;
  }
  // Truncation at any prefix length dies too.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(
        net::try_decode_datagram(std::span(frame.data(), len)).ok())
        << "len " << len;
  }
}

TEST(NetWire, NackRangesRoundTripAndRejectForgedCounts) {
  const std::vector<SeqRange> ranges = {{0, 3}, {7, 1}, {100, 42}};
  const auto payload = net::encode_nack_ranges(ranges);
  const auto decoded = net::try_decode_nack_ranges(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(*decoded, ranges);

  // A forged count larger than the payload could carry must not allocate.
  std::vector<u8> forged = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(net::try_decode_nack_ranges(forged).ok());
}

TEST(NetWire, VerdictMessageRoundTrips) {
  VerdictMessage message;
  message.verdict = Verdict::Inconclusive;
  message.digest.fill(0xab);
  message.detail = "chain gap (seq 3)";
  const auto payload = net::encode_verdict(message);
  const auto decoded = net::try_decode_verdict(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_TRUE(*decoded == message);

  std::vector<u8> bad = payload;
  bad[0] = 0x7f;  // unknown verdict discriminant
  EXPECT_FALSE(net::try_decode_verdict(bad).ok());
}

// -- link model --------------------------------------------------------------

TEST(NetLink, SameSeedSameSchedule) {
  const LinkModel model = LinkModel::lossy(300);
  std::vector<std::vector<u8>> frames;
  for (u8 i = 0; i < 50; ++i) frames.push_back({i, u8(i + 1), u8(i + 2)});

  const auto play = [&](u64 seed) {
    LossyLink link(model, seed);
    std::vector<std::vector<u8>> delivered;
    for (u64 tick = 0; tick < 200; ++tick) {
      if (tick < frames.size()) link.send(tick, frames[tick]);
      for (auto& frame : link.deliver_due(tick)) {
        delivered.push_back(std::move(frame));
      }
    }
    return std::pair{delivered, link.stats()};
  };

  const auto [a, stats_a] = play(0xfeed);
  const auto [b, stats_b] = play(0xfeed);
  EXPECT_EQ(a, b);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);

  // A different seed must actually change the schedule (the model is lossy
  // enough that identical delivery would mean the seed is ignored).
  const auto [c, stats_c] = play(0xbeef);
  EXPECT_NE(a, c);
}

TEST(NetLink, LossyModelActuallyDropsDuplicatesAndReorders) {
  LossyLink link(LinkModel::lossy(400), /*seed=*/7);
  for (u64 tick = 0; tick < 2000; ++tick) {
    link.send(tick, {1, 2, 3, 4});
    link.deliver_due(tick);
  }
  const auto& stats = link.stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_EQ(stats.sent, 2000u);
}

// -- session protocol --------------------------------------------------------

TEST(NetSession, CleanLinkAcceptsFirstTry) {
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  VerifierEndpoint endpoint(farm);
  DuplexLink link(LinkModel{}, LinkModel{}, /*seed=*/2);
  const SessionOutcome outcome = run_fixture_session(
      farm, endpoint, /*device=*/10, /*session=*/1, link, /*seed=*/2);

  ASSERT_EQ(outcome.phase, ProverPhase::Done);
  ASSERT_TRUE(outcome.verdict.has_value());
  EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept);
  EXPECT_EQ(outcome.verdict->digest, lossless_digest());
  EXPECT_EQ(endpoint.stats().repair_rounds, 0u);
  EXPECT_EQ(endpoint.stats().mac_drops, 0u);

  const auto info = endpoint.session_info(10, 1);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->terminal);
  EXPECT_TRUE(info->open_gaps.empty());
}

// The PR's acceptance scenario: 25% datagram loss with reordering and
// duplication on both directions still converges to Accept with zero chain
// gaps, and the terminal digest is byte-identical to the lossless run.
TEST(NetSession, TwentyFivePercentLossConvergesToAccept) {
  constexpr u64 kSeed = 0xc0ffee;
  SCOPED_TRACE("replay seed: 0xc0ffee");
  const LinkModel lossy = LinkModel::lossy(250);

  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  VerifierEndpoint endpoint(farm);
  DuplexLink link(lossy, lossy, kSeed);
  const SessionOutcome outcome = run_fixture_session(
      farm, endpoint, /*device=*/20, /*session=*/1, link, kSeed);

  ASSERT_EQ(outcome.phase, ProverPhase::Done) << "seed=" << kSeed;
  ASSERT_TRUE(outcome.verdict.has_value());
  EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept) << "seed=" << kSeed;
  EXPECT_EQ(outcome.verdict->digest, lossless_digest()) << "seed=" << kSeed;

  const auto info = endpoint.session_info(20, 1);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->terminal);
  EXPECT_TRUE(info->open_gaps.empty());

  // The link must actually have been hostile for this to mean anything.
  EXPECT_GT(link.to_verifier_stats().dropped +
                link.to_prover_stats().dropped,
            0u)
      << "seed=" << kSeed;
}

// Deterministic gap-repair: deliver the chain with one interior report
// withheld. The first submission is Inconclusive with exactly that gap,
// the ACK carries it as a selective NACK, and supplying the missing report
// converts the verdict to Accept — the repair path in isolation.
TEST(NetSession, NackRepairConvertsInconclusiveToAccept) {
  const auto& chain = fixture().clean.reports;
  ASSERT_GT(chain.size(), 2u);
  const size_t withheld = 1;

  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  provision(farm, /*device=*/30);
  VerifierEndpoint endpoint(farm);
  DuplexLink link(LinkModel{}, LinkModel{}, /*seed=*/3);

  const auto send_report = [&](const cfa::SignedReport& report) {
    Datagram dgram;
    dgram.kind = DatagramKind::Data;
    dgram.device = 30;
    dgram.session = 1;
    dgram.seq = report.sequence;
    dgram.payload = cfa::encode_report(report);
    link.send_to_verifier(net::encode_datagram(dgram));
  };

  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != withheld) send_report(chain[i]);
  }
  for (int tick = 0; tick < 16; ++tick) {
    endpoint.on_tick(link);
    link.advance();
  }
  // Final present, interior missing: one Inconclusive submission, NACKed.
  EXPECT_EQ(endpoint.stats().submissions, 1u);
  EXPECT_EQ(endpoint.stats().repair_rounds, 1u);
  EXPECT_GE(endpoint.stats().nack_ranges_sent, 1u);
  auto info = endpoint.session_info(30, 1);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->terminal);
  ASSERT_EQ(info->open_gaps.size(), 1u);
  EXPECT_EQ(info->open_gaps[0].first, chain[withheld].sequence);
  EXPECT_EQ(info->open_gaps[0].count, 1u);

  // Repair: the withheld report arrives; the resubmission accepts.
  send_report(chain[withheld]);
  for (int tick = 0; tick < 16; ++tick) {
    endpoint.on_tick(link);
    link.advance();
  }
  info = endpoint.session_info(30, 1);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->terminal);
  EXPECT_EQ(info->verdict.verdict, Verdict::Accept);
  EXPECT_EQ(info->verdict.digest, lossless_digest());
  EXPECT_TRUE(info->open_gaps.empty());
}

// The prover side of the same story: NACK-triggered retransmits are counted
// and a lossy-but-alive session still terminates.
TEST(NetSession, ProverRetransmitsUnderLoss) {
  constexpr u64 kSeed = 0x5eed5;
  const LinkModel lossy = LinkModel::lossy(300);
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  VerifierEndpoint endpoint(farm);
  provision(farm, /*device=*/40);
  DuplexLink link(lossy, lossy, kSeed);
  ProverEndpoint prover(40, 1, fixture().clean.reports, {}, kSeed);
  const SessionOutcome outcome = run_session(prover, endpoint, link);

  ASSERT_EQ(outcome.phase, ProverPhase::Done) << "seed=" << kSeed;
  EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept) << "seed=" << kSeed;
  EXPECT_GT(prover.stats().retransmits_timeout + prover.stats().retransmits_nack,
            0u)
      << "seed=" << kSeed;
  EXPECT_GT(prover.stats().acks_received, 0u);
}

// A dead link (100% loss) exhausts the retry budget: bounded give-up, no
// spinning forever.
TEST(NetSession, DeadLinkGivesUpWithinBudget) {
  LinkModel dead;
  dead.drop_permille = 1000;
  VerifierFarm farm(apps::demo_key(), {.workers = 1});
  VerifierEndpoint endpoint(farm);
  DuplexLink link(dead, dead, /*seed=*/4);
  const SessionOutcome outcome = run_fixture_session(
      farm, endpoint, /*device=*/50, /*session=*/1, link, /*seed=*/4);
  EXPECT_EQ(outcome.phase, ProverPhase::GaveUp);
  EXPECT_FALSE(outcome.verdict.has_value());
  EXPECT_LT(outcome.ticks, 100'000u);
}

// -- tampering, quarantine, flood --------------------------------------------

// An in-path adversary mutating datagrams (valid CRC, forged report) never
// corrupts the outcome: forged frames die at the MAC door, strikes accrue,
// and the genuine retransmissions still converge to the lossless digest.
TEST(NetSession, InPathTamperingDiesAtTheMacDoorAndStillAccepts) {
  constexpr u64 kSeed = 0x7a3b;
  LinkModel hostile;
  hostile.tamper_permille = 200;
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  VerifierEndpoint endpoint(farm);
  DuplexLink link(hostile, LinkModel{}, kSeed);
  const SessionOutcome outcome = run_fixture_session(
      farm, endpoint, /*device=*/60, /*session=*/1, link, kSeed);

  ASSERT_EQ(outcome.phase, ProverPhase::Done) << "seed=" << kSeed;
  EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept) << "seed=" << kSeed;
  EXPECT_EQ(outcome.verdict->digest, lossless_digest()) << "seed=" << kSeed;
  EXPECT_GT(link.to_verifier_stats().tampered, 0u) << "seed=" << kSeed;
  EXPECT_GT(endpoint.stats().mac_drops, 0u) << "seed=" << kSeed;
}

TEST(NetQuarantine, RepeatedForgeryOpensTheBreakerThenProbeReadmits) {
  FarmOptions options;
  options.workers = 1;
  options.quarantine.enabled = true;
  options.quarantine.strike_threshold = 3;
  options.quarantine.cooldown = 2;
  VerifierFarm farm(apps::demo_key(), options);
  provision(farm, /*device=*/70);

  // Forge: flip a MAC byte on every report of the clean chain.
  auto forged = fixture().clean.reports;
  for (auto& report : forged) report.mac[0] ^= 0xff;

  // Strike up to the threshold: each forged chain is a MAC-forgery reject.
  for (u32 i = 0; i < options.quarantine.strike_threshold; ++i) {
    const auto result = farm.submit(70, fixture().clean.chal, forged).get();
    EXPECT_EQ(result.verdict, Verdict::Reject);
    EXPECT_FALSE(result.authentic);
  }
  farm.drain();
  EXPECT_EQ(farm.breaker_state(70), VerifierFarm::Breaker::Open);

  // While open, the door rejects without running the verifier core.
  auto rejected = farm.submit(70, fixture().clean.chal,
                              fixture().clean.reports).get();
  EXPECT_EQ(rejected.verdict, Verdict::Reject);
  EXPECT_EQ(rejected.detail.rfind("device quarantined", 0), 0u)
      << rejected.detail;
  // That rejection consumed one cooldown unit; one more exhausts it.
  rejected = farm.submit(70, fixture().clean.chal, forged).get();
  EXPECT_EQ(rejected.detail.rfind("device quarantined", 0), 0u);

  // Cooldown spent: the next submission is admitted as the half-open probe
  // and, being clean, closes the breaker with an Accept.
  const auto probe = farm.submit(70, fixture().clean.chal,
                                 fixture().clean.reports).get();
  EXPECT_EQ(probe.verdict, Verdict::Accept) << probe.detail;
  farm.drain();
  EXPECT_EQ(farm.breaker_state(70), VerifierFarm::Breaker::Closed);
}

TEST(NetQuarantine, FailedProbeReopensWithLongerCooldown) {
  FarmOptions options;
  options.workers = 1;
  options.quarantine.enabled = true;
  options.quarantine.strike_threshold = 1;
  options.quarantine.cooldown = 1;
  options.quarantine.backoff_cap = 8;
  VerifierFarm farm(apps::demo_key(), options);
  provision(farm, /*device=*/71);

  auto forged = fixture().clean.reports;
  for (auto& report : forged) report.mac[0] ^= 0xff;

  farm.submit(71, fixture().clean.chal, forged).get();  // strike -> open
  farm.drain();
  ASSERT_EQ(farm.breaker_state(71), VerifierFarm::Breaker::Open);
  farm.submit(71, fixture().clean.chal, forged).get();  // burns cooldown
  // Probe admitted — but it is another forgery: reopen, doubled cooldown.
  farm.submit(71, fixture().clean.chal, forged).get();
  farm.drain();
  EXPECT_EQ(farm.breaker_state(71), VerifierFarm::Breaker::Open);
  // Doubled cooldown: two door rejects before the next probe is admitted.
  for (int i = 0; i < 2; ++i) {
    const auto r = farm.submit(71, fixture().clean.chal,
                               fixture().clean.reports).get();
    EXPECT_EQ(r.detail.rfind("device quarantined", 0), 0u) << r.detail;
  }
  const auto probe = farm.submit(71, fixture().clean.chal,
                                 fixture().clean.reports).get();
  EXPECT_EQ(probe.verdict, Verdict::Accept) << probe.detail;
}

TEST(NetSession, FloodBudgetStrikesTheDevice) {
  FarmOptions farm_options;
  farm_options.workers = 1;
  farm_options.quarantine.enabled = true;
  farm_options.quarantine.strike_threshold = 3;
  VerifierFarm farm(apps::demo_key(), farm_options);
  provision(farm, /*device=*/80);

  net::VerifierOptions options;
  options.flood_datagram_budget = 4;
  VerifierEndpoint endpoint(farm, options);
  DuplexLink link(LinkModel{}, LinkModel{}, /*seed=*/5);

  // Blast one report far past the budget.
  Datagram dgram;
  dgram.kind = DatagramKind::Data;
  dgram.device = 80;
  dgram.session = 1;
  dgram.seq = fixture().clean.reports[0].sequence;
  dgram.payload = cfa::encode_report(fixture().clean.reports[0]);
  const auto frame = net::encode_datagram(dgram);
  for (int i = 0; i < 16; ++i) {
    link.send_to_verifier(frame);
    endpoint.on_tick(link);
    link.advance();
  }
  for (int i = 0; i < 8; ++i) {
    endpoint.on_tick(link);
    link.advance();
  }
  EXPECT_GT(endpoint.stats().flood_strikes, 0u);
  EXPECT_EQ(farm.breaker_state(80), VerifierFarm::Breaker::Open);
}

// -- crash recovery ----------------------------------------------------------

TEST(NetRecovery, SessionStoreSerializeRoundTrips) {
  VerifierFarm farm(apps::demo_key(), {.workers = 1});
  provision(farm, /*device=*/90);
  provision(farm, /*device=*/91);
  const auto blob = farm.sessions().serialize();

  VerifierFarm fresh(apps::demo_key(), {.workers = 1});
  ASSERT_TRUE(fresh.sessions().deserialize(blob));
  EXPECT_EQ(fresh.sessions().serialize(), blob);

  // Corruption and truncation are all-or-nothing rejected.
  auto damaged = blob;
  damaged[damaged.size() / 2] ^= 0x01;
  EXPECT_FALSE(fresh.sessions().deserialize(damaged));
  EXPECT_FALSE(fresh.sessions().deserialize(
      std::span(blob.data(), blob.size() - 1)));
  // The failed loads left the previously-restored state intact.
  EXPECT_EQ(fresh.sessions().serialize(), blob);
}

// The acceptance scenario: kill the verifier mid-session, restore a fresh
// farm + endpoint from the snapshot, and finish to the same terminal
// verdict digest the uninterrupted run reaches.
TEST(NetRecovery, SnapshotRestoreMidSessionResumesToSameDigest) {
  constexpr u64 kSeed = 0xabcdef;
  SCOPED_TRACE("replay seed: 0xabcdef");
  const LinkModel lossy = LinkModel::lossy(250);

  // Uninterrupted baseline.
  crypto::Digest baseline;
  {
    VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
    VerifierEndpoint endpoint(farm);
    DuplexLink link(lossy, lossy, kSeed);
    const SessionOutcome outcome = run_fixture_session(
        farm, endpoint, /*device=*/100, /*session=*/1, link, kSeed);
    ASSERT_EQ(outcome.phase, ProverPhase::Done) << "seed=" << kSeed;
    ASSERT_EQ(outcome.verdict->verdict, Verdict::Accept) << "seed=" << kSeed;
    baseline = outcome.verdict->digest;
  }

  // Same seeds, but the verifier crashes mid-flight.
  VerifierFarm farm(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  provision(farm, /*device=*/100);
  auto endpoint = std::make_unique<VerifierEndpoint>(farm);
  DuplexLink link(lossy, lossy, kSeed);
  ProverEndpoint prover(100, 1, fixture().clean.reports, {}, kSeed);

  constexpr u64 kCrashTick = 40;
  for (u64 tick = 0; tick < kCrashTick; ++tick) {
    prover.on_tick(link);
    endpoint->on_tick(link);
    link.advance();
  }
  ASSERT_EQ(prover.phase(), ProverPhase::Sending)
      << "crashed after the session already finished; lower kCrashTick";
  const std::vector<u8> snapshot = endpoint->snapshot();

  // Crash: endpoint and farm die. A new farm re-provisions its deployments
  // (not part of the snapshot), then restores challenge + session state.
  endpoint.reset();
  VerifierFarm recovered(apps::demo_key(), {.workers = 2, .clamp_workers = false});
  recovered.provision(100, fixture().deployment, fixture().config);
  VerifierEndpoint restored(recovered);
  ASSERT_TRUE(restored.restore(snapshot));

  // The prover never noticed; its ARQ rides out the dead window.
  const SessionOutcome outcome = run_session(prover, restored, link);
  ASSERT_EQ(outcome.phase, ProverPhase::Done) << "seed=" << kSeed;
  ASSERT_TRUE(outcome.verdict.has_value());
  EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept) << "seed=" << kSeed;
  EXPECT_EQ(outcome.verdict->digest, baseline) << "seed=" << kSeed;
}

// The VSS1 v2 snapshot carries one warm memo-cache section per provisioned
// deployment, keyed by expected H_MEM: a recovered endpoint whose farm
// re-provisions the same image starts with the cache warm, not cold.
TEST(NetRecovery, SnapshotCarriesWarmMemoCacheAcrossRestore) {
  if constexpr (!verify::kMemoEnabled) GTEST_SKIP() << "RAP_MEMO off";
  // A private deployment so this test controls its own cache warmth; short
  // memo windows with backoff disabled guarantee cache traffic on this
  // checkpoint-dense RAP chain (same settings as the memo differentials).
  const verify::MemoOptions dense{.window_packets = 4,
                                  .anchor_backoff_cap = 0};
  const auto warm_deployment = Deployment::rap(fixture().prepared.rap.program,
                                               fixture().prepared.rap.manifest,
                                               fixture().prepared.built.entry,
                                               dense);
  VerifierFarm farm(apps::demo_key(), {.workers = 1});
  farm.provision(120, warm_deployment, fixture().config);
  farm.adopt_challenge(120, fixture().clean.chal);
  VerifierEndpoint endpoint(farm);
  DuplexLink link(LinkModel{}, LinkModel{}, /*seed=*/9);
  ProverEndpoint prover(120, 1, fixture().clean.reports, {}, /*seed=*/9);
  const SessionOutcome outcome = run_session(prover, endpoint, link);
  ASSERT_EQ(outcome.phase, ProverPhase::Done);
  ASSERT_EQ(outcome.verdict->verdict, Verdict::Accept);
  ASSERT_GT(warm_deployment->memo().stats().entries, 0u)
      << "session never warmed the cache; the test is vacuous";
  const auto snapshot = endpoint.snapshot();

  // Crash: fresh farm, fresh deployment of the same image (fresh = cold
  // cache), restore. The warm section must land in the new cache.
  const auto fresh_deployment = Deployment::rap(
      fixture().prepared.rap.program, fixture().prepared.rap.manifest,
      fixture().prepared.built.entry, dense);
  ASSERT_EQ(fresh_deployment->memo().stats().entries, 0u);
  VerifierFarm recovered(apps::demo_key(), {.workers = 1});
  recovered.provision(120, fresh_deployment, fixture().config);
  VerifierEndpoint restored(recovered);
  ASSERT_TRUE(restored.restore(snapshot));
  EXPECT_GT(fresh_deployment->memo().stats().entries, 0u)
      << "restore never warmed the re-provisioned deployment's cache";
}

TEST(NetRecovery, SnapshotRejectsCorruptionTruncationAndBadMagic) {
  VerifierFarm farm(apps::demo_key(), {.workers = 1});
  provision(farm, /*device=*/110);
  VerifierEndpoint endpoint(farm);
  const auto blob = endpoint.snapshot();
  ASSERT_GT(blob.size(), 12u);

  for (size_t i = 0; i < blob.size(); ++i) {
    auto damaged = blob;
    damaged[i] ^= 0x01;
    EXPECT_FALSE(endpoint.restore(damaged)) << "byte " << i;
  }
  EXPECT_FALSE(endpoint.restore(std::span(blob.data(), blob.size() - 1)));
  EXPECT_FALSE(endpoint.restore({}));
  // The original blob still loads after all the failed attempts.
  EXPECT_TRUE(endpoint.restore(blob));
}

// -- soak --------------------------------------------------------------------

// The soak harness: 300+ seeded sessions sweeping loss 0..40%, every one
// must terminate (Accept or bounded give-up), and every Accept must carry
// the lossless digest. One farm serves all sessions, as in deployment.
TEST(NetSoak, ThreeHundredSeededSessionsAcrossTheLossSweep) {
  VerifierFarm farm(apps::demo_key(), {.workers = 4, .clamp_workers = false});
  VerifierEndpoint endpoint(farm);

  const std::vector<u32> loss_levels = {0, 50, 100, 150, 200, 250, 300, 350,
                                        400};
  constexpr u64 kSeedsPerLevel = 34;  // 9 * 34 = 306 sessions
  u64 sessions = 0, accepts = 0, gave_up = 0;
  for (size_t level = 0; level < loss_levels.size(); ++level) {
    const LinkModel model = LinkModel::lossy(loss_levels[level]);
    for (u64 s = 0; s < kSeedsPerLevel; ++s) {
      const u64 seed = 0x50a4'0000 + level * 1000 + s;
      const DeviceId device = 1000 + sessions;
      DuplexLink link(model, model, seed);
      const SessionOutcome outcome = run_fixture_session(
          farm, endpoint, device, /*session=*/1, link, seed);
      ++sessions;

      ASSERT_NE(outcome.phase, ProverPhase::Sending)
          << "unbounded session: loss=" << loss_levels[level]
          << " seed=" << seed;
      if (outcome.phase == ProverPhase::Done) {
        ++accepts;
        ASSERT_TRUE(outcome.verdict.has_value());
        EXPECT_EQ(outcome.verdict->verdict, Verdict::Accept)
            << "loss=" << loss_levels[level] << " seed=" << seed;
        EXPECT_EQ(outcome.verdict->digest, lossless_digest())
            << "loss=" << loss_levels[level] << " seed=" << seed;
      } else {
        ++gave_up;
        // Give-up is only acceptable where the link is actually brutal.
        EXPECT_GE(loss_levels[level], 300u)
            << "gave up on a mild link: seed=" << seed;
      }
    }
  }
  EXPECT_GE(sessions, 300u);
  // The sweep as a whole must overwhelmingly converge.
  EXPECT_GE(accepts * 100, sessions * 95)
      << "accepts=" << accepts << " gave_up=" << gave_up;
}

}  // namespace
}  // namespace raptrack
