// Unit tests: the RAP-Track offline phase — MTBAR/MTBDR layout, the five
// trampoline shapes of Figs 3-7, loop-optimization veneers, in-place
// patching, and semantic preservation of rewritten programs.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cpu/executor.hpp"
#include "mem/bus.hpp"
#include "rewrite/manifest_io.hpp"
#include "rewrite/rap_rewriter.hpp"

namespace raptrack::rewrite {
namespace {

using isa::BranchKind;
using isa::Op;

struct Built {
  Program program;
  Address entry;
  Address code_end;
};

Built build(std::string_view src) {
  Built b{assemble(src, 0x0020'0000), 0, 0};
  b.entry = *b.program.symbol("_start");
  b.code_end = *b.program.symbol("__code_end");
  return b;
}

RewriteResult rewrite(const Built& b, RewriteOptions options = {}) {
  return rewrite_for_rap_track(b.program, b.entry, b.program.base(),
                               b.code_end, options);
}

/// Run a program to halt and return final R0/R1 for semantic checks.
std::pair<Word, Word> run(const Program& p, Address entry) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus(map);
  cpu::Executor cpu(bus);
  map.load(p.base(), p.bytes());
  cpu.reset(entry, mem::MapLayout::kNsRamBase + 0x1000);
  EXPECT_EQ(cpu.run(100000), cpu::HaltReason::Halted);
  return {cpu.state().reg(isa::Reg::R0), cpu.state().reg(isa::Reg::R1)};
}

TEST(RapRewriter, IndirectCallGetsFig3Trampoline) {
  const Built b = build(R"(
_start:
    li r3, =callee
    blx r3
    hlt
callee:
    movi r0, #42
    bx lr
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  ASSERT_EQ(result.manifest.slots.size(), 1u);
  const SlotRecord& slot = result.manifest.slots[0];
  EXPECT_EQ(slot.kind, SlotKind::IndirectCall);
  // The site is now a direct BL to the slot (Fig 3).
  const auto patched = result.program.instruction_at(slot.site);
  EXPECT_EQ(patched->op, Op::BL);
  EXPECT_EQ(isa::branch_target(*patched, slot.site), slot.slot_base);
  // The slot ends with BX to the original register.
  const auto body =
      result.program.instruction_at(slot.slot_end - 4);
  EXPECT_EQ(body->op, Op::BX);
  EXPECT_EQ(body->rm, isa::Reg::R3);
  // Slot lives inside the MTBAR.
  EXPECT_GE(slot.slot_base, result.manifest.mtbar_base);
  EXPECT_LE(slot.slot_end - 4, result.manifest.mtbar_limit);
  // Semantics preserved.
  EXPECT_EQ(run(result.program, b.entry).first, 42u);
}

TEST(RapRewriter, ReturnPopGetsFig4Trampoline) {
  const Built b = build(R"(
_start:
    bl fn
    hlt
fn:
    push {r4, lr}
    movi r0, #7
    pop {r4, pc}
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  ASSERT_EQ(result.manifest.slots.size(), 1u);
  const SlotRecord& slot = result.manifest.slots[0];
  EXPECT_EQ(slot.kind, SlotKind::ReturnPop);
  EXPECT_EQ(result.program.instruction_at(slot.site)->op, Op::B);
  EXPECT_EQ(result.program.instruction_at(slot.slot_end - 4)->op, Op::POP);
  EXPECT_EQ(run(result.program, b.entry).first, 7u);
}

TEST(RapRewriter, BxLrStaysUnmonitored) {
  const Built b = build(R"(
_start:
    bl leaf
    hlt
leaf:
    movi r0, #1
    bx lr
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  EXPECT_TRUE(result.manifest.slots.empty());  // §IV-C.2
  EXPECT_EQ(run(result.program, b.entry).first, 1u);
}

TEST(RapRewriter, NonLoopConditionalLogsTakenEdge) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    bne not_taken_path
    movi r1, #1
not_taken_path:
    hlt
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  ASSERT_EQ(result.manifest.slots.size(), 1u);
  const SlotRecord& slot = result.manifest.slots[0];
  EXPECT_EQ(slot.kind, SlotKind::CondTaken);
  // Bcc retargeted into the slot, condition preserved (Fig 5).
  const auto patched = result.program.instruction_at(slot.site);
  EXPECT_EQ(patched->op, Op::BCC);
  EXPECT_EQ(patched->cond, isa::Cond::NE);
  EXPECT_EQ(isa::branch_target(*patched, slot.site), slot.slot_base);
  // Slot branches to the original taken target.
  const auto body = result.program.instruction_at(slot.slot_end - 4);
  EXPECT_EQ(body->op, Op::B);
  EXPECT_EQ(isa::branch_target(*body, slot.slot_end - 4), slot.continuation);
  EXPECT_EQ(run(result.program, b.entry).second, 1u);  // r1 set (r0 == 0)
}

TEST(RapRewriter, ForwardLoopExitDisplacesFallthrough) {
  const Built b = build(R"(
_start:
    mov r1, r0
    movi r0, #0
loop:
    cmp r1, #0
    beq exit
    add r0, r0, r1      ; first fall-through instruction (gets displaced)
    sub r1, r1, #1
    cmp r2, #99         ; extra conditional: loop is not "simple"
    beq exit
    b loop
exit:
    hlt
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  const Address beq_site = *b.program.symbol("loop") + 4;
  const SlotRecord* slot = result.manifest.slot_for_site(beq_site);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->kind, SlotKind::CondNotTaken);
  // The displaced ADD now lives in the slot; the fall-through site branches
  // to the slot (Fig 7).
  EXPECT_EQ(result.program.instruction_at(beq_site + 4)->op, Op::B);
  EXPECT_EQ(slot->continuation, beq_site + 8);
  EXPECT_EQ(run(result.program, b.entry).first, 0u);  // r0 == 0: sum of nothing
}

TEST(RapRewriter, DeterministicLoopNeedsNoTrampoline) {
  const Built b = build(R"(
_start:
    movi r0, #0
    movi r1, #0
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  EXPECT_TRUE(result.manifest.slots.empty());
  EXPECT_TRUE(result.manifest.loop_veneers.empty());
  EXPECT_EQ(result.manifest.deterministic_loops.size(), 1u);
  EXPECT_EQ(run(result.program, b.entry).first, 0u + 1 + 2 + 3 + 4);
}

TEST(RapRewriter, LoopOptimizationInsertsVeneer) {
  const Built b = build(R"(
_start:
    movi r0, #0
    mov r1, r2          ; variable iterator init (displaced into the veneer)
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  EXPECT_TRUE(result.manifest.slots.empty());  // no per-iteration logging
  ASSERT_EQ(result.manifest.loop_veneers.size(), 1u);
  const LoopVeneerRecord& veneer = result.manifest.loop_veneers[0];
  // Site replaced with a branch to the veneer.
  EXPECT_EQ(result.program.instruction_at(veneer.site)->op, Op::B);
  // Veneer: displaced instruction, SVC, branch back to the loop header.
  EXPECT_EQ(result.program.instruction_at(veneer.veneer_base)->op, Op::MOV);
  EXPECT_EQ(result.program.instruction_at(veneer.svc_addr)->op, Op::SVC);
  EXPECT_EQ(veneer.loop.iterator, isa::Reg::R1);
  // The veneer sits in the MTBDR (below the MTBAR).
  EXPECT_LT(veneer.veneer_base, result.manifest.mtbar_base);
}

TEST(RapRewriter, LoopOptAblationFallsBackToPerIteration) {
  const Built b = build(R"(
_start:
    movi r0, #0
    mov r1, r2
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  RewriteOptions options;
  options.loop_optimization = false;
  const RewriteResult result = rewrite(b, options);
  EXPECT_TRUE(result.manifest.loop_veneers.empty());
  EXPECT_EQ(result.manifest.slots.size(), 1u);  // the blt gets a trampoline
}

TEST(RapRewriter, DeterministicElisionAblation) {
  const Built b = build(R"(
_start:
    movi r1, #0
loop:
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    hlt
__code_end:
  )");
  RewriteOptions options;
  options.deterministic_loop_elision = false;
  const RewriteResult result = rewrite(b, options);
  EXPECT_EQ(result.manifest.slots.size(), 1u);
  EXPECT_TRUE(result.manifest.deterministic_loops.empty());
}

TEST(RapRewriter, NopPaddingMatchesOption) {
  const Built b = build(R"(
_start:
    li r3, =fn
    blx r3
    hlt
fn:
    bx lr
__code_end:
  )");
  for (const u32 pad : {0u, 1u, 3u}) {
    RewriteOptions options;
    options.nop_pad = pad;
    const RewriteResult result = rewrite(b, options);
    const SlotRecord& slot = result.manifest.slots.at(0);
    EXPECT_EQ(slot.slot_end - slot.slot_base, (pad + 1) * 4);
    for (u32 i = 0; i < pad; ++i) {
      EXPECT_EQ(result.program.instruction_at(slot.slot_base + 4 * i)->op,
                Op::NOP);
    }
  }
}

TEST(RapRewriter, MtbarAndMtbdrPartitionTheImage) {
  const Built b = build(R"(
_start:
    cmp r0, #0
    beq skip
    movi r1, #1
skip:
    hlt
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  const Manifest& m = result.manifest;
  EXPECT_EQ(m.mtbdr_base, result.program.base());
  EXPECT_EQ(m.mtbdr_limit, m.mtbar_base - 4);
  EXPECT_EQ(m.mtbar_limit, result.program.end() - 4);
  EXPECT_EQ(m.image_end, result.program.end());
  EXPECT_GT(result.rewritten_bytes, result.original_bytes);
}

TEST(RapRewriter, RejectsUnsupportedShapes) {
  const Built svc_app = build("_start:\n    svc #1\n    hlt\n__code_end:\n");
  EXPECT_THROW(rewrite(svc_app), Error);

  const Built lr_write = build("_start:\n    mov lr, r1\n    hlt\n__code_end:\n");
  EXPECT_THROW(rewrite(lr_write), Error);
}

TEST(RapRewriter, ManifestLookupsWork) {
  const Built b = build(R"(
_start:
    li r3, =fn
    blx r3
    hlt
fn:
    bx lr
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  const SlotRecord& slot = result.manifest.slots[0];
  EXPECT_EQ(result.manifest.slot_containing(slot.slot_base), &slot);
  EXPECT_EQ(result.manifest.slot_containing(slot.slot_end - 4), &slot);
  EXPECT_EQ(result.manifest.slot_containing(slot.slot_end), nullptr);
  EXPECT_EQ(result.manifest.slot_for_site(slot.site), &slot);
  EXPECT_EQ(result.manifest.slot_for_site(0), nullptr);
}

TEST(ManifestIo, RoundTripsTheFullManifest) {
  const Built b = build(R"(
_start:
    li r3, =fn
    blx r3
    mov r1, r2
loop:
    add r0, r0, r1
    addi r1, r1, #1
    cmp r1, #5
    blt loop
    movi r4, #0
det:
    addi r4, r4, #1
    cmp r4, #3
    blt det
    cmp r0, #9
    beq skip
    movi r5, #1
skip:
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  ASSERT_FALSE(result.manifest.slots.empty());
  ASSERT_FALSE(result.manifest.loop_veneers.empty());
  ASSERT_FALSE(result.manifest.deterministic_loops.empty());

  const std::vector<u8> bytes = serialize_manifest(result.manifest);
  const Manifest parsed = deserialize_manifest(bytes);

  EXPECT_EQ(parsed.code_begin, result.manifest.code_begin);
  EXPECT_EQ(parsed.code_end, result.manifest.code_end);
  EXPECT_EQ(parsed.image_end, result.manifest.image_end);
  EXPECT_EQ(parsed.mtbar_base, result.manifest.mtbar_base);
  EXPECT_EQ(parsed.mtbar_limit, result.manifest.mtbar_limit);
  EXPECT_EQ(parsed.mtbdr_base, result.manifest.mtbdr_base);
  EXPECT_EQ(parsed.mtbdr_limit, result.manifest.mtbdr_limit);
  EXPECT_EQ(parsed.nop_pad, result.manifest.nop_pad);

  ASSERT_EQ(parsed.slots.size(), result.manifest.slots.size());
  for (size_t i = 0; i < parsed.slots.size(); ++i) {
    EXPECT_EQ(parsed.slots[i].kind, result.manifest.slots[i].kind);
    EXPECT_EQ(parsed.slots[i].slot_base, result.manifest.slots[i].slot_base);
    EXPECT_EQ(parsed.slots[i].slot_end, result.manifest.slots[i].slot_end);
    EXPECT_EQ(parsed.slots[i].site, result.manifest.slots[i].site);
    EXPECT_EQ(parsed.slots[i].original, result.manifest.slots[i].original);
    EXPECT_EQ(parsed.slots[i].continuation,
              result.manifest.slots[i].continuation);
  }
  ASSERT_EQ(parsed.loop_veneers.size(), result.manifest.loop_veneers.size());
  const auto& veneer = parsed.loop_veneers[0];
  const auto& expected = result.manifest.loop_veneers[0];
  EXPECT_EQ(veneer.veneer_base, expected.veneer_base);
  EXPECT_EQ(veneer.svc_addr, expected.svc_addr);
  EXPECT_EQ(veneer.site, expected.site);
  EXPECT_EQ(veneer.displaced, expected.displaced);
  EXPECT_EQ(veneer.loop.iterator, expected.loop.iterator);
  EXPECT_EQ(veneer.loop.step, expected.loop.step);
  EXPECT_EQ(veneer.loop.bound, expected.loop.bound);
  ASSERT_EQ(parsed.deterministic_loops.size(),
            result.manifest.deterministic_loops.size());
  const auto& [site, loop] = *parsed.deterministic_loops.begin();
  EXPECT_EQ(site, result.manifest.deterministic_loops.begin()->first);
  EXPECT_EQ(loop.constant_init,
            result.manifest.deterministic_loops.begin()->second.constant_init);
}

TEST(ManifestIo, DeserializedManifestDrivesVerification) {
  // The Verifier works from a manifest that went through the wire format.
  const Built b = build(R"(
_start:
    bl fn
    hlt
fn:
    push {r4, lr}
    pop {r4, pc}
__code_end:
  )");
  const RewriteResult result = rewrite(b);
  const Manifest parsed =
      deserialize_manifest(serialize_manifest(result.manifest));
  EXPECT_EQ(parsed.slot_for_site(result.manifest.slots[0].site)->kind,
            result.manifest.slots[0].kind);
}

TEST(ManifestIo, RejectsMalformedInput) {
  const Built b = build("_start:\n    hlt\n__code_end:\n");
  const RewriteResult result = rewrite(b);
  std::vector<u8> bytes = serialize_manifest(result.manifest);

  {
    auto corrupt = bytes;
    corrupt[0] ^= 0xff;  // magic
    EXPECT_THROW(deserialize_manifest(corrupt), Error);
  }
  {
    auto corrupt = bytes;
    corrupt[4] = 99;  // version
    EXPECT_THROW(deserialize_manifest(corrupt), Error);
  }
  {
    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW(deserialize_manifest(truncated), Error);
  }
  {
    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_THROW(deserialize_manifest(trailing), Error);
  }
}

}  // namespace
}  // namespace raptrack::rewrite
