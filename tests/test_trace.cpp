// Unit tests: MTB recording/wrap/watermark/activation-latency, DWT range
// gating, and the paper's §IV-B semantics (transitions into MTBAR are not
// recorded; transitions out of it are).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cpu/executor.hpp"
#include "mem/bus.hpp"
#include "trace/dwt.hpp"
#include "trace/mtb.hpp"
#include "sim/machine.hpp"
#include "trace/trace_fabric.hpp"

namespace raptrack::trace {
namespace {

using isa::BranchKind;

class MtbTest : public ::testing::Test {
 protected:
  MtbTest()
      : map_(mem::MemoryMap::make_default()),
        mtb_(map_, mem::MapLayout::kMtbSramBase, 64) {}

  mem::MemoryMap map_;
  Mtb mtb_;
};

TEST_F(MtbTest, DisabledMtbRecordsNothing) {
  mtb_.set_tstart_enable(true);
  mtb_.on_branch(0x100, 0x200, BranchKind::Direct);
  EXPECT_EQ(mtb_.packets_recorded(), 0u);
}

TEST_F(MtbTest, AlwaysOnModeRecordsEveryBranch) {
  mtb_.set_enabled(true);
  mtb_.set_tstart_enable(true);
  mtb_.on_branch(0x100, 0x200, BranchKind::Direct);
  mtb_.on_branch(0x204, 0x300, BranchKind::DirectCall);
  const PacketLog log = mtb_.read_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].source, 0x100u);
  EXPECT_EQ(log[0].destination, 0x200u);
  EXPECT_TRUE(log[0].atomic_restart);   // A-bit on the first packet
  EXPECT_FALSE(log[1].atomic_restart);
}

TEST_F(MtbTest, PacketsLandInSecureSram) {
  mtb_.set_enabled(true);
  mtb_.set_tstart_enable(true);
  mtb_.on_branch(0x100, 0x200, BranchKind::Direct);
  EXPECT_EQ(map_.raw_read32(mem::MapLayout::kMtbSramBase) & ~1u, 0x100u);
  EXPECT_EQ(map_.raw_read32(mem::MapLayout::kMtbSramBase + 4), 0x200u);
}

TEST_F(MtbTest, WrapsAndKeepsMostRecent) {
  mtb_.set_enabled(true);
  mtb_.set_tstart_enable(true);
  for (u32 i = 0; i < 10; ++i) {  // 10 packets > 8-packet buffer
    mtb_.on_branch(0x100 + 8 * i, 0x200 + 8 * i, BranchKind::Direct);
  }
  EXPECT_TRUE(mtb_.wrapped());
  EXPECT_EQ(mtb_.total_bytes_written(), 80u);
  const PacketLog log = mtb_.read_log();
  ASSERT_EQ(log.size(), 8u);
  // The oldest surviving packet is #2 (0 and 1 were overwritten).
  EXPECT_EQ(log.front().source, 0x110u);
  EXPECT_EQ(log.back().source, 0x148u);
}

TEST_F(MtbTest, WatermarkFiresHandlerAndSupportsReset) {
  mtb_.set_enabled(true);
  mtb_.set_tstart_enable(true);
  mtb_.set_watermark(16);  // every 2 packets
  int fires = 0;
  mtb_.set_watermark_handler([&] {
    ++fires;
    mtb_.reset_position();
  });
  for (u32 i = 0; i < 7; ++i) mtb_.on_branch(8 * i, 0x1000, BranchKind::Direct);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(mtb_.position(), 8u);  // one packet since the last reset
  EXPECT_EQ(mtb_.total_bytes_written(), 56u);
}

TEST_F(MtbTest, WatermarkWithoutResetStillWrapsSafely) {
  // A watermark handler that does not reset the head pointer must not push
  // writes past the buffer: the MTB falls back to its normal wrap.
  mtb_.set_enabled(true);
  mtb_.set_tstart_enable(true);
  mtb_.set_watermark(64);  // == buffer size
  int fires = 0;
  mtb_.set_watermark_handler([&] { ++fires; });  // no reset_position()
  for (u32 i = 0; i < 9; ++i) mtb_.on_branch(8 * i, 0x1000, BranchKind::Direct);
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(mtb_.wrapped());
  EXPECT_EQ(mtb_.position(), 8u);  // one packet past the wrap
  EXPECT_EQ(mtb_.read_log().size(), 8u);
}

TEST_F(MtbTest, WatermarkValidation) {
  EXPECT_THROW(mtb_.set_watermark(12), Error);   // not packet-aligned
  EXPECT_THROW(mtb_.set_watermark(128), Error);  // beyond buffer
  EXPECT_THROW(Mtb(map_, mem::MapLayout::kMtbSramBase, 12), Error);
}

TEST_F(MtbTest, TstartTstopGateRecording) {
  mtb_.set_enabled(true);
  mtb_.set_activation_latency(0);
  mtb_.on_branch(0x100, 0x200, BranchKind::Direct);  // not started
  mtb_.tstart();
  mtb_.on_branch(0x104, 0x204, BranchKind::Direct);  // recorded
  mtb_.tstop();
  mtb_.on_branch(0x108, 0x208, BranchKind::Direct);  // stopped
  EXPECT_EQ(mtb_.packets_recorded(), 1u);
  EXPECT_EQ(mtb_.read_log()[0].source, 0x104u);
}

TEST_F(MtbTest, ActivationLatencyDelaysRecording) {
  mtb_.set_enabled(true);
  mtb_.set_activation_latency(2);
  mtb_.tstart();
  mtb_.on_branch(0x100, 0x200, BranchKind::Direct);  // lost: latency pending
  mtb_.on_instruction_retired();
  mtb_.on_branch(0x104, 0x204, BranchKind::Direct);  // still pending
  mtb_.on_instruction_retired();
  mtb_.on_branch(0x108, 0x208, BranchKind::Direct);  // now live
  ASSERT_EQ(mtb_.packets_recorded(), 1u);
  EXPECT_EQ(mtb_.read_log()[0].source, 0x108u);
}

TEST(Dwt, ComparatorValidation) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  Mtb mtb(map, mem::MapLayout::kMtbSramBase, 64);
  Dwt dwt(mtb);
  EXPECT_THROW(dwt.configure(4, {}), Error);
  EXPECT_THROW(dwt.configure_rap_track(0x200, 0x100, 0x300, 0x400), Error);
}

TEST(Dwt, RangeGatingDrivesMtb) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  Mtb mtb(map, mem::MapLayout::kMtbSramBase, 64);
  mtb.set_enabled(true);
  mtb.set_activation_latency(0);
  Dwt dwt(mtb);
  dwt.configure_rap_track(/*mtbar*/ 0x1000, 0x1fff, /*mtbdr*/ 0x0, 0x0fff);

  dwt.observe(0x0100);  // MTBDR -> stop
  EXPECT_FALSE(mtb.tracing());
  dwt.observe(0x1000);  // MTBAR -> start
  EXPECT_TRUE(mtb.tracing());
  dwt.observe(0x0ffc);  // back to MTBDR -> stop
  EXPECT_FALSE(mtb.tracing());
}

TEST(Dwt, WatchpointComparatorFires) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  Mtb mtb(map, mem::MapLayout::kMtbSramBase, 64);
  Dwt dwt(mtb);
  dwt.configure(0, {ComparatorAction::Watchpoint, 0x1234});
  Address hit = 0;
  dwt.set_watchpoint_handler([&](Address pc) { hit = pc; });
  dwt.observe(0x1230);
  EXPECT_EQ(hit, 0u);
  dwt.observe(0x1234);
  EXPECT_EQ(hit, 0x1234u);
}

// End-to-end §IV-B semantics on a real executor: branches from MTBDR into
// MTBAR are not recorded; branches inside and out of MTBAR are.
TEST(TraceFabric, MtbarEntryUnrecordedExitRecorded) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  mem::Bus bus(map);
  cpu::Executor cpu(bus);
  Mtb mtb(map, mem::MapLayout::kMtbSramBase, 1024);
  Dwt dwt(mtb);
  TraceFabric fabric(dwt, mtb);
  cpu.add_sink(&fabric);

  const Program p = assemble(R"(
    b slot            ; MTBDR -> MTBAR: must NOT be recorded
back:
    hlt
slot:
    nop               ; covers MTB activation latency (1 instruction)
    b back            ; MTBAR -> MTBDR: must be recorded
  )",
                             mem::MapLayout::kNsFlashBase);
  map.load(p.base(), p.bytes());
  const Address slot = *p.symbol("slot");
  mtb.set_enabled(true);
  dwt.configure_rap_track(slot, slot + 8, p.base(), slot - 4);

  cpu.reset(p.base(), mem::MapLayout::kNsRamBase + 0x1000);
  EXPECT_EQ(cpu.run(100), cpu::HaltReason::Halted);

  const PacketLog log = mtb.read_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].source, slot + 4);
  EXPECT_EQ(log[0].destination, *p.symbol("back"));
}

// -- register-level interface (MTB-M33 TRM layout) ---------------------------

TEST_F(MtbTest, RegisterInterfaceMirrorsState) {
  // MASTER: EN + TSTARTEN.
  mtb_.write_register(trace::Mtb::kRegMaster, 0x8000'0020u);
  EXPECT_TRUE(mtb_.enabled());
  EXPECT_TRUE(mtb_.tracing());  // TSTARTEN forces tracing on
  EXPECT_EQ(mtb_.read_register(trace::Mtb::kRegMaster), 0x8000'0020u);

  // FLOW: watermark.
  mtb_.write_register(trace::Mtb::kRegFlow, 16);
  EXPECT_EQ(mtb_.read_register(trace::Mtb::kRegFlow), 16u);

  // POSITION advances with packets and is resettable by register write.
  mtb_.on_branch(0x100, 0x200, isa::BranchKind::Direct);
  EXPECT_EQ(mtb_.read_register(trace::Mtb::kRegPosition), 8u);
  mtb_.write_register(trace::Mtb::kRegPosition, 0);
  EXPECT_EQ(mtb_.position(), 0u);

  // BASE is read-only and reports the buffer address.
  EXPECT_EQ(mtb_.read_register(trace::Mtb::kRegBase),
            mem::MapLayout::kMtbSramBase);
  EXPECT_THROW(mtb_.write_register(trace::Mtb::kRegBase, 0), Error);
  EXPECT_THROW(mtb_.read_register(0x40), Error);
}

TEST(Dwt, RegisterInterfaceProgramsComparators) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  Mtb mtb(map, mem::MapLayout::kMtbSramBase, 64);
  mtb.set_enabled(true);
  mtb.set_activation_latency(0);
  Dwt dwt(mtb);

  // Program the RAP-Track range configuration purely via registers.
  const auto prog = [&](unsigned index, u32 comp, ComparatorAction action) {
    dwt.write_register(index * Dwt::kCompStride + Dwt::kRegComp, comp);
    dwt.write_register(index * Dwt::kCompStride + Dwt::kRegFunction,
                       static_cast<u32>(action));
  };
  prog(0, 0x1000, ComparatorAction::MtbTstartBase);
  prog(1, 0x1fff, ComparatorAction::MtbTstartLimit);
  prog(2, 0x0000, ComparatorAction::MtbTstopBase);
  prog(3, 0x0fff, ComparatorAction::MtbTstopLimit);

  EXPECT_EQ(dwt.read_register(Dwt::kRegComp), 0x1000u);
  EXPECT_EQ(dwt.read_register(Dwt::kRegFunction),
            static_cast<u32>(ComparatorAction::MtbTstartBase));

  dwt.observe(0x1000);
  EXPECT_TRUE(mtb.tracing());
  dwt.observe(0x0800);
  EXPECT_FALSE(mtb.tracing());

  EXPECT_THROW(dwt.write_register(4 * Dwt::kCompStride, 0), Error);
  EXPECT_THROW(dwt.write_register(Dwt::kRegFunction, 99), Error);
}

TEST(TraceRegisters, SecureMmioWindowIsNsProtected) {
  // The trace units live behind Secure MMIO: the Non-Secure world cannot
  // read or reconfigure them (§IV-F), while the Secure World programs the
  // MTB through the bus exactly as on real hardware.
  sim::Machine machine;
  machine.map_trace_registers();

  EXPECT_THROW(machine.bus().read(0xf020'0004, 4, mem::WorldSide::NonSecure, 0),
               mem::FaultException);
  EXPECT_THROW(machine.bus().write(0xe000'1000, 0, 4,
                                   mem::WorldSide::NonSecure, 0),
               mem::FaultException);

  machine.bus().write(0xf020'0004, 0x8000'0020u, 4, mem::WorldSide::Secure, 0);
  EXPECT_TRUE(machine.mtb().enabled());
  EXPECT_TRUE(machine.mtb().tracing());
  EXPECT_EQ(machine.bus().read(0xf020'000c, 4, mem::WorldSide::Secure, 0),
            mem::MapLayout::kMtbSramBase);
}

TEST(BranchPacket, WordRoundTripPreservesABit) {
  BranchPacket packet{0x00201234, 0x00205678, true};
  const BranchPacket decoded =
      BranchPacket::from_words(packet.source_word(), packet.destination_word());
  EXPECT_EQ(decoded, packet);
  EXPECT_EQ(packet.source_word() & 1u, 1u);
}

}  // namespace
}  // namespace raptrack::trace
