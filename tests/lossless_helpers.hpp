// Shared assertion for RAP-Track losslessness tests.
//
// Taken-edge-only logging (paper Fig 5) reconstructs the path exactly in
// almost all cases, but cannot attribute a slot packet to a specific
// dynamic instance when an if/else's arms silently rejoin and the site
// re-executes with no logged branch in between (see replayer.hpp). The
// assertion therefore accepts either
//   (a) strict equality with the ground-truth oracle, or
//   (b) attribution equivalence: the reconstruction is a *benign* parse of
//       the evidence AND the oracle path itself parses the evidence
//       (checker mode) — the log admits both, indistinguishably.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/runner.hpp"

namespace raptrack::testing {

inline ::testing::AssertionResult rap_lossless_up_to_attribution(
    const Program& program, const rewrite::Manifest& manifest, Address entry,
    const verify::VerificationResult& result,
    const std::vector<trace::OracleEvent>& oracle) {
  if (!result.reconstruction_ok) {
    return ::testing::AssertionFailure()
           << "reconstruction failed: " << result.replay.failure;
  }
  if (result.replay.events == oracle) return ::testing::AssertionSuccess();

  // Silent-rejoin attribution ambiguity: the parse differs from the truth,
  // which is only acceptable when it is itself benign (no findings) ...
  if (!result.replay.findings.empty()) {
    return ::testing::AssertionFailure()
           << "divergent parse carries findings: "
           << result.replay.findings.front().description;
  }

  // ... and the true path must itself be an accepted parse of the evidence.
  verify::PathReplayer checker(program, entry, verify::ReplayMode::Rap);
  checker.set_rap_manifest(&manifest);
  const auto checked = checker.check_path(oracle, result.inputs);
  if (!checked.complete) {
    return ::testing::AssertionFailure()
           << "oracle path is not consistent with the evidence: "
           << checked.failure;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace raptrack::testing
