#!/usr/bin/env python3
"""Aggregate gcov line coverage into an lcov-format info file + summary.

The container bakes in gcc/gcov but not lcov or gcovr, so this script drives
`gcov --json-format --stdout` directly over every .gcda the test run left in
the build tree, merges the per-object records, and emits:

  <out>/coverage.info  -- lcov tracefile (SF/DA/LF/LH records), consumable by
                          genhtml or any lcov-aware viewer
  <out>/summary.txt    -- per-directory and per-file line-coverage table

It also enforces the documented per-directory line-coverage floors (see
README "Coverage"): if any floor is violated the script prints the deficit
and exits nonzero, which fails the `coverage-report` build target and the CI
coverage job.

Only first-party sources under --source-root are reported; system headers,
googletest, and the build tree itself are dropped.
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import subprocess
import sys
from collections import defaultdict

# Documented line-coverage floors, per top-level source directory. Keep in
# sync with README.md ("Coverage" section). Floors are deliberately a few
# points below the currently measured value so routine refactors don't
# flap the gate, but regressions (a new untested module, a dead test) trip it.
FLOORS = {
    "src/obs": 85.0,
    "src/crypto": 90.0,
    "src/tz": 85.0,
    "src/verify": 80.0,
    "src/isa": 80.0,
    "src/cpu": 80.0,
}


def find_gcda(build_dir: str) -> list[str]:
    hits = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                hits.append(os.path.join(root, name))
    return hits


def run_gcov(gcda: str, build_dir: str) -> dict | None:
    """One gcov invocation -> parsed JSON intermediate record, or None."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=build_dir,
        capture_output=True,
    )
    if proc.returncode != 0 or not proc.stdout:
        return None
    raw = proc.stdout
    # gcov emits gzip when writing files; --stdout is plain JSON, but guard
    # both so a toolchain change doesn't silently drop data.
    if raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return None


def relative_source(path: str, source_root: str) -> str | None:
    """Repo-relative path for first-party sources, else None."""
    absolute = os.path.normpath(
        path if os.path.isabs(path) else os.path.join(source_root, path)
    )
    root = os.path.normpath(source_root) + os.sep
    if not absolute.startswith(root):
        return None
    rel = absolute[len(root):]
    if rel.startswith("build"):  # generated/copied files inside build trees
        return None
    return rel


def collect(build_dir: str, source_root: str) -> dict[str, dict[int, int]]:
    """Merge all gcov records: file -> line -> max execution count.

    `max` (not sum) across objects is enough for a hit/miss line metric and
    avoids double-counting headers compiled into many translation units.
    """
    coverage: dict[str, dict[int, int]] = defaultdict(dict)
    gcda_files = find_gcda(build_dir)
    if not gcda_files:
        print(f"error: no .gcda files under {build_dir} — "
              "run the test suite in a RAP_COVERAGE=ON build first",
              file=sys.stderr)
        sys.exit(2)
    parsed = 0
    for gcda in gcda_files:
        record = run_gcov(gcda, build_dir)
        if record is None:
            continue
        parsed += 1
        for file_record in record.get("files", []):
            rel = relative_source(file_record.get("file", ""), source_root)
            if rel is None:
                continue
            lines = coverage[rel]
            for line in file_record.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                lines[number] = max(lines.get(number, 0), count)
    print(f"parsed {parsed}/{len(gcda_files)} .gcda files, "
          f"{len(coverage)} first-party sources")
    return coverage


def write_lcov(coverage: dict[str, dict[int, int]], out_path: str,
               source_root: str) -> None:
    with open(out_path, "w") as out:
        out.write("TN:raptrack\n")
        for rel in sorted(coverage):
            lines = coverage[rel]
            out.write(f"SF:{os.path.join(source_root, rel)}\n")
            for number in sorted(lines):
                out.write(f"DA:{number},{lines[number]}\n")
            hit = sum(1 for c in lines.values() if c > 0)
            out.write(f"LH:{hit}\n")
            out.write(f"LF:{len(lines)}\n")
            out.write("end_of_record\n")


def directory_of(rel: str) -> str:
    parts = rel.split(os.sep)
    return os.sep.join(parts[:2]) if len(parts) > 1 else parts[0]


def summarize(coverage: dict[str, dict[int, int]]) -> tuple[str, list[str]]:
    per_dir_hit: dict[str, int] = defaultdict(int)
    per_dir_total: dict[str, int] = defaultdict(int)
    rows = []
    for rel in sorted(coverage):
        lines = coverage[rel]
        hit = sum(1 for c in lines.values() if c > 0)
        total = len(lines)
        rows.append((rel, hit, total))
        directory = directory_of(rel)
        per_dir_hit[directory] += hit
        per_dir_total[directory] += total

    def pct(hit: int, total: int) -> float:
        return 100.0 * hit / total if total else 100.0

    width = max((len(r[0]) for r in rows), default=10) + 2
    text = ["per-file line coverage:"]
    for rel, hit, total in rows:
        text.append(f"  {rel:<{width}} {hit:>6}/{total:<6} "
                    f"{pct(hit, total):6.1f}%")
    text.append("")
    text.append("per-directory line coverage:")
    failures = []
    for directory in sorted(per_dir_total):
        hit, total = per_dir_hit[directory], per_dir_total[directory]
        p = pct(hit, total)
        floor = FLOORS.get(directory)
        gate = ""
        if floor is not None:
            gate = f"  (floor {floor:.1f}%: {'ok' if p >= floor else 'FAIL'})"
            if p < floor:
                failures.append(
                    f"{directory}: {p:.1f}% < documented floor {floor:.1f}%")
        text.append(f"  {directory:<{width}} {hit:>6}/{total:<6} {p:6.1f}%{gate}")
    return "\n".join(text) + "\n", failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", required=True)
    parser.add_argument("--out", required=True,
                        help="output directory for coverage.info + summary.txt")
    args = parser.parse_args()

    source_root = os.path.abspath(args.source_root)
    coverage = collect(os.path.abspath(args.build_dir), source_root)
    os.makedirs(args.out, exist_ok=True)
    write_lcov(coverage, os.path.join(args.out, "coverage.info"), source_root)
    summary, failures = summarize(coverage)
    with open(os.path.join(args.out, "summary.txt"), "w") as out:
        out.write(summary)
    print(summary, end="")
    print(f"wrote {args.out}/coverage.info and {args.out}/summary.txt")
    if failures:
        print("coverage floors violated:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
