#!/usr/bin/env python3
"""Compare two bench JSON runs and flag regressions.

Usage:
  tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
                         [--require-speedup ROWSPEC:FACTOR]
                         [--require-geomean FLOOR]

Two bench schemas are understood, keyed on the top-level "bench" field
(baseline and candidate must be the same kind):

  verify_throughput  rows matched on (app, method, mix, mode, memo,
                     workers_requested); throughput compared on
                     reports_per_s.
  sim_throughput     rows matched on (app, method, path) where path is
                     oracle/slot/fast; throughput compared on mips.

A row whose candidate throughput drops more than --threshold percent
(default 10) below the baseline is a regression; the script prints every
regressed row and exits nonzero so CI can gate on it. Rows present on only
one side are reported but never fatal (the grid legitimately grows with new
modes).

Absolute MIPS/reports-per-s columns depend on the host the bench ran on, so
cross-host comparisons can trip the percent gate spuriously. The
ratio-based assertions (--require-speedup, --require-hit-rate,
--require-geomean) are computed *within* the candidate file and are
host-independent; CI leans on those for hard floors and on the percent gate
for same-host drift.

--require-geomean asserts that the candidate's geomean_speedup (the
fast-over-oracle wall-clock ratio a sim_throughput run reports) is at least
FLOOR, e.g. --require-geomean 3.0. Pass the candidate as both arguments to
gate on the floor alone without a baseline.

--require-speedup asserts a minimum ratio *within* the candidate file
between a memo=on row and its memo=off sibling, e.g.:

  --require-speedup gps/traces/clean/serial_shared:1.5

which enforces the memoization acceptance bar (memo-on reports_per_s must
be at least 1.5x memo-off on that repeated-workload row) without needing a
baseline file at all (pass the candidate as both arguments). A six-part
rowspec names the two memo variants explicitly, e.g.:

  --require-speedup leafamb/rap/clean/serial_shared/on+frontier/on:1.5

which enforces the frontier-memo acceptance bar (frontier-on must be at
least 1.5x the pre-frontier memo=on cost model on the checkpoint-dense
repeated chain).

--require-hit-rate asserts a segment_hit_rate floor on a single candidate
row, named by a five-part rowspec (app/method/mix/mode/memo), e.g.:

  --require-hit-rate leafamb/rap/clean/serial_shared/on+frontier:0.5

which enforces the guarded-segments acceptance bar: the §14 sub-path tier
(frontier hits excluded) must actually splice on the checkpoint-dense
repeated chain — before guarded recording its hit rate there was ~0.

Wall-clock benches are noisy; compare like with like ("release" and "quick"
flags must match between the two files, or the comparison is refused).
"""

from __future__ import annotations

import argparse
import json
import sys


# Per-schema row identity and throughput metric.
BENCH_KINDS = {
    "verify_throughput": {"metric": "reports_per_s"},
    "sim_throughput": {"metric": "mips"},
}


def row_key(row: dict, kind: str) -> tuple:
    if kind == "sim_throughput":
        return (row.get("app"), row.get("method"), row.get("path"))
    return (
        row.get("app"),
        row.get("method"),
        row.get("mix"),
        row.get("mode"),
        row.get("memo", "off"),
        row.get("workers_requested", row.get("workers", 1)),
    )


def fmt_key(key: tuple) -> str:
    if len(key) == 3:
        app, method, path = key
        return f"{app}/{method}/{path}"
    app, method, mix, mode, memo, workers = key
    return f"{app}/{method}/{mix}/{mode}/memo={memo}/w{workers}"


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("bench") not in BENCH_KINDS:
        sys.exit(f"error: {path} is not a recognised bench file "
                 f"(want one of {sorted(BENCH_KINDS)})")
    return doc


def index_rows(doc: dict, path: str) -> dict:
    kind = doc.get("bench")
    rows = {}
    for row in doc.get("rows", []):
        key = row_key(row, kind)
        if key in rows:
            sys.exit(f"error: {path} has duplicate row {fmt_key(key)}")
        rows[key] = row
    return rows


def check_speedup(rows: dict, spec: str) -> list[str]:
    """ROWSPEC:FACTOR — ratio floor between two memo variants of one row.

    Four-part rowspec (app/method/mix/mode) compares memo=on vs memo=off;
    six-part (app/method/mix/mode/memoA/memoB) names the variants.
    """
    try:
        rowspec, factor_text = spec.rsplit(":", 1)
        parts = rowspec.split("/")
        if len(parts) == 4:
            app, method, mix, mode = parts
            memo_num, memo_den = "on", "off"
        else:
            app, method, mix, mode, memo_num, memo_den = parts
        factor = float(factor_text)
    except ValueError:
        sys.exit(f"error: bad --require-speedup spec: {spec!r} "
                 "(want app/method/mix/mode[/memoA/memoB]:factor)")
    num = den = None
    for key, row in rows.items():
        if key[:4] == (app, method, mix, mode):
            if key[4] == memo_num:
                num = row
            elif key[4] == memo_den:
                den = row
    if num is None or den is None:
        return [f"{rowspec}: missing memo={memo_num}/memo={memo_den} row pair"]
    failures = []
    ratio = num["reports_per_s"] / max(den["reports_per_s"], 1e-9)
    if ratio < factor:
        failures.append(
            f"{rowspec}: memo={memo_num} is {ratio:.2f}x memo={memo_den} "
            f"({num['reports_per_s']:.0f} vs {den['reports_per_s']:.0f} "
            f"reports/s), below the required {factor:.2f}x")
    return failures


def check_hit_rate(rows: dict, spec: str) -> list[str]:
    """ROWSPEC:FLOOR — minimum segment_hit_rate on one candidate row.

    Rowspec is five-part (app/method/mix/mode/memo). The gated metric is the
    sub-path (segment) tier alone; rate floors are hit-count ratios, so they
    are deterministic for a fixed chain, unlike wall-clock columns.
    """
    try:
        rowspec, floor_text = spec.rsplit(":", 1)
        app, method, mix, mode, memo = rowspec.split("/")
        floor = float(floor_text)
    except ValueError:
        sys.exit(f"error: bad --require-hit-rate spec: {spec!r} "
                 "(want app/method/mix/mode/memo:floor)")
    target = None
    for key, row in rows.items():
        if key[:5] == (app, method, mix, mode, memo):
            target = row
    if target is None:
        return [f"{rowspec}: no such row in candidate"]
    rate = target.get("segment_hit_rate", 0.0)
    if rate < floor:
        return [f"{rowspec}: segment_hit_rate {rate:.3f} below the "
                f"required {floor:.3f} floor"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated reports_per_s drop, percent "
                             "(default: 10)")
    parser.add_argument("--require-speedup", action="append", default=[],
                        metavar="ROWSPEC:FACTOR",
                        help="assert memo-on/memo-off ratio within the "
                             "candidate, e.g. gps/traces/clean/"
                             "serial_shared:1.5 (repeatable)")
    parser.add_argument("--require-hit-rate", action="append", default=[],
                        metavar="ROWSPEC:FLOOR",
                        help="assert a segment_hit_rate floor on one "
                             "candidate row, e.g. leafamb/rap/clean/"
                             "serial_shared/on+frontier:0.5 (repeatable)")
    parser.add_argument("--require-geomean", type=float, default=None,
                        metavar="FLOOR",
                        help="assert the candidate's geomean_speedup is at "
                             "least FLOOR (sim_throughput files)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    kind = base_doc.get("bench")
    if cand_doc.get("bench") != kind:
        sys.exit(f"error: bench kinds differ ({kind} vs "
                 f"{cand_doc.get('bench')})")
    metric = BENCH_KINDS[kind]["metric"]
    if kind != "verify_throughput" and (args.require_speedup or
                                        args.require_hit_rate):
        sys.exit("error: --require-speedup/--require-hit-rate apply to "
                 "verify_throughput files only")
    if args.require_geomean is not None and kind != "sim_throughput":
        sys.exit("error: --require-geomean applies to sim_throughput files "
                 "only")
    for flag in ("release", "quick"):
        if base_doc.get(flag) != cand_doc.get(flag):
            sys.exit(f"error: refusing to compare: '{flag}' differs "
                     f"({base_doc.get(flag)} vs {cand_doc.get(flag)}) — "
                     "wall-clock rows are only comparable like for like")

    base = index_rows(base_doc, args.baseline)
    cand = index_rows(cand_doc, args.candidate)

    regressions = []
    improved = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: row only in baseline: {fmt_key(key)}")
            continue
        before = base_row[metric]
        after = cand_row[metric]
        if before <= 0:
            continue
        delta_pct = (after - before) * 100.0 / before
        if delta_pct < -args.threshold:
            regressions.append(
                f"{fmt_key(key)}: {before:.0f} -> {after:.0f} {metric} "
                f"({delta_pct:+.1f}%)")
        elif delta_pct > args.threshold:
            improved += 1
    for key in sorted(set(cand) - set(base)):
        print(f"note: new row in candidate: {fmt_key(key)}")

    speedup_failures = []
    for spec in args.require_speedup:
        speedup_failures.extend(check_speedup(cand, spec))
    hit_rate_failures = []
    for spec in args.require_hit_rate:
        hit_rate_failures.extend(check_hit_rate(cand, spec))
    geomean_failures = []
    if args.require_geomean is not None:
        geomean = cand_doc.get("geomean_speedup", 0.0)
        if geomean < args.require_geomean:
            geomean_failures.append(
                f"candidate geomean_speedup {geomean:.2f}x below the "
                f"required {args.require_geomean:.2f}x floor")

    print(f"compared {len(set(base) & set(cand))} rows: "
          f"{len(regressions)} regressed beyond {args.threshold:.0f}%, "
          f"{improved} improved beyond it")
    for line in regressions:
        print(f"REGRESSION: {line}")
    for line in speedup_failures:
        print(f"SPEEDUP MISSED: {line}")
    for line in hit_rate_failures:
        print(f"HIT RATE MISSED: {line}")
    for line in geomean_failures:
        print(f"GEOMEAN MISSED: {line}")
    return 1 if (regressions or speedup_failures or hit_rate_failures or
                 geomean_failures) else 0


if __name__ == "__main__":
    sys.exit(main())
