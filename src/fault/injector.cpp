#include "fault/injector.hpp"

#include <algorithm>

namespace raptrack::fault {

const char* injector_name(InjectorKind kind) {
  switch (kind) {
    case InjectorKind::DropReport: return "drop-report";
    case InjectorKind::DuplicateReport: return "duplicate-report";
    case InjectorKind::ReorderReports: return "reorder-reports";
    case InjectorKind::TruncateChain: return "truncate-chain";
    case InjectorKind::PayloadBitFlip: return "payload-bit-flip";
    case InjectorKind::PayloadTruncate: return "payload-truncate";
    case InjectorKind::MacTamper: return "mac-tamper";
    case InjectorKind::SequenceTamper: return "sequence-tamper";
    case InjectorKind::ChallengeTamper: return "challenge-tamper";
    case InjectorKind::HmemTamper: return "hmem-tamper";
    case InjectorKind::FinalFlagTamper: return "final-flag-tamper";
    case InjectorKind::TypeConfusion: return "type-confusion";
    case InjectorKind::ForgeReport: return "forge-report";
    case InjectorKind::WireBitFlip: return "wire-bit-flip";
    case InjectorKind::MtbSramBitFlip: return "mtb-sram-bit-flip";
    case InjectorKind::MtbWatermarkGlitch: return "mtb-watermark-glitch";
    case InjectorKind::SvcDropLoopValue: return "svc-drop-loop-value";
    case InjectorKind::SvcDoubleLoopValue: return "svc-double-loop-value";
  }
  return "?";
}

bool is_device_level(InjectorKind kind) {
  switch (kind) {
    case InjectorKind::MtbSramBitFlip:
    case InjectorKind::MtbWatermarkGlitch:
    case InjectorKind::SvcDropLoopValue:
    case InjectorKind::SvcDoubleLoopValue:
      return true;
    default:
      return false;
  }
}

std::vector<InjectorKind> transport_injectors() {
  return {InjectorKind::DropReport,      InjectorKind::DuplicateReport,
          InjectorKind::ReorderReports,  InjectorKind::TruncateChain,
          InjectorKind::PayloadBitFlip,  InjectorKind::PayloadTruncate,
          InjectorKind::MacTamper,       InjectorKind::SequenceTamper,
          InjectorKind::ChallengeTamper, InjectorKind::HmemTamper,
          InjectorKind::FinalFlagTamper, InjectorKind::TypeConfusion,
          InjectorKind::ForgeReport,     InjectorKind::WireBitFlip};
}

std::vector<InjectorKind> mutating_transport_injectors() {
  return {InjectorKind::PayloadBitFlip,  InjectorKind::PayloadTruncate,
          InjectorKind::MacTamper,       InjectorKind::SequenceTamper,
          InjectorKind::ChallengeTamper, InjectorKind::HmemTamper,
          InjectorKind::FinalFlagTamper, InjectorKind::TypeConfusion};
}

std::vector<InjectorKind> device_injectors() {
  return {InjectorKind::MtbSramBitFlip, InjectorKind::MtbWatermarkGlitch,
          InjectorKind::SvcDropLoopValue, InjectorKind::SvcDoubleLoopValue};
}

std::vector<InjectorKind> all_injectors() {
  auto kinds = transport_injectors();
  const auto device = device_injectors();
  kinds.insert(kinds.end(), device.begin(), device.end());
  return kinds;
}

namespace {

std::string at_seq(const cfa::SignedReport& report) {
  return "seq " + std::to_string(report.sequence);
}

void flip_bit(std::vector<u8>& bytes, size_t bit_index) {
  bytes[bit_index / 8] ^= static_cast<u8>(1u << (bit_index % 8));
}

}  // namespace

void apply_transport_faults(FaultPlan& plan,
                            std::vector<cfa::SignedReport>& chain) {
  auto& rng = plan.rng();
  for (const InjectorKind kind : plan.kinds()) {
    if (is_device_level(kind) || kind == InjectorKind::WireBitFlip) continue;
    switch (kind) {
      case InjectorKind::DropReport: {
        if (chain.empty()) break;
        const size_t victim = rng.next_below(chain.size());
        plan.record(kind, "dropped " + at_seq(chain[victim]));
        chain.erase(chain.begin() + static_cast<ptrdiff_t>(victim));
        break;
      }
      case InjectorKind::DuplicateReport: {
        if (chain.empty()) break;
        const size_t victim = rng.next_below(chain.size());
        const size_t at = rng.next_below(chain.size() + 1);
        const cfa::SignedReport copy = chain[victim];
        plan.record(kind, "duplicated " + at_seq(copy) + " at position " +
                              std::to_string(at));
        chain.insert(chain.begin() + static_cast<ptrdiff_t>(at), copy);
        break;
      }
      case InjectorKind::ReorderReports: {
        if (chain.size() < 2) break;
        const size_t a = rng.next_below(chain.size());
        size_t b = rng.next_below(chain.size() - 1);
        if (b >= a) ++b;
        plan.record(kind, "swapped positions " + std::to_string(a) + " and " +
                              std::to_string(b));
        std::swap(chain[a], chain[b]);
        break;
      }
      case InjectorKind::TruncateChain: {
        if (chain.empty()) break;
        const size_t keep = rng.next_below(chain.size());
        plan.record(kind, "kept first " + std::to_string(keep) + " of " +
                              std::to_string(chain.size()) + " reports");
        chain.resize(keep);
        break;
      }
      case InjectorKind::PayloadBitFlip: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        if (victim.payload.empty()) break;
        const size_t bit = rng.next_below(victim.payload.size() * 8);
        flip_bit(victim.payload, bit);
        plan.record(kind, "flipped payload bit " + std::to_string(bit) +
                              " of " + at_seq(victim));
        break;
      }
      case InjectorKind::PayloadTruncate: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        if (victim.payload.empty()) break;
        const size_t cut = 1 + rng.next_below(victim.payload.size());
        victim.payload.resize(victim.payload.size() - cut);
        plan.record(kind, "cut " + std::to_string(cut) +
                              " payload bytes from " + at_seq(victim));
        break;
      }
      case InjectorKind::MacTamper: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        const size_t bit = rng.next_below(victim.mac.size() * 8);
        victim.mac[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        plan.record(kind, "flipped MAC bit " + std::to_string(bit) + " of " +
                              at_seq(victim));
        break;
      }
      case InjectorKind::SequenceTamper: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        const u32 mask = 1u << rng.next_below(8);
        plan.record(kind, at_seq(victim) + " rewritten to seq " +
                              std::to_string(victim.sequence ^ mask));
        victim.sequence ^= mask;
        break;
      }
      case InjectorKind::ChallengeTamper: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        const size_t bit = rng.next_below(victim.chal.size() * 8);
        victim.chal[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        plan.record(kind, "flipped challenge bit " + std::to_string(bit) +
                              " of " + at_seq(victim));
        break;
      }
      case InjectorKind::HmemTamper: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        const size_t bit = rng.next_below(victim.h_mem.size() * 8);
        victim.h_mem[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        plan.record(kind, "flipped H_MEM bit " + std::to_string(bit) + " of " +
                              at_seq(victim));
        break;
      }
      case InjectorKind::FinalFlagTamper: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        victim.final_report = !victim.final_report;
        plan.record(kind, "toggled final flag of " + at_seq(victim));
        break;
      }
      case InjectorKind::TypeConfusion: {
        if (chain.empty()) break;
        auto& victim = chain[rng.next_below(chain.size())];
        const u8 original = static_cast<u8>(victim.type);
        u8 relabeled = static_cast<u8>(1 + rng.next_below(5));
        if (relabeled >= original) ++relabeled;
        victim.type = static_cast<cfa::PayloadType>(relabeled);
        plan.record(kind, at_seq(victim) + " relabeled type " +
                              std::to_string(original) + " -> " +
                              std::to_string(relabeled));
        break;
      }
      case InjectorKind::ForgeReport: {
        // Attacker without the RoT key fabricates a plausible report and
        // splices it in, signed under a key of their own choosing.
        cfa::SignedReport forged;
        if (!chain.empty()) forged = chain[rng.next_below(chain.size())];
        forged.sequence = chain.empty() ? 0 : chain.back().sequence + 1;
        for (size_t i = 0; i < 6; ++i) {
          forged.payload.push_back(static_cast<u8>(rng.next()));
        }
        crypto::Key attacker_key(32);
        for (auto& byte : attacker_key) byte = static_cast<u8>(rng.next());
        forged.sign(attacker_key);
        const size_t at = rng.next_below(chain.size() + 1);
        plan.record(kind, "spliced forged seq " +
                              std::to_string(forged.sequence) +
                              " at position " + std::to_string(at));
        chain.insert(chain.begin() + static_cast<ptrdiff_t>(at),
                     std::move(forged));
        break;
      }
      default:
        break;
    }
  }
}

std::optional<std::vector<cfa::SignedReport>> apply_wire_fault(
    FaultPlan& plan, const std::vector<cfa::SignedReport>& chain) {
  std::vector<u8> wire = cfa::encode_report_chain(chain);
  if (wire.empty()) return chain;
  const size_t bit = plan.rng().next_below(wire.size() * 8);
  flip_bit(wire, bit);
  plan.record(InjectorKind::WireBitFlip,
              "flipped wire bit " + std::to_string(bit) + " of " +
                  std::to_string(wire.size() * 8));
  auto decoded = cfa::try_decode_report_chain(wire);
  if (!decoded.ok()) return std::nullopt;
  return std::move(*decoded);
}

}  // namespace raptrack::fault
