#include "fault/campaign.hpp"

#include "obs/metrics.hpp"

namespace raptrack::fault {

namespace {

// Injected-vs-detected bookkeeping: one tally per campaign run, split by
// whether the plan actually fired and by the resulting verdict class, so
// tests can reconcile fault counts against Accept/Reject/Inconclusive.
void record_outcome_metrics(const CampaignOutcome& outcome) {
  if constexpr (obs::kEnabled) {
    auto& reg = obs::registry();
    reg.counter("fault.runs").inc();
    if (outcome.fault_effective) reg.counter("fault.effective").inc();
    if (outcome.wire_rejected) reg.counter("fault.wire_rejected").inc();
    switch (outcome.verdict) {
      case verify::Verdict::Accept:
        reg.counter("fault.verdict.accept").inc();
        break;
      case verify::Verdict::Reject:
        reg.counter("fault.verdict.reject").inc();
        break;
      case verify::Verdict::Inconclusive:
        reg.counter("fault.verdict.inconclusive").inc();
        break;
    }
  }
}

sim::MachineConfig machine_config(const CampaignOptions& options) {
  sim::MachineConfig config;
  config.mtb_buffer_bytes = options.mtb_buffer_bytes;
  config.fast_path = options.fast_path;
  return config;
}

cfa::SessionOptions session_options(const CampaignOptions& options) {
  cfa::SessionOptions session;
  session.watermark_bytes = options.watermark_bytes;
  return session;
}

verify::Verifier make_verifier(const apps::PreparedApp& prepared,
                               const cfa::Challenge& chal,
                               const CampaignOptions& options) {
  verify::Verifier verifier(apps::demo_key());
  verifier.expect_rap(prepared.rap.program, prepared.rap.manifest,
                      prepared.built.entry);
  verifier.set_expected_watermark(options.watermark_bytes);
  verifier.adopt_challenge(chal);
  return verifier;
}

CampaignOutcome finish(const apps::PreparedApp& prepared, FaultPlan& plan,
                       const cfa::Challenge& chal,
                       const std::vector<cfa::SignedReport>& chain,
                       const CampaignOptions& options) {
  CampaignOutcome outcome;
  verify::Verifier verifier = make_verifier(prepared, chal, options);
  outcome.result = verifier.verify(chal, chain);
  outcome.verdict = outcome.result.verdict;
  outcome.fault_effective = plan.effective();
  outcome.records = plan.records();
  record_outcome_metrics(outcome);
  return outcome;
}

}  // namespace

cfa::Challenge campaign_challenge(u64 seed) {
  cfa::Challenge chal{};
  SplitMix64 sm(seed ^ 0x6368616c5f636d70ull);  // "chal_cmp"
  for (size_t i = 0; i < chal.size(); i += 8) {
    const u64 word = sm.next();
    for (size_t j = 0; j < 8 && i + j < chal.size(); ++j) {
      chal[i + j] = static_cast<u8>(word >> (8 * j));
    }
  }
  return chal;
}

AttestedRun attest_once(const apps::PreparedApp& prepared,
                        const CampaignOptions& options) {
  AttestedRun run;
  run.chal = campaign_challenge(options.app_seed);
  auto method = apps::run_rap(prepared, options.app_seed,
                              machine_config(options),
                              session_options(options), run.chal);
  run.reports = std::move(method.attestation.reports);
  run.oracle = std::move(method.oracle);
  run.functional_ok = method.functional_ok;
  return run;
}

CampaignOutcome verify_mutated(const apps::PreparedApp& prepared,
                               const AttestedRun& clean, InjectorKind kind,
                               u64 seed, const CampaignOptions& options) {
  FaultPlan plan(seed);
  plan.add(kind);
  std::vector<cfa::SignedReport> chain = clean.reports;
  if (kind == InjectorKind::WireBitFlip) {
    auto survived = apply_wire_fault(plan, chain);
    if (!survived.has_value()) {
      // The flip destroyed the wire framing: the transport layer itself
      // rejected the chain before the verifier ever saw it. A safe outcome.
      CampaignOutcome outcome;
      outcome.verdict = verify::Verdict::Reject;
      outcome.wire_rejected = true;
      outcome.fault_effective = plan.effective();
      outcome.records = plan.records();
      outcome.result.detail = "wire framing rejected the mutated chain";
      record_outcome_metrics(outcome);
      return outcome;
    }
    chain = std::move(*survived);
  } else {
    apply_transport_faults(plan, chain);
  }
  return finish(prepared, plan, clean.chal, chain, options);
}

CampaignOutcome run_device_fault(const apps::PreparedApp& prepared,
                                 InjectorKind kind, u64 seed,
                                 const CampaignOptions& options) {
  FaultPlan plan(seed);
  plan.add(kind);
  cfa::SessionOptions session = session_options(options);
  bool fired = false;

  switch (kind) {
    case InjectorKind::MtbSramBitFlip:
      // SEU in a live packet word just before the first readout. Source
      // words (packet-even offsets) keep bit 0 untouched: that is the A-bit,
      // which the replayer does not interpret (see DESIGN.md fault model).
      session.pre_report_hook = [&plan, &fired](sim::Machine& machine) {
        if (fired) return;
        trace::Mtb& mtb = machine.mtb();
        const u32 live = mtb.live_bytes();
        if (live < trace::BranchPacket::kBytes) return;
        auto& rng = plan.rng();
        const u32 word = static_cast<u32>(rng.next_below(live / 4));
        const u32 offset = word * 4;
        const bool source_word = (offset % trace::BranchPacket::kBytes) == 0;
        const u32 bit = source_word
                            ? 1 + static_cast<u32>(rng.next_below(31))
                            : static_cast<u32>(rng.next_below(32));
        mtb.corrupt_stored_word(offset, 1u << bit);
        plan.record(InjectorKind::MtbSramBitFlip,
                    "flipped bit " + std::to_string(bit) + " of " +
                        (source_word ? "source" : "destination") +
                        " word at buffer offset " + std::to_string(offset));
        fired = true;
      };
      break;
    case InjectorKind::MtbWatermarkGlitch: {
      // Glitch the FLOW register after configuration: no watermark event
      // ever fires, so the position silently runs past the watermark (and
      // wraps, losing evidence, once it passes the buffer end). Record only
      // when the run actually needed the watermark — a run short enough to
      // stay under it is unaffected by the glitch.
      session.post_config_hook = [](sim::Machine& machine) {
        machine.mtb().set_watermark(0);
      };
      const u32 watermark = options.watermark_bytes;
      session.pre_report_hook = [&plan, &fired, watermark](
                                    sim::Machine& machine) {
        if (fired || machine.mtb().live_bytes() < watermark) return;
        plan.record(InjectorKind::MtbWatermarkGlitch,
                    "FLOW watermark glitched off; " +
                        std::to_string(machine.mtb().live_bytes()) +
                        " live bytes at readout" +
                        (machine.mtb().wrapped() ? ", buffer wrapped" : ""));
        fired = true;
      };
      break;
    }
    case InjectorKind::SvcDropLoopValue:
    case InjectorKind::SvcDoubleLoopValue: {
      // Glitch the SVC gateway on the Nth loop-condition call: either the
      // handler never runs (value missing from the log) or runs twice
      // (spurious extra value). Both perturb the evidence stream length,
      // which the replayer's consumed-at-halt checks always catch.
      const u32 target = static_cast<u32>(plan.rng().next_below(8));
      const bool drop = kind == InjectorKind::SvcDropLoopValue;
      session.post_config_hook = [&plan, &fired, target, drop,
                                  kind](sim::Machine& machine) {
        auto calls = std::make_shared<u32>(0);
        tz::SecureMonitor::GatewayFault fault;
        fault.dispatch = [&plan, &fired, calls, target, drop, kind](
                             u8 code, cpu::CpuState&) -> u32 {
          if (code != static_cast<u8>(tz::Service::kRapLogLoopCondition)) {
            return 1;
          }
          const u32 index = (*calls)++;
          if (fired || index != target) return 1;
          fired = true;
          plan.record(kind, std::string(drop ? "swallowed" : "re-entered") +
                                " loop-condition SVC #" +
                                std::to_string(index));
          return drop ? 0u : 2u;
        };
        machine.monitor().set_gateway_fault(std::move(fault));
      };
      break;
    }
    default:
      break;
  }

  AttestedRun run;
  run.chal = campaign_challenge(seed);
  auto method = apps::run_rap(prepared, options.app_seed,
                              machine_config(options), session, run.chal);
  run.reports = std::move(method.attestation.reports);
  return finish(prepared, plan, run.chal, run.reports, options);
}

CampaignOutcome run_clean(const apps::PreparedApp& prepared,
                          const CampaignOptions& options) {
  FaultPlan plan(0);
  AttestedRun run = attest_once(prepared, options);
  return finish(prepared, plan, run.chal, run.reports, options);
}

CampaignOutcome run_faulted_attestation(const apps::PreparedApp& prepared,
                                        InjectorKind kind, u64 seed,
                                        const CampaignOptions& options) {
  if (is_device_level(kind)) {
    return run_device_fault(prepared, kind, seed, options);
  }
  AttestedRun clean = attest_once(prepared, options);
  return verify_mutated(prepared, clean, kind, seed, options);
}

}  // namespace raptrack::fault
