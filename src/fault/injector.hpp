// Deterministic fault injectors for the prover -> report -> verifier
// pipeline. Two layers, matching the two places evidence can go wrong:
//
//   * transport-level — an adversary (or lossy link) between Prv and Vrf
//     mutates the *signed* report chain: drops, duplicates, reorders,
//     truncations, bit flips, forgeries. The MAC and sequence numbering
//     must convict every one of these.
//   * device-level — a glitch/SEU on the prover *before* signing: MTB SRAM
//     corruption, a disabled FLOW watermark (silent wrap), a misbehaving SVC
//     gateway. These yield authentically signed but wrong evidence; only
//     reconstruction can catch them.
//
// Every injector draws its choices from a seeded generator owned by the
// FaultPlan and records exactly what it injected, so any campaign run
// reproduces bit-for-bit from (app, seed, kind).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cfa/report.hpp"
#include "common/rng.hpp"

namespace raptrack::fault {

enum class InjectorKind : u8 {
  // -- transport-level (post-sign) -------------------------------------------
  DropReport,        ///< remove one report from the chain
  DuplicateReport,   ///< re-insert a copy of one report
  ReorderReports,    ///< swap two reports
  TruncateChain,     ///< drop a suffix (loses the final report)
  PayloadBitFlip,    ///< flip one payload bit (MAC no longer matches)
  PayloadTruncate,   ///< shorten one payload (MAC no longer matches)
  MacTamper,         ///< flip one MAC bit
  SequenceTamper,    ///< rewrite a sequence number without the key
  ChallengeTamper,   ///< flip a bit of the echoed challenge
  HmemTamper,        ///< flip a bit of the claimed H_MEM
  FinalFlagTamper,   ///< toggle a final_report flag
  TypeConfusion,     ///< relabel a payload's type discriminator
  ForgeReport,       ///< append a report signed under an attacker key
  WireBitFlip,       ///< flip one bit of the serialized wire bytes
  // -- device-level (pre-sign) -----------------------------------------------
  MtbSramBitFlip,      ///< SEU in a live MTB packet word before readout
  MtbWatermarkGlitch,  ///< FLOW watermark disabled: buffer wraps silently
  SvcDropLoopValue,    ///< gateway swallows one loop-condition SVC
  SvcDoubleLoopValue,  ///< gateway re-enters one loop-condition SVC
};

const char* injector_name(InjectorKind kind);
bool is_device_level(InjectorKind kind);
std::vector<InjectorKind> transport_injectors();
std::vector<InjectorKind> device_injectors();
std::vector<InjectorKind> all_injectors();
/// Transport injectors that mutate a single report in place (no chain
/// reshuffling): the corruption source for per-datagram link tampering,
/// where the adversary holds exactly one framed report at a time.
std::vector<InjectorKind> mutating_transport_injectors();

/// What one injector actually did (empty detail = nothing).
struct FaultRecord {
  InjectorKind kind = InjectorKind::DropReport;
  std::string detail;
};

/// A seeded, composable set of injectors plus the log of what fired.
/// Injectors only record when they actually changed something; a plan with
/// no records left the evidence untouched (e.g. a loop-SVC fault on an app
/// with no eligible loops) and the clean-run verdict applies.
class FaultPlan {
 public:
  explicit FaultPlan(u64 seed) : rng_(seed) {}

  FaultPlan& add(InjectorKind kind) {
    kinds_.push_back(kind);
    return *this;
  }

  const std::vector<InjectorKind>& kinds() const { return kinds_; }
  Xoshiro256& rng() { return rng_; }

  void record(InjectorKind kind, std::string detail) {
    records_.push_back({kind, std::move(detail)});
  }
  const std::vector<FaultRecord>& records() const { return records_; }
  bool effective() const { return !records_.empty(); }

 private:
  std::vector<InjectorKind> kinds_;
  std::vector<FaultRecord> records_;
  Xoshiro256 rng_;
};

/// Apply every *transport-level* injector in `plan` to `chain` in place
/// (device-level kinds are applied by the campaign through prover hooks and
/// are skipped here; WireBitFlip is handled by `apply_wire_fault`).
void apply_transport_faults(FaultPlan& plan,
                            std::vector<cfa::SignedReport>& chain);

/// WireBitFlip: serialize `chain`, flip one seeded bit, decode it back.
/// Returns the surviving chain, or nullopt when the flip destroyed the wire
/// framing (the transport layer itself rejects — also a safe outcome).
std::optional<std::vector<cfa::SignedReport>> apply_wire_fault(
    FaultPlan& plan, const std::vector<cfa::SignedReport>& chain);

}  // namespace raptrack::fault
