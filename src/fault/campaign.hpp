// Seeded fault-injection campaign over the full prover -> report -> verifier
// pipeline. Each experiment runs a real attestation of a prepared app (or
// reuses one for transport-level mutations), applies one injector, and
// verifies with a fresh Verifier. The invariant under test, matching the
// §IV-F security argument:
//
//   * a fault that changed the evidence NEVER yields Accept;
//   * no input — however mangled — crashes the verifier;
//   * a run whose injector fired nothing (e.g. a loop-SVC fault on an app
//     with no eligible loops) still yields Accept with a lossless path.
#pragma once

#include "apps/runner.hpp"
#include "fault/injector.hpp"
#include "verify/audit.hpp"

namespace raptrack::fault {

struct CampaignOptions {
  /// Small MTB + watermark so every run produces a multi-chunk report chain
  /// (the interesting surface for chain mutations).
  u32 mtb_buffer_bytes = 256;
  u32 watermark_bytes = 128;
  u64 app_seed = 42;  ///< stimulus seed for the application run
  /// Simulator fast path (predecoded instruction cache). On by default;
  /// the parity tests re-run campaigns with it off to prove cache
  /// invalidation interacts correctly with the SEU/glitch injectors.
  bool fast_path = true;
};

/// One clean attested run, reusable across many transport-level mutations.
struct AttestedRun {
  cfa::Challenge chal{};
  std::vector<cfa::SignedReport> reports;
  std::vector<trace::OracleEvent> oracle;
  bool functional_ok = false;
};

struct CampaignOutcome {
  verify::Verdict verdict = verify::Verdict::Reject;
  bool fault_effective = false;  ///< an injector actually changed something
  bool wire_rejected = false;    ///< framing died before the verifier ran
  std::vector<FaultRecord> records;
  verify::VerificationResult result;
};

/// Deterministic challenge for campaign run `seed` (adopted by the campaign
/// verifier rather than issued by it, as in a replicated deployment).
cfa::Challenge campaign_challenge(u64 seed);

/// Run the RAP-Track prover once, cleanly, under campaign-sized buffers.
AttestedRun attest_once(const apps::PreparedApp& prepared,
                        const CampaignOptions& options = {});

/// Verify `clean` after applying one seeded transport-level injector
/// (including WireBitFlip). Does not re-run the prover.
CampaignOutcome verify_mutated(const apps::PreparedApp& prepared,
                               const AttestedRun& clean, InjectorKind kind,
                               u64 seed, const CampaignOptions& options = {});

/// Run the prover with one seeded device-level injector armed (MTB SRAM
/// corruption, watermark glitch, SVC gateway faults), then verify.
CampaignOutcome run_device_fault(const apps::PreparedApp& prepared,
                                 InjectorKind kind, u64 seed,
                                 const CampaignOptions& options = {});

/// Clean end-to-end run: attest + verify, no injectors. Must Accept.
CampaignOutcome run_clean(const apps::PreparedApp& prepared,
                          const CampaignOptions& options = {});

/// Convenience dispatcher: transport kinds mutate a fresh attested run,
/// device kinds arm prover hooks.
CampaignOutcome run_faulted_attestation(const apps::PreparedApp& prepared,
                                        InjectorKind kind, u64 seed,
                                        const CampaignOptions& options = {});

}  // namespace raptrack::fault
