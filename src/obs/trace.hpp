// Span-based session tracer: per-session timelines for the attestation
// protocol's phase structure.
//
// A *session* is one attestation or verification episode: the prover's
// `RapProver::attest` (phases: h_mem, trace_config, app_run with nested
// log_drain spans, sign_final) or the verifier's `verify_report_chain`
// (phases: mac_check, resync, decode, replay) and the farm's admission path
// (admission, hmac_batch). A *span* is one named phase within a session,
// carrying start/end timestamps, its nesting depth, a session-local sequence
// number, and optional integer attributes (report bytes, CF_Log entries…).
//
// Spans are recorded RAII-style: `SpanTracer::span(session, "h_mem")`
// returns a Scope whose destructor stamps the end time and commits the span.
// Nesting is tracked per session (depth = open ancestor spans when the scope
// began), so a drain span opened inside app_run records depth 1 under
// app_run's 0 — the exporter reproduces the phase tree without the consumer
// re-deriving it.
//
// The clock is injectable (`set_clock`): production uses a steady_clock
// nanosecond reading; tests install a fake monotonic counter so the golden
// JSON output is deterministic. Export is JSON-lines (one span per line,
// sessions interleaved in commit order) plus a human `dump()` that indents
// by depth.
//
// Tracing shares the compile-time gate with the metrics registry: when
// RAP_OBS_ENABLED is 0, sessions and scopes are zero-size no-ops.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"  // RAP_OBS_ENABLED + kEnabled

namespace raptrack::obs {

using SessionId = u64;

/// One committed span. `seq` orders spans within a session by *completion*;
/// `start`/`end` are clock readings (ns in production, fake ticks in tests).
struct SpanRecord {
  SessionId session = 0;
  std::string session_kind;
  std::string name;
  u64 seq = 0;
  u32 depth = 0;
  u64 start = 0;
  u64 end = 0;
  std::vector<std::pair<std::string, u64>> attrs;
};

#if RAP_OBS_ENABLED

class SpanTracer {
 public:
  using Clock = u64 (*)();

  /// Process-wide instance used by all instrumentation in this repo.
  static SpanTracer& global();

  SpanTracer();
  ~SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Replace the timestamp source. nullptr restores the steady_clock ns
  /// default. Tests install a deterministic counter before golden checks.
  void set_clock(Clock clock);

  /// Open a session of the given kind ("attest", "verify_chain", …).
  /// Session ids are unique for the tracer's lifetime (reset() included).
  SessionId begin_session(const std::string& kind);

  /// RAII phase scope. Committed (with its end timestamp) on destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept;
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

    /// Attach an integer attribute, e.g. `scope.attr("bytes", n)`.
    void attr(const std::string& key, u64 value);

   private:
    friend class SpanTracer;
    Scope(SpanTracer* tracer, SessionId session, std::string name, u32 depth,
          u64 start, u64 generation);
    SpanTracer* tracer_ = nullptr;
    SpanRecord record_;
    u64 generation_ = 0;  ///< reset() epoch; stale scopes commit nowhere
  };

  /// Open a span named `name` inside `session`. Depth and sequence are
  /// assigned automatically from the session's currently-open spans.
  Scope span(SessionId session, const std::string& name);

  /// All spans committed so far, in commit order.
  std::vector<SpanRecord> records() const;

  /// One JSON object per committed span (commit order), schema in
  /// DESIGN.md §12.
  std::string json_lines() const;
  /// Human-readable tree: sessions in id order, spans indented by depth.
  std::string dump() const;

  /// Drop every committed span and open-session record. Scopes still alive
  /// from before the reset commit nothing when they close.
  void reset();

 private:
  friend class Scope;
  void commit(SpanRecord record, u64 generation);
  struct Impl;
  Impl* impl_;
};

#else  // !RAP_OBS_ENABLED

class SpanTracer {
 public:
  using Clock = u64 (*)();
  static SpanTracer& global();
  void set_clock(Clock) {}
  SessionId begin_session(const std::string&) { return 0; }

  class Scope {
   public:
    void attr(const std::string&, u64) {}
  };

  Scope span(SessionId, const std::string&) { return {}; }
  std::vector<SpanRecord> records() const { return {}; }
  std::string json_lines() const { return {}; }
  std::string dump() const { return {}; }
  void reset() {}
};

#endif  // RAP_OBS_ENABLED

/// Shorthand for SpanTracer::global().
SpanTracer& tracer();

}  // namespace raptrack::obs
