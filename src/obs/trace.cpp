#include "obs/trace.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <sstream>

namespace raptrack::obs {

#if RAP_OBS_ENABLED

namespace {

u64 steady_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

struct SpanTracer::Impl {
  mutable std::mutex mu;
  Clock clock = &steady_ns;
  SessionId next_session = 1;
  u64 generation = 0;  ///< bumped by reset(); stale Scopes discard themselves
  struct SessionState {
    std::string kind;
    u32 open_depth = 0;  ///< currently-open spans (next span's depth)
    u64 next_seq = 0;
  };
  std::map<SessionId, SessionState> sessions;
  std::vector<SpanRecord> committed;
};

SpanTracer& SpanTracer::global() {
  static SpanTracer instance;
  return instance;
}

SpanTracer& tracer() { return SpanTracer::global(); }

SpanTracer::SpanTracer() : impl_(new Impl) {}
SpanTracer::~SpanTracer() { delete impl_; }

void SpanTracer::set_clock(Clock clock) {
  std::lock_guard lock(impl_->mu);
  impl_->clock = clock != nullptr ? clock : &steady_ns;
}

SessionId SpanTracer::begin_session(const std::string& kind) {
  std::lock_guard lock(impl_->mu);
  const SessionId id = impl_->next_session++;
  impl_->sessions[id].kind = kind;
  return id;
}

SpanTracer::Scope SpanTracer::span(SessionId session,
                                   const std::string& name) {
  std::lock_guard lock(impl_->mu);
  auto& state = impl_->sessions[session];  // unknown session: fresh state
  const u32 depth = state.open_depth++;
  const u64 start = impl_->clock();
  return Scope(this, session, name, depth, start, impl_->generation);
}

SpanTracer::Scope::Scope(SpanTracer* tracer, SessionId session,
                         std::string name, u32 depth, u64 start,
                         u64 generation)
    : tracer_(tracer), generation_(generation) {
  record_.session = session;
  record_.name = std::move(name);
  record_.depth = depth;
  record_.start = start;
}

SpanTracer::Scope::Scope(Scope&& other) noexcept
    : tracer_(other.tracer_),
      record_(std::move(other.record_)),
      generation_(other.generation_) {
  other.tracer_ = nullptr;
}

void SpanTracer::Scope::attr(const std::string& key, u64 value) {
  if (tracer_ != nullptr) record_.attrs.emplace_back(key, value);
}

SpanTracer::Scope::~Scope() {
  if (tracer_ != nullptr) tracer_->commit(std::move(record_), generation_);
}

void SpanTracer::commit(SpanRecord record, u64 generation) {
  std::lock_guard lock(impl_->mu);
  record.end = impl_->clock();
  if (generation != impl_->generation) return;  // tracer was reset meanwhile
  auto& state = impl_->sessions[record.session];
  if (state.open_depth > 0) --state.open_depth;
  record.session_kind = state.kind;
  record.seq = state.next_seq++;
  impl_->committed.push_back(std::move(record));
}

std::vector<SpanRecord> SpanTracer::records() const {
  std::lock_guard lock(impl_->mu);
  return impl_->committed;
}

std::string SpanTracer::json_lines() const {
  std::lock_guard lock(impl_->mu);
  std::ostringstream out;
  for (const SpanRecord& r : impl_->committed) {
    out << R"({"type":"span","session":)" << r.session << R"(,"kind":")"
        << r.session_kind << R"(","name":")" << r.name << R"(","seq":)"
        << r.seq << R"(,"depth":)" << r.depth << R"(,"start":)" << r.start
        << R"(,"end":)" << r.end;
    if (!r.attrs.empty()) {
      out << R"(,"attrs":{)";
      for (size_t i = 0; i < r.attrs.size(); ++i) {
        if (i != 0) out << ',';
        out << '"' << r.attrs[i].first << R"(":)" << r.attrs[i].second;
      }
      out << '}';
    }
    out << "}\n";
  }
  return out.str();
}

std::string SpanTracer::dump() const {
  std::lock_guard lock(impl_->mu);
  // Group by session id; within a session keep commit order, which closes
  // children before parents — fine for a log-style listing.
  std::map<SessionId, std::vector<const SpanRecord*>> by_session;
  for (const SpanRecord& r : impl_->committed) {
    by_session[r.session].push_back(&r);
  }
  std::ostringstream out;
  for (const auto& [session, spans] : by_session) {
    out << "session " << session << " (" << spans.front()->session_kind
        << ")\n";
    for (const SpanRecord* r : spans) {
      out << std::string(2 * (r->depth + 1), ' ') << r->name << "  ["
          << r->start << ".." << r->end << "]";
      for (const auto& [key, value] : r->attrs) {
        out << ' ' << key << '=' << value;
      }
      out << "\n";
    }
  }
  return out.str();
}

void SpanTracer::reset() {
  std::lock_guard lock(impl_->mu);
  ++impl_->generation;
  impl_->sessions.clear();
  impl_->committed.clear();
}

#else  // !RAP_OBS_ENABLED

SpanTracer& SpanTracer::global() {
  static SpanTracer instance;
  return instance;
}

SpanTracer& tracer() { return SpanTracer::global(); }

#endif  // RAP_OBS_ENABLED

}  // namespace raptrack::obs
