// Lock-cheap metrics registry: monotonic counters, gauges and fixed-bucket
// histograms, designed so the hot paths of the simulator and verifier farm
// pay (almost) nothing for being observable.
//
// Write side. Every metric is striped across a small fixed set of shards
// (cache-line-aligned atomic cells). A thread picks its stripe once, from a
// thread_local round-robin index, and then only ever touches that cell with
// relaxed atomics — no lock, no CAS loop, no false sharing between worker
// threads of the verifier farm. Relaxed ordering is sufficient because the
// scrape only needs per-cell atomicity, not cross-metric consistency, and it
// keeps the whole registry TSan-clean under the `concurrency` test label.
//
// Read side. `scrape()` walks the shards under the registry mutex and folds
// them into a `Snapshot` — a stable, name-sorted value set with JSON-lines
// export (`json_lines()`) and a human `dump()`. Scraping concurrently with
// updates is safe; a scrape observes each metric at *some* point between its
// recent updates (monotonic counters never appear to go backwards within a
// cell).
//
// Compile-time gate. `RAP_OBS_ENABLED` (CMake option RAP_OBS, default ON)
// selects between the real registry and a no-op mirror with an identical
// API. When OFF, every instrumentation site collapses to nothing: handles
// are empty structs, `count()`/`observe()` are empty inline functions, and
// `obs::kEnabled` lets tests and benches skip metric assertions entirely.
//
// Naming scheme (see DESIGN.md §12): dot-separated `<module>.<noun>[.<leaf>]`
// in snake_case, e.g. `sim.oracle_dispatches`, `farm.queue_depth_hwm`,
// `verify.verdict.accept`. Counters count events; gauges track level-style
// values (high-water marks via `set_max`); histograms carry explicit upper
// bounds plus an implicit +Inf bucket.
#pragma once

#include <cstdint>

#include "common/types.hpp"

#ifndef RAP_OBS_ENABLED
#define RAP_OBS_ENABLED 1
#endif

#include <string>
#include <vector>

namespace raptrack::obs {

#if RAP_OBS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// One scraped value. Counters and gauges carry `value`; histograms carry
/// `bounds`/`counts` (counts.size() == bounds.size() + 1, last is +Inf)
/// plus `count`/`sum` aggregates.
struct Sample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind kind = Kind::Counter;
  std::string name;
  u64 value = 0;  ///< counter total or gauge level
  u64 count = 0;  ///< histogram: number of observations
  u64 sum = 0;    ///< histogram: sum of observed values
  std::vector<u64> bounds;  ///< histogram: inclusive upper bounds
  std::vector<u64> counts;  ///< histogram: per-bucket observation counts
};

/// Point-in-time view of every registered metric, sorted by name.
class Snapshot {
 public:
  explicit Snapshot(std::vector<Sample> samples);

  const std::vector<Sample>& samples() const { return samples_; }
  /// Lookup by exact name; nullptr when the metric was never registered.
  const Sample* find(const std::string& name) const;
  /// Counter/gauge value by name; 0 when absent (absent == never touched).
  u64 value(const std::string& name) const;

  /// One JSON object per line, schema documented in DESIGN.md §12.
  std::string json_lines() const;
  /// Aligned human-readable table for terminals and test logs.
  std::string dump() const;

 private:
  std::vector<Sample> samples_;
};

#if RAP_OBS_ENABLED

namespace detail {

/// Stripe count. Eight covers the farm's worker fan-out in this repo
/// (benches cap at 8 workers) without bloating scrape cost.
inline constexpr size_t kShards = 8;

/// The stripe this thread writes. Assigned round-robin on first use so
/// concurrent writers spread over cells instead of piling onto stripe 0.
size_t shard_index();

struct alignas(64) Cell {
  std::uint64_t v = 0;
};

u64 cell_load(const Cell& cell);
void cell_add(Cell& cell, u64 delta);
void cell_store(Cell& cell, u64 value);
void cell_store_max(Cell& cell, u64 value);

struct CounterData {
  Cell shards[kShards];
};

struct GaugeData {
  Cell shards[kShards];  ///< folded with max() on scrape
};

struct HistogramData {
  std::vector<u64> bounds;
  // Per-shard bucket counts + sum: buckets[s] has bounds.size()+1 cells.
  std::vector<std::vector<Cell>> buckets;
  Cell sums[kShards];
};

}  // namespace detail

/// Monotonic event counter handle. Cheap to copy; writes are one relaxed
/// atomic add on this thread's stripe.
class Counter {
 public:
  Counter() = default;
  void inc(u64 delta = 1) {
    if (data_ != nullptr && delta != 0) {
      detail::cell_add(data_->shards[detail::shard_index()], delta);
    }
  }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* data) : data_(data) {}
  detail::CounterData* data_ = nullptr;
};

/// Level gauge folded with max() across stripes: the natural shape for
/// high-water marks (queue depth, mailbox backlog) written concurrently.
class Gauge {
 public:
  Gauge() = default;
  /// Raise this stripe's level to at least `value`.
  void set_max(u64 value) {
    if (data_ != nullptr) {
      detail::cell_store_max(data_->shards[detail::shard_index()], value);
    }
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* data) : data_(data) {}
  detail::GaugeData* data_ = nullptr;
};

/// Fixed-bucket histogram handle. `observe(v)` finds the first bound >= v
/// (binary search over the immutable bound list) and bumps that bucket on
/// this thread's stripe; values above every bound land in the +Inf bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(u64 value);

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* data) : data_(data) {}
  detail::HistogramData* data_ = nullptr;
};

/// The registry proper. Registration (name -> metric) takes a mutex; the
/// returned handles write lock-free forever after. Metric storage lives in
/// deques so handles stay valid across later registrations.
class Registry {
 public:
  /// Process-wide instance used by all instrumentation in this repo.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Repeated calls with one name return handles onto the
  /// same underlying metric. A name registered as one kind throws Error if
  /// re-requested as another.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be strictly increasing; re-registration must repeat the
  /// same bounds.
  Histogram histogram(const std::string& name, std::vector<u64> bounds);

  /// Fold all stripes into a consistent-enough snapshot (see file comment).
  Snapshot scrape() const;

  /// Zero every value while keeping registrations and handles valid.
  /// For tests that assert on deltas from a clean slate.
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

/// Shorthand for Registry::global().
Registry& registry();

#else  // !RAP_OBS_ENABLED — no-op mirrors, byte-for-byte identical call sites

class Counter {
 public:
  void inc(u64 = 1) {}
};

class Gauge {
 public:
  void set_max(u64) {}
};

class Histogram {
 public:
  void observe(u64) {}
};

class Registry {
 public:
  static Registry& global();
  Counter counter(const std::string&) { return {}; }
  Gauge gauge(const std::string&) { return {}; }
  Histogram histogram(const std::string&, std::vector<u64>) { return {}; }
  Snapshot scrape() const { return Snapshot({}); }
  void reset() {}
};

Registry& registry();

#endif  // RAP_OBS_ENABLED

}  // namespace raptrack::obs
