#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

namespace raptrack::obs {

// ---------------------------------------------------------------------------
// Snapshot — shared by both build flavours.

Snapshot::Snapshot(std::vector<Sample> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
}

const Sample* Snapshot::find(const std::string& name) const {
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), name,
      [](const Sample& s, const std::string& n) { return s.name < n; });
  if (it == samples_.end() || it->name != name) return nullptr;
  return &*it;
}

u64 Snapshot::value(const std::string& name) const {
  const Sample* sample = find(name);
  return sample != nullptr ? sample->value : 0;
}

namespace {

void append_json_array(std::ostringstream& out, const std::vector<u64>& xs) {
  out << '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out << ',';
    out << xs[i];
  }
  out << ']';
}

}  // namespace

std::string Snapshot::json_lines() const {
  std::ostringstream out;
  for (const Sample& s : samples_) {
    switch (s.kind) {
      case Sample::Kind::Counter:
        out << R"({"type":"counter","name":")" << s.name << R"(","value":)"
            << s.value << "}\n";
        break;
      case Sample::Kind::Gauge:
        out << R"({"type":"gauge","name":")" << s.name << R"(","value":)"
            << s.value << "}\n";
        break;
      case Sample::Kind::Histogram:
        out << R"({"type":"histogram","name":")" << s.name << R"(","count":)"
            << s.count << R"(,"sum":)" << s.sum << R"(,"bounds":)";
        append_json_array(out, s.bounds);
        out << R"(,"counts":)";
        append_json_array(out, s.counts);
        out << "}\n";
        break;
    }
  }
  return out.str();
}

std::string Snapshot::dump() const {
  size_t width = 0;
  for (const Sample& s : samples_) width = std::max(width, s.name.size());
  std::ostringstream out;
  for (const Sample& s : samples_) {
    out << s.name << std::string(width - s.name.size() + 2, ' ');
    switch (s.kind) {
      case Sample::Kind::Counter:
        out << s.value << "\n";
        break;
      case Sample::Kind::Gauge:
        out << s.value << " (gauge)\n";
        break;
      case Sample::Kind::Histogram: {
        out << "count=" << s.count << " sum=" << s.sum << " [";
        for (size_t i = 0; i < s.counts.size(); ++i) {
          if (i != 0) out << ' ';
          if (i < s.bounds.size()) {
            out << "le" << s.bounds[i] << ':' << s.counts[i];
          } else {
            out << "inf:" << s.counts[i];
          }
        }
        out << "]\n";
        break;
      }
    }
  }
  return out.str();
}

#if RAP_OBS_ENABLED

// ---------------------------------------------------------------------------
// Striped cells.

namespace detail {

namespace {
// The Cell value is only ever touched through std::atomic_ref-style
// operations; C++20 atomic_ref keeps the storage a plain u64 so the struct
// stays trivially constructible and cache-line sized.
std::atomic<std::uint64_t>& atom(Cell& cell) {
  static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));
  return reinterpret_cast<std::atomic<std::uint64_t>&>(cell.v);
}
const std::atomic<std::uint64_t>& atom(const Cell& cell) {
  return reinterpret_cast<const std::atomic<std::uint64_t>&>(cell.v);
}
}  // namespace

size_t shard_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

u64 cell_load(const Cell& cell) {
  return atom(cell).load(std::memory_order_relaxed);
}

void cell_add(Cell& cell, u64 delta) {
  atom(cell).fetch_add(delta, std::memory_order_relaxed);
}

void cell_store(Cell& cell, u64 value) {
  atom(cell).store(value, std::memory_order_relaxed);
}

void cell_store_max(Cell& cell, u64 value) {
  std::atomic<std::uint64_t>& a = atom(cell);
  u64 cur = a.load(std::memory_order_relaxed);
  while (cur < value &&
         !a.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

void Histogram::observe(u64 value) {
  if (data_ == nullptr) return;
  const size_t shard = detail::shard_index();
  const auto& bounds = data_->bounds;
  const size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  detail::cell_add(data_->buckets[shard][bucket], 1);
  detail::cell_add(data_->sums[shard], value);
}

// ---------------------------------------------------------------------------
// Registry.

struct Registry::Impl {
  mutable std::mutex mu;  ///< guards the name maps and deque growth
  std::map<std::string, detail::CounterData*> counters;
  std::map<std::string, detail::GaugeData*> gauges;
  std::map<std::string, detail::HistogramData*> histograms;
  std::deque<detail::CounterData> counter_store;
  std::deque<detail::GaugeData> gauge_store;
  std::deque<detail::HistogramData> histogram_store;

  void check_unique(const std::string& name, const char* wanted) const {
    const bool taken = (counters.count(name) + gauges.count(name) +
                        histograms.count(name)) != 0;
    if (taken) {
      throw Error("obs: metric '" + name + "' already registered as a " +
                  "different kind (wanted " + wanted + ")");
    }
  }
};

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& registry() { return Registry::global(); }

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  if (const auto it = impl_->counters.find(name);
      it != impl_->counters.end()) {
    return Counter(it->second);
  }
  impl_->check_unique(name, "counter");
  impl_->counter_store.emplace_back();
  detail::CounterData* data = &impl_->counter_store.back();
  impl_->counters.emplace(name, data);
  return Counter(data);
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->mu);
  if (const auto it = impl_->gauges.find(name); it != impl_->gauges.end()) {
    return Gauge(it->second);
  }
  impl_->check_unique(name, "gauge");
  impl_->gauge_store.emplace_back();
  detail::GaugeData* data = &impl_->gauge_store.back();
  impl_->gauges.emplace(name, data);
  return Gauge(data);
}

Histogram Registry::histogram(const std::string& name, std::vector<u64> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw Error("obs: histogram '" + name + "' bounds must strictly increase");
  }
  std::lock_guard lock(impl_->mu);
  if (const auto it = impl_->histograms.find(name);
      it != impl_->histograms.end()) {
    if (it->second->bounds != bounds) {
      throw Error("obs: histogram '" + name +
                  "' re-registered with different bounds");
    }
    return Histogram(it->second);
  }
  impl_->check_unique(name, "histogram");
  impl_->histogram_store.emplace_back();
  detail::HistogramData* data = &impl_->histogram_store.back();
  data->bounds = std::move(bounds);
  data->buckets.resize(detail::kShards);
  for (auto& shard : data->buckets) {
    shard = std::vector<detail::Cell>(data->bounds.size() + 1);
  }
  impl_->histograms.emplace(name, data);
  return Histogram(data);
}

Snapshot Registry::scrape() const {
  std::vector<Sample> samples;
  std::lock_guard lock(impl_->mu);
  for (const auto& [name, data] : impl_->counters) {
    Sample s;
    s.kind = Sample::Kind::Counter;
    s.name = name;
    for (const auto& cell : data->shards) s.value += detail::cell_load(cell);
    samples.push_back(std::move(s));
  }
  for (const auto& [name, data] : impl_->gauges) {
    Sample s;
    s.kind = Sample::Kind::Gauge;
    s.name = name;
    for (const auto& cell : data->shards) {
      s.value = std::max(s.value, detail::cell_load(cell));
    }
    samples.push_back(std::move(s));
  }
  for (const auto& [name, data] : impl_->histograms) {
    Sample s;
    s.kind = Sample::Kind::Histogram;
    s.name = name;
    s.bounds = data->bounds;
    s.counts.assign(data->bounds.size() + 1, 0);
    for (size_t shard = 0; shard < detail::kShards; ++shard) {
      for (size_t b = 0; b < s.counts.size(); ++b) {
        s.counts[b] += detail::cell_load(data->buckets[shard][b]);
      }
      s.sum += detail::cell_load(data->sums[shard]);
    }
    for (const u64 c : s.counts) s.count += c;
    samples.push_back(std::move(s));
  }
  return Snapshot(std::move(samples));
}

void Registry::reset() {
  std::lock_guard lock(impl_->mu);
  for (auto& data : impl_->counter_store) {
    for (auto& cell : data.shards) detail::cell_store(cell, 0);
  }
  for (auto& data : impl_->gauge_store) {
    for (auto& cell : data.shards) detail::cell_store(cell, 0);
  }
  for (auto& data : impl_->histogram_store) {
    for (auto& shard : data.buckets) {
      for (auto& cell : shard) detail::cell_store(cell, 0);
    }
    for (auto& cell : data.sums) detail::cell_store(cell, 0);
  }
}

#else  // !RAP_OBS_ENABLED

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& registry() { return Registry::global(); }

#endif  // RAP_OBS_ENABLED

}  // namespace raptrack::obs
