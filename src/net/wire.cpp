#include "net/wire.hpp"

#include <algorithm>

#include "common/crc32.hpp"
#include "crypto/sha256.hpp"

namespace raptrack::net {

namespace {

constexpr u8 kMagic[4] = {'D', 'G', 'M', '1'};

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

/// Non-throwing bounds-checked cursor (same discipline as the report
/// codecs: hostile bytes yield an error value, never a crash).
struct Reader {
  std::span<const u8> data;
  size_t pos = 0;
  bool failed = false;

  u8 u8_value() {
    if (failed || data.size() - pos < 1) {
      failed = true;
      return 0;
    }
    return data[pos++];
  }

  u32 u32_value() {
    if (failed || data.size() - pos < 4) {
      failed = true;
      return 0;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  u64 u64_value() {
    if (failed || data.size() - pos < 8) {
      failed = true;
      return 0;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  std::span<const u8> subspan(size_t count) {
    if (failed || data.size() - pos < count) {
      failed = true;
      return {};
    }
    const auto result = data.subspan(pos, count);
    pos += count;
    return result;
  }

  bool done() const { return !failed && pos == data.size(); }
};

template <typename T>
cfa::Decoded<T> fail(std::string why) {
  return cfa::Decoded<T>::failure(std::move(why));
}

}  // namespace

bool datagram_kind_valid(u8 value) {
  return value >= static_cast<u8>(DatagramKind::Data) &&
         value <= static_cast<u8>(DatagramKind::Verdict);
}

std::vector<u8> encode_datagram(const Datagram& dgram) {
  std::vector<u8> out;
  out.reserve(33 + dgram.payload.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(static_cast<u8>(dgram.kind));
  put_u64(out, dgram.device);
  put_u64(out, dgram.session);
  put_u32(out, dgram.seq);
  put_u32(out, static_cast<u32>(dgram.payload.size()));
  out.insert(out.end(), dgram.payload.begin(), dgram.payload.end());
  put_u32(out, crc32(out));
  return out;
}

cfa::Decoded<Datagram> try_decode_datagram(std::span<const u8> bytes) {
  using D = Datagram;
  if (bytes.size() < 33) return fail<D>("datagram: truncated");
  if (!std::equal(std::begin(kMagic), std::end(kMagic), bytes.begin())) {
    return fail<D>("datagram: bad magic");
  }
  const auto body = bytes.first(bytes.size() - 4);
  u32 stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<u32>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  if (crc32(body) != stored) return fail<D>("datagram: CRC mismatch");

  Reader reader{body.subspan(sizeof(kMagic))};
  Datagram dgram;
  const u8 kind = reader.u8_value();
  if (!datagram_kind_valid(kind)) return fail<D>("datagram: unknown kind");
  dgram.kind = static_cast<DatagramKind>(kind);
  dgram.device = reader.u64_value();
  dgram.session = reader.u64_value();
  dgram.seq = reader.u32_value();
  const u32 payload_len = reader.u32_value();
  const auto payload = reader.subspan(payload_len);
  dgram.payload.assign(payload.begin(), payload.end());
  if (!reader.done()) return fail<D>("datagram: bad payload length");
  return cfa::Decoded<D>::success(std::move(dgram));
}

std::vector<u8> encode_nack_ranges(std::span<const SeqRange> ranges) {
  std::vector<u8> out;
  put_u32(out, static_cast<u32>(ranges.size()));
  for (const auto& range : ranges) {
    put_u32(out, range.first);
    put_u32(out, range.count);
  }
  return out;
}

cfa::Decoded<std::vector<SeqRange>> try_decode_nack_ranges(
    std::span<const u8> payload) {
  using Ranges = std::vector<SeqRange>;
  Reader reader{payload};
  const u32 count = reader.u32_value();
  // 8 bytes per range; reject forged counts before allocating.
  if (count > payload.size() / 8) return fail<Ranges>("nack: forged count");
  Ranges ranges;
  ranges.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    SeqRange range;
    range.first = reader.u32_value();
    range.count = reader.u32_value();
    ranges.push_back(range);
  }
  if (!reader.done()) return fail<Ranges>("nack: trailing bytes");
  return cfa::Decoded<Ranges>::success(std::move(ranges));
}

std::vector<u8> encode_verdict(const VerdictMessage& message) {
  std::vector<u8> out;
  out.push_back(static_cast<u8>(message.verdict));
  out.insert(out.end(), message.digest.begin(), message.digest.end());
  put_u32(out, static_cast<u32>(message.detail.size()));
  out.insert(out.end(), message.detail.begin(), message.detail.end());
  return out;
}

cfa::Decoded<VerdictMessage> try_decode_verdict(std::span<const u8> payload) {
  using M = VerdictMessage;
  Reader reader{payload};
  const u8 verdict = reader.u8_value();
  if (verdict > static_cast<u8>(verify::Verdict::Inconclusive)) {
    return fail<M>("verdict: unknown discriminant");
  }
  VerdictMessage message;
  message.verdict = static_cast<verify::Verdict>(verdict);
  const auto digest = reader.subspan(message.digest.size());
  if (reader.failed) return fail<M>("verdict: truncated");
  std::copy(digest.begin(), digest.end(), message.digest.begin());
  const u32 detail_len = reader.u32_value();
  const auto detail = reader.subspan(detail_len);
  message.detail.assign(detail.begin(), detail.end());
  if (!reader.done()) return fail<M>("verdict: trailing bytes");
  return cfa::Decoded<M>::success(std::move(message));
}

crypto::Digest result_digest(const verify::VerificationResult& result) {
  crypto::Sha256 hasher;
  hasher.update(std::string_view(verify::verdict_name(result.verdict)));
  hasher.update(std::string_view("\n"));
  hasher.update(std::string_view(result.detail));
  hasher.update(std::string_view("\n"));
  std::vector<u8> tail;
  for (const auto& gap : result.gaps) {
    for (int i = 0; i < 4; ++i) {
      tail.push_back(static_cast<u8>(gap.first_missing >> (8 * i)));
    }
    for (int i = 0; i < 4; ++i) {
      tail.push_back(static_cast<u8>(gap.missing_count >> (8 * i)));
    }
  }
  const u8 flags = static_cast<u8>(result.authentic) |
                   static_cast<u8>(result.fresh) << 1 |
                   static_cast<u8>(result.chain_ok) << 2 |
                   static_cast<u8>(result.reconstruction_ok) << 3;
  tail.push_back(flags);
  hasher.update(tail);
  return hasher.finalize();
}

}  // namespace raptrack::net
