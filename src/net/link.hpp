// Simulated unreliable duplex link between prover and verifier.
//
// Time is a virtual tick counter owned by the DuplexLink — no wall clock
// anywhere — and every random choice (loss, duplication, reordering delay,
// corruption position, tamper mutation) comes from one seeded generator, so
// an entire lossy-link campaign replays bit-for-bit from (models, seed).
// Failing tests print that seed; re-running it reproduces the exact
// datagram schedule.
//
// Each direction is an independent LossyLink applying, per frame:
//   * drop      — the frame vanishes;
//   * duplicate — a second copy is enqueued with its own delay;
//   * delay     — uniform in [delay_min_ticks, delay_max_ticks];
//   * reorder   — an extra delay spike, which inverts delivery order
//                 against later traffic;
//   * corrupt   — one random bit flipped anywhere in the frame (the
//                 receiver's CRC turns this into a drop);
//   * tamper    — an *adversarial* mutation: a Data frame's SignedReport is
//                 run through one seeded fault::mutating_transport_injectors
//                 kind and re-framed with a valid CRC. The frame parses; the
//                 report's MAC no longer verifies. This is the PR-1
//                 corruption source aimed at the delivery layer.
#pragma once

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptrack::net {

/// Per-direction fault model. Rates are permille (0..1000) per frame.
struct LinkModel {
  u32 drop_permille = 0;
  u32 dup_permille = 0;
  u32 reorder_permille = 0;
  u32 corrupt_permille = 0;
  u32 tamper_permille = 0;
  u32 delay_min_ticks = 1;
  u32 delay_max_ticks = 2;

  /// A symmetric lossy profile: loss/dup/reorder at `loss_permille` each
  /// (dup and reorder at half), short delays. The soak harness sweeps this.
  static LinkModel lossy(u32 loss_permille);
};

struct LinkStats {
  u64 sent = 0;        ///< frames offered to the link
  u64 delivered = 0;   ///< frames handed to the receiver
  u64 dropped = 0;
  u64 duplicated = 0;
  u64 reordered = 0;
  u64 corrupted = 0;
  u64 tampered = 0;
  u64 bytes_sent = 0;  ///< offered bytes (goodput denominator)
};

/// One direction of the link: a seeded delay queue with faults.
class LossyLink {
 public:
  LossyLink(LinkModel model, u64 seed);

  /// Offer one frame at time `now`. Faults apply here; surviving copies are
  /// scheduled for delivery at a later tick.
  void send(u64 now, std::vector<u8> frame);

  /// Frames due at or before `now`, in (due_tick, arrival order) — the
  /// deterministic delivery order the seed fixes.
  std::vector<std::vector<u8>> deliver_due(u64 now);

  const LinkStats& stats() const { return stats_; }
  bool idle() const { return queue_.empty(); }

 private:
  void enqueue(u64 now, std::vector<u8> frame, bool reordered);

  LinkModel model_;
  Xoshiro256 rng_;
  LinkStats stats_;
  u64 arrivals_ = 0;  ///< tie-break so equal due-ticks deliver in send order
  std::map<std::pair<u64, u64>, std::vector<u8>> queue_;  ///< (due, arrival)
};

/// Both directions plus the shared virtual clock.
class DuplexLink {
 public:
  DuplexLink(LinkModel to_verifier, LinkModel to_prover, u64 seed);

  u64 now() const { return now_; }
  void advance() { ++now_; }

  void send_to_verifier(std::vector<u8> frame) {
    to_verifier_.send(now_, std::move(frame));
  }
  void send_to_prover(std::vector<u8> frame) {
    to_prover_.send(now_, std::move(frame));
  }
  std::vector<std::vector<u8>> receive_at_verifier() {
    return to_verifier_.deliver_due(now_);
  }
  std::vector<std::vector<u8>> receive_at_prover() {
    return to_prover_.deliver_due(now_);
  }

  const LinkStats& to_verifier_stats() const { return to_verifier_.stats(); }
  const LinkStats& to_prover_stats() const { return to_prover_.stats(); }
  bool idle() const { return to_verifier_.idle() && to_prover_.idle(); }

 private:
  u64 now_ = 0;
  LossyLink to_verifier_;
  LossyLink to_prover_;
};

}  // namespace raptrack::net
