#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "fault/injector.hpp"
#include "net/wire.hpp"

namespace raptrack::net {

namespace {

/// Adversarial in-path mutation of one frame. A Data frame's SignedReport
/// is decoded, run through one seeded mutating transport injector (the PR-1
/// corruption source), re-encoded and re-framed with a valid CRC — the
/// datagram survives the link layer and the forgery must die at the MAC.
/// Non-Data frames (and undecodable ones) fall back to a blind bit flip,
/// which the receiver CRC converts into a drop.
std::vector<u8> tamper_frame(Xoshiro256& rng, std::vector<u8> frame) {
  auto decoded = try_decode_datagram(frame);
  if (decoded.ok() && decoded->kind == DatagramKind::Data) {
    auto report = cfa::try_decode_report(decoded->payload);
    if (report.ok()) {
      const auto kinds = fault::mutating_transport_injectors();
      fault::FaultPlan plan(rng.next());
      plan.add(kinds[rng.next_below(kinds.size())]);
      std::vector<cfa::SignedReport> chain = {std::move(*report)};
      fault::apply_transport_faults(plan, chain);
      if (!chain.empty()) {
        decoded->payload = cfa::encode_report(chain.front());
        decoded->seq = chain.front().sequence;
        return encode_datagram(*decoded);
      }
    }
  }
  if (!frame.empty()) {
    const u64 bit = rng.next_below(frame.size() * 8);
    frame[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
  }
  return frame;
}

}  // namespace

LinkModel LinkModel::lossy(u32 loss_permille) {
  LinkModel model;
  model.drop_permille = loss_permille;
  model.dup_permille = loss_permille / 2;
  model.reorder_permille = loss_permille / 2;
  model.delay_min_ticks = 1;
  model.delay_max_ticks = 4;
  return model;
}

LossyLink::LossyLink(LinkModel model, u64 seed) : model_(model), rng_(seed) {
  if (model_.delay_min_ticks == 0) model_.delay_min_ticks = 1;
  if (model_.delay_max_ticks < model_.delay_min_ticks) {
    model_.delay_max_ticks = model_.delay_min_ticks;
  }
}

void LossyLink::enqueue(u64 now, std::vector<u8> frame, bool reordered) {
  u64 delay = model_.delay_min_ticks +
              rng_.next_below(model_.delay_max_ticks - model_.delay_min_ticks + 1);
  if (reordered) {
    // A delay spike of several base windows: later frames with normal
    // delays overtake this one.
    delay += 1 + rng_.next_below(4ull * model_.delay_max_ticks);
    ++stats_.reordered;
  }
  queue_.emplace(std::pair{now + delay, arrivals_++}, std::move(frame));
}

void LossyLink::send(u64 now, std::vector<u8> frame) {
  ++stats_.sent;
  stats_.bytes_sent += frame.size();
  if (model_.drop_permille != 0 && rng_.chance(model_.drop_permille, 1000)) {
    ++stats_.dropped;
    return;
  }
  if (model_.tamper_permille != 0 && rng_.chance(model_.tamper_permille, 1000)) {
    ++stats_.tampered;
    frame = tamper_frame(rng_, std::move(frame));
  } else if (model_.corrupt_permille != 0 &&
             rng_.chance(model_.corrupt_permille, 1000)) {
    ++stats_.corrupted;
    if (!frame.empty()) {
      const u64 bit = rng_.next_below(frame.size() * 8);
      frame[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
  }
  const bool duplicate =
      model_.dup_permille != 0 && rng_.chance(model_.dup_permille, 1000);
  const bool reorder =
      model_.reorder_permille != 0 && rng_.chance(model_.reorder_permille, 1000);
  if (duplicate) {
    ++stats_.duplicated;
    enqueue(now, frame, /*reordered=*/false);
  }
  enqueue(now, std::move(frame), reorder);
}

std::vector<std::vector<u8>> LossyLink::deliver_due(u64 now) {
  std::vector<std::vector<u8>> due;
  while (!queue_.empty() && queue_.begin()->first.first <= now) {
    due.push_back(std::move(queue_.begin()->second));
    queue_.erase(queue_.begin());
  }
  stats_.delivered += due.size();
  return due;
}

DuplexLink::DuplexLink(LinkModel to_verifier, LinkModel to_prover, u64 seed)
    : to_verifier_(to_verifier, SplitMix64(seed).next()),
      to_prover_(to_prover, SplitMix64(seed ^ 0x9e3779b97f4a7c15ull).next()) {}

}  // namespace raptrack::net
