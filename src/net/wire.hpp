// Datagram wire format for the Prv -> Vrf delivery link.
//
// A SignedReport is the unit of *evidence*; a Datagram is the unit of
// *delivery*. Each frame carries a kind, the (device, session) addressing
// pair, a sequence field, an opaque payload, and a CRC-32 trailer:
//
//   "DGM1" | kind:u8 | device:u64 | session:u64 | seq:u32 |
//   payload_len:u32 | payload | crc32:u32
//
// The CRC is error *detection* only — it lets a receiver discard
// line-corrupted frames for the price of a table lookup per byte, before
// any crypto runs. Authentication stays where it belongs: the HMAC on the
// SignedReport inside a Data payload. An adversary can forge a CRC; they
// cannot forge the MAC.
//
// Kinds and their payloads:
//   Data    — one wire-encoded SignedReport ("RPT1..."); `seq` echoes the
//             report's sequence number so ACK bookkeeping never needs to
//             parse the payload.
//   Ack     — `seq` is the cumulative ACK (every report sequence < seq has
//             been received); the payload is a selective-NACK range list,
//             the verifier's VerifyResult.gaps translated to "re-send
//             exactly these" requests.
//   Verdict — the terminal result of the session: verdict byte, canonical
//             result digest, and the human-readable detail string.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cfa/report.hpp"
#include "common/types.hpp"
#include "verify/verifier.hpp"

namespace raptrack::net {

enum class DatagramKind : u8 {
  Data = 1,
  Ack = 2,
  Verdict = 3,
};

/// Is `value` one of the defined DatagramKind discriminants?
bool datagram_kind_valid(u8 value);

struct Datagram {
  DatagramKind kind = DatagramKind::Data;
  u64 device = 0;   ///< verify::DeviceId of the prover
  u64 session = 0;  ///< one attestation episode on that device
  u32 seq = 0;      ///< Data: report sequence; Ack: cumulative ack
  std::vector<u8> payload;
};

std::vector<u8> encode_datagram(const Datagram& dgram);
/// CRC-checked, bounds-checked decode of one frame. Corrupted, truncated
/// or trailing bytes fail (the link layer treats a failure as loss).
cfa::Decoded<Datagram> try_decode_datagram(std::span<const u8> bytes);

// -- Ack payload: selective-NACK ranges --------------------------------------

/// One hole the verifier wants re-sent: report sequences
/// [first, first + count). Mirrors verify::ChainGap.
struct SeqRange {
  u32 first = 0;
  u32 count = 0;

  friend bool operator==(const SeqRange&, const SeqRange&) = default;
};

std::vector<u8> encode_nack_ranges(std::span<const SeqRange> ranges);
cfa::Decoded<std::vector<SeqRange>> try_decode_nack_ranges(
    std::span<const u8> payload);

// -- Verdict payload ---------------------------------------------------------

struct VerdictMessage {
  verify::Verdict verdict = verify::Verdict::Reject;
  crypto::Digest digest{};  ///< result_digest() of the terminal result
  std::string detail;

  friend bool operator==(const VerdictMessage&, const VerdictMessage&) = default;
};

std::vector<u8> encode_verdict(const VerdictMessage& message);
cfa::Decoded<VerdictMessage> try_decode_verdict(std::span<const u8> payload);

/// Canonical digest of a terminal verification result: SHA-256 over the
/// verdict name, the detail string, and the gap list. Two runs that decide
/// a session identically — e.g. a straight-through campaign and one that
/// crash-recovered from a SessionStore snapshot halfway — produce the same
/// digest, which is the recovery invariant the tests pin.
crypto::Digest result_digest(const verify::VerificationResult& result);

}  // namespace raptrack::net
