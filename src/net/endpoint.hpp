// Session protocol over the lossy link: resilient delivery of one device's
// report chain to the verifier farm.
//
// ProverEndpoint frames each SignedReport as a sequence-numbered Data
// datagram and runs a windowed ARQ sender: unacknowledged frames retransmit
// on timeout with capped exponential backoff plus deterministic seeded
// jitter; a cumulative ACK releases the retransmit buffer prefix; a
// selective NACK re-sends exactly the requested sequence ranges. Once every
// frame is ACKed the sender probes (re-sending its final frame with the
// same backoff schedule) until the terminal Verdict datagram arrives or the
// retry budget is exhausted — the bounded give-up outcome.
//
// VerifierEndpoint is the farm's front door. Per (device, session) it
// reassembles the chain from Data datagrams — CRC-checked by the wire
// layer, then MAC-checked at the door so a link-tampered report never
// enters reassembly (it costs the sender a quarantine strike instead) —
// cumulatively ACKs progress, and once the final report is present submits
// the assembled chain to the VerifierFarm. An Inconclusive verdict's gap
// list becomes a selective NACK; repaired ranges trigger resubmission,
// converting Inconclusive into Accept after repair. Terminal verdicts are
// cached and re-announced for late/duplicate datagrams, so a lost Verdict
// frame is recovered by the prover's probe.
//
// Crash recovery: snapshot() captures the farm's SessionStore (challenge
// state) plus every in-flight session's reassembly buffer, gap list and
// cached verdict under one CRC-checked blob; restore() resumes a fresh
// endpoint + farm mid-campaign to the same terminal verdict digest the
// uninterrupted run reaches.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/link.hpp"
#include "net/wire.hpp"
#include "verify/farm.hpp"

namespace raptrack::net {

// -- prover side -------------------------------------------------------------

struct ProverOptions {
  /// Max unACKed Data frames in flight.
  u32 window = 8;
  /// First retransmission timeout, in link ticks.
  u32 initial_rto_ticks = 8;
  /// Backoff cap: rto doubles per retry up to this.
  u32 max_rto_ticks = 64;
  /// Deterministic jitter added to every deadline, drawn uniform in
  /// [0, jitter_ticks) from the endpoint's seeded generator.
  u32 jitter_ticks = 4;
  /// Per-frame retry budget; exhausting it is the bounded give-up verdict.
  u32 max_retries = 12;
};

struct ProverStats {
  u64 datagrams_sent = 0;
  u64 retransmits_timeout = 0;
  u64 retransmits_nack = 0;
  u64 acks_received = 0;
  u64 verdict_probes = 0;
  u32 max_rto_reached = 0;  ///< highest backoff the session hit
};

enum class ProverPhase : u8 {
  Sending,  ///< frames unACKed or verdict outstanding
  Done,     ///< terminal Verdict received
  GaveUp,   ///< retry budget exhausted (link presumed dead)
};

class ProverEndpoint {
 public:
  /// `chain` is the fully-signed report chain for `session` (challenge
  /// already embedded in the reports). `seed` drives the backoff jitter.
  ProverEndpoint(verify::DeviceId device, u64 session,
                 std::vector<cfa::SignedReport> chain,
                 ProverOptions options = {}, u64 seed = 0x5eed'beef);

  /// One scheduler step at the link's current tick: drain inbound ACK /
  /// NACK / Verdict datagrams, admit new frames into the window, fire
  /// retransmission timeouts.
  void on_tick(DuplexLink& link);

  ProverPhase phase() const { return phase_; }
  const std::optional<VerdictMessage>& verdict() const { return verdict_; }
  const ProverStats& stats() const { return stats_; }

 private:
  struct Slot {
    std::vector<u8> frame;  ///< encoded Data datagram, reused verbatim
    bool sent = false;
    bool acked = false;
    u64 deadline = 0;
    u32 rto = 0;
    u32 retries = 0;
  };

  void handle(const Datagram& dgram, DuplexLink& link);
  void transmit(size_t index, DuplexLink& link);
  void arm(Slot& slot, u64 now);  ///< deadline = now + rto + jitter
  size_t in_flight() const;

  verify::DeviceId device_;
  u64 session_;
  ProverOptions options_;
  Xoshiro256 rng_;
  ProverStats stats_;
  std::vector<Slot> slots_;
  u32 cumulative_ack_ = 0;  ///< best cumulative ACK seen
  size_t next_unsent_ = 0;
  ProverPhase phase_ = ProverPhase::Sending;
  std::optional<VerdictMessage> verdict_;
  // Verdict probe (all frames ACKed, waiting for the terminal datagram).
  u64 probe_deadline_ = 0;
  u32 probe_rto_ = 0;
  u32 probe_retries_ = 0;
};

// -- verifier side -----------------------------------------------------------

struct VerifierOptions {
  /// Data datagrams a session may receive before every further one counts
  /// a flood strike against the device (0 disables). A well-behaved prover
  /// needs ~chain_length * (1 + retransmit overhead) datagrams.
  u32 flood_datagram_budget = 0;
  /// Hard cap on distinct report sequences buffered per session: bounds
  /// memory against a malicious sender inventing sequence numbers.
  u32 max_session_reports = 4096;
};

struct VerifierStats {
  u64 datagrams_received = 0;
  u64 decode_drops = 0;     ///< undecodable frame or report payload
  u64 mac_drops = 0;        ///< authentic-looking frame, forged report
  u64 duplicate_reports = 0;
  u64 acks_sent = 0;
  u64 nack_ranges_sent = 0;
  u64 submissions = 0;
  u64 repair_rounds = 0;    ///< Inconclusive submissions that NACKed gaps
  u64 verdicts_sent = 0;
  u64 flood_strikes = 0;
};

class VerifierEndpoint {
 public:
  explicit VerifierEndpoint(verify::VerifierFarm& farm,
                            VerifierOptions options = {});

  /// Drain inbound datagrams at the link's current tick: reassemble,
  /// ACK/NACK, submit completed chains to the farm, announce verdicts.
  void on_tick(DuplexLink& link);

  const VerifierStats& stats() const { return stats_; }

  /// Terminal state of one session, if it reached a verdict.
  struct SessionInfo {
    bool terminal = false;
    VerdictMessage verdict{};
    u32 repair_rounds = 0;
    std::vector<SeqRange> open_gaps;  ///< last NACKed ranges, if any
  };
  std::optional<SessionInfo> session_info(verify::DeviceId device,
                                          u64 session) const;

  // -- crash recovery --------------------------------------------------------

  /// Checksummed snapshot: the farm's SessionStore (challenge state) plus
  /// every session's reassembly buffer, gap list and cached verdict.
  /// Deployments are NOT included — a restarted verifier re-provisions its
  /// farm from the image registry before restoring.
  std::vector<u8> snapshot() const;

  /// Load a snapshot() blob into this endpoint *and* its farm's
  /// SessionStore. Returns false (state untouched) on bad magic,
  /// truncation, trailing bytes, or checksum mismatch.
  bool restore(std::span<const u8> blob);

 private:
  struct Session {
    cfa::Challenge chal{};
    bool chal_known = false;
    std::map<u32, cfa::SignedReport> received;  ///< by sequence, MAC-valid
    /// Authentic reports conflicting with `received` at the same sequence:
    /// only the key holder can produce these, so they ride along into the
    /// submission, where the core convicts the equivocation.
    std::vector<cfa::SignedReport> extras;
    u32 next_ack = 0;      ///< every sequence < next_ack is present
    bool have_final = false;
    bool dirty = false;    ///< new evidence since the last submission
    bool terminal = false;
    VerdictMessage verdict{};
    std::vector<SeqRange> open_gaps;
    u32 repair_rounds = 0;
    u64 datagrams = 0;     ///< flood accounting
  };
  using SessionKey = std::pair<u64, u64>;  ///< (device, session)

  void on_data(const Datagram& dgram, DuplexLink& link);
  void maybe_submit(const SessionKey& key, Session& session, DuplexLink& link);
  void send_ack(const SessionKey& key, const Session& session,
                DuplexLink& link);
  void send_verdict(const SessionKey& key, const Session& session,
                    DuplexLink& link);

  verify::VerifierFarm& farm_;
  VerifierOptions options_;
  VerifierStats stats_;
  std::map<SessionKey, Session> sessions_;  ///< ordered: snapshots determinize
};

// -- session pump ------------------------------------------------------------

struct SessionOutcome {
  ProverPhase phase = ProverPhase::GaveUp;
  std::optional<VerdictMessage> verdict;  ///< set when phase == Done
  u64 ticks = 0;
};

/// Drive one prover/verifier pair over `link` until the prover terminates
/// (Done or GaveUp) or `max_ticks` elapse. Each tick: prover step, verifier
/// step, clock advance — fully deterministic given the endpoint and link
/// seeds.
SessionOutcome run_session(ProverEndpoint& prover, VerifierEndpoint& verifier,
                           DuplexLink& link, u64 max_ticks = 100'000);

}  // namespace raptrack::net
