#include "net/endpoint.hpp"

#include <algorithm>
#include <utility>

#include "common/crc32.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace raptrack::net {

namespace {

// Endpoint-wide metric handles, registered once (same pattern as the farm).
struct NetMetrics {
  obs::Counter datagrams_sent = obs::registry().counter("net.datagrams_sent");
  obs::Counter datagrams_received =
      obs::registry().counter("net.datagrams_received");
  obs::Counter decode_drops = obs::registry().counter("net.decode_drops");
  obs::Counter mac_drops = obs::registry().counter("net.mac_drops");
  obs::Counter retransmits_timeout =
      obs::registry().counter("net.retransmits_timeout");
  obs::Counter retransmits_nack =
      obs::registry().counter("net.retransmits_nack");
  obs::Counter verdict_probes = obs::registry().counter("net.verdict_probes");
  obs::Counter submissions = obs::registry().counter("net.submissions");
  obs::Counter repair_rounds = obs::registry().counter("net.repair_rounds");
  obs::Counter verdicts_sent = obs::registry().counter("net.verdicts_sent");
  obs::Counter flood_strikes = obs::registry().counter("net.flood_strikes");
  obs::Counter sessions_accepted =
      obs::registry().counter("net.sessions.accepted");
  obs::Counter sessions_rejected =
      obs::registry().counter("net.sessions.rejected");
  obs::Histogram backoff = obs::registry().histogram(
      "net.backoff_rto_ticks", {8, 16, 32, 64, 128});

  static NetMetrics& get() {
    static NetMetrics metrics;
    return metrics;
  }
};

constexpr u8 kSnapshotMagic[4] = {'V', 'S', 'S', '1'};
// v2 appends per-deployment warm memo-cache sections (keyed by expected
// H_MEM) after the delivery sessions; v1 blobs still restore — cold.
constexpr u32 kSnapshotVersion = 2;

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

void put_bytes(std::vector<u8>& out, std::span<const u8> bytes) {
  put_u32(out, static_cast<u32>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

struct SnapReader {
  std::span<const u8> data;
  size_t pos = 0;
  bool failed = false;

  u8 u8_value() {
    if (failed || data.size() - pos < 1) {
      failed = true;
      return 0;
    }
    return data[pos++];
  }

  u32 u32_value() {
    if (failed || data.size() - pos < 4) {
      failed = true;
      return 0;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  u64 u64_value() {
    if (failed || data.size() - pos < 8) {
      failed = true;
      return 0;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  std::span<const u8> bytes_value() {
    const u32 len = u32_value();
    if (failed || data.size() - pos < len) {
      failed = true;
      return {};
    }
    const auto result = data.subspan(pos, len);
    pos += len;
    return result;
  }

  bool done() const { return !failed && pos == data.size(); }
};

bool detail_has_prefix(const std::string& detail, const char* prefix) {
  return detail.rfind(prefix, 0) == 0;
}

}  // namespace

// -- ProverEndpoint ----------------------------------------------------------

ProverEndpoint::ProverEndpoint(verify::DeviceId device, u64 session,
                               std::vector<cfa::SignedReport> chain,
                               ProverOptions options, u64 seed)
    : device_(device), session_(session), options_(options), rng_(seed) {
  options_.window = std::max<u32>(options_.window, 1);
  options_.initial_rto_ticks = std::max<u32>(options_.initial_rto_ticks, 1);
  options_.max_rto_ticks =
      std::max(options_.max_rto_ticks, options_.initial_rto_ticks);
  slots_.reserve(chain.size());
  for (const auto& report : chain) {
    Datagram dgram;
    dgram.kind = DatagramKind::Data;
    dgram.device = device_;
    dgram.session = session_;
    dgram.seq = report.sequence;
    dgram.payload = cfa::encode_report(report);
    Slot slot;
    slot.frame = encode_datagram(dgram);
    slots_.push_back(std::move(slot));
  }
  if (slots_.empty()) phase_ = ProverPhase::GaveUp;
}

size_t ProverEndpoint::in_flight() const {
  size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.sent && !slot.acked) ++count;
  }
  return count;
}

void ProverEndpoint::arm(Slot& slot, u64 now) {
  slot.deadline =
      now + slot.rto + rng_.next_below(std::max<u32>(options_.jitter_ticks, 1));
  stats_.max_rto_reached = std::max(stats_.max_rto_reached, slot.rto);
  NetMetrics::get().backoff.observe(slot.rto);
}

void ProverEndpoint::transmit(size_t index, DuplexLink& link) {
  Slot& slot = slots_[index];
  link.send_to_verifier(slot.frame);
  ++stats_.datagrams_sent;
  NetMetrics::get().datagrams_sent.inc();
  if (!slot.sent) {
    slot.sent = true;
    slot.rto = options_.initial_rto_ticks;
  }
  arm(slot, link.now());
}

void ProverEndpoint::handle(const Datagram& dgram, DuplexLink& link) {
  switch (dgram.kind) {
    case DatagramKind::Ack: {
      ++stats_.acks_received;
      // Cumulative: everything below the ACK leaves the retransmit set
      // (frames are kept but never re-armed; a stale reordered ACK cannot
      // regress progress because we fold with max).
      cumulative_ack_ = std::max(cumulative_ack_, dgram.seq);
      for (size_t i = 0; i < slots_.size() && i < cumulative_ack_; ++i) {
        slots_[i].acked = true;
      }
      auto ranges = try_decode_nack_ranges(dgram.payload);
      if (!ranges.ok()) return;
      // Selective NACK: re-send exactly the requested sequences, now, with
      // the slot's current backoff re-armed (loss of the repair falls back
      // to the timeout path).
      for (const auto& range : *ranges) {
        const u64 end = u64{range.first} + range.count;
        for (u64 seq = range.first; seq < end && seq < slots_.size(); ++seq) {
          Slot& slot = slots_[seq];
          if (slot.acked || !slot.sent) continue;
          ++stats_.retransmits_nack;
          NetMetrics::get().retransmits_nack.inc();
          transmit(static_cast<size_t>(seq), link);
        }
      }
      return;
    }
    case DatagramKind::Verdict: {
      auto message = try_decode_verdict(dgram.payload);
      if (!message.ok()) return;
      verdict_ = std::move(*message);
      phase_ = ProverPhase::Done;
      return;
    }
    case DatagramKind::Data:
      return;  // not expected on the prover-bound direction
  }
}

void ProverEndpoint::on_tick(DuplexLink& link) {
  for (const auto& frame : link.receive_at_prover()) {
    if (phase_ != ProverPhase::Sending) break;
    auto dgram = try_decode_datagram(frame);
    if (!dgram.ok()) continue;  // line corruption: CRC already paid for this
    if (dgram->device != device_ || dgram->session != session_) continue;
    handle(*dgram, link);
  }
  if (phase_ != ProverPhase::Sending) return;
  const u64 now = link.now();

  // Admit new frames into the window.
  while (next_unsent_ < slots_.size() && in_flight() < options_.window) {
    if (!slots_[next_unsent_].sent) transmit(next_unsent_, link);
    ++next_unsent_;
  }

  // Retransmission timeouts: capped exponential backoff per frame.
  for (size_t i = 0; i < next_unsent_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.sent || slot.acked || slot.deadline > now) continue;
    if (slot.retries >= options_.max_retries) {
      phase_ = ProverPhase::GaveUp;
      return;
    }
    ++slot.retries;
    slot.rto = std::min(slot.rto * 2, options_.max_rto_ticks);
    ++stats_.retransmits_timeout;
    NetMetrics::get().retransmits_timeout.inc();
    transmit(i, link);
  }

  // Everything ACKed: probe for the (possibly lost) Verdict datagram by
  // re-sending the final frame on the same backoff schedule.
  const bool all_acked = std::all_of(slots_.begin(), slots_.end(),
                                     [](const Slot& s) { return s.acked; });
  if (all_acked && !verdict_.has_value()) {
    if (probe_deadline_ == 0) {
      probe_rto_ = options_.initial_rto_ticks;
      probe_deadline_ =
          now + probe_rto_ +
          rng_.next_below(std::max<u32>(options_.jitter_ticks, 1));
    } else if (probe_deadline_ <= now) {
      if (probe_retries_ >= options_.max_retries) {
        phase_ = ProverPhase::GaveUp;
        return;
      }
      ++probe_retries_;
      ++stats_.verdict_probes;
      NetMetrics::get().verdict_probes.inc();
      link.send_to_verifier(slots_.back().frame);
      ++stats_.datagrams_sent;
      NetMetrics::get().datagrams_sent.inc();
      probe_rto_ = std::min(probe_rto_ * 2, options_.max_rto_ticks);
      probe_deadline_ =
          now + probe_rto_ +
          rng_.next_below(std::max<u32>(options_.jitter_ticks, 1));
    }
  }
}

// -- VerifierEndpoint --------------------------------------------------------

VerifierEndpoint::VerifierEndpoint(verify::VerifierFarm& farm,
                                   VerifierOptions options)
    : farm_(farm), options_(options) {}

void VerifierEndpoint::send_ack(const SessionKey& key, const Session& session,
                                DuplexLink& link) {
  Datagram dgram;
  dgram.kind = DatagramKind::Ack;
  dgram.device = key.first;
  dgram.session = key.second;
  dgram.seq = session.next_ack;
  dgram.payload = encode_nack_ranges(session.open_gaps);
  link.send_to_prover(encode_datagram(dgram));
  ++stats_.acks_sent;
  stats_.nack_ranges_sent += session.open_gaps.size();
}

void VerifierEndpoint::send_verdict(const SessionKey& key,
                                    const Session& session, DuplexLink& link) {
  Datagram dgram;
  dgram.kind = DatagramKind::Verdict;
  dgram.device = key.first;
  dgram.session = key.second;
  dgram.seq = session.next_ack;
  dgram.payload = encode_verdict(session.verdict);
  link.send_to_prover(encode_datagram(dgram));
  ++stats_.verdicts_sent;
  NetMetrics::get().verdicts_sent.inc();
}

void VerifierEndpoint::maybe_submit(const SessionKey& key, Session& session,
                                    DuplexLink& link) {
  if (!session.have_final || !session.dirty || session.terminal) return;
  session.dirty = false;

  obs::SessionId obs_session = 0;
  if constexpr (obs::kEnabled) {
    obs_session = obs::tracer().begin_session("net_delivery");
  }
  std::vector<cfa::SignedReport> chain;
  chain.reserve(session.received.size() + session.extras.size());
  for (const auto& [seq, report] : session.received) chain.push_back(report);
  for (const auto& report : session.extras) chain.push_back(report);

  ++stats_.submissions;
  NetMetrics::get().submissions.inc();
  verify::VerificationResult result;
  {
    auto span = obs::tracer().span(obs_session, "farm_roundtrip");
    result = farm_.submit(key.first, session.chal, std::move(chain)).get();
  }

  // A quarantine door-reject is admission control, not a protocol verdict:
  // the session stays open and the evidence re-submits after re-admission.
  if (result.verdict == verify::Verdict::Reject &&
      detail_has_prefix(result.detail, "device quarantined")) {
    session.dirty = true;
    return;
  }
  if (result.verdict == verify::Verdict::Inconclusive) {
    // A contained worker panic adjudicated nothing — retry the submission
    // on the next inbound datagram (the prover's probe guarantees one).
    if (detail_has_prefix(result.detail, "verifier exception contained")) {
      session.dirty = true;
      return;
    }
    // Damaged chain: VerifyResult.gaps becomes the selective NACK, and the
    // repairs re-trigger submission. This is the Inconclusive -> Accept
    // conversion the delivery layer exists for.
    session.open_gaps.clear();
    for (const auto& gap : result.gaps) {
      session.open_gaps.push_back({gap.first_missing, gap.missing_count});
    }
    if (!session.open_gaps.empty()) {
      ++stats_.repair_rounds;
      ++session.repair_rounds;
      NetMetrics::get().repair_rounds.inc();
    }
    return;
  }
  session.terminal = true;
  session.verdict.verdict = result.verdict;
  session.verdict.digest = result_digest(result);
  session.verdict.detail = result.detail;
  session.open_gaps.clear();
  if constexpr (obs::kEnabled) {
    if (result.verdict == verify::Verdict::Accept) {
      NetMetrics::get().sessions_accepted.inc();
    } else {
      NetMetrics::get().sessions_rejected.inc();
    }
  }
  send_verdict(key, session, link);
}

void VerifierEndpoint::on_data(const Datagram& dgram, DuplexLink& link) {
  const SessionKey key{dgram.device, dgram.session};
  Session& session = sessions_[key];
  ++session.datagrams;
  if (options_.flood_datagram_budget != 0 &&
      session.datagrams > options_.flood_datagram_budget) {
    ++stats_.flood_strikes;
    NetMetrics::get().flood_strikes.inc();
    farm_.penalize(dgram.device);
    return;
  }
  auto report = cfa::try_decode_report(dgram.payload);
  if (!report.ok()) {
    // CRC-valid frame, garbage report: that is crafted, not line noise.
    ++stats_.decode_drops;
    NetMetrics::get().decode_drops.inc();
    farm_.penalize(dgram.device);
    return;
  }
  // MAC check at the door: a link-tampered report never enters reassembly,
  // so a later genuine retransmission of the same sequence cannot be
  // mistaken for equivocation. Each forgery is a quarantine strike.
  if (!cfa::ReportView::of(*report).verify(farm_.key_schedule())) {
    ++stats_.mac_drops;
    NetMetrics::get().mac_drops.inc();
    farm_.penalize(dgram.device);
    return;
  }
  if (session.terminal) {
    // Late or duplicated data after the verdict: re-announce it so a lost
    // Verdict frame converges via the prover's probe.
    send_verdict(key, session, link);
    return;
  }
  const auto it = session.received.find(report->sequence);
  if (it != session.received.end()) {
    if (it->second == *report) {
      ++stats_.duplicate_reports;
    } else {
      // Two *authentic* reports for one sequence: only the key holder can
      // produce that. Carry both into the submission; the protocol core
      // convicts the equivocation.
      const bool seen = std::any_of(
          session.extras.begin(), session.extras.end(),
          [&](const cfa::SignedReport& extra) { return extra == *report; });
      if (!seen) {
        session.extras.push_back(std::move(*report));
        session.dirty = true;
      }
    }
  } else if (session.received.size() + session.extras.size() <
             options_.max_session_reports) {
    if (!session.chal_known) {
      session.chal = report->chal;
      session.chal_known = true;
    }
    session.have_final |= report->final_report;
    session.received.emplace(report->sequence, std::move(*report));
    session.dirty = true;
    while (session.received.contains(session.next_ack)) ++session.next_ack;
  }
  maybe_submit(key, session, link);
  if (!session.terminal) send_ack(key, session, link);
}

void VerifierEndpoint::on_tick(DuplexLink& link) {
  for (const auto& frame : link.receive_at_verifier()) {
    auto dgram = try_decode_datagram(frame);
    if (!dgram.ok()) continue;  // line corruption, already paid for by CRC
    ++stats_.datagrams_received;
    NetMetrics::get().datagrams_received.inc();
    if (dgram->kind == DatagramKind::Data) on_data(*dgram, link);
  }
}

std::optional<VerifierEndpoint::SessionInfo> VerifierEndpoint::session_info(
    verify::DeviceId device, u64 session) const {
  const auto it = sessions_.find({device, session});
  if (it == sessions_.end()) return std::nullopt;
  SessionInfo info;
  info.terminal = it->second.terminal;
  info.verdict = it->second.verdict;
  info.repair_rounds = it->second.repair_rounds;
  info.open_gaps = it->second.open_gaps;
  return info;
}

std::vector<u8> VerifierEndpoint::snapshot() const {
  std::vector<u8> out(std::begin(kSnapshotMagic), std::end(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  put_bytes(out, farm_.sessions().serialize());
  put_u32(out, static_cast<u32>(sessions_.size()));
  for (const auto& [key, session] : sessions_) {
    put_u64(out, key.first);
    put_u64(out, key.second);
    out.insert(out.end(), session.chal.begin(), session.chal.end());
    put_u32(out, session.next_ack);
    const u8 flags = static_cast<u8>(session.chal_known) |
                     static_cast<u8>(session.have_final) << 1 |
                     static_cast<u8>(session.dirty) << 2 |
                     static_cast<u8>(session.terminal) << 3;
    out.push_back(flags);
    out.push_back(static_cast<u8>(session.verdict.verdict));
    out.insert(out.end(), session.verdict.digest.begin(),
               session.verdict.digest.end());
    put_bytes(out, std::span<const u8>(
                       reinterpret_cast<const u8*>(session.verdict.detail.data()),
                       session.verdict.detail.size()));
    put_u32(out, session.repair_rounds);
    put_u64(out, session.datagrams);
    put_u32(out, static_cast<u32>(session.open_gaps.size()));
    for (const auto& range : session.open_gaps) {
      put_u32(out, range.first);
      put_u32(out, range.count);
    }
    put_u32(out, static_cast<u32>(session.received.size()));
    for (const auto& [seq, report] : session.received) {
      put_bytes(out, cfa::encode_report(report));
    }
    put_u32(out, static_cast<u32>(session.extras.size()));
    for (const auto& report : session.extras) {
      put_bytes(out, cfa::encode_report(report));
    }
  }
  // v2: one warm memo-cache section per distinct provisioned deployment,
  // keyed by expected H_MEM so restore can match sections to deployments
  // provisioned after the crash. A restored verifier then starts near its
  // steady-state hit rate instead of re-verifying everything cold.
  const auto deployments = farm_.deployments();
  put_u32(out, static_cast<u32>(deployments.size()));
  for (const auto& deployment : deployments) {
    const auto& h_mem = deployment->expected_h_mem();
    out.insert(out.end(), h_mem.begin(), h_mem.end());
    put_bytes(out, deployment->memo().serialize_warm());
  }
  put_u32(out, crc32(out));
  return out;
}

bool VerifierEndpoint::restore(std::span<const u8> blob) {
  if (blob.size() < sizeof(kSnapshotMagic) + 8) return false;
  if (!std::equal(std::begin(kSnapshotMagic), std::end(kSnapshotMagic),
                  blob.begin())) {
    return false;
  }
  const auto body = blob.first(blob.size() - 4);
  u32 stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<u32>(blob[blob.size() - 4 + i]) << (8 * i);
  }
  if (crc32(body) != stored) return false;

  SnapReader reader{body.subspan(sizeof(kSnapshotMagic))};
  const u32 version = reader.u32_value();
  if (version < 1 || version > kSnapshotVersion) return false;
  const auto store_blob = reader.bytes_value();

  std::map<SessionKey, Session> restored;
  const u32 session_count = reader.u32_value();
  for (u32 s = 0; s < session_count && !reader.failed; ++s) {
    const u64 device = reader.u64_value();
    const u64 session_id = reader.u64_value();
    Session session;
    for (auto& byte : session.chal) byte = reader.u8_value();
    session.next_ack = reader.u32_value();
    const u8 flags = reader.u8_value();
    session.chal_known = (flags & 1) != 0;
    session.have_final = (flags & 2) != 0;
    session.dirty = (flags & 4) != 0;
    session.terminal = (flags & 8) != 0;
    const u8 verdict = reader.u8_value();
    if (verdict > static_cast<u8>(verify::Verdict::Inconclusive)) return false;
    session.verdict.verdict = static_cast<verify::Verdict>(verdict);
    for (auto& byte : session.verdict.digest) byte = reader.u8_value();
    const auto detail = reader.bytes_value();
    session.verdict.detail.assign(detail.begin(), detail.end());
    session.repair_rounds = reader.u32_value();
    session.datagrams = reader.u64_value();
    const u32 gap_count = reader.u32_value();
    for (u32 i = 0; i < gap_count && !reader.failed; ++i) {
      SeqRange range;
      range.first = reader.u32_value();
      range.count = reader.u32_value();
      session.open_gaps.push_back(range);
    }
    const u32 received_count = reader.u32_value();
    for (u32 i = 0; i < received_count && !reader.failed; ++i) {
      auto decoded = cfa::try_decode_report(reader.bytes_value());
      if (!decoded.ok()) return false;
      session.received.emplace(decoded->sequence, std::move(*decoded));
    }
    const u32 extra_count = reader.u32_value();
    for (u32 i = 0; i < extra_count && !reader.failed; ++i) {
      auto decoded = cfa::try_decode_report(reader.bytes_value());
      if (!decoded.ok()) return false;
      session.extras.push_back(std::move(*decoded));
    }
    restored.emplace(SessionKey{device, session_id}, std::move(session));
  }
  // v2 warm memo-cache sections (v1 blobs end here and restore cold).
  struct WarmSection {
    crypto::Digest h_mem{};
    std::span<const u8> blob;
  };
  std::vector<WarmSection> warm;
  if (version >= 2) {
    const u32 deployment_count = reader.u32_value();
    for (u32 i = 0; i < deployment_count && !reader.failed; ++i) {
      WarmSection section;
      for (auto& byte : section.h_mem) byte = reader.u8_value();
      section.blob = reader.bytes_value();
      warm.push_back(section);
    }
  }
  if (!reader.done()) return false;
  if (!farm_.sessions().deserialize(store_blob)) return false;
  sessions_ = std::move(restored);
  // Match warm sections to the provisioned deployments by expected H_MEM.
  // An unmatched digest or corrupt section degrades to a cold cache — the
  // protocol state above already committed, and verdicts never depend on
  // cache warmth.
  if (!warm.empty()) {
    for (const auto& deployment : farm_.deployments()) {
      for (const auto& section : warm) {
        if (crypto::digest_equal(deployment->expected_h_mem(), section.h_mem)) {
          deployment->memo().restore_warm(section.blob);
        }
      }
    }
  }
  return true;
}

// -- session pump ------------------------------------------------------------

SessionOutcome run_session(ProverEndpoint& prover, VerifierEndpoint& verifier,
                           DuplexLink& link, u64 max_ticks) {
  const u64 start = link.now();
  while (link.now() - start < max_ticks) {
    prover.on_tick(link);
    verifier.on_tick(link);
    link.advance();
    if (prover.phase() != ProverPhase::Sending) break;
  }
  SessionOutcome outcome;
  // A pump that ran out of ticks while still Sending is a give-up too: the
  // budget is part of the bounded-delivery contract.
  outcome.phase = prover.phase() == ProverPhase::Done ? ProverPhase::Done
                                                      : ProverPhase::GaveUp;
  outcome.verdict = prover.verdict();
  outcome.ticks = link.now() - start;
  return outcome;
}

}  // namespace raptrack::net
