// Geiger counter, modeled on ArduinoPocketGeiger: windowed pulse counting,
// a severity lookup table in flash (data loads via register-offset
// addressing), CPM statistics, and burst alerts.
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

constexpr const char* kGeigerSource = R"asm(
.equ GEIGER,    0x40000030
.equ ACTUATOR,  0x40000050
.equ RES_TOTAL, 0x20200000
.equ RES_BURST, 0x20200004
.equ RES_SEV,   0x20200008

_start:
    li r9, =GEIGER
    li r10, =severity_table
    movi r4, #0            ; window index
    movi r5, #0            ; total pulse count
    movi r6, #0            ; burst count
    movi r8, #0            ; severity sum
window_loop:
    ldr r0, [r9]           ; pulses in this window
    add r5, r5, r0
    ; severity = table[min(count >> 4, 7)]
    lsr r1, r0, #4
    cmp r1, #7
    ble idx_ok
    movi r1, #7
idx_ok:
    ldr r2, [r10, r1, lsl #2]
    add r8, r8, r2
    ; burst alert
    cmp r0, #30
    ble no_burst
    addi r6, r6, #1
    li r1, =ACTUATOR
    str r0, [r1]
no_burst:
    addi r4, r4, #1
    cmp r4, #24
    blt window_loop

    li r1, =RES_TOTAL
    str r5, [r1, #0]
    str r6, [r1, #4]
    str r8, [r1, #8]
    hlt

__code_end:
.align 4
severity_table:
    .word 0
    .word 1
    .word 2
    .word 4
    .word 6
    .word 9
    .word 13
    .word 20
)asm";

constexpr u32 kWindows = 24;

struct GeigerGolden {
  u32 total = 0;
  u32 bursts = 0;
  u32 severity = 0;
};

GeigerGolden geiger_golden(const std::vector<u32>& counts) {
  static constexpr u32 kTable[8] = {0, 1, 2, 4, 6, 9, 13, 20};
  GeigerGolden golden;
  size_t pos = 0;
  const auto next = [&]() {
    const u32 v = counts[pos];
    if (pos + 1 < counts.size()) ++pos;
    return v;
  };
  for (u32 i = 0; i < kWindows; ++i) {
    const u32 count = next();
    golden.total += count;
    u32 idx = count >> 4;
    if (static_cast<i32>(idx) > 7) idx = 7;
    golden.severity += kTable[idx];
    if (static_cast<i32>(count) > 30) ++golden.bursts;
  }
  return golden;
}

}  // namespace

App make_geiger_app() {
  App app;
  app.name = "geiger";
  app.description = "Pocket Geiger (windowed CPM, severity lookup, burst alerts)";
  app.source = kGeigerSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->geiger_counts = make_geiger_counts(seed, kWindows);
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals&, u64 seed) {
    const GeigerGolden golden =
        geiger_golden(make_geiger_counts(seed, kWindows));
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 0) == golden.total &&
           mem.raw_read32(kResultBase + 4) == golden.bursts &&
           mem.raw_read32(kResultBase + 8) == golden.severity;
  };
  return app;
}

}  // namespace raptrack::apps
