// BEEBS kernels, part 3 (extended suite): binsearch (data-dependent
// bisection), fir (multiply-accumulate over fixed windows — deterministic
// loops with a data-dependent saturation branch), and insertsort
// (data-dependent inner while loops, the Fig 6 backward shape).
#include <utility>

#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

// ---------------------------------------------------------------------------
// binsearch: look up 16 probe keys in a sorted 64-word table.
// ---------------------------------------------------------------------------

constexpr const char* kBinsearchSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_HITS,  0x20200000
.equ RES_STEPS, 0x20200004
.equ ARR,       0x20201000

_start:
    li r0, =TICKS
    ldr r5, [r0]           ; LCG state
    li r10, =ARR
    ; sorted table: a[i] = a[i-1] + (rand & 15) + 1
    movi r1, #0
    movi r2, #0
fill_loop:
    li r3, =1103515245
    mul r5, r5, r3
    li r3, =12345
    add r5, r5, r3
    lsr r3, r5, #20
    andi r3, r3, #15
    addi r3, r3, #1
    add r2, r2, r3
    str r2, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #64
    blt fill_loop

    movi r8, #0            ; hits
    movi r9, #0            ; total probe steps
    movi r6, #0            ; probe index
probe_loop:
    ; probe key from the LCG (may or may not be present)
    li r3, =1103515245
    mul r5, r5, r3
    li r3, =12345
    add r5, r5, r3
    lsr r0, r5, #22        ; key in approx table range
    bl bsearch
    add r8, r8, r0
    addi r6, r6, #1
    cmp r6, #16
    blt probe_loop

    li r1, =RES_HITS
    str r8, [r1, #0]
    str r9, [r1, #4]
    hlt

; bsearch(r0 = key) -> r0 = 1 if found else 0. Counts steps in r9.
bsearch:
    push {r4, r5, r6, r7, lr}
    mov r7, r0             ; key
    movi r4, #0            ; lo
    movi r5, #63           ; hi
bs_loop:
    cmp r4, r5
    bgt bs_miss
    addi r9, r9, #1
    add r6, r4, r5
    lsr r6, r6, #1         ; mid
    ldr r0, [r10, r6, lsl #2]
    cmp r0, r7
    beq bs_hit
    blt bs_go_right
    sub r5, r6, #1         ; hi = mid - 1
    b bs_loop
bs_go_right:
    addi r4, r6, #1        ; lo = mid + 1
    b bs_loop
bs_hit:
    movi r0, #1
    pop {r4, r5, r6, r7, pc}
bs_miss:
    movi r0, #0
    pop {r4, r5, r6, r7, pc}

__code_end:
)asm";

struct BinsearchGolden {
  u32 hits = 0;
  u32 steps = 0;
};

BinsearchGolden binsearch_golden(u32 lcg_seed) {
  u32 state = lcg_seed;
  const auto next = [&] {
    state = state * 1103515245u + 12345u;
    return state;
  };
  u32 arr[64];
  u32 acc = 0;
  for (u32 i = 0; i < 64; ++i) {
    acc += ((next() >> 20) & 15) + 1;
    arr[i] = acc;
  }
  BinsearchGolden golden;
  for (u32 p = 0; p < 16; ++p) {
    const u32 key = next() >> 22;
    i32 lo = 0, hi = 63;
    while (lo <= hi) {
      ++golden.steps;
      const i32 mid = (lo + hi) >> 1;
      if (arr[mid] == key) {
        ++golden.hits;
        break;
      }
      if (static_cast<i32>(arr[mid]) < static_cast<i32>(key)) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
  }
  return golden;
}

// ---------------------------------------------------------------------------
// fir: 8-tap FIR over 48 samples with output saturation.
// ---------------------------------------------------------------------------

constexpr const char* kFirSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_SUM,   0x20200000
.equ RES_SAT,   0x20200004
.equ SAMPLES,   0x20201000
.equ SAT_LIMIT, 30000

_start:
    li r0, =TICKS
    ldr r5, [r0]
    li r10, =SAMPLES
    movi r1, #0
fill_loop:
    li r2, =1103515245
    mul r5, r5, r2
    li r2, =12345
    add r5, r5, r2
    lsr r3, r5, #22        ; 10-bit samples
    str r3, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #56
    blt fill_loop

    li r11, =taps
    movi r8, #0            ; output checksum
    movi r9, #0            ; saturation count
    movi r6, #0            ; output index
out_loop:
    movi r4, #0            ; accumulator
    movi r7, #0            ; tap index (fixed 8 iterations: deterministic)
mac_loop:
    add r0, r6, r7
    ldr r1, [r10, r0, lsl #2]
    ldr r2, [r11, r7, lsl #2]
    mul r1, r1, r2
    add r4, r4, r1
    addi r7, r7, #1
    cmp r7, #8
    blt mac_loop
    ; saturate (data-dependent branch)
    li r1, =SAT_LIMIT
    cmp r4, r1
    ble no_sat
    mov r4, r1
    addi r9, r9, #1
no_sat:
    add r8, r8, r4
    addi r6, r6, #1
    cmp r6, #48
    blt out_loop

    li r1, =RES_SUM
    str r8, [r1, #0]
    str r9, [r1, #4]
    hlt

__code_end:
.align 4
taps:
    .word 1
    .word 3
    .word 7
    .word 12
    .word 12
    .word 7
    .word 3
    .word 1
)asm";

struct FirGolden {
  u32 checksum = 0;
  u32 saturations = 0;
};

FirGolden fir_golden(u32 lcg_seed) {
  static constexpr u32 kTaps[8] = {1, 3, 7, 12, 12, 7, 3, 1};
  u32 state = lcg_seed;
  u32 samples[56];
  for (u32& s : samples) {
    state = state * 1103515245u + 12345u;
    s = state >> 22;
  }
  FirGolden golden;
  for (u32 i = 0; i < 48; ++i) {
    u32 acc = 0;
    for (u32 t = 0; t < 8; ++t) acc += samples[i + t] * kTaps[t];
    if (static_cast<i32>(acc) > 30000) {
      acc = 30000;
      ++golden.saturations;
    }
    golden.checksum += acc;
  }
  return golden;
}

// ---------------------------------------------------------------------------
// insertsort: 24-word insertion sort (data-dependent inner while loops).
// ---------------------------------------------------------------------------

constexpr const char* kInsertsortSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_SUM,   0x20200000
.equ RES_MOVES, 0x20200004
.equ ARR,       0x20201000

_start:
    li r0, =TICKS
    ldr r5, [r0]
    li r10, =ARR
    movi r1, #0
fill_loop:
    li r2, =1103515245
    mul r5, r5, r2
    li r2, =12345
    add r5, r5, r2
    lsr r3, r5, #18
    str r3, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #24
    blt fill_loop

    movi r9, #0            ; move count
    movi r6, #1            ; i
outer_loop:
    ldr r4, [r10, r6, lsl #2]   ; key
    sub r7, r6, #1              ; j
inner_loop:
    cmp r7, #0
    blt insert
    ldr r0, [r10, r7, lsl #2]
    cmp r0, r4
    ble insert
    addi r1, r7, #1
    str r0, [r10, r1, lsl #2]   ; shift right
    addi r9, r9, #1
    sub r7, r7, #1
    b inner_loop
insert:
    addi r1, r7, #1
    str r4, [r10, r1, lsl #2]
    addi r6, r6, #1
    cmp r6, #24
    blt outer_loop

    ; checksum = sum(arr[i] * (i+1))
    movi r8, #0
    movi r1, #0
sum_loop:
    ldr r0, [r10, r1, lsl #2]
    addi r2, r1, #1
    mul r0, r0, r2
    add r8, r8, r0
    addi r1, r1, #1
    cmp r1, #24
    blt sum_loop

    li r1, =RES_SUM
    str r8, [r1, #0]
    str r9, [r1, #4]
    hlt

__code_end:
)asm";

struct InsertsortGolden {
  u32 checksum = 0;
  u32 moves = 0;
};

InsertsortGolden insertsort_golden(u32 lcg_seed) {
  u32 state = lcg_seed;
  u32 arr[24];
  for (u32& v : arr) {
    state = state * 1103515245u + 12345u;
    v = state >> 18;
  }
  InsertsortGolden golden;
  for (i32 i = 1; i < 24; ++i) {
    const u32 key = arr[i];
    i32 j = i - 1;
    while (j >= 0 && static_cast<i32>(arr[j]) > static_cast<i32>(key)) {
      arr[j + 1] = arr[j];
      ++golden.moves;
      --j;
    }
    arr[j + 1] = key;
  }
  for (u32 i = 0; i < 24; ++i) golden.checksum += arr[i] * (i + 1);
  return golden;
}

App make_lcg_app(const char* name, const char* description, const char* source,
                 u32 name_salt,
                 std::function<bool(sim::Machine&, u32)> check_fn) {
  App app;
  app.name = name;
  app.description = description;
  app.source = source;
  app.setup = [name_salt](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ name_salt).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [check_fn = std::move(check_fn)](
                  sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    return check_fn(machine, periph.tick_step);
  };
  return app;
}

}  // namespace

App make_binsearch_app() {
  return make_lcg_app(
      "binsearch", "BEEBS binarysearch: data-dependent bisection",
      kBinsearchSource, 0x62736561, [](sim::Machine& machine, u32 lcg) {
        const BinsearchGolden golden = binsearch_golden(lcg);
        const auto& mem = machine.memory();
        return mem.raw_read32(kResultBase + 0) == golden.hits &&
               mem.raw_read32(kResultBase + 4) == golden.steps;
      });
}

App make_fir_app() {
  return make_lcg_app(
      "fir", "BEEBS fir: 8-tap MAC windows with saturation", kFirSource,
      0x66697200, [](sim::Machine& machine, u32 lcg) {
        const FirGolden golden = fir_golden(lcg);
        const auto& mem = machine.memory();
        return mem.raw_read32(kResultBase + 0) == golden.checksum &&
               mem.raw_read32(kResultBase + 4) == golden.saturations;
      });
}

App make_insertsort_app() {
  return make_lcg_app(
      "insertsort", "BEEBS insertsort: data-dependent shifting loops",
      kInsertsortSource, 0x696e7372, [](sim::Machine& machine, u32 lcg) {
        const InsertsortGolden golden = insertsort_golden(lcg);
        const auto& mem = machine.memory();
        return mem.raw_read32(kResultBase + 0) == golden.checksum &&
               mem.raw_read32(kResultBase + 4) == golden.moves;
      });
}

}  // namespace raptrack::apps
