// Temperature sensor, modeled on the Seeed Grove temperature workload:
// ADC sampling, fixed-point calibration polynomial, exponential smoothing,
// and a hysteresis alarm state machine (if/else chains — the Fig 5
// non-loop conditional trampolines).
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

constexpr const char* kTemperatureSource = R"asm(
.equ ADC,       0x40000010
.equ ACTUATOR,  0x40000050
.equ RES_AVG,   0x20200000
.equ RES_ALARM, 0x20200004
.equ RES_MAX,   0x20200008
.equ HI_THRESH, 305
.equ LO_THRESH, 295

_start:
    li r9, =ADC
    movi r4, #0            ; sample index
    movi r5, #0            ; alarm count
    movi r6, #290          ; smoothed value (starts near ambient)
    movi r8, #0            ; hysteresis state (0 = normal, 1 = alarmed)
    movi r10, #0           ; max temperature seen
sample_loop:
    ldr r0, [r9]           ; raw 12-bit ADC sample
    bl calibrate           ; r0 -> temperature (tenths of a degree / 10)
    ; track maximum
    cmp r0, r10
    ble no_new_max
    mov r10, r0
no_new_max:
    ; exponential smoothing: r6 += (r0 - r6) >> 3 (arithmetic)
    sub r1, r0, r6
    asr r1, r1, #3
    add r6, r6, r1
    ; hysteresis alarm state machine
    cmp r8, #0
    bne state_alarmed
    li r1, =HI_THRESH
    cmp r6, r1
    ble state_done
    movi r8, #1
    addi r5, r5, #1
    li r1, =ACTUATOR
    movi r2, #1
    str r2, [r1]
    b state_done
state_alarmed:
    li r1, =LO_THRESH
    cmp r6, r1
    bge state_done
    movi r8, #0
    li r1, =ACTUATOR
    movi r2, #0
    str r2, [r1]
state_done:
    addi r4, r4, #1
    cmp r4, #48
    blt sample_loop

    li r1, =RES_AVG
    str r6, [r1, #0]
    str r5, [r1, #4]
    str r10, [r1, #8]
    hlt

; calibrate: raw ADC -> temperature. t = (x*x >> 14) + (x >> 4) + 20. Leaf.
calibrate:
    mul r1, r0, r0
    lsr r1, r1, #14
    lsr r2, r0, #4
    add r0, r1, r2
    add r0, r0, #20
    bx lr

__code_end:
)asm";

constexpr u32 kSamples = 48;

struct TempGolden {
  i32 avg = 290;
  u32 alarms = 0;
  i32 max_temp = 0;
};

TempGolden temp_golden(const std::vector<u32>& adc) {
  TempGolden golden;
  size_t pos = 0;
  const auto next = [&]() {
    const u32 v = adc[pos];
    if (pos + 1 < adc.size()) ++pos;
    return v;
  };
  u32 state = 0;
  for (u32 i = 0; i < kSamples; ++i) {
    const u32 x = next();
    const i32 t = static_cast<i32>(((x * x) >> 14) + (x >> 4) + 20);
    if (t > golden.max_temp) golden.max_temp = t;
    golden.avg += (t - golden.avg) >> 3;  // arithmetic shift (C++20)
    if (state == 0) {
      if (golden.avg > 305) {
        state = 1;
        ++golden.alarms;
      }
    } else {
      if (golden.avg < 295) state = 0;
    }
  }
  return golden;
}

}  // namespace

App make_temperature_app() {
  App app;
  app.name = "temperature";
  app.description = "Grove temperature sensor (calibration, smoothing, hysteresis)";
  app.source = kTemperatureSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->adc_values = make_adc_samples(seed, kSamples);
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals&, u64 seed) {
    const TempGolden golden = temp_golden(make_adc_samples(seed, kSamples));
    const auto& mem = machine.memory();
    return static_cast<i32>(mem.raw_read32(kResultBase + 0)) == golden.avg &&
           mem.raw_read32(kResultBase + 4) == golden.alarms &&
           static_cast<i32>(mem.raw_read32(kResultBase + 8)) == golden.max_temp;
  };
  return app;
}

}  // namespace raptrack::apps
