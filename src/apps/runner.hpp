// One-call orchestration of the four evaluation methods over an app: used
// by the figure benches, the examples, and the integration/property tests.
#pragma once

#include "apps/app.hpp"
#include "cfa/provers.hpp"
#include "instr/traces_rewriter.hpp"
#include "rewrite/rap_rewriter.hpp"
#include "verify/verifier.hpp"

namespace raptrack::apps {

/// An app prepared for all methods: assembled once, rewritten for RAP-Track
/// and for TRACES (offline phase).
struct PreparedApp {
  BuiltApp built;
  rewrite::RewriteResult rap;
  instr::TracesResult traces;
};

PreparedApp prepare_app(const App& app,
                        const rewrite::RewriteOptions& rap_options = {},
                        const instr::TracesOptions& traces_options = {});

/// Outcome of one prover run.
struct MethodRun {
  cfa::AttestationRun attestation;  ///< empty reports for the baseline
  std::vector<trace::OracleEvent> oracle;  ///< ground-truth branch history
  bool functional_ok = false;       ///< golden-model post-condition held
};

/// The demo/test key shared between RoT and Verifier.
crypto::Key demo_key();

MethodRun run_baseline(const PreparedApp& prepared, u64 seed,
                       const sim::MachineConfig& config = {});
MethodRun run_naive(const PreparedApp& prepared, u64 seed,
                    const sim::MachineConfig& config = {},
                    const cfa::SessionOptions& options = {},
                    const cfa::Challenge& chal = {});
MethodRun run_rap(const PreparedApp& prepared, u64 seed,
                  const sim::MachineConfig& config = {},
                  const cfa::SessionOptions& options = {},
                  const cfa::Challenge& chal = {});
MethodRun run_traces(const PreparedApp& prepared, u64 seed,
                     const sim::MachineConfig& config = {},
                     const cfa::SessionOptions& options = {},
                     const cfa::Challenge& chal = {});

}  // namespace raptrack::apps
