// Internal: per-app factory declarations collected by the registry.
#pragma once

#include "apps/app.hpp"

namespace raptrack::apps {

App make_ultrasonic_app();
App make_geiger_app();
App make_syringe_app();
App make_temperature_app();
App make_gps_app();
App make_prime_app();
App make_crc32_app();
App make_bubblesort_app();
App make_fibcall_app();
App make_matmult_app();
App make_binsearch_app();
App make_fir_app();
App make_insertsort_app();

}  // namespace raptrack::apps
