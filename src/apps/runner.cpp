#include "apps/runner.hpp"

namespace raptrack::apps {

PreparedApp prepare_app(const App& app,
                        const rewrite::RewriteOptions& rap_options,
                        const instr::TracesOptions& traces_options) {
  PreparedApp prepared;
  prepared.built = build_app(app);
  prepared.rap = rewrite::rewrite_for_rap_track(
      prepared.built.program, prepared.built.entry, prepared.built.code_begin,
      prepared.built.code_end, rap_options);
  prepared.traces = instr::rewrite_for_traces(
      prepared.built.program, prepared.built.entry, prepared.built.code_begin,
      prepared.built.code_end, traces_options);
  return prepared;
}

crypto::Key demo_key() {
  crypto::Key key(32);
  SplitMix64 sm(0x6b65795f726f74ull);  // deterministic demo RoT key
  for (size_t i = 0; i < key.size(); i += 8) {
    const u64 word = sm.next();
    for (size_t j = 0; j < 8 && i + j < key.size(); ++j) {
      key[i + j] = static_cast<u8>(word >> (8 * j));
    }
  }
  return key;
}

namespace {

MethodRun finish(sim::Machine& machine, const PreparedApp& prepared, u64 seed,
                 const std::shared_ptr<Peripherals>& periph,
                 cfa::AttestationRun attestation) {
  MethodRun run;
  run.attestation = std::move(attestation);
  run.oracle = machine.oracle().events();
  run.functional_ok = prepared.built.app->check(machine, *periph, seed);
  return run;
}

}  // namespace

MethodRun run_baseline(const PreparedApp& prepared, u64 seed,
                       const sim::MachineConfig& config) {
  sim::Machine machine(config);
  const auto periph = prepared.built.app->setup(machine, seed);
  cfa::BaselineRunner runner(prepared.built.program, prepared.built.entry);
  cfa::AttestationRun attestation;
  attestation.metrics = runner.run(machine);
  return finish(machine, prepared, seed, periph, std::move(attestation));
}

MethodRun run_naive(const PreparedApp& prepared, u64 seed,
                    const sim::MachineConfig& config,
                    const cfa::SessionOptions& options,
                    const cfa::Challenge& chal) {
  sim::Machine machine(config);
  const auto periph = prepared.built.app->setup(machine, seed);
  cfa::NaiveProver prover(prepared.built.program, prepared.built.entry,
                          demo_key(), options);
  auto attestation = prover.attest(machine, chal);
  return finish(machine, prepared, seed, periph, std::move(attestation));
}

MethodRun run_rap(const PreparedApp& prepared, u64 seed,
                  const sim::MachineConfig& config,
                  const cfa::SessionOptions& options,
                  const cfa::Challenge& chal) {
  sim::Machine machine(config);
  const auto periph = prepared.built.app->setup(machine, seed);
  cfa::RapProver prover(prepared.rap.program, prepared.rap.manifest,
                        prepared.built.entry, demo_key(), options);
  auto attestation = prover.attest(machine, chal);
  return finish(machine, prepared, seed, periph, std::move(attestation));
}

MethodRun run_traces(const PreparedApp& prepared, u64 seed,
                     const sim::MachineConfig& config,
                     const cfa::SessionOptions& options,
                     const cfa::Challenge& chal) {
  sim::Machine machine(config);
  const auto periph = prepared.built.app->setup(machine, seed);
  cfa::TracesProver prover(prepared.traces.program, prepared.traces.manifest,
                           prepared.built.entry, demo_key(), options);
  auto attestation = prover.attest(machine, chal);
  return finish(machine, prepared, seed, periph, std::move(attestation));
}

}  // namespace raptrack::apps
