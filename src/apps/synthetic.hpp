// Seeded random structured-program generator: produces RT-ISA applications
// exercising every control-flow construct the offline phase handles —
// nested if/else chains, constant- and variable-bound loops in both Fig 6
// (backward) and Fig 7 (forward-exit) shapes, leaf and non-leaf calls,
// bounded recursion, and function-pointer dispatch tables. Used by the
// differential fuzz tests: for any seed, the rewritten binaries must
// preserve semantics and the Verifier must reconstruct the path.
#pragma once

#include <string>

#include "common/types.hpp"

namespace raptrack::apps {

struct SyntheticOptions {
  u32 max_depth = 3;          ///< statement nesting bound
  u32 functions = 4;          ///< callable helper functions
  u32 statements_per_block = 4;
  bool allow_recursion = true;
  bool allow_indirect_calls = true;
  bool allow_jump_tables = true;
};

/// Generate a complete RT-ISA program (with `_start` / `__code_end`). The
/// program reads one word of entropy from the TICKS register, computes a
/// seed-dependent result in r0-r7, stores r0-r7 to the result area, and
/// halts. Always terminates (loop bounds and recursion depth are capped).
std::string generate_synthetic_program(u64 seed,
                                       const SyntheticOptions& options = {});

}  // namespace raptrack::apps
