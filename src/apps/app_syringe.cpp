// Syringe pump controller, modeled on OpenSyringePump: a UART command
// interpreter that dispatches through a function-pointer table (indirect
// calls — the Fig 3 trampoline) and drives a stepper motor with
// dose-dependent loops (variable iteration counts — §IV-D loop logging).
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

constexpr const char* kSyringeSource = R"asm(
.equ UART_RX,   0x40000000
.equ ACTUATOR,  0x40000050
.equ RES_POS,   0x20200000
.equ RES_STEPS, 0x20200004
.equ RES_STAT,  0x20200008
.equ MAX_POS,   960

_start:
    li r10, =UART_RX
    movi r4, #0           ; plunger position
    movi r5, #0           ; total steps executed
    movi r6, #0           ; status-query count
cmd_loop:
    ldr r0, [r10]         ; opcode
    cmp r0, #-1
    beq done
    ldr r1, [r10]         ; operand (dose / ignored)
    cmp r1, #-1
    beq done
    cmp r0, #3
    bgt cmd_loop          ; unknown opcode: skip
    li r2, =cmd_table
    ldr r3, [r2, r0, lsl #2]
    blx r3                ; indirect call through the dispatch table
    b cmd_loop
done:
    li r7, =RES_POS
    str r4, [r7, #0]
    str r5, [r7, #4]
    str r6, [r7, #8]
    hlt

; cmd_push: advance plunger by r1 doses (8 steps per dose), clamped.
cmd_push:
    push {r2, r3, lr}
    lsl r2, r1, #3        ; steps = dose * 8
    li r3, =MAX_POS
    add r0, r4, r2
    cmp r0, r3
    ble push_ok
    sub r2, r3, r4        ; clamp to MAX_POS
push_ok:
    cmp r2, #0
    beq push_done
    bl step_motor
push_done:
    pop {r2, r3, pc}

; cmd_pull: retract plunger by r1 doses, clamped at zero.
cmd_pull:
    push {r2, lr}
    lsl r2, r1, #3
    cmp r2, r4
    ble pull_ok
    mov r2, r4            ; clamp at zero
pull_ok:
    cmp r2, #0
    beq pull_done
    rsb r2, r2, #0        ; negative step count = retract
    bl step_motor
pull_done:
    pop {r2, pc}

; cmd_status: record a status query (writes position to the actuator port).
cmd_status:
    push {r0, lr}
    li r0, =ACTUATOR
    str r4, [r0]
    addi r6, r6, #1
    pop {r0, pc}

; cmd_noop
cmd_noop:
    bx lr

; step_motor(r2 = signed step count): pulses the actuator |r2| times.
; Variable-count loop: each iteration is an attested event.
step_motor:
    push {r0, r1, r3, lr}
    li r3, =ACTUATOR
    cmp r2, #0
    blt step_back
    mov r1, r2
step_fwd_loop:
    cmp r1, #0
    beq step_done
    movi r0, #1
    str r0, [r3]
    addi r4, r4, #1       ; position++
    addi r5, r5, #1       ; steps++
    sub r1, r1, #1
    b step_fwd_loop
step_back:
    rsb r1, r2, #0
step_back_loop:
    cmp r1, #0
    beq step_done
    movi r0, #2
    str r0, [r3]
    sub r4, r4, #1
    addi r5, r5, #1
    sub r1, r1, #1
    b step_back_loop
step_done:
    pop {r0, r1, r3, pc}

__code_end:
.align 4
cmd_table:
    .word cmd_push
    .word cmd_pull
    .word cmd_status
    .word cmd_noop
)asm";

struct PumpGolden {
  u32 position = 0;
  u32 steps = 0;
  u32 status_queries = 0;
};

PumpGolden pump_golden(const std::vector<u8>& commands) {
  PumpGolden golden;
  constexpr u32 kMaxPos = 960;
  size_t i = 0;
  while (i + 1 < commands.size() || i < commands.size()) {
    if (i >= commands.size()) break;
    const u8 opcode = commands[i++];
    if (i >= commands.size()) break;
    const u8 operand = commands[i++];
    if (opcode > 3) continue;
    switch (opcode) {
      case 0: {  // push
        u32 steps = static_cast<u32>(operand) * 8;
        if (golden.position + steps > kMaxPos) steps = kMaxPos - golden.position;
        golden.position += steps;
        golden.steps += steps;
        break;
      }
      case 1: {  // pull
        u32 steps = static_cast<u32>(operand) * 8;
        if (steps > golden.position) steps = golden.position;
        golden.position -= steps;
        golden.steps += steps;
        break;
      }
      case 2:
        ++golden.status_queries;
        break;
      default:
        break;
    }
  }
  return golden;
}

constexpr u32 kCommands = 40;

}  // namespace

App make_syringe_app() {
  App app;
  app.name = "syringe";
  app.description = "OpenSyringePump-style command interpreter (indirect calls)";
  app.source = kSyringeSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    const auto commands = make_pump_commands(seed, kCommands);
    periph->uart_rx.assign(commands.begin(), commands.end());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals&, u64 seed) {
    const PumpGolden golden = pump_golden(make_pump_commands(seed, kCommands));
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 0) == golden.position &&
           mem.raw_read32(kResultBase + 4) == golden.steps &&
           mem.raw_read32(kResultBase + 8) == golden.status_queries;
  };
  return app;
}

}  // namespace raptrack::apps
