#include "apps/app.hpp"
#include "apps/app_registry_internal.hpp"
#include "asm/assembler.hpp"

namespace raptrack::apps {

BuiltApp build_app(const App& app) {
  BuiltApp built;
  built.app = &app;
  built.program = assemble(app.source, kAppBase);
  const auto entry = built.program.symbol("_start");
  const auto code_end = built.program.symbol("__code_end");
  if (!entry || !code_end) {
    throw Error("app '" + app.name + "' must define _start and __code_end");
  }
  built.entry = *entry;
  built.code_begin = built.program.base();
  built.code_end = *code_end;
  return built;
}

const std::vector<App>& app_registry() {
  static const std::vector<App> apps = [] {
    std::vector<App> list;
    list.push_back(make_ultrasonic_app());
    list.push_back(make_geiger_app());
    list.push_back(make_syringe_app());
    list.push_back(make_temperature_app());
    list.push_back(make_gps_app());
    list.push_back(make_prime_app());
    list.push_back(make_crc32_app());
    list.push_back(make_bubblesort_app());
    list.push_back(make_fibcall_app());
    list.push_back(make_matmult_app());
    list.push_back(make_binsearch_app());
    list.push_back(make_fir_app());
    list.push_back(make_insertsort_app());
    return list;
  }();
  return apps;
}

const App& app_by_name(const std::string& name) {
  for (const auto& app : app_registry()) {
    if (app.name == name) return app;
  }
  throw Error("unknown app '" + name + "'");
}

}  // namespace raptrack::apps
