// BEEBS kernels, part 2: bubblesort (data-dependent swap branches) and
// matmult (nested fixed loops — the all-deterministic showcase).
#include <utility>

#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

// ---------------------------------------------------------------------------
// bubblesort: sort a 32-word LCG array, count swaps, checksum the result.
// ---------------------------------------------------------------------------

constexpr const char* kBubbleSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_SUM,   0x20200000
.equ RES_SWAPS, 0x20200004
.equ ARR,       0x20201000

_start:
    li r0, =TICKS
    ldr r5, [r0]           ; LCG state
    li r10, =ARR
    movi r1, #0
fill_loop:
    li r2, =1103515245
    mul r5, r5, r2
    li r2, =12345
    add r5, r5, r2
    lsr r3, r5, #16        ; keep values small and positive
    str r3, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #32
    blt fill_loop

    movi r8, #0            ; swap count
    movi r6, #0            ; outer index i
outer_loop:
    movi r7, #0            ; inner index j
inner_loop:
    ldr r0, [r10, r7, lsl #2]
    addi r1, r7, #1
    ldr r2, [r10, r1, lsl #2]
    cmp r0, r2
    ble no_swap
    str r2, [r10, r7, lsl #2]
    str r0, [r10, r1, lsl #2]
    addi r8, r8, #1
no_swap:
    addi r7, r7, #1
    cmp r7, #31
    blt inner_loop
    addi r6, r6, #1
    cmp r6, #31
    blt outer_loop

    ; checksum = sum(arr[i] * (i+1))
    movi r4, #0
    movi r1, #0
sum_loop:
    ldr r0, [r10, r1, lsl #2]
    addi r2, r1, #1
    mul r0, r0, r2
    add r4, r4, r0
    addi r1, r1, #1
    cmp r1, #32
    blt sum_loop

    li r1, =RES_SUM
    str r4, [r1, #0]
    str r8, [r1, #4]
    hlt

__code_end:
)asm";

struct BubbleGolden {
  u32 checksum = 0;
  u32 swaps = 0;
};

BubbleGolden bubble_golden(u32 lcg_seed) {
  u32 state = lcg_seed;
  u32 arr[32];
  for (u32& v : arr) {
    state = state * 1103515245u + 12345u;
    v = state >> 16;
  }
  BubbleGolden golden;
  for (u32 i = 0; i < 31; ++i) {
    for (u32 j = 0; j < 31; ++j) {
      if (static_cast<i32>(arr[j]) > static_cast<i32>(arr[j + 1])) {
        std::swap(arr[j], arr[j + 1]);
        ++golden.swaps;
      }
    }
  }
  for (u32 i = 0; i < 32; ++i) golden.checksum += arr[i] * (i + 1);
  return golden;
}

// ---------------------------------------------------------------------------
// matmult: 6x6 integer matrix product, fully fixed iteration structure.
// ---------------------------------------------------------------------------

constexpr const char* kMatmultSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_SUM,   0x20200000
.equ MATA,      0x20201000
.equ MATB,      0x20201090   ; A + 36 words (filled by one 72-word pass)
.equ MATC,      0x20201200

_start:
    li r0, =TICKS
    ldr r5, [r0]           ; LCG state
    ; fill A and B (72 words) with small values
    li r10, =MATA
    movi r1, #0
fill_loop:
    li r2, =1103515245
    mul r5, r5, r2
    li r2, =12345
    add r5, r5, r2
    lsr r3, r5, #24        ; 0..255
    str r3, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #72
    blt fill_loop

    ; C = A * B, 6x6
    li r9, =MATA
    li r10, =MATB
    li r11, =MATC
    movi r6, #0            ; i
row_loop:
    movi r7, #0            ; j
col_loop:
    movi r4, #0            ; acc
    movi r8, #0            ; k
dot_loop:
    ; acc += A[i*6+k] * B[k*6+j]
    movi r0, #6
    mul r0, r6, r0
    add r0, r0, r8
    ldr r1, [r9, r0, lsl #2]
    movi r0, #6
    mul r0, r8, r0
    add r0, r0, r7
    ldr r2, [r10, r0, lsl #2]
    mul r1, r1, r2
    add r4, r4, r1
    addi r8, r8, #1
    cmp r8, #6
    blt dot_loop
    ; C[i*6+j] = acc
    movi r0, #6
    mul r0, r6, r0
    add r0, r0, r7
    str r4, [r11, r0, lsl #2]
    addi r7, r7, #1
    cmp r7, #6
    blt col_loop
    addi r6, r6, #1
    cmp r6, #6
    blt row_loop

    ; result = sum of C's diagonal
    movi r4, #0
    movi r1, #0
diag_loop:
    movi r0, #7            ; index stride for the diagonal (i*6+i = 7i)
    mul r0, r1, r0
    ldr r2, [r11, r0, lsl #2]
    add r4, r4, r2
    addi r1, r1, #1
    cmp r1, #6
    blt diag_loop

    li r1, =RES_SUM
    str r4, [r1]
    hlt

__code_end:
)asm";

u32 matmult_golden(u32 lcg_seed) {
  u32 state = lcg_seed;
  u32 mats[72];
  for (u32& v : mats) {
    state = state * 1103515245u + 12345u;
    v = state >> 24;
  }
  const u32* a = mats;
  const u32* b = mats + 36;
  u32 c[36] = {};
  for (u32 i = 0; i < 6; ++i) {
    for (u32 j = 0; j < 6; ++j) {
      u32 acc = 0;
      for (u32 k = 0; k < 6; ++k) acc += a[i * 6 + k] * b[k * 6 + j];
      c[i * 6 + j] = acc;
    }
  }
  u32 trace = 0;
  for (u32 i = 0; i < 6; ++i) trace += c[i * 6 + i];
  return trace;
}

}  // namespace

App make_bubblesort_app() {
  App app;
  app.name = "bubblesort";
  app.description = "BEEBS bubblesort: data-dependent swap branches";
  app.source = kBubbleSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ 0x62756262).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    const BubbleGolden golden = bubble_golden(periph.tick_step);
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 0) == golden.checksum &&
           mem.raw_read32(kResultBase + 4) == golden.swaps;
  };
  return app;
}

App make_matmult_app() {
  App app;
  app.name = "matmult";
  app.description = "BEEBS matmult: nested fixed loops (deterministic showcase)";
  app.source = kMatmultSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ 0x6d61746d).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    return machine.memory().raw_read32(kResultBase) ==
           matmult_golden(periph.tick_step);
  };
  return app;
}

}  // namespace raptrack::apps
