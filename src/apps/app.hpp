// Evaluation workload framework. Each App carries its RT-ISA assembly
// source (mirroring the control-flow structure of the paper's open-source
// MCU applications and BEEBS kernels), a peripheral-stimulus setup, and a
// golden-model functional check — so every rewriting pass can be validated
// for semantic preservation, not just for log shape.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/peripherals.hpp"
#include "asm/program.hpp"
#include "sim/machine.hpp"

namespace raptrack::apps {

struct App {
  std::string name;
  std::string description;
  std::string source;  ///< RT-ISA assembly

  /// Attach and stimulate peripherals for a seeded run. The returned object
  /// must outlive the machine run (MMIO handlers reference it).
  std::function<std::shared_ptr<Peripherals>(sim::Machine&, u64 seed)> setup;

  /// Golden-model check after the run: recompute expected results from the
  /// same seed and compare against the app's RAM outputs.
  std::function<bool(sim::Machine&, const Peripherals&, u64 seed)> check;
};

/// Common layout constants shared by all app sources.
inline constexpr Address kAppBase = 0x0020'0000;       // NS flash
inline constexpr Address kResultBase = 0x2020'0000;    // NS RAM results
inline constexpr Address kScratchBase = 0x2020'1000;   // NS RAM scratch

struct BuiltApp {
  const App* app = nullptr;
  Program program;
  Address entry = 0;
  Address code_begin = 0;
  Address code_end = 0;
};

/// Assemble an app and resolve its `_start` / `__code_end` symbols.
BuiltApp build_app(const App& app);

/// The full evaluation suite (5 MCU applications + 5 BEEBS kernels,
/// matching the paper's §I/§V workload list).
const std::vector<App>& app_registry();

/// Look up one app by name (throws if unknown).
const App& app_by_name(const std::string& name);

}  // namespace raptrack::apps
