// Synthetic MMIO peripherals standing in for the sensors/actuators of the
// paper's evaluation applications (ultrasonic ranger, Geiger counter,
// syringe pump, temperature sensor, GPS). Stimulus is generated from a
// seed, so the application run and the Verifier-side golden model see the
// same data without any shared state.
#pragma once

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptrack::sim {
class Machine;
}

namespace raptrack::apps {

/// MMIO register map (offsets from kPeriphBase = 0x4000'0000).
struct PeriphRegs {
  static constexpr Address kBase = 0x4000'0000;
  static constexpr u32 kUartRx = 0x00;     ///< read: next byte, 0xffffffff when empty
  static constexpr u32 kUartCount = 0x04;  ///< read: bytes remaining
  static constexpr u32 kAdc = 0x10;        ///< read: next ADC sample
  static constexpr u32 kEcho = 0x20;       ///< read: next echo time (us)
  static constexpr u32 kGeiger = 0x30;     ///< read: pulses since last read
  static constexpr u32 kTicks = 0x40;      ///< read: free-running tick counter
  static constexpr u32 kActuator = 0x50;   ///< write: actuator command (captured)
  static constexpr u32 kTrigger = 0x54;    ///< write: sensor trigger (captured)
};

class Peripherals {
 public:
  /// Map the peripheral window into the machine's memory map. The
  /// Peripherals object must outlive the machine run.
  void attach(sim::Machine& machine);

  // Stimulus (filled by app setup code).
  std::deque<u8> uart_rx;
  std::vector<u32> adc_values;
  std::vector<u32> echo_values;
  std::vector<u32> geiger_counts;
  u32 tick_step = 1;

  // Captured outputs.
  std::vector<u32> actuator_writes;
  std::vector<u32> trigger_writes;

  u32 read(u32 offset);
  void write(u32 offset, u32 value);

 private:
  template <typename T>
  u32 next_sample(const std::vector<T>& values, size_t& pos) {
    if (values.empty()) return 0;
    const u32 v = values[pos];
    if (pos + 1 < values.size()) ++pos;  // hold the last value
    return v;
  }

  size_t adc_pos_ = 0;
  size_t echo_pos_ = 0;
  size_t geiger_pos_ = 0;
  u32 ticks_ = 0;
};

// -- stimulus generators (shared between app setup and golden models) -------

/// NMEA-like sentence stream: `count` sentences, ~1 in `corrupt_one_in`
/// with a corrupted checksum. Returns the raw byte stream.
std::vector<u8> make_nmea_stream(u64 seed, u32 count, u32 corrupt_one_in = 5);

/// Syringe-pump command stream: (opcode, operand) byte pairs.
std::vector<u8> make_pump_commands(u64 seed, u32 count);

std::vector<u32> make_adc_samples(u64 seed, u32 count);
std::vector<u32> make_echo_samples(u64 seed, u32 count);
std::vector<u32> make_geiger_counts(u64 seed, u32 count);

}  // namespace raptrack::apps
