#include "apps/synthetic.hpp"

#include <cstdio>
#include <vector>

#include "common/rng.hpp"

namespace raptrack::apps {

namespace {

/// Emits assembly with unique labels and a statement budget.
class Generator {
 public:
  Generator(u64 seed, const SyntheticOptions& options)
      : rng_(seed ^ 0x53594e54),  // "SYNT"
        options_(options) {}

  std::string run() {
    emit(".equ TICKS,  0x40000040");
    emit(".equ RESULT, 0x20200000");
    emit("");
    emit("_start:");
    // Seed the data registers from the tick register (data-dependent paths).
    emit("    li r6, =TICKS");
    emit("    ldr r0, [r6]");
    for (int r = 1; r <= 5; ++r) {
      line("    eor r%d, r0, r%d", r, (r + 2) % 6);
      line("    addi r%d, r%d, #%d", r, r, static_cast<int>(rng_.next_below(97)));
    }
    emit("    movi r7, #0");

    // Body: a few top-level statements, then calls into helpers.
    block(options_.max_depth);
    for (u32 f = 0; f < options_.functions; ++f) {
      if (rng_.chance(2, 3)) line("    bl fn_%u", f);
    }
    if (options_.allow_indirect_calls && options_.functions > 0) {
      // Dispatch through the table with a data-dependent index.
      line("    andi r0, r1, #%u", options_.functions - 1);
      emit("    li r4, =fn_table");
      emit("    ldr r3, [r4, r0, lsl #2]");
      emit("    blx r3");
    }

    // Publish the result registers.
    emit("    li r6, =RESULT");
    for (int r = 0; r <= 5; ++r) line("    str r%d, [r6, #%d]", r, 4 * r);
    emit("    str r7, [r6, #24]");
    emit("    hlt");
    emit("");

    // Helper functions.
    for (u32 f = 0; f < options_.functions; ++f) emit_function(f);
    if (options_.allow_recursion) emit_recursive_function();

    emit("__code_end:");
    emit(".align 4");
    if (options_.allow_indirect_calls && options_.functions > 0) {
      emit("fn_table:");
      for (u32 f = 0; f < options_.functions; ++f) line("    .word fn_%u", f);
      // Pad the table to the next power of two so the andi mask is safe.
      u32 size = options_.functions;
      while ((size & (size - 1)) != 0) {
        line("    .word fn_%u", static_cast<u32>(rng_.next_below(options_.functions)));
        ++size;
      }
    }
    return out_;
  }

 private:
  void emit(const std::string& text) { out_ += text + "\n"; }

  template <typename... Args>
  void line(const char* format, Args... args) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer, format, args...);
    emit(buffer);
  }

  u32 fresh_label() { return label_counter_++; }
  int data_reg() { return static_cast<int>(rng_.next_below(6)); }  // r0-r5

  /// One straight-line data operation on the r0-r5 pool.
  void emit_op() {
    const int rd = data_reg(), rn = data_reg(), rm = data_reg();
    switch (rng_.next_below(7)) {
      case 0: line("    add r%d, r%d, r%d", rd, rn, rm); break;
      case 1: line("    sub r%d, r%d, r%d", rd, rn, rm); break;
      case 2: line("    eor r%d, r%d, r%d", rd, rn, rm); break;
      case 3: line("    mul r%d, r%d, r%d", rd, rn, rm); break;
      case 4: line("    orr r%d, r%d, r%d", rd, rn, rm); break;
      case 5: line("    lsr r%d, r%d, #%d", rd, rn,
                   static_cast<int>(rng_.next_below(5) + 1)); break;
      default: line("    addi r%d, r%d, #%d", rd, rn,
                    static_cast<int>(rng_.next_below(61))); break;
    }
  }

  const char* random_cond() {
    static const char* conds[] = {"eq", "ne", "lt", "ge", "gt", "le", "hi", "ls"};
    return conds[rng_.next_below(8)];
  }

  void emit_if_else(u32 depth) {
    const u32 id = fresh_label();
    const int rn = data_reg();
    line("    cmp r%d, #%d", rn, static_cast<int>(rng_.next_below(128)));
    line("    b%s else_%u", random_cond(), id);
    block(depth - 1);
    line("    b endif_%u", id);
    line("else_%u:", id);
    if (rng_.chance(2, 3)) block(depth - 1);
    line("endif_%u:", id);
  }

  void emit_constant_loop(u32 depth) {
    // Fig 6 shape with a MOVI init: statically deterministic when the body
    // stays branch-free, trampolined otherwise. r7 is the (only) loop
    // counter register, so loop bodies must not nest further loops.
    const u32 id = fresh_label();
    const int iterations = static_cast<int>(rng_.next_below(6) + 2);
    const bool branchy_body = depth > 1 && rng_.chance(1, 3);
    emit("    movi r7, #0");
    line("loop_%u:", id);
    in_loop_ = true;
    if (branchy_body) {
      emit_if_else(depth);
    } else {
      emit_op();
    }
    in_loop_ = false;
    emit("    addi r7, r7, #1");
    line("    cmp r7, #%d", iterations);
    line("    blt loop_%u", id);
  }

  void emit_variable_loop(u32 depth) {
    // Variable trip count from a data register (masked to stay small);
    // forward-exit (Fig 7) or backward (Fig 6) shape.
    const u32 id = fresh_label();
    const int src = data_reg();
    const bool forward = rng_.chance(1, 2);
    line("    andi r7, r%d, #7", src);
    in_loop_ = true;
    if (forward) {
      line("vloop_%u:", id);
      emit("    cmp r7, #0");
      line("    beq vdone_%u", id);
      emit_op();
      emit("    sub r7, r7, #1");
      line("    b vloop_%u", id);
      line("vdone_%u:", id);
    } else {
      emit("    addi r7, r7, #1");  // at least one iteration
      line("vloop_%u:", id);
      emit_op();
      emit("    sub r7, r7, #1");
      emit("    cmp r7, #0");
      line("    bgt vloop_%u", id);
    }
    in_loop_ = false;
    (void)depth;
  }

  void block(u32 depth) {
    const u32 statements = 1 + static_cast<u32>(
                                   rng_.next_below(options_.statements_per_block));
    for (u32 s = 0; s < statements; ++s) {
      if (depth == 0) {
        emit_op();
        continue;
      }
      switch (rng_.next_below(6)) {
        case 0: emit_if_else(depth); break;
        case 1:
          if (!in_loop_) { emit_constant_loop(depth); break; }
          [[fallthrough]];
        case 2:
          if (!in_loop_) { emit_variable_loop(depth); break; }
          emit_op();
          break;
        case 3:
          if (options_.allow_recursion) {
            line("    andi r0, r%d, #7", data_reg());
            emit("    bl recurse");
            break;
          }
          [[fallthrough]];
        default: emit_op(); break;
      }
    }
  }

  void emit_function(u32 index) {
    line("fn_%u:", index);
    const bool leaf = rng_.chance(1, 2) || index + 1 == options_.functions;
    if (leaf) {
      // Leaf: BX LR return (unmonitored, §IV-C.2).
      emit_op();
      if (rng_.chance(1, 2)) emit_if_else(1);
      emit_op();
      emit("    bx lr");
    } else {
      // Non-leaf: stack-saved return (monitored POP {…,pc}).
      emit("    push {r6, lr}");
      block(2);
      line("    bl fn_%u", index + 1);
      emit("    pop {r6, pc}");
    }
    emit("");
  }

  void emit_recursive_function() {
    // recurse(r0): bounded double-recursion in the fibcall mold.
    emit("recurse:");
    emit("    push {r4, lr}");
    emit("    cmp r0, #2");
    emit("    blt rec_base");
    emit("    mov r4, r0");
    emit("    sub r0, r4, #1");
    emit("    bl recurse");
    emit("    add r1, r1, r0");
    emit("    sub r0, r4, #2");
    emit("    bl recurse");
    emit("    pop {r4, pc}");
    emit("rec_base:");
    emit("    addi r1, r1, #1");
    emit("    pop {r4, pc}");
    emit("");
  }

  Xoshiro256 rng_;
  SyntheticOptions options_;
  std::string out_;
  u32 label_counter_ = 0;
  bool in_loop_ = false;  ///< loops share counter r7: no nesting
};

}  // namespace

std::string generate_synthetic_program(u64 seed,
                                       const SyntheticOptions& options) {
  return Generator(seed, options).run();
}

}  // namespace raptrack::apps
