// GPS NMEA parser, modeled on the TinyGPS++ workload of the paper: a
// character-driven parser with a jump-table state machine (indirect jumps),
// per-character checksum loops, and nested field parsing — the most
// branch-dense app in the suite (it shows the largest naive-MTB blowup).
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

constexpr const char* kGpsSource = R"asm(
.equ UART_RX,   0x40000000
.equ RES_VALID, 0x20200000
.equ RES_BAD,   0x20200004
.equ RES_SUM,   0x20200008

_start:
    li r10, =UART_RX
    movi r4, #0            ; valid-sentence count
    movi r5, #0            ; checksum-failure count
    movi r6, #0            ; sum of first-field values
main_loop:
    ldr r0, [r10]
    cmp r0, #-1
    beq done
    cmp r0, #'$'
    bne main_loop          ; hunt for sentence start
    bl parse_sentence      ; r0 = 1/0 valid, r1 = first field value
    cmp r0, #0
    beq bad_sentence
    addi r4, r4, #1
    add r6, r6, r1
    b main_loop
bad_sentence:
    addi r5, r5, #1
    b main_loop
done:
    li r7, =RES_VALID
    str r4, [r7, #0]
    str r5, [r7, #4]
    str r6, [r7, #8]
    hlt

; ---------------------------------------------------------------------------
; parse_sentence: consumes chars after '$' through the checksum.
;   returns r0 = 1 (checksum ok) / 0, r1 = value of the first numeric field.
;   r4 = running xor, r5 = field value, r6 = parser state (0/1/2)
; ---------------------------------------------------------------------------
parse_sentence:
    push {r4, r5, r6, r7, lr}
    li r7, =UART_RX
    movi r4, #0
    movi r5, #0
    movi r6, #0
ps_loop:
    ldr r0, [r7]
    cmp r0, #-1
    beq ps_fail
    cmp r0, #'*'
    beq ps_checksum
    eor r4, r4, r0
    li r2, =state_table    ; jump-table dispatch on parser state
    ldr pc, [r2, r6, lsl #2]

st_seek_comma:
    cmp r0, #','
    bne ps_loop
    movi r6, #1
    b ps_loop

st_in_field:
    cmp r0, #','
    beq st_field_end
    cmp r0, #'0'
    blt ps_loop
    cmp r0, #'9'
    bgt ps_loop
    movi r1, #10
    mul r5, r5, r1
    sub r0, r0, #'0'
    add r5, r5, r0
    b ps_loop

st_field_end:
    movi r6, #2
    b ps_loop

st_tail:
    b ps_loop

ps_checksum:
    bl read_hex_digit
    lsl r1, r0, #4
    bl read_hex_digit
    add r1, r1, r0
    cmp r1, r4
    bne ps_fail
    movi r0, #1
    b ps_end
ps_fail:
    movi r0, #0
    movi r5, #0
ps_end:
    mov r1, r5
    pop {r4, r5, r6, r7, pc}

; read_hex_digit: leaf, consumes one uppercase-hex char -> r0 = value.
read_hex_digit:
    ldr r0, [r7]
    cmp r0, #-1
    beq rh_bad
    cmp r0, #'9'
    bgt rh_alpha
    sub r0, r0, #'0'
    bx lr
rh_alpha:
    sub r0, r0, #55        ; 'A' - 10
    bx lr
rh_bad:
    movi r0, #0
    bx lr

__code_end:
.align 4
state_table:
    .word st_seek_comma
    .word st_in_field
    .word st_tail
)asm";

struct GpsGolden {
  u32 valid = 0;
  u32 bad = 0;
  u32 field_sum = 0;
};

/// Mirrors the assembly parser exactly (same state machine and checksum).
GpsGolden gps_golden(const std::vector<u8>& stream) {
  GpsGolden golden;
  size_t i = 0;
  const auto next = [&]() -> int {
    return i < stream.size() ? stream[i++] : -1;
  };
  for (;;) {
    int c = next();
    if (c < 0) break;
    if (c != '$') continue;
    // parse_sentence
    u32 checksum = 0, field = 0, state = 0;
    bool ok = false;
    bool ended = false;
    for (;;) {
      const int ch = next();
      if (ch < 0) { ended = true; break; }
      if (ch == '*') break;
      checksum ^= static_cast<u32>(ch);
      if (state == 0) {
        if (ch == ',') state = 1;
      } else if (state == 1) {
        if (ch == ',') state = 2;
        else if (ch >= '0' && ch <= '9') field = field * 10 + (ch - '0');
      }
    }
    if (!ended) {
      const auto hex_digit = [&]() -> u32 {
        const int ch = next();
        if (ch < 0) return 0;
        return ch > '9' ? static_cast<u32>(ch - 55) : static_cast<u32>(ch - '0');
      };
      const u32 reported = (hex_digit() << 4) + hex_digit();
      ok = reported == checksum;
    }
    if (ok) {
      ++golden.valid;
      golden.field_sum += field;
    } else {
      ++golden.bad;
    }
  }
  return golden;
}

constexpr u32 kSentences = 24;

}  // namespace

App make_gps_app() {
  App app;
  app.name = "gps";
  app.description = "TinyGPS-style NMEA parser (jump-table state machine)";
  app.source = kGpsSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    const auto stream = make_nmea_stream(seed, kSentences);
    periph->uart_rx.assign(stream.begin(), stream.end());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals&, u64 seed) {
    const auto stream = make_nmea_stream(seed, kSentences);
    const GpsGolden golden = gps_golden(stream);
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 0) == golden.valid &&
           mem.raw_read32(kResultBase + 4) == golden.bad &&
           mem.raw_read32(kResultBase + 8) == golden.field_sum;
  };
  return app;
}

}  // namespace raptrack::apps
