#include "apps/peripherals.hpp"

#include <cstdio>

#include "sim/machine.hpp"

namespace raptrack::apps {

void Peripherals::attach(sim::Machine& machine) {
  mem::MmioHandler handler;
  handler.read = [this](Address offset, u32) { return read(offset); };
  handler.write = [this](Address offset, u32 value, u32) { write(offset, value); };
  machine.memory().add_mmio("periph", PeriphRegs::kBase, 0x1000,
                            mem::Security::NonSecure, std::move(handler));
}

u32 Peripherals::read(u32 offset) {
  switch (offset) {
    case PeriphRegs::kUartRx: {
      if (uart_rx.empty()) return 0xffff'ffff;
      const u8 byte = uart_rx.front();
      uart_rx.pop_front();
      return byte;
    }
    case PeriphRegs::kUartCount:
      return static_cast<u32>(uart_rx.size());
    case PeriphRegs::kAdc:
      return next_sample(adc_values, adc_pos_);
    case PeriphRegs::kEcho:
      return next_sample(echo_values, echo_pos_);
    case PeriphRegs::kGeiger:
      return next_sample(geiger_counts, geiger_pos_);
    case PeriphRegs::kTicks:
      ticks_ += tick_step;
      return ticks_;
    default:
      return 0;
  }
}

void Peripherals::write(u32 offset, u32 value) {
  switch (offset) {
    case PeriphRegs::kActuator:
      actuator_writes.push_back(value);
      break;
    case PeriphRegs::kTrigger:
      trigger_writes.push_back(value);
      break;
    default:
      break;  // writes to read-only registers are ignored, as on real MMIO
  }
}

std::vector<u8> make_nmea_stream(u64 seed, u32 count, u32 corrupt_one_in) {
  Xoshiro256 rng(seed ^ 0x6e6d6561);  // "nmea"
  std::vector<u8> stream;
  for (u32 i = 0; i < count; ++i) {
    const bool gga = rng.chance(1, 2);
    const u32 value = static_cast<u32>(rng.next_below(100000));
    const u32 extra = static_cast<u32>(rng.next_below(1000));
    char body[64];
    std::snprintf(body, sizeof body, "%s,%u,%u,N", gga ? "GPGGA" : "GPRMC",
                  value, extra);
    u8 checksum = 0;
    for (const char* p = body; *p; ++p) checksum ^= static_cast<u8>(*p);
    if (corrupt_one_in != 0 && rng.chance(1, corrupt_one_in)) {
      checksum ^= 0x5a;  // corrupted sentence
    }
    stream.push_back('$');
    for (const char* p = body; *p; ++p) stream.push_back(static_cast<u8>(*p));
    stream.push_back('*');
    const auto hex = [](u8 nibble) -> u8 {
      return nibble < 10 ? static_cast<u8>('0' + nibble)
                         : static_cast<u8>('A' + nibble - 10);
    };
    stream.push_back(hex(checksum >> 4));
    stream.push_back(hex(checksum & 0xf));
    stream.push_back('\r');
    stream.push_back('\n');
  }
  return stream;
}

std::vector<u8> make_pump_commands(u64 seed, u32 count) {
  Xoshiro256 rng(seed ^ 0x70756d70);  // "pump"
  std::vector<u8> stream;
  for (u32 i = 0; i < count; ++i) {
    const u8 opcode = static_cast<u8>(rng.next_below(4));  // push/pull/status/noop
    const u8 operand = static_cast<u8>(rng.next_range(1, 20));
    stream.push_back(opcode);
    stream.push_back(operand);
  }
  return stream;
}

std::vector<u32> make_adc_samples(u64 seed, u32 count) {
  Xoshiro256 rng(seed ^ 0x61646300);  // "adc"
  std::vector<u32> samples;
  u32 level = 2000;
  for (u32 i = 0; i < count; ++i) {
    level = static_cast<u32>(
        std::max<i64>(0, static_cast<i64>(level) + rng.next_range(-60, 60)));
    samples.push_back(level & 0xfff);  // 12-bit ADC
  }
  return samples;
}

std::vector<u32> make_echo_samples(u64 seed, u32 count) {
  Xoshiro256 rng(seed ^ 0x6563686f);  // "echo"
  std::vector<u32> samples;
  for (u32 i = 0; i < count; ++i) {
    // Echo round-trip time in microseconds; occasional near-range object.
    const bool near = rng.chance(1, 6);
    samples.push_back(static_cast<u32>(
        near ? rng.next_range(120, 580) : rng.next_range(600, 18000)));
  }
  return samples;
}

std::vector<u32> make_geiger_counts(u64 seed, u32 count) {
  Xoshiro256 rng(seed ^ 0x67656967);  // "geig"
  std::vector<u32> counts;
  for (u32 i = 0; i < count; ++i) {
    // Background with occasional bursts.
    const bool burst = rng.chance(1, 8);
    counts.push_back(static_cast<u32>(burst ? rng.next_range(40, 120)
                                            : rng.next_range(0, 9)));
  }
  return counts;
}

}  // namespace raptrack::apps
