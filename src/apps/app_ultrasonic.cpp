// Ultrasonic ranger, modeled on the Seeed Grove workload: trigger/echo
// polling, distance conversion, an 8-sample moving-average window (a
// statically deterministic fixed loop — no logging needed, §IV-C), and a
// proximity alarm. A loop-optimization showcase, as in the paper's Fig 9
// discussion.
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

constexpr const char* kUltrasonicSource = R"asm(
.equ ECHO,      0x40000020
.equ TRIGGER,   0x40000054
.equ ACTUATOR,  0x40000050
.equ RES_AVG,   0x20200000
.equ RES_ALARM, 0x20200004
.equ RES_LAST,  0x20200008
.equ WINDOW,    0x20201000   ; 8-entry circular buffer

_start:
    li r9, =ECHO
    li r10, =WINDOW
    movi r4, #0            ; measurement index
    movi r5, #0            ; alarm count
    movi r6, #0            ; last average
    ; zero the window (fixed 8-iteration loop: statically deterministic)
    movi r1, #0
zero_loop:
    movi r0, #0
    str r0, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #8
    blt zero_loop

measure_loop:
    ; trigger a ping, read the echo time (us)
    li r0, =TRIGGER
    movi r1, #1
    str r1, [r0]
    ldr r0, [r9]           ; echo microseconds
    bl to_distance         ; r0 -> millimetres
    ; store into circular window at index (r4 & 7)
    and r1, r4, r7         ; r7 pre-loaded with 7 below; see init fixup
    str r0, [r10, r1, lsl #2]
    ; moving average over the window (fixed 8-iteration loop)
    movi r2, #0            ; accumulator
    movi r1, #0
avg_loop:
    ldr r3, [r10, r1, lsl #2]
    add r2, r2, r3
    addi r1, r1, #1
    cmp r1, #8
    blt avg_loop
    lsr r6, r2, #3         ; average = sum / 8
    ; proximity alarm
    cmp r6, #100
    bge no_alarm
    addi r5, r5, #1
    li r1, =ACTUATOR
    movi r2, #1
    str r2, [r1]
no_alarm:
    addi r4, r4, #1
    cmp r4, #32
    blt measure_loop

    li r1, =RES_AVG
    str r6, [r1, #0]
    str r5, [r1, #4]
    str r0, [r1, #8]
    hlt

; to_distance: echo time (us) -> distance (mm): d = us * 170 / 1000. Leaf.
to_distance:
    li r2, =170
    mul r0, r0, r2
    li r2, =1000
    udiv r0, r0, r2
    bx lr

__code_end:
)asm";

constexpr u32 kMeasurements = 32;

struct UltraGolden {
  u32 avg = 0;
  u32 alarms = 0;
  u32 last_distance = 0;
};

UltraGolden ultra_golden(const std::vector<u32>& echoes) {
  UltraGolden golden;
  u32 window[8] = {};
  size_t echo_pos = 0;
  const auto next_echo = [&]() {
    const u32 v = echoes[echo_pos];
    if (echo_pos + 1 < echoes.size()) ++echo_pos;
    return v;
  };
  for (u32 i = 0; i < kMeasurements; ++i) {
    const u32 mm = next_echo() * 170 / 1000;
    window[i & 7] = mm;
    u32 sum = 0;
    for (const u32 w : window) sum += w;
    golden.avg = sum >> 3;
    if (static_cast<i32>(golden.avg) < 100) ++golden.alarms;
    golden.last_distance = mm;
  }
  return golden;
}

}  // namespace

App make_ultrasonic_app() {
  App app;
  app.name = "ultrasonic";
  app.description = "Seeed ultrasonic ranger (moving average, proximity alarm)";
  // The window-index mask register (r7) is set up before the measure loop.
  std::string source = kUltrasonicSource;
  const std::string anchor = "measure_loop:";
  source.insert(source.find(anchor), "movi r7, #7\n");
  app.source = source;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->echo_values = make_echo_samples(seed, kMeasurements);
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals&, u64 seed) {
    const UltraGolden golden =
        ultra_golden(make_echo_samples(seed, kMeasurements));
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 0) == golden.avg &&
           mem.raw_read32(kResultBase + 4) == golden.alarms &&
           mem.raw_read32(kResultBase + 8) == golden.last_distance;
  };
  return app;
}

}  // namespace raptrack::apps
