// BEEBS kernels, part 1: prime (trial division — variable-count loops),
// crc32 (fixed-bound bit loops — deterministic-loop showcase), and fibcall
// (deep recursion — monitored POP-pc returns).
#include "apps/app_registry_internal.hpp"

namespace raptrack::apps {

namespace {

// ---------------------------------------------------------------------------
// prime: count primes in [2, N], N = 150 + (ticks & 63).
// ---------------------------------------------------------------------------

constexpr const char* kPrimeSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_COUNT, 0x20200000
.equ RES_N,     0x20200004

_start:
    li r0, =TICKS
    ldr r0, [r0]
    andi r0, r0, #63
    addi r8, r0, #150      ; N
    movi r4, #0            ; prime count
    movi r5, #2            ; candidate
cand_loop:
    cmp r5, r8
    bgt done
    mov r0, r5
    bl is_prime
    cmp r0, #0
    beq next_cand
    addi r4, r4, #1
next_cand:
    addi r5, r5, #1
    b cand_loop
done:
    li r1, =RES_COUNT
    str r4, [r1, #0]
    str r8, [r1, #4]
    hlt

; is_prime(r0=n) -> r0 = 1/0. Uses trial division with d*d <= n.
is_prime:
    push {r4, r5, r6, lr}
    mov r4, r0             ; n
    cmp r4, #2
    blt ip_no
    beq ip_yes
    movi r5, #2            ; divisor
ip_loop:
    mul r6, r5, r5
    cmp r6, r4
    bgt ip_yes             ; d*d > n: prime
    udiv r6, r4, r5
    mul r6, r6, r5
    cmp r6, r4             ; n % d == 0 ?
    beq ip_no
    addi r5, r5, #1
    b ip_loop
ip_yes:
    movi r0, #1
    pop {r4, r5, r6, pc}
ip_no:
    movi r0, #0
    pop {r4, r5, r6, pc}

__code_end:
)asm";

u32 prime_golden(u32 n) {
  u32 count = 0;
  for (u32 candidate = 2; candidate <= n; ++candidate) {
    bool prime = candidate >= 2;
    for (u32 d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// crc32 over a 64-word LCG-filled buffer; bitwise (8 fixed iterations).
// ---------------------------------------------------------------------------

constexpr const char* kCrc32Source = R"asm(
.equ TICKS,     0x40000040
.equ RES_CRC,   0x20200000
.equ BUF,       0x20201000

_start:
    ; fill 64 words from an LCG seeded by the tick register
    li r0, =TICKS
    ldr r5, [r0]           ; LCG state
    li r10, =BUF
    movi r1, #0
fill_loop:
    li r2, =1103515245
    mul r5, r5, r2
    li r2, =12345
    add r5, r5, r2
    str r5, [r10, r1, lsl #2]
    addi r1, r1, #1
    cmp r1, #64
    blt fill_loop

    ; crc32 (reflected, poly 0xEDB88320), one byte per word (low byte)
    li r4, =0xFFFFFFFF     ; crc
    li r9, =0xEDB88320
    movi r6, #0            ; word index
word_loop:
    ldr r0, [r10, r6, lsl #2]
    andi r0, r0, #255
    eor r4, r4, r0
    movi r7, #0            ; bit counter: fixed 8 iterations
bit_loop:
    andi r1, r4, #1
    lsr r4, r4, #1
    cmp r1, #0
    beq no_poly
    eor r4, r4, r9
no_poly:
    addi r7, r7, #1
    cmp r7, #8
    blt bit_loop
    addi r6, r6, #1
    cmp r6, #64
    blt word_loop

    mvn r4, r4
    li r1, =RES_CRC
    str r4, [r1]
    hlt

__code_end:
)asm";

u32 crc32_golden(u32 lcg_seed) {
  u32 state = lcg_seed;
  u32 crc = 0xffff'ffff;
  for (u32 i = 0; i < 64; ++i) {
    state = state * 1103515245u + 12345u;
    u32 byte = state & 0xff;
    crc ^= byte;
    for (u32 bit = 0; bit < 8; ++bit) {
      const bool lsb = (crc & 1) != 0;
      crc >>= 1;
      if (lsb) crc ^= 0xEDB88320u;
    }
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// fibcall: recursive Fibonacci, n = 8 + (ticks & 7).
// ---------------------------------------------------------------------------

constexpr const char* kFibSource = R"asm(
.equ TICKS,     0x40000040
.equ RES_FIB,   0x20200000
.equ RES_N,     0x20200004

_start:
    li r0, =TICKS
    ldr r0, [r0]
    andi r0, r0, #7
    addi r0, r0, #8        ; n in [8, 15]
    mov r8, r0
    bl fib
    li r1, =RES_FIB
    str r0, [r1, #0]
    str r8, [r1, #4]
    hlt

; fib(r0=n) -> r0, classic double recursion (returns via POP {…,pc}).
fib:
    push {r4, r5, lr}
    cmp r0, #2
    blt fib_base
    mov r4, r0
    sub r0, r4, #1
    bl fib
    mov r5, r0
    sub r0, r4, #2
    bl fib
    add r0, r5, r0
    pop {r4, r5, pc}
fib_base:
    pop {r4, r5, pc}

__code_end:
)asm";

u32 fib_golden(u32 n) {
  if (n < 2) return n;
  return fib_golden(n - 1) + fib_golden(n - 2);
}

}  // namespace

App make_prime_app() {
  App app;
  app.name = "prime";
  app.description = "BEEBS prime: trial-division prime counting";
  app.source = kPrimeSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ 0x7072696d).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    const u32 first_tick = periph.tick_step;  // first TICKS read returns this
    const u32 n = 150 + (first_tick & 63);
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 4) == n &&
           mem.raw_read32(kResultBase + 0) == prime_golden(n);
  };
  return app;
}

App make_crc32_app() {
  App app;
  app.name = "crc32";
  app.description = "BEEBS crc32: fixed-bound bit loops over an LCG buffer";
  app.source = kCrc32Source;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ 0x63726332).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    const u32 golden = crc32_golden(periph.tick_step);
    return machine.memory().raw_read32(kResultBase) == golden;
  };
  return app;
}

App make_fibcall_app() {
  App app;
  app.name = "fibcall";
  app.description = "BEEBS fibcall: recursive Fibonacci (monitored returns)";
  app.source = kFibSource;
  app.setup = [](sim::Machine& machine, u64 seed) {
    auto periph = std::make_shared<Peripherals>();
    periph->tick_step = static_cast<u32>(SplitMix64(seed ^ 0x666962).next());
    periph->attach(machine);
    return periph;
  };
  app.check = [](sim::Machine& machine, const Peripherals& periph, u64 seed) {
    (void)seed;
    const u32 n = 8 + (periph.tick_step & 7);
    const auto& mem = machine.memory();
    return mem.raw_read32(kResultBase + 4) == n &&
           mem.raw_read32(kResultBase + 0) == fib_golden(n);
  };
  return app;
}

}  // namespace raptrack::apps
