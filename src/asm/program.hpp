// A fully linked program image: base address, raw bytes, and the symbol
// table produced by the assembler. This is what gets loaded into simulated
// flash and what the offline rewriting passes transform.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace raptrack {

class Program {
 public:
  Program() = default;
  Program(Address base, std::vector<u8> bytes)
      : base_(base), bytes_(std::move(bytes)) {}

  Address base() const { return base_; }
  Address end() const { return base_ + static_cast<Address>(bytes_.size()); }
  u32 size() const { return static_cast<u32>(bytes_.size()); }
  std::span<const u8> bytes() const { return bytes_; }
  std::vector<u8>& mutable_bytes() { return bytes_; }

  bool contains(Address addr) const { return addr >= base_ && addr < end(); }

  /// Little-endian word access (addr must be word-aligned and in range).
  u32 word_at(Address addr) const;
  void set_word(Address addr, u32 value);

  /// Decode the instruction at `addr`; nullopt when the word is not a valid
  /// instruction (e.g. a data word in a literal table).
  std::optional<isa::Instruction> instruction_at(Address addr) const;

  /// Replace the instruction at `addr` (encodes in place).
  void set_instruction(Address addr, const isa::Instruction& instr);

  /// Append raw words at the end of the image (used by rewriters to grow the
  /// image with trampoline slots). Returns the address of the first appended
  /// word.
  Address append_words(std::span<const u32> words);

  // Symbols.
  void add_symbol(const std::string& name, Address addr) { symbols_[name] = addr; }
  std::optional<Address> symbol(const std::string& name) const;
  const std::map<std::string, Address>& symbols() const { return symbols_; }

 private:
  void check_word_access(Address addr) const;

  Address base_ = 0;
  std::vector<u8> bytes_;
  std::map<std::string, Address> symbols_;
};

}  // namespace raptrack
