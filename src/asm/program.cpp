#include "asm/program.hpp"

#include "common/hex.hpp"

namespace raptrack {

void Program::check_word_access(Address addr) const {
  if (addr % 4 != 0) throw Error("Program: unaligned word access " + hex32(addr));
  if (!contains(addr) || addr + 4 > end()) {
    throw Error("Program: word access out of range " + hex32(addr));
  }
}

u32 Program::word_at(Address addr) const {
  check_word_access(addr);
  const size_t i = addr - base_;
  return static_cast<u32>(bytes_[i]) | (static_cast<u32>(bytes_[i + 1]) << 8) |
         (static_cast<u32>(bytes_[i + 2]) << 16) |
         (static_cast<u32>(bytes_[i + 3]) << 24);
}

void Program::set_word(Address addr, u32 value) {
  check_word_access(addr);
  const size_t i = addr - base_;
  bytes_[i] = static_cast<u8>(value);
  bytes_[i + 1] = static_cast<u8>(value >> 8);
  bytes_[i + 2] = static_cast<u8>(value >> 16);
  bytes_[i + 3] = static_cast<u8>(value >> 24);
}

std::optional<isa::Instruction> Program::instruction_at(Address addr) const {
  return isa::decode(word_at(addr));
}

void Program::set_instruction(Address addr, const isa::Instruction& instr) {
  set_word(addr, isa::encode(instr));
}

Address Program::append_words(std::span<const u32> words) {
  const Address start = end();
  for (const u32 w : words) {
    bytes_.push_back(static_cast<u8>(w));
    bytes_.push_back(static_cast<u8>(w >> 8));
    bytes_.push_back(static_cast<u8>(w >> 16));
    bytes_.push_back(static_cast<u8>(w >> 24));
  }
  return start;
}

std::optional<Address> Program::symbol(const std::string& name) const {
  const auto it = symbols_.find(name);
  if (it == symbols_.end()) return std::nullopt;
  return it->second;
}

}  // namespace raptrack
