#include "asm/assembler.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "common/hex.hpp"
#include "isa/instruction.hpp"

namespace raptrack {
namespace {

using isa::Cond;
using isa::Format;
using isa::Instruction;
using isa::Op;
using isa::Reg;

/// Register-immediate twin for ALU mnemonics ("add r0, r1, #2" -> ADDI).
std::optional<Op> imm_twin(Op op) {
  switch (op) {
    case Op::ADD: return Op::ADDI;
    case Op::SUB: return Op::SUBI;
    case Op::RSB: return Op::RSBI;
    case Op::AND: return Op::ANDI;
    case Op::ORR: return Op::ORRI;
    case Op::EOR: return Op::EORI;
    case Op::LSL: return Op::LSLI;
    case Op::LSR: return Op::LSRI;
    case Op::ASR: return Op::ASRI;
    case Op::CMP: return Op::CMPI;
    case Op::TST: return Op::TSTI;
    default: return std::nullopt;
  }
}

struct Statement {
  enum class Kind { Instr, Li, Word, Space, Asciz, Align } kind = Kind::Instr;
  std::string mnemonic;                // Instr
  std::vector<std::string> operands;   // raw operand strings
  std::string text;                    // Asciz payload
  u32 line = 0;
  Address address = 0;
  u32 byte_size = 0;
};

class Assembler {
 public:
  Assembler(std::string_view source, Address base) : source_(source), base_(base) {}

  Program run() {
    first_pass();
    return second_pass();
  }

 private:
  [[noreturn]] void fail(u32 line, const std::string& message) const {
    throw Error("asm:" + std::to_string(line) + ": " + message);
  }

  // -- tokenizing helpers ---------------------------------------------------

  static std::string_view strip(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
  }

  static std::string_view strip_comment(std::string_view s) {
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == ';' || c == '@') return s.substr(0, i);
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') return s.substr(0, i);
      if (c == '"') {  // skip string literal
        for (++i; i < s.size() && s[i] != '"'; ++i) {}
      }
    }
    return s;
  }

  /// Split operands on top-level commas (commas inside {}, [], and char
  /// literals like #',' are kept).
  static std::vector<std::string> split_operands(std::string_view s) {
    std::vector<std::string> out;
    int depth = 0;
    std::string current;
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\'' && i + 2 < s.size() && s[i + 2] == '\'') {
        current += s.substr(i, 3);  // char literal, comma included
        i += 2;
        continue;
      }
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        out.emplace_back(strip(current));
        current.clear();
      } else {
        current += c;
      }
    }
    if (!strip(current).empty()) out.emplace_back(strip(current));
    return out;
  }

  // -- expression evaluation ------------------------------------------------

  std::optional<i64> parse_number(std::string_view t) const {
    if (t.empty()) return std::nullopt;
    bool negative = false;
    if (t.front() == '-') { negative = true; t.remove_prefix(1); }
    if (t.empty()) return std::nullopt;
    if (t.size() == 3 && t.front() == '\'' && t.back() == '\'') {
      return negative ? -i64{t[1]} : i64{t[1]};
    }
    i64 value = 0;
    int radix = 10;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
      radix = 16; t.remove_prefix(2);
    } else if (t.size() > 2 && t[0] == '0' && (t[1] == 'b' || t[1] == 'B')) {
      radix = 2; t.remove_prefix(2);
    }
    if (t.empty()) return std::nullopt;
    for (const char c : t) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else if (c == '_') continue;
      else return std::nullopt;
      if (digit >= radix) return std::nullopt;
      value = value * radix + digit;
    }
    return negative ? -value : value;
  }

  /// expr := term (('+'|'-') term)*; term := number | symbol
  i64 eval(std::string_view expr, u32 line) const {
    expr = strip(expr);
    if (expr.empty()) fail(line, "empty expression");
    i64 total = 0;
    int sign = 1;
    size_t pos = 0;
    bool expecting_term = true;
    while (pos < expr.size()) {
      while (pos < expr.size() && std::isspace(static_cast<unsigned char>(expr[pos]))) ++pos;
      if (pos >= expr.size()) break;
      if (!expecting_term && (expr[pos] == '+' || expr[pos] == '-')) {
        sign = expr[pos] == '+' ? 1 : -1;
        ++pos;
        expecting_term = true;
        continue;
      }
      size_t end = pos;
      if (expr[pos] == '\'') {
        end = pos + 3;
      } else {
        // Leading '-' belongs to a numeric literal.
        if (expr[end] == '-') ++end;
        while (end < expr.size() && expr[end] != '+' && expr[end] != '-' &&
               !std::isspace(static_cast<unsigned char>(expr[end]))) {
          ++end;
        }
      }
      const std::string_view token = expr.substr(pos, end - pos);
      i64 value;
      if (const auto num = parse_number(token)) {
        value = *num;
      } else if (const auto eq = equ_.find(std::string(token)); eq != equ_.end()) {
        value = eq->second;
      } else if (const auto sym = labels_.find(std::string(token)); sym != labels_.end()) {
        value = static_cast<i64>(sym->second);
      } else {
        fail(line, "undefined symbol '" + std::string(token) + "'");
      }
      total += sign * value;
      sign = 1;
      expecting_term = false;
      pos = end;
    }
    return total;
  }

  // -- operand parsing ------------------------------------------------------

  std::optional<Reg> parse_reg(std::string_view t) const {
    t = strip(t);
    for (u8 i = 0; i < isa::kNumRegs; ++i) {
      if (t == isa::kRegNames[i]) return static_cast<Reg>(i);
    }
    if (t == "r13") return Reg::SP;
    if (t == "r14") return Reg::LR;
    if (t == "r15") return Reg::PC;
    return std::nullopt;
  }

  Reg expect_reg(const std::string& t, u32 line) const {
    const auto r = parse_reg(t);
    if (!r) fail(line, "expected register, got '" + t + "'");
    return *r;
  }

  bool is_immediate(std::string_view t) const { return !t.empty() && t.front() == '#'; }

  i64 parse_immediate(std::string_view t, u32 line) const {
    if (!is_immediate(t)) fail(line, "expected immediate, got '" + std::string(t) + "'");
    return eval(t.substr(1), line);
  }

  u16 parse_reg_list(std::string_view t, u32 line) const {
    t = strip(t);
    if (t.size() < 2 || t.front() != '{' || t.back() != '}') {
      fail(line, "expected register list, got '" + std::string(t) + "'");
    }
    u16 mask = 0;
    std::stringstream ss{std::string(t.substr(1, t.size() - 2))};
    std::string item;
    while (std::getline(ss, item, ',')) {
      const std::string_view entry = strip(item);
      if (entry.empty()) fail(line, "empty register-list entry");
      const size_t dash = entry.find('-');
      if (dash != std::string_view::npos) {
        const auto lo = parse_reg(entry.substr(0, dash));
        const auto hi = parse_reg(entry.substr(dash + 1));
        if (!lo || !hi || index(*lo) > index(*hi)) fail(line, "bad register range");
        for (u8 i = index(*lo); i <= index(*hi); ++i) mask |= u16{1} << i;
      } else {
        const auto r = parse_reg(entry);
        if (!r) fail(line, "bad register in list: '" + std::string(entry) + "'");
        mask |= u16{1} << index(*r);
      }
    }
    if (mask == 0) fail(line, "empty register list");
    return mask;
  }

  // -- statement parsing (pass 1) -------------------------------------------

  void first_pass() {
    u32 line_number = 0;
    Address pc = base_;
    std::istringstream stream{std::string(source_)};
    std::string raw;
    while (std::getline(stream, raw)) {
      ++line_number;
      std::string_view line = strip(strip_comment(raw));
      // Labels (there may be several on one line).
      while (true) {
        const size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view candidate = strip(line.substr(0, colon));
        if (candidate.empty() || candidate.find(' ') != std::string_view::npos ||
            candidate.find('[') != std::string_view::npos) {
          break;
        }
        if (labels_.count(std::string(candidate))) {
          fail(line_number, "duplicate label '" + std::string(candidate) + "'");
        }
        labels_[std::string(candidate)] = pc;
        line = strip(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      Statement st;
      st.line = line_number;
      st.address = pc;

      const size_t space = line.find_first_of(" \t");
      const std::string head = std::string(line.substr(0, space));
      const std::string_view rest =
          space == std::string_view::npos ? std::string_view{} : strip(line.substr(space));

      if (head == ".equ") {
        const auto ops = split_operands(rest);
        if (ops.size() != 2) fail(line_number, ".equ needs NAME, expr");
        equ_[ops[0]] = eval(ops[1], line_number);
        continue;
      }
      if (head == ".word") {
        st.kind = Statement::Kind::Word;
        st.operands = split_operands(rest);
        if (st.operands.empty()) fail(line_number, ".word needs at least one value");
        st.byte_size = static_cast<u32>(st.operands.size()) * 4;
      } else if (head == ".space") {
        st.kind = Statement::Kind::Space;
        st.byte_size = static_cast<u32>(eval(rest, line_number));
      } else if (head == ".asciz" || head == ".ascii") {
        st.kind = Statement::Kind::Asciz;
        const std::string_view r = strip(rest);
        if (r.size() < 2 || r.front() != '"' || r.back() != '"') {
          fail(line_number, head + " needs a quoted string");
        }
        st.text = std::string(r.substr(1, r.size() - 2));
        st.byte_size = static_cast<u32>(st.text.size()) + (head == ".asciz" ? 1 : 0);
      } else if (head == ".align") {
        st.kind = Statement::Kind::Align;
        const u32 alignment = static_cast<u32>(eval(rest, line_number));
        if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
          fail(line_number, ".align needs a power of two");
        }
        st.byte_size = align_up(pc, alignment) - pc;
      } else if (head == "li") {
        st.kind = Statement::Kind::Li;
        st.operands = split_operands(rest);
        if (st.operands.size() != 2) fail(line_number, "li needs rd, =expr");
        st.byte_size = 8;  // movi + movt, always two words for determinism
      } else {
        st.kind = Statement::Kind::Instr;
        st.mnemonic = head;
        st.operands = split_operands(rest);
        st.byte_size = isa::kInstrBytes;
      }
      pc += st.byte_size;
      statements_.push_back(std::move(st));
    }
    total_size_ = pc - base_;
  }

  // -- mnemonic resolution --------------------------------------------------

  struct ResolvedMnemonic {
    Op op;
    Cond cond = Cond::AL;
    bool set_flags = false;
  };

  ResolvedMnemonic resolve_mnemonic(const std::string& m, u32 line) const {
    // Exact match first (covers "b", "bl", "blx", "bx", "bls" is NOT in the
    // table so falls through to the condition-suffix path).
    if (const auto info = isa::op_info(std::string_view{m})) {
      return {info->op, Cond::AL, false};
    }
    // Conditional branch: 'b' + condition suffix.
    if (m.size() >= 3 && m[0] == 'b') {
      if (const auto c = isa::cond_from_suffix(std::string_view{m}.substr(1))) {
        return {Op::BCC, *c, false};
      }
    }
    // Flag-setting ALU: mnemonic + 's'.
    if (m.size() >= 4 && m.back() == 's') {
      const std::string bare = m.substr(0, m.size() - 1);
      if (const auto info = isa::op_info(std::string_view{bare})) {
        const Format f = isa::format_of(info->op);
        if (f == Format::AluReg || f == Format::AluImm) {
          return {info->op, Cond::AL, true};
        }
      }
    }
    fail(line, "unknown mnemonic '" + m + "'");
  }

  // -- instruction encoding (pass 2) ----------------------------------------

  Instruction build_instruction(const Statement& st) {
    const u32 line = st.line;
    auto [op, cond, set_flags] = resolve_mnemonic(st.mnemonic, line);
    Instruction in;
    in.op = op;
    in.cond = cond;
    in.set_flags = set_flags;
    const auto& ops = st.operands;
    const auto need = [&](size_t n) {
      if (ops.size() != n) {
        fail(line, st.mnemonic + " needs " + std::to_string(n) + " operand(s), got " +
                       std::to_string(ops.size()));
      }
    };

    switch (isa::format_of(op)) {
      case Format::Sys:
        if (op == Op::SVC) {
          need(1);
          in.imm = static_cast<i32>(parse_immediate(ops[0], line));
        } else if (!ops.empty()) {
          fail(line, st.mnemonic + " takes no operands");
        }
        break;

      case Format::Mov16:
        need(2);
        in.rd = expect_reg(ops[0], line);
        in.imm = static_cast<i32>(parse_immediate(ops[1], line));
        if (!fits_unsigned(static_cast<u64>(static_cast<u32>(in.imm)), 16)) {
          fail(line, "imm16 out of range");
        }
        break;

      case Format::AluReg: {
        if (op == Op::MOV || op == Op::MVN) {
          need(2);
          in.rd = expect_reg(ops[0], line);
          if (is_immediate(ops[1])) {
            // mov rd, #imm -> MOVI when it fits.
            const i64 value = parse_immediate(ops[1], line);
            if (op == Op::MOV && value >= 0 && value < 0x10000) {
              in.op = Op::MOVI;
              in.imm = static_cast<i32>(value);
              return in;
            }
            fail(line, "immediate does not fit mov; use li");
          }
          in.rm = expect_reg(ops[1], line);
          return in;
        }
        if (isa::is_compare(op)) {
          need(2);
          in.rn = expect_reg(ops[0], line);
          if (is_immediate(ops[1])) {
            const auto twin = imm_twin(op);
            if (!twin) fail(line, "no immediate form for " + st.mnemonic);
            in.op = *twin;
            in.imm = static_cast<i32>(parse_immediate(ops[1], line));
            in.set_flags = true;
            return in;
          }
          in.rm = expect_reg(ops[1], line);
          return in;
        }
        need(3);
        in.rd = expect_reg(ops[0], line);
        in.rn = expect_reg(ops[1], line);
        if (is_immediate(ops[2])) {
          const auto twin = imm_twin(op);
          if (!twin) fail(line, "no immediate form for " + st.mnemonic);
          in.op = *twin;
          in.imm = static_cast<i32>(parse_immediate(ops[2], line));
          return in;
        }
        in.rm = expect_reg(ops[2], line);
        return in;
      }

      case Format::AluImm:
        // Explicit "addi"-style spelling.
        if (isa::is_compare(op)) {
          need(2);
          in.rn = expect_reg(ops[0], line);
          in.imm = static_cast<i32>(parse_immediate(ops[1], line));
          in.set_flags = true;
        } else {
          need(3);
          in.rd = expect_reg(ops[0], line);
          in.rn = expect_reg(ops[1], line);
          in.imm = static_cast<i32>(parse_immediate(ops[2], line));
        }
        break;

      case Format::MemImm:
      case Format::MemReg: {
        need(2);
        in.rd = expect_reg(ops[0], line);
        std::string_view addr = strip(ops[1]);
        if (addr.size() < 2 || addr.front() != '[' || addr.back() != ']') {
          fail(line, "expected [rn, ...] addressing, got '" + ops[1] + "'");
        }
        const auto parts = split_operands(addr.substr(1, addr.size() - 2));
        if (parts.empty() || parts.size() > 3) fail(line, "bad addressing mode");
        in.rn = expect_reg(parts[0], line);
        if (parts.size() == 1) {
          in.imm = 0;
        } else if (is_immediate(parts[1])) {
          if (parts.size() != 2) fail(line, "bad addressing mode");
          in.imm = static_cast<i32>(parse_immediate(parts[1], line));
        } else {
          // Register offset -> LDRR/STRR.
          in.rm = expect_reg(parts[1], line);
          in.shift = 0;
          if (parts.size() == 3) {
            std::string_view sh = strip(parts[2]);
            if (sh.substr(0, 3) != "lsl") fail(line, "only lsl shifts supported");
            in.shift = static_cast<u8>(parse_immediate(strip(sh.substr(3)), line));
          }
          if (isa::is_load(op)) {
            if (op != Op::LDR && op != Op::LDRR) fail(line, "register offset only for ldr/str");
            in.op = Op::LDRR;
          } else {
            if (op != Op::STR && op != Op::STRR) fail(line, "register offset only for ldr/str");
            in.op = Op::STRR;
          }
        }
        break;
      }

      case Format::RegList:
        need(1);
        in.reg_list = parse_reg_list(ops[0], line);
        if (op == Op::PUSH && bit(in.reg_list, 15)) fail(line, "cannot push pc");
        if (op == Op::POP && bit(in.reg_list, 14)) fail(line, "cannot pop lr directly");
        break;

      case Format::Branch:
      case Format::CondBr: {
        need(1);
        const i64 target = eval(ops[0], line);
        in.imm = isa::branch_offset(st.address, static_cast<Address>(target));
        break;
      }

      case Format::RegBr:
        need(1);
        in.rm = expect_reg(ops[0], line);
        break;
    }
    return in;
  }

  Program second_pass() {
    Program program(base_, std::vector<u8>(total_size_, 0));
    for (const auto& [name, addr] : labels_) program.add_symbol(name, addr);

    for (const auto& st : statements_) {
      switch (st.kind) {
        case Statement::Kind::Instr:
          try {
            program.set_word(st.address, isa::encode(build_instruction(st)));
          } catch (const Error& e) {
            if (std::string_view(e.what()).starts_with("asm:")) throw;
            fail(st.line, e.what());
          }
          break;
        case Statement::Kind::Li: {
          const Reg rd = expect_reg(st.operands[0], st.line);
          std::string_view value = strip(st.operands[1]);
          if (value.empty() || value.front() != '=') fail(st.line, "li needs =expr");
          const u32 v = static_cast<u32>(eval(value.substr(1), st.line));
          Instruction movi;
          movi.op = Op::MOVI;
          movi.rd = rd;
          movi.imm = static_cast<i32>(v & 0xffffu);
          Instruction movt;
          movt.op = Op::MOVT;
          movt.rd = rd;
          movt.imm = static_cast<i32>(v >> 16);
          program.set_word(st.address, isa::encode(movi));
          program.set_word(st.address + 4, isa::encode(movt));
          break;
        }
        case Statement::Kind::Word: {
          Address addr = st.address;
          for (const auto& expr : st.operands) {
            program.set_word(addr, static_cast<u32>(eval(expr, st.line)));
            addr += 4;
          }
          break;
        }
        case Statement::Kind::Space:
        case Statement::Kind::Align:
          break;  // already zero
        case Statement::Kind::Asciz: {
          auto& bytes = program.mutable_bytes();
          for (size_t i = 0; i < st.text.size(); ++i) {
            bytes[st.address - base_ + i] = static_cast<u8>(st.text[i]);
          }
          break;
        }
      }
    }
    return program;
  }

  std::string_view source_;
  Address base_;
  std::vector<Statement> statements_;
  std::map<std::string, Address> labels_;
  std::map<std::string, i64> equ_;
  u32 total_size_ = 0;
};

}  // namespace

Program assemble(std::string_view source, Address base) {
  if (base % 4 != 0) throw Error("assemble: base must be word-aligned");
  return Assembler(source, base).run();
}

std::string disassemble(const Program& program) {
  std::string out;
  for (Address addr = program.base(); addr + 4 <= program.end(); addr += 4) {
    const u32 word = program.word_at(addr);
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "%08x:  %08x  ", addr, word);
    out += prefix;
    if (const auto instr = isa::decode(word)) {
      out += isa::to_string(*instr);
    } else {
      out += ".word";
    }
    out += '\n';
  }
  return out;
}

}  // namespace raptrack
