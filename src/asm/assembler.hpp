// Two-pass assembler for RT-ISA. The evaluation workloads (the paper's MCU
// applications and BEEBS kernels) are written in this assembly dialect and
// assembled into flash images that the offline rewriting passes then
// transform — mirroring the paper's "operates directly on post-compiled
// binaries" offline phase.
//
// Grammar (one statement per line, ';' '@' '//' comments):
//   label:                       — define a symbol at the current address
//   .equ NAME, expr              — named constant
//   .word expr[, expr ...]       — literal data words
//   .space N                     — N zero bytes
//   .asciz "text"                — NUL-terminated string
//   .align N                     — pad with zero bytes to an N-byte boundary
//   li rd, =expr                 — pseudo: movi+movt, loads any 32-bit value
//   <mnemonic> operands          — one RT-ISA instruction
//
// Operand conveniences:
//   add r0, r1, #5               — immediate forms auto-select (ADD -> ADDI)
//   adds/subs/...                — trailing 's' sets flags
//   beq/bne/bhi/...              — condition suffix selects BCC
//   mov r0, #123                 — maps to MOVI when the value fits 16 bits
//   push {r4-r7, lr}             — register ranges in lists
//   ldr r0, [r1]                 — offset defaults to #0
//   ldr r0, [r1, r2, lsl #2]     — register-offset form (LDRR)
#pragma once

#include <string>
#include <string_view>

#include "asm/program.hpp"
#include "common/types.hpp"

namespace raptrack {

/// Assemble `source` into an image based at `base`. Throws Error with a
/// line-numbered message on any syntax or range problem.
Program assemble(std::string_view source, Address base);

/// Disassemble the whole image into an address-annotated listing (one line
/// per word; data words that do not decode are shown as .word).
std::string disassemble(const Program& program);

}  // namespace raptrack
