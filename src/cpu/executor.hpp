// The instruction executor: fetch/decode/execute loop with cycle accounting,
// fault delivery, SVC (Secure-World gateway) dispatch, and a trace-sink bus
// that feeds the DWT/MTB models and the ground-truth oracle tracer.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "cpu/cpu_state.hpp"
#include "isa/cycle_model.hpp"
#include "isa/instruction.hpp"
#include "mem/bus.hpp"

namespace raptrack::cpu {

/// Observer of the retired-instruction stream. The DWT watches PCs, the MTB
/// (gated by the DWT) records branches, and tests attach an oracle tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called before each instruction executes, with its address.
  virtual void on_instruction(Address pc) { (void)pc; }
  /// Called after a non-sequential PC change (any taken branch).
  virtual void on_branch(Address source, Address destination,
                         isa::BranchKind kind) {
    (void)source; (void)destination; (void)kind;
  }
};

/// Why run() returned.
enum class HaltReason : u8 {
  Halted,         ///< HLT retired
  Breakpoint,     ///< BKPT retired
  Fault,          ///< a fault was delivered (see Executor::fault())
  InstrBudget,    ///< max-instruction budget exhausted (likely runaway)
};

/// SVC handler: services a Secure-World call. Receives the SVC immediate and
/// the mutable CPU state; returns the number of cycles the Secure World
/// spent (added to the cycle counter — context switch + RoT service time).
using SvcHandler = std::function<Cycles(u8 code, CpuState& state)>;

class Executor {
 public:
  Executor(mem::Bus& bus, isa::CycleModel model = {})
      : bus_(&bus), cycle_model_(model) {}

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  Cycles cycles() const { return cycles_; }
  void add_cycles(Cycles c) { cycles_ += c; }
  u64 instructions_retired() const { return instructions_; }
  const std::optional<mem::Fault>& fault() const { return fault_; }
  const isa::CycleModel& cycle_model() const { return cycle_model_; }

  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }
  void set_svc_handler(SvcHandler handler) { svc_handler_ = std::move(handler); }

  /// Reset registers/cycles (memory untouched) and start at `entry` with the
  /// stack at `stack_top`.
  void reset(Address entry, Address stack_top);

  /// Execute a single instruction. Returns nullopt while running, or the
  /// halt reason once the core stops.
  std::optional<HaltReason> step();

  /// Run until halt/fault or until `max_instructions` retire.
  HaltReason run(u64 max_instructions = 200'000'000);

 private:
  void execute(const isa::Instruction& instr, Address pc);
  void branch_to(Address source, Address destination, isa::BranchKind kind);
  void set_nz(Word result);
  Word alu_add(Word a, Word b, bool set_flags);
  Word alu_sub(Word a, Word b, bool set_flags);
  Word read_operand(isa::Reg r, Address pc) const;

  mem::Bus* bus_;
  isa::CycleModel cycle_model_;
  CpuState state_;
  Cycles cycles_ = 0;
  u64 instructions_ = 0;
  std::optional<mem::Fault> fault_;
  std::vector<TraceSink*> sinks_;
  SvcHandler svc_handler_;
  bool halted_ = false;
};

}  // namespace raptrack::cpu
