// The instruction executor: fetch/decode/execute loop with cycle accounting,
// fault delivery, SVC (Secure-World gateway) dispatch, and a trace-sink bus
// that feeds the DWT/MTB models and the ground-truth oracle tracer.
//
// Two execution paths share one execute() implementation:
//   * step()/run()        — the reference oracle: fetch + decode + full
//                           bus permission checks on every instruction;
//   * step_fast()/run_fast() — executes from an attached DecodedImage
//                           (predecoded at H_MEM time, see isa/decoded_image)
//                           with the sink-vector walk hoisted into a
//                           compiled-per-configuration dispatch. Falls back
//                           to the reference path per instruction whenever
//                           the pc leaves the cache, a slot was invalidated
//                           by a write, or fetch permissions cannot be
//                           proven clear — so it is bit-identical to run().
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "cpu/cpu_state.hpp"
#include "isa/cycle_model.hpp"
#include "isa/decoded_image.hpp"
#include "isa/instruction.hpp"
#include "mem/bus.hpp"

namespace raptrack::cpu {

/// Observer of the retired-instruction stream. The DWT watches PCs, the MTB
/// (gated by the DWT) records branches, and tests attach an oracle tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called before each instruction executes, with its address.
  virtual void on_instruction(Address pc) { (void)pc; }
  /// Called after a non-sequential PC change (any taken branch).
  virtual void on_branch(Address source, Address destination,
                         isa::BranchKind kind) {
    (void)source; (void)destination; (void)kind;
  }
};

/// Why run() returned.
enum class HaltReason : u8 {
  Halted,         ///< HLT retired
  Breakpoint,     ///< BKPT retired
  Fault,          ///< a fault was delivered (see Executor::fault())
  InstrBudget,    ///< max-instruction budget exhausted (likely runaway)
};

/// SVC handler: services a Secure-World call. Receives the SVC immediate and
/// the mutable CPU state; returns the number of cycles the Secure World
/// spent (added to the cycle counter — context switch + RoT service time).
using SvcHandler = std::function<Cycles(u8 code, CpuState& state)>;

class Executor {
 public:
  Executor(mem::Bus& bus, isa::CycleModel model = {})
      : bus_(&bus), cycle_model_(model) {}

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  Cycles cycles() const { return cycles_; }
  void add_cycles(Cycles c) { cycles_ += c; }
  u64 instructions_retired() const { return instructions_; }
  /// Instructions that went through the reference fetch+decode oracle
  /// (step(), or a fast-path per-instruction fallback). Counted in
  /// step_with() only, so run_fast()'s hot loop pays nothing for it.
  u64 oracle_dispatches() const { return oracle_dispatches_; }
  /// Instructions executed straight from the predecode cache.
  u64 fast_dispatches() const { return instructions_ - oracle_dispatches_; }
  /// Instructions retired inside fused superblocks (a subset of
  /// fast_dispatches — they skipped even the per-slot sink dispatch and
  /// bookkeeping in favor of one batched retirement per window).
  u64 fused_dispatches() const { return fused_retired_; }
  const std::optional<mem::Fault>& fault() const { return fault_; }
  const isa::CycleModel& cycle_model() const { return cycle_model_; }

  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }
  void set_svc_handler(SvcHandler handler) { svc_handler_ = std::move(handler); }

  /// Attach the predecoded fast-path cache. Caller keeps ownership and must
  /// keep the image alive (and invalidated on writes) while attached.
  void attach_decoded_image(const isa::DecodedImage* image) {
    image_ = image;
    fetch_generation_seen_ = kNoGeneration;  // force fetch revalidation
  }
  void detach_decoded_image() { image_ = nullptr; }
  const isa::DecodedImage* decoded_image() const { return image_; }

  /// Reset registers/cycles (memory untouched) and start at `entry` with the
  /// stack at `stack_top`.
  void reset(Address entry, Address stack_top);

  /// Execute a single instruction. Returns nullopt while running, or the
  /// halt reason once the core stops.
  std::optional<HaltReason> step();

  /// Single instruction through the predecode cache when possible; falls
  /// back to step() semantics otherwise. Bit-identical to step().
  std::optional<HaltReason> step_fast();

  /// Run until halt/fault or until `max_instructions` retire.
  HaltReason run(u64 max_instructions = 200'000'000);

  /// run() through the predecode cache with per-configuration sink
  /// dispatch. Behaves exactly like run() (and is run() when no image is
  /// attached).
  HaltReason run_fast(u64 max_instructions = 200'000'000);

 private:
  // Compiled-per-configuration sink dispatch: run_fast() selects one of
  // these once, so the straight-line MTBDR majority of instructions does
  // not walk the sink vector.
  //
  // Each policy additionally answers fuse_window()/retire_batch() for the
  // superblock path: fuse_window(pc, len) decides whether a fused run of
  // `len` instructions at `pc` may retire as one unit (no per-instruction
  // sink effect inside the window), and retire_batch(n) applies the batched
  // per-instruction side effects for `n` retirements. Policies carrying
  // arbitrary TraceSinks must answer false — a generic sink observes every
  // pc, so fusing would drop events. The fabric-backed policies (defined in
  // executor.cpp) answer via Dwt::inert_window, which proves observe() is a
  // no-op across the window.
  struct SinksNone {
    void instruction(Address) const {}
    void branch(Address, Address, isa::BranchKind) const {}
    bool fuse_window(Address, u32) const { return true; }
    void retire_batch(u32) const {}
  };
  struct SinksOne {
    TraceSink* sink;
    void instruction(Address pc) const { sink->on_instruction(pc); }
    void branch(Address source, Address destination, isa::BranchKind kind) const {
      sink->on_branch(source, destination, kind);
    }
    bool fuse_window(Address, u32) const { return false; }
    void retire_batch(u32) const {}
  };
  struct SinksMany {
    const std::vector<TraceSink*>* sinks;
    void instruction(Address pc) const {
      for (auto* sink : *sinks) sink->on_instruction(pc);
    }
    void branch(Address source, Address destination, isa::BranchKind kind) const {
      for (auto* sink : *sinks) sink->on_branch(source, destination, kind);
    }
    bool fuse_window(Address, u32) const { return false; }
    void retire_batch(u32) const {}
  };

  // Cycle-cost providers for execute(): the reference path evaluates the
  // model's opcode switch per instruction; the fast path charges the costs
  // baked into the decoded slot at predecode time (same model, same values).
  struct ModelCost {
    const isa::CycleModel* model;
    const isa::Instruction* in;
    Cycles operator()(bool taken) const { return model->cost(*in, taken); }
  };
  struct SlotCost {
    Cycles taken;
    Cycles not_taken;
    Cycles operator()(bool t) const { return t ? taken : not_taken; }
  };
  /// Fused-window cost provider: charges nothing per instruction, because
  /// the superblock loop adds the run's precomputed cycle sum once at the
  /// end of the window (FuseRun::cycles). The `cycles_ += 0` in execute()
  /// folds away, leaving the shared execute() as a pure semantic step.
  struct ZeroCost {
    Cycles operator()(bool) const { return 0; }
  };

  template <typename Sinks, typename Cost>
  void execute(const isa::Instruction& instr, Address pc, const Sinks& sinks,
               const Cost& cost);
  /// Retire `n` fusible slots starting at `slot`/`pc` as one superblock:
  /// a reduced interpreter over exactly the isa::fusible_in_superblock()
  /// subset (pure ALU/move/compare), semantically identical to execute()
  /// per op but with the PC register written once at the window end instead
  /// of per instruction. The caller has already done the sink decision,
  /// batched trace tick, and cycle charge for the whole window.
  void execute_fused_window(const isa::DecodedSlot* slot, u32 n, Address pc);
  template <typename Sinks>
  void branch_to(Address source, Address destination, isa::BranchKind kind,
                 const Sinks& sinks);
  template <typename Sinks>
  std::optional<HaltReason> step_with(const Sinks& sinks);
  template <typename Sinks>
  std::optional<HaltReason> step_fast_with(const Sinks& sinks);
  template <typename Sinks>
  HaltReason run_fast_with(u64 max_instructions, const Sinks& sinks);

  /// True when every fetch in the attached image's range is provably
  /// permitted for the current world (no MPU/security/executability fault
  /// possible), so per-instruction fetch checks can be skipped. Cached
  /// against the NS-MPU generation counter.
  bool fast_fetch_clear();
  bool validate_fetch_window() const;

  void set_nz(Word result);
  Word alu_add(Word a, Word b, bool set_flags);
  Word alu_sub(Word a, Word b, bool set_flags);
  Word read_operand(isa::Reg r, Address pc) const;

  static constexpr u64 kNoGeneration = ~0ull;

  mem::Bus* bus_;
  isa::CycleModel cycle_model_;
  CpuState state_;
  Cycles cycles_ = 0;
  u64 instructions_ = 0;
  u64 oracle_dispatches_ = 0;
  u64 fused_retired_ = 0;
  std::optional<mem::Fault> fault_;
  std::vector<TraceSink*> sinks_;
  SvcHandler svc_handler_;
  bool halted_ = false;

  const isa::DecodedImage* image_ = nullptr;
  u64 fetch_generation_seen_ = kNoGeneration;
  mem::WorldSide fetch_world_seen_ = mem::WorldSide::NonSecure;
  bool fetch_clear_ = false;
};

}  // namespace raptrack::cpu
