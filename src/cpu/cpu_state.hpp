// Architectural state of the simulated core.
#pragma once

#include <array>

#include "common/types.hpp"
#include "isa/registers.hpp"
#include "mem/memory_map.hpp"

namespace raptrack::cpu {

struct CpuState {
  std::array<Word, isa::kNumRegs> regs{};
  isa::Flags flags;
  mem::WorldSide world = mem::WorldSide::NonSecure;

  Word reg(isa::Reg r) const { return regs[isa::index(r)]; }
  void set_reg(isa::Reg r, Word value) { regs[isa::index(r)] = value; }

  Word pc() const { return reg(isa::Reg::PC); }
  void set_pc(Word value) { set_reg(isa::Reg::PC, value); }
  Word sp() const { return reg(isa::Reg::SP); }
  void set_sp(Word value) { set_reg(isa::Reg::SP, value); }
  Word lr() const { return reg(isa::Reg::LR); }
  void set_lr(Word value) { set_reg(isa::Reg::LR, value); }
};

}  // namespace raptrack::cpu
