#include "cpu/executor.hpp"

#include <bit>

#include "common/bits.hpp"
#include "common/hex.hpp"

namespace raptrack::cpu {

using isa::BranchKind;
using isa::Instruction;
using isa::Op;
using isa::Reg;

void Executor::reset(Address entry, Address stack_top) {
  state_ = CpuState{};
  state_.set_pc(entry);
  state_.set_sp(stack_top);
  state_.set_lr(0xffff'ffff);  // sentinel: returning to reset LR is a bug
  cycles_ = 0;
  instructions_ = 0;
  fault_ = std::nullopt;
  halted_ = false;
}

void Executor::set_nz(Word result) {
  state_.flags.n = (result >> 31) != 0;
  state_.flags.z = result == 0;
}

Word Executor::alu_add(Word a, Word b, bool set_flags) {
  const u64 wide = static_cast<u64>(a) + b;
  const Word result = static_cast<Word>(wide);
  if (set_flags) {
    set_nz(result);
    state_.flags.c = (wide >> 32) != 0;
    state_.flags.v = (~(a ^ b) & (a ^ result) & 0x8000'0000u) != 0;
  }
  return result;
}

Word Executor::alu_sub(Word a, Word b, bool set_flags) {
  const Word result = a - b;
  if (set_flags) {
    set_nz(result);
    state_.flags.c = a >= b;  // no borrow
    state_.flags.v = ((a ^ b) & (a ^ result) & 0x8000'0000u) != 0;
  }
  return result;
}

Word Executor::read_operand(Reg r, Address pc) const {
  // Reading PC as an operand yields the next instruction's address,
  // matching the Thumb convention closely enough for address arithmetic.
  if (r == Reg::PC) return pc + 4;
  return state_.reg(r);
}

void Executor::branch_to(Address source, Address destination, BranchKind kind) {
  if (destination % 4 != 0) {
    throw mem::FaultException({mem::FaultType::Unaligned, destination, source,
                               "branch to unaligned address " + hex32(destination)});
  }
  state_.set_pc(destination);
  for (auto* sink : sinks_) sink->on_branch(source, destination, kind);
}

std::optional<HaltReason> Executor::step() {
  if (halted_) return HaltReason::Halted;
  const Address pc = state_.pc();
  try {
    const u32 word = bus_->fetch(pc, state_.world);
    const auto decoded = isa::decode(word);
    if (!decoded) {
      throw mem::FaultException({mem::FaultType::UndefinedInstr, pc, pc,
                                 "undefined instruction word " + hex32(word)});
    }
    for (auto* sink : sinks_) sink->on_instruction(pc);
    ++instructions_;
    execute(*decoded, pc);
    if (halted_) {
      return decoded->op == Op::BKPT ? HaltReason::Breakpoint : HaltReason::Halted;
    }
    return std::nullopt;
  } catch (const mem::FaultException& e) {
    fault_ = e.fault();
    halted_ = true;
    return HaltReason::Fault;
  }
}

HaltReason Executor::run(u64 max_instructions) {
  const u64 limit = instructions_ + max_instructions;
  while (instructions_ < limit) {
    if (const auto reason = step()) return *reason;
  }
  halted_ = true;
  return HaltReason::InstrBudget;
}

void Executor::execute(const Instruction& in, Address pc) {
  const auto& world = state_.world;
  Address next = pc + 4;
  bool taken = true;  // for cycle accounting of BCC

  switch (in.op) {
    case Op::NOP:
      break;
    case Op::HLT:
    case Op::BKPT:
      halted_ = true;
      break;
    case Op::SVC: {
      if (!svc_handler_) {
        throw mem::FaultException({mem::FaultType::UndefinedInstr, pc, pc,
                                   "SVC with no Secure World installed"});
      }
      // Cost of the trap itself is in the cycle model; the handler returns
      // the cycles spent inside the Secure World (context switch + service).
      state_.set_pc(next);  // handler may override (e.g. partial-report resume)
      cycles_ += svc_handler_(static_cast<u8>(in.imm), state_);
      cycles_ += cycle_model_.cost(in, true);
      return;  // PC already set
    }

    case Op::MOVI:
      state_.set_reg(in.rd, static_cast<Word>(in.imm));
      break;
    case Op::MOVT:
      state_.set_reg(in.rd, (state_.reg(in.rd) & 0xffffu) |
                                (static_cast<Word>(in.imm) << 16));
      break;
    case Op::MOV: {
      const Word value = read_operand(in.rm, pc);
      state_.set_reg(in.rd, value);
      if (in.set_flags) set_nz(value);
      break;
    }
    case Op::MVN: {
      const Word value = ~read_operand(in.rm, pc);
      state_.set_reg(in.rd, value);
      if (in.set_flags) set_nz(value);
      break;
    }

    case Op::ADD:
    case Op::ADDI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::ADD ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_add(a, b, in.set_flags));
      break;
    }
    case Op::SUB:
    case Op::SUBI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::SUB ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_sub(a, b, in.set_flags));
      break;
    }
    case Op::RSB:
    case Op::RSBI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::RSB ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_sub(b, a, in.set_flags));
      break;
    }
    case Op::MUL: {
      const Word result = read_operand(in.rn, pc) * read_operand(in.rm, pc);
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }
    case Op::UDIV: {
      const Word d = read_operand(in.rm, pc);
      // ARM semantics: divide by zero yields 0 (no trap by default).
      state_.set_reg(in.rd, d == 0 ? 0 : read_operand(in.rn, pc) / d);
      break;
    }
    case Op::SDIV: {
      const i32 d = static_cast<i32>(read_operand(in.rm, pc));
      const i32 n = static_cast<i32>(read_operand(in.rn, pc));
      i32 q = 0;
      if (d != 0) {
        // INT_MIN / -1 overflows; ARM wraps to INT_MIN.
        q = (n == INT32_MIN && d == -1) ? INT32_MIN : n / d;
      }
      state_.set_reg(in.rd, static_cast<Word>(q));
      break;
    }

    case Op::AND: case Op::ANDI:
    case Op::ORR: case Op::ORRI:
    case Op::EOR: case Op::EORI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = (isa::format_of(in.op) == isa::Format::AluReg)
                         ? read_operand(in.rm, pc)
                         : static_cast<Word>(in.imm);
      Word result = 0;
      switch (in.op) {
        case Op::AND: case Op::ANDI: result = a & b; break;
        case Op::ORR: case Op::ORRI: result = a | b; break;
        default: result = a ^ b; break;
      }
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }

    case Op::LSL: case Op::LSLI:
    case Op::LSR: case Op::LSRI:
    case Op::ASR: case Op::ASRI: {
      const Word a = read_operand(in.rn, pc);
      const Word amount_raw = (isa::format_of(in.op) == isa::Format::AluReg)
                                  ? read_operand(in.rm, pc)
                                  : static_cast<Word>(in.imm);
      const Word amount = amount_raw & 0xff;  // ARM uses bottom byte
      Word result;
      if (in.op == Op::LSL || in.op == Op::LSLI) {
        result = amount >= 32 ? 0 : (a << amount);
      } else if (in.op == Op::LSR || in.op == Op::LSRI) {
        result = amount >= 32 ? 0 : (amount == 0 ? a : a >> amount);
      } else {
        const i32 sa = static_cast<i32>(a);
        result = static_cast<Word>(amount >= 32 ? (sa >> 31) : (sa >> amount));
      }
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }

    case Op::CMP: case Op::CMPI:
      alu_sub(read_operand(in.rn, pc),
              in.op == Op::CMP ? read_operand(in.rm, pc) : static_cast<Word>(in.imm),
              true);
      break;
    case Op::CMN:
      alu_add(read_operand(in.rn, pc), read_operand(in.rm, pc), true);
      break;
    case Op::TST: case Op::TSTI:
      set_nz(read_operand(in.rn, pc) &
             (in.op == Op::TST ? read_operand(in.rm, pc) : static_cast<Word>(in.imm)));
      break;

    case Op::LDR: case Op::LDRB: case Op::LDRH: {
      const Address addr = read_operand(in.rn, pc) + static_cast<Word>(in.imm);
      const u32 size = in.op == Op::LDR ? 4 : (in.op == Op::LDRH ? 2 : 1);
      const Word value = bus_->read(addr, size, world, pc);
      if (in.rd == Reg::PC) {
        cycles_ += cycle_model_.cost(in, true);
        branch_to(pc, value, BranchKind::IndirectJump);
        return;
      }
      state_.set_reg(in.rd, value);
      break;
    }
    case Op::LDRR: {
      const Address addr =
          read_operand(in.rn, pc) + (read_operand(in.rm, pc) << in.shift);
      const Word value = bus_->read(addr, 4, world, pc);
      if (in.rd == Reg::PC) {
        cycles_ += cycle_model_.cost(in, true);
        branch_to(pc, value, BranchKind::IndirectJump);
        return;
      }
      state_.set_reg(in.rd, value);
      break;
    }
    case Op::STR: case Op::STRB: case Op::STRH: {
      const Address addr = read_operand(in.rn, pc) + static_cast<Word>(in.imm);
      const u32 size = in.op == Op::STR ? 4 : (in.op == Op::STRH ? 2 : 1);
      bus_->write(addr, read_operand(in.rd, pc), size, world, pc);
      break;
    }
    case Op::STRR: {
      const Address addr =
          read_operand(in.rn, pc) + (read_operand(in.rm, pc) << in.shift);
      bus_->write(addr, read_operand(in.rd, pc), 4, world, pc);
      break;
    }

    case Op::PUSH: {
      const unsigned count = static_cast<unsigned>(std::popcount(in.reg_list));
      Address sp = state_.sp() - 4 * count;
      state_.set_sp(sp);
      for (unsigned i = 0; i < 16; ++i) {
        if (!bit(in.reg_list, i)) continue;
        bus_->write(sp, state_.reg(static_cast<Reg>(i)), 4, world, pc);
        sp += 4;
      }
      break;
    }
    case Op::POP: {
      Address sp = state_.sp();
      Word new_pc = 0;
      bool branches = false;
      for (unsigned i = 0; i < 16; ++i) {
        if (!bit(in.reg_list, i)) continue;
        const Word value = bus_->read(sp, 4, world, pc);
        sp += 4;
        if (i == 15) {
          new_pc = value;
          branches = true;
        } else {
          state_.set_reg(static_cast<Reg>(i), value);
        }
      }
      state_.set_sp(sp);
      if (branches) {
        cycles_ += cycle_model_.cost(in, true);
        branch_to(pc, new_pc, BranchKind::Return);
        return;
      }
      break;
    }

    case Op::B:
      cycles_ += cycle_model_.cost(in, true);
      branch_to(pc, isa::branch_target(in, pc), BranchKind::Direct);
      return;
    case Op::BL:
      state_.set_lr(pc + 4);
      cycles_ += cycle_model_.cost(in, true);
      branch_to(pc, isa::branch_target(in, pc), BranchKind::DirectCall);
      return;
    case Op::BCC:
      taken = isa::evaluate(in.cond, state_.flags);
      cycles_ += cycle_model_.cost(in, taken);
      if (taken) {
        branch_to(pc, isa::branch_target(in, pc), BranchKind::Conditional);
        return;
      }
      state_.set_pc(next);
      return;
    case Op::BX: {
      const Word target = read_operand(in.rm, pc);
      cycles_ += cycle_model_.cost(in, true);
      branch_to(pc, target,
                in.rm == Reg::LR ? BranchKind::Return : BranchKind::IndirectJump);
      return;
    }
    case Op::BLX: {
      const Word target = read_operand(in.rm, pc);
      state_.set_lr(pc + 4);
      cycles_ += cycle_model_.cost(in, true);
      branch_to(pc, target, BranchKind::IndirectCall);
      return;
    }
  }

  cycles_ += cycle_model_.cost(in, taken);
  state_.set_pc(next);
}

}  // namespace raptrack::cpu
