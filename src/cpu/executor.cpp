#include "cpu/executor.hpp"

#include <bit>

#include "common/bits.hpp"
#include "common/hex.hpp"
#include "trace/trace_fabric.hpp"

namespace raptrack::cpu {

using isa::BranchKind;
using isa::Instruction;
using isa::Op;
using isa::Reg;
using isa::SlotKind;

namespace {

/// Sink policy bound to the concrete (final) TraceFabric: the per-retired
/// calls compile to direct, inlinable calls into the MTB/DWT models instead
/// of virtual dispatch through TraceSink. Fused superblocks are allowed
/// whenever the DWT proves the window inert (no comparator can fire at any
/// pc inside it) — the per-instruction fabric effect then reduces to the
/// MTB activation countdown, applied in one batched retirement.
struct SinksFabric {
  trace::TraceFabric* fabric;
  void instruction(Address pc) const { fabric->on_instruction(pc); }
  void branch(Address source, Address destination, BranchKind kind) const {
    fabric->on_branch(source, destination, kind);
  }
  bool fuse_window(Address pc, u32 len) const {
    return fabric->dwt().inert_window(pc, pc + 4 * len);
  }
  void retire_batch(u32 n) const { fabric->mtb().on_instructions_retired(n); }
};

/// The simulator's default two-sink configuration (trace fabric + oracle
/// tracer), bound concretely. The oracle only records branches — its
/// on_instruction is the TraceSink no-op — so fused windows (which contain
/// no branches by construction) need nothing from it and the fabric rules
/// above carry over unchanged.
struct SinksFabricOracle {
  trace::TraceFabric* fabric;
  trace::OracleTracer* oracle;
  void instruction(Address pc) const { fabric->on_instruction(pc); }
  void branch(Address source, Address destination, BranchKind kind) const {
    fabric->on_branch(source, destination, kind);
    oracle->on_branch(source, destination, kind);
  }
  bool fuse_window(Address pc, u32 len) const {
    return fabric->dwt().inert_window(pc, pc + 4 * len);
  }
  void retire_batch(u32 n) const { fabric->mtb().on_instructions_retired(n); }
};

}  // namespace

void Executor::reset(Address entry, Address stack_top) {
  state_ = CpuState{};
  state_.set_pc(entry);
  state_.set_sp(stack_top);
  state_.set_lr(0xffff'ffff);  // sentinel: returning to reset LR is a bug
  cycles_ = 0;
  instructions_ = 0;
  oracle_dispatches_ = 0;
  fused_retired_ = 0;
  fault_ = std::nullopt;
  halted_ = false;
  fetch_generation_seen_ = kNoGeneration;
}

void Executor::set_nz(Word result) {
  state_.flags.n = (result >> 31) != 0;
  state_.flags.z = result == 0;
}

Word Executor::alu_add(Word a, Word b, bool set_flags) {
  const u64 wide = static_cast<u64>(a) + b;
  const Word result = static_cast<Word>(wide);
  if (set_flags) {
    set_nz(result);
    state_.flags.c = (wide >> 32) != 0;
    state_.flags.v = (~(a ^ b) & (a ^ result) & 0x8000'0000u) != 0;
  }
  return result;
}

Word Executor::alu_sub(Word a, Word b, bool set_flags) {
  const Word result = a - b;
  if (set_flags) {
    set_nz(result);
    state_.flags.c = a >= b;  // no borrow
    state_.flags.v = ((a ^ b) & (a ^ result) & 0x8000'0000u) != 0;
  }
  return result;
}

Word Executor::read_operand(Reg r, Address pc) const {
  // Reading PC as an operand yields the next instruction's address,
  // matching the Thumb convention closely enough for address arithmetic.
  if (r == Reg::PC) return pc + 4;
  return state_.reg(r);
}

template <typename Sinks>
void Executor::branch_to(Address source, Address destination, BranchKind kind,
                         const Sinks& sinks) {
  if (destination % 4 != 0) {
    throw mem::FaultException({mem::FaultType::Unaligned, destination, source,
                               "branch to unaligned address " + hex32(destination)});
  }
  state_.set_pc(destination);
  sinks.branch(source, destination, kind);
}

template <typename Sinks>
std::optional<HaltReason> Executor::step_with(const Sinks& sinks) {
  if (halted_) return HaltReason::Halted;
  const Address pc = state_.pc();
  try {
    const u32 word = bus_->fetch(pc, state_.world);
    const auto decoded = isa::decode(word);
    if (!decoded) {
      throw mem::FaultException({mem::FaultType::UndefinedInstr, pc, pc,
                                 "undefined instruction word " + hex32(word)});
    }
    sinks.instruction(pc);
    ++instructions_;
    ++oracle_dispatches_;
    execute(*decoded, pc, sinks, ModelCost{&cycle_model_, &*decoded});
    if (halted_) {
      return decoded->op == Op::BKPT ? HaltReason::Breakpoint : HaltReason::Halted;
    }
    return std::nullopt;
  } catch (const mem::FaultException& e) {
    fault_ = e.fault();
    halted_ = true;
    return HaltReason::Fault;
  }
}

std::optional<HaltReason> Executor::step() {
  return step_with(SinksMany{&sinks_});
}

HaltReason Executor::run(u64 max_instructions) {
  const u64 limit = instructions_ + max_instructions;
  while (instructions_ < limit) {
    if (const auto reason = step()) return *reason;
  }
  halted_ = true;
  return HaltReason::InstrBudget;
}

// ---------------------------------------------------------------------------
// Fast path: execute from the predecoded image, skipping per-instruction
// fetch/decode and dispatching sinks without the vector walk. Every exit to
// slower ground routes through step_with(), the reference oracle, so the two
// paths cannot diverge.
// ---------------------------------------------------------------------------

bool Executor::validate_fetch_window() const {
  // The whole image range must sit inside one backed, executable region
  // visible to the current world...
  const Address base = image_->base();
  const Address end = image_->end();
  const auto* region = bus_->map().find(base);
  if (!region || region->mmio || !region->executable) return false;
  if (end > region->end()) return false;
  if (region->security == mem::Security::Secure &&
      state_.world == mem::WorldSide::NonSecure) {
    return false;
  }
  // ...and, for the Non-Secure world, every slot address must pass the
  // NS-MPU execute check (region boundaries can split the window, so each
  // address is queried; this runs once per MPU generation, not per fetch).
  if (state_.world == mem::WorldSide::NonSecure) {
    const auto& mpu = bus_->ns_mpu();
    for (Address addr = base; addr < end; addr += 4) {
      if (!mpu.allows(addr, mem::AccessType::Execute)) return false;
    }
  }
  return true;
}

bool Executor::fast_fetch_clear() {
  const u64 generation = bus_->ns_mpu().generation();
  if (generation == fetch_generation_seen_ && state_.world == fetch_world_seen_) {
    return fetch_clear_;
  }
  fetch_generation_seen_ = generation;
  fetch_world_seen_ = state_.world;
  fetch_clear_ = validate_fetch_window();
  return fetch_clear_;
}

template <typename Sinks>
std::optional<HaltReason> Executor::step_fast_with(const Sinks& sinks) {
  if (halted_) return HaltReason::Halted;
  const Address pc = state_.pc();
  if (image_ != nullptr && (pc & 3u) == 0 && image_->contains(pc) &&
      fast_fetch_clear()) {
    const isa::DecodedSlot& slot = image_->slot(pc);
    if (slot.kind == SlotKind::Valid) {
      sinks.instruction(pc);
      ++instructions_;
      try {
        execute(slot.instr, pc, sinks,
                SlotCost{slot.cost_taken, slot.cost_not_taken});
      } catch (const mem::FaultException& e) {
        fault_ = e.fault();
        halted_ = true;
        return HaltReason::Fault;
      }
      if (halted_) {
        return slot.instr.op == Op::BKPT ? HaltReason::Breakpoint
                                         : HaltReason::Halted;
      }
      return std::nullopt;
    }
    if (slot.kind == SlotKind::Undefined) {
      // Same fault step() raises on a decode failure, without paying for a
      // throw through the hot loop (and, like step(), before any sink or
      // retired-instruction accounting fires).
      fault_ = mem::Fault{mem::FaultType::UndefinedInstr, pc, pc,
                          "undefined instruction word " + hex32(slot.raw)};
      halted_ = true;
      return HaltReason::Fault;
    }
    // SlotKind::Undecoded: a write invalidated this line — decode per step.
  }
  return step_with(sinks);
}

std::optional<HaltReason> Executor::step_fast() {
  return step_fast_with(SinksMany{&sinks_});
}

template <typename Sinks>
HaltReason Executor::run_fast_with(u64 max_instructions, const Sinks& sinks) {
  // Same semantics as the step_fast_with() loop, restructured so the hot
  // Valid-slot iteration chases a raw slot pointer (no std::optional
  // traffic, no pc->slot index math on fallthrough) and the fault handler
  // lives outside the loop. Every per-instruction check is still performed:
  // the MPU generation, the world, and slot validity can all change from
  // inside execute() (SVC handlers, self-modifying stores), so the inner
  // loop re-reads slot->kind and fast_fetch_clear() every iteration.
  const u64 limit = instructions_ + max_instructions;
  try {
    while (instructions_ < limit) {
      if (halted_) return HaltReason::Halted;
      Address pc = state_.pc();
      if (image_ != nullptr && (pc & 3u) == 0 && image_->contains(pc) &&
          fast_fetch_clear()) {
        const Address base = image_->base();
        const Address end = image_->end();
        const isa::DecodedSlot* const slots = image_->slots_begin();
        const isa::FuseRun* const fuse = image_->fuse_begin();
        const size_t slot_count = (end - base) >> 2;
        const isa::DecodedSlot* slot = slots + ((pc - base) >> 2);
        if (slot->kind == SlotKind::Valid) {
          // Chase consecutive Valid slots without re-deriving the slot from
          // the pc: fallthrough is a pointer bump, an in-image branch is one
          // index computation, and anything else bounces to the outer loop
          // (which also handles Undefined/invalidated slots we run into).
          while (true) {
            // Superblock fusion: a straight-line run of >= 2 fusible slots
            // headed here retires as one unit — one sink decision, one
            // batched MTB tick, one cycle charge — when the sink policy
            // proves no per-instruction effect can fire inside the window.
            // Fusible instructions cannot branch, touch the bus, trap, or
            // fault (see isa::fusible_in_superblock), so nothing inside the
            // window can halt the core, change the MPU generation or the
            // world, invalidate slots, or emit trace packets: the per-slot
            // re-checks are provably redundant across the window and resume
            // at its end. The shared execute() still steps every
            // instruction (ZeroCost + SinksNone specialization), so the
            // architectural state transition is the oracle's, verbatim.
            if (fuse != nullptr) {
              const size_t head = static_cast<size_t>(slot - slots);
              u32 n = fuse[head].len;
              if (n >= 2 && sinks.fuse_window(pc, n)) {
                const u64 room = limit - instructions_;
                if (room < n) n = static_cast<u32>(room);
                sinks.retire_batch(n);
                execute_fused_window(slot, n, pc);
                slot += n;
                instructions_ += n;
                fused_retired_ += n;
                const size_t tail = head + n;
                cycles_ += fuse[head].cycles -
                           (tail < slot_count ? fuse[tail].cycles : 0);
                pc += 4 * n;  // == state_.pc(): each op fell through
                if (instructions_ >= limit || pc >= end ||
                    slot->kind != SlotKind::Valid) {
                  break;
                }
                continue;
              }
            }
            sinks.instruction(pc);
            ++instructions_;
            execute(slot->instr, pc, sinks,
                    SlotCost{slot->cost_taken, slot->cost_not_taken});
            if (halted_) {
              return slot->instr.op == Op::BKPT ? HaltReason::Breakpoint
                                                : HaltReason::Halted;
            }
            const Address next = state_.pc();
            if (next == pc + 4 && next < end) {
              ++slot;  // fallthrough: the dominant straight-line case
            } else if ((next & 3u) == 0 && next >= base && next < end) {
              slot = slots + ((next - base) >> 2);
            } else {
              break;  // left the image — the outer loop re-evaluates
            }
            pc = next;
            if (instructions_ >= limit || !fast_fetch_clear() ||
                slot->kind != SlotKind::Valid) {
              break;
            }
          }
          continue;
        }
        if (slot->kind == SlotKind::Undefined) {
          // Same fault step() raises on a decode failure (and, like step(),
          // before any sink or retired-instruction accounting fires).
          fault_ = mem::Fault{mem::FaultType::UndefinedInstr, pc, pc,
                              "undefined instruction word " + hex32(slot->raw)};
          halted_ = true;
          return HaltReason::Fault;
        }
        // SlotKind::Undecoded: invalidated line — decode per step below.
      }
      if (const auto reason = step_with(sinks)) return *reason;
    }
  } catch (const mem::FaultException& e) {
    fault_ = e.fault();
    halted_ = true;
    return HaltReason::Fault;
  }
  halted_ = true;
  return HaltReason::InstrBudget;
}

HaltReason Executor::run_fast(u64 max_instructions) {
  if (image_ == nullptr) return run(max_instructions);
  switch (sinks_.size()) {
    case 0: return run_fast_with(max_instructions, SinksNone{});
    case 1:
      // The single sink is almost always the trace fabric; TraceFabric is
      // final, so binding it by concrete type devirtualizes (and inlines)
      // the MTB tick + DWT comparator walk into the hot loop. With the
      // fabric bound concretely the MTB may also defer packet emission for
      // the duration of the run (DeferScope): no other sink consumes
      // branches, and every external read of MTB state flushes first, so
      // the stored wire bytes are identical to eager emission.
      if (auto* fabric = dynamic_cast<trace::TraceFabric*>(sinks_[0])) {
        trace::Mtb::DeferScope defer(fabric->mtb());
        return run_fast_with(max_instructions, SinksFabric{fabric});
      }
      return run_fast_with(max_instructions, SinksOne{sinks_[0]});
    case 2:
      // The simulator default: fabric + ground-truth oracle tracer. The
      // oracle keeps its own (eager) event vector, so MTB deferral is still
      // private to the fabric.
      if (auto* fabric = dynamic_cast<trace::TraceFabric*>(sinks_[0])) {
        if (auto* oracle = dynamic_cast<trace::OracleTracer*>(sinks_[1])) {
          trace::Mtb::DeferScope defer(fabric->mtb());
          return run_fast_with(max_instructions, SinksFabricOracle{fabric, oracle});
        }
      }
      return run_fast_with(max_instructions, SinksMany{&sinks_});
    default: return run_fast_with(max_instructions, SinksMany{&sinks_});
  }
}

template <typename Sinks, typename Cost>
void Executor::execute(const Instruction& in, Address pc, const Sinks& sinks,
                       const Cost& cost) {
  const auto& world = state_.world;
  Address next = pc + 4;
  bool taken = true;  // for cycle accounting of BCC

  switch (in.op) {
    case Op::NOP:
      break;
    case Op::HLT:
    case Op::BKPT:
      halted_ = true;
      break;
    case Op::SVC: {
      if (!svc_handler_) {
        throw mem::FaultException({mem::FaultType::UndefinedInstr, pc, pc,
                                   "SVC with no Secure World installed"});
      }
      // Cost of the trap itself is in the cycle model; the handler returns
      // the cycles spent inside the Secure World (context switch + service).
      state_.set_pc(next);  // handler may override (e.g. partial-report resume)
      cycles_ += svc_handler_(static_cast<u8>(in.imm), state_);
      cycles_ += cost(true);
      return;  // PC already set
    }

    case Op::MOVI:
      state_.set_reg(in.rd, static_cast<Word>(in.imm));
      break;
    case Op::MOVT:
      state_.set_reg(in.rd, (state_.reg(in.rd) & 0xffffu) |
                                (static_cast<Word>(in.imm) << 16));
      break;
    case Op::MOV: {
      const Word value = read_operand(in.rm, pc);
      state_.set_reg(in.rd, value);
      if (in.set_flags) set_nz(value);
      break;
    }
    case Op::MVN: {
      const Word value = ~read_operand(in.rm, pc);
      state_.set_reg(in.rd, value);
      if (in.set_flags) set_nz(value);
      break;
    }

    case Op::ADD:
    case Op::ADDI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::ADD ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_add(a, b, in.set_flags));
      break;
    }
    case Op::SUB:
    case Op::SUBI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::SUB ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_sub(a, b, in.set_flags));
      break;
    }
    case Op::RSB:
    case Op::RSBI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = in.op == Op::RSB ? read_operand(in.rm, pc)
                                      : static_cast<Word>(in.imm);
      state_.set_reg(in.rd, alu_sub(b, a, in.set_flags));
      break;
    }
    case Op::MUL: {
      const Word result = read_operand(in.rn, pc) * read_operand(in.rm, pc);
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }
    case Op::UDIV: {
      const Word d = read_operand(in.rm, pc);
      // ARM semantics: divide by zero yields 0 (no trap by default).
      state_.set_reg(in.rd, d == 0 ? 0 : read_operand(in.rn, pc) / d);
      break;
    }
    case Op::SDIV: {
      const i32 d = static_cast<i32>(read_operand(in.rm, pc));
      const i32 n = static_cast<i32>(read_operand(in.rn, pc));
      i32 q = 0;
      if (d != 0) {
        // INT_MIN / -1 overflows; ARM wraps to INT_MIN.
        q = (n == INT32_MIN && d == -1) ? INT32_MIN : n / d;
      }
      state_.set_reg(in.rd, static_cast<Word>(q));
      break;
    }

    case Op::AND: case Op::ANDI:
    case Op::ORR: case Op::ORRI:
    case Op::EOR: case Op::EORI: {
      const Word a = read_operand(in.rn, pc);
      const Word b = (isa::format_of(in.op) == isa::Format::AluReg)
                         ? read_operand(in.rm, pc)
                         : static_cast<Word>(in.imm);
      Word result = 0;
      switch (in.op) {
        case Op::AND: case Op::ANDI: result = a & b; break;
        case Op::ORR: case Op::ORRI: result = a | b; break;
        default: result = a ^ b; break;
      }
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }

    case Op::LSL: case Op::LSLI:
    case Op::LSR: case Op::LSRI:
    case Op::ASR: case Op::ASRI: {
      const Word a = read_operand(in.rn, pc);
      const Word amount_raw = (isa::format_of(in.op) == isa::Format::AluReg)
                                  ? read_operand(in.rm, pc)
                                  : static_cast<Word>(in.imm);
      const Word amount = amount_raw & 0xff;  // ARM uses bottom byte
      Word result;
      if (in.op == Op::LSL || in.op == Op::LSLI) {
        result = amount >= 32 ? 0 : (a << amount);
      } else if (in.op == Op::LSR || in.op == Op::LSRI) {
        result = amount >= 32 ? 0 : (amount == 0 ? a : a >> amount);
      } else {
        const i32 sa = static_cast<i32>(a);
        result = static_cast<Word>(amount >= 32 ? (sa >> 31) : (sa >> amount));
      }
      state_.set_reg(in.rd, result);
      if (in.set_flags) set_nz(result);
      break;
    }

    case Op::CMP: case Op::CMPI:
      alu_sub(read_operand(in.rn, pc),
              in.op == Op::CMP ? read_operand(in.rm, pc) : static_cast<Word>(in.imm),
              true);
      break;
    case Op::CMN:
      alu_add(read_operand(in.rn, pc), read_operand(in.rm, pc), true);
      break;
    case Op::TST: case Op::TSTI:
      set_nz(read_operand(in.rn, pc) &
             (in.op == Op::TST ? read_operand(in.rm, pc) : static_cast<Word>(in.imm)));
      break;

    case Op::LDR: case Op::LDRB: case Op::LDRH: {
      const Address addr = read_operand(in.rn, pc) + static_cast<Word>(in.imm);
      const u32 size = in.op == Op::LDR ? 4 : (in.op == Op::LDRH ? 2 : 1);
      const Word value = bus_->read(addr, size, world, pc);
      if (in.rd == Reg::PC) {
        cycles_ += cost(true);
        branch_to(pc, value, BranchKind::IndirectJump, sinks);
        return;
      }
      state_.set_reg(in.rd, value);
      break;
    }
    case Op::LDRR: {
      const Address addr =
          read_operand(in.rn, pc) + (read_operand(in.rm, pc) << in.shift);
      const Word value = bus_->read(addr, 4, world, pc);
      if (in.rd == Reg::PC) {
        cycles_ += cost(true);
        branch_to(pc, value, BranchKind::IndirectJump, sinks);
        return;
      }
      state_.set_reg(in.rd, value);
      break;
    }
    case Op::STR: case Op::STRB: case Op::STRH: {
      const Address addr = read_operand(in.rn, pc) + static_cast<Word>(in.imm);
      const u32 size = in.op == Op::STR ? 4 : (in.op == Op::STRH ? 2 : 1);
      bus_->write(addr, read_operand(in.rd, pc), size, world, pc);
      break;
    }
    case Op::STRR: {
      const Address addr =
          read_operand(in.rn, pc) + (read_operand(in.rm, pc) << in.shift);
      bus_->write(addr, read_operand(in.rd, pc), 4, world, pc);
      break;
    }

    case Op::PUSH: {
      const unsigned count = static_cast<unsigned>(std::popcount(in.reg_list));
      Address sp = state_.sp() - 4 * count;
      state_.set_sp(sp);
      for (unsigned i = 0; i < 16; ++i) {
        if (!bit(in.reg_list, i)) continue;
        bus_->write(sp, state_.reg(static_cast<Reg>(i)), 4, world, pc);
        sp += 4;
      }
      break;
    }
    case Op::POP: {
      Address sp = state_.sp();
      Word new_pc = 0;
      bool branches = false;
      for (unsigned i = 0; i < 16; ++i) {
        if (!bit(in.reg_list, i)) continue;
        const Word value = bus_->read(sp, 4, world, pc);
        sp += 4;
        if (i == 15) {
          new_pc = value;
          branches = true;
        } else {
          state_.set_reg(static_cast<Reg>(i), value);
        }
      }
      state_.set_sp(sp);
      if (branches) {
        cycles_ += cost(true);
        branch_to(pc, new_pc, BranchKind::Return, sinks);
        return;
      }
      break;
    }

    case Op::B:
      cycles_ += cost(true);
      branch_to(pc, isa::branch_target(in, pc), BranchKind::Direct, sinks);
      return;
    case Op::BL:
      state_.set_lr(pc + 4);
      cycles_ += cost(true);
      branch_to(pc, isa::branch_target(in, pc), BranchKind::DirectCall, sinks);
      return;
    case Op::BCC:
      taken = isa::evaluate(in.cond, state_.flags);
      cycles_ += cost(taken);
      if (taken) {
        branch_to(pc, isa::branch_target(in, pc), BranchKind::Conditional, sinks);
        return;
      }
      state_.set_pc(next);
      return;
    case Op::BX: {
      const Word target = read_operand(in.rm, pc);
      cycles_ += cost(true);
      branch_to(pc, target,
                in.rm == Reg::LR ? BranchKind::Return : BranchKind::IndirectJump,
                sinks);
      return;
    }
    case Op::BLX: {
      const Word target = read_operand(in.rm, pc);
      state_.set_lr(pc + 4);
      cycles_ += cost(true);
      branch_to(pc, target, BranchKind::IndirectCall, sinks);
      return;
    }
  }

  cycles_ += cost(taken);
  state_.set_pc(next);
}

void Executor::execute_fused_window(const isa::DecodedSlot* slot, u32 n,
                                    Address pc) {
  // Reduced interpreter over the fusible_in_superblock() subset. Every case
  // reproduces the corresponding execute() case verbatim (same ALU helpers,
  // same flag-update order, same rd == PC tolerance: a write to regs[PC]
  // here is dead, overwritten by the set_pc below exactly as execute()'s
  // per-op set_pc(next) overwrites it). Kept small so the compiler emits a
  // dense jump table and keeps the loop state in registers — this loop is
  // why superblock fusion is faster than per-slot dispatch, not just
  // equal to it (see bench_throughput's fast-vs-slot ablation).
  for (u32 k = 0; k < n; ++k, ++slot, pc += 4) {
    const Instruction& in = slot->instr;
    switch (in.op) {
      case Op::NOP:
        break;
      case Op::MOVI:
        state_.set_reg(in.rd, static_cast<Word>(in.imm));
        break;
      case Op::MOVT:
        state_.set_reg(in.rd, (state_.reg(in.rd) & 0xffffu) |
                                  (static_cast<Word>(in.imm) << 16));
        break;
      case Op::MOV: {
        const Word value = read_operand(in.rm, pc);
        state_.set_reg(in.rd, value);
        if (in.set_flags) set_nz(value);
        break;
      }
      case Op::MVN: {
        const Word value = ~read_operand(in.rm, pc);
        state_.set_reg(in.rd, value);
        if (in.set_flags) set_nz(value);
        break;
      }
      case Op::ADD:
      case Op::ADDI: {
        const Word a = read_operand(in.rn, pc);
        const Word b = in.op == Op::ADD ? read_operand(in.rm, pc)
                                        : static_cast<Word>(in.imm);
        state_.set_reg(in.rd, alu_add(a, b, in.set_flags));
        break;
      }
      case Op::SUB:
      case Op::SUBI: {
        const Word a = read_operand(in.rn, pc);
        const Word b = in.op == Op::SUB ? read_operand(in.rm, pc)
                                        : static_cast<Word>(in.imm);
        state_.set_reg(in.rd, alu_sub(a, b, in.set_flags));
        break;
      }
      case Op::RSB:
      case Op::RSBI: {
        const Word a = read_operand(in.rn, pc);
        const Word b = in.op == Op::RSB ? read_operand(in.rm, pc)
                                        : static_cast<Word>(in.imm);
        state_.set_reg(in.rd, alu_sub(b, a, in.set_flags));
        break;
      }
      case Op::MUL: {
        const Word result = read_operand(in.rn, pc) * read_operand(in.rm, pc);
        state_.set_reg(in.rd, result);
        if (in.set_flags) set_nz(result);
        break;
      }
      case Op::UDIV: {
        const Word d = read_operand(in.rm, pc);
        state_.set_reg(in.rd, d == 0 ? 0 : read_operand(in.rn, pc) / d);
        break;
      }
      case Op::SDIV: {
        const i32 d = static_cast<i32>(read_operand(in.rm, pc));
        const i32 nn = static_cast<i32>(read_operand(in.rn, pc));
        i32 q = 0;
        if (d != 0) {
          q = (nn == INT32_MIN && d == -1) ? INT32_MIN : nn / d;
        }
        state_.set_reg(in.rd, static_cast<Word>(q));
        break;
      }
      case Op::AND: case Op::ANDI:
      case Op::ORR: case Op::ORRI:
      case Op::EOR: case Op::EORI: {
        const Word a = read_operand(in.rn, pc);
        const Word b = (isa::format_of(in.op) == isa::Format::AluReg)
                           ? read_operand(in.rm, pc)
                           : static_cast<Word>(in.imm);
        Word result = 0;
        switch (in.op) {
          case Op::AND: case Op::ANDI: result = a & b; break;
          case Op::ORR: case Op::ORRI: result = a | b; break;
          default: result = a ^ b; break;
        }
        state_.set_reg(in.rd, result);
        if (in.set_flags) set_nz(result);
        break;
      }
      case Op::LSL: case Op::LSLI:
      case Op::LSR: case Op::LSRI:
      case Op::ASR: case Op::ASRI: {
        const Word a = read_operand(in.rn, pc);
        const Word amount_raw = (isa::format_of(in.op) == isa::Format::AluReg)
                                    ? read_operand(in.rm, pc)
                                    : static_cast<Word>(in.imm);
        const Word amount = amount_raw & 0xff;
        Word result;
        if (in.op == Op::LSL || in.op == Op::LSLI) {
          result = amount >= 32 ? 0 : (a << amount);
        } else if (in.op == Op::LSR || in.op == Op::LSRI) {
          result = amount >= 32 ? 0 : (amount == 0 ? a : a >> amount);
        } else {
          const i32 sa = static_cast<i32>(a);
          result =
              static_cast<Word>(amount >= 32 ? (sa >> 31) : (sa >> amount));
        }
        state_.set_reg(in.rd, result);
        if (in.set_flags) set_nz(result);
        break;
      }
      case Op::CMP: case Op::CMPI:
        alu_sub(read_operand(in.rn, pc),
                in.op == Op::CMP ? read_operand(in.rm, pc)
                                 : static_cast<Word>(in.imm),
                true);
        break;
      case Op::CMN:
        alu_add(read_operand(in.rn, pc), read_operand(in.rm, pc), true);
        break;
      case Op::TST: case Op::TSTI:
        set_nz(read_operand(in.rn, pc) &
               (in.op == Op::TST ? read_operand(in.rm, pc)
                                 : static_cast<Word>(in.imm)));
        break;
      default:
        // Unreachable while fuse metadata only covers fusible slots; fall
        // back to the oracle step so a future drift is a slowdown, not a
        // divergence. (execute() sets the pc; the set_pc below re-sets it
        // to the same fallthrough address.)
        execute(in, pc, SinksNone{}, ZeroCost{});
        break;
    }
  }
  state_.set_pc(pc);
}

}  // namespace raptrack::cpu
