#include "tz/secure_monitor.hpp"

#include "common/hex.hpp"
#include "mem/fault.hpp"
#include "obs/metrics.hpp"

namespace raptrack::tz {

void SecureMonitor::register_service(Service code, Handler handler) {
  services_[static_cast<u8>(code)] = std::move(handler);
}

Cycles SecureMonitor::handle(u8 code, cpu::CpuState& state) {
  const auto it = services_.find(code);
  if (it == services_.end()) {
    // An SVC to an unregistered service is a Non-Secure bug/attack: fault.
    throw mem::FaultException({mem::FaultType::UndefinedInstr, state.pc(),
                               state.pc(),
                               "SVC to unknown service " + std::to_string(code)});
  }
  ++world_switches_;
  if constexpr (obs::kEnabled) {
    static obs::Counter svc_calls = obs::registry().counter("tz.svc_calls");
    svc_calls.inc();
  }
  const auto previous_world = state.world;
  state.world = mem::WorldSide::Secure;
  u32 dispatch_count = 1;
  if (fault_.dispatch) dispatch_count = fault_.dispatch(code, state);
  Cycles service_cycles = 0;
  for (u32 i = 0; i < dispatch_count; ++i) {
    service_cycles += it->second(state);
  }
  if (fault_.after) fault_.after(code, state);
  state.world = previous_world;
  return costs_.secure_log_round_trip(service_cycles);
}

}  // namespace raptrack::tz
