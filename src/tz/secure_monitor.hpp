// Secure-World monitor: the SVC gateway between the Non-Secure application
// and RoT services (CFA engine services, TRACES-style logging, loop-condition
// recording). The paper's Secure World is trusted, fixed code; here it is
// native C++ whose execution time is charged through the CostModel rather
// than simulated instruction-by-instruction.
#pragma once

#include <functional>
#include <map>

#include "common/types.hpp"
#include "cpu/executor.hpp"
#include "tz/cost_model.hpp"

namespace raptrack::tz {

/// Well-known SVC service codes.
enum class Service : u8 {
  kRapLogLoopCondition = 0x01,  ///< RAP-Track loop optimization (§IV-D)
  kTracesLogBranch = 0x10,      ///< TRACES-style instrumented branch logging
  kTracesLogLoopCondition = 0x11,
};

class SecureMonitor {
 public:
  explicit SecureMonitor(CostModel costs = {}) : costs_(costs) {}

  const CostModel& costs() const { return costs_; }

  /// Register a service. The handler runs with Secure privileges (raw memory
  /// access) and returns the cycle cost of its *service body*; the monitor
  /// adds the world-switch round trip on top.
  using Handler = std::function<Cycles(cpu::CpuState& state)>;
  void register_service(Service code, Handler handler);

  /// Entry point wired into the Executor as its SVC handler.
  Cycles handle(u8 code, cpu::CpuState& state);

  /// Fault-injection shim modelling a glitched SVC gateway (see src/fault).
  /// `dispatch` runs before the service and returns how many times the
  /// handler executes (0 = the call is swallowed, 1 = normal, n > 1 =
  /// glitched re-entry); it may also perturb CPU state. `after` runs once
  /// the service returns (e.g. to undo a perturbation). The world-switch is
  /// still counted and charged: the gateway was entered either way.
  struct GatewayFault {
    std::function<u32(u8 code, cpu::CpuState& state)> dispatch;
    std::function<void(u8 code, cpu::CpuState& state)> after;
  };
  void set_gateway_fault(GatewayFault fault) { fault_ = std::move(fault); }
  void clear_gateway_fault() { fault_ = {}; }

  /// Number of Non-Secure -> Secure transitions serviced (a headline metric:
  /// RAP-Track's point is to make this near zero).
  u64 world_switches() const { return world_switches_; }
  void reset_counters() { world_switches_ = 0; }

 private:
  CostModel costs_;
  std::map<u8, Handler> services_;
  GatewayFault fault_;
  u64 world_switches_ = 0;
};

}  // namespace raptrack::tz
