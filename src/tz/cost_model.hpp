// Cycle costs of TrustZone world transitions and Secure-World (RoT)
// services. These are the knobs that determine the runtime gap between
// instrumentation-based CFA (one Non-Secure -> Secure round trip per logged
// branch) and RAP-Track (hardware-parallel MTB logging, no switches).
// Values approximate an ARMv8-M core with software crypto; the paper's
// comparisons depend on their relative magnitudes, which hold across any
// realistic setting (world switch + logging ≈ 100 cycles vs a 3-cycle
// trampoline branch).
#pragma once

#include "common/types.hpp"

namespace raptrack::tz {

struct CostModel {
  Cycles ns_to_secure = 35;      ///< NS->S transition (stacking, SG veneer)
  Cycles secure_to_ns = 30;      ///< S->NS return (state clear, unstacking)
  Cycles log_append = 25;        ///< append one CF_Log entry (bounds + write)
  Cycles rle_update = 15;        ///< extra work when run-length compressing
  Cycles cond_bit_append = 18;   ///< append a packed taken/not-taken bit
  Cycles loop_cond_log = 22;     ///< record a loop-condition value
  Cycles hash_per_byte = 12;     ///< software SHA-256 on an MCU-class core
  Cycles sign_fixed = 2600;      ///< HMAC finalization + report framing
  Cycles transmit_per_byte = 80; ///< report transmission to Vrf (serial-class)
  Cycles report_overhead = 1200; ///< per-report protocol overhead

  /// Full cost of one instrumented-branch logging call, excluding the SVC
  /// trap itself (charged by the CPU cycle model).
  Cycles secure_log_round_trip(Cycles service) const {
    return ns_to_secure + service + secure_to_ns;
  }
};

}  // namespace raptrack::tz
