#include "mem/mpu.hpp"

#include "common/hex.hpp"

namespace raptrack::mem {

void Mpu::configure(unsigned index, const MpuRegion& region) {
  if (index >= kNumRegions) throw Error("Mpu: region index out of range");
  if (locked_) throw Error("Mpu: bank is locked");
  if (region.limit < region.base) throw Error("Mpu: limit below base");
  regions_[index] = region;
  ++generation_;
  resolve();
}

void Mpu::clear(unsigned index) {
  if (index >= kNumRegions) throw Error("Mpu: region index out of range");
  if (locked_) throw Error("Mpu: bank is locked");
  regions_[index] = MpuRegion{};
  ++generation_;
  resolve();
}

void Mpu::reset() {
  regions_ = {};
  locked_ = false;
  ++generation_;
  resolve();
}

void Mpu::resolve() {
  num_active_ = 0;
  for (unsigned i = 0; i < kNumRegions; ++i) {
    if (regions_[i].enabled) active_[num_active_++] = static_cast<u8>(i);
  }
}

void Mpu::deny(Address addr, AccessType type, Address pc) const {
  throw FaultException({FaultType::MpuViolation, addr, pc,
                        std::string("MPU denies ") +
                            (type == AccessType::Read ? "read" :
                             type == AccessType::Write ? "write" : "exec") +
                            " at " + hex32(addr)});
}

}  // namespace raptrack::mem
