#include "mem/mpu.hpp"

#include "common/hex.hpp"

namespace raptrack::mem {

void Mpu::configure(unsigned index, const MpuRegion& region) {
  if (index >= kNumRegions) throw Error("Mpu: region index out of range");
  if (locked_) throw Error("Mpu: bank is locked");
  if (region.limit < region.base) throw Error("Mpu: limit below base");
  regions_[index] = region;
}

void Mpu::clear(unsigned index) {
  if (index >= kNumRegions) throw Error("Mpu: region index out of range");
  if (locked_) throw Error("Mpu: bank is locked");
  regions_[index] = MpuRegion{};
}

void Mpu::reset() {
  regions_ = {};
  locked_ = false;
}

void Mpu::check(Address addr, AccessType type, Address pc) const {
  for (const auto& region : regions_) {
    if (!region.contains(addr)) continue;
    const bool allowed = (type == AccessType::Read && region.allow_read) ||
                         (type == AccessType::Write && region.allow_write) ||
                         (type == AccessType::Execute && region.allow_execute);
    if (!allowed) {
      throw FaultException({FaultType::MpuViolation, addr, pc,
                            std::string("MPU denies ") +
                                (type == AccessType::Read ? "read" :
                                 type == AccessType::Write ? "write" : "exec") +
                                " at " + hex32(addr)});
    }
    return;  // first matching region decides
  }
}

}  // namespace raptrack::mem
