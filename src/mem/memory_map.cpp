#include "mem/memory_map.hpp"

#include <algorithm>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "common/hex.hpp"

namespace raptrack::mem {

void* detail_map_zeroed(std::size_t bytes) {
#if defined(__unix__) || defined(__APPLE__)
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
#else
  return std::calloc(bytes, 1);
#endif
}

void detail_unmap(void* p, std::size_t bytes) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  ::munmap(p, bytes);
#else
  (void)bytes;
  std::free(p);
#endif
}

namespace {

/// Process-wide cache of zeroed mmap blocks, keyed by exact byte size. Every
/// cached block has been MADV_DONTNEED'd, so its pages read as zero-fill on
/// next touch — acquire() can hand it out with the same semantics as a fresh
/// anonymous mapping, minus the VMA create/destroy syscalls. The pool is
/// shared by every Machine in the process, so concurrent provers (e.g. a
/// parallel test harness) hit it from multiple threads; the mutex guards the
/// free list only — region construction/teardown, never the access hot path.
struct BlockPool {
  static constexpr std::size_t kMaxCachedBytes = 64u << 20;

  struct Entry {
    std::size_t bytes;
    void* p;
  };
  std::mutex mu;
  std::vector<Entry> free_blocks;
  std::size_t cached_bytes = 0;

  ~BlockPool() {
    for (const Entry& e : free_blocks) detail_unmap(e.p, e.bytes);
  }
};

BlockPool& block_pool() {
  static BlockPool pool;
  return pool;
}

}  // namespace

void* detail_pool_acquire(std::size_t bytes) {
  BlockPool& pool = block_pool();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    for (auto it = pool.free_blocks.rbegin(); it != pool.free_blocks.rend();
         ++it) {
      if (it->bytes != bytes) continue;
      void* p = it->p;
      pool.free_blocks.erase(std::next(it).base());
      pool.cached_bytes -= bytes;
      return p;
    }
  }
  return detail_map_zeroed(bytes);
}

void detail_pool_release(void* p, std::size_t bytes) noexcept {
#if defined(__linux__)
  BlockPool& pool = block_pool();
  std::unique_lock<std::mutex> lock(pool.mu);
  if (pool.cached_bytes + bytes <= BlockPool::kMaxCachedBytes) {
    lock.unlock();  // madvise is slow; only the list needs the lock
    if (::madvise(p, bytes, MADV_DONTNEED) == 0) {
      lock.lock();
      if (pool.cached_bytes + bytes <= BlockPool::kMaxCachedBytes) {
        pool.free_blocks.push_back({bytes, p});
        pool.cached_bytes += bytes;
        return;
      }
    }
  }
#endif
  detail_unmap(p, bytes);
}

const char* fault_name(FaultType type) {
  switch (type) {
    case FaultType::None: return "none";
    case FaultType::BusError: return "bus-error";
    case FaultType::MpuViolation: return "mpu-violation";
    case FaultType::SecurityFault: return "security-fault";
    case FaultType::Unaligned: return "unaligned";
    case FaultType::UndefinedInstr: return "undefined-instruction";
    case FaultType::DivideByZero: return "divide-by-zero";
  }
  return "?";
}

MemoryMap MemoryMap::make_default() {
  MemoryMap map;
  map.add_region({.name = "ns-flash",
                  .base = MapLayout::kNsFlashBase,
                  .size = MapLayout::kNsFlashSize,
                  .security = Security::NonSecure,
                  .writable = true,  // until the CFA engine locks it via MPU
                  .executable = true,
                  .backing = Backing(MapLayout::kNsFlashSize)});
  map.add_region({.name = "ns-ram",
                  .base = MapLayout::kNsRamBase,
                  .size = MapLayout::kNsRamSize,
                  .security = Security::NonSecure,
                  .writable = true,
                  .executable = false,
                  .backing = Backing(MapLayout::kNsRamSize)});
  map.add_region({.name = "s-flash",
                  .base = MapLayout::kSFlashBase,
                  .size = MapLayout::kSFlashSize,
                  .security = Security::Secure,
                  .writable = false,
                  .executable = true,
                  .backing = Backing(MapLayout::kSFlashSize)});
  map.add_region({.name = "s-ram",
                  .base = MapLayout::kSRamBase,
                  .size = MapLayout::kSRamSize,
                  .security = Security::Secure,
                  .writable = true,
                  .executable = false,
                  .backing = Backing(MapLayout::kSRamSize)});
  map.add_region({.name = "mtb-sram",
                  .base = MapLayout::kMtbSramBase,
                  .size = MapLayout::kMtbSramSize,
                  .security = Security::Secure,
                  .writable = true,
                  .executable = false,
                  .backing = Backing(MapLayout::kMtbSramSize)});
  return map;
}

Region& MemoryMap::add_region(Region region) {
  for (const auto& existing : regions_) {
    if (region.base < existing.end() && existing.base < region.end()) {
      throw Error("MemoryMap: region '" + region.name + "' overlaps '" +
                  existing.name + "'");
    }
  }
  regions_.push_back(std::move(region));
  hot_region_ = nullptr;  // regions_ may have reallocated
  ++epoch_;
  return regions_.back();
}

Region& MemoryMap::add_mmio(const std::string& name, Address base, u32 size,
                            Security security, MmioHandler handler) {
  Region region;
  region.name = name;
  region.base = base;
  region.size = size;
  region.security = security;
  region.writable = true;
  region.executable = false;
  region.mmio = std::make_shared<MmioHandler>(std::move(handler));
  return add_region(std::move(region));
}

const Region* MemoryMap::find(Address addr) const {
  if (hot_region_ != nullptr && hot_region_->contains(addr)) return hot_region_;
  for (const auto& region : regions_) {
    if (region.contains(addr)) {
      hot_region_ = &region;
      return &region;
    }
  }
  return nullptr;
}

Region* MemoryMap::find(Address addr) {
  return const_cast<Region*>(static_cast<const MemoryMap*>(this)->find(addr));
}

namespace {
[[noreturn]] void bus_error(Address addr, Address pc, const std::string& what) {
  throw FaultException(
      {FaultType::BusError, addr, pc, what + " at " + hex32(addr)});
}
}  // namespace

u8 MemoryMap::raw_read8(Address addr) const {
  const Region* region = find(addr);
  if (!region || region->mmio) bus_error(addr, 0, "raw_read8 unmapped");
  return region->backing[addr - region->base];
}

void MemoryMap::raw_write8(Address addr, u8 value) {
  Region* region = find(addr);
  if (!region || region->mmio) bus_error(addr, 0, "raw_write8 unmapped");
  region->backing[addr - region->base] = value;
  notify_write(addr, 1);
}

u32 MemoryMap::raw_read32(Address addr) const {
  // Single lookup for the word-in-one-region common case (MTB packet
  // traffic); byte-wise fallback keeps the cross-region edge case identical.
  const Region* region = find(addr);
  if (region && !region->mmio && addr + 4 <= region->end()) {
    const u8* at = region->backing.data() + (addr - region->base);
    return static_cast<u32>(at[0]) | static_cast<u32>(at[1]) << 8 |
           static_cast<u32>(at[2]) << 16 | static_cast<u32>(at[3]) << 24;
  }
  u32 value = 0;
  for (u32 i = 0; i < 4; ++i) value |= static_cast<u32>(raw_read8(addr + i)) << (8 * i);
  return value;
}

void MemoryMap::raw_write32(Address addr, u32 value) {
  Region* region = find(addr);
  if (region && !region->mmio && addr + 4 <= region->end()) {
    u8* at = region->backing.data() + (addr - region->base);
    at[0] = static_cast<u8>(value);
    at[1] = static_cast<u8>(value >> 8);
    at[2] = static_cast<u8>(value >> 16);
    at[3] = static_cast<u8>(value >> 24);
    notify_write(addr, 4);
    return;
  }
  for (u32 i = 0; i < 4; ++i) raw_write8(addr + i, static_cast<u8>(value >> (8 * i)));
}

void MemoryMap::check_security(const Region& region, Address addr,
                               WorldSide world, AccessType type,
                               Address pc) const {
  if (region.security == Security::Secure && world == WorldSide::NonSecure) {
    throw FaultException({FaultType::SecurityFault, addr, pc,
                          "NS " + std::string(type == AccessType::Read ? "read" :
                                              type == AccessType::Write ? "write" : "exec") +
                              " of secure region '" + region.name + "'"});
  }
}

u32 MemoryMap::read(Address addr, u32 size, WorldSide world, Address pc) {
  if (size != 1 && size != 2 && size != 4) throw Error("MemoryMap::read: bad size");
  if (addr % size != 0) {
    throw FaultException({FaultType::Unaligned, addr, pc, "unaligned read"});
  }
  Region* region = find(addr);
  if (!region || addr + size > region->end()) bus_error(addr, pc, "read");
  check_security(*region, addr, world, AccessType::Read, pc);
  if (region->mmio) return region->mmio->read(addr - region->base, size);
  const u8* at = region->backing.data() + (addr - region->base);
  if (size == 4) {
    // Aligned in-region word (the dominant LDR/STR/stack case): assemble in
    // one go instead of the byte loop. Same little-endian result.
    return static_cast<u32>(at[0]) | static_cast<u32>(at[1]) << 8 |
           static_cast<u32>(at[2]) << 16 | static_cast<u32>(at[3]) << 24;
  }
  u32 value = 0;
  for (u32 i = 0; i < size; ++i) value |= static_cast<u32>(at[i]) << (8 * i);
  return value;
}

void MemoryMap::write(Address addr, u32 value, u32 size, WorldSide world,
                      Address pc) {
  if (size != 1 && size != 2 && size != 4) throw Error("MemoryMap::write: bad size");
  if (addr % size != 0) {
    throw FaultException({FaultType::Unaligned, addr, pc, "unaligned write"});
  }
  Region* region = find(addr);
  if (!region || addr + size > region->end()) bus_error(addr, pc, "write");
  check_security(*region, addr, world, AccessType::Write, pc);
  if (!region->writable) {
    throw FaultException({FaultType::MpuViolation, addr, pc,
                          "write to read-only region '" + region->name + "'"});
  }
  if (region->mmio) {
    region->mmio->write(addr - region->base, value, size);
    return;
  }
  u8* at = region->backing.data() + (addr - region->base);
  if (size == 4) {
    at[0] = static_cast<u8>(value);
    at[1] = static_cast<u8>(value >> 8);
    at[2] = static_cast<u8>(value >> 16);
    at[3] = static_cast<u8>(value >> 24);
  } else {
    for (u32 i = 0; i < size; ++i) at[i] = static_cast<u8>(value >> (8 * i));
  }
  notify_write(addr, size);
}

void MemoryMap::check_execute(Address addr, WorldSide world) const {
  const Region* region = find(addr);
  if (!region) bus_error(addr, addr, "fetch");
  check_security(*region, addr, world, AccessType::Execute, addr);
  if (!region->executable) {
    throw FaultException({FaultType::MpuViolation, addr, addr,
                          "fetch from non-executable region '" + region->name + "'"});
  }
}

void MemoryMap::load(Address base, std::span<const u8> bytes) {
  Region* region = find(base);
  if (!region || region->mmio || base + bytes.size() > region->end()) {
    throw Error("MemoryMap::load: image does not fit a backed region at " +
                hex32(base));
  }
  std::copy(bytes.begin(), bytes.end(), region->backing.begin() + (base - region->base));
  notify_write(base, static_cast<u32>(bytes.size()));
}

int MemoryMap::add_write_watch(Address base, u32 size, WriteWatch watch) {
  const int token = next_watch_token_++;
  watches_.push_back({token, base, base + size, std::move(watch)});
  ++epoch_;
  return token;
}

void MemoryMap::remove_write_watch(int token) {
  std::erase_if(watches_, [token](const Watch& w) { return w.token == token; });
  ++epoch_;
}

std::vector<u8> MemoryMap::dump(Address base, u32 size) const {
  const Region* region = find(base);
  if (!region || region->mmio || base + size > region->end()) {
    throw Error("MemoryMap::dump: range not backed at " + hex32(base));
  }
  const auto first = region->backing.begin() + (base - region->base);
  return std::vector<u8>(first, first + size);
}

}  // namespace raptrack::mem
