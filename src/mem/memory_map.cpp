#include "mem/memory_map.hpp"

#include <algorithm>

#include "common/hex.hpp"

namespace raptrack::mem {

const char* fault_name(FaultType type) {
  switch (type) {
    case FaultType::None: return "none";
    case FaultType::BusError: return "bus-error";
    case FaultType::MpuViolation: return "mpu-violation";
    case FaultType::SecurityFault: return "security-fault";
    case FaultType::Unaligned: return "unaligned";
    case FaultType::UndefinedInstr: return "undefined-instruction";
    case FaultType::DivideByZero: return "divide-by-zero";
  }
  return "?";
}

MemoryMap MemoryMap::make_default() {
  MemoryMap map;
  map.add_region({.name = "ns-flash",
                  .base = MapLayout::kNsFlashBase,
                  .size = MapLayout::kNsFlashSize,
                  .security = Security::NonSecure,
                  .writable = true,  // until the CFA engine locks it via MPU
                  .executable = true,
                  .backing = std::vector<u8>(MapLayout::kNsFlashSize, 0)});
  map.add_region({.name = "ns-ram",
                  .base = MapLayout::kNsRamBase,
                  .size = MapLayout::kNsRamSize,
                  .security = Security::NonSecure,
                  .writable = true,
                  .executable = false,
                  .backing = std::vector<u8>(MapLayout::kNsRamSize, 0)});
  map.add_region({.name = "s-flash",
                  .base = MapLayout::kSFlashBase,
                  .size = MapLayout::kSFlashSize,
                  .security = Security::Secure,
                  .writable = false,
                  .executable = true,
                  .backing = std::vector<u8>(MapLayout::kSFlashSize, 0)});
  map.add_region({.name = "s-ram",
                  .base = MapLayout::kSRamBase,
                  .size = MapLayout::kSRamSize,
                  .security = Security::Secure,
                  .writable = true,
                  .executable = false,
                  .backing = std::vector<u8>(MapLayout::kSRamSize, 0)});
  map.add_region({.name = "mtb-sram",
                  .base = MapLayout::kMtbSramBase,
                  .size = MapLayout::kMtbSramSize,
                  .security = Security::Secure,
                  .writable = true,
                  .executable = false,
                  .backing = std::vector<u8>(MapLayout::kMtbSramSize, 0)});
  return map;
}

Region& MemoryMap::add_region(Region region) {
  for (const auto& existing : regions_) {
    if (region.base < existing.end() && existing.base < region.end()) {
      throw Error("MemoryMap: region '" + region.name + "' overlaps '" +
                  existing.name + "'");
    }
  }
  regions_.push_back(std::move(region));
  return regions_.back();
}

Region& MemoryMap::add_mmio(const std::string& name, Address base, u32 size,
                            Security security, MmioHandler handler) {
  Region region;
  region.name = name;
  region.base = base;
  region.size = size;
  region.security = security;
  region.writable = true;
  region.executable = false;
  region.mmio = std::make_shared<MmioHandler>(std::move(handler));
  return add_region(std::move(region));
}

const Region* MemoryMap::find(Address addr) const {
  for (const auto& region : regions_) {
    if (region.contains(addr)) return &region;
  }
  return nullptr;
}

Region* MemoryMap::find(Address addr) {
  return const_cast<Region*>(static_cast<const MemoryMap*>(this)->find(addr));
}

namespace {
[[noreturn]] void bus_error(Address addr, Address pc, const std::string& what) {
  throw FaultException(
      {FaultType::BusError, addr, pc, what + " at " + hex32(addr)});
}
}  // namespace

u8 MemoryMap::raw_read8(Address addr) const {
  const Region* region = find(addr);
  if (!region || region->mmio) bus_error(addr, 0, "raw_read8 unmapped");
  return region->backing[addr - region->base];
}

void MemoryMap::raw_write8(Address addr, u8 value) {
  Region* region = find(addr);
  if (!region || region->mmio) bus_error(addr, 0, "raw_write8 unmapped");
  region->backing[addr - region->base] = value;
}

u32 MemoryMap::raw_read32(Address addr) const {
  u32 value = 0;
  for (u32 i = 0; i < 4; ++i) value |= static_cast<u32>(raw_read8(addr + i)) << (8 * i);
  return value;
}

void MemoryMap::raw_write32(Address addr, u32 value) {
  for (u32 i = 0; i < 4; ++i) raw_write8(addr + i, static_cast<u8>(value >> (8 * i)));
}

void MemoryMap::check_security(const Region& region, Address addr,
                               WorldSide world, AccessType type,
                               Address pc) const {
  if (region.security == Security::Secure && world == WorldSide::NonSecure) {
    throw FaultException({FaultType::SecurityFault, addr, pc,
                          "NS " + std::string(type == AccessType::Read ? "read" :
                                              type == AccessType::Write ? "write" : "exec") +
                              " of secure region '" + region.name + "'"});
  }
}

u32 MemoryMap::read(Address addr, u32 size, WorldSide world, Address pc) {
  if (size != 1 && size != 2 && size != 4) throw Error("MemoryMap::read: bad size");
  if (addr % size != 0) {
    throw FaultException({FaultType::Unaligned, addr, pc, "unaligned read"});
  }
  Region* region = find(addr);
  if (!region || addr + size > region->end()) bus_error(addr, pc, "read");
  check_security(*region, addr, world, AccessType::Read, pc);
  if (region->mmio) return region->mmio->read(addr - region->base, size);
  u32 value = 0;
  for (u32 i = 0; i < size; ++i) {
    value |= static_cast<u32>(region->backing[addr - region->base + i]) << (8 * i);
  }
  return value;
}

void MemoryMap::write(Address addr, u32 value, u32 size, WorldSide world,
                      Address pc) {
  if (size != 1 && size != 2 && size != 4) throw Error("MemoryMap::write: bad size");
  if (addr % size != 0) {
    throw FaultException({FaultType::Unaligned, addr, pc, "unaligned write"});
  }
  Region* region = find(addr);
  if (!region || addr + size > region->end()) bus_error(addr, pc, "write");
  check_security(*region, addr, world, AccessType::Write, pc);
  if (!region->writable) {
    throw FaultException({FaultType::MpuViolation, addr, pc,
                          "write to read-only region '" + region->name + "'"});
  }
  if (region->mmio) {
    region->mmio->write(addr - region->base, value, size);
    return;
  }
  for (u32 i = 0; i < size; ++i) {
    region->backing[addr - region->base + i] = static_cast<u8>(value >> (8 * i));
  }
}

void MemoryMap::check_execute(Address addr, WorldSide world) const {
  const Region* region = find(addr);
  if (!region) bus_error(addr, addr, "fetch");
  check_security(*region, addr, world, AccessType::Execute, addr);
  if (!region->executable) {
    throw FaultException({FaultType::MpuViolation, addr, addr,
                          "fetch from non-executable region '" + region->name + "'"});
  }
}

void MemoryMap::load(Address base, std::span<const u8> bytes) {
  Region* region = find(base);
  if (!region || region->mmio || base + bytes.size() > region->end()) {
    throw Error("MemoryMap::load: image does not fit a backed region at " +
                hex32(base));
  }
  std::copy(bytes.begin(), bytes.end(), region->backing.begin() + (base - region->base));
}

std::vector<u8> MemoryMap::dump(Address base, u32 size) const {
  const Region* region = find(base);
  if (!region || region->mmio || base + size > region->end()) {
    throw Error("MemoryMap::dump: range not backed at " + hex32(base));
  }
  const auto first = region->backing.begin() + (base - region->base);
  return std::vector<u8>(first, first + size);
}

}  // namespace raptrack::mem
