// The CPU-facing bus: stacks the NS-MPU permission check on top of the
// memory map's security attribution. The Secure world bypasses the NS-MPU
// (it has its own bank, which the RoT never restricts against itself).
#pragma once

#include "common/types.hpp"
#include "mem/memory_map.hpp"
#include "mem/mpu.hpp"

namespace raptrack::mem {

class Bus {
 public:
  explicit Bus(MemoryMap& map) : map_(&map) {}

  Mpu& ns_mpu() { return ns_mpu_; }
  const Mpu& ns_mpu() const { return ns_mpu_; }
  MemoryMap& map() { return *map_; }
  const MemoryMap& map() const { return *map_; }

  u32 read(Address addr, u32 size, WorldSide world, Address pc) {
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Read, pc);
    return map_->read(addr, size, world, pc);
  }

  void write(Address addr, u32 value, u32 size, WorldSide world, Address pc) {
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Write, pc);
    map_->write(addr, value, size, world, pc);
  }

  u32 fetch(Address addr, WorldSide world) {
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Execute, addr);
    map_->check_execute(addr, world);
    return map_->read(addr, 4, world, addr);
  }

 private:
  MemoryMap* map_;
  Mpu ns_mpu_;
};

}  // namespace raptrack::mem
