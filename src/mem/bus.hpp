// The CPU-facing bus: stacks the NS-MPU permission check on top of the
// memory map's security attribution. The Secure world bypasses the NS-MPU
// (it has its own bank, which the RoT never restricts against itself).
#pragma once

#include "common/types.hpp"
#include "mem/memory_map.hpp"
#include "mem/mpu.hpp"

namespace raptrack::mem {

class Bus {
 public:
  explicit Bus(MemoryMap& map) : map_(&map) {}

  Mpu& ns_mpu() { return ns_mpu_; }
  const Mpu& ns_mpu() const { return ns_mpu_; }
  MemoryMap& map() { return *map_; }
  const MemoryMap& map() const { return *map_; }

  u32 read(Address addr, u32 size, WorldSide world, Address pc) {
    for (auto& w : read_windows_) {
      if (hit(w, addr, size, world)) {
        const u8* at = w.mem + (addr - w.base);
        if (size == 4) {
          return static_cast<u32>(at[0]) | static_cast<u32>(at[1]) << 8 |
                 static_cast<u32>(at[2]) << 16 | static_cast<u32>(at[3]) << 24;
        }
        if (size == 2) return static_cast<u32>(at[0]) | static_cast<u32>(at[1]) << 8;
        return at[0];
      }
    }
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Read, pc);
    const u32 value = map_->read(addr, size, world, pc);
    install(read_windows_[read_victim_], addr, world, AccessType::Read);
    read_victim_ ^= 1;
    return value;
  }

  void write(Address addr, u32 value, u32 size, WorldSide world, Address pc) {
    for (auto& w : write_windows_) {
      if (hit(w, addr, size, world)) {
        // Windows never cover watched spans (install() shrinks around
        // them), so skipping notify_write() here is sound.
        u8* at = w.mem + (addr - w.base);
        at[0] = static_cast<u8>(value);
        if (size >= 2) at[1] = static_cast<u8>(value >> 8);
        if (size == 4) {
          at[2] = static_cast<u8>(value >> 16);
          at[3] = static_cast<u8>(value >> 24);
        }
        return;
      }
    }
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Write, pc);
    map_->write(addr, value, size, world, pc);
    install(write_windows_[write_victim_], addr, world, AccessType::Write);
    write_victim_ ^= 1;
  }

  u32 fetch(Address addr, WorldSide world) {
    if (world == WorldSide::NonSecure) ns_mpu_.check(addr, AccessType::Execute, addr);
    map_->check_execute(addr, world);
    return map_->read(addr, 4, world, addr);
  }

  /// Write-invalidation hook for a predecoded code range: any store into
  /// [base, base+size) — through this bus *or* via RoT/injector-level raw
  /// writes (e.g. the MTB SEU injector writing near code) — fires `watch` so
  /// the predecode cache can drop the affected lines. Delegates to the
  /// MemoryMap, which sees every mutation path. Returns a removal token.
  int watch_writes(Address base, u32 size, MemoryMap::WriteWatch watch) {
    return map_->add_write_watch(base, size, std::move(watch));
  }
  void unwatch_writes(int token) { map_->remove_write_watch(token); }

 private:
  /// A pre-validated span of backed memory for one access type and world:
  /// every naturally-aligned 1/2/4-byte access inside it is known to pass
  /// the security, MPU, writability, and watch checks, so it can go straight
  /// to the backing store. Validity is tied to the MPU generation and the map's
  /// structural epoch; any configuration change invalidates on next use.
  /// A faulting access can never enter a window (windows only cover spans
  /// whose checks succeed), so fault behavior is byte-identical.
  struct DataWindow {
    Address base = 1;  ///< base > end - 4 encodes "empty"
    Address end = 0;   ///< exclusive
    u8* mem = nullptr;
    WorldSide world = WorldSide::NonSecure;
    u64 mpu_generation = 0;
    u64 map_epoch = 0;
  };

  bool hit(const DataWindow& w, Address addr, u32 size, WorldSide world) const {
    return addr >= w.base && addr + size <= w.end && (addr & (size - 1)) == 0 &&
           world == w.world && w.mpu_generation == ns_mpu_.generation() &&
           w.map_epoch == map_->epoch();
  }

  /// Install a window around `addr` after a checked access there succeeded.
  /// Declines (leaving the slow path in charge) for MMIO, read-only writes,
  /// Secure regions seen from the Non-Secure world, and watched spans.
  /// Kept out of line: it runs only on misses, and inlining it into the
  /// executor's hot loop (via read/write) costs more in register pressure
  /// than it saves.
  __attribute__((noinline, cold)) void install(DataWindow& w, Address addr,
                                               WorldSide world,
                                               AccessType type) {
    Region* region = map_->find(addr);
    if (!region || region->mmio) return;
    if (type == AccessType::Write && !region->writable) return;
    if (region->security == Security::Secure && world == WorldSide::NonSecure) {
      return;  // unreachable after a successful checked access; be safe
    }
    Address lo = region->base;
    Address hi = region->end() - 1;
    if (world == WorldSide::NonSecure) {
      Address mpu_lo = 0, mpu_hi = 0;
      if (!ns_mpu_.allowed_window(addr, type, &mpu_lo, &mpu_hi)) return;
      if (mpu_lo > lo) lo = mpu_lo;
      if (mpu_hi < hi) hi = mpu_hi;
    }
    if (type == AccessType::Write && !map_->unwatched_window(addr, &lo, &hi)) {
      return;  // watched stores must keep notifying
    }
    w.base = lo;
    w.end = hi + 1;
    w.mem = region->backing.data() + (lo - region->base);
    w.world = world;
    w.mpu_generation = ns_mpu_.generation();
    w.map_epoch = map_->epoch();
  }

  MemoryMap* map_;
  Mpu ns_mpu_;
  /// Two windows per access type, round-robin replacement: Thumb code
  /// interleaves literal-pool loads (flash) with data/stack traffic (RAM),
  /// so a single window would thrash on exactly the hottest pattern.
  DataWindow read_windows_[2];
  DataWindow write_windows_[2];
  u8 read_victim_ = 0;
  u8 write_victim_ = 0;
};

}  // namespace raptrack::mem
