// Memory Protection Unit model (ARMv8-M, split into Secure and Non-Secure
// banks under TrustZone). The CFA engine programs the NS-MPU to make the
// attested application's binary non-writable and then *locks* the NS bank so
// the Non-Secure world cannot undo the protection (§IV-A of the paper).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "mem/fault.hpp"
#include "mem/memory_map.hpp"

namespace raptrack::mem {

struct MpuRegion {
  bool enabled = false;
  Address base = 0;
  Address limit = 0;  ///< inclusive upper bound
  bool allow_read = true;
  bool allow_write = true;
  bool allow_execute = true;

  bool contains(Address addr) const {
    return enabled && addr >= base && addr <= limit;
  }
};

/// One MPU bank (8 regions, as on Cortex-M33). When no region matches, the
/// background policy applies (allow; the security attribution in MemoryMap
/// still governs S/NS visibility).
class Mpu {
 public:
  static constexpr unsigned kNumRegions = 8;

  /// Configure region `index`. Throws Error when the bank is locked or the
  /// index is out of range.
  void configure(unsigned index, const MpuRegion& region);

  /// Disable region `index` (also refused when locked).
  void clear(unsigned index);

  /// Lock the bank: all further configure/clear calls throw. Only a device
  /// reset (reset()) unlocks — the Non-Secure world has no such capability.
  void lock() { locked_ = true; }
  bool locked() const { return locked_; }

  /// Full reset (Secure-World privilege / power cycle).
  void reset();

  /// Permission check; throws FaultException on violation.
  void check(Address addr, AccessType type, Address pc) const;

  const std::array<MpuRegion, kNumRegions>& regions() const { return regions_; }

 private:
  std::array<MpuRegion, kNumRegions> regions_{};
  bool locked_ = false;
};

}  // namespace raptrack::mem
