// Memory Protection Unit model (ARMv8-M, split into Secure and Non-Secure
// banks under TrustZone). The CFA engine programs the NS-MPU to make the
// attested application's binary non-writable and then *locks* the NS bank so
// the Non-Secure world cannot undo the protection (§IV-A of the paper).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "mem/fault.hpp"
#include "mem/memory_map.hpp"

namespace raptrack::mem {

struct MpuRegion {
  bool enabled = false;
  Address base = 0;
  Address limit = 0;  ///< inclusive upper bound
  bool allow_read = true;
  bool allow_write = true;
  bool allow_execute = true;

  bool contains(Address addr) const {
    return enabled && addr >= base && addr <= limit;
  }
};

/// One MPU bank (8 regions, as on Cortex-M33). When no region matches, the
/// background policy applies (allow; the security attribution in MemoryMap
/// still governs S/NS visibility).
class Mpu {
 public:
  static constexpr unsigned kNumRegions = 8;

  /// Configure region `index`. Throws Error when the bank is locked or the
  /// index is out of range.
  void configure(unsigned index, const MpuRegion& region);

  /// Disable region `index` (also refused when locked).
  void clear(unsigned index);

  /// Lock the bank: all further configure/clear calls throw. Only a device
  /// reset (reset()) unlocks — the Non-Secure world has no such capability.
  void lock() { locked_ = true; }
  bool locked() const { return locked_; }

  /// Full reset (Secure-World privilege / power cycle).
  void reset();

  /// Permission check; throws FaultException on violation. Runs on every
  /// data access, so only the *enabled* regions (resolved into `active_` at
  /// configuration time) are scanned — with no regions programmed, the
  /// background allow policy costs a single compare.
  void check(Address addr, AccessType type, Address pc) const {
    for (unsigned k = 0; k < num_active_; ++k) {
      const MpuRegion& region = regions_[active_[k]];
      if (!region.contains(addr)) continue;
      if (!permits(region, type)) deny(addr, type, pc);
      return;  // first matching region decides
    }
  }

  /// Non-throwing permission query (same first-matching-region policy as
  /// check()). Used by the fast-path fetch validator.
  bool allows(Address addr, AccessType type) const {
    for (unsigned k = 0; k < num_active_; ++k) {
      const MpuRegion& region = regions_[active_[k]];
      if (!region.contains(addr)) continue;
      return permits(region, type);
    }
    return true;  // background policy
  }

  /// Largest contiguous span around `addr` (inclusive bounds) over which
  /// every address takes the same first-matching-region decision as `addr`,
  /// with that decision allowing `type`. Lets the bus pre-validate a data
  /// window instead of re-checking each access; returns false when `addr`
  /// itself is denied.
  bool allowed_window(Address addr, AccessType type, Address* lo,
                      Address* hi) const {
    Address window_lo = 0;
    Address window_hi = 0xffff'ffff;
    for (unsigned k = 0; k < num_active_; ++k) {
      const MpuRegion& region = regions_[active_[k]];
      if (region.contains(addr)) {
        if (!permits(region, type)) return false;
        *lo = window_lo > region.base ? window_lo : region.base;
        *hi = window_hi < region.limit ? window_hi : region.limit;
        return true;
      }
      // `addr` is outside this earlier-priority region, so the window must
      // stop before it: crossing in would change which region decides.
      if (region.limit < addr) {
        if (region.limit + 1 > window_lo) window_lo = region.limit + 1;
      } else {
        if (region.base - 1 < window_hi) window_hi = region.base - 1;
      }
    }
    *lo = window_lo;
    *hi = window_hi;
    return true;  // background policy
  }

  /// Configuration epoch: bumped by configure/clear/reset. The executor's
  /// fast path caches its fetch-permission validation against this counter
  /// and revalidates only when the bank actually changed.
  u64 generation() const { return generation_; }

  const std::array<MpuRegion, kNumRegions>& regions() const { return regions_; }

 private:
  static bool permits(const MpuRegion& region, AccessType type) {
    return (type == AccessType::Read && region.allow_read) ||
           (type == AccessType::Write && region.allow_write) ||
           (type == AccessType::Execute && region.allow_execute);
  }

  [[noreturn]] void deny(Address addr, AccessType type, Address pc) const;

  /// Rebuild `active_` (bank-order indices of enabled regions) after any
  /// configuration change. Disabled regions can never match an address, so
  /// skipping them wholesale preserves first-matching-region semantics.
  void resolve();

  std::array<MpuRegion, kNumRegions> regions_{};
  std::array<u8, kNumRegions> active_{};
  unsigned num_active_ = 0;
  bool locked_ = false;
  u64 generation_ = 0;
};

}  // namespace raptrack::mem
