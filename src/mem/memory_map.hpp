// Physical memory map of the simulated device, modeled after the AN505
// Cortex-M33 image used by the paper's prototype: Non-Secure flash and SRAM,
// Secure flash/SRAM (holding RoT state and the MTB trace buffer), and an
// MMIO peripheral window. Each region carries a security attribution
// (TrustZone IDAU/SAU equivalent) checked on every access.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/fault.hpp"

namespace raptrack::mem {

/// Out-of-line mmap/munmap (memory_map.cpp) so this header stays free of
/// <sys/mman.h>. Returns nullptr on failure.
void* detail_map_zeroed(std::size_t bytes);
void detail_unmap(void* p, std::size_t bytes) noexcept;

/// Pooled variants: short-lived Machines (bench reps, fault-campaign runs)
/// construct and tear down the same region sizes thousands of times, and the
/// mmap/munmap VMA churn dominates their fixed cost. acquire() reuses a
/// same-size block from a process-wide cache when one is available (blocks
/// re-enter the cache only after MADV_DONTNEED, so they read as zero);
/// release() returns the block to the cache or unmaps when the cache is full.
void* detail_pool_acquire(std::size_t bytes);
void detail_pool_release(void* p, std::size_t bytes) noexcept;

/// Allocator for region backing stores: large blocks come straight from
/// mmap (anonymous mappings are lazily-mapped zero pages) and default
/// construction of elements is a no-op, so a fresh multi-hundred-KB region
/// costs one syscall instead of a memset over the whole range — and a
/// machine only ever pays (page faults) for the memory it actually touches.
/// Deliberately not malloc/calloc: glibc's dynamic mmap threshold migrates
/// repeated large allocations into the arena, where calloc must memset
/// recycled dirty memory on every short-lived Machine. Zeroed-start
/// semantics are unchanged on every path.
template <typename T>
struct ZeroedAllocator {
  using value_type = T;

  /// Blocks at or above this many bytes are mmap'd; smaller ones calloc'd.
  static constexpr std::size_t kMmapBytes = 64 * 1024;

  ZeroedAllocator() = default;
  template <typename U>
  ZeroedAllocator(const ZeroedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    void* p = nullptr;
    if (n * sizeof(T) >= kMmapBytes) {
      p = detail_pool_acquire(n * sizeof(T));
    } else {
      p = std::calloc(n, sizeof(T));
    }
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n * sizeof(T) >= kMmapBytes) {
      detail_pool_release(p, n * sizeof(T));
    } else {
      std::free(p);
    }
  }

  template <typename U>
  void construct(U*) noexcept {}  // calloc already zeroed it
  template <typename U, typename A0, typename... Args>
  void construct(U* p, A0&& a0, Args&&... args) {
    ::new (static_cast<void*>(p))
        U(std::forward<A0>(a0), std::forward<Args>(args)...);
  }

  bool operator==(const ZeroedAllocator&) const { return true; }
};

/// Backing storage for RAM/flash regions (see ZeroedAllocator above).
using Backing = std::vector<u8, ZeroedAllocator<u8>>;

/// TrustZone security attribution of a region.
enum class Security : u8 { NonSecure, Secure };

/// Which world issued the access.
enum class WorldSide : u8 { NonSecure, Secure };

enum class AccessType : u8 { Read, Write, Execute };

/// MMIO handlers: word-granular; peripherals narrower than a word handle
/// sub-word sizes themselves via the `size` parameter (1, 2, or 4 bytes).
struct MmioHandler {
  std::function<u32(Address offset, u32 size)> read;
  std::function<void(Address offset, u32 value, u32 size)> write;
};

struct Region {
  std::string name;
  Address base = 0;
  u32 size = 0;
  Security security = Security::NonSecure;
  bool writable = true;
  bool executable = false;
  Backing backing;                      // empty for MMIO regions
  std::shared_ptr<MmioHandler> mmio;    // set for peripheral regions

  Address end() const { return base + size; }
  bool contains(Address addr) const { return addr >= base && addr < end(); }
};

/// Default map constants (see DESIGN.md §2). Mirrors AN505 spacing.
struct MapLayout {
  static constexpr Address kNsFlashBase = 0x0020'0000;
  static constexpr u32 kNsFlashSize = 512 * 1024;
  static constexpr Address kNsRamBase = 0x2020'0000;
  static constexpr u32 kNsRamSize = 256 * 1024;
  static constexpr Address kSFlashBase = 0x1000'0000;
  static constexpr u32 kSFlashSize = 128 * 1024;
  static constexpr Address kSRamBase = 0x3000'0000;
  static constexpr u32 kSRamSize = 64 * 1024;
  static constexpr Address kPeriphBase = 0x4000'0000;
  static constexpr u32 kPeriphSize = 64 * 1024;
  /// The MTB SRAM (CF_Log lives here); Secure so the Non-Secure world cannot
  /// tamper with the log (§IV-F).
  static constexpr Address kMtbSramBase = 0x3400'0000;
  static constexpr u32 kMtbSramSize = 16 * 1024;
};

class MemoryMap {
 public:
  /// Observer of mutations to backed memory. Fires for checked writes, raw
  /// (RoT/injector-level) writes, and image loads — every path that can
  /// change a byte — so a predecoded-instruction cache over a code range
  /// can never go stale. Watches are range-filtered: a write outside every
  /// watched range costs two compares per watch.
  using WriteWatch = std::function<void(Address addr, u32 size)>;

  MemoryMap() = default;

  /// Build the default device map described above.
  static MemoryMap make_default();

  Region& add_region(Region region);
  Region& add_mmio(const std::string& name, Address base, u32 size,
                   Security security, MmioHandler handler);

  /// Raw access (no security/MPU checks) — used by the trusted RoT and by
  /// test fixtures. Throws FaultException only for unmapped addresses.
  u8 raw_read8(Address addr) const;
  void raw_write8(Address addr, u8 value);
  u32 raw_read32(Address addr) const;
  void raw_write32(Address addr, u32 value);

  /// Checked access on behalf of `world` (security attribution only; the
  /// MPU check layers on top in the Bus class).
  u32 read(Address addr, u32 size, WorldSide world, Address pc);
  void write(Address addr, u32 value, u32 size, WorldSide world, Address pc);

  /// Fetch check: region must be executable and visible to `world`.
  void check_execute(Address addr, WorldSide world) const;

  /// Region lookup with a one-entry hot cache: consecutive accesses land in
  /// the same region almost always (straight-line code, stack traffic), so
  /// the common case is two compares instead of a scan.
  const Region* find(Address addr) const;
  Region* find(Address addr);

  /// Load a byte image at `base` (must fall inside one backed region).
  void load(Address base, std::span<const u8> bytes);

  /// Copy out `size` bytes starting at `base` (backed regions only).
  std::vector<u8> dump(Address base, u32 size) const;

  const std::vector<Region>& regions() const { return regions_; }

  /// Watch [base, base+size) for mutations. Returns a token for removal.
  int add_write_watch(Address base, u32 size, WriteWatch watch);
  void remove_write_watch(int token);

  /// Structural epoch: bumped whenever the region list or the watch list
  /// changes. Consumers holding pre-validated pointers into the map (the
  /// bus data windows) revalidate against this counter.
  u64 epoch() const { return epoch_; }

  /// Shrink the inclusive span [*lo, *hi] so it excludes every watched
  /// range while keeping `addr` inside. Returns false when `addr` itself
  /// is watched (the caller must then stay on the notifying slow path).
  bool unwatched_window(Address addr, Address* lo, Address* hi) const {
    for (const auto& watch : watches_) {
      if (watch.base > addr) {
        if (watch.base - 1 < *hi) *hi = watch.base - 1;
      } else if (watch.end <= addr) {
        if (watch.end > *lo) *lo = watch.end;
      } else {
        return false;
      }
    }
    return true;
  }

 private:
  struct Watch {
    int token = 0;
    Address base = 0;
    Address end = 0;
    WriteWatch fn;
  };

  void check_security(const Region& region, Address addr, WorldSide world,
                      AccessType type, Address pc) const;

  void notify_write(Address addr, u32 size) {
    if (watches_.empty()) return;
    for (const auto& watch : watches_) {
      if (addr < watch.end && addr + size > watch.base) watch.fn(addr, size);
    }
  }

  std::vector<Region> regions_;
  std::vector<Watch> watches_;
  int next_watch_token_ = 1;
  u64 epoch_ = 0;
  /// Last region hit by find(); invalidated whenever regions_ can move
  /// (add_region/add_mmio). Never returned without re-checking contains().
  mutable const Region* hot_region_ = nullptr;
};

}  // namespace raptrack::mem
