// Physical memory map of the simulated device, modeled after the AN505
// Cortex-M33 image used by the paper's prototype: Non-Secure flash and SRAM,
// Secure flash/SRAM (holding RoT state and the MTB trace buffer), and an
// MMIO peripheral window. Each region carries a security attribution
// (TrustZone IDAU/SAU equivalent) checked on every access.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/fault.hpp"

namespace raptrack::mem {

/// TrustZone security attribution of a region.
enum class Security : u8 { NonSecure, Secure };

/// Which world issued the access.
enum class WorldSide : u8 { NonSecure, Secure };

enum class AccessType : u8 { Read, Write, Execute };

/// MMIO handlers: word-granular; peripherals narrower than a word handle
/// sub-word sizes themselves via the `size` parameter (1, 2, or 4 bytes).
struct MmioHandler {
  std::function<u32(Address offset, u32 size)> read;
  std::function<void(Address offset, u32 value, u32 size)> write;
};

struct Region {
  std::string name;
  Address base = 0;
  u32 size = 0;
  Security security = Security::NonSecure;
  bool writable = true;
  bool executable = false;
  std::vector<u8> backing;              // empty for MMIO regions
  std::shared_ptr<MmioHandler> mmio;    // set for peripheral regions

  Address end() const { return base + size; }
  bool contains(Address addr) const { return addr >= base && addr < end(); }
};

/// Default map constants (see DESIGN.md §2). Mirrors AN505 spacing.
struct MapLayout {
  static constexpr Address kNsFlashBase = 0x0020'0000;
  static constexpr u32 kNsFlashSize = 512 * 1024;
  static constexpr Address kNsRamBase = 0x2020'0000;
  static constexpr u32 kNsRamSize = 256 * 1024;
  static constexpr Address kSFlashBase = 0x1000'0000;
  static constexpr u32 kSFlashSize = 128 * 1024;
  static constexpr Address kSRamBase = 0x3000'0000;
  static constexpr u32 kSRamSize = 64 * 1024;
  static constexpr Address kPeriphBase = 0x4000'0000;
  static constexpr u32 kPeriphSize = 64 * 1024;
  /// The MTB SRAM (CF_Log lives here); Secure so the Non-Secure world cannot
  /// tamper with the log (§IV-F).
  static constexpr Address kMtbSramBase = 0x3400'0000;
  static constexpr u32 kMtbSramSize = 16 * 1024;
};

class MemoryMap {
 public:
  MemoryMap() = default;

  /// Build the default device map described above.
  static MemoryMap make_default();

  Region& add_region(Region region);
  Region& add_mmio(const std::string& name, Address base, u32 size,
                   Security security, MmioHandler handler);

  /// Raw access (no security/MPU checks) — used by the trusted RoT and by
  /// test fixtures. Throws FaultException only for unmapped addresses.
  u8 raw_read8(Address addr) const;
  void raw_write8(Address addr, u8 value);
  u32 raw_read32(Address addr) const;
  void raw_write32(Address addr, u32 value);

  /// Checked access on behalf of `world` (security attribution only; the
  /// MPU check layers on top in the Bus class).
  u32 read(Address addr, u32 size, WorldSide world, Address pc);
  void write(Address addr, u32 value, u32 size, WorldSide world, Address pc);

  /// Fetch check: region must be executable and visible to `world`.
  void check_execute(Address addr, WorldSide world) const;

  const Region* find(Address addr) const;
  Region* find(Address addr);

  /// Load a byte image at `base` (must fall inside one backed region).
  void load(Address base, std::span<const u8> bytes);

  /// Copy out `size` bytes starting at `base` (backed regions only).
  std::vector<u8> dump(Address base, u32 size) const;

  const std::vector<Region>& regions() const { return regions_; }

 private:
  void check_security(const Region& region, Address addr, WorldSide world,
                      AccessType type, Address pc) const;

  std::vector<Region> regions_;
};

}  // namespace raptrack::mem
