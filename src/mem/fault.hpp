// Memory and execution fault model. Faults abort the attested run and are
// surfaced in the CFA report (the paper's CFA engine locks APP memory via
// the NS-MPU; "any changes trigger a memory fault, invalidating the report").
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace raptrack::mem {

enum class FaultType : u8 {
  None,
  BusError,        ///< access to unmapped address
  MpuViolation,    ///< MPU permission denied
  SecurityFault,   ///< Non-Secure access to Secure memory
  Unaligned,       ///< misaligned word/halfword access
  UndefinedInstr,  ///< fetch decoded to an invalid opcode
  DivideByZero,
};

struct Fault {
  FaultType type = FaultType::None;
  Address address = 0;   ///< faulting data address or PC
  Address pc = 0;        ///< PC of the faulting instruction
  std::string detail;
};

const char* fault_name(FaultType type);

/// Thrown by the bus/MPU; caught by the executor which converts it into a
/// delivered fault (halting the Non-Secure run).
class FaultException {
 public:
  explicit FaultException(Fault fault) : fault_(std::move(fault)) {}
  const Fault& fault() const { return fault_; }

 private:
  Fault fault_;
};

}  // namespace raptrack::mem
