// Fundamental fixed-width aliases and small utilities shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace raptrack {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Byte address in the simulated 32-bit physical address space.
using Address = u32;

/// Machine word (registers, bus transfers).
using Word = u32;

/// Cycle count. 64-bit: long app runs overflow 32 bits easily.
using Cycles = u64;

/// Narrowing cast that throws when the value does not round-trip.
template <typename To, typename From>
constexpr To checked_narrow(From value) {
  const auto result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      ((result < To{}) != (value < From{}))) {
    throw std::out_of_range("checked_narrow: value does not fit");
  }
  return result;
}

/// Error thrown on malformed input to assemblers/decoders/verifiers.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace raptrack
