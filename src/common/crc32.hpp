// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for link framing and
// snapshot integrity. This is an *error-detection* code, not authentication:
// the datagram layer uses it to discard line-corrupted frames cheaply before
// any crypto runs, and snapshot files use it to refuse torn/truncated state.
// Anything adversarial must still pass the HMAC above this layer.
#pragma once

#include <span>

#include "common/types.hpp"

namespace raptrack {

/// One-shot CRC over `bytes` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the
/// common zlib/PNG convention, so golden values are easy to cross-check).
u32 crc32(std::span<const u8> bytes);

/// Streaming form: `state` starts at crc32_init(), feed chunks through
/// crc32_update, read the value with crc32_final.
u32 crc32_init();
u32 crc32_update(u32 state, std::span<const u8> bytes);
u32 crc32_final(u32 state);

}  // namespace raptrack
