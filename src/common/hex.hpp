// Small formatting helpers (hex addresses, byte dumps) used by the
// disassembler, fault messages, and report pretty-printers.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace raptrack {

/// "0x0020_01a4"-style address rendering (underscore for readability).
std::string hex32(u32 value);

/// "0xab" per byte, space-separated.
std::string hex_bytes(std::span<const u8> bytes);

/// Lowercase hex string without prefix (digests).
std::string hex_digest(std::span<const u8> bytes);

}  // namespace raptrack
