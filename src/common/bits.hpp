// Bit-field extraction/insertion helpers used by the ISA encoder/decoder and
// the trace-unit register models.
#pragma once

#include "common/types.hpp"

namespace raptrack {

/// Extract bits [hi:lo] (inclusive) of `value`.
constexpr u32 bits(u32 value, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (value >> lo) & mask;
}

/// Insert `field` into bits [hi:lo] of `value` and return the result.
constexpr u32 set_bits(u32 value, unsigned hi, unsigned lo, u32 field) {
  const unsigned width = hi - lo + 1;
  const u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/// Test a single bit.
constexpr bool bit(u32 value, unsigned index) { return ((value >> index) & 1u) != 0; }

/// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr i32 sign_extend(u32 value, unsigned width) {
  const u32 shift = 32 - width;
  return static_cast<i32>(value << shift) >> shift;
}

/// True when `value` fits in a signed field of `width` bits.
constexpr bool fits_signed(i64 value, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True when `value` fits in an unsigned field of `width` bits.
constexpr bool fits_unsigned(u64 value, unsigned width) {
  return width >= 64 || value < (u64{1} << width);
}

/// Align `value` up to a power-of-two boundary.
constexpr u32 align_up(u32 value, u32 alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace raptrack
