#include "common/rng.hpp"

namespace raptrack {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(u64 seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

u64 Xoshiro256::next() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Xoshiro256::next_below(u64 bound) {
  // Rejection sampling to avoid modulo bias.
  const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const u64 value = next();
    if (value >= threshold) return value % bound;
  }
}

i64 Xoshiro256::next_range(i64 lo, i64 hi) {
  const u64 span = static_cast<u64>(hi - lo) + 1;
  return lo + static_cast<i64>(next_below(span));
}

bool Xoshiro256::chance(u32 numerator, u32 denominator) {
  return next_below(denominator) < numerator;
}

}  // namespace raptrack
