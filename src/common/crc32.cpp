#include "common/crc32.hpp"

#include <array>

namespace raptrack {

namespace {

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 n = 0; n < 256; ++n) {
    u32 c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb8'8320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<u32, 256> kTable = make_table();

}  // namespace

u32 crc32_init() { return 0xffff'ffffu; }

u32 crc32_update(u32 state, std::span<const u8> bytes) {
  for (const u8 byte : bytes) {
    state = kTable[(state ^ byte) & 0xff] ^ (state >> 8);
  }
  return state;
}

u32 crc32_final(u32 state) { return state ^ 0xffff'ffffu; }

u32 crc32(std::span<const u8> bytes) {
  return crc32_final(crc32_update(crc32_init(), bytes));
}

}  // namespace raptrack
