#include "common/hex.hpp"

#include <cstdio>

namespace raptrack {

std::string hex32(u32 value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%04x_%04x", value >> 16, value & 0xffffu);
  return buf;
}

std::string hex_bytes(std::span<const u8> bytes) {
  std::string out;
  out.reserve(bytes.size() * 5);
  for (size_t i = 0; i < bytes.size(); ++i) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%s0x%02x", i ? " " : "", bytes[i]);
    out += buf;
  }
  return out;
}

std::string hex_digest(std::span<const u8> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const u8 b : bytes) {
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

}  // namespace raptrack
