// Deterministic pseudo-random generators for workload stimulus and property
// tests. Seeded explicitly everywhere so every experiment reproduces
// bit-for-bit; std::mt19937 is avoided to keep the sequence stable across
// standard libraries.
#pragma once

#include <array>

#include "common/types.hpp"

namespace raptrack {

/// SplitMix64 — used to seed xoshiro and for cheap one-off streams.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** — the main stimulus generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed);

  u64 next();

  /// Uniform in [0, bound). bound must be > 0.
  u64 next_below(u64 bound);

  /// Uniform in [lo, hi] inclusive.
  i64 next_range(i64 lo, i64 hi);

  /// Bernoulli with probability numerator/denominator.
  bool chance(u32 numerator, u32 denominator);

 private:
  std::array<u64, 4> state_{};
};

}  // namespace raptrack
