// Lossless control-flow path reconstruction (the Verifier-side core of CFA).
//
// The replayer walks the deployed binary instruction by instruction,
// re-deriving every control-flow decision from three sources:
//   1. static knowledge  — direct branches/calls and, via a constant-
//      propagating shadow valuation, the "statically deterministic" simple
//      loops of §IV-C (MOVI-initialized counters, CMPI bounds);
//   2. the CF_Log        — MTB packets (RAP-Track / naive), or the TRACES
//      bit/target/loop streams, consumed in execution order;
//   3. a shadow call stack — BX LR leaf returns, which RAP-Track leaves
//      unmonitored because LR is provably unchanged (§IV-C.2).
//
// The result is the complete sequence of taken branches, comparable against
// the simulator's ground-truth oracle — the testable definition of
// "lossless". One caveat the reproduction surfaces about taken-edge-only
// logging (Fig 5 of the paper): when an if/else's arms silently rejoin and
// the same site re-executes with no logged branch in between (e.g. repeated
// calls to a leaf function returning via unmonitored BX LR), the log cannot
// attribute a slot packet to a specific dynamic instance. The replayer then
// returns *a* consistent parse; it provably executes the same branch edges
// with the same multiplicities as the truth (edge-frequency equivalence),
// and check_path() confirms the true path is itself an accepted parse.
// Deviations between logged evidence and the
// shadow call stack (ROP) or the valid-target policy (JOP) are surfaced as
// attack findings rather than reconstruction failures: CFA's job is to give
// the Verifier visibility into the malicious path (§II-D).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "instr/traces_engine.hpp"
#include "rewrite/manifest.hpp"
#include "trace/trace_fabric.hpp"

namespace raptrack::verify {

enum class ReplayMode : u8 { Rap, Naive, Traces };

struct ReplayInputs {
  trace::PacketLog packets;           ///< Rap & Naive
  std::vector<u32> loop_values;       ///< Rap loop-condition stream
  instr::TracesLog traces_log;        ///< Traces streams
};

struct AttackFinding {
  Address site = 0;
  Address expected = 0;
  Address observed = 0;
  std::string description;
};

struct ReplayResult {
  bool complete = false;   ///< reached HLT with all evidence consumed
  std::string failure;     ///< first reconstruction failure, if any
  std::vector<trace::OracleEvent> events;  ///< reconstructed branch history
  std::vector<AttackFinding> findings;     ///< policy violations observed
  u64 steps = 0;
  /// Replay-index cache effectiveness: steps served from the precomputed
  /// instruction array vs. per-step decode fallbacks (data words, predecode
  /// declines). Deterministic for a given chain, so serial and farm
  /// verification report identical values.
  u64 index_hits = 0;
  u64 index_fallbacks = 0;
  /// Memo-cache effectiveness (verified sub-path cache, memo.hpp): segment
  /// anchors spliced from a stored segment vs. anchors that missed and
  /// recorded fresh. NOT part of the verification outcome — the values
  /// depend on which other replays warmed the shared cache, so digests and
  /// result comparisons must exclude them (verification_digest does).
  u64 memo_hits = 0;
  u64 memo_misses = 0;
  /// Backtracking-search telemetry: checkpoints restored during the parse
  /// search. Depends on shared frontier-cache warmth (a frontier hit skips
  /// the exploration that would have backtracked), so — like the memo
  /// counters — excluded from verification_digest.
  u64 backtracks = 0;

  bool clean() const { return complete && findings.empty(); }
};

struct ReplayPolicy {
  /// Indirect-call targets the Verifier considers legitimate (function
  /// entries discovered offline). Empty set disables the check.
  std::set<Address> valid_call_targets;
};

class Deployment;
class MemoCache;
class ReplayIndex;

class PathReplayer {
 public:
  PathReplayer(const Program& program, Address entry, ReplayMode mode);
  /// Replay against a prebuilt deployment cache: program, manifests, entry
  /// and the precomputed ReplayIndex all come from `deployment`, which must
  /// outlive the replayer. This is the service fast path — the legacy
  /// constructor above rebuilds the index on every replay()/check_path().
  explicit PathReplayer(const Deployment& deployment);

  void set_rap_manifest(const rewrite::Manifest* manifest) { rap_ = manifest; }
  void set_traces_manifest(const instr::TracesManifest* manifest) {
    traces_ = manifest;
  }
  void set_policy(ReplayPolicy policy) { policy_ = std::move(policy); }
  /// Attach a verified sub-path cache (normally the Deployment's). replay()
  /// then splices previously-verified segments instead of re-simulating
  /// them; verdicts, events, findings and deterministic counters are
  /// bit-identical either way (tests/test_memo enforces this). check_path()
  /// never consults the cache — the checker must walk every instruction.
  void set_memo(MemoCache* memo) { memo_ = memo; }
  /// Enable/disable the frontier memo tier (resolved RAP-ambiguity
  /// decisions) on the attached cache. On by default; only meaningful with
  /// set_memo. Off restores PR-7 behavior: futility backoff alone, every
  /// ambiguity re-searched. Either way results are bit-identical (a failing
  /// frontier-influenced pass re-runs with the frontier detached).
  void set_frontier(bool enabled) { use_frontier_ = enabled; }

  /// Seed the whole-chain evidence fingerprint for the next replay() call
  /// (e.g. from MemoCache::chain_fp_lookup when the identical chain was
  /// verified before): every engine of that replay then reuses the value
  /// instead of hashing all four evidence streams. Consumed by the next
  /// replay() only — an unseeded replay() always recomputes lazily.
  void seed_chain_fingerprint(u64 fp);
  /// Fingerprint computed (or reused) by the most recent replay(), if any
  /// engine needed it. Feed it back via MemoCache::chain_fp_store so farm
  /// retries of the same chain skip the hash pass entirely.
  std::optional<u64> chain_fingerprint() const;

  /// Cache keys the most recent replay() touched (hits and inserts), for
  /// cross-session prefetch tagging (MemoCache::note_session). Valid until
  /// the next replay() call.
  const std::vector<u64>& touched_segment_keys() const {
    return touched_segment_keys_;
  }
  const std::vector<u64>& touched_frontier_keys() const {
    return touched_frontier_keys_;
  }

  ReplayResult replay(const ReplayInputs& inputs, u64 max_steps = 100'000'000);

  /// Checker mode: instead of searching for a parse, follow `path` (e.g. a
  /// ground-truth oracle trace) and verify it is consistent with the
  /// evidence. Used by the losslessness tests: the true path must always be
  /// an accepted parse of the log.
  ReplayResult check_path(const std::vector<trace::OracleEvent>& path,
                          const ReplayInputs& inputs,
                          u64 max_steps = 100'000'000);

 private:
  const Program* program_;
  Address entry_;
  ReplayMode mode_;
  const rewrite::Manifest* rap_ = nullptr;
  const instr::TracesManifest* traces_ = nullptr;
  /// Shared precomputed index (Deployment constructor only); when null, a
  /// local index is built per replay()/check_path() call.
  const ReplayIndex* index_ = nullptr;
  MemoCache* memo_ = nullptr;
  bool use_frontier_ = true;
  std::vector<u64> touched_segment_keys_;
  std::vector<u64> touched_frontier_keys_;
  /// Whole-chain evidence fingerprint shared across one replay()'s engines
  /// (strict pass, lenient pass, detached retries): the first engine that
  /// consults the frontier computes it once; the rest reuse it. Engines run
  /// sequentially within replay(), so plain members suffice.
  bool chain_fp_valid_ = false;
  bool chain_fp_seeded_ = false;
  u64 chain_fp_ = 0;
  ReplayPolicy policy_;
};

}  // namespace raptrack::verify
