#include "verify/farm.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace raptrack::verify {

namespace {

VerificationResult rejection(std::string why) {
  VerificationResult result;
  result.verdict = Verdict::Reject;
  result.detail = std::move(why);
  return result;
}

u64 obs_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

// Farm-wide metric handles, registered once. Looking these up per job would
// mean a map find under the registry mutex on every submission.
struct FarmMetrics {
  obs::Counter submitted = obs::registry().counter("farm.jobs_submitted");
  obs::Counter completed = obs::registry().counter("farm.jobs_completed");
  obs::Counter hmac_rejects = obs::registry().counter("farm.hmac_batch_rejects");
  obs::Counter parse_rejects = obs::registry().counter("farm.wire_parse_rejects");
  obs::Gauge queue_hwm = obs::registry().gauge("farm.queue_depth_hwm");
  obs::Histogram mailbox_wait = obs::registry().histogram(
      "farm.mailbox_wait_us", {10, 100, 1000, 10'000, 100'000, 1'000'000});

  static FarmMetrics& get() {
    static FarmMetrics metrics;
    return metrics;
  }
};

}  // namespace

VerifierFarm::VerifierFarm(crypto::Key key, FarmOptions options, u64 rng_seed)
    : key_schedule_(key),
      queue_capacity_(std::max<size_t>(options.queue_capacity, 1)),
      rng_(rng_seed) {
  size_t count = options.workers;
  if (count == 0) count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifierFarm::~VerifierFarm() {
  drain();
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void VerifierFarm::provision(DeviceId device,
                             std::shared_ptr<const Deployment> deployment,
                             VerifyConfig config) {
  std::lock_guard lock(mu_);
  DeviceState& state = devices_[device];
  state.deployment = std::move(deployment);
  state.config = std::move(config);
}

cfa::Challenge VerifierFarm::issue_challenge(DeviceId device) {
  cfa::Challenge chal;
  {
    std::lock_guard lock(rng_mu_);
    for (size_t i = 0; i < chal.size(); i += 8) {
      const u64 word = rng_.next();
      for (size_t j = 0; j < 8 && i + j < chal.size(); ++j) {
        chal[i + j] = static_cast<u8>(word >> (8 * j));
      }
    }
  }
  sessions_.issue(device, chal);
  return chal;
}

void VerifierFarm::adopt_challenge(DeviceId device,
                                   const cfa::Challenge& chal) {
  sessions_.issue(device, chal);
}

std::future<VerificationResult> VerifierFarm::submit(
    DeviceId device, const cfa::Challenge& chal,
    std::vector<cfa::SignedReport> reports) {
  Job job;
  job.chal = chal;
  job.reports = std::move(reports);
  return enqueue(device, std::move(job));
}

std::future<VerificationResult> VerifierFarm::submit_wire(
    DeviceId device, const cfa::Challenge& chal, std::vector<u8> wire_chain) {
  Job job;
  job.chal = chal;
  job.is_wire = true;
  job.wire = std::move(wire_chain);
  return enqueue(device, std::move(job));
}

std::future<VerificationResult> VerifierFarm::enqueue(DeviceId device,
                                                      Job job) {
  std::future<VerificationResult> future = job.promise.get_future();
  std::unique_lock lock(mu_);
  space_cv_.wait(lock,
                 [this] { return queued_ < queue_capacity_ || stopping_; });
  if (stopping_) {
    lock.unlock();
    job.promise.set_value(rejection("farm is shutting down"));
    return future;
  }
  const auto it = devices_.find(device);
  if (it == devices_.end()) {
    lock.unlock();
    job.promise.set_value(rejection("unknown device"));
    return future;
  }
  DeviceState& state = it->second;
  if constexpr (obs::kEnabled) {
    job.enqueue_ns = obs_now_ns();
    FarmMetrics::get().submitted.inc();
  }
  state.mailbox.push_back(std::move(job));
  ++queued_;
  if constexpr (obs::kEnabled) FarmMetrics::get().queue_hwm.set_max(queued_);
  // Activation invariant: a device sits in ready_ exactly when its mailbox
  // is non-empty and no worker is running it. If the mailbox already had
  // jobs, the token is either in ready_ or will be re-enqueued by the
  // worker currently running the device.
  if (!state.scheduled && state.mailbox.size() == 1) {
    ready_.push_back(device);
    lock.unlock();
    work_cv_.notify_one();
  }
  return future;
}

VerificationResult VerifierFarm::execute(DeviceId device,
                                         const DeviceState& state, Job& job) {
  if (!state.deployment) {
    return rejection("verifier has no expected deployment");
  }
  if (!job.is_wire) {
    std::vector<cfa::ReportView> views;
    views.reserve(job.reports.size());
    for (const auto& report : job.reports) {
      views.push_back(cfa::ReportView::of(report));
    }
    return verify_report_chain(*state.deployment, state.config, key_schedule_,
                               sessions_, device, job.chal, views);
  }
  // Zero-copy wire admission: parse views over the receive buffer, then
  // batch-check every MAC off it before the protocol core runs.
  obs::SessionId obs_session = 0;
  if constexpr (obs::kEnabled) {
    obs_session = obs::tracer().begin_session("farm_wire");
  }
  auto admission_span = obs::tracer().span(obs_session, "admission");
  auto parsed = cfa::try_parse_chain_views(job.wire);
  if (!parsed.ok()) {
    if constexpr (obs::kEnabled) FarmMetrics::get().parse_rejects.inc();
    return rejection(std::move(parsed.error));
  }
  {
    auto span = obs::tracer().span(obs_session, "hmac_batch");
    std::vector<crypto::MacClaim> claims;
    claims.reserve(parsed->size());
    for (const auto& view : *parsed) claims.push_back(view.claim());
    if (const auto bad = crypto::hmac_verify_batch(key_schedule_, claims)) {
      if constexpr (obs::kEnabled) FarmMetrics::get().hmac_rejects.inc();
      // Identical wording to the serial MAC pass, so wire and decoded
      // submissions of the same chain yield byte-identical verdicts.
      return rejection("report MAC invalid (seq " +
                       std::to_string((*parsed)[*bad].sequence) + ")");
    }
  }
  return verify_report_chain(*state.deployment, state.config, key_schedule_,
                             sessions_, device, job.chal, *parsed,
                             /*macs_verified=*/true);
}

void VerifierFarm::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const DeviceId device = ready_.front();
    ready_.pop_front();
    DeviceState& state = devices_.at(device);  // node refs are rehash-stable
    Job job = std::move(state.mailbox.front());
    state.mailbox.pop_front();
    state.scheduled = true;
    lock.unlock();

    if constexpr (obs::kEnabled) {
      // Mailbox wait: admission to the moment a worker picks the job up.
      FarmMetrics::get().mailbox_wait.observe(
          (obs_now_ns() - job.enqueue_ns) / 1000);
    }
    VerificationResult result = execute(device, state, job);
    if constexpr (obs::kEnabled) FarmMetrics::get().completed.inc();
    job.promise.set_value(std::move(result));

    lock.lock();
    state.scheduled = false;
    if (!state.mailbox.empty()) {
      ready_.push_back(device);
      work_cv_.notify_one();
    }
    --queued_;
    space_cv_.notify_one();
    if (queued_ == 0) drain_cv_.notify_all();
  }
}

void VerifierFarm::drain() {
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [this] { return queued_ == 0; });
}

}  // namespace raptrack::verify
