#include "verify/farm.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace raptrack::verify {

namespace {

VerificationResult rejection(std::string why) {
  VerificationResult result;
  result.verdict = Verdict::Reject;
  result.detail = std::move(why);
  return result;
}

u64 obs_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

// Farm-wide metric handles, registered once. Looking these up per job would
// mean a map find under the registry mutex on every submission.
struct FarmMetrics {
  obs::Counter submitted = obs::registry().counter("farm.jobs_submitted");
  obs::Counter completed = obs::registry().counter("farm.jobs_completed");
  obs::Counter hmac_rejects = obs::registry().counter("farm.hmac_batch_rejects");
  obs::Counter parse_rejects = obs::registry().counter("farm.wire_parse_rejects");
  obs::Counter worker_panics = obs::registry().counter("farm.worker_panics");
  obs::Counter quarantine_opened =
      obs::registry().counter("farm.quarantine.opened");
  obs::Counter quarantine_closed =
      obs::registry().counter("farm.quarantine.closed");
  obs::Counter quarantine_probes =
      obs::registry().counter("farm.quarantine.half_open_probes");
  obs::Counter quarantine_door_rejects =
      obs::registry().counter("farm.quarantine.door_rejects");
  obs::Gauge queue_hwm = obs::registry().gauge("farm.queue_depth_hwm");
  obs::Histogram mailbox_wait = obs::registry().histogram(
      "farm.mailbox_wait_us", {10, 100, 1000, 10'000, 100'000, 1'000'000});

  static FarmMetrics& get() {
    static FarmMetrics metrics;
    return metrics;
  }
};

}  // namespace

VerifierFarm::VerifierFarm(crypto::Key key, FarmOptions options, u64 rng_seed)
    : key_schedule_(key),
      queue_capacity_(std::max<size_t>(options.queue_capacity, 1)),
      quarantine_(options.quarantine),
      fault_hook_(std::move(options.fault_hook)),
      rng_(rng_seed) {
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t count = options.workers;
  if (count == 0) {
    count = hardware;
  } else if (options.clamp_workers) {
    count = std::min(count, hardware);
  }
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifierFarm::~VerifierFarm() {
  drain();
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void VerifierFarm::provision(DeviceId device,
                             std::shared_ptr<const Deployment> deployment,
                             VerifyConfig config) {
  std::lock_guard lock(mu_);
  DeviceState& state = devices_[device];
  state.deployment = std::move(deployment);
  state.config = std::move(config);
}

cfa::Challenge VerifierFarm::issue_challenge(DeviceId device) {
  cfa::Challenge chal;
  {
    std::lock_guard lock(rng_mu_);
    for (size_t i = 0; i < chal.size(); i += 8) {
      const u64 word = rng_.next();
      for (size_t j = 0; j < 8 && i + j < chal.size(); ++j) {
        chal[i + j] = static_cast<u8>(word >> (8 * j));
      }
    }
  }
  sessions_.issue(device, chal);
  prefetch_for(device);
  return chal;
}

void VerifierFarm::adopt_challenge(DeviceId device,
                                   const cfa::Challenge& chal) {
  sessions_.issue(device, chal);
  prefetch_for(device);
}

void VerifierFarm::prefetch_for(DeviceId device) {
  if (!kMemoEnabled) return;
  std::shared_ptr<const Deployment> deployment;
  {
    std::lock_guard lock(mu_);
    const auto it = devices_.find(device);
    if (it == devices_.end() || !it->second.config.use_memo) return;
    deployment = it->second.deployment;
  }
  if (deployment) deployment->memo().prefetch(device);
}

std::vector<std::shared_ptr<const Deployment>> VerifierFarm::deployments()
    const {
  std::vector<std::shared_ptr<const Deployment>> unique;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, state] : devices_) {
      if (!state.deployment) continue;
      const bool seen = std::any_of(
          unique.begin(), unique.end(),
          [&](const auto& d) { return d.get() == state.deployment.get(); });
      if (!seen) unique.push_back(state.deployment);
    }
  }
  std::sort(unique.begin(), unique.end(), [](const auto& a, const auto& b) {
    return std::lexicographical_compare(
        a->expected_h_mem().begin(), a->expected_h_mem().end(),
        b->expected_h_mem().begin(), b->expected_h_mem().end());
  });
  return unique;
}

std::future<VerificationResult> VerifierFarm::submit(
    DeviceId device, const cfa::Challenge& chal,
    std::vector<cfa::SignedReport> reports) {
  Job job;
  job.chal = chal;
  job.reports = std::move(reports);
  return enqueue(device, std::move(job));
}

std::future<VerificationResult> VerifierFarm::submit_wire(
    DeviceId device, const cfa::Challenge& chal, std::vector<u8> wire_chain) {
  Job job;
  job.chal = chal;
  job.is_wire = true;
  job.wire = std::move(wire_chain);
  return enqueue(device, std::move(job));
}

std::future<VerificationResult> VerifierFarm::enqueue(DeviceId device,
                                                      Job job) {
  std::future<VerificationResult> future = job.promise.get_future();
  std::unique_lock lock(mu_);
  space_cv_.wait(lock,
                 [this] { return queued_ < queue_capacity_ || stopping_; });
  if (stopping_) {
    lock.unlock();
    job.promise.set_value(rejection("farm is shutting down"));
    return future;
  }
  const auto it = devices_.find(device);
  if (it == devices_.end()) {
    lock.unlock();
    job.promise.set_value(rejection("unknown device"));
    return future;
  }
  DeviceState& state = it->second;
  // Quarantine door: an open breaker rejects without spending a worker; the
  // cooldown counts these rejects down to the half-open probe admission.
  if (quarantine_.enabled && state.breaker != Breaker::Closed) {
    if (state.breaker == Breaker::HalfOpen || state.cooldown_left > 0) {
      if (state.cooldown_left > 0) --state.cooldown_left;
      lock.unlock();
      if constexpr (obs::kEnabled) {
        FarmMetrics::get().quarantine_door_rejects.inc();
      }
      job.promise.set_value(
          rejection(state.breaker == Breaker::HalfOpen
                        ? "device quarantined (probe in flight)"
                        : "device quarantined (circuit open)"));
      return future;
    }
    state.breaker = Breaker::HalfOpen;  // admit this job as the probe
    if constexpr (obs::kEnabled) FarmMetrics::get().quarantine_probes.inc();
  }
  if constexpr (obs::kEnabled) {
    job.enqueue_ns = obs_now_ns();
    FarmMetrics::get().submitted.inc();
  }
  state.mailbox.push_back(std::move(job));
  ++queued_;
  if constexpr (obs::kEnabled) FarmMetrics::get().queue_hwm.set_max(queued_);
  // Activation invariant: a device sits in ready_ exactly when its mailbox
  // is non-empty and no worker is running it. If the mailbox already had
  // jobs, the token is either in ready_ or will be re-enqueued by the
  // worker currently running the device.
  if (!state.scheduled && state.mailbox.size() == 1) {
    ready_.push_back(device);
    lock.unlock();
    work_cv_.notify_one();
  }
  return future;
}

VerificationResult VerifierFarm::execute(DeviceId device,
                                         const DeviceState& state, Job& job,
                                         bool* forgery) {
  if (fault_hook_) fault_hook_(device);
  if (!state.deployment) {
    return rejection("verifier has no expected deployment");
  }
  if (!job.is_wire) {
    std::vector<cfa::ReportView> views;
    views.reserve(job.reports.size());
    for (const auto& report : job.reports) {
      views.push_back(cfa::ReportView::of(report));
    }
    auto result =
        verify_report_chain(*state.deployment, state.config, key_schedule_,
                            sessions_, device, job.chal, views);
    // The serial MAC pass rejects with this exact wording; everything else
    // that fails before `authentic` (empty chain, operator errors) is not
    // evidence of forgery and must not trip the breaker.
    *forgery = result.verdict == Verdict::Reject && !result.authentic &&
               result.detail.rfind("report MAC invalid", 0) == 0;
    return result;
  }
  // Zero-copy wire admission: parse views over the receive buffer, then
  // batch-check every MAC off it before the protocol core runs.
  obs::SessionId obs_session = 0;
  if constexpr (obs::kEnabled) {
    obs_session = obs::tracer().begin_session("farm_wire");
  }
  auto admission_span = obs::tracer().span(obs_session, "admission");
  auto parsed = cfa::try_parse_chain_views(job.wire);
  if (!parsed.ok()) {
    if constexpr (obs::kEnabled) FarmMetrics::get().parse_rejects.inc();
    *forgery = true;  // unparseable wire bytes: corruption or an attacker
    return rejection(std::move(parsed.error));
  }
  {
    auto span = obs::tracer().span(obs_session, "hmac_batch");
    std::vector<crypto::MacClaim> claims;
    claims.reserve(parsed->size());
    for (const auto& view : *parsed) claims.push_back(view.claim());
    if (const auto bad = crypto::hmac_verify_batch(key_schedule_, claims)) {
      if constexpr (obs::kEnabled) FarmMetrics::get().hmac_rejects.inc();
      *forgery = true;
      // Identical wording to the serial MAC pass, so wire and decoded
      // submissions of the same chain yield byte-identical verdicts.
      return rejection("report MAC invalid (seq " +
                       std::to_string((*parsed)[*bad].sequence) + ")");
    }
  }
  return verify_report_chain(*state.deployment, state.config, key_schedule_,
                             sessions_, device, job.chal, *parsed,
                             /*macs_verified=*/true);
}

void VerifierFarm::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const DeviceId device = ready_.front();
    ready_.pop_front();
    DeviceState& state = devices_.at(device);  // node refs are rehash-stable
    Job job = std::move(state.mailbox.front());
    state.mailbox.pop_front();
    state.scheduled = true;
    lock.unlock();

    if constexpr (obs::kEnabled) {
      // Mailbox wait: admission to the moment a worker picks the job up.
      FarmMetrics::get().mailbox_wait.observe(
          (obs_now_ns() - job.enqueue_ns) / 1000);
    }
    // Panic containment: verification is adversary-facing and must be total,
    // but a bug (or an injected fault) that escapes as an exception may not
    // take the worker thread — and with it every queued device — down. The
    // job resolves Inconclusive (the evidence was not adjudicated; the
    // challenge stays outstanding for a retry) and the loop continues, so
    // the device's remaining mailbox is re-queued as usual below.
    VerificationResult result;
    bool forgery = false;
    try {
      result = execute(device, state, job, &forgery);
    } catch (const std::exception& e) {
      if constexpr (obs::kEnabled) FarmMetrics::get().worker_panics.inc();
      result = VerificationResult{};
      result.verdict = Verdict::Inconclusive;
      result.detail = std::string("verifier exception contained: ") + e.what();
    } catch (...) {
      if constexpr (obs::kEnabled) FarmMetrics::get().worker_panics.inc();
      result = VerificationResult{};
      result.verdict = Verdict::Inconclusive;
      result.detail = "verifier exception contained: unknown exception";
    }
    if constexpr (obs::kEnabled) FarmMetrics::get().completed.inc();
    job.promise.set_value(std::move(result));

    lock.lock();
    if (quarantine_.enabled) update_breaker(state, forgery);
    state.scheduled = false;
    if (!state.mailbox.empty()) {
      ready_.push_back(device);
      work_cv_.notify_one();
    }
    --queued_;
    space_cv_.notify_one();
    if (queued_ == 0) drain_cv_.notify_all();
  }
}

void VerifierFarm::update_breaker(DeviceState& state, bool forgery) {
  if (!forgery) {
    state.strikes = 0;
    if (state.breaker == Breaker::HalfOpen) {
      // The probe came back clean: re-admit the device fully.
      state.breaker = Breaker::Closed;
      state.reopens = 0;
      if constexpr (obs::kEnabled) FarmMetrics::get().quarantine_closed.inc();
    }
    return;
  }
  ++state.strikes;
  const auto open_with_backoff = [&] {
    state.breaker = Breaker::Open;
    state.strikes = 0;
    const u32 factor =
        std::min<u32>(u32{1} << std::min<u32>(state.reopens, 31),
                      std::max<u32>(quarantine_.backoff_cap, 1));
    state.cooldown_left = std::max<u32>(quarantine_.cooldown, 1) * factor;
    if constexpr (obs::kEnabled) FarmMetrics::get().quarantine_opened.inc();
  };
  if (state.breaker == Breaker::HalfOpen) {
    // Probe failed: re-open with the cooldown doubled (capped).
    ++state.reopens;
    open_with_backoff();
  } else if (state.breaker == Breaker::Closed &&
             state.strikes >= std::max<u32>(quarantine_.strike_threshold, 1)) {
    open_with_backoff();
  }
}

VerifierFarm::Breaker VerifierFarm::breaker_state(DeviceId device) const {
  std::lock_guard lock(mu_);
  const auto it = devices_.find(device);
  return it == devices_.end() ? Breaker::Closed : it->second.breaker;
}

void VerifierFarm::penalize(DeviceId device, u32 strikes) {
  if (!quarantine_.enabled) return;
  std::lock_guard lock(mu_);
  DeviceState& state = devices_[device];
  for (u32 i = 0; i < strikes; ++i) update_breaker(state, /*forgery=*/true);
}

void VerifierFarm::drain() {
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [this] { return queued_ == 0; });
}

}  // namespace raptrack::verify
