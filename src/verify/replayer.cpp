#include "verify/replayer.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <set>

#include "common/bits.hpp"
#include "common/hex.hpp"
#include "obs/metrics.hpp"
#include "verify/deployment.hpp"
#include "verify/memo.hpp"

namespace raptrack::verify {

using isa::BranchKind;
using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::Reg;
using trace::BranchPacket;

namespace {

/// Per-flag shadow state: each of NZCV is independently known or unknown.
struct ShadowFlags {
  std::optional<bool> n, z, c, v;

  void set_all_unknown() { n = z = c = v = std::nullopt; }
};

/// Evaluate a condition when the flags it needs are known.
std::optional<bool> evaluate_shadow(Cond cond, const ShadowFlags& f) {
  const auto need = [](std::optional<bool> flag) { return flag; };
  switch (cond) {
    case Cond::EQ: return need(f.z);
    case Cond::NE: return f.z ? std::optional<bool>(!*f.z) : std::nullopt;
    case Cond::CS: return need(f.c);
    case Cond::CC: return f.c ? std::optional<bool>(!*f.c) : std::nullopt;
    case Cond::MI: return need(f.n);
    case Cond::PL: return f.n ? std::optional<bool>(!*f.n) : std::nullopt;
    case Cond::VS: return need(f.v);
    case Cond::VC: return f.v ? std::optional<bool>(!*f.v) : std::nullopt;
    case Cond::HI:
      if (f.c && f.z) return *f.c && !*f.z;
      return std::nullopt;
    case Cond::LS:
      if (f.c && f.z) return !*f.c || *f.z;
      return std::nullopt;
    case Cond::GE:
      if (f.n && f.v) return *f.n == *f.v;
      return std::nullopt;
    case Cond::LT:
      if (f.n && f.v) return *f.n != *f.v;
      return std::nullopt;
    case Cond::GT:
      if (f.z && f.n && f.v) return !*f.z && *f.n == *f.v;
      return std::nullopt;
    case Cond::LE:
      if (f.z && f.n && f.v) return *f.z || *f.n != *f.v;
      return std::nullopt;
    case Cond::AL: return true;
  }
  return std::nullopt;
}

/// Constant-propagating register valuation along the reconstructed path.
struct Valuation {
  std::array<std::optional<u32>, 16> regs{};
  ShadowFlags flags;

  std::optional<u32> read(Reg r, Address pc) const {
    if (r == Reg::PC) return pc + 4;
    return regs[isa::index(r)];
  }

  void write(Reg r, std::optional<u32> value) {
    if (r == Reg::PC) return;  // control flow handled by the replayer
    regs[isa::index(r)] = value;
  }

  void set_nz(std::optional<u32> result) {
    if (result) {
      flags.n = (*result >> 31) != 0;
      flags.z = *result == 0;
    } else {
      flags.n = flags.z = std::nullopt;
    }
  }

  void set_add_flags(std::optional<u32> a, std::optional<u32> b) {
    if (a && b) {
      const u64 wide = static_cast<u64>(*a) + *b;
      const u32 result = static_cast<u32>(wide);
      set_nz(result);
      flags.c = (wide >> 32) != 0;
      flags.v = (~(*a ^ *b) & (*a ^ result) & 0x8000'0000u) != 0;
    } else {
      flags.set_all_unknown();
    }
  }

  void set_sub_flags(std::optional<u32> a, std::optional<u32> b) {
    if (a && b) {
      const u32 result = *a - *b;
      set_nz(result);
      flags.c = *a >= *b;
      flags.v = ((*a ^ *b) & (*a ^ result) & 0x8000'0000u) != 0;
    } else {
      flags.set_all_unknown();
    }
  }

  /// Model the data effects of a non-control-flow instruction.
  void apply(const Instruction& in, Address pc) {
    const auto rn = [&] { return read(in.rn, pc); };
    const auto rm = [&] { return read(in.rm, pc); };
    const auto imm = [&] { return std::optional<u32>(static_cast<u32>(in.imm)); };
    const auto binop = [&](std::optional<u32> a, std::optional<u32> b,
                           auto&& fn) -> std::optional<u32> {
      if (a && b) return fn(*a, *b);
      return std::nullopt;
    };

    switch (in.op) {
      case Op::MOVI:
        write(in.rd, static_cast<u32>(in.imm));
        break;
      case Op::MOVT: {
        const auto old = read(in.rd, pc);
        write(in.rd, old ? std::optional<u32>((*old & 0xffffu) |
                                              (static_cast<u32>(in.imm) << 16))
                         : std::nullopt);
        break;
      }
      case Op::MOV: {
        const auto value = rm();
        write(in.rd, value);
        if (in.set_flags) set_nz(value);
        break;
      }
      case Op::MVN: {
        const auto value = rm();
        const auto result = value ? std::optional<u32>(~*value) : std::nullopt;
        write(in.rd, result);
        if (in.set_flags) set_nz(result);
        break;
      }
      case Op::ADD: case Op::ADDI: {
        const auto b = in.op == Op::ADD ? rm() : imm();
        const auto result = binop(rn(), b, [](u32 x, u32 y) { return x + y; });
        write(in.rd, result);
        if (in.set_flags) set_add_flags(rn(), b);
        break;
      }
      case Op::SUB: case Op::SUBI: {
        const auto a = rn();
        const auto b = in.op == Op::SUB ? rm() : imm();
        if (in.set_flags) set_sub_flags(a, b);
        write(in.rd, binop(a, b, [](u32 x, u32 y) { return x - y; }));
        break;
      }
      case Op::RSB: case Op::RSBI: {
        const auto a = rn();
        const auto b = in.op == Op::RSB ? rm() : imm();
        if (in.set_flags) set_sub_flags(b, a);
        write(in.rd, binop(b, a, [](u32 x, u32 y) { return x - y; }));
        break;
      }
      case Op::MUL: {
        const auto result = binop(rn(), rm(), [](u32 x, u32 y) { return x * y; });
        write(in.rd, result);
        if (in.set_flags) set_nz(result);
        break;
      }
      case Op::UDIV:
        write(in.rd, binop(rn(), rm(), [](u32 x, u32 y) { return y ? x / y : 0; }));
        break;
      case Op::SDIV:
        write(in.rd, binop(rn(), rm(), [](u32 x, u32 y) {
                const i32 n = static_cast<i32>(x), d = static_cast<i32>(y);
                if (d == 0) return 0u;
                if (n == INT32_MIN && d == -1) return static_cast<u32>(INT32_MIN);
                return static_cast<u32>(n / d);
              }));
        break;
      case Op::AND: case Op::ANDI:
      case Op::ORR: case Op::ORRI:
      case Op::EOR: case Op::EORI: {
        const auto b = isa::format_of(in.op) == isa::Format::AluReg ? rm() : imm();
        const auto result = binop(rn(), b, [&](u32 x, u32 y) {
          switch (in.op) {
            case Op::AND: case Op::ANDI: return x & y;
            case Op::ORR: case Op::ORRI: return x | y;
            default: return x ^ y;
          }
        });
        write(in.rd, result);
        if (in.set_flags) {
          set_nz(result);
          flags.c = flags.v = std::nullopt;  // conservatively unknown
        }
        break;
      }
      case Op::LSL: case Op::LSLI:
      case Op::LSR: case Op::LSRI:
      case Op::ASR: case Op::ASRI: {
        const auto b = isa::format_of(in.op) == isa::Format::AluReg ? rm() : imm();
        const auto result = binop(rn(), b, [&](u32 x, u32 y) {
          const u32 amount = y & 0xff;
          if (in.op == Op::LSL || in.op == Op::LSLI) {
            return amount >= 32 ? 0u : (x << amount);
          }
          if (in.op == Op::LSR || in.op == Op::LSRI) {
            return amount >= 32 ? 0u : (amount == 0 ? x : x >> amount);
          }
          const i32 sx = static_cast<i32>(x);
          return static_cast<u32>(amount >= 32 ? (sx >> 31) : (sx >> amount));
        });
        write(in.rd, result);
        if (in.set_flags) {
          set_nz(result);
          flags.c = flags.v = std::nullopt;
        }
        break;
      }
      case Op::CMP: case Op::CMPI:
        set_sub_flags(rn(), in.op == Op::CMP ? rm() : imm());
        break;
      case Op::CMN:
        set_add_flags(rn(), rm());
        break;
      case Op::TST: case Op::TSTI: {
        const auto b = in.op == Op::TST ? rm() : imm();
        set_nz(binop(rn(), b, [](u32 x, u32 y) { return x & y; }));
        flags.c = flags.v = std::nullopt;
        break;
      }
      case Op::LDR: case Op::LDRB: case Op::LDRH: case Op::LDRR:
        write(in.rd, std::nullopt);  // memory contents are not modeled
        break;
      case Op::STR: case Op::STRB: case Op::STRH: case Op::STRR:
      case Op::PUSH:
        break;  // stores do not affect register state
      case Op::POP:
        for (unsigned i = 0; i < 13; ++i) {
          if (bit(in.reg_list, i)) regs[i] = std::nullopt;
        }
        break;
      default:
        break;  // NOP/HLT/BKPT/SVC/branches handled by the replayer
    }
  }
};

/// Pack the engine valuation into the memo cache's fixed-size snapshot.
MemoValuation pack_valuation(const Valuation& val) {
  MemoValuation out;
  for (size_t i = 0; i < out.regs.size(); ++i) {
    if (val.regs[i]) {
      out.regs[i] = *val.regs[i];
      out.known |= static_cast<u16>(u16{1} << i);
    }
  }
  const auto pack_flag = [&out](const std::optional<bool>& flag, unsigned bit) {
    if (flag) {
      out.flags |= static_cast<u8>(u8{1} << (bit + 4));
      if (*flag) out.flags |= static_cast<u8>(u8{1} << bit);
    }
  };
  pack_flag(val.flags.n, 0);
  pack_flag(val.flags.z, 1);
  pack_flag(val.flags.c, 2);
  pack_flag(val.flags.v, 3);
  return out;
}

void unpack_valuation(const MemoValuation& in, Valuation& val) {
  for (size_t i = 0; i < in.regs.size(); ++i) {
    val.regs[i] = (in.known >> i) & 1 ? std::optional<u32>(in.regs[i])
                                      : std::nullopt;
  }
  const auto unpack_flag = [&in](unsigned bit) -> std::optional<bool> {
    if (((in.flags >> (bit + 4)) & 1) == 0) return std::nullopt;
    return ((in.flags >> bit) & 1) != 0;
  };
  val.flags.n = unpack_flag(0);
  val.flags.z = unpack_flag(1);
  val.flags.c = unpack_flag(2);
  val.flags.v = unpack_flag(3);
}

u64 memo_key(Address pc, const MemoValuation& val, u64 policy_hash) {
  u64 h = pc * 0x9e3779b97f4a7c15ull;
  h ^= val.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= policy_hash + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Amortization telemetry for the whole-chain evidence fingerprint: one
/// `computed` per engine that hashed the streams itself, one `reused` per
/// engine that found the shared slot already filled. tests/test_memo proves
/// repeated verifications of one chain compute exactly once.
struct FingerprintObs {
  obs::Counter computed =
      obs::registry().counter("verify.memo.fingerprint.computed");
  obs::Counter reused =
      obs::registry().counter("verify.memo.fingerprint.reused");

  static FingerprintObs& get() {
    static FingerprintObs metrics;
    return metrics;
  }
};

}  // namespace

PathReplayer::PathReplayer(const Program& program, Address entry,
                           ReplayMode mode)
    : program_(&program), entry_(entry), mode_(mode) {}

PathReplayer::PathReplayer(const Deployment& deployment)
    : program_(&deployment.program()),
      entry_(deployment.entry()),
      mode_(deployment.mode()),
      rap_(deployment.rap_manifest()),
      traces_(deployment.traces_manifest()),
      index_(&deployment.index()) {}

// ---------------------------------------------------------------------------
// Replay engine with backtracking.
//
// RAP-Track's taken-edge logging has a one-sided ambiguity: at a trampolined
// conditional site, "next packet not from this site's slot" proves the
// branch went the unlogged way, but "next packet from this slot" may belong
// to a *later* dynamic instance reached entirely through unlogged edges
// (e.g. a leaf call/return cycle). The engine therefore checkpoints those
// decisions, takes the greedy reading first, and backtracks on any
// downstream reconstruction failure — the log as a whole admits exactly one
// consistent parse for honest evidence. Naive mode needs no checkpoints
// (every cycle contains a logged taken branch), nor does TRACES (one
// direction bit per dynamic instance).
// ---------------------------------------------------------------------------

namespace {

class ReplayEngine {
 public:
  ReplayEngine(const ReplayIndex& index, Address entry, ReplayMode mode,
               const ReplayPolicy& policy, const ReplayInputs& inputs,
               u64 max_steps,
               const std::vector<trace::OracleEvent>* script = nullptr,
               bool strict = false, MemoCache* memo = nullptr,
               bool use_frontier = true,
               std::vector<u64>* touched_segments = nullptr,
               std::vector<u64>* touched_frontier = nullptr,
               bool* chain_fp_valid = nullptr, u64* chain_fp_slot = nullptr)
      : index_(index),
        mode_(mode),
        policy_(policy),
        inputs_(inputs),
        max_steps_(max_steps),
        script_(script),
        strict_(strict),
        memo_(script == nullptr ? memo : nullptr),
        use_frontier_(use_frontier),
        touched_segments_(touched_segments),
        touched_frontier_(touched_frontier),
        chain_fp_valid_(chain_fp_valid),
        chain_fp_slot_(chain_fp_slot) {
    pc_ = entry;
    if (memo_ != nullptr) {
      // Call-target-policy fingerprint for the memo key: the policy decides
      // whether an indirect call raises a finding, so segments recorded
      // under one policy must never apply under another.
      u64 h = 0x243f6a8885a308d3ull;
      const auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      };
      mix(policy_.valid_call_targets.size());
      for (const Address target : policy_.valid_call_targets) mix(target);
      policy_hash_ = h;
    }
  }

  ReplayResult run();

  /// Did this run consult shared frontier state in a way that steered the
  /// search — a decision hit taken, or shared dead-branch knowledge the
  /// local failure memo lacked? A *failing* influenced run must be re-run
  /// with the frontier detached (see PathReplayer::replay): a true hit
  /// guarantees completion, so an influenced failure implies either shared
  /// failure bits pruning the search tree (changing which dead end is
  /// reported first) or an astronomically unlikely fingerprint collision.
  /// Either way the retry reproduces the unmemoized result byte-for-byte.
  bool frontier_influenced() const {
    return frontier_hit_taken_ || used_shared_failure_;
  }

 private:
  /// Mutable cursor/valuation state captured at a checkpoint.
  struct Snapshot {
    Address pc;
    Valuation val;
    std::vector<Address> shadow_stack;
    size_t packet_cursor, bit_cursor, target_cursor, loop_cursor;
    size_t events_size, findings_size;
    /// Step/index counters are *path-local*: restored on backtrack so the
    /// final result counts only the accepted parse, independent of how much
    /// dead-end exploration the search (or a frontier skip of it) performed.
    u64 steps, index_hits, index_fallbacks;
    size_t journal_size;   ///< frontier journal high-water mark to truncate to
    bool forced_decision;  ///< the alternative to take after restoring
    u64 state_hash;        ///< pre-decision state (for the failure memo)
  };

  // -- state ---------------------------------------------------------------
  /// Precomputed per-deployment lookups (instructions, branch targets, MTBAR
  /// slots, veneers) — shared and read-only, see deployment.hpp.
  const ReplayIndex& index_;
  ReplayMode mode_;
  const ReplayPolicy& policy_;
  const ReplayInputs& inputs_;
  u64 max_steps_;
  /// Checker mode: the path to follow instead of searching for a parse.
  const std::vector<trace::OracleEvent>* script_;
  /// Strict pass: attack findings count as parse failures, so backtracking
  /// searches for a finding-free (benign) parse first. The lenient second
  /// pass reports findings only when no benign parse exists.
  bool strict_;

  Address pc_ = 0;
  Valuation val_;
  std::vector<Address> shadow_stack_;
  size_t packet_cursor_ = 0;
  size_t bit_cursor_ = 0;
  size_t target_cursor_ = 0;
  size_t loop_cursor_ = 0;
  ReplayResult result_;
  std::vector<Snapshot> checkpoints_;
  /// Failure memo: hashes of full engine states whose exploration failed.
  /// Sound because downstream behavior is a deterministic function of
  /// (pc, cursors, shadow stack, valuation); prevents chronological
  /// backtracking from re-exploring the same subtree exponentially
  /// (deep recursion makes this essential — see the fibcall workload).
  /// Bounded by kMaxFailedStates (lowest-hash eviction — effectively random
  /// for uniform hashes) so an adversarial chain cannot grow it without
  /// limit; the cap is an engine constant, NOT a memo option, so memoized
  /// and unmemoized runs prune identically.
  std::set<u64> failed_states_;
  u64 backtracks_ = 0;
  /// Counter values captured at the top of the current step, before the
  /// step's own increments. Checkpoints must store these — not the live
  /// counters — so a backtrack that re-executes the ambiguous site counts
  /// its step (and decode) exactly once. Otherwise `steps` would depend on
  /// how much searching happened, and the frontier memo (which skips
  /// searches) would perturb the verification digest.
  u64 pre_step_steps_ = 0;
  u64 pre_step_index_hits_ = 0;
  u64 pre_step_index_fallbacks_ = 0;
  std::optional<bool> forced_decision_;  // applied to the next Bcc
  std::string pending_failure_;

  // -- verified sub-path memo (see memo.hpp) --------------------------------
  /// In-progress segment recording: the anchor state plus the footprint
  /// observed since (shadow-stack pops below the anchor, evidence peeks).
  /// Everything else a segment needs is a cursor delta against the anchor.
  struct MemoRecording {
    bool active = false;
    Address entry_pc = 0;
    MemoValuation entry_val;
    size_t entry_packets = 0;
    size_t entry_loops = 0;
    size_t entry_bits = 0;
    size_t entry_targets = 0;
    size_t entry_events = 0;
    size_t entry_stack = 0;
    u64 entry_steps = 0;
    u64 entry_index_hits = 0;
    u64 entry_index_fallbacks = 0;
    /// Lowest shadow-stack depth seen since the anchor; entries popped from
    /// below the anchor depth are part of the segment's key.
    size_t min_stack = 0;
    std::vector<Address> popped;  ///< top-of-anchor-stack first
    /// Last one-packet lookahead (conditional decisions peek the next packet
    /// without consuming it). Only a peek past the consumed window survives
    /// into the segment's guards; earlier peeks are covered by the window.
    bool have_peek = false;
    size_t peek_rel = 0;
    BranchPacket peek_pkt{};
    bool have_eos = false;  ///< a peek found the packet stream exhausted
    size_t eos_rel = 0;
    /// Frontier-guarded decisions absorbed since the anchor: instead of
    /// aborting the recording at a decision-hit, the segment carries one
    /// guard per absorbed site and re-validates them all at splice time.
    std::vector<SegmentGuard> guards;
  };

  /// Shared cache, or null when memoization is off (checker mode always).
  MemoCache* memo_ = nullptr;
  MemoRecording rec_;
  /// A halted segment was spliced: the replay is complete.
  bool memo_halted_ = false;
  u64 policy_hash_ = 0;
  /// Futility backoff for re-anchoring (see memo_tick): current step delay
  /// and the step count at which the next anchor attempt is allowed.
  u32 memo_backoff_ = 0;
  u64 memo_resume_step_ = 0;

  // -- frontier memo (resolved RAP-ambiguity decisions, see memo.hpp) -------
  /// One ambiguous-site decision on the path being explored. Committed to
  /// the shared cache only when the replay completes (the journal truncates
  /// on backtrack, so committed entries all lie on the accepted parse).
  struct JournalEntry {
    FrontierEntry guards;
    bool decision = false;
    u64 steps_at = 0;
    /// Decision came from a frontier hit: already resident in the shared
    /// cache (the lookup refreshed its recency), so commit_journal skips the
    /// redundant locked re-insert.
    bool from_hit = false;
  };

  bool use_frontier_ = false;
  std::vector<u64>* touched_segments_ = nullptr;
  std::vector<u64>* touched_frontier_ = nullptr;
  /// A frontier decision hit was taken: exploration after it is not
  /// exhaustive under a (vanishingly unlikely) fingerprint collision, so
  /// failure promotion stops for the rest of this engine.
  bool frontier_hit_taken_ = false;
  /// Shared dead-branch bits added knowledge the local failure memo lacked.
  bool used_shared_failure_ = false;
  std::vector<JournalEntry> journal_;
  /// Whole-chain evidence fingerprint, computed lazily on the first
  /// frontier consult (never on deterministic replays). Combined with the
  /// exact cursor positions it pins the remaining evidence suffix of every
  /// stream — strictly stronger than a per-suffix hash (two chains sharing
  /// a tail no longer alias) at a fraction of the cost: one pass, no
  /// per-stream suffix arrays. The PathReplayer owns a shared slot
  /// (chain_fp_valid_/chain_fp_slot_) so the strict pass, lenient pass and
  /// detached retries of one replay — and, seeded through
  /// MemoCache::chain_fp_{lookup,store}, later verifications of the same
  /// chain — all hash the streams at most once.
  bool* chain_fp_valid_ = nullptr;
  u64* chain_fp_slot_ = nullptr;
  mutable std::optional<u64> chain_fp_local_;  ///< fallback when no slot
  mutable bool chain_fp_counted_ = false;      ///< one obs count per engine
  /// Frontier futility gate (the §14 backoff idea applied to the frontier
  /// tier): consults that keep returning nothing actionable — misses, or
  /// decision hits that never carried dead-branch knowledge — stop after
  /// kFrontierProbeWindow in a row, bounding the per-replay frontier cost
  /// on chains whose greedy parse never needs the search. Any backtrack or
  /// any hit with failure bits proves the workload searches and re-arms
  /// consulting for the rest of the engine.
  u32 frontier_futile_streak_ = 0;
  bool frontier_proven_ = false;

  static constexpr u64 kMaxBacktracks = 2'000'000;
  static constexpr size_t kMaxFailedStates = size_t{1} << 20;
  static constexpr u32 kFrontierProbeWindow = 8;

  bool frontier_active() const { return memo_ != nullptr && use_frontier_; }

  /// Should this ambiguous site consult (and journal into) the frontier?
  bool frontier_consult_ok() const {
    return frontier_active() &&
           (frontier_proven_ || backtracks_ > 0 ||
            frontier_futile_streak_ < kFrontierProbeWindow);
  }

  u64 chain_fp() const {
    if (chain_fp_slot_ != nullptr && *chain_fp_valid_) {
      if (!chain_fp_counted_) {
        chain_fp_counted_ = true;
        if constexpr (obs::kEnabled) FingerprintObs::get().reused.inc();
      }
      return *chain_fp_slot_;
    }
    if (chain_fp_local_) return *chain_fp_local_;
    u64 h = 0x517cc1b727220a95ull;
    const auto mix = [&h](u64 v) {
      h = (h ^ v) * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull;
    };
    for (const auto& pkt : inputs_.packets) {
      mix((static_cast<u64>(pkt.source_word()) << 32) | pkt.destination);
    }
    for (const u32 v : loop_stream()) mix(v);
    for (const bool b : inputs_.traces_log.direction_bits) mix(b ? 2 : 1);
    for (const u32 t : inputs_.traces_log.indirect_targets) mix(t);
    if (chain_fp_slot_ != nullptr) {
      *chain_fp_slot_ = h;
      *chain_fp_valid_ = true;
    } else {
      chain_fp_local_ = h;
    }
    if (!chain_fp_counted_) {
      chain_fp_counted_ = true;
      if constexpr (obs::kEnabled) FingerprintObs::get().computed.inc();
    }
    return h;
  }

  /// Frontier guards for the *current* engine state: total-state fingerprint
  /// (pc, valuation, policy, strictness, full shadow stack, and the whole
  /// chain's evidence fingerprint pinned at the exact cursor positions —
  /// equivalently, the full remaining suffix of every stream — plus exact
  /// remaining counts).
  FrontierEntry frontier_guards() const {
    FrontierEntry e;
    e.pc = pc_;
    e.val = pack_valuation(val_);
    e.policy_hash = policy_hash_;
    e.strict = strict_;
    u64 sh = 0x9216d5d98979fb1bull;
    const auto mix = [](u64& h, u64 v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(sh, shadow_stack_.size());
    for (const Address a : shadow_stack_) mix(sh, a);
    e.stack_hash = sh;
    u64 fp = 0x452821e638d01377ull;
    mix(fp, chain_fp());
    mix(fp, packet_cursor_);
    mix(fp, loop_cursor_);
    mix(fp, bit_cursor_);
    mix(fp, target_cursor_);
    e.evidence_fp = fp;
    e.packet_rem = static_cast<u32>(inputs_.packets.size() - packet_cursor_);
    e.loop_rem = static_cast<u32>(loop_stream().size() - loop_cursor_);
    e.bit_rem = static_cast<u32>(inputs_.traces_log.direction_bits.size() -
                                 bit_cursor_);
    e.target_rem = static_cast<u32>(inputs_.traces_log.indirect_targets.size() -
                                    target_cursor_);
    return e;
  }

  /// Journal a decision taken at the current (ambiguous) site, for promotion
  /// to the shared frontier if this path turns out to be the accepted parse.
  /// `guards` lets callers that already computed the frontier key for this
  /// exact state (the lookup path) avoid hashing it a second time.
  void journal_decision(bool decision, const FrontierEntry* guards = nullptr) {
    if (!frontier_consult_ok()) return;
    journal_.push_back({guards != nullptr ? *guards : frontier_guards(),
                        decision, result_.steps});
  }

  /// The path completed: every journaled decision lies on the accepted
  /// parse. Promote each to the shared frontier with the steps the parse
  /// still needed from that site (budget guard for future skips).
  void commit_journal() {
    if (!frontier_active()) return;
    for (JournalEntry& entry : journal_) {
      if (entry.from_hit) continue;  // already resident, recency refreshed
      entry.guards.has_decision = true;
      entry.guards.decision = entry.decision;
      entry.guards.failed_mask = 0;
      entry.guards.steps_to_complete = result_.steps - entry.steps_at;
      memo_->frontier_insert(entry.guards);
      if (touched_frontier_ != nullptr) {
        touched_frontier_->push_back(entry.guards.key_hash());
      }
    }
  }

  /// Hash of the complete decision-relevant engine state.
  u64 state_hash() const {
    u64 h = 0x9e3779b97f4a7c15ull;
    const auto mix = [&h](u64 v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(pc_);
    mix(packet_cursor_);
    mix(bit_cursor_);
    mix(target_cursor_);
    mix(loop_cursor_);
    mix(shadow_stack_.size());
    for (const Address a : shadow_stack_) mix(a);
    for (const auto& reg : val_.regs) mix(reg ? u64{*reg} | (1ull << 32) : 0);
    const auto mix_flag = [&](const std::optional<bool>& f) {
      mix(f ? (*f ? 2u : 1u) : 0u);
    };
    mix_flag(val_.flags.n);
    mix_flag(val_.flags.z);
    mix_flag(val_.flags.c);
    mix_flag(val_.flags.v);
    return h;
  }

  // -- helpers ---------------------------------------------------------------
  void fail(const std::string& why) {
    rec_.active = false;  // a failing stretch must never become a segment
    if (pending_failure_.empty()) pending_failure_ = why;
  }

  bool in_mtbar(Address addr) const { return index_.in_mtbar(addr); }

  std::optional<BranchPacket> consume_packet(Address src) {
    if (packet_cursor_ >= inputs_.packets.size()) {
      fail("CF_Log exhausted at " + hex32(src));
      return std::nullopt;
    }
    const BranchPacket packet = inputs_.packets[packet_cursor_++];
    if (packet.source != src) {
      fail("CF_Log source mismatch at " + hex32(src) + " (log has " +
           hex32(packet.source) + ")");
      return std::nullopt;
    }
    return packet;
  }

  std::optional<Address> consume_indirect_target() {
    if (target_cursor_ >= inputs_.traces_log.indirect_targets.size()) {
      fail("TRACES target stream exhausted");
      return std::nullopt;
    }
    return inputs_.traces_log.indirect_targets[target_cursor_++];
  }

  std::optional<u32> consume_loop_value(bool traces) {
    const auto& stream =
        traces ? inputs_.traces_log.loop_conditions : inputs_.loop_values;
    if (loop_cursor_ >= stream.size()) {
      fail("loop-condition stream exhausted");
      return std::nullopt;
    }
    return stream[loop_cursor_++];
  }

  /// Record a reconstructed event; in checker mode it must match the script.
  void emit_event(Address source, Address destination, BranchKind kind) {
    if (script_) {
      const size_t index = result_.events.size();
      if (index >= script_->size() || !((*script_)[index] ==
                                        trace::OracleEvent{source, destination,
                                                           kind})) {
        fail("path deviates from the scripted path at event " +
             std::to_string(index) + " (" + hex32(source) + " -> " +
             hex32(destination) + ")");
        return;
      }
    }
    result_.events.push_back({source, destination, kind});
  }

  void report_finding(AttackFinding finding) {
    // Findings are path-level judgments; keep them out of memo segments so
    // strict and lenient passes can share the cache (finding-free segments
    // behave identically in both).
    rec_.active = false;
    if (strict_) {
      fail("strict pass: " + finding.description);
      return;
    }
    result_.findings.push_back(std::move(finding));
  }

  void check_call_policy(Address site, Address target) {
    if (!policy_.valid_call_targets.empty() &&
        policy_.valid_call_targets.count(target) == 0) {
      report_finding({site, 0, target,
                      "indirect call to illegitimate target " + hex32(target) +
                          " (JOP indicator)"});
    }
  }

  void pop_shadow(Address site, Address target) {
    if (shadow_stack_.empty()) {
      report_finding({site, 0, target, "return with empty shadow call stack"});
      return;
    }
    if (rec_.active && shadow_stack_.size() <= rec_.min_stack) {
      // Popping below the recording anchor: the popped value steered this
      // segment, so it becomes part of the segment's entry guards.
      rec_.popped.push_back(shadow_stack_.back());
      rec_.min_stack = shadow_stack_.size() - 1;
    }
    const Address expected = shadow_stack_.back();
    shadow_stack_.pop_back();
    if (expected != target) {
      report_finding({site, expected, target,
                      "return target " + hex32(target) +
                          " differs from call-stack expectation " +
                          hex32(expected) + " (ROP indicator)"});
    }
  }

  /// A resolved taken branch: consume/check evidence where required, emit
  /// the event, move the pc.
  void take_branch(Address target, BranchKind kind) {
    if (mode_ == ReplayMode::Naive || in_mtbar(pc_)) {
      const auto packet = consume_packet(pc_);
      if (!packet) return;
      if (packet->destination != target) {
        fail("CF_Log destination mismatch at " + hex32(pc_) + ": log " +
             hex32(packet->destination) + " vs static " + hex32(target));
        return;
      }
    }
    if (pending_failure_.empty()) {
      emit_event(pc_, target, kind);
      if (pending_failure_.empty()) pc_ = target;
    }
  }

  /// Indirect target resolution from the mode's evidence stream. In checker
  /// mode the evidence must agree with the script (emit_event enforces the
  /// final comparison).
  std::optional<Address> indirect_target() {
    switch (mode_) {
      case ReplayMode::Naive: {
        const auto packet = consume_packet(pc_);
        if (!packet) return std::nullopt;
        return packet->destination;
      }
      case ReplayMode::Rap: {
        if (!in_mtbar(pc_)) {
          fail("unlogged indirect branch outside MTBAR at " + hex32(pc_));
          return std::nullopt;
        }
        const auto packet = consume_packet(pc_);
        if (!packet) return std::nullopt;
        return packet->destination;
      }
      case ReplayMode::Traces:
        return consume_indirect_target();
    }
    return std::nullopt;
  }

  void save_checkpoint(bool alternative) {
    rec_.active = false;  // speculative stretch: not a verified segment yet
    checkpoints_.push_back({pc_, val_, shadow_stack_, packet_cursor_,
                            bit_cursor_, target_cursor_, loop_cursor_,
                            result_.events.size(), result_.findings.size(),
                            pre_step_steps_, pre_step_index_hits_,
                            pre_step_index_fallbacks_, journal_.size(),
                            alternative, state_hash()});
  }

  /// Restore the most recent checkpoint and arm its alternative decision.
  bool backtrack() {
    if (checkpoints_.empty() || backtracks_ >= kMaxBacktracks) return false;
    rec_.active = false;  // the recording anchor no longer matches the state
    ++backtracks_;
    // The greedy branch of this checkpoint failed: memoize (state, greedy
    // decision) so equivalent states elsewhere fail immediately. The greedy
    // decision is the negation of the armed alternative.
    const bool failed_decision = !checkpoints_.back().forced_decision;
    failed_states_.insert(checkpoints_.back().state_hash ^
                          (failed_decision ? 1u : 0u));
    if (failed_states_.size() > kMaxFailedStates) {
      failed_states_.erase(failed_states_.begin());
    }
    Snapshot snap = std::move(checkpoints_.back());
    checkpoints_.pop_back();
    pc_ = snap.pc;
    val_ = std::move(snap.val);
    shadow_stack_ = std::move(snap.shadow_stack);
    packet_cursor_ = snap.packet_cursor;
    bit_cursor_ = snap.bit_cursor;
    target_cursor_ = snap.target_cursor;
    loop_cursor_ = snap.loop_cursor;
    result_.events.resize(snap.events_size);
    result_.findings.resize(snap.findings_size);
    result_.steps = snap.steps;
    result_.index_hits = snap.index_hits;
    result_.index_fallbacks = snap.index_fallbacks;
    journal_.resize(snap.journal_size);
    forced_decision_ = snap.forced_decision;
    pending_failure_.clear();
    // The restored state IS the checkpoint's pre-decision state, so this is
    // the one place the frontier key for "greedy from here is a dead branch"
    // can be computed exactly. Promote it to the shared cache — unless a
    // frontier hit was taken earlier in this engine (under a collision the
    // exploration below the hit would not have been exhaustive).
    if (frontier_active() && !frontier_hit_taken_) {
      FrontierEntry promo = frontier_guards();
      promo.failed_mask = failed_decision ? u8{2} : u8{1};
      memo_->frontier_insert(promo);
      if (touched_frontier_ != nullptr) {
        touched_frontier_->push_back(promo.key_hash());
      }
    }
    // Search pressure exists on this chain: keep (or resume) consulting the
    // frontier for the rest of the engine regardless of the futility gate.
    frontier_proven_ = true;
    return true;
  }

  /// Decide a conditional branch at pc_. May checkpoint (RAP ambiguity).
  std::optional<bool> decide_conditional(const Instruction& in) {
    if (script_) {
      // Checker mode: the script dictates the decision; evidence consistency
      // is still enforced by take_branch/indirect_target.
      const size_t index = result_.events.size();
      return index < script_->size() && (*script_)[index].source == pc_;
    }
    if (forced_decision_) {
      const bool decision = *forced_decision_;
      forced_decision_ = std::nullopt;
      // Re-executing a backtracked ambiguous site with the alternative: this
      // decision is on the path now being explored, so journal it (the state
      // here is identical to the checkpoint's pre-decision state).
      journal_decision(decision);
      return decision;
    }
    switch (mode_) {
      case ReplayMode::Naive:
        // Every taken branch is logged, and any path returning to this site
        // passes through another logged taken branch first: unambiguous.
        memo_note_peek();
        return packet_cursor_ < inputs_.packets.size() &&
               inputs_.packets[packet_cursor_].source == pc_;
      case ReplayMode::Rap: {
        if (const auto* slot = index_.slot_for_site(pc_)) {
          memo_note_peek();
          const bool next_in_slot =
              packet_cursor_ < inputs_.packets.size() &&
              inputs_.packets[packet_cursor_].source >= slot->slot_base &&
              inputs_.packets[packet_cursor_].source < slot->slot_end;
          const bool logged_direction =
              slot->kind != rewrite::SlotKind::CondNotTaken;
          if (!next_in_slot) {
            // Certain: had the logged direction been taken, this slot's
            // packet would be the very next recorded event.
            return !logged_direction;
          }
          // Ambiguous: the packet may belong to a later dynamic instance of
          // this site. Greedy = attribute it to now; checkpoint the
          // alternative. The failure memo skips decisions already proven
          // futile from an identical state. The decision depends on search
          // history (failed_states_), which is outside a memo segment's
          // footprint — recording must abort on the failure-memo-steered
          // exits below. Two exits instead absorb the decided branch under
          // a splice-time-revalidated guard: a frontier decision-hit, and
          // the clean checkpoint commit (whose guard only becomes
          // spliceable once this engine completes and promotes the
          // journaled decision).
          const u64 here = state_hash();
          const u64 greedy_key = here ^ (logged_direction ? 1u : 0u);
          const u64 alt_key = here ^ (logged_direction ? 0u : 1u);
          bool greedy_failed = failed_states_.count(greedy_key) != 0;
          bool alt_failed = failed_states_.count(alt_key) != 0;
          FrontierEntry guards;
          bool have_guards = false;
          if (frontier_consult_ok()) {
            // Consult the shared frontier before saving a checkpoint: a
            // recorded known-good decision from this exact total state skips
            // the search entirely, and shared dead-branch bits prune
            // directions some other replay already proved futile.
            guards = frontier_guards();
            have_guards = true;
            FrontierEntry known;
            if (memo_->frontier_lookup(guards, &known)) {
              // A resident entry that carries dead-branch bits came from a
              // replay that actually searched here: the frontier earns its
              // keep on this workload. Decision-only entries just skip a
              // checkpoint save — cheap, but not worth consulting forever
              // on chains whose greedy parse never backtracks.
              if (known.failed_mask != 0) {
                frontier_proven_ = true;
                frontier_futile_streak_ = 0;
              } else {
                ++frontier_futile_streak_;
              }
              if (known.has_decision &&
                  result_.steps + known.steps_to_complete <= max_steps_) {
                // Skip straight to the known-good decision — no checkpoint,
                // no speculative stretch, so segment recording resumes at
                // the next anchor instead of staying backed off.
                frontier_hit_taken_ = true;
                memo_backoff_ = 0;
                memo_resume_step_ = 0;
                journal_.push_back({guards, known.decision, result_.steps,
                                    /*from_hit=*/true});
                if (touched_frontier_ != nullptr) {
                  touched_frontier_->push_back(guards.key_hash());
                }
                if (rec_.active) {
                  if (memo_->options().guarded_segments) {
                    // Absorb the decided branch: the segment stays valid
                    // only while an equivalent frontier entry still covers
                    // this exact state (re-validated at splice time), so
                    // record the guard instead of aborting.
                    SegmentGuard g;
                    g.pc = pc_;
                    g.val = guards.val;
                    g.d_packets =
                        static_cast<u32>(packet_cursor_ - rec_.entry_packets);
                    g.d_loops =
                        static_cast<u32>(loop_cursor_ - rec_.entry_loops);
                    g.d_bits = static_cast<u32>(bit_cursor_ - rec_.entry_bits);
                    g.d_targets =
                        static_cast<u32>(target_cursor_ - rec_.entry_targets);
                    g.pops = static_cast<u32>(rec_.popped.size());
                    g.suffix.assign(shadow_stack_.begin() + rec_.min_stack,
                                    shadow_stack_.end());
                    g.decision = known.decision;
                    g.failed_mask = known.failed_mask;
                    g.steps_delta = result_.steps - rec_.entry_steps;
                    rec_.guards.push_back(std::move(g));
                  } else {
                    rec_.active = false;
                  }
                }
                return known.decision;
              }
              // failed_mask bit 0 = decision `false` is a dead branch,
              // bit 1 = decision `true` is.
              const bool shared_greedy =
                  ((known.failed_mask >> (logged_direction ? 1 : 0)) & 1) != 0;
              const bool shared_alt =
                  ((known.failed_mask >> (logged_direction ? 0 : 1)) & 1) != 0;
              if ((shared_greedy && !greedy_failed) ||
                  (shared_alt && !alt_failed)) {
                used_shared_failure_ = true;
              }
              greedy_failed = greedy_failed || shared_greedy;
              alt_failed = alt_failed || shared_alt;
            } else {
              ++frontier_futile_streak_;
            }
          }
          // Exits steered by failure memos (fail, forced-greedy) depend on
          // search history, so recording aborts as before.
          if (greedy_failed && alt_failed) {
            rec_.active = false;
            fail("no consistent parse from this state");
            return std::nullopt;
          }
          if (greedy_failed) {
            rec_.active = false;
            journal_decision(!logged_direction,
                            have_guards ? &guards : nullptr);
            return !logged_direction;
          }
          // Clean checkpoint commit (greedy not known-failed): absorb the
          // decision into the in-flight segment under a guard, exactly as
          // the frontier-hit path does — no prior frontier warm-up needed.
          // The guard demands a resident frontier entry with this same
          // decision at splice time; such an entry is only ever promoted
          // from a journal that survived to completion (backtracking
          // truncates it), so if this greedy stretch later fails, the
          // stored segment is merely unspliceable — never wrong. The
          // checkpoint itself still aborts recording across save/restore
          // (save_checkpoint clears rec_.active; re-arm after).
          const bool record_guard = rec_.active && have_guards &&
                                    memo_->options().guarded_segments;
          SegmentGuard commit_guard;
          if (record_guard) {
            commit_guard.pc = pc_;
            commit_guard.val = guards.val;
            commit_guard.d_packets =
                static_cast<u32>(packet_cursor_ - rec_.entry_packets);
            commit_guard.d_loops =
                static_cast<u32>(loop_cursor_ - rec_.entry_loops);
            commit_guard.d_bits =
                static_cast<u32>(bit_cursor_ - rec_.entry_bits);
            commit_guard.d_targets =
                static_cast<u32>(target_cursor_ - rec_.entry_targets);
            commit_guard.pops = static_cast<u32>(rec_.popped.size());
            commit_guard.suffix.assign(shadow_stack_.begin() + rec_.min_stack,
                                       shadow_stack_.end());
            commit_guard.decision = logged_direction;
            // No dead branch was proven at commit time; splice only needs
            // an entry that (at least) recorded this decision.
            commit_guard.failed_mask = 0;
            commit_guard.steps_delta = result_.steps - rec_.entry_steps;
          }
          rec_.active = false;
          if (!alt_failed) save_checkpoint(/*alternative=*/!logged_direction);
          journal_decision(logged_direction, have_guards ? &guards : nullptr);
          if (record_guard) {
            rec_.active = true;
            rec_.guards.push_back(std::move(commit_guard));
          }
          return logged_direction;
        }
        return evaluate_shadow(in.cond, val_.flags);
      }
      case ReplayMode::Traces: {
        const auto* veneer = index_.traces_veneer_containing(pc_);
        if (veneer && veneer->kind == instr::VeneerKind::Conditional &&
            pc_ == veneer->veneer_base + 4) {
          if (bit_cursor_ >= inputs_.traces_log.direction_bits.size()) {
            fail("TRACES direction-bit stream exhausted");
            return std::nullopt;
          }
          return inputs_.traces_log.direction_bits[bit_cursor_++];
        }
        return evaluate_shadow(in.cond, val_.flags);
      }
    }
    return std::nullopt;
  }

  // -- memo engine ----------------------------------------------------------
  // Called once per run()-loop iteration, before the step executes. Closes
  // a full recording window, splices any stored segments that apply at the
  // current state, and (re-)anchors recording. All memoization flows through
  // here; the step itself only feeds the recording via the hooks above.

  /// The loop stream this mode consumes (RAP SVC values or TRACES
  /// loop-condition values — disjoint, so one slice covers both).
  const std::vector<u32>& loop_stream() const {
    return mode_ == ReplayMode::Traces ? inputs_.traces_log.loop_conditions
                                       : inputs_.loop_values;
  }

  void memo_tick() {
    if (!pending_failure_.empty()) return;
    if (forced_decision_) {
      // A backtracked decision is pending: neither record through it (the
      // decision comes from search history) nor splice past the site it
      // targets.
      rec_.active = false;
      return;
    }
    if (rec_.active) {
      if (packet_cursor_ - rec_.entry_packets <
          memo_->options().window_packets) {
        return;
      }
      if (memo_close(/*halted=*/false)) memo_backoff_ = 0;
    }
    // Futility backoff: checkpoint-dense replays (RAP ambiguity search)
    // abort recording every few steps, so each re-anchor would pay a full
    // pack+hash+lookup for a near-certain miss. Consecutive anchors that
    // neither hit nor insert double a step delay before the next attempt;
    // any hit or stored segment resets it, so memoizable replays keep
    // anchoring back-to-back. Capped (and disabled at cap 0) via
    // MemoOptions::anchor_backoff_cap.
    if (result_.steps < memo_resume_step_) return;
    bool hit = false;
    while (memo_try_apply()) {
      hit = true;
      if (memo_halted_) return;
    }
    const u32 backoff_cap = memo_->options().anchor_backoff_cap;
    if (hit || backoff_cap == 0) {
      memo_backoff_ = 0;
    } else {
      memo_backoff_ = std::min<u32>(
          memo_backoff_ == 0 ? 1 : memo_backoff_ * 2, backoff_cap);
      memo_resume_step_ = result_.steps + memo_backoff_;
    }
    memo_begin();
  }

  void memo_begin() {
    rec_.active = true;
    rec_.entry_pc = pc_;
    rec_.entry_val = pack_valuation(val_);
    rec_.entry_packets = packet_cursor_;
    rec_.entry_loops = loop_cursor_;
    rec_.entry_bits = bit_cursor_;
    rec_.entry_targets = target_cursor_;
    rec_.entry_events = result_.events.size();
    rec_.entry_stack = shadow_stack_.size();
    rec_.min_stack = shadow_stack_.size();
    rec_.entry_steps = result_.steps;
    rec_.entry_index_hits = result_.index_hits;
    rec_.entry_index_fallbacks = result_.index_fallbacks;
    rec_.popped.clear();
    rec_.have_peek = false;
    rec_.have_eos = false;
    rec_.guards.clear();
  }

  /// Record the one-packet lookahead a conditional decision is about to
  /// take. Peeks inside the consumed window are pinned by the window itself;
  /// memo_close keeps only a final peek past it.
  void memo_note_peek() {
    if (!rec_.active) return;
    const size_t rel = packet_cursor_ - rec_.entry_packets;
    if (packet_cursor_ < inputs_.packets.size()) {
      rec_.have_peek = true;
      rec_.peek_rel = rel;
      rec_.peek_pkt = inputs_.packets[packet_cursor_];
    } else {
      rec_.have_eos = true;
      rec_.eos_rel = rel;
    }
  }

  /// Package the stretch since the anchor into an immutable segment and
  /// store it. `halted` marks a segment that ends in the clean-halt check
  /// (exact evidence exhaustion becomes part of its guards). Returns true
  /// when a segment was handed to the cache (feeds the futility backoff).
  bool memo_close(bool halted) {
    const bool was_active = rec_.active;
    rec_.active = false;
    if (!was_active) return false;
    const u64 steps_delta = result_.steps - rec_.entry_steps;
    if (steps_delta == 0) return false;  // empty segment would splice nothing
    auto seg = std::make_shared<MemoSegment>();
    seg->entry_pc = rec_.entry_pc;
    seg->entry_val = rec_.entry_val;
    seg->policy_hash = policy_hash_;
    seg->popped = rec_.popped;
    seg->packets.assign(inputs_.packets.begin() + rec_.entry_packets,
                        inputs_.packets.begin() + packet_cursor_);
    const auto& loops = loop_stream();
    seg->loop_values.assign(loops.begin() + rec_.entry_loops,
                            loops.begin() + loop_cursor_);
    const auto& bits = inputs_.traces_log.direction_bits;
    seg->direction_bits.reserve(bit_cursor_ - rec_.entry_bits);
    for (size_t i = rec_.entry_bits; i < bit_cursor_; ++i) {
      seg->direction_bits.push_back(bits[i] ? 1 : 0);
    }
    seg->indirect_targets.assign(
        inputs_.traces_log.indirect_targets.begin() + rec_.entry_targets,
        inputs_.traces_log.indirect_targets.begin() + target_cursor_);
    const size_t n_packets = seg->packets.size();
    if (rec_.have_peek && rec_.peek_rel == n_packets) {
      seg->peeked_next = true;
      seg->peeked = rec_.peek_pkt;
    }
    if (rec_.have_eos && rec_.eos_rel == n_packets) seg->eos_observed = true;
    seg->halted = halted;
    seg->exit_pc = pc_;
    seg->exit_val = pack_valuation(val_);
    seg->pushed.assign(shadow_stack_.begin() + rec_.min_stack,
                       shadow_stack_.end());
    seg->events.assign(result_.events.begin() + rec_.entry_events,
                       result_.events.end());
    seg->steps = steps_delta;
    seg->index_hits = result_.index_hits - rec_.entry_index_hits;
    seg->index_fallbacks = result_.index_fallbacks - rec_.entry_index_fallbacks;
    seg->guards = std::move(rec_.guards);
    const u64 key = memo_key(seg->entry_pc, seg->entry_val, policy_hash_);
    memo_->insert(key, std::move(seg));
    if (touched_segments_ != nullptr) touched_segments_->push_back(key);
    return true;
  }

  /// Full entry-guard validation of a candidate against the live state.
  /// For frontier-guarded segments, `guard_keys` (required non-null on the
  /// splice path) collects the live frontier key of every validated guard so
  /// the caller can tag them as touched.
  bool memo_matches(const MemoSegment& seg, const MemoValuation& val,
                    std::vector<u64>* guard_keys) const {
    if (seg.entry_pc != pc_ || seg.policy_hash != policy_hash_ ||
        !(seg.entry_val == val)) {
      return false;
    }
    // Live execution of the segment's steps would need this much budget.
    if (result_.steps + seg.steps > max_steps_) return false;
    if (seg.popped.size() > shadow_stack_.size()) return false;
    for (size_t i = 0; i < seg.popped.size(); ++i) {
      if (shadow_stack_[shadow_stack_.size() - 1 - i] != seg.popped[i]) {
        return false;
      }
    }
    // Consumed evidence must match byte-for-byte at the live cursors. A
    // halted segment additionally requires each stream *exactly* exhausted —
    // the clean-halt check it memoized demands that.
    const size_t pkt_rem = inputs_.packets.size() - packet_cursor_;
    if (seg.halted ? pkt_rem != seg.packets.size()
                   : pkt_rem < seg.packets.size()) {
      return false;
    }
    if (!std::equal(seg.packets.begin(), seg.packets.end(),
                    inputs_.packets.begin() + packet_cursor_)) {
      return false;
    }
    if (seg.peeked_next) {
      if (pkt_rem < seg.packets.size() + 1) return false;
      if (!(inputs_.packets[packet_cursor_ + seg.packets.size()] ==
            seg.peeked)) {
        return false;
      }
    }
    if (seg.eos_observed && pkt_rem != seg.packets.size()) return false;
    const auto& loops = loop_stream();
    const size_t loop_rem = loops.size() - loop_cursor_;
    if (seg.halted ? loop_rem != seg.loop_values.size()
                   : loop_rem < seg.loop_values.size()) {
      return false;
    }
    if (!std::equal(seg.loop_values.begin(), seg.loop_values.end(),
                    loops.begin() + loop_cursor_)) {
      return false;
    }
    const auto& bits = inputs_.traces_log.direction_bits;
    const size_t bit_rem = bits.size() - bit_cursor_;
    if (seg.halted ? bit_rem != seg.direction_bits.size()
                   : bit_rem < seg.direction_bits.size()) {
      return false;
    }
    for (size_t i = 0; i < seg.direction_bits.size(); ++i) {
      if (static_cast<u8>(bits[bit_cursor_ + i] ? 1 : 0) !=
          seg.direction_bits[i]) {
        return false;
      }
    }
    const auto& targets = inputs_.traces_log.indirect_targets;
    const size_t tgt_rem = targets.size() - target_cursor_;
    if (seg.halted ? tgt_rem != seg.indirect_targets.size()
                   : tgt_rem < seg.indirect_targets.size()) {
      return false;
    }
    if (!std::equal(seg.indirect_targets.begin(), seg.indirect_targets.end(),
                    targets.begin() + target_cursor_)) {
      return false;
    }
    // Frontier guards: every decision the recorded stretch absorbed must
    // still be covered by an equivalent resident frontier entry, rebuilt
    // against the LIVE state (stack prefix + recorded suffix, live cursors
    // plus the recorded deltas — the window checks above guarantee those
    // land inside the streams). Splicing across a guard is equivalent to
    // taking the same frontier hit live, so detached retries must never
    // splice a guarded segment.
    if (!seg.guards.empty()) {
      if (!frontier_active() || !memo_->options().guarded_segments) {
        return false;
      }
      const auto mix = [](u64& h, u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      };
      for (const SegmentGuard& g : seg.guards) {
        FrontierEntry live;
        live.pc = g.pc;
        live.val = g.val;
        live.policy_hash = policy_hash_;
        live.strict = strict_;
        // g.pops <= seg.popped.size() <= shadow_stack_.size() (prefix check
        // above), so `keep` cannot underflow.
        const size_t keep = shadow_stack_.size() - g.pops;
        u64 sh = 0x9216d5d98979fb1bull;
        mix(sh, keep + g.suffix.size());
        for (size_t i = 0; i < keep; ++i) mix(sh, shadow_stack_[i]);
        for (const Address a : g.suffix) mix(sh, a);
        live.stack_hash = sh;
        u64 fp = 0x452821e638d01377ull;
        mix(fp, chain_fp());
        mix(fp, packet_cursor_ + g.d_packets);
        mix(fp, loop_cursor_ + g.d_loops);
        mix(fp, bit_cursor_ + g.d_bits);
        mix(fp, target_cursor_ + g.d_targets);
        live.evidence_fp = fp;
        live.packet_rem = static_cast<u32>(inputs_.packets.size() -
                                           (packet_cursor_ + g.d_packets));
        live.loop_rem =
            static_cast<u32>(loop_stream().size() - (loop_cursor_ + g.d_loops));
        live.bit_rem = static_cast<u32>(
            inputs_.traces_log.direction_bits.size() - (bit_cursor_ + g.d_bits));
        live.target_rem =
            static_cast<u32>(inputs_.traces_log.indirect_targets.size() -
                             (target_cursor_ + g.d_targets));
        FrontierEntry known;
        if (!memo_->frontier_lookup(live, &known)) return false;
        if (!known.has_decision || known.decision != g.decision) return false;
        if ((known.failed_mask & g.failed_mask) != g.failed_mask) return false;
        if (result_.steps + g.steps_delta + known.steps_to_complete >
            max_steps_) {
          return false;
        }
        if (guard_keys != nullptr) guard_keys->push_back(live.key_hash());
      }
    }
    return true;
  }

  /// Splice a matched segment: exactly the state live execution of the
  /// stretch would have produced.
  void memo_apply(const MemoSegment& seg) {
    shadow_stack_.resize(shadow_stack_.size() - seg.popped.size());
    shadow_stack_.insert(shadow_stack_.end(), seg.pushed.begin(),
                         seg.pushed.end());
    result_.events.insert(result_.events.end(), seg.events.begin(),
                          seg.events.end());
    packet_cursor_ += seg.packets.size();
    loop_cursor_ += seg.loop_values.size();
    bit_cursor_ += seg.direction_bits.size();
    target_cursor_ += seg.indirect_targets.size();
    unpack_valuation(seg.exit_val, val_);
    pc_ = seg.exit_pc;
    result_.steps += seg.steps;
    result_.index_hits += seg.index_hits;
    result_.index_fallbacks += seg.index_fallbacks;
    if (seg.halted) memo_halted_ = true;
  }

  bool memo_try_apply() {
    const MemoValuation here = pack_valuation(val_);
    const u64 key = memo_key(pc_, here, policy_hash_);
    MemoCache::Handle candidates[MemoCache::kLookupWidth];
    const size_t count =
        memo_->lookup(key, candidates, MemoCache::kLookupWidth);
    std::vector<u64> guard_keys;
    for (size_t i = 0; i < count; ++i) {
      guard_keys.clear();
      if (memo_matches(*candidates[i], here, &guard_keys)) {
        memo_apply(*candidates[i]);
        ++result_.memo_hits;
        memo_->note_hit();
        if (touched_segments_ != nullptr) touched_segments_->push_back(key);
        if (!candidates[i]->guards.empty()) {
          // Splicing across frontier-guarded decisions is equivalent to
          // taking those decision hits live: exploration beyond them is not
          // exhaustive under a fingerprint collision, so the rerun-detached
          // rule applies to this pass too.
          frontier_hit_taken_ = true;
          if (touched_frontier_ != nullptr) {
            touched_frontier_->insert(touched_frontier_->end(),
                                      guard_keys.begin(), guard_keys.end());
          }
        }
        return true;
      }
    }
    ++result_.memo_misses;
    memo_->note_miss();
    return false;
  }

  /// Execute one instruction of the walk. Returns true when the program
  /// halted cleanly.
  bool step();
};

bool ReplayEngine::step() {
  if (!index_.contains(pc_) || pc_ % 4 != 0) {
    fail("path left the program image at " + hex32(pc_));
    return false;
  }
  const Instruction* cached = index_.instruction_at(pc_);
  Instruction fallback;
  if (cached == nullptr) {
    // Predecode declined this word (or it is data): the per-step decoder is
    // the authoritative tie-break.
    const auto decoded = index_.program().instruction_at(pc_);
    if (!decoded) {
      fail("undefined instruction at " + hex32(pc_));
      return false;
    }
    fallback = *decoded;
  }
  const Instruction in = cached != nullptr ? *cached : fallback;
  if (cached != nullptr) {
    ++result_.index_hits;
  } else {
    ++result_.index_fallbacks;
  }
  const BranchKind kind = isa::branch_kind(in);
  // Static branch destination: from the precomputed successor map on the
  // cached path, recomputed only on the rare fallback path.
  const auto static_target = [&]() -> Address {
    return cached != nullptr ? index_.branch_target(pc_)
                             : isa::branch_target(in, pc_);
  };

  if (kind == BranchKind::Halt) {
    // All evidence must be accounted for; leftovers indicate injection or a
    // wrong parse (the latter triggers backtracking).
    if (packet_cursor_ != inputs_.packets.size()) {
      fail("unconsumed CF_Log packets at halt");
    } else if (mode_ == ReplayMode::Traces &&
               (bit_cursor_ != inputs_.traces_log.direction_bits.size() ||
                target_cursor_ != inputs_.traces_log.indirect_targets.size() ||
                loop_cursor_ != inputs_.traces_log.loop_conditions.size())) {
      fail("unconsumed TRACES evidence at halt");
    } else if (mode_ == ReplayMode::Rap &&
               loop_cursor_ != inputs_.loop_values.size()) {
      fail("unconsumed loop-condition values at halt");
    } else if (script_ && result_.events.size() != script_->size()) {
      fail("scripted path not fully consumed at halt");
    }
    return pending_failure_.empty();
  }

  switch (kind) {
    case BranchKind::None: {
      if (in.op == Op::SVC) {
        if (mode_ == ReplayMode::Rap) {
          const auto* veneer = index_.rap_veneer_at_svc(pc_);
          if (!veneer) {
            fail("unexpected SVC at " + hex32(pc_));
            break;
          }
          const auto value = consume_loop_value(false);
          if (!value) break;
          val_.write(veneer->loop.iterator, *value);
        } else if (mode_ == ReplayMode::Traces) {
          const auto* veneer = index_.traces_veneer_at_svc(pc_);
          if (!veneer) {
            fail("unexpected SVC at " + hex32(pc_));
            break;
          }
          if (veneer->kind == instr::VeneerKind::LoopCondition) {
            const auto value = consume_loop_value(true);
            if (!value) break;
            val_.write(veneer->loop->iterator, *value);
          }
          // Branch-logging SVCs: the following instruction consumes the
          // stream; nothing to do here.
        } else {
          fail("unexpected SVC at " + hex32(pc_));
          break;
        }
      } else {
        val_.apply(in, pc_);
      }
      pc_ += 4;
      break;
    }

    case BranchKind::Direct:
      take_branch(static_target(), BranchKind::Direct);
      break;

    case BranchKind::DirectCall: {
      const Address target = static_target();
      shadow_stack_.push_back(pc_ + 4);
      val_.write(Reg::LR, pc_ + 4);
      take_branch(target, BranchKind::DirectCall);
      break;
    }

    case BranchKind::Conditional: {
      const auto taken = decide_conditional(in);
      if (!pending_failure_.empty()) break;
      if (!taken) {
        fail("unresolvable conditional branch at " + hex32(pc_) +
             " (no log entry, flags unknown)");
        break;
      }
      if (*taken) {
        take_branch(static_target(), BranchKind::Conditional);
      } else {
        pc_ += 4;
      }
      break;
    }

    case BranchKind::IndirectCall: {  // BLX rm (naive/traces binaries only)
      shadow_stack_.push_back(pc_ + 4);
      val_.write(Reg::LR, pc_ + 4);
      const Address site = pc_;
      const auto target = indirect_target();
      if (!target) break;
      check_call_policy(site, *target);
      emit_event(site, *target, BranchKind::IndirectCall);
      if (pending_failure_.empty()) pc_ = *target;
      break;
    }

    case BranchKind::IndirectJump: {
      const Address site = pc_;
      const auto target = indirect_target();
      if (!target) break;
      // A BX rm inside a RAP IndirectCall slot is semantically a call: the
      // BL at the original site already pushed the shadow stack; apply the
      // call-target policy here.
      if (mode_ == ReplayMode::Rap) {
        if (const auto* slot = index_.slot_containing(site);
            slot && slot->kind == rewrite::SlotKind::IndirectCall) {
          check_call_policy(slot->site, *target);
        }
      } else if (mode_ == ReplayMode::Traces) {
        if (const auto* veneer = index_.traces_veneer_containing(site);
            veneer && veneer->kind == instr::VeneerKind::IndirectCall) {
          check_call_policy(veneer->site, *target);
        }
      }
      emit_event(site, *target, BranchKind::IndirectJump);
      if (pending_failure_.empty()) pc_ = *target;
      break;
    }

    case BranchKind::Return: {
      if (in.op == Op::BX) {  // BX LR: unmonitored leaf return (§IV-C.2)
        std::optional<Address> target;
        if (mode_ == ReplayMode::Naive) {
          const auto packet = consume_packet(pc_);
          if (!packet) break;
          target = packet->destination;
        } else {
          target = val_.read(Reg::LR, pc_);
          if (!target) {
            fail("BX LR with unknown link register at " + hex32(pc_));
            break;
          }
        }
        pop_shadow(pc_, *target);
        emit_event(pc_, *target, BranchKind::Return);
        if (pending_failure_.empty()) pc_ = *target;
      } else {  // POP {…,pc}: monitored return
        const Address site = pc_;
        const auto target = indirect_target();
        if (!target) break;
        val_.apply(in, site);  // clobber popped registers
        pop_shadow(site, *target);
        emit_event(site, *target, BranchKind::Return);
        if (pending_failure_.empty()) pc_ = *target;
      }
      break;
    }

    case BranchKind::Halt:
      break;  // handled above
  }
  return false;
}

ReplayResult ReplayEngine::run() {
  while (result_.steps < max_steps_) {
    if (memo_ != nullptr) {
      memo_tick();
      if (memo_halted_) {
        // A halted segment was spliced: its guards proved the exact
        // clean-halt conditions, so the replay is complete.
        result_.complete = true;
        result_.backtracks = backtracks_;
        commit_journal();
        return result_;
      }
    }
    pre_step_steps_ = result_.steps;
    pre_step_index_hits_ = result_.index_hits;
    pre_step_index_fallbacks_ = result_.index_fallbacks;
    ++result_.steps;
    const bool halted = step();
    if (halted) {
      if (memo_ != nullptr) memo_close(/*halted=*/true);
      result_.complete = true;
      result_.backtracks = backtracks_;
      commit_journal();
      return result_;
    }
    if (!pending_failure_.empty() && !backtrack()) break;
  }
  if (pending_failure_.empty() && result_.steps >= max_steps_) {
    fail("replay step budget exceeded");
  }
  result_.failure = pending_failure_;
  result_.complete = false;
  result_.backtracks = backtracks_;
  return result_;
}

}  // namespace

ReplayResult PathReplayer::replay(const ReplayInputs& inputs, u64 max_steps) {
  if (mode_ == ReplayMode::Rap && rap_ == nullptr) {
    ReplayResult result;
    result.failure = "rap manifest not set";
    return result;
  }
  if (mode_ == ReplayMode::Traces && traces_ == nullptr) {
    ReplayResult result;
    result.failure = "traces manifest not set";
    return result;
  }
  // Legacy (non-Deployment) construction: build the index once per call —
  // both passes below share it, so even this path decodes each instruction
  // at most once instead of once per replay step.
  std::optional<ReplayIndex> local_index;
  const ReplayIndex* index = index_;
  if (index == nullptr) {
    local_index.emplace(*program_, mode_, rap_, traces_);
    index = &*local_index;
  }
  touched_segment_keys_.clear();
  touched_frontier_keys_.clear();
  // Whole-chain fingerprint amortization: a seeded value (chain_fp_lookup
  // hit for this exact chain) survives into this call; otherwise any stale
  // value from a previous chain is invalidated and the first engine that
  // needs the fingerprint recomputes it once for every pass and retry.
  if (!chain_fp_seeded_) chain_fp_valid_ = false;
  chain_fp_seeded_ = false;
  // One search pass (strict or lenient). A pass that fails *after being
  // steered by shared frontier state* is re-run with the frontier detached:
  // a genuine frontier hit guarantees completion (the recorded decision led
  // to a full parse from an identical total state), so an influenced failure
  // means shared dead-branch pruning changed which dead end surfaces first
  // (or a fingerprint collision occurred) — the retry reproduces the
  // unmemoized failure byte-for-byte. Completing passes never pay this; the
  // sub-path memo stays attached throughout (its on/off equivalence is
  // unconditional).
  const auto run_pass = [&](bool strict) {
    ReplayEngine engine(*index, entry_, mode_, policy_, inputs, max_steps,
                        nullptr, strict, memo_, use_frontier_,
                        &touched_segment_keys_, &touched_frontier_keys_,
                        &chain_fp_valid_, &chain_fp_);
    ReplayResult result = engine.run();
    if (!result.complete && engine.frontier_influenced()) {
      ReplayEngine retry(*index, entry_, mode_, policy_, inputs, max_steps,
                         nullptr, strict, memo_, /*use_frontier=*/false,
                         &touched_segment_keys_, &touched_frontier_keys_,
                         &chain_fp_valid_, &chain_fp_);
      result = retry.run();
    }
    return result;
  };
  // Pass 1 (strict): search for a finding-free parse — a benign execution
  // consistent with the evidence. Only when none exists does the lenient
  // pass attribute findings (the verifier accuses only when every parse of
  // the evidence is malicious).
  ReplayResult strict_result = run_pass(/*strict=*/true);
  if (strict_result.complete) return strict_result;
  return run_pass(/*strict=*/false);
}

void PathReplayer::seed_chain_fingerprint(u64 fp) {
  chain_fp_ = fp;
  chain_fp_valid_ = true;
  chain_fp_seeded_ = true;
}

std::optional<u64> PathReplayer::chain_fingerprint() const {
  return chain_fp_valid_ ? std::optional<u64>(chain_fp_) : std::nullopt;
}

ReplayResult PathReplayer::check_path(
    const std::vector<trace::OracleEvent>& path, const ReplayInputs& inputs,
    u64 max_steps) {
  if (mode_ == ReplayMode::Rap && rap_ == nullptr) {
    ReplayResult result;
    result.failure = "rap manifest not set";
    return result;
  }
  if (mode_ == ReplayMode::Traces && traces_ == nullptr) {
    ReplayResult result;
    result.failure = "traces manifest not set";
    return result;
  }
  std::optional<ReplayIndex> local_index;
  const ReplayIndex* index = index_;
  if (index == nullptr) {
    local_index.emplace(*program_, mode_, rap_, traces_);
    index = &*local_index;
  }
  ReplayEngine engine(*index, entry_, mode_, policy_, inputs, max_steps, &path);
  return engine.run();
}

}  // namespace raptrack::verify
