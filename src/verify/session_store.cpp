#include "verify/session_store.hpp"

#include <algorithm>
#include <bit>

namespace raptrack::verify {

SessionStore::SessionStore(size_t shard_count)
    : shards_(std::bit_ceil(std::max<size_t>(shard_count, 1))) {}

void SessionStore::issue(DeviceId device, const cfa::Challenge& chal) {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  DeviceSessions& sessions = shard.devices[device];
  if (std::find(sessions.used.begin(), sessions.used.end(), chal) !=
      sessions.used.end()) {
    return;  // consumed challenges never come back
  }
  if (std::find(sessions.outstanding.begin(), sessions.outstanding.end(),
                chal) == sessions.outstanding.end()) {
    sessions.outstanding.push_back(chal);
  }
}

SessionStore::ChallengeState SessionStore::state(
    DeviceId device, const cfa::Challenge& chal) const {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  if (it == shard.devices.end()) return ChallengeState::Unknown;
  const DeviceSessions& sessions = it->second;
  // Used wins: a challenge somehow present in both lists must stay dead.
  if (std::find(sessions.used.begin(), sessions.used.end(), chal) !=
      sessions.used.end()) {
    return ChallengeState::Used;
  }
  if (std::find(sessions.outstanding.begin(), sessions.outstanding.end(),
                chal) != sessions.outstanding.end()) {
    return ChallengeState::Outstanding;
  }
  return ChallengeState::Unknown;
}

bool SessionStore::consume(DeviceId device, const cfa::Challenge& chal) {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  if (it == shard.devices.end()) return false;
  DeviceSessions& sessions = it->second;
  const auto pos = std::find(sessions.outstanding.begin(),
                             sessions.outstanding.end(), chal);
  if (pos == sessions.outstanding.end()) return false;
  sessions.outstanding.erase(pos);
  sessions.used.push_back(chal);
  return true;
}

size_t SessionStore::outstanding_count(DeviceId device) const {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  return it == shard.devices.end() ? 0 : it->second.outstanding.size();
}

}  // namespace raptrack::verify
