#include "verify/session_store.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "common/crc32.hpp"
#include "verify/memo.hpp"

namespace raptrack::verify {

namespace {

constexpr u8 kSnapshotMagic[4] = {'S', 'S', 'T', '1'};

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(value >> (8 * i)));
}

/// Bounds-checked little-endian reader over the snapshot bytes.
struct SnapReader {
  std::span<const u8> data;
  size_t pos = 0;
  bool failed = false;

  u32 u32_value() {
    if (failed || data.size() - pos < 4) {
      failed = true;
      return 0;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  u64 u64_value() {
    if (failed || data.size() - pos < 8) {
      failed = true;
      return 0;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  bool chal_value(cfa::Challenge& out) {
    if (failed || data.size() - pos < out.size()) {
      failed = true;
      return false;
    }
    std::copy_n(data.begin() + static_cast<ptrdiff_t>(pos), out.size(),
                out.begin());
    pos += out.size();
    return true;
  }
};

}  // namespace

SessionStore::SessionStore(size_t shard_count)
    : shards_(std::bit_ceil(std::max<size_t>(shard_count, 1))) {}

void SessionStore::issue(DeviceId device, const cfa::Challenge& chal) {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  DeviceSessions& sessions = shard.devices[device];
  if (std::find(sessions.used.begin(), sessions.used.end(), chal) !=
      sessions.used.end()) {
    return;  // consumed challenges never come back
  }
  if (std::find(sessions.outstanding.begin(), sessions.outstanding.end(),
                chal) == sessions.outstanding.end()) {
    sessions.outstanding.push_back(chal);
  }
}

SessionStore::ChallengeState SessionStore::state(
    DeviceId device, const cfa::Challenge& chal) const {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  if (it == shard.devices.end()) return ChallengeState::Unknown;
  const DeviceSessions& sessions = it->second;
  // Used wins: a challenge somehow present in both lists must stay dead.
  if (std::find(sessions.used.begin(), sessions.used.end(), chal) !=
      sessions.used.end()) {
    return ChallengeState::Used;
  }
  if (std::find(sessions.outstanding.begin(), sessions.outstanding.end(),
                chal) != sessions.outstanding.end()) {
    return ChallengeState::Outstanding;
  }
  return ChallengeState::Unknown;
}

bool SessionStore::consume(DeviceId device, const cfa::Challenge& chal) {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  if (it == shard.devices.end()) return false;
  DeviceSessions& sessions = it->second;
  const auto pos = std::find(sessions.outstanding.begin(),
                             sessions.outstanding.end(), chal);
  if (pos == sessions.outstanding.end()) return false;
  sessions.outstanding.erase(pos);
  sessions.used.push_back(chal);
  return true;
}

std::vector<u8> SessionStore::serialize(const MemoCache* memo) const {
  // Collect per-device state under the shard locks, sorted by device id so
  // the blob is deterministic regardless of hash-map iteration order.
  std::map<DeviceId, DeviceSessions> devices;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [id, sessions] : shard.devices) devices[id] = sessions;
  }
  std::vector<u8> out(std::begin(kSnapshotMagic), std::end(kSnapshotMagic));
  put_u32(out, static_cast<u32>(devices.size()));
  for (const auto& [id, sessions] : devices) {
    put_u64(out, id);
    put_u32(out, static_cast<u32>(sessions.outstanding.size()));
    for (const auto& chal : sessions.outstanding) {
      out.insert(out.end(), chal.begin(), chal.end());
    }
    put_u32(out, static_cast<u32>(sessions.used.size()));
    for (const auto& chal : sessions.used) {
      out.insert(out.end(), chal.begin(), chal.end());
    }
  }
  put_u32(out, crc32(out));
  if (memo != nullptr) {
    const std::vector<u8> warm = memo->serialize_warm();
    out.insert(out.end(), warm.begin(), warm.end());
  }
  return out;
}

bool SessionStore::deserialize(std::span<const u8> bytes, MemoCache* memo) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 8) return false;
  if (!std::equal(std::begin(kSnapshotMagic), std::end(kSnapshotMagic),
                  bytes.begin())) {
    return false;
  }
  // The SST1 section is self-delimiting (the crc trailer sits right after
  // the last device), so parse first and locate the trailer, then verify
  // the checksum over exactly the section it covers. Anything after the
  // trailer must be a MEM1 warm-cache section, not trailing garbage.
  SnapReader reader{bytes.subspan(sizeof(kSnapshotMagic))};
  std::map<DeviceId, DeviceSessions> devices;
  const u32 device_count = reader.u32_value();
  for (u32 d = 0; d < device_count && !reader.failed; ++d) {
    const DeviceId id = reader.u64_value();
    DeviceSessions sessions;
    const u32 out_count = reader.u32_value();
    // Count fields are attacker-reachable through a corrupted snapshot
    // file; the per-element read failing on truncation bounds allocation.
    for (u32 i = 0; i < out_count && !reader.failed; ++i) {
      cfa::Challenge chal{};
      if (reader.chal_value(chal)) sessions.outstanding.push_back(chal);
    }
    const u32 used_count = reader.u32_value();
    for (u32 i = 0; i < used_count && !reader.failed; ++i) {
      cfa::Challenge chal{};
      if (reader.chal_value(chal)) sessions.used.push_back(chal);
    }
    devices[id] = std::move(sessions);
  }
  if (reader.failed) return false;
  const size_t sst_end = sizeof(kSnapshotMagic) + reader.pos;
  const u32 stored = reader.u32_value();
  if (reader.failed) return false;
  if (crc32(bytes.first(sst_end)) != stored) return false;
  const auto warm = bytes.subspan(sst_end + 4);
  if (!warm.empty() && !(warm.size() >= 4 && warm[0] == 'M' &&
                         warm[1] == 'E' && warm[2] == 'M' && warm[3] == '1')) {
    return false;  // trailing bytes that are not a warm section
  }

  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.devices.clear();
  }
  for (auto& [id, sessions] : devices) {
    Shard& shard = shard_for(id);
    std::lock_guard lock(shard.mu);
    shard.devices[id] = std::move(sessions);
  }
  // Warm-cache section last, after session state committed: a corrupt MEM1
  // degrades to a cold cache but never fails the (correctness-critical)
  // session restore.
  if (memo != nullptr && !warm.empty()) memo->restore_warm(warm);
  return true;
}

size_t SessionStore::outstanding_count(DeviceId device) const {
  Shard& shard = shard_for(device);
  std::lock_guard lock(shard.mu);
  const auto it = shard.devices.find(device);
  return it == shard.devices.end() ? 0 : it->second.outstanding.size();
}

}  // namespace raptrack::verify
